package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrors table-tests the CLI's rejection paths, mirroring
// dvmpsim's discipline: every invalid flag combination must fail with a
// non-nil one-line error naming the offending flag, before any simulation
// work starts.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring the error must contain
	}{
		{"bad flag", []string{"-badflag"}, "flag"},
		{"zero reps", []string{"-reps", "0"}, "-reps"},
		{"negative reps", []string{"-reps", "-3"}, "-reps"},
		{"negative reps with seeds", []string{"-reps", "-3", "-seeds", "1,2"}, "-reps"},
		{"zero nodes", []string{"-nodes", "0"}, "-nodes"},
		{"negative nodes", []string{"-nodes", "-100"}, "-nodes"},
		{"negative jobs", []string{"-jobs", "-5"}, "-jobs"},
		{"zero workers", []string{"-workers", "0"}, "-workers"},
		{"negative workers", []string{"-workers", "-2"}, "-workers"},
		{"negative sparse", []string{"-sparse", "-16"}, "-sparse"},
		{"empty scheme entry", []string{"-schemes", "dynamic,,first-fit"}, "empty scheme"},
		{"only commas", []string{"-schemes", ","}, "empty scheme"},
		{"trailing comma", []string{"-schemes", "dynamic,"}, "empty scheme"},
		{"blank scheme entry", []string{"-schemes", "dynamic, ,first-fit"}, "empty scheme"},
		{"bad seed entry", []string{"-seeds", "1,x,3"}, "seed"},
		{"zero cells", []string{"-cells", "0"}, "-cells"},
		{"negative cells", []string{"-cells", "-4"}, "-cells"},
		{"more cells than nodes", []string{"-nodes", "8", "-cells", "9"}, "-cells"},
		{"negative kernel workers", []string{"-kernel-workers", "-1"}, "-kernel-workers"},
		{"very negative kernel workers", []string{"-kernel-workers", "-8"}, "-kernel-workers"},
		{"unknown scheme", []string{"-schemes", "nope", "-reps", "1", "-nodes", "8", "-jobs", "10"}, "scheme"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			err := run(tc.args, &sb)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCrossFlagSchemeMatrix mirrors dvmpsim's pairwise table: -sparse
// and -kernel-workers only configure dynamic-family kernels, so a sweep
// whose roster contains no such scheme must reject them up front (before
// any run starts), while any roster containing one accepts them.
func TestCrossFlagSchemeMatrix(t *testing.T) {
	schemes := []struct {
		name  string
		isDyn bool
	}{
		{"first-fit", false},
		{"best-fit", false},
		{"worst-fit", false},
		{"random", false},
		{"threshold", false},
		{"overbook", false},
		{"dynamic", true},
		{"dynamic-adaptive", true},
	}
	flags := [][]string{
		{"-sparse", "8"},
		{"-kernel-workers", "2"},
	}
	for _, s := range schemes {
		for _, fl := range flags {
			t.Run(s.name+fl[0], func(t *testing.T) {
				args := append([]string{
					"-schemes", s.name, "-reps", "1", "-nodes", "8", "-jobs", "10", "-workers", "1",
				}, fl...)
				var sb strings.Builder
				err := run(args, &sb)
				if s.isDyn {
					if err != nil {
						t.Fatalf("%v rejected for dynamic-family scheme: %v", fl, err)
					}
					return
				}
				if err == nil {
					t.Fatalf("%v accepted for all-static roster %s", fl, s.name)
				}
				if !strings.Contains(err.Error(), "dynamic scheme family") {
					t.Errorf("error %q does not name the dynamic scheme family", err)
				}
			})
		}
	}
	// A mixed roster with one dynamic-family member accepts both flags.
	var sb strings.Builder
	if err := run([]string{
		"-schemes", "first-fit,dynamic-adaptive", "-reps", "1", "-nodes", "8", "-jobs", "10",
		"-workers", "1", "-sparse", "8", "-kernel-workers", "2",
	}, &sb); err != nil {
		t.Fatalf("mixed roster rejected dynamic-family flags: %v", err)
	}
}

// TestRunTournament pins the -tournament path: the default roster runs,
// the standings table lists every policy with a rank, and -o writes the
// full report JSON.
func TestRunTournament(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tournament.json")
	var sb strings.Builder
	err := run([]string{
		"-tournament", "-reps", "2", "-nodes", "8", "-jobs", "20", "-workers", "1", "-o", path,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tournament:", "rank", "first-fit", "best-fit", "dynamic", "overbook", "dynamic-adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("standings missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scores", "TotalScore", "Sweep"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report JSON missing %q", want)
		}
	}
}

// TestRunSmallSweep exercises the happy path end to end on a tiny sweep.
func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-schemes", "first-fit", "-reps", "1", "-nodes", "8", "-jobs", "30", "-workers", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1 runs", "first-fit"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSparseReportMatchesDense runs the same tiny dynamic sweep twice —
// dense and with -sparse — and requires byte-identical report JSON: the
// candidate-set engine must not change a single decision, so energy,
// migration, and queueing aggregates all match exactly.
func TestRunSparseReportMatchesDense(t *testing.T) {
	dir := t.TempDir()
	report := func(name string, extra ...string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		args := append([]string{
			"-schemes", "dynamic", "-reps", "1", "-nodes", "8", "-jobs", "40",
			"-workers", "1", "-o", path,
		}, extra...)
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	dense := report("dense.json")
	sparse := report("sparse.json", "-sparse", "64")
	if !bytes.Equal(dense, sparse) {
		t.Fatal("sparse sweep report differs from dense; the engines diverged")
	}
}

// TestRunCellsReportMatchesMonolith runs the same tiny sweep at -cells 1,
// 2, and 8 and requires byte-identical report JSON: the multi-cell engine
// makes the monolith's exact decisions, so every aggregate matches.
func TestRunCellsReportMatchesMonolith(t *testing.T) {
	dir := t.TempDir()
	report := func(name string, extra ...string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		args := append([]string{
			"-schemes", "dynamic,first-fit", "-reps", "2", "-nodes", "8", "-jobs", "40",
			"-workers", "2", "-o", path,
		}, extra...)
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	mono := report("mono.json")
	for _, cells := range []string{"2", "8"} {
		if got := report("cells"+cells+".json", "-cells", cells); !bytes.Equal(got, mono) {
			t.Fatalf("-cells %s sweep report differs from the monolith's", cells)
		}
	}
}
