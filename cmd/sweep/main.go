// Command sweep runs a replication sweep: the full scheme x seed cross
// product, each (scheme, seed) pair one independent simulation, scheduled
// across a work-stealing worker pool (exp.RunSweep) and merged into a
// deterministic report. One seed is one sample — policy comparisons only
// mean something across replications, and this command is the batch tool
// that produces them: per-scheme mean/stddev/min/max of the week energy,
// active-server, migration, and queueing metrics.
//
// Usage:
//
//	sweep [-schemes first-fit,best-fit,dynamic] [-reps 8 | -seeds 1,4,9]
//	      [-workers N] [-nodes 100] [-jobs 0] [-spare] [-sparse K] [-cells C]
//	      [-kernel-workers W] [-tournament]
//	      [-o report.json] [-cpuprofile cpu.out] [-memprofile mem.out] [-v]
//
// Each seed generates its own synthetic week (the Figure 2 calibration),
// shared read-only by every scheme replaying it; -jobs truncates each week
// to its first N jobs for quick sweeps. -workers bounds the concurrent
// runs (default GOMAXPROCS; must be positive); the merged report — and
// therefore the -o JSON — is byte-identical for every worker count, so a
// sweep's output can be compared across machines regardless of their core
// counts. -sparse K routes the dynamic scheme through the candidate-set
// placement engine with budget K (bit-identical decisions, see README
// "Sparse placement"); 0 keeps the dense kernel. -cells C partitions every
// run's fleet into C cells advanced by the shared-clock orchestrator (see
// README "Multi-cell runs"); results are bit-identical to -cells 1, so the
// report JSON is byte-identical across cell counts.
//
// -kernel-workers W bounds the goroutines the dynamic scheme's placement
// kernels fan out on inside each run (see README "Parallel kernels" and
// DESIGN.md §15). The replication workers and the in-run kernels share
// one process-wide goroutine budget: with -kernel-workers 0 (auto) a
// saturated sweep keeps the kernels serial, while an explicit W > 1 is
// honored per run. Results — and the report JSON — are bit-identical at
// every setting.
//
// -tournament scores the roster as a policy tournament instead of printing
// raw aggregates: each policy is ranked per objective (mean week energy,
// mean queued fraction, mean migrations) and the ranks combine by Borda
// count, lower total winning (see README "Policy lab"). Without -schemes
// the tournament fields the five-policy lab roster (first-fit, best-fit,
// dynamic, overbook, dynamic-adaptive); -o writes the full standings plus
// the underlying sweep as JSON. Scheme names are validated up front, and
// -sparse/-kernel-workers are rejected unless the roster includes a
// dynamic-family scheme they could apply to.
//
// The -cpuprofile and -memprofile flags capture runtime/pprof profiles of
// the whole sweep for `go tool pprof`, mirroring cmd/dvmpsim; with more
// than one worker the CPU profile shows the placement hot path replicated
// across worker goroutines, which is how slab-kernel and scheduler costs
// are attributed under the parallel load (see README "Profiling").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/exp"
	"repro/internal/policy"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		schemesFlag = fs.String("schemes", "", "comma-separated schemes (default: the paper's trio)")
		reps        = fs.Int("reps", 8, "number of replications; seeds are 1..reps")
		seedsFlag   = fs.String("seeds", "", "explicit comma-separated seed list (overrides -reps)")
		workers     = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent runs")
		nodes       = fs.Int("nodes", 100, "fleet size (Table II fast:slow mix is preserved)")
		jobCount    = fs.Int("jobs", 0, "truncate each seed's week to the first N jobs (0 = all)")
		useSpare    = fs.Bool("spare", true, "attach the spare-server controller to the dynamic scheme")
		sparseK     = fs.Int("sparse", 0, "candidate budget K for the dynamic scheme's sparse engine (0 = dense)")
		cells       = fs.Int("cells", 1, "partition each run's fleet into this many cells (bit-identical results; 1 = monolithic)")
		kernelW     = fs.Int("kernel-workers", 0, "goroutines the dynamic scheme's placement kernels fan out on per run (0 = auto under the shared budget, 1 = serial; bit-identical results)")
		outPath     = fs.String("o", "", "write the merged report as JSON to this file (- for stdout)")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf     = fs.String("memprofile", "", "write an end-of-sweep heap profile to this file")
		tournament  = fs.Bool("tournament", false, "score the schemes as a policy tournament: per-objective ranks (energy, violations, migrations) combined by Borda count (default roster: the five-policy lab lineup)")
		verbose     = fs.Bool("v", false, "print every run, not just the per-scheme aggregates")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *reps < 1:
		return fmt.Errorf("-reps must be positive (got %d)", *reps)
	case *nodes <= 0:
		return fmt.Errorf("-nodes must be positive (got %d)", *nodes)
	case *jobCount < 0:
		return fmt.Errorf("-jobs must be >= 0 (got %d)", *jobCount)
	case *workers <= 0:
		return fmt.Errorf("-workers must be positive (got %d)", *workers)
	case *sparseK < 0:
		return fmt.Errorf("-sparse must be >= 0 (got %d)", *sparseK)
	case *cells < 1:
		return fmt.Errorf("-cells must be positive (got %d)", *cells)
	case *cells > *nodes:
		return fmt.Errorf("-cells (%d) cannot exceed -nodes (%d): every cell needs at least one PM", *cells, *nodes)
	case *kernelW < 0:
		return fmt.Errorf("-kernel-workers must be >= 0 (got %d)", *kernelW)
	}
	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		return err
	}
	seeds, err := parseSeeds(*seedsFlag, *reps)
	if err != nil {
		return err
	}
	// Validate the effective scheme list eagerly: a bad name or a
	// dynamic-only flag paired with an all-static roster should fail
	// here with the offending scheme named, not minutes into the sweep.
	effective := schemes
	if len(effective) == 0 {
		if *tournament {
			effective = exp.DefaultTournamentPolicies()
		} else {
			effective = []string{"first-fit", "best-fit", "dynamic"}
		}
	}
	anyDyn := false
	for _, s := range effective {
		p, err := policy.ByName(s, 1)
		if err != nil {
			return err
		}
		if _, ok := policy.DynamicOf(p); ok {
			anyDyn = true
		}
	}
	if !anyDyn {
		switch {
		case *sparseK > 0:
			return fmt.Errorf("-sparse applies to the dynamic scheme family only (schemes: %s)", strings.Join(effective, ","))
		case *kernelW != 0:
			return fmt.Errorf("-kernel-workers applies to the dynamic scheme family only (schemes: %s)", strings.Join(effective, ","))
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: memprofile:", err)
			}
		}()
	}

	opts := exp.SweepOptions{
		Base: exp.Options{
			SpareForDynamic: *useSpare,
			CandidateK:      *sparseK,
			Cells:           *cells,
			KernelWorkers:   *kernelW,
			TraceGen:        traceGen(*jobCount),
		},
		Schemes: schemes,
		Seeds:   seeds,
		Workers: *workers,
	}
	if *nodes != 100 {
		n := *nodes
		opts.Base.Fleet = func() *cluster.Datacenter { return cluster.TableIIFleetScaled(n) }
	}

	if *tournament {
		return runTournament(opts, schemes, *workers, *outPath, out)
	}

	effWorkers := *workers
	start := time.Now()
	report, err := exp.RunSweep(opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "sweep: %d runs (%d schemes x %d seeds) on %d workers in %.2fs (%.2f runs/sec)\n\n",
		len(report.Runs), len(report.Schemes), len(report.Seeds), effWorkers,
		elapsed.Seconds(), float64(len(report.Runs))/elapsed.Seconds())
	if *verbose {
		fmt.Fprintf(out, "%-12s %6s %12s %9s %11s %7s %8s\n",
			"scheme", "seed", "week kWh", "meanPMs", "migrations", "boots", "queued%")
		for _, r := range report.Runs {
			fmt.Fprintf(out, "%-12s %6d %12.1f %9.1f %11d %7d %7.2f%%\n",
				r.Scheme, r.Seed, r.WeekEnergyKWh, r.MeanActivePMs,
				r.Migrations, r.Boots, r.QueuedFraction*100)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "%-12s %5s %21s %19s %9s %12s %8s\n",
		"scheme", "runs", "week kWh (mean±sd)", "[min, max]", "meanPMs", "migrations", "queued%")
	for _, a := range report.Aggregates {
		fmt.Fprintf(out, "%-12s %5d %13.1f ± %5.1f [%7.1f, %7.1f] %9.1f %12.1f %7.2f%%\n",
			a.Scheme, a.Runs,
			a.WeekEnergyKWh.Mean, a.WeekEnergyKWh.StdDev,
			a.WeekEnergyKWh.Min, a.WeekEnergyKWh.Max,
			a.MeanActivePMs.Mean, a.Migrations.Mean, a.QueuedFraction.Mean*100)
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *outPath == "-" {
			_, err := out.Write(data)
			return err
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", *outPath)
	}
	return nil
}

// runTournament scores the roster on multi-objective fitness and prints
// the standings (see exp.RunTournament; the report is byte-identical at
// every worker count, so -o output is machine-comparable).
func runTournament(opts exp.SweepOptions, schemes []string, workers int, outPath string, out io.Writer) error {
	start := time.Now()
	report, err := exp.RunTournament(exp.TournamentOptions{
		Base:     opts.Base,
		Policies: schemes, // nil -> the default five-policy roster
		Seeds:    opts.Seeds,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	sweep := report.Sweep
	fmt.Fprintf(out, "tournament: %d runs (%d policies x %d seeds) on %d workers in %.2fs\n\n",
		len(sweep.Runs), len(sweep.Schemes), len(sweep.Seeds), workers, elapsed.Seconds())
	fmt.Fprintf(out, "%4s %-18s %6s %14s %5s %12s %5s %12s %5s\n",
		"rank", "policy", "score", "energy kWh", "r", "violations", "r", "migrations", "r")
	for _, s := range report.Scores {
		fmt.Fprintf(out, "%4d %-18s %6d %14.1f %5d %11.2f%% %5d %12.1f %5d\n",
			s.Rank, s.Scheme, s.TotalScore,
			s.EnergyMean, s.EnergyRank,
			s.ViolationMean*100, s.ViolationRank,
			s.MigrationsMean, s.MigrationRank)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if outPath == "-" {
			_, err := out.Write(data)
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", outPath)
	}
	return nil
}

// traceGen builds the per-seed workload generator: the synthetic week,
// optionally truncated to its first n jobs (matching dvmpsim's -jobs).
func traceGen(n int) func(seed int64) []workload.Request {
	return func(seed int64) []workload.Request {
		jobs, reqs := exp.WeekTrace(seed)
		if n <= 0 || n >= len(jobs) {
			return reqs
		}
		return workload.ToRequests(jobs[:n])
	}
}

// parseSchemes splits the -schemes list, rejecting empty entries: a stray
// comma would otherwise reach policy.ByName as a nameless scheme and fail
// deep inside the sweep with a confusing error — or worse, silently drop a
// scheme the user thought they were comparing.
func parseSchemes(list string) ([]string, error) {
	if list == "" {
		return nil, nil // exp.RunSweep substitutes the paper's trio
	}
	var schemes []string
	for _, s := range strings.Split(list, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, fmt.Errorf("empty scheme entry in -schemes %q", list)
		}
		schemes = append(schemes, s)
	}
	return schemes, nil
}

// parseSeeds resolves the replication seeds: the explicit -seeds list when
// given, else 1..reps.
func parseSeeds(list string, reps int) ([]int64, error) {
	if list == "" {
		seeds := make([]int64, reps)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		return seeds, nil
	}
	var seeds []int64
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed entry %q", f)
		}
		seeds = append(seeds, n)
	}
	return seeds, nil
}
