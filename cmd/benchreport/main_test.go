package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSmallFleet drives the whole report pipeline at a tiny scale and
// checks the JSON schema plus the built-in kernel/naive equivalence
// assertions (measureScale errors out if Best or the arrival PM differ).
func TestRunSmallFleet(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-suite", "core", "-sizes", "8,16", "-benchtime", "5ms", "-o", out}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if len(rep.Scales) != 2 {
		t.Fatalf("got %d scales, want 2", len(rep.Scales))
	}
	for _, sc := range rep.Scales {
		if sc.PMs <= 0 || sc.VMs <= 0 {
			t.Errorf("scale %+v missing fleet sizes", sc)
		}
		for name, m := range map[string]Measurement{
			"build": sc.Build, "round": sc.Round, "arrival": sc.Arrival,
		} {
			if m.KernelNsOp <= 0 || m.NaiveNsOp <= 0 {
				t.Errorf("pms=%d %s: non-positive timings %+v", sc.PMs, name, m)
			}
			if m.Speedup <= 0 {
				t.Errorf("pms=%d %s: missing speedup %+v", sc.PMs, name, m)
			}
			if m.Iters <= 0 || m.NaiveIters <= 0 {
				t.Errorf("pms=%d %s: missing iteration counts %+v", sc.PMs, name, m)
			}
		}
	}
}

// TestRunEngineSuite drives the scheduler comparison at a tiny scale,
// checks the schema, then feeds the report through -diff against itself
// (which must find every metric within threshold).
func TestRunEngineSuite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "engine.json")
	var buf bytes.Buffer
	if err := run([]string{"-suite", "engine", "-events", "2000,5000", "-benchtime", "5ms", "-engine-o", out}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep EngineReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if len(rep.Scales) != 2 {
		t.Fatalf("got %d scales, want 2", len(rep.Scales))
	}
	for _, sc := range rep.Scales {
		if sc.WheelNsEvent <= 0 || sc.HeapNsEvent <= 0 || sc.Speedup <= 0 {
			t.Errorf("events=%d: non-positive measurements %+v", sc.Events, sc)
		}
		if sc.Resident <= 0 || sc.Iters <= 0 || sc.HeapIters <= 0 {
			t.Errorf("events=%d: missing shape fields %+v", sc.Events, sc)
		}
	}
	buf.Reset()
	if err := run([]string{"-diff", out, out}, &buf); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("within")) {
		t.Fatalf("self-diff reported regressions:\n%s", buf.String())
	}
}

// TestRunScaleSuite drives the dense-vs-sparse comparison at a tiny
// scale, checks the schema and the built-in equivalence gates (DiffDense
// and the arrival-PM assert error out on any divergence), then feeds the
// report through -diff against itself to prove the BENCH_scale.json
// schema is understood by the regression checker.
func TestRunScaleSuite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "scale.json")
	var buf bytes.Buffer
	if err := run([]string{"-suite", "scale", "-scale-sizes", "8,16", "-scale-k", "4",
		"-cell-counts", "1,3", "-cell-pms", "30",
		"-kernel-workers-list", "1,2", "-kernel-workers-pms", "40", "-large-pms", "60",
		"-benchtime", "5ms", "-scale-o", out}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var rep ScaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if rep.K != 4 {
		t.Errorf("report K = %d, want 4", rep.K)
	}
	if len(rep.Scales) != 3 {
		t.Fatalf("got %d scales, want 3 (two sized points plus the sparse-only large point)", len(rep.Scales))
	}
	for _, sc := range rep.Scales[:2] {
		if sc.PMs <= 0 || sc.VMs <= 0 {
			t.Errorf("scale %+v missing fleet sizes", sc)
		}
		for name, m := range map[string]ScaleMeasure{
			"build": sc.Build, "round": sc.Round, "arrival": sc.Arrival,
		} {
			if m.DenseNsOp <= 0 || m.SparseNsOp <= 0 {
				t.Errorf("pms=%d %s: non-positive timings %+v", sc.PMs, name, m)
			}
			if m.Speedup <= 0 {
				t.Errorf("pms=%d %s: missing speedup %+v", sc.PMs, name, m)
			}
			if m.DenseIters <= 0 || m.SparseIters <= 0 {
				t.Errorf("pms=%d %s: missing iteration counts %+v", sc.PMs, name, m)
			}
		}
	}
	// The large point is sparse-only: dense build/round timings stay zero
	// (which -diff skips), sparse timings must be real, and the arrival
	// comparison still has both sides (the dense arrival is matrix-free).
	large := rep.Scales[2]
	if large.PMs != 60 || large.VMs <= 0 {
		t.Errorf("large point fleet shape: pms=%d vms=%d, want pms=60", large.PMs, large.VMs)
	}
	if large.Build.DenseNsOp != 0 || large.Round.DenseNsOp != 0 {
		t.Errorf("large point timed a dense matrix: %+v", large)
	}
	if large.Build.SparseNsOp <= 0 || large.Round.SparseNsOp <= 0 {
		t.Errorf("large point missing sparse timings: %+v", large)
	}
	if large.Arrival.DenseNsOp <= 0 || large.Arrival.SparseNsOp <= 0 {
		t.Errorf("large point missing arrival timings: %+v", large)
	}
	// The kernel-workers curve rode along: one point per requested count,
	// every parallel point already asserted bit-identical to workers=1
	// (run would have errored), timings populated.
	if len(rep.WorkersCurve) != 2 {
		t.Fatalf("got %d kernel-workers points, want 2", len(rep.WorkersCurve))
	}
	if rep.KernelWorkersPMs != 40 {
		t.Errorf("kernel_workers_pms = %d, want 40", rep.KernelWorkersPMs)
	}
	for i, pt := range rep.WorkersCurve {
		if want := []int{1, 2}[i]; pt.Workers != want {
			t.Errorf("workers point %d is workers=%d, want %d", i, pt.Workers, want)
		}
		if pt.BuildNsOp <= 0 || pt.SparseBuildNsOp <= 0 || pt.PassNsOp <= 0 || pt.Speedup <= 0 || pt.Iters <= 0 {
			t.Errorf("workers=%d: non-positive measurements %+v", pt.Workers, pt)
		}
	}
	// The multi-cell curve rode along: one point per requested count, the
	// equivalence gate already passed (run would have errored), timings
	// populated, events identical across counts.
	if len(rep.CellCurve) != 2 {
		t.Fatalf("got %d cell points, want 2", len(rep.CellCurve))
	}
	if rep.CellPMs != 30 || rep.CellVMs <= 0 {
		t.Errorf("cell fleet shape: pms=%d vms=%d", rep.CellPMs, rep.CellVMs)
	}
	for i, pt := range rep.CellCurve {
		if pt.RunNsOp <= 0 || pt.NsPerEvent <= 0 || pt.Iters <= 0 || pt.Speedup <= 0 {
			t.Errorf("cells=%d: non-positive measurements %+v", pt.Cells, pt)
		}
		if pt.Events != rep.CellCurve[0].Events {
			t.Errorf("cells=%d dispatched %d events, cells=%d dispatched %d",
				pt.Cells, pt.Events, rep.CellCurve[0].Cells, rep.CellCurve[0].Events)
		}
		if want := []int{1, 3}[i]; pt.Cells != want {
			t.Errorf("cell point %d is cells=%d, want %d", i, pt.Cells, want)
		}
	}
	buf.Reset()
	if err := run([]string{"-diff", out, out}, &buf); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("within")) {
		t.Fatalf("self-diff reported regressions:\n%s", buf.String())
	}
}

// TestScaleSuiteCellValidation pins the cells-curve flag rejection rules.
func TestScaleSuiteCellValidation(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-suite", "scale", "-cell-counts", "0"},
		{"-suite", "scale", "-cell-counts", "1,x"},
		{"-suite", "scale", "-cell-pms", "1"},
		{"-suite", "scale", "-cell-pms", "8", "-cell-counts", "16"},
		{"-suite", "scale", "-kernel-workers-list", "0"},
		{"-suite", "scale", "-kernel-workers-list", "1,x"},
		{"-suite", "scale", "-kernel-workers-pms", "1"},
		{"-suite", "scale", "-large-pms", "-1"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestDiffReadsCommittedScaleReport pins the committed BENCH_scale.json
// against the -diff loader: its dense_ns_op/sparse_ns_op keys must
// flatten into pms-prefixed metrics or the bench-diff gate silently
// stops covering the scale suite.
func TestDiffReadsCommittedScaleReport(t *testing.T) {
	m, err := loadMetrics(filepath.Join("..", "..", "BENCH_scale.json"))
	if err != nil {
		t.Fatalf("loadMetrics: %v", err)
	}
	for _, want := range []string{
		"pms=10000/build/dense_ns_op",
		"pms=10000/build/sparse_ns_op",
		"pms=10000/round/sparse_ns_op",
		"pms=100/arrival/sparse_ns_op",
		"cells=1/run_ns_op",
		"cells=1/dispatch_ns_event",
		"cells=4/run_ns_op",
		"cells=16/run_ns_op",
		"cells=64/run_ns_op",
		"pms=100000/build/sparse_ns_op",
		"pms=100000/round/sparse_ns_op",
		"pms=100000/arrival/sparse_ns_op",
		"workers=1/build_ns_op",
		"workers=2/build_ns_op",
		"workers=4/sparse_build_ns_op",
		"workers=8/consolidate_ns_op",
	} {
		if _, ok := m[want]; !ok {
			t.Errorf("committed BENCH_scale.json missing metric %s", want)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes(" 100, 1000 ")
	if err != nil {
		t.Fatalf("parseSizes: %v", err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 1000 {
		t.Fatalf("parseSizes = %v, want [100 1000]", got)
	}
	if _, err := parseSizes("100,x"); err == nil {
		t.Fatal("parseSizes accepted a non-numeric entry")
	}
	if _, err := parseSizes("1"); err == nil {
		t.Fatal("parseSizes accepted a sub-minimum fleet")
	}
}
