// Command benchreport measures the repository's two performance pillars
// and records the results as JSON at the repository root:
//
//   - BENCH_core.json — the factored evaluation kernel against the
//     pre-kernel code path (frozen in internal/core/oracle) on the three
//     hot operations of the scheme: probability-matrix build, per-round
//     incremental update, and arrival placement.
//   - BENCH_engine.json — the calendar-queue event scheduler against the
//     pre-rewrite binary heap (frozen in internal/sim/schedheap) on a
//     steady-state churn workload at several total-event scales, with
//     events/sec and the wheel's allocation rate.
//   - BENCH_sweep.json — replication-sweep throughput (runs/sec) of
//     exp.RunSweep at several worker counts over a fixed reduced
//     configuration, with the host's CPU count recorded (scaling is bound
//     by available cores) and the merged reports asserted byte-identical
//     across worker counts.
//   - BENCH_scale.json — the sparse candidate-set engine
//     (MatrixOptions.CandidateK) against the dense kernel on the same
//     three hot operations at 100/1k/10k PMs. Decisions are asserted
//     identical (SparseMatrix.DiffDense, same arrival PM) before any
//     timing; the numbers quantify cost only, never behavior. The same
//     file also carries the multi-cell engine's curve: a fixed workload
//     on a 10k-PM fleet simulated end to end at C∈{1,4,16,64} cells,
//     every cell count's Result asserted identical to the monolith's
//     before timing, reporting whole-run and per-event cost of the
//     shared-clock orchestrator.
//
// BENCH_core.json additionally records, per scale, the slab-vs-scalar row
// fill ratio: the batched aligned-slab kernel path against the same kernel
// with MatrixOptions.DisableSlab, both rows asserted bit-identical first.
//
// It complements the `go test -bench` micro-benchmarks: those compare
// alternatives inside the current implementation, while this command
// compares against the frozen originals and emits a machine-readable
// record that `benchreport -diff` (and `make bench-diff`) can later check
// fresh numbers against.
//
// Usage:
//
//	benchreport [-suite all|core|engine|sweep|scale] [-o BENCH_core.json]
//	            [-engine-o BENCH_engine.json] [-sweep-o BENCH_sweep.json]
//	            [-scale-o BENCH_scale.json] [-sizes 100,1000]
//	            [-events 10000,100000,1000000] [-sweep-workers 1,2,4,8]
//	            [-scale-sizes 100,1000,10000] [-scale-k 64]
//	            [-cell-counts 1,4,16,64] [-cell-pms 10000]
//	            [-kernel-workers-list 1,2,4,8] [-kernel-workers-pms 1000]
//	            [-large-pms 100000] [-benchtime 300ms]
//	benchreport -diff old.json new.json [-threshold 0.2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/oracle"
	"repro/internal/exp"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/sim/schedheap"
	"repro/internal/spare"
	"repro/internal/stats"
	"repro/internal/vector"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// Report is the schema of BENCH_core.json.
type Report struct {
	Description string  `json:"description"`
	Go          string  `json:"go"`
	Generated   string  `json:"generated"`
	Benchtime   string  `json:"benchtime"`
	Scales      []Scale `json:"scales"`
}

// Scale holds one fleet size's measurements. Build, Round, and Arrival
// compare the kernel against the frozen pre-kernel oracle; Slab compares
// the kernel's batched aligned-slab row fill against the same kernel's
// scalar fill (MatrixOptions.DisableSlab) — current code both sides, the
// layout being the only difference.
type Scale struct {
	PMs     int         `json:"pms"`
	VMs     int         `json:"vms"`
	Build   Measurement `json:"build"`
	Round   Measurement `json:"round"`
	Arrival Measurement `json:"arrival"`
	Slab    Measurement `json:"slab"`
}

// Measurement compares the kernel path against the pre-kernel path on one
// operation. Alloc figures are per op, measured alongside the timing loop.
type Measurement struct {
	KernelNsOp     float64 `json:"kernel_ns_op"`
	NaiveNsOp      float64 `json:"naive_ns_op"`
	Speedup        float64 `json:"speedup"`
	KernelAllocsOp float64 `json:"kernel_allocs_op"`
	KernelBytesOp  float64 `json:"kernel_b_op"`
	NaiveAllocsOp  float64 `json:"naive_allocs_op"`
	NaiveBytesOp   float64 `json:"naive_b_op"`
	Iters          int     `json:"kernel_iters"`
	NaiveIters     int     `json:"naive_iters"`
}

// EngineReport is the schema of BENCH_engine.json.
type EngineReport struct {
	Description string        `json:"description"`
	Go          string        `json:"go"`
	Generated   string        `json:"generated"`
	Benchtime   string        `json:"benchtime"`
	Scales      []EngineScale `json:"scales"`
}

// EngineScale compares the calendar-queue wheel against the frozen binary
// heap on one total-event count of the churn workload.
type EngineScale struct {
	Events           int     `json:"events"`
	Resident         int     `json:"resident"`
	WheelNsEvent     float64 `json:"wheel_ns_event"`
	HeapNsEvent      float64 `json:"heap_ns_event"`
	Speedup          float64 `json:"speedup"`
	WheelEventsSec   float64 `json:"wheel_events_per_sec"`
	HeapEventsSec    float64 `json:"heap_events_per_sec"`
	WheelAllocsEvent float64 `json:"wheel_allocs_event"`
	WheelBytesEvent  float64 `json:"wheel_b_event"`
	Iters            int     `json:"wheel_iters"`
	HeapIters        int     `json:"heap_iters"`
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "-diff" {
		return runDiff(args[1:], out)
	}
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		suite       = fs.String("suite", "all", "which suite to run: all, core, engine, sweep, or scale")
		outPath     = fs.String("o", "BENCH_core.json", "core output JSON path (- for stdout)")
		enginePath  = fs.String("engine-o", "BENCH_engine.json", "engine output JSON path (- for stdout)")
		sweepPath   = fs.String("sweep-o", "BENCH_sweep.json", "sweep output JSON path (- for stdout)")
		scalePath   = fs.String("scale-o", "BENCH_scale.json", "scale output JSON path (- for stdout)")
		sizesFlag   = fs.String("sizes", "100,1000", "comma-separated PM counts (VMs = 2x)")
		eventsFlag  = fs.String("events", "10000,100000,1000000", "comma-separated total event counts")
		workersFlag = fs.String("sweep-workers", "1,2,4,8", "comma-separated sweep worker counts")
		scaleSizes  = fs.String("scale-sizes", "100,1000,10000", "comma-separated PM counts for the scale suite (VMs = 2x)")
		scaleK      = fs.Int("scale-k", 64, "candidate budget K for the scale suite's sparse side")
		cellCounts  = fs.String("cell-counts", "1,4,16,64", "comma-separated cell counts for the scale suite's multi-cell curve")
		cellPMs     = fs.Int("cell-pms", 10000, "fleet size for the multi-cell curve's end-to-end runs")
		kwList      = fs.String("kernel-workers-list", "1,2,4,8", "comma-separated kernel worker counts for the scale suite's parallelism curve")
		kwPMs       = fs.Int("kernel-workers-pms", 1000, "fleet size for the kernel-workers curve")
		largePMs    = fs.Int("large-pms", 100000, "fleet size for the sparse-only large scale point (0 disables it)")
		benchtime   = fs.Duration("benchtime", 300*time.Millisecond, "minimum measuring time per case")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *suite {
	case "all", "core", "engine", "sweep", "scale":
	default:
		return fmt.Errorf("bad -suite %q (want all, core, engine, sweep, or scale)", *suite)
	}
	if *scaleK < 1 {
		return fmt.Errorf("-scale-k must be positive (got %d)", *scaleK)
	}
	if *suite == "all" || *suite == "core" {
		if err := runCore(out, *outPath, *sizesFlag, *benchtime); err != nil {
			return err
		}
	}
	if *suite == "all" || *suite == "engine" {
		if err := runEngine(out, *enginePath, *eventsFlag, *benchtime); err != nil {
			return err
		}
	}
	if *suite == "all" || *suite == "sweep" {
		if err := runSweepSuite(out, *sweepPath, *workersFlag, *benchtime); err != nil {
			return err
		}
	}
	if *suite == "all" || *suite == "scale" {
		if err := runScaleSuite(out, *scalePath, *scaleSizes, *scaleK, *cellCounts, *cellPMs, *kwList, *kwPMs, *largePMs, *benchtime); err != nil {
			return err
		}
	}
	return nil
}

func runCore(out io.Writer, outPath, sizesFlag string, benchtime time.Duration) error {
	sizes, err := parseSizes(sizesFlag)
	if err != nil {
		return err
	}
	rep := Report{
		Description: "factored probability kernel vs pre-kernel implementation: " +
			"matrix build, per-round incremental update (one Apply), arrival placement",
		Go:        runtime.Version(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: benchtime.String(),
	}
	for _, pms := range sizes {
		sc, err := measureScale(out, pms, 2*pms, benchtime)
		if err != nil {
			return err
		}
		rep.Scales = append(rep.Scales, sc)
	}
	return writeJSON(out, outPath, rep)
}

func runEngine(out io.Writer, outPath, eventsFlag string, benchtime time.Duration) error {
	counts, err := parseSizes(eventsFlag)
	if err != nil {
		return err
	}
	rep := EngineReport{
		Description: "calendar-queue event scheduler vs frozen binary heap (internal/sim/schedheap): " +
			"steady-state churn, one reschedule per dispatch, pseudo-random delays",
		Go:        runtime.Version(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: benchtime.String(),
	}
	for _, n := range counts {
		sc, err := measureEngineScale(out, n, benchtime)
		if err != nil {
			return err
		}
		rep.Scales = append(rep.Scales, sc)
	}
	return writeJSON(out, outPath, rep)
}

// SweepBenchReport is the schema of BENCH_sweep.json. Throughput scaling
// is bound by the host's cores, so the report records the CPU count the
// numbers were taken on: on a 1-CPU machine runs/sec stays flat across
// worker counts by physics, not by defect.
type SweepBenchReport struct {
	Description string       `json:"description"`
	Go          string       `json:"go"`
	Generated   string       `json:"generated"`
	Benchtime   string       `json:"benchtime"`
	CPUs        int          `json:"cpus"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Schemes     []string     `json:"schemes"`
	Seeds       int          `json:"seeds"`
	Nodes       int          `json:"nodes"`
	JobsPerSeed int          `json:"jobs_per_seed"`
	RunsPerOp   int          `json:"runs_per_sweep"`
	Identical   bool         `json:"merged_reports_identical"`
	Scales      []SweepScale `json:"scales"`
}

// SweepScale is one worker count's throughput measurement.
type SweepScale struct {
	Workers    int     `json:"workers"`
	SweepNsOp  float64 `json:"sweep_ns_op"`
	RunNsOp    float64 `json:"run_ns_op"`
	RunsPerSec float64 `json:"runs_per_sec"`
	Speedup    float64 `json:"speedup_vs_w1"`
	Iters      int     `json:"sweep_iters"`
}

// Fixed reduced configuration for the sweep suite: the paper's scheme trio
// over eight seeds on a 32-node Table II-mix fleet, each seed's week trace
// truncated to its first 500 jobs. Small enough that a full sweep is
// seconds, big enough that a run exercises the real consolidation path.
const (
	sweepBenchNodes = 32
	sweepBenchJobs  = 500
	sweepBenchSeeds = 8
)

func sweepBenchOptions(workers int) exp.SweepOptions {
	seeds := make([]int64, sweepBenchSeeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return exp.SweepOptions{
		Base: exp.Options{
			SpareForDynamic: true,
			Fleet:           func() *cluster.Datacenter { return cluster.TableIIFleetScaled(sweepBenchNodes) },
			TraceGen: func(seed int64) []workload.Request {
				jobs, _ := exp.WeekTrace(seed)
				if len(jobs) > sweepBenchJobs {
					jobs = jobs[:sweepBenchJobs]
				}
				return workload.ToRequests(jobs)
			},
		},
		Schemes: []string{"first-fit", "best-fit", "dynamic"},
		Seeds:   seeds,
		Workers: workers,
	}
}

// runSweepSuite measures exp.RunSweep throughput at each worker count and,
// first, asserts the deterministic-merge contract the sweep runner makes:
// the merged report must serialize byte-identically no matter how many
// workers ran it.
func runSweepSuite(out io.Writer, outPath, workersFlag string, benchtime time.Duration) error {
	workerCounts, err := parseWorkers(workersFlag)
	if err != nil {
		return err
	}
	rep := SweepBenchReport{
		Description: "replication sweep throughput (exp.RunSweep): paper scheme trio x 8 seeds, " +
			"32-node fleet, 500-job weeks; merged reports asserted byte-identical across worker counts",
		Go:          runtime.Version(),
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Benchtime:   benchtime.String(),
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Schemes:     sweepBenchOptions(1).Schemes,
		Seeds:       sweepBenchSeeds,
		Nodes:       sweepBenchNodes,
		JobsPerSeed: sweepBenchJobs,
		RunsPerOp:   3 * sweepBenchSeeds,
	}

	// Determinism gate before any timing: every worker count must merge
	// to the same bytes as workers=1.
	var reference []byte
	for _, w := range workerCounts {
		report, err := exp.RunSweep(sweepBenchOptions(w))
		if err != nil {
			return fmt.Errorf("sweep workers=%d: %w", w, err)
		}
		got, err := json.Marshal(report)
		if err != nil {
			return err
		}
		if reference == nil {
			reference = got
			continue
		}
		if string(got) != string(reference) {
			return fmt.Errorf("sweep workers=%d: merged report differs from workers=%d (determinism violated)",
				w, workerCounts[0])
		}
	}
	rep.Identical = true

	var base float64
	for _, w := range workerCounts {
		opts := sweepBenchOptions(w)
		s, err := measure(benchtime, func() error {
			_, err := exp.RunSweep(opts)
			return err
		})
		if err != nil {
			return err
		}
		sc := SweepScale{
			Workers:    w,
			SweepNsOp:  s.nsPerOp,
			RunNsOp:    s.nsPerOp / float64(rep.RunsPerOp),
			RunsPerSec: float64(rep.RunsPerOp) * 1e9 / s.nsPerOp,
			Iters:      s.iters,
		}
		if base == 0 {
			base = s.nsPerOp
		}
		sc.Speedup = base / s.nsPerOp
		rep.Scales = append(rep.Scales, sc)
		fmt.Fprintf(out, "workers=%-3d %7.2f runs/sec  (%.0fms/run, sweep %.2fs)  speedup %.2fx  [cpus=%d]\n",
			w, sc.RunsPerSec, sc.RunNsOp/1e6, sc.SweepNsOp/1e9, sc.Speedup, rep.CPUs)
	}
	return writeJSON(out, outPath, rep)
}

// ScaleReport is the schema of BENCH_scale.json. The sparse engine's
// contract is bit-identical decisions, so unlike the other suites both
// sides are current code: the report answers "what does candidate-set
// placement buy at fleet scale M", not "did behavior change".
type ScaleReport struct {
	Description string       `json:"description"`
	Go          string       `json:"go"`
	Generated   string       `json:"generated"`
	Benchtime   string       `json:"benchtime"`
	K           int          `json:"k"`
	CPUs        int          `json:"cpus"`
	Scales      []ScalePoint `json:"scales"`
	CellPMs     int          `json:"cell_pms"`
	CellVMs     int          `json:"cell_vms"`
	CellCurve   []CellPoint  `json:"cells"`

	// KernelWorkersPMs is the fixed fleet size the kernel-workers curve
	// runs on; WorkersCurve is that curve (one point per worker count).
	KernelWorkersPMs int           `json:"kernel_workers_pms"`
	WorkersCurve     []WorkerPoint `json:"kernel_workers"`
}

// WorkerPoint is one MatrixOptions.Workers setting's cost on the fixed
// fleet: dense build, sparse build, and a full steady-state consolidation
// pass. Every parallel point's results — matrices cell-for-cell, move
// streams move-for-move — are asserted identical to the workers=1 run
// before anything is timed, so the curve can only ever show scheduling
// cost, never a behavior change. On a single-core host the curve is flat
// by physics (the report records cpus for exactly that reason); the
// equivalence gate still exercises the real parallel code paths, because
// explicit worker counts spawn their goroutines regardless of cores.
type WorkerPoint struct {
	Workers         int     `json:"workers"`
	BuildNsOp       float64 `json:"build_ns_op"`
	SparseBuildNsOp float64 `json:"sparse_build_ns_op"`
	PassNsOp        float64 `json:"consolidate_ns_op"`
	Speedup         float64 `json:"speedup_vs_w1"`
	Iters           int     `json:"iters"`
}

// ScalePoint holds one fleet size's dense-vs-sparse measurements.
type ScalePoint struct {
	PMs     int          `json:"pms"`
	VMs     int          `json:"vms"`
	Build   ScaleMeasure `json:"build"`
	Round   ScaleMeasure `json:"round"`
	Arrival ScaleMeasure `json:"arrival"`
}

// CellPoint is one cell count's end-to-end simulation cost on the fixed
// multi-cell bench scenario. Every point's Result is asserted identical
// to the monolith's (cells=1) before timing — the curve quantifies the
// shared-clock orchestrator's overhead, never a behavior change. The
// _ns_op/_ns_event keys join `benchreport -diff` automatically.
type CellPoint struct {
	Cells      int     `json:"cells"`
	RunNsOp    float64 `json:"run_ns_op"`
	NsPerEvent float64 `json:"dispatch_ns_event"`
	Speedup    float64 `json:"speedup_vs_monolith"`
	Events     uint64  `json:"events"`
	Iters      int     `json:"iters"`
}

// ScaleMeasure compares the two engines on one operation. The timing keys
// end in _ns_op so `benchreport -diff` folds them into its regression
// check alongside the other suites' metrics.
type ScaleMeasure struct {
	DenseNsOp   float64 `json:"dense_ns_op"`
	SparseNsOp  float64 `json:"sparse_ns_op"`
	Speedup     float64 `json:"speedup"`
	DenseIters  int     `json:"dense_iters"`
	SparseIters int     `json:"sparse_iters"`
}

func newScaleMeasure(d, s sample) ScaleMeasure {
	m := ScaleMeasure{
		DenseNsOp: d.nsPerOp, SparseNsOp: s.nsPerOp,
		DenseIters: d.iters, SparseIters: s.iters,
	}
	if s.nsPerOp > 0 {
		m.Speedup = d.nsPerOp / s.nsPerOp
	}
	return m
}

func runScaleSuite(out io.Writer, outPath, sizesFlag string, k int, cellCountsFlag string, cellPMs int, kwCountsFlag string, kwPMs, largePMs int, benchtime time.Duration) error {
	sizes, err := parseSizes(sizesFlag)
	if err != nil {
		return err
	}
	counts, err := parseWorkers(cellCountsFlag) // same grammar: positive ints
	if err != nil {
		return fmt.Errorf("-cell-counts: %w", err)
	}
	if cellPMs < 2 {
		return fmt.Errorf("-cell-pms must be at least 2 (got %d)", cellPMs)
	}
	for _, c := range counts {
		if c > cellPMs {
			return fmt.Errorf("-cell-counts entry %d exceeds -cell-pms %d: every cell needs at least one PM", c, cellPMs)
		}
	}
	kwCounts, err := parseWorkers(kwCountsFlag)
	if err != nil {
		return fmt.Errorf("-kernel-workers-list: %w", err)
	}
	if kwPMs < 2 {
		return fmt.Errorf("-kernel-workers-pms must be at least 2 (got %d)", kwPMs)
	}
	if largePMs < 0 {
		return fmt.Errorf("-large-pms must be >= 0 (got %d)", largePMs)
	}
	rep := ScaleReport{
		Description: "sparse candidate-set engine (MatrixOptions.CandidateK) vs dense kernel: " +
			"matrix build, per-round incremental update (one Apply), arrival placement; " +
			"decisions asserted identical before timing. cells[] is the multi-cell " +
			"engine's end-to-end curve on the fixed bench scenario, every cell count's " +
			"Result asserted identical to the monolith's. kernel_workers[] is the " +
			"in-run parallelism curve (MatrixOptions.Workers), every point's matrices " +
			"and move streams asserted bit-identical to workers=1 before timing; the " +
			"largest scales[] point is sparse-only (a dense matrix at that size would " +
			"not fit in memory), gated by a parallel-vs-serial sparse build diff",
		Go:        runtime.Version(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: benchtime.String(),
		K:         k,
		CPUs:      runtime.NumCPU(),
		CellPMs:   cellPMs,
	}
	for _, pms := range sizes {
		sc, err := measureScalePoint(out, pms, 2*pms, k, benchtime)
		if err != nil {
			return err
		}
		rep.Scales = append(rep.Scales, sc)
	}
	if largePMs > 0 {
		sc, err := measureLargeScalePoint(out, largePMs, 2*largePMs, k, benchtime)
		if err != nil {
			return err
		}
		rep.Scales = append(rep.Scales, sc)
	}
	if err := measureWorkersCurve(out, &rep, kwCounts, kwPMs, k, benchtime); err != nil {
		return err
	}
	if err := measureCellCurve(out, &rep, counts, cellPMs, k, benchtime); err != nil {
		return err
	}
	return writeJSON(out, outPath, rep)
}

// measureWorkersCurve times the parallel kernels at each worker count on
// one fixed fleet. Gate first: the dense matrix, the sparse matrix, and a
// full consolidation move stream at every count must be bit-identical to
// the workers=1 run; only then is anything timed.
func measureWorkersCurve(out io.Writer, rep *ScaleReport, counts []int, pms, k int, benchtime time.Duration) error {
	factors := core.DefaultFactors()
	params := core.DefaultParams()
	const seed = 7
	nVMs := 2 * pms
	rep.KernelWorkersPMs = pms

	ctx, vms := benchState(pms, nVMs, seed)
	denseRef, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{Workers: 1})
	if err != nil {
		return err
	}
	sparseRef, err := core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k, Workers: 1})
	if err != nil {
		return err
	}
	ctxRef, _ := benchState(pms, nVMs, seed)
	movesRef, err := core.ConsolidateWith(ctxRef, factors, params, core.MatrixOptions{Workers: 1})
	if err != nil {
		return err
	}
	for _, w := range counts {
		if w == 1 {
			continue
		}
		opts := core.MatrixOptions{Workers: w}
		dm, err := core.NewMatrixWith(ctx, factors, vms, opts)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		err = denseRef.Diff(dm)
		dm.Release()
		if err != nil {
			return fmt.Errorf("workers=%d: dense build diverges from serial (equivalence violated): %w", w, err)
		}
		sm, err := core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k, Workers: w})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		if err := sparseRef.DiffSparse(sm); err != nil {
			return fmt.Errorf("workers=%d: sparse build diverges from serial (equivalence violated): %w", w, err)
		}
		ctxW, _ := benchState(pms, nVMs, seed)
		moves, err := core.ConsolidateWith(ctxW, factors, params, opts)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		if len(moves) != len(movesRef) {
			return fmt.Errorf("workers=%d: consolidation emitted %d moves, serial %d (equivalence violated)", w, len(moves), len(movesRef))
		}
		for i := range moves {
			if moves[i] != movesRef[i] {
				return fmt.Errorf("workers=%d: move %d is %+v, serial %+v (equivalence violated)", w, i, moves[i], movesRef[i])
			}
		}
	}
	denseRef.Release()

	var base float64
	for _, w := range counts {
		opts := core.MatrixOptions{Workers: w}
		d, err := measure(benchtime, func() error {
			m, err := core.NewMatrixWith(ctx, factors, vms, opts)
			if err != nil {
				return err
			}
			m.Release()
			return nil
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		s, err := measure(benchtime, func() error {
			_, err := core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k, Workers: w})
			return err
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		// Settle once so the timed passes are steady-state evaluation,
		// then time the full consolidation pass.
		ctxW, _ := benchState(pms, nVMs, seed)
		if _, err := core.ConsolidateWith(ctxW, factors, params, opts); err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		p, err := measure(benchtime, func() error {
			_, err := core.ConsolidateWith(ctxW, factors, params, opts)
			return err
		})
		if err != nil {
			return fmt.Errorf("workers=%d: %w", w, err)
		}
		pt := WorkerPoint{
			Workers:         w,
			BuildNsOp:       d.nsPerOp,
			SparseBuildNsOp: s.nsPerOp,
			PassNsOp:        p.nsPerOp,
			Iters:           d.iters,
		}
		if base == 0 {
			base = d.nsPerOp
		}
		pt.Speedup = base / d.nsPerOp
		rep.WorkersCurve = append(rep.WorkersCurve, pt)
		fmt.Fprintf(out, "workers=%-3d pms=%-6d build %8.2fms  sparse-build %8.2fms  pass %8.2fms  (%.2fx vs workers=%d)\n",
			w, pms, pt.BuildNsOp/1e6, pt.SparseBuildNsOp/1e6, pt.PassNsOp/1e6, pt.Speedup, counts[0])
	}
	return nil
}

// measureLargeScalePoint is the sparse-only scale point: at 100k PMs a
// dense matrix (rows x cols float64) would need hundreds of gigabytes, so
// only the candidate-set engine is measured and the equivalence gate is a
// parallel-vs-serial sparse comparison instead of a sparse-vs-dense one.
// The dense fields stay zero, which -diff skips.
func measureLargeScalePoint(out io.Writer, pms, nVMs, k int, benchtime time.Duration) (ScalePoint, error) {
	factors := core.DefaultFactors()
	const seed = 7
	sc := ScalePoint{PMs: pms}
	ctx, vms := benchStateLarge(pms, nVMs, seed)
	sc.VMs = len(vms)

	// Equivalence gate: an explicitly parallel build must match the
	// serial build tracker-for-tracker before anything is timed.
	ref, err := core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k, Workers: 1})
	if err != nil {
		return sc, err
	}
	par, err := core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k, Workers: 4})
	if err != nil {
		return sc, err
	}
	if err := ref.DiffSparse(par); err != nil {
		return sc, fmt.Errorf("pms=%d: parallel sparse build diverges from serial (equivalence violated): %w", pms, err)
	}

	s, err := measure(benchtime, func() error {
		m, err := core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k})
		if err != nil {
			return err
		}
		m.Best()
		return nil
	})
	if err != nil {
		return sc, err
	}
	sc.Build = ScaleMeasure{SparseNsOp: s.nsPerOp, SparseIters: s.iters}

	// Round: Best + Apply ping-pong on the parallel-built matrix,
	// mirroring measureScalePoint's sparse round.
	r, c, _, ok := par.Best()
	if !ok {
		return sc, fmt.Errorf("pms=%d: no positive-gain move in the sparse bench state", pms)
	}
	host := par.VM(c).Host
	origin := -1
	for i := 0; i < par.Rows(); i++ {
		if par.PM(i).ID == host {
			origin = i
			break
		}
	}
	if origin < 0 {
		return sc, fmt.Errorf("pms=%d: host of best column not in the sparse matrix", pms)
	}
	s, err = measure(benchtime, func() error {
		par.Best()
		if err := par.Apply(r, c); err != nil {
			return err
		}
		par.Best()
		return par.Apply(origin, c)
	})
	if err != nil {
		return sc, err
	}
	sc.Round = ScaleMeasure{SparseNsOp: halve(s).nsPerOp, SparseIters: s.iters}

	// Arrival: the dense side here is the matrix-free BestPlacement scan
	// (O(active PMs), affordable at any size), so the usual dense-vs-
	// sparse decision gate still applies.
	arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
	dPM := core.BestPlacement(ctx, factors, arrival)
	sPM := core.BestPlacementWith(ctx, factors, arrival, core.MatrixOptions{CandidateK: k})
	if dPM == nil || dPM != sPM {
		return sc, fmt.Errorf("pms=%d: sparse arrival PM differs from dense (equivalence violated)", pms)
	}
	d, err := measure(benchtime, func() error {
		if core.BestPlacement(ctx, factors, arrival) == nil {
			return fmt.Errorf("no placement found")
		}
		return nil
	})
	if err != nil {
		return sc, err
	}
	s, err = measure(benchtime, func() error {
		if core.BestPlacementWith(ctx, factors, arrival, core.MatrixOptions{CandidateK: k}) == nil {
			return fmt.Errorf("no placement found")
		}
		return nil
	})
	if err != nil {
		return sc, err
	}
	sc.Arrival = newScaleMeasure(d, s)

	fmt.Fprintf(out, "pms=%-6d vms=%-6d k=%-3d sparse-only: build %.2fms  round %.1fus  arrival %.2fx (%.1fus vs %.1fus)\n",
		sc.PMs, sc.VMs, k,
		sc.Build.SparseNsOp/1e6, sc.Round.SparseNsOp/1e3,
		sc.Arrival.Speedup, sc.Arrival.DenseNsOp/1e3, sc.Arrival.SparseNsOp/1e3)
	return sc, nil
}

// cellBenchTrace is the multi-cell curve's fixed workload: nVMs staggered
// single-core requests, a third long-lived, the rest short — the same
// fragmenting shape the consolidation tests use, scaled so the fleet stays
// sparsely loaded (the curve measures orchestrator overhead, and the
// fleet-size-dependent costs — arrival scans, spare planning, partition
// bookkeeping — are what sharding is supposed to keep in check).
func cellBenchTrace(nVMs int) []workload.Request {
	rs := make([]workload.Request, 0, nVMs)
	for i := 0; i < nVMs; i++ {
		run := 1800.0
		if i%3 == 0 {
			run = 12000
		}
		rs = append(rs, workload.Request{
			JobID: i, Submit: float64(i) * 6, CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	return rs
}

func cellBenchConfig(cells, pms, k, nVMs int) sim.Config {
	d := policy.NewDynamic()
	d.Opts.CandidateK = k
	sc := spare.DefaultConfig()
	return sim.Config{
		DC:        cluster.TableIIFleetScaled(pms),
		Placer:    d,
		Requests:  cellBenchTrace(nVMs),
		Spare:     &sc,
		WarmStart: 8,
		Cells:     cells,
	}
}

// measureCellCurve runs the fixed scenario end to end at every cell count.
// Gate first: each count's Result must equal the monolith's exactly (the
// bit-exactness contract at fleet scale); only then is anything timed.
func measureCellCurve(out io.Writer, rep *ScaleReport, counts []int, pms, k int, benchtime time.Duration) error {
	nVMs := pms / 5
	rep.CellVMs = nVMs
	countEvents := func(cells int) (uint64, *sim.Result, error) {
		m, err := sim.New(cellBenchConfig(cells, pms, k, nVMs))
		if err != nil {
			return 0, nil, err
		}
		for {
			ok, err := m.Step()
			if err != nil {
				return 0, nil, err
			}
			if !ok {
				break
			}
		}
		res, err := m.Finish()
		return m.Dispatched(), res, err
	}

	// The reference is always the monolith, whether or not 1 is in the
	// requested curve.
	refEvents, refRes, err := countEvents(1)
	if err != nil {
		return fmt.Errorf("cells=1: %w", err)
	}
	for _, c := range counts {
		if c == 1 {
			continue
		}
		ev, res, err := countEvents(c)
		if err != nil {
			return fmt.Errorf("cells=%d: %w", c, err)
		}
		if res.Summary != refRes.Summary || ev != refEvents {
			return fmt.Errorf("cells=%d: result differs from the monolith's (equivalence violated): %d events vs %d, %+v vs %+v",
				c, ev, refEvents, res.Summary, refRes.Summary)
		}
	}

	var base float64
	for _, c := range counts {
		cfg := cellBenchConfig(c, pms, k, nVMs)
		s, err := measure(benchtime, func() error {
			_, err := sim.Run(cfg)
			return err
		})
		if err != nil {
			return fmt.Errorf("cells=%d: %w", c, err)
		}
		pt := CellPoint{
			Cells:      c,
			RunNsOp:    s.nsPerOp,
			NsPerEvent: s.nsPerOp / float64(refEvents),
			Events:     refEvents,
			Iters:      s.iters,
		}
		if base == 0 {
			base = s.nsPerOp
		}
		pt.Speedup = base / s.nsPerOp
		rep.CellCurve = append(rep.CellCurve, pt)
		fmt.Fprintf(out, "cells=%-4d pms=%-6d %8.1fms/run  %7.0fns/event  (%d events, %.2fx vs cells=%d)\n",
			c, pms, pt.RunNsOp/1e6, pt.NsPerEvent, refEvents, pt.Speedup, counts[0])
	}
	return nil
}

func measureScalePoint(out io.Writer, pms, nVMs, k int, benchtime time.Duration) (ScalePoint, error) {
	factors := core.DefaultFactors()
	sparseOpts := core.MatrixOptions{CandidateK: k}
	const seed = 7
	sc := ScalePoint{PMs: pms}

	// Equivalence gate before any timing: every tracker, probability, and
	// the argmax must agree cell-for-cell on the bench state.
	ctx, vms := benchState(pms, nVMs, seed)
	sc.VMs = len(vms)
	{
		dm, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return sc, err
		}
		sm, err := core.NewSparseMatrix(ctx, factors, vms, sparseOpts)
		if err != nil {
			dm.Release()
			return sc, err
		}
		err = sm.DiffDense(dm)
		dm.Release()
		if err != nil {
			return sc, fmt.Errorf("pms=%d: sparse/dense divergence: %w", pms, err)
		}
	}

	// Build: construct each engine's state from scratch. The sparse side
	// reuses the context's candidate index across iterations (an O(M)
	// staleness sweep each build), which is exactly how consolidation
	// rounds amortize it in a real run.
	d, err := measure(benchtime, func() error {
		m, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return err
		}
		m.Best()
		m.Release()
		return nil
	})
	if err != nil {
		return sc, err
	}
	s, err := measure(benchtime, func() error {
		m, err := core.NewSparseMatrix(ctx, factors, vms, sparseOpts)
		if err != nil {
			return err
		}
		m.Best()
		return nil
	})
	if err != nil {
		return sc, err
	}
	sc.Build = newScaleMeasure(d, s)

	// Round: the incremental work of one Algorithm 1 round — the argmax
	// lookup plus the Apply repair — ping-ponging the best move so the
	// state stays bounded (mirroring the core suite). Best is charged to
	// both sides: the dense engine pays a heap repair inside Apply and an
	// O(1) root read, the sparse engine pays no heap and a linear argmax.
	{
		ctx, vms := benchState(pms, nVMs, seed)
		dm, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return sc, err
		}
		r, c, _, ok := dm.Best()
		if !ok {
			return sc, fmt.Errorf("pms=%d: no positive-gain move in the bench state", pms)
		}
		origin, _ := dm.RowOf(dm.VM(c).Host)
		d, err = measure(benchtime, func() error {
			dm.Best()
			if err := dm.Apply(r, c); err != nil {
				return err
			}
			dm.Best()
			return dm.Apply(origin, c)
		})
		if err != nil {
			return sc, err
		}
		dm.Release()
	}
	{
		ctx, vms := benchState(pms, nVMs, seed)
		sm, err := core.NewSparseMatrix(ctx, factors, vms, sparseOpts)
		if err != nil {
			return sc, err
		}
		r, c, _, ok := sm.Best()
		if !ok {
			return sc, fmt.Errorf("pms=%d: no positive-gain move in the sparse bench state", pms)
		}
		host := sm.VM(c).Host
		origin := -1
		for i := 0; i < sm.Rows(); i++ {
			if sm.PM(i).ID == host {
				origin = i
				break
			}
		}
		if origin < 0 {
			return sc, fmt.Errorf("pms=%d: host of best column not in the sparse matrix", pms)
		}
		s, err = measure(benchtime, func() error {
			sm.Best()
			if err := sm.Apply(r, c); err != nil {
				return err
			}
			sm.Best()
			return sm.Apply(origin, c)
		})
		if err != nil {
			return sc, err
		}
	}
	// Halve: one measured op is two Applies (there and back).
	sc.Round = newScaleMeasure(halve(d), halve(s))

	// Arrival: place one new VM, full dense ranking vs the shortlist walk.
	{
		ctx, _ := benchState(pms, nVMs, seed)
		arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
		dPM := core.BestPlacement(ctx, factors, arrival)
		sPM := core.BestPlacementWith(ctx, factors, arrival, sparseOpts)
		if dPM == nil || dPM != sPM {
			return sc, fmt.Errorf("pms=%d: sparse arrival PM differs from dense (equivalence violated)", pms)
		}
		d, err = measure(benchtime, func() error {
			if core.BestPlacement(ctx, factors, arrival) == nil {
				return fmt.Errorf("no placement found")
			}
			return nil
		})
		if err != nil {
			return sc, err
		}
		s, err = measure(benchtime, func() error {
			if core.BestPlacementWith(ctx, factors, arrival, sparseOpts) == nil {
				return fmt.Errorf("no placement found")
			}
			return nil
		})
		if err != nil {
			return sc, err
		}
	}
	sc.Arrival = newScaleMeasure(d, s)

	fmt.Fprintf(out, "pms=%-6d vms=%-6d k=%-3d build %.2fx (%.3fms vs %.3fms)  round %.2fx (%.1fus vs %.1fus)  arrival %.2fx (%.1fus vs %.1fus)\n",
		sc.PMs, sc.VMs, k,
		sc.Build.Speedup, sc.Build.DenseNsOp/1e6, sc.Build.SparseNsOp/1e6,
		sc.Round.Speedup, sc.Round.DenseNsOp/1e3, sc.Round.SparseNsOp/1e3,
		sc.Arrival.Speedup, sc.Arrival.DenseNsOp/1e3, sc.Arrival.SparseNsOp/1e3)
	return sc, nil
}

// parseWorkers parses the -sweep-workers list; unlike parseSizes it
// accepts 1 (the sequential baseline every speedup is relative to).
func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker entry %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("empty -sweep-workers list")
	}
	return counts, nil
}

func writeJSON(out io.Writer, path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = out.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size entry %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// benchState builds a deterministic mid-simulation snapshot of a Table
// II-mix fleet: all PMs on, VMs with varied demand shapes and runtimes
// placed first-fit, clock at two hours.
func benchState(pmCount, nVMs int, seed int64) (*core.Context, []*cluster.VM) {
	dc := cluster.TableIIFleetScaled(pmCount)
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	rng := stats.NewRand(seed)
	mems := []float64{0.25, 0.5, 1, 2}
	var vms []*cluster.VM
	for id := 1; id <= nVMs; id++ {
		demand := vector.New(float64(1+rng.Intn(2)), mems[rng.Intn(len(mems))])
		est := float64(600 + rng.Intn(86400))
		vm := cluster.NewVM(cluster.VMID(id), demand, est, est, 0)
		placed := false
		for _, pm := range dc.PMs() {
			if pm.CanHost(vm.Demand) {
				if err := pm.Host(vm); err != nil {
					panic(err)
				}
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		vm.State = cluster.VMRunning
		vm.StartTime = float64(rng.Intn(7000))
		vms = append(vms, vm)
	}
	return core.NewContext(dc).At(7200), vms
}

// benchStateLarge is benchState with round-robin placement instead of
// first-fit: at 100k PMs the first-fit scan is quadratic in the fleet
// (every VM walks the filled prefix), while round-robin is O(VMs) and
// spreads load evenly — which also leaves consolidation headroom, so the
// Best/Apply round measurement has real moves to make.
func benchStateLarge(pmCount, nVMs int, seed int64) (*core.Context, []*cluster.VM) {
	dc := cluster.TableIIFleetScaled(pmCount)
	pms := dc.PMs()
	for _, pm := range pms {
		pm.State = cluster.PMOn
	}
	rng := stats.NewRand(seed)
	mems := []float64{0.25, 0.5, 1, 2}
	var vms []*cluster.VM
	for id := 1; id <= nVMs; id++ {
		demand := vector.New(float64(1+rng.Intn(2)), mems[rng.Intn(len(mems))])
		est := float64(600 + rng.Intn(86400))
		vm := cluster.NewVM(cluster.VMID(id), demand, est, est, 0)
		pm := pms[(id-1)%len(pms)]
		if !pm.CanHost(vm.Demand) {
			continue
		}
		if err := pm.Host(vm); err != nil {
			panic(err)
		}
		vm.State = cluster.VMRunning
		vm.StartTime = float64(rng.Intn(7000))
		vms = append(vms, vm)
	}
	return core.NewContext(dc).At(7200), vms
}

// sample is one measured operation: mean wall time and mean allocation
// rate per call.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	bytesPerOp  float64
	iters       int
}

// measure repeats op until minDur has elapsed (after one discarded warm-up
// call) and returns the mean wall time and heap-allocation rate per call.
// The alloc figures span the whole loop (runtime.MemStats deltas), so they
// include whatever the runtime allocates on op's behalf — which is the
// number that matters for steady-state GC pressure.
func measure(minDur time.Duration, op func() error) (sample, error) {
	if err := op(); err != nil {
		return sample{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	var total time.Duration
	iters := 0
	for total < minDur {
		start := time.Now()
		if err := op(); err != nil {
			return sample{}, err
		}
		total += time.Since(start)
		iters++
	}
	runtime.ReadMemStats(&after)
	return sample{
		nsPerOp:     float64(total.Nanoseconds()) / float64(iters),
		allocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		bytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
		iters:       iters,
	}, nil
}

func measureScale(out io.Writer, pms, nVMs int, benchtime time.Duration) (Scale, error) {
	factors := core.DefaultFactors()
	const seed = 7
	sc := Scale{PMs: pms}

	// Build: construct the matrix from scratch. Neither path mutates the
	// datacenter, so one state serves all iterations of both.
	ctx, vms := benchState(pms, nVMs, seed)
	sc.VMs = len(vms)
	var kernelBest, naiveBest [3]float64
	k, err := measure(benchtime, func() error {
		m, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return err
		}
		r, c, g, _ := m.Best()
		kernelBest = [3]float64{float64(r), float64(c), g}
		m.Release()
		return nil
	})
	if err != nil {
		return sc, err
	}
	n, err := measure(benchtime, func() error {
		m, err := oracle.NewMatrix(ctx, factors, vms)
		if err != nil {
			return err
		}
		r, c, g, _ := m.Best()
		naiveBest = [3]float64{float64(r), float64(c), g}
		return nil
	})
	if err != nil {
		return sc, err
	}
	if kernelBest != naiveBest {
		return sc, fmt.Errorf("pms=%d: kernel Best %v != naive Best %v (equivalence violated)",
			pms, kernelBest, naiveBest)
	}
	sc.Build = newMeasurement(k, n)

	// Round: the incremental work of one Algorithm 1 round (Apply = two
	// row refills plus tracker and heap maintenance), ping-ponging the
	// best move so the state stays bounded. Each path mutates its own
	// identical copy of the fleet.
	{
		ctx, vms := benchState(pms, nVMs, seed)
		m, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return sc, err
		}
		r, c, _, ok := m.Best()
		if !ok {
			return sc, fmt.Errorf("pms=%d: no positive-gain move in the bench state", pms)
		}
		col := m.VM(c)
		origin, _ := m.RowOf(col.Host)
		k, err = measure(benchtime, func() error {
			if err := m.Apply(r, c); err != nil {
				return err
			}
			return m.Apply(origin, c)
		})
		if err != nil {
			return sc, err
		}
	}
	{
		ctx, vms := benchState(pms, nVMs, seed)
		m, err := oracle.NewMatrix(ctx, factors, vms)
		if err != nil {
			return sc, err
		}
		r, c, _, ok := m.Best()
		if !ok {
			return sc, fmt.Errorf("pms=%d: no positive-gain move in the naive bench state", pms)
		}
		origin := m.CurRow(c)
		n, err = measure(benchtime, func() error {
			if err := m.Apply(r, c); err != nil {
				return err
			}
			return m.Apply(origin, c)
		})
		if err != nil {
			return sc, err
		}
	}
	// Halve: one measured op is two Applies (there and back).
	sc.Round = newMeasurement(halve(k), halve(n))

	// Arrival: place one new VM.
	{
		ctx, _ := benchState(pms, nVMs, seed)
		arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
		k, err = measure(benchtime, func() error {
			if core.BestPlacement(ctx, factors, arrival) == nil {
				return fmt.Errorf("no placement found")
			}
			return nil
		})
		if err != nil {
			return sc, err
		}
		var kPM, nPM *cluster.PM
		kPM = core.BestPlacement(ctx, factors, arrival)
		n, err = measure(benchtime, func() error {
			if oracle.BestPlacement(ctx, factors, arrival) == nil {
				return fmt.Errorf("no placement found")
			}
			return nil
		})
		if err != nil {
			return sc, err
		}
		nPM = oracle.BestPlacement(ctx, factors, arrival)
		if kPM != nPM {
			return sc, fmt.Errorf("pms=%d: arrival kernel PM %d != naive PM %d", pms, kPM.ID, nPM.ID)
		}
	}
	sc.Arrival = newMeasurement(k, n)

	// Slab: the row fill alone, batched aligned-slab path ("kernel")
	// against the same kernel's scalar fill ("naive", DisableSlab). The
	// rows are asserted bit-identical before timing; RefillRow rotates
	// through the rows so the measurement averages over hosted-set sizes.
	{
		ctx, vms := benchState(pms, nVMs, seed)
		slabM, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return sc, err
		}
		scalM, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{DisableSlab: true})
		if err != nil {
			return sc, err
		}
		for r := 0; r < slabM.Rows(); r++ {
			for c := 0; c < slabM.Cols(); c++ {
				if slabM.P(r, c) != scalM.P(r, c) {
					return sc, fmt.Errorf("pms=%d: slab p[%d][%d]=%g != scalar %g (equivalence violated)",
						pms, r, c, slabM.P(r, c), scalM.P(r, c))
				}
			}
		}
		rows := slabM.Rows()
		kr, nr := 0, 0
		k, err = measure(benchtime, func() error { slabM.RefillRow(kr % rows); kr++; return nil })
		if err != nil {
			return sc, err
		}
		n, err = measure(benchtime, func() error { scalM.RefillRow(nr % rows); nr++; return nil })
		if err != nil {
			return sc, err
		}
		slabM.Release()
		scalM.Release()
	}
	sc.Slab = newMeasurement(k, n)

	fmt.Fprintf(out, "pms=%-6d vms=%-6d build %.2fx (%.3fms vs %.3fms)  round %.2fx (%.3fms vs %.3fms)  arrival %.2fx (%.1fus vs %.1fus, %.1f allocs)  slab %.2fx (%.1fus vs %.1fus)\n",
		sc.PMs, sc.VMs,
		sc.Build.Speedup, sc.Build.KernelNsOp/1e6, sc.Build.NaiveNsOp/1e6,
		sc.Round.Speedup, sc.Round.KernelNsOp/1e6, sc.Round.NaiveNsOp/1e6,
		sc.Arrival.Speedup, sc.Arrival.KernelNsOp/1e3, sc.Arrival.NaiveNsOp/1e3,
		sc.Arrival.KernelAllocsOp,
		sc.Slab.Speedup, sc.Slab.KernelNsOp/1e3, sc.Slab.NaiveNsOp/1e3)
	return sc, nil
}

func halve(s sample) sample {
	s.nsPerOp /= 2
	s.allocsPerOp /= 2
	s.bytesPerOp /= 2
	return s
}

func newMeasurement(k, n sample) Measurement {
	m := Measurement{
		KernelNsOp: k.nsPerOp, NaiveNsOp: n.nsPerOp,
		KernelAllocsOp: k.allocsPerOp, KernelBytesOp: k.bytesPerOp,
		NaiveAllocsOp: n.allocsPerOp, NaiveBytesOp: n.bytesPerOp,
		Iters: k.iters, NaiveIters: n.iters,
	}
	if k.nsPerOp > 0 {
		m.Speedup = n.nsPerOp / k.nsPerOp
	}
	return m
}

// churnDelay is the deterministic delay stream both scheduler
// implementations consume (xorshift64, same seed, same mapping).
type churnDelay uint64

func (d *churnDelay) next() float64 {
	x := uint64(*d)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*d = churnDelay(x)
	return float64(x%1024)/16 + 0.001
}

const churnSeed = 0x243F6A8885A308D3

// residentFor sizes the live event set for a total-event count: 1% of the
// total, clamped to [64, 10k] (a simulation's pending set grows far slower
// than its dispatch count).
func residentFor(events int) int {
	r := events / 100
	if r < 64 {
		r = 64
	}
	if r > 10_000 {
		r = 10_000
	}
	return r
}

// wheelChurn dispatches exactly total events through the calendar-queue
// engine: a resident set of self-rescheduling callbacks with pseudo-random
// delays, the same workload the heap side runs.
func wheelChurn(resident, total int) error {
	var e sim.Engine
	d := churnDelay(churnSeed)
	fired := 0
	var fire func()
	fire = func() {
		fired++
		if fired+e.Pending() < total {
			e.ScheduleAfter(d.next(), fire)
		}
	}
	for i := 0; i < resident && i < total; i++ {
		e.ScheduleAfter(d.next(), fire)
	}
	e.Run()
	if fired != total {
		return fmt.Errorf("wheel dispatched %d of %d events", fired, total)
	}
	return nil
}

// heapChurn is wheelChurn against the frozen binary-heap scheduler.
func heapChurn(resident, total int) error {
	var e schedheap.Engine
	d := churnDelay(churnSeed)
	fired := 0
	var fire func()
	fire = func() {
		fired++
		if fired+e.Pending() < total {
			e.ScheduleAfter(d.next(), fire)
		}
	}
	for i := 0; i < resident && i < total; i++ {
		e.ScheduleAfter(d.next(), fire)
	}
	e.Run()
	if fired != total {
		return fmt.Errorf("heap dispatched %d of %d events", fired, total)
	}
	return nil
}

func measureEngineScale(out io.Writer, events int, benchtime time.Duration) (EngineScale, error) {
	resident := residentFor(events)
	sc := EngineScale{Events: events, Resident: resident}
	w, err := measure(benchtime, func() error { return wheelChurn(resident, events) })
	if err != nil {
		return sc, err
	}
	h, err := measure(benchtime, func() error { return heapChurn(resident, events) })
	if err != nil {
		return sc, err
	}
	ev := float64(events)
	sc.WheelNsEvent = w.nsPerOp / ev
	sc.HeapNsEvent = h.nsPerOp / ev
	if sc.WheelNsEvent > 0 {
		sc.Speedup = sc.HeapNsEvent / sc.WheelNsEvent
	}
	sc.WheelEventsSec = 1e9 / sc.WheelNsEvent
	sc.HeapEventsSec = 1e9 / sc.HeapNsEvent
	sc.WheelAllocsEvent = w.allocsPerOp / ev
	sc.WheelBytesEvent = w.bytesPerOp / ev
	sc.Iters, sc.HeapIters = w.iters, h.iters

	fmt.Fprintf(out, "events=%-8d wheel %.1fns/ev (%.2fM ev/s, %.4f allocs/ev)  heap %.1fns/ev (%.2fM ev/s)  speedup %.2fx\n",
		events, sc.WheelNsEvent, sc.WheelEventsSec/1e6, sc.WheelAllocsEvent,
		sc.HeapNsEvent, sc.HeapEventsSec/1e6, sc.Speedup)
	return sc, nil
}

// runDiff compares two benchreport JSON files (either schema) and warns
// about per-operation timing regressions beyond the threshold. It never
// fails the build — the numbers are machine-local — but gives CI and
// humans a one-command regression check (`make bench-diff`).
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchreport -diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.20, "relative slowdown that counts as a regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchreport -diff [-threshold 0.2] old.json new.json")
	}
	oldM, err := loadMetrics(fs.Arg(0))
	if err != nil {
		return err
	}
	newM, err := loadMetrics(fs.Arg(1))
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return fmt.Errorf("no comparable metrics between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	regressions := 0
	for _, k := range keys {
		o, n := oldM[k], newM[k]
		if o <= 0 {
			continue
		}
		rel := n/o - 1
		switch {
		case rel > *threshold:
			regressions++
			fmt.Fprintf(out, "WARN  %-40s %12.1f -> %12.1f ns  (%+.0f%%)\n", k, o, n, rel*100)
		case rel < -*threshold:
			fmt.Fprintf(out, "good  %-40s %12.1f -> %12.1f ns  (%+.0f%%)\n", k, o, n, rel*100)
		}
	}
	if regressions == 0 {
		fmt.Fprintf(out, "bench-diff: %d metrics within %.0f%% of %s\n",
			len(keys), *threshold*100, fs.Arg(0))
	} else {
		fmt.Fprintf(out, "bench-diff: %d of %d metrics regressed more than %.0f%%\n",
			regressions, len(keys), *threshold*100)
	}
	return nil
}

// loadMetrics flattens a benchreport JSON file into metric -> ns-per-op
// entries. It is schema-agnostic: every numeric leaf whose key ends in
// _ns_op or _ns_event is collected, keyed by scale (pms=N, events=N, or
// workers=N) and field path, so core, engine, and sweep reports all work
// and future fields join automatically.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Scales  []map[string]any `json:"scales"`
		Cells   []map[string]any `json:"cells"`
		Workers []map[string]any `json:"kernel_workers"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	metrics := make(map[string]float64)
	for _, scale := range append(append(doc.Scales, doc.Cells...), doc.Workers...) {
		prefix := ""
		if v, ok := scale["cells"].(float64); ok {
			prefix = fmt.Sprintf("cells=%d", int(v))
		} else if v, ok := scale["pms"].(float64); ok {
			prefix = fmt.Sprintf("pms=%d", int(v))
		} else if v, ok := scale["events"].(float64); ok {
			prefix = fmt.Sprintf("events=%d", int(v))
		} else if v, ok := scale["workers"].(float64); ok {
			prefix = fmt.Sprintf("workers=%d", int(v))
		}
		var walk func(string, any)
		walk = func(key string, v any) {
			switch t := v.(type) {
			case map[string]any:
				for k, sub := range t {
					walk(key+"/"+k, sub)
				}
			case float64:
				if strings.HasSuffix(key, "_ns_op") || strings.HasSuffix(key, "_ns_event") {
					metrics[prefix+key] = t
				}
			}
		}
		for k, v := range scale {
			walk("/"+k, v)
		}
	}
	if len(metrics) == 0 {
		return nil, fmt.Errorf("%s: no timing metrics found", path)
	}
	return metrics, nil
}
