// Command benchreport measures the factored evaluation kernel against the
// pre-kernel code path (frozen in internal/core/oracle) on the three hot
// operations
// of the scheme — probability-matrix build, per-round incremental update,
// and arrival placement — and records the results as JSON (BENCH_core.json
// at the repository root, by convention).
//
// It complements the `go test -bench Kernel` micro-benchmarks in
// internal/core: those compare the kernel against the generic
// Factor-interface path inside the *current* matrix implementation, while
// this command compares against the original implementation (generic
// evaluation, per-column strided rescans with a division per row, linear
// Best scan, sort-based arrival ranking).
//
// Usage:
//
//	benchreport [-o BENCH_core.json] [-sizes 100,1000] [-benchtime 300ms]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/oracle"
	"repro/internal/vector"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// Report is the schema of BENCH_core.json.
type Report struct {
	Description string  `json:"description"`
	Go          string  `json:"go"`
	Generated   string  `json:"generated"`
	Benchtime   string  `json:"benchtime"`
	Scales      []Scale `json:"scales"`
}

// Scale holds one fleet size's measurements.
type Scale struct {
	PMs     int         `json:"pms"`
	VMs     int         `json:"vms"`
	Build   Measurement `json:"build"`
	Round   Measurement `json:"round"`
	Arrival Measurement `json:"arrival"`
}

// Measurement compares the kernel path against the pre-kernel path on one
// operation.
type Measurement struct {
	KernelNsOp float64 `json:"kernel_ns_op"`
	NaiveNsOp  float64 `json:"naive_ns_op"`
	Speedup    float64 `json:"speedup"`
	Iters      int     `json:"kernel_iters"`
	NaiveIters int     `json:"naive_iters"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		outPath   = fs.String("o", "BENCH_core.json", "output JSON path (- for stdout)")
		sizesFlag = fs.String("sizes", "100,1000", "comma-separated PM counts (VMs = 2x)")
		benchtime = fs.Duration("benchtime", 300*time.Millisecond, "minimum measuring time per case")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}

	rep := Report{
		Description: "factored probability kernel vs pre-kernel implementation: " +
			"matrix build, per-round incremental update (one Apply), arrival placement",
		Go:        runtime.Version(),
		Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: benchtime.String(),
	}
	for _, pms := range sizes {
		sc, err := measureScale(out, pms, 2*pms, *benchtime)
		if err != nil {
			return err
		}
		rep.Scales = append(rep.Scales, sc)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "-" {
		_, err = out.Write(data)
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -sizes entry %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// benchState builds a deterministic mid-simulation snapshot of a Table
// II-mix fleet: all PMs on, VMs with varied demand shapes and runtimes
// placed first-fit, clock at two hours.
func benchState(pmCount, nVMs int, seed int64) (*core.Context, []*cluster.VM) {
	dc := cluster.TableIIFleetScaled(pmCount)
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	rng := rand.New(rand.NewSource(seed))
	mems := []float64{0.25, 0.5, 1, 2}
	var vms []*cluster.VM
	for id := 1; id <= nVMs; id++ {
		demand := vector.New(float64(1+rng.Intn(2)), mems[rng.Intn(len(mems))])
		est := float64(600 + rng.Intn(86400))
		vm := cluster.NewVM(cluster.VMID(id), demand, est, est, 0)
		placed := false
		for _, pm := range dc.PMs() {
			if pm.CanHost(vm.Demand) {
				if err := pm.Host(vm); err != nil {
					panic(err)
				}
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		vm.State = cluster.VMRunning
		vm.StartTime = float64(rng.Intn(7000))
		vms = append(vms, vm)
	}
	return core.NewContext(dc).At(7200), vms
}

// measure repeats op until minDur has elapsed (after one discarded warm-up
// call) and returns the mean wall time per call.
func measure(minDur time.Duration, op func() error) (nsPerOp float64, iters int, err error) {
	if err := op(); err != nil {
		return 0, 0, err
	}
	var total time.Duration
	for total < minDur {
		start := time.Now()
		if err := op(); err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
		iters++
	}
	return float64(total.Nanoseconds()) / float64(iters), iters, nil
}

func measureScale(out io.Writer, pms, nVMs int, benchtime time.Duration) (Scale, error) {
	factors := core.DefaultFactors()
	const seed = 7
	sc := Scale{PMs: pms}

	// Build: construct the matrix from scratch. Neither path mutates the
	// datacenter, so one state serves all iterations of both.
	ctx, vms := benchState(pms, nVMs, seed)
	sc.VMs = len(vms)
	var kernelBest, naiveBest [3]float64
	kNs, kIt, err := measure(benchtime, func() error {
		m, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return err
		}
		r, c, g, _ := m.Best()
		kernelBest = [3]float64{float64(r), float64(c), g}
		return nil
	})
	if err != nil {
		return sc, err
	}
	nNs, nIt, err := measure(benchtime, func() error {
		m, err := oracle.NewMatrix(ctx, factors, vms)
		if err != nil {
			return err
		}
		r, c, g, _ := m.Best()
		naiveBest = [3]float64{float64(r), float64(c), g}
		return nil
	})
	if err != nil {
		return sc, err
	}
	if kernelBest != naiveBest {
		return sc, fmt.Errorf("pms=%d: kernel Best %v != naive Best %v (equivalence violated)",
			pms, kernelBest, naiveBest)
	}
	sc.Build = newMeasurement(kNs, nNs, kIt, nIt)

	// Round: the incremental work of one Algorithm 1 round (Apply = two
	// row refills plus tracker and heap maintenance), ping-ponging the
	// best move so the state stays bounded. Each path mutates its own
	// identical copy of the fleet.
	{
		ctx, vms := benchState(pms, nVMs, seed)
		m, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{})
		if err != nil {
			return sc, err
		}
		r, c, _, ok := m.Best()
		if !ok {
			return sc, fmt.Errorf("pms=%d: no positive-gain move in the bench state", pms)
		}
		col := m.VM(c)
		origin, _ := m.RowOf(col.Host)
		kNs, kIt, err = measure(benchtime, func() error {
			if err := m.Apply(r, c); err != nil {
				return err
			}
			return m.Apply(origin, c)
		})
		if err != nil {
			return sc, err
		}
	}
	{
		ctx, vms := benchState(pms, nVMs, seed)
		m, err := oracle.NewMatrix(ctx, factors, vms)
		if err != nil {
			return sc, err
		}
		r, c, _, ok := m.Best()
		if !ok {
			return sc, fmt.Errorf("pms=%d: no positive-gain move in the naive bench state", pms)
		}
		origin := m.CurRow(c)
		nNs, nIt, err = measure(benchtime, func() error {
			if err := m.Apply(r, c); err != nil {
				return err
			}
			return m.Apply(origin, c)
		})
		if err != nil {
			return sc, err
		}
	}
	// Halve: one measured op is two Applies (there and back).
	sc.Round = newMeasurement(kNs/2, nNs/2, kIt, nIt)

	// Arrival: place one new VM.
	{
		ctx, _ := benchState(pms, nVMs, seed)
		arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
		kNs, kIt, err = measure(benchtime, func() error {
			if core.BestPlacement(ctx, factors, arrival) == nil {
				return fmt.Errorf("no placement found")
			}
			return nil
		})
		if err != nil {
			return sc, err
		}
		var kPM, nPM *cluster.PM
		kPM = core.BestPlacement(ctx, factors, arrival)
		nNs, nIt, err = measure(benchtime, func() error {
			if oracle.BestPlacement(ctx, factors, arrival) == nil {
				return fmt.Errorf("no placement found")
			}
			return nil
		})
		if err != nil {
			return sc, err
		}
		nPM = oracle.BestPlacement(ctx, factors, arrival)
		if kPM != nPM {
			return sc, fmt.Errorf("pms=%d: arrival kernel PM %d != naive PM %d", pms, kPM.ID, nPM.ID)
		}
	}
	sc.Arrival = newMeasurement(kNs, nNs, kIt, nIt)

	fmt.Fprintf(out, "pms=%-6d vms=%-6d build %.2fx (%.3fms vs %.3fms)  round %.2fx (%.3fms vs %.3fms)  arrival %.2fx (%.1fus vs %.1fus)\n",
		sc.PMs, sc.VMs,
		sc.Build.Speedup, sc.Build.KernelNsOp/1e6, sc.Build.NaiveNsOp/1e6,
		sc.Round.Speedup, sc.Round.KernelNsOp/1e6, sc.Round.NaiveNsOp/1e6,
		sc.Arrival.Speedup, sc.Arrival.KernelNsOp/1e3, sc.Arrival.NaiveNsOp/1e3)
	return sc, nil
}

func newMeasurement(kNs, nNs float64, kIt, nIt int) Measurement {
	m := Measurement{KernelNsOp: kNs, NaiveNsOp: nNs, Iters: kIt, NaiveIters: nIt}
	if kNs > 0 {
		m.Speedup = nNs / kNs
	}
	return m
}
