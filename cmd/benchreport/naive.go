package main

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
)

// naiveMatrix is a frozen copy of the probability-matrix implementation
// as it existed before the factored kernel: every cell evaluated through
// the generic Factor interface, per-column tracker rescans with a
// division per row, and a linear scan over all columns for Best. It
// exists so the recorded speedups compare against the real pre-kernel
// code path rather than against a baseline that already benefits from
// the new tracker machinery.
type naiveMatrix struct {
	ctx     *core.Context
	factors []core.Factor

	pms []*cluster.PM
	vms []*cluster.VM

	rowOf map[cluster.PMID]int

	p [][]float64

	curRow  []int
	curProb []float64

	bestRow  []int
	bestGain []float64
}

func newNaiveMatrix(ctx *core.Context, factors []core.Factor, vms []*cluster.VM) *naiveMatrix {
	m := &naiveMatrix{
		ctx:     ctx,
		factors: factors,
		pms:     ctx.DC.ActivePMs(),
		rowOf:   make(map[cluster.PMID]int),
	}
	sort.Slice(m.pms, func(i, j int) bool { return m.pms[i].ID < m.pms[j].ID })
	for r, pm := range m.pms {
		m.rowOf[pm.ID] = r
	}
	m.vms = append(m.vms, vms...)
	sort.Slice(m.vms, func(i, j int) bool { return m.vms[i].ID < m.vms[j].ID })

	m.p = make([][]float64, len(m.pms))
	for r := range m.p {
		m.p[r] = make([]float64, len(m.vms))
	}
	m.curRow = make([]int, len(m.vms))
	m.curProb = make([]float64, len(m.vms))
	m.bestRow = make([]int, len(m.vms))
	m.bestGain = make([]float64, len(m.vms))

	for r, pm := range m.pms {
		for c, vm := range m.vms {
			m.p[r][c] = core.Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
		}
	}
	for c := range m.vms {
		m.refreshColumn(c)
	}
	return m
}

func (m *naiveMatrix) normalize(p, cur float64) float64 {
	if cur <= 0 {
		if p > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return p / cur
}

func (m *naiveMatrix) refreshColumn(c int) {
	vm := m.vms[c]
	cr := m.rowOf[vm.Host]
	m.curRow[c] = cr
	m.curProb[c] = m.p[cr][c]

	bestRow, bestGain := -1, 0.0
	for r := range m.pms {
		if r == cr {
			continue
		}
		if g := m.normalize(m.p[r][c], m.curProb[c]); g > bestGain {
			bestGain, bestRow = g, r
		}
	}
	m.bestRow[c] = bestRow
	m.bestGain[c] = bestGain
}

func (m *naiveMatrix) recomputeRow(r int) {
	pm := m.pms[r]
	for c, vm := range m.vms {
		m.p[r][c] = core.Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
	}
	for c := range m.vms {
		switch {
		case m.curRow[c] == r || m.rowOf[m.vms[c].Host] != m.curRow[c]:
			m.refreshColumn(c)
		case m.bestRow[c] == r:
			m.refreshColumn(c)
		default:
			if g := m.normalize(m.p[r][c], m.curProb[c]); g > m.bestGain[c] {
				m.bestGain[c] = g
				m.bestRow[c] = r
			}
		}
	}
}

func (m *naiveMatrix) best() (r, c int, gain float64, ok bool) {
	r, c, gain = -1, -1, 0
	for col := range m.vms {
		g := m.bestGain[col]
		if m.bestRow[col] < 0 {
			continue
		}
		if g > gain {
			gain, r, c, ok = g, m.bestRow[col], col, true
		}
	}
	return r, c, gain, ok
}

func (m *naiveMatrix) apply(r, c int) error {
	vm := m.vms[c]
	from := m.pms[m.curRow[c]]
	to := m.pms[r]
	if err := from.Evict(vm); err != nil {
		return fmt.Errorf("naive apply VM %d: %w", vm.ID, err)
	}
	if err := to.Host(vm); err != nil {
		return fmt.Errorf("naive apply VM %d: %w", vm.ID, err)
	}
	m.recomputeRow(m.rowOf[from.ID])
	m.recomputeRow(m.rowOf[to.ID])
	return nil
}

// naiveBestPlacement is the pre-kernel arrival path: evaluate Joint on
// every active PM, build the full candidate slice, sort it, take the
// head.
func naiveBestPlacement(ctx *core.Context, factors []core.Factor, vm *cluster.VM) *cluster.PM {
	var out []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if p := core.Joint(ctx, factors, vm, pm, false); p > 0 {
			out = append(out, core.Placement{PM: pm, Probability: p})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].PM.ID < out[j].PM.ID
	})
	if len(out) == 0 {
		return nil
	}
	return out[0].PM
}
