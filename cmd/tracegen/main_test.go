package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunDefaultStats(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"jobs: 4574", "peak day", "memory per request", "runtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWritesSWF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.swf")
	var sb strings.Builder
	if err := run([]string{"-o", path, "-stats=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jobs, err := workload.ParseSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4574 {
		t.Errorf("round-tripped jobs = %d", len(jobs))
	}
}

func TestRunCustomDaysAndJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "small.swf")
	var sb strings.Builder
	if err := run([]string{"-days", "3", "-jobs", "300", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	jobs, err := workload.ParseSWF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 300 {
		t.Errorf("jobs = %d, want exactly 300", len(jobs))
	}
	for _, j := range jobs {
		if j.Submit >= 3*86400 {
			t.Fatalf("job submitted beyond day 3: %g", j.Submit)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-days", "0"}, &sb); err == nil {
		t.Error("zero days accepted")
	}
	if err := run([]string{"-o", "/nonexistent-dir/x.swf", "-stats=false"}, &sb); err == nil {
		t.Error("unwritable path accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}
