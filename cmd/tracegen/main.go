// Command tracegen synthesizes an LPC-like workload trace in Standard
// Workload Format and prints its Figure 2 statistics.
//
// Usage:
//
//	tracegen [-seed 1] [-days 7] [-jobs 4574] [-o trace.swf] [-stats]
//
// With -o the trace is written as SWF (readable by dvmpsim -trace and any
// Parallel Workloads Archive tooling); with -stats the jobs/day, memory,
// and runtime distributions are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "generator seed")
		days    = fs.Int("days", 7, "trace length in days")
		jobs    = fs.Int("jobs", 4574, "total jobs across the trace")
		outPath = fs.String("o", "", "output SWF path (default: stdout off, stats only)")
		stats   = fs.Bool("stats", true, "print workload statistics")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days < 1 || *jobs < 1 {
		return fmt.Errorf("days and jobs must be positive")
	}

	cfg := workload.DefaultWeekConfig(*seed)
	if *days != 7 || *jobs != 4574 {
		// Rescale the default weekly shape to the requested length and
		// volume, repeating the weekly arrival pattern.
		base := workload.DefaultWeekConfig(*seed).DailyJobs
		var total int
		daily := make([]int, *days)
		for d := range daily {
			daily[d] = base[d%len(base)]
			total += daily[d]
		}
		for d := range daily {
			daily[d] = daily[d] * *jobs / total
		}
		// Distribute the rounding remainder onto the first days.
		sum := 0
		for _, n := range daily {
			sum += n
		}
		for d := 0; sum < *jobs; d, sum = (d+1)%len(daily), sum+1 {
			daily[d]++
		}
		cfg.DailyJobs = daily
	}

	trace, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		header := fmt.Sprintf("synthetic LPC-like trace\nseed: %d\njobs: %d\ndays: %d", *seed, len(trace), *days)
		if err := workload.WriteSWF(f, trace, header); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d jobs to %s\n", len(trace), *outPath)
	}

	if *stats {
		s := workload.Summarize(trace)
		fmt.Fprintf(out, "jobs: %d, VM requests after core split: %d\n", s.TotalJobs, s.TotalRequests)
		fmt.Fprintf(out, "peak day: %d (%d requests)\n", s.PeakDay, s.PeakDayRequests)
		fmt.Fprintf(out, "requests/day: %v\n", s.JobsPerDay)
		fmt.Fprintf(out, "requests under 1 GB: %.1f%%\n", s.UnderOneGB*100)
		fmt.Fprintf(out, "jobs under 1 day: %d\n", s.UnderOneDay)
		fmt.Fprintf(out, "\nmemory per request (GB):\n%s", s.MemHistogram.String())
		fmt.Fprintf(out, "\nruntime (hours):\n%s", s.RuntimeHistogram.String())
	}
	return nil
}
