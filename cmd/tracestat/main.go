// Command tracestat summarizes and compares the structured JSONL run
// traces that `dvmpsim -trace` (and the experiment harness's -obs mode)
// emit.
//
// Usage:
//
//	tracestat run.jsonl             summarize one trace
//	tracestat -hours run.jsonl      add the per-hour activity table
//	tracestat -diff a.jsonl b.jsonl compare two traces, ignoring wall clocks
//
// The summary reports per-event-type counts, the run header/footer, and
// migration statistics (count, mean gain, busiest hour). The per-hour
// table buckets arrivals, departures, migrations, boots, shutdowns, and
// failures by simulation hour — the operational view related placement
// studies evaluate schemes on. Traces from multi-cell runs
// (`dvmpsim -cells C`) carry a per-event cell stamp; when any is present
// the summary adds a per-cell activity table showing how the partition's
// load balanced out.
//
// -diff strips every line's wall-clock field (the only nondeterministic
// part of a trace) and then requires the two traces to be byte-identical;
// the first divergence is printed and the exit status is nonzero. Two
// same-seed runs of the same binary must pass this — it is the CLI face
// of the repo's determinism guarantee. Damaged inputs fail loudly rather
// than vacuously agreeing: an empty file, a line of invalid JSON, or a
// run_start header with no run_end footer each exit nonzero with the
// reason named (two empty traces are byte-identical, and before this
// check -diff happily certified them as a passing determinism audit).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

// event is the decoded union of every trace event's fields; absent fields
// stay zero. Unknown fields are ignored, so newer schema versions still
// summarize.
type event struct {
	V     int     `json:"v"`
	Seq   uint64  `json:"seq"`
	T     float64 `json:"t"`
	Event string  `json:"event"`

	VM     int64   `json:"vm"`
	PM     int64   `json:"pm"`
	From   int64   `json:"from"`
	To     int64   `json:"to"`
	Gain   float64 `json:"gain"`
	Round  int64   `json:"round"`
	Spares int64   `json:"spares"`

	Scheme     string `json:"scheme"`
	Requests   int64  `json:"requests"`
	PMs        int64  `json:"pms"`
	Completed  int64  `json:"completed"`
	Migrations int64  `json:"migrations"`
	Error      string `json:"error"`

	// Cell is the multi-cell engine's non-canonical stamp (absent in
	// monolithic runs); a pointer so cell 0 and "no cell" stay distinct.
	Cell *int64 `json:"cell"`
}

func run(args []string, out io.Writer) error {
	diff := false
	hours := false
	var paths []string
	for _, a := range args {
		switch a {
		case "-diff", "--diff":
			diff = true
		case "-hours", "--hours":
			hours = true
		default:
			if len(a) > 0 && a[0] == '-' {
				return fmt.Errorf("unknown flag %q (want -diff or -hours)", a)
			}
			paths = append(paths, a)
		}
	}
	if diff {
		if len(paths) != 2 {
			return fmt.Errorf("-diff needs exactly two trace files, got %d", len(paths))
		}
		return diffTraces(paths[0], paths[1], out)
	}
	if len(paths) != 1 {
		return fmt.Errorf("usage: tracestat [-hours] trace.jsonl | tracestat -diff a.jsonl b.jsonl")
	}
	return summarize(paths[0], hours, out)
}

func readEvents(path string) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var evs []event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return evs, nil
}

func summarize(path string, hours bool, out io.Writer) error {
	evs, err := readEvents(path)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}

	counts := map[string]int{}
	byHour := map[int]map[string]int{}
	byCell := map[int64]map[string]int{}
	var migGainSum float64
	var migs, stamped int
	lastT := 0.0
	for _, ev := range evs {
		counts[ev.Event]++
		if ev.T > lastT {
			lastT = ev.T
		}
		h := int(ev.T / 3600)
		if byHour[h] == nil {
			byHour[h] = map[string]int{}
		}
		byHour[h][ev.Event]++
		if ev.Cell != nil {
			stamped++
			if byCell[*ev.Cell] == nil {
				byCell[*ev.Cell] = map[string]int{}
			}
			byCell[*ev.Cell][ev.Event]++
		}
		if ev.Event == "migration" {
			migs++
			migGainSum += ev.Gain
		}
	}

	fmt.Fprintf(out, "trace: %s — %d events, %.1f simulated hours (schema v%d)\n",
		path, len(evs), lastT/3600, evs[0].V)
	if evs[0].Event == "run_start" {
		fmt.Fprintf(out, "run: scheme=%s pms=%d requests=%d\n", evs[0].Scheme, evs[0].PMs, evs[0].Requests)
	}
	if last := evs[len(evs)-1]; last.Event == "run_end" {
		fmt.Fprintf(out, "end: completed=%d migrations=%d\n", last.Completed, last.Migrations)
	}

	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	fmt.Fprintln(out, "event counts:")
	for _, t := range types {
		fmt.Fprintf(out, "  %-16s %8d\n", t, counts[t])
	}
	if migs > 0 {
		best, bestN := 0, 0
		for h, m := range byHour {
			if m["migration"] > bestN {
				best, bestN = h, m["migration"]
			}
		}
		fmt.Fprintf(out, "migrations: %d total, mean gain %.3f, busiest hour %d (%d moves)\n",
			migs, migGainSum/float64(migs), best, bestN)
	}
	if n := counts["audit_violation"]; n > 0 {
		fmt.Fprintf(out, "WARNING: %d audit violation(s) in trace\n", n)
	}

	// Multi-cell runs stamp every dispatched event with its cell; show the
	// per-cell activity so load balance across the partition is visible.
	if len(byCell) > 0 {
		ids := make([]int64, 0, len(byCell))
		for c := range byCell {
			ids = append(ids, c)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		cols := []string{"arrival", "depart", "migration", "boot", "shutdown", "failure"}
		fmt.Fprintf(out, "cells: %d of %d events stamped across %d cells\n", stamped, len(evs), len(ids))
		fmt.Fprintf(out, "%-6s %8s", "cell", "events")
		for _, c := range cols {
			fmt.Fprintf(out, " %10s", c)
		}
		fmt.Fprintln(out)
		for _, c := range ids {
			total := 0
			for _, n := range byCell[c] {
				total += n
			}
			fmt.Fprintf(out, "%-6d %8d", c, total)
			for _, col := range cols {
				fmt.Fprintf(out, " %10d", byCell[c][col])
			}
			fmt.Fprintln(out)
		}
	}

	if hours {
		cols := []string{"arrival", "depart", "migration", "boot", "shutdown", "failure", "spare_plan"}
		fmt.Fprintf(out, "%-6s", "hour")
		for _, c := range cols {
			fmt.Fprintf(out, " %10s", c)
		}
		fmt.Fprintln(out)
		hs := make([]int, 0, len(byHour))
		for h := range byHour {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		for _, h := range hs {
			fmt.Fprintf(out, "%-6d", h)
			for _, c := range cols {
				fmt.Fprintf(out, " %10d", byHour[h][c])
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}

// diffTraces compares two traces modulo wall-clock fields. It reports the
// first diverging event (or a length mismatch) and returns an error when
// the traces differ.
func diffTraces(pathA, pathB string, out io.Writer) error {
	a, err := canonicalLines(pathA)
	if err != nil {
		return err
	}
	b, err := canonicalLines(pathB)
	if err != nil {
		return err
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(a[i], b[i]) {
			fmt.Fprintf(out, "traces diverge at event %d:\n- %s\n+ %s\n", i, a[i], b[i])
			return fmt.Errorf("traces differ (first divergence at event %d)", i)
		}
	}
	if len(a) != len(b) {
		fmt.Fprintf(out, "traces share %d events, then lengths differ: %d vs %d\n", n, len(a), len(b))
		return fmt.Errorf("traces differ in length: %d vs %d events", len(a), len(b))
	}
	fmt.Fprintf(out, "traces identical: %d events (wall-clock fields ignored)\n", len(a))
	return nil
}

// canonicalLines loads a trace for diffing, with integrity checks: an
// empty file, a line of invalid JSON (the signature of a run killed
// mid-write), or a run_start header with no run_end footer each fail
// with a named reason. A damaged trace must never diff as "identical" —
// two empty files agree byte-for-byte and would otherwise pass.
func canonicalLines(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines [][]byte
	var firstEvent, lastEvent string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s:%d: invalid JSON (truncated or corrupt trace): %w", path, lineNo, err)
		}
		if len(lines) == 0 {
			firstEvent = ev.Event
		}
		lastEvent = ev.Event
		lines = append(lines, obs.CanonicalLine(sc.Bytes()))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%s: empty trace (no events)", path)
	}
	if firstEvent == "run_start" && lastEvent != "run_end" {
		return nil, fmt.Errorf("%s: truncated trace: run_start without run_end (%d events)", path, len(lines))
	}
	return lines, nil
}
