package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
	"repro/internal/workload"
)

// writeTrace runs a small deterministic simulation and writes its JSONL
// trace to a temp file. cmd packages cannot import each other, so traces
// are produced through the sim API exactly as dvmpsim -trace does.
// cells > 1 routes the run through the sharded multi-cell engine, whose
// trace carries per-event cell stamps.
func writeTrace(t *testing.T, seed int64, cells ...int) string {
	t.Helper()
	jobs := workload.MustGenerate(workload.DefaultWeekConfig(seed))
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	workload.SortBySubmit(jobs)
	if len(jobs) > 120 {
		jobs = jobs[:120]
	}
	placer, err := policy.ByName("dynamic", seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	sc := spare.DefaultConfig()
	cfg := sim.Config{
		DC:       cluster.TableIIFleetScaled(12),
		Placer:   placer,
		Requests: workload.ToRequests(jobs),
		Spare:    &sc,
		Obs:      obs.NewTracing(w),
	}
	if len(cells) > 0 {
		cfg.Cells = cells[0]
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarize(t *testing.T) {
	path := writeTrace(t, 7)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"run: scheme=dynamic", "event counts:", "arrival", "run_end", "spare_plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("clean run summarized with a warning:\n%s", out)
	}
}

func TestSummarizeHourTable(t *testing.T) {
	path := writeTrace(t, 7)
	var sb strings.Builder
	if err := run([]string{"-hours", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "hour") || !strings.Contains(out, "migration") {
		t.Errorf("-hours output missing table header:\n%s", out)
	}
	// The table must have at least one data row starting with an hour index.
	if !strings.Contains(out, "\n0     ") {
		t.Errorf("-hours output missing hour-0 row:\n%s", out)
	}
}

// TestSummarizeCellTable pins the per-cell activity table: a multi-cell
// trace gets one row per cell covering every stamped event, while a
// monolithic trace shows no cell table at all.
func TestSummarizeCellTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{writeTrace(t, 7, 3)}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "across 3 cells") {
		t.Fatalf("multi-cell summary missing cell table header:\n%s", out)
	}
	for _, row := range []string{"\n0      ", "\n1      ", "\n2      "} {
		if !strings.Contains(out, row) {
			t.Errorf("cell table missing row %q:\n%s", strings.TrimSpace(row), out)
		}
	}

	sb.Reset()
	if err := run([]string{writeTrace(t, 7)}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "cells:") {
		t.Errorf("monolithic summary shows a cell table:\n%s", sb.String())
	}
}

// TestDiffAcrossCellCounts is the tracestat face of the multi-cell
// determinism guarantee: the cell stamp is non-canonical, so -diff must
// call a C=3 trace identical to the monolith's.
func TestDiffAcrossCellCounts(t *testing.T) {
	a := writeTrace(t, 7)
	b := writeTrace(t, 7, 3)
	var sb strings.Builder
	if err := run([]string{"-diff", a, b}, &sb); err != nil {
		t.Fatalf("monolith vs 3-cell traces reported as different: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "traces identical") {
		t.Errorf("diff output missing verdict:\n%s", sb.String())
	}
}

// TestDiffSameSeed is the CLI face of the determinism guarantee: two runs
// with identical configuration must yield byte-identical traces once the
// wall-clock field is ignored.
func TestDiffSameSeed(t *testing.T) {
	a := writeTrace(t, 7)
	b := writeTrace(t, 7)
	var sb strings.Builder
	if err := run([]string{"-diff", a, b}, &sb); err != nil {
		t.Fatalf("same-seed traces reported as different: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "traces identical") {
		t.Errorf("diff output missing verdict:\n%s", sb.String())
	}
}

func TestDiffDifferentSeeds(t *testing.T) {
	a := writeTrace(t, 7)
	b := writeTrace(t, 8)
	var sb strings.Builder
	err := run([]string{"-diff", a, b}, &sb)
	if err == nil {
		t.Fatal("different-seed traces reported as identical")
	}
	if !strings.Contains(sb.String(), "diverge") && !strings.Contains(sb.String(), "lengths differ") {
		t.Errorf("diff output missing divergence report:\n%s", sb.String())
	}
}

// TestDiffRejectsDamagedTraces pins the -diff integrity contract: a
// damaged trace must exit nonzero with the reason named, never agree
// vacuously. Before the check, two empty files — say, from a run killed
// before its first flush — diffed as "traces identical: 0 events".
func TestDiffRejectsDamagedTraces(t *testing.T) {
	good := writeTrace(t, 7)
	goodData, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	empty := write("empty.jsonl", nil)
	blank := write("blank.jsonl", []byte("\n\n  \n"))
	// Truncate mid-line so the tail is invalid JSON.
	truncated := write("truncated.jsonl", goodData[:len(goodData)-20])
	// Header-only: the run_start line with no run_end footer — every
	// line valid JSON, but the run never finished.
	headerOnly := write("header.jsonl", goodData[:bytes.IndexByte(goodData, '\n')+1])

	cases := []struct {
		name, a, b, want string
	}{
		{"empty-vs-empty", empty, empty, "empty trace"},
		{"empty-vs-good", empty, good, "empty trace"},
		{"blank-only", blank, good, "empty trace"},
		{"truncated", good, truncated, "invalid JSON"},
		{"header-only", headerOnly, good, "run_start without run_end"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			err := run([]string{"-diff", tc.a, tc.b}, &sb)
			if err == nil {
				t.Fatalf("damaged trace diffed clean:\n%s", sb.String())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the damage (want %q)", err, tc.want)
			}
		})
	}
}

func TestArgErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-bogus", "x"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-diff", "only-one.jsonl"}, &sb); err == nil {
		t.Error("-diff with one file accepted")
	}
	if err := run([]string{"/nonexistent/trace.jsonl"}, &sb); err == nil {
		t.Error("missing trace accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &sb); err == nil {
		t.Error("empty trace accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &sb); err == nil {
		t.Error("malformed trace accepted")
	}
}
