// Command counterfact replays a decision log recorded by dvmpsim
// -decisions, either verbatim or under a counterfactual substitution.
//
// Usage:
//
//	counterfact -decisions dec.jsonl [-scheme dynamic] [-seed 1]
//	            [-nodes 100] [-jobs 0] [-spare] [-timed] [-warm N]
//	            [-sparse K] [-cells C] [-kernel-workers W] [-swf lpc.swf]
//	            [-list] [-what-if IDX:ALT] [-trace replay.jsonl]
//
// The workload flags must match the recording run: replay is a strict
// re-execution of the recorded decisions against the same arrival
// stream, so the same -scheme/-seed/-nodes/-jobs/... flags that
// produced the log reproduce the original run trace byte-for-byte
// (`make policy-audit` pins this). Any mismatch surfaces as a
// divergence error and a non-zero exit.
//
// -list prints the recorded placement decisions with their log index
// and ranked alternatives — the coordinates -what-if takes. -what-if
// IDX:ALT substitutes alternative ALT for the recorded choice at log
// index IDX (a placement record); the run follows the log up to the
// substitution and the live fallback scheme afterward, which is the
// counterfactual: "what if we'd picked alternative #2 here?". Compare
// the -trace output of a faithful and a counterfactual replay with
// cmd/tracestat to see exactly where the futures fork.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "counterfact:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("counterfact", flag.ContinueOnError)
	var (
		decPath   = fs.String("decisions", "", "decision log to replay (required; record with dvmpsim -decisions)")
		scheme    = fs.String("scheme", "dynamic", "scheme that recorded the log (the replay's fallback)")
		swfPath   = fs.String("swf", "", "SWF workload file (default: synthetic week from -seed)")
		seed      = fs.Int64("seed", 1, "workload / random-scheme seed")
		nodes     = fs.Int("nodes", 100, "fleet size (Table II fast:slow mix is preserved)")
		jobCount  = fs.Int("jobs", 0, "truncate the workload to the first N jobs (0 = all)")
		useSpare  = fs.Bool("spare", false, "enable the spare-server controller (Section IV)")
		timed     = fs.Bool("timed", false, "use the timed pre-copy migration model")
		warm      = fs.Int("warm", 0, "power on N machines before the first arrival")
		sparseK   = fs.Int("sparse", 0, "candidate budget K for the dynamic scheme's sparse placement engine (0 = dense)")
		cells     = fs.Int("cells", 1, "partition the fleet into N cells (must match the recording run)")
		kernelW   = fs.Int("kernel-workers", 0, "kernel goroutine bound for the fallback scheme (0 = auto)")
		tracePath = fs.String("trace", "", "write the replay's JSONL run trace to this file")
		whatIf    = fs.String("what-if", "", "substitute alternative ALT at decision log index IDX, as IDX:ALT")
		list      = fs.Bool("list", false, "print the recorded placement decisions and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *decPath == "":
		return fmt.Errorf("-decisions is required: record a log with dvmpsim -decisions first")
	case *nodes <= 0:
		return fmt.Errorf("-nodes must be positive (got %d)", *nodes)
	case *jobCount < 0:
		return fmt.Errorf("-jobs must be >= 0 (got %d)", *jobCount)
	case *warm < 0:
		return fmt.Errorf("-warm must be >= 0 (got %d)", *warm)
	case *sparseK < 0:
		return fmt.Errorf("-sparse must be >= 0 (got %d)", *sparseK)
	case *cells < 1:
		return fmt.Errorf("-cells must be >= 1 (got %d)", *cells)
	case *cells > *nodes:
		return fmt.Errorf("-cells must not exceed -nodes (got %d cells for %d nodes)", *cells, *nodes)
	case *kernelW < 0:
		return fmt.Errorf("-kernel-workers must be >= 0 (got %d)", *kernelW)
	}

	f, err := os.Open(*decPath)
	if err != nil {
		return err
	}
	log, err := policy.ParseDecisionLog(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "decision log: %d records from %s\n", len(log), *decPath)

	if *list {
		return listPlacements(out, log)
	}

	fallback, err := policy.ByName(*scheme, *seed)
	if err != nil {
		return err
	}
	fp, ok := fallback.(policy.Policy)
	if !ok {
		return fmt.Errorf("scheme %s does not implement the policy interface", *scheme)
	}
	if d, isDyn := policy.DynamicOf(fallback); !isDyn {
		switch {
		case *sparseK > 0:
			return fmt.Errorf("-sparse applies to the dynamic scheme family only (got -scheme %s)", *scheme)
		case *kernelW != 0:
			return fmt.Errorf("-kernel-workers applies to the dynamic scheme family only (got -scheme %s)", *scheme)
		}
	} else if *sparseK > 0 {
		d.Opts.CandidateK = *sparseK
	}

	rp := policy.NewReplay(log, fp)
	if *whatIf != "" {
		ov, err := parseWhatIf(*whatIf, log)
		if err != nil {
			return err
		}
		rp.Override = ov
	}

	var jobs []workload.Job
	if *swfPath != "" {
		sf, err := os.Open(*swfPath)
		if err != nil {
			return err
		}
		jobs, err = workload.ParseSWF(sf)
		sf.Close()
		if err != nil {
			return err
		}
	} else {
		jobs = workload.MustGenerate(workload.DefaultWeekConfig(*seed))
	}
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	workload.SortBySubmit(jobs)
	if *jobCount > 0 && *jobCount < len(jobs) {
		jobs = jobs[:*jobCount]
	}
	reqs := workload.ToRequests(jobs)

	var dc *cluster.Datacenter
	if *nodes == 100 {
		dc = cluster.TableIIFleet()
	} else {
		dc = cluster.TableIIFleetScaled(*nodes)
	}
	cfg := sim.Config{DC: dc, Placer: rp, Requests: reqs, TimedMigrations: *timed, WarmStart: *warm, Cells: *cells, KernelWorkers: *kernelW}
	if *useSpare {
		sc := spare.DefaultConfig()
		cfg.Spare = &sc
	}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		traceFile = tf
		traceBuf = bufio.NewWriterSize(tf, 1<<16)
		cfg.Obs = obs.New()
		cfg.Obs.Trace = obs.NewTracer(traceBuf)
	}

	res, err := replaySim(cfg)
	if traceFile != nil {
		if ferr := traceBuf.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if terr := cfg.Obs.Trace.Err(); terr != nil && err == nil {
			err = terr
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if *tracePath != "" {
		fmt.Fprintf(out, "trace: %d events written to %s\n", cfg.Obs.Trace.Events(), *tracePath)
	}
	if err := metrics.WriteSummaries(out, []metrics.Summary{res.Summary}); err != nil {
		return err
	}

	// Divergence verdict: an Override is supposed to fork the run (that
	// is the counterfactual), anything else leaving the log is an error.
	if rerr := rp.Err(); rerr != nil {
		return fmt.Errorf("replay diverged unexpectedly: %w", rerr)
	}
	switch {
	case rp.Override != nil:
		fmt.Fprintf(out, "counterfactual: forked at decision #%d (alternative %d), live %s afterward\n",
			rp.Override.Index, rp.Override.Alt, *scheme)
	case rp.Diverged():
		// Diverged with a nil error cannot happen without an Override,
		// but keep the verdict exhaustive.
		return fmt.Errorf("replay diverged without a recorded reason")
	default:
		fmt.Fprintln(out, "replay: faithful (every decision matched the log)")
	}
	return nil
}

// replaySim drives the replay to completion (no checkpoint hooks: a
// counterfactual is always a fresh full run over the log).
func replaySim(cfg sim.Config) (*sim.Result, error) {
	m, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	for {
		ok, err := m.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return m.Finish()
}

// listPlacements prints the recorded placement decisions in -what-if
// coordinates: the log index, the recorded choice, and the ranked
// alternatives the recorder captured.
func listPlacements(out io.Writer, log []policy.Decision) error {
	n := 0
	for idx, d := range log {
		if d.Kind != policy.KindPlace {
			continue
		}
		n++
		choice := "queued"
		if d.PM >= 0 {
			choice = fmt.Sprintf("pm %d", d.PM)
		}
		alts := make([]string, len(d.Alts))
		for i, a := range d.Alts {
			alts[i] = fmt.Sprintf("%d: pm %d (%.4g)", i, a.PM, a.Score)
		}
		altStr := "none"
		if len(alts) > 0 {
			altStr = strings.Join(alts, ", ")
		}
		fmt.Fprintf(out, "#%-5d t=%-12.1f vm %-6d -> %-8s alternatives: %s\n", idx, d.T, d.VM, choice, altStr)
	}
	fmt.Fprintf(out, "%d placement decisions (use -what-if IDX:ALT to fork one)\n", n)
	return nil
}

// parseWhatIf resolves -what-if IDX:ALT against the parsed log so typos
// fail here, naming the problem, instead of mid-replay.
func parseWhatIf(s string, log []policy.Decision) (*policy.ReplayOverride, error) {
	idxStr, altStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("-what-if wants IDX:ALT (got %q)", s)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil {
		return nil, fmt.Errorf("-what-if index %q: %v", idxStr, err)
	}
	alt, err := strconv.Atoi(altStr)
	if err != nil {
		return nil, fmt.Errorf("-what-if alternative %q: %v", altStr, err)
	}
	if idx < 0 || idx >= len(log) {
		return nil, fmt.Errorf("-what-if index %d out of range (log has %d records)", idx, len(log))
	}
	d := log[idx]
	if d.Kind != policy.KindPlace {
		return nil, fmt.Errorf("-what-if index %d is not a placement record (see -list)", idx)
	}
	if alt < 0 || alt >= len(d.Alts) {
		return nil, fmt.Errorf("-what-if alternative %d out of range: record %d has %d alternatives", alt, idx, len(d.Alts))
	}
	return &policy.ReplayOverride{Index: idx, Alt: alt}, nil
}
