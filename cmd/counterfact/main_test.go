package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
	"repro/internal/workload"
)

// recordRun produces a (run trace, decision log) pair through the sim
// API — cmd packages cannot import each other — using exactly the
// workload and fleet construction counterfact's flags reproduce:
// -scheme dynamic -nodes 8 -seed 3 -jobs 120 -spare.
func recordRun(t *testing.T) (tracePath, decPath string) {
	t.Helper()
	jobs := workload.MustGenerate(workload.DefaultWeekConfig(3))
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	workload.SortBySubmit(jobs)
	if len(jobs) > 120 {
		jobs = jobs[:120]
	}
	placer, err := policy.ByName("dynamic", 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tracePath = filepath.Join(dir, "run.jsonl")
	decPath = filepath.Join(dir, "dec.jsonl")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Create(decPath)
	if err != nil {
		t.Fatal(err)
	}
	tw, dw := bufio.NewWriter(tf), bufio.NewWriter(df)
	o := obs.NewTracing(tw)
	o.Decisions = obs.NewTracer(dw)
	sc := spare.DefaultConfig()
	cfg := sim.Config{
		DC:       cluster.TableIIFleetScaled(8),
		Placer:   policy.NewRecorder(placer.(policy.Policy), 0),
		Requests: workload.ToRequests(jobs),
		Spare:    &sc,
		Obs:      o,
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, w := range []*bufio.Writer{tw, dw} {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range []*os.File{tf, df} {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return tracePath, decPath
}

var matchingFlags = []string{"-scheme", "dynamic", "-nodes", "8", "-seed", "3", "-jobs", "120", "-spare"}

func canonical(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := obs.Canonicalize(bytes.NewReader(data), &c); err != nil {
		t.Fatal(err)
	}
	return c.Bytes()
}

// TestFaithfulReplayReproducesTrace is the counterfact face of the
// policy-audit gate: replaying a recorded log under the recording flags
// reproduces the original run trace byte-for-byte.
func TestFaithfulReplayReproducesTrace(t *testing.T) {
	tracePath, decPath := recordRun(t)
	replayTrace := filepath.Join(t.TempDir(), "replay.jsonl")
	var sb strings.Builder
	args := append([]string{"-decisions", decPath, "-trace", replayTrace}, matchingFlags...)
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "replay: faithful") {
		t.Fatalf("output missing faithful verdict:\n%s", sb.String())
	}
	if !bytes.Equal(canonical(t, tracePath), canonical(t, replayTrace)) {
		t.Fatal("faithful replay trace differs from the recorded run")
	}
}

// TestListAndWhatIf drives the counterfactual loop: -list surfaces the
// fork coordinates, -what-if forks there, and the forked trace differs
// from the original while the run still completes cleanly.
func TestListAndWhatIf(t *testing.T) {
	tracePath, decPath := recordRun(t)
	var sb strings.Builder
	if err := run([]string{"-decisions", decPath, "-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "placement decisions") || !strings.Contains(out, "alternatives:") {
		t.Fatalf("-list output incomplete:\n%s", out)
	}
	// Find a record with at least two alternatives to fork on.
	idx := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, ", 1: pm") {
			idx = strings.TrimPrefix(strings.Fields(line)[0], "#")
			break
		}
	}
	if idx == "" {
		t.Fatal("no placement with a second alternative in the log")
	}

	cfTrace := filepath.Join(t.TempDir(), "cf.jsonl")
	sb.Reset()
	args := append([]string{"-decisions", decPath, "-what-if", idx + ":1", "-trace", cfTrace}, matchingFlags...)
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "counterfactual: forked at decision #"+idx) {
		t.Fatalf("output missing fork verdict:\n%s", sb.String())
	}
	if bytes.Equal(canonical(t, tracePath), canonical(t, cfTrace)) {
		t.Fatal("counterfactual trace identical to the original: the fork did nothing")
	}
}

// TestMismatchedFlagsDiverge pins the strictness contract: replaying a
// log against the wrong workload must fail loudly, not quietly produce
// a different run.
func TestMismatchedFlagsDiverge(t *testing.T) {
	_, decPath := recordRun(t)
	var sb strings.Builder
	err := run([]string{"-decisions", decPath, "-scheme", "dynamic", "-nodes", "8", "-seed", "4", "-jobs", "120", "-spare"}, &sb)
	if err == nil {
		t.Fatal("wrong-seed replay completed without a divergence error")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Errorf("error %q does not name the divergence", err)
	}
}

// TestRunErrors table-tests the rejection paths, mirroring dvmpsim.
func TestRunErrors(t *testing.T) {
	_, decPath := recordRun(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"missing decisions", []string{"-scheme", "dynamic"}, "-decisions"},
		{"missing log file", []string{"-decisions", "/nonexistent/dec.jsonl"}, "no such file"},
		{"bad flag", []string{"-badflag"}, "flag"},
		{"zero nodes", []string{"-decisions", decPath, "-nodes", "0"}, "-nodes"},
		{"negative jobs", []string{"-decisions", decPath, "-jobs", "-1"}, "-jobs"},
		{"negative sparse", []string{"-decisions", decPath, "-sparse", "-2"}, "-sparse"},
		{"sparse on static scheme", []string{"-decisions", decPath, "-scheme", "first-fit", "-sparse", "8"}, "dynamic scheme family"},
		{"kernel workers on static scheme", []string{"-decisions", decPath, "-scheme", "best-fit", "-kernel-workers", "2"}, "dynamic scheme family"},
		{"unknown scheme", []string{"-decisions", decPath, "-scheme", "nope"}, "scheme"},
		{"what-if syntax", []string{"-decisions", decPath, "-what-if", "17"}, "IDX:ALT"},
		{"what-if index range", []string{"-decisions", decPath, "-what-if", "999999:0"}, "out of range"},
		{"what-if non-place record", []string{"-decisions", decPath, "-what-if", "0:0"}, "not a placement"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			err := run(tc.args, &sb)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
