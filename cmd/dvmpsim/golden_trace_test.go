package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceArgs is the fixed scenario the golden trace pins: a small fleet,
// the full dynamic scheme with the spare-server controller, and a
// synthetic workload truncated to keep the trace reviewable.
func traceArgs(tracePath string) []string {
	return []string{
		"-scheme", "dynamic", "-nodes", "8", "-seed", "3", "-jobs", "120",
		"-spare", "-trace", tracePath,
	}
}

// canonicalTrace runs dvmpsim with -trace (plus any extra flags) and
// returns the trace with every line's wall-clock field stripped
// (obs.Canonicalize) — the deterministic byte stream the golden file pins.
func canonicalTrace(t *testing.T, extra ...string) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var sb strings.Builder
	if err := run(append(traceArgs(path), extra...), &sb); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var canon bytes.Buffer
	if err := obs.Canonicalize(bytes.NewReader(raw), &canon); err != nil {
		t.Fatal(err)
	}
	return canon.Bytes()
}

// TestGoldenTrace pins the entire event stream of a fixed run. Any drift
// — a reordered event, a changed field, a different decision — fails
// byte-for-byte and must be reviewed (then blessed with
// `go test ./cmd/dvmpsim -run GoldenTrace -update`). Wall-clock fields
// are stripped first, so the comparison is exact, not fuzzy.
func TestGoldenTrace(t *testing.T) {
	got := canonicalTrace(t)

	goldenPath := filepath.Join("testdata", "golden_trace.jsonl")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl := bytes.Split(got, []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		n := len(gl)
		if len(wl) < n {
			n = len(wl)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace drifted from golden at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace drifted from golden: %d lines vs %d", len(gl), len(wl))
	}
}

// TestGoldenTraceSparse replays the golden scenario through the sparse
// candidate-set engine (-sparse). The engine's contract is bit-identical
// decisions, so the canonical trace must byte-match the SAME golden file
// the dense run pins — every placement, migration, boot, and spare plan
// included. A single diverging decision anywhere in the 325-event stream
// fails the byte compare.
func TestGoldenTraceSparse(t *testing.T) {
	got := canonicalTrace(t, "-sparse", "64")
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatalf("missing golden (run TestGoldenTrace with -update first): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl := bytes.Split(got, []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		n := min(len(gl), len(wl))
		for i := 0; i < n; i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("sparse trace diverged from dense golden at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("sparse trace diverged from dense golden: %d lines vs %d", len(gl), len(wl))
	}
}

// TestGoldenTraceCells replays the golden scenario through the sharded
// multi-cell engine at C=2 and C=8 (every PM its own cell). The
// shared-clock orchestrator's contract is the monolith's exact dispatch
// order, so both canonical traces must byte-match the SAME golden file
// the single-cell run pins — cell stamps are non-canonical and are
// stripped alongside wall-clock fields.
func TestGoldenTraceCells(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatalf("missing golden (run TestGoldenTrace with -update first): %v", err)
	}
	for _, cells := range []string{"2", "8"} {
		got := canonicalTrace(t, "-cells", cells)
		if !bytes.Equal(got, want) {
			gl := bytes.Split(got, []byte("\n"))
			wl := bytes.Split(want, []byte("\n"))
			n := min(len(gl), len(wl))
			for i := 0; i < n; i++ {
				if !bytes.Equal(gl[i], wl[i]) {
					t.Fatalf("-cells %s trace diverged from golden at line %d:\ngot:  %s\nwant: %s", cells, i+1, gl[i], wl[i])
				}
			}
			t.Fatalf("-cells %s trace diverged from golden: %d lines vs %d", cells, len(gl), len(wl))
		}
	}
}

// TestTraceDeterminism asserts the core observability guarantee end to
// end: two dvmpsim runs with identical flags produce byte-identical
// traces once wall-clock fields are stripped.
func TestTraceDeterminism(t *testing.T) {
	a := canonicalTrace(t)
	b := canonicalTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two same-seed runs produced different canonical traces")
	}
	if len(a) == 0 {
		t.Fatal("canonical trace is empty")
	}
	// Wall-clock really was stripped: no line may still carry the field.
	if bytes.Contains(a, []byte(`"wall":`)) {
		t.Error("canonical trace still contains wall-clock fields")
	}
}
