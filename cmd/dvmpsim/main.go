// Command dvmpsim runs one placement scheme over a workload trace on the
// paper's Table II data center and reports the energy, active-server, and
// QoS outcome.
//
// Usage:
//
//	dvmpsim [-scheme dynamic] [-swf lpc.swf] [-seed 1] [-spare]
//	        [-nodes 100] [-sparse K] [-cells C] [-kernel-workers W]
//	        [-csv out.csv] [-v]
//	        [-trace run.jsonl] [-metrics run.metrics.json]
//	        [-decisions dec.jsonl]
//	        [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -sparse K routes the dynamic scheme's placement and consolidation
// through the candidate-set engine with budget K (see README "Sparse
// placement"); decisions — and therefore traces — are bit-identical to
// the dense kernel, which TestGoldenTraceSparse pins.
//
// -kernel-workers W bounds the goroutines the dynamic scheme's in-run
// kernels fan out on (matrix builds, candidate sync, consolidation
// argmax; see README "Parallel kernels" and DESIGN.md §15). 0 auto-sizes
// to GOMAXPROCS under the process-wide goroutine budget, 1 forces the
// serial path; results are bit-identical at every setting.
//
// -cells C partitions the fleet into C cells advanced by the
// shared-clock orchestrator (see README "Multi-cell runs" and DESIGN.md
// §14); decisions and canonical traces are bit-identical to -cells 1,
// which TestGoldenTraceCells and `make cells-audit` pin. Checkpoints
// taken under one cell count resume under any other.
//
// The -cpuprofile and -memprofile flags capture runtime/pprof profiles of
// the whole run for `go tool pprof`; the placement hot path (matrix build
// and per-round refresh) is where the samples land under -scheme dynamic.
//
// -trace writes the structured JSONL run trace (one schema-versioned
// event per line: arrivals, placements, migrations, boots, failures,
// spare plans — see internal/obs and DESIGN.md §9); summarize or diff it
// with cmd/tracestat. -metrics dumps the run's metrics registry (event
// counters, queue-wait histogram, per-phase wall-clock timings) as JSON.
// Two runs with the same flags produce byte-identical traces once the
// wall-clock field is stripped (`tracestat -diff` does this).
//
// -decisions records every policy decision — arrival placements with
// their top-k rejected alternatives, consolidation move batches, and
// spare-pool targets — as a separate JSONL stream (see DESIGN.md §16).
// The decision stream has its own logical clock, so recording leaves the
// run trace byte-identical to an unrecorded run (`make policy-audit`
// pins this). Replay the log, or ask "what if we'd picked alternative
// #2", with cmd/counterfact.
//
// Without -swf a synthetic week calibrated to the paper's Figure 2 is
// generated from -seed. With -swf, the file is parsed as Standard
// Workload Format (so the original LPC log from the Parallel Workloads
// Archive can be used directly), filtered, and normalized per Section V.A.
//
// Checkpoint and resume: -checkpoint names a checkpoint file,
// -checkpoint-every N rewrites it (atomically) every N dispatched events,
// -stop-after N checkpoints and exits at event N (a controlled crash),
// and -resume restores a run from a checkpoint under the same flags. A
// resumed run continues bit-exactly: its trace concatenated after the
// interrupted run's is canonically byte-identical to an uninterrupted
// run's (see DESIGN.md §11 and `make resume-audit`).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dvmpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dvmpsim", flag.ContinueOnError)
	var (
		scheme    = fs.String("scheme", "dynamic", "placement scheme: first-fit, best-fit, worst-fit, random, threshold, dynamic, overbook, dynamic-adaptive")
		swfPath   = fs.String("swf", "", "SWF workload file (default: synthetic week from -seed)")
		tracePath = fs.String("trace", "", "write the structured JSONL run trace to this file")
		decPath   = fs.String("decisions", "", "record every placement decision (with top-k alternatives) as JSONL to this file; replay with cmd/counterfact")
		metrPath  = fs.String("metrics", "", "write the run's metrics registry as JSON to this file")
		seed      = fs.Int64("seed", 1, "workload / random-scheme seed")
		sparseK   = fs.Int("sparse", 0, "candidate budget K for the dynamic scheme's sparse placement engine (0 = dense)")
		cells     = fs.Int("cells", 1, "partition the fleet into N cells under the shared-clock orchestrator (1 = monolithic engine; results are bit-identical for any N)")
		kernelW   = fs.Int("kernel-workers", 0, "goroutines the dynamic scheme's placement kernels fan out on (0 = auto-size to GOMAXPROCS under the shared budget, 1 = serial; results are bit-identical for any value)")
		useSpare  = fs.Bool("spare", false, "enable the spare-server controller (Section IV)")
		nodes     = fs.Int("nodes", 100, "fleet size (Table II fast:slow mix is preserved)")
		jobCount  = fs.Int("jobs", 0, "truncate the workload to the first N jobs (0 = all)")
		timed     = fs.Bool("timed", false, "use the timed pre-copy migration model")
		warm      = fs.Int("warm", 0, "power on N machines before the first arrival")
		logPath   = fs.String("eventlog", "", "write a per-event trace to this file")
		auditMode = fs.String("audit", "off", "invariant auditing: off, period (each control period), event (after every event)")
		csvPath   = fs.String("csv", "", "write hourly active/energy series as CSV")
		verbose   = fs.Bool("v", false, "print the hourly series to stdout")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write an end-of-run heap profile to this file")
		ckptPath  = fs.String("checkpoint", "", "checkpoint file to write (atomically, via rename)")
		ckptEvery = fs.Int64("checkpoint-every", 0, "checkpoint every N dispatched events (requires -checkpoint)")
		stopAfter = fs.Int64("stop-after", 0, "stop after N dispatched events, write a final checkpoint, and exit (requires -checkpoint)")
		resumeArg = fs.String("resume", "", "resume the run from this checkpoint file instead of starting fresh")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Uniform flag validation: every bad value dies here with one line,
	// before any file is created or any work starts.
	switch {
	case *nodes <= 0:
		return fmt.Errorf("-nodes must be positive (got %d)", *nodes)
	case *jobCount < 0:
		return fmt.Errorf("-jobs must be >= 0 (got %d)", *jobCount)
	case *warm < 0:
		return fmt.Errorf("-warm must be >= 0 (got %d)", *warm)
	case *ckptEvery < 0:
		return fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", *ckptEvery)
	case *stopAfter < 0:
		return fmt.Errorf("-stop-after must be >= 0 (got %d)", *stopAfter)
	case (*ckptEvery > 0 || *stopAfter > 0) && *ckptPath == "":
		return fmt.Errorf("-checkpoint-every and -stop-after need -checkpoint to say where the checkpoint goes")
	case *sparseK < 0:
		return fmt.Errorf("-sparse must be >= 0 (got %d)", *sparseK)
	case *cells < 1:
		return fmt.Errorf("-cells must be >= 1 (got %d)", *cells)
	case *cells > *nodes:
		return fmt.Errorf("-cells must not exceed -nodes: every cell owns at least one PM (got %d cells for %d nodes)", *cells, *nodes)
	case *kernelW < 0:
		return fmt.Errorf("-kernel-workers must be >= 0 (got %d)", *kernelW)
	}

	placer, err := policy.ByName(*scheme, *seed)
	if err != nil {
		return err
	}
	// Cross-flag checks that depend on the scheme family: the sparse
	// engine and the kernel-worker knob configure the dynamic scheme's
	// placement kernels, so with any other scheme they would silently do
	// nothing — reject them instead. DynamicOf unwraps wrapper policies,
	// so dynamic-adaptive qualifies.
	if _, isDyn := policy.DynamicOf(placer); !isDyn {
		switch {
		case *sparseK > 0:
			return fmt.Errorf("-sparse applies to the dynamic scheme family only (got -scheme %s)", *scheme)
		case *kernelW != 0:
			return fmt.Errorf("-kernel-workers applies to the dynamic scheme family only (got -scheme %s)", *scheme)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvmpsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvmpsim: memprofile:", err)
			}
		}()
	}

	if d, ok := policy.DynamicOf(placer); ok && *sparseK > 0 {
		d.Opts.CandidateK = *sparseK
	}

	var jobs []workload.Job
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			return err
		}
		jobs, err = workload.ParseSWF(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		jobs = workload.MustGenerate(workload.DefaultWeekConfig(*seed))
	}
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	workload.SortBySubmit(jobs)
	if *jobCount > 0 && *jobCount < len(jobs) {
		jobs = jobs[:*jobCount]
	}
	reqs := workload.ToRequests(jobs)
	fmt.Fprintf(out, "workload: %d jobs -> %d single-core VM requests\n", len(jobs), len(reqs))

	var dc *cluster.Datacenter
	if *nodes == 100 {
		dc = cluster.TableIIFleet()
	} else {
		dc = cluster.TableIIFleetScaled(*nodes)
	}
	cfg := sim.Config{DC: dc, Placer: placer, Requests: reqs, TimedMigrations: *timed, WarmStart: *warm, Cells: *cells, KernelWorkers: *kernelW}
	cfg.Audit, err = audit.ParseMode(*auditMode)
	if err != nil {
		return err
	}
	if *useSpare {
		sc := spare.DefaultConfig()
		cfg.Spare = &sc
	}
	if *logPath != "" {
		lf, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer lf.Close()
		cfg.EventLog = bufio.NewWriter(lf)
		defer cfg.EventLog.(*bufio.Writer).Flush()
	}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *tracePath != "" || *metrPath != "" || *decPath != "" {
		cfg.Obs = obs.New()
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			traceFile = f
			traceBuf = bufio.NewWriterSize(f, 1<<16)
			cfg.Obs.Trace = obs.NewTracer(traceBuf)
		}
	}
	var decFile *os.File
	var decBuf *bufio.Writer
	if *decPath != "" {
		f, err := os.Create(*decPath)
		if err != nil {
			return err
		}
		decFile = f
		decBuf = bufio.NewWriterSize(f, 1<<16)
		cfg.Obs.Decisions = obs.NewTracer(decBuf)
		// Recording wraps the configured policy; the decision stream has
		// its own logical clock, so the run trace stays byte-identical to
		// an unrecorded run (`make policy-audit` pins this).
		cfg.Placer = policy.NewRecorder(placer.(policy.Policy), 0)
	}
	res, stopped, err := runSim(cfg, out, *resumeArg, *ckptPath, uint64(*ckptEvery), uint64(*stopAfter))
	if traceFile != nil {
		// Flush and close even on a failed or stopped run: a trace that
		// ends at an audit violation or a checkpoint is exactly what you
		// want to inspect (and resume from).
		if ferr := traceBuf.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if terr := cfg.Obs.Trace.Err(); terr != nil && err == nil {
			err = terr
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if decFile != nil {
		// Same flush-even-on-failure contract as the run trace: a
		// decision log that ends at a checkpoint is what counterfact
		// resumes from.
		if ferr := decBuf.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if derr := cfg.Obs.Decisions.Err(); derr != nil && err == nil {
			err = derr
		}
		if cerr := decFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if stopped {
		// -stop-after hit: the state lives in the checkpoint, there is no
		// Result to report.
		return nil
	}
	if *tracePath != "" {
		fmt.Fprintf(out, "trace: %d events written to %s\n", cfg.Obs.Trace.Events(), *tracePath)
	}
	if *decPath != "" {
		fmt.Fprintf(out, "decisions: %d records written to %s\n", cfg.Obs.Decisions.Events(), *decPath)
	}
	if *metrPath != "" {
		f, err := os.Create(*metrPath)
		if err != nil {
			return err
		}
		if err := cfg.Obs.Reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics: %s\n", *metrPath)
	}

	if err := metrics.WriteSummaries(out, []metrics.Summary{res.Summary}); err != nil {
		return err
	}
	fmt.Fprintf(out, "energy by class: %v kWh\n", res.EnergyByClassKWh)
	if cfg.Audit != audit.Off {
		fmt.Fprintf(out, "audit: %d checks passed (mode %s)\n", res.AuditChecks, cfg.Audit)
	}
	if res.Failures > 0 {
		fmt.Fprintf(out, "PM failures injected: %d\n", res.Failures)
	}

	table := &metrics.Table{TimeLabel: "hour", Series: []*metrics.Series{res.ActivePMs, res.EnergyKWh}}
	if *verbose {
		if err := table.WriteText(out); err != nil {
			return err
		}
		if cfg.Obs != nil {
			fmt.Fprintln(out, "-- run metrics --")
			if err := cfg.Obs.Reg.WriteText(out); err != nil {
				return err
			}
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := table.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "hourly series written to %s\n", *csvPath)
	}
	return nil
}

// runSim drives the simulation loop with the checkpoint hooks: resume
// from a checkpoint file instead of a fresh start, periodic checkpoints
// every N events, and a -stop-after cutoff that checkpoints and exits
// mid-run (the "controlled crash" the resume audit restores from).
// stopped reports the cutoff path, in which case res is nil.
func runSim(cfg sim.Config, out io.Writer, resumePath, ckptPath string, every, stopAfter uint64) (res *sim.Result, stopped bool, err error) {
	var m *sim.Sim
	if resumePath != "" {
		f, oerr := os.Open(resumePath)
		if oerr != nil {
			return nil, false, oerr
		}
		m, err = sim.Restore(cfg, f)
		f.Close()
		if err != nil {
			return nil, false, err
		}
		fmt.Fprintf(out, "resumed: %s at event %d (t=%.1f)\n", resumePath, m.Dispatched(), m.Now())
	} else {
		if m, err = sim.New(cfg); err != nil {
			return nil, false, err
		}
	}
	lastCkpt := m.Dispatched()
	for {
		if stopAfter > 0 && m.Dispatched() >= stopAfter && m.Pending() > 0 {
			if err := writeCheckpoint(m, ckptPath); err != nil {
				return nil, false, err
			}
			fmt.Fprintf(out, "checkpoint: %s at event %d (t=%.1f), stopping\n", ckptPath, m.Dispatched(), m.Now())
			return nil, true, nil
		}
		if every > 0 && m.Dispatched() >= lastCkpt+every {
			if err := writeCheckpoint(m, ckptPath); err != nil {
				return nil, false, err
			}
			lastCkpt = m.Dispatched()
		}
		ok, serr := m.Step()
		if serr != nil {
			return nil, false, serr
		}
		if !ok {
			break
		}
	}
	res, err = m.Finish()
	return res, false, err
}

// writeCheckpoint saves the run state atomically: write to a temp file in
// the same directory, then rename over the target, so a crash mid-write
// never leaves a truncated checkpoint where a good one stood.
func writeCheckpoint(m *sim.Sim, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := m.Save(w); err == nil {
		err = w.Flush()
	} else {
		w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
