package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is a fixed 12-job SWF fragment covering multi-core jobs,
// memory variety, and overlapping lifetimes.
const goldenTrace = `; golden scenario
1 0 0 3600 2 -1 524288 2 3600 -1 1 1 1 1 1 1 -1 -1
2 120 0 7200 1 -1 262144 1 7200 -1 1 1 1 1 1 1 -1 -1
3 300 0 1800 4 -1 524288 4 1800 -1 1 1 1 1 1 1 -1 -1
4 600 0 9000 1 -1 1048576 1 9000 -1 1 1 1 1 1 1 -1 -1
5 900 0 2400 2 -1 262144 2 2400 -1 1 1 1 1 1 1 -1 -1
6 1800 0 5400 1 -1 524288 1 5400 -1 1 1 1 1 1 1 -1 -1
7 3600 0 3600 2 -1 524288 2 3600 -1 1 1 1 1 1 1 -1 -1
8 5400 0 1200 1 -1 262144 1 1200 -1 1 1 1 1 1 1 -1 -1
9 7200 0 7200 4 -1 524288 4 7200 -1 1 1 1 1 1 1 -1 -1
10 9000 0 3600 1 -1 1048576 1 3600 -1 1 1 1 1 1 1 -1 -1
11 10800 0 2400 2 -1 262144 2 2400 -1 1 1 1 1 1 1 -1 -1
12 12600 0 4800 1 -1 524288 1 4800 -1 1 1 1 1 1 1 -1 -1
`

// TestGoldenCSV pins the exact hourly series the dynamic scheme produces
// on a fixed scenario. The simulation is fully deterministic, so any drift
// here is a behaviour change that must be reviewed (and blessed with
// `go test ./cmd/dvmpsim -run Golden -update`).
func TestGoldenCSV(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "golden.swf")
	if err := os.WriteFile(trace, []byte(goldenTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "out.csv")
	var sb strings.Builder
	err := run([]string{"-swf", trace, "-scheme", "dynamic", "-nodes", "8", "-csv", csv}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "golden_dynamic.csv")
	if *update {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("output drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
