package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunSyntheticSmallFleet(t *testing.T) {
	var sb strings.Builder
	// A 16-node fleet keeps the test fast while exercising the full path.
	err := run([]string{"-scheme", "first-fit", "-nodes", "16", "-seed", "2", "-jobs", "300"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"300 jobs", "first-fit", "energy by class"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "series.csv")
	var sb strings.Builder
	if err := run([]string{"-scheme", "best-fit", "-nodes", "16", "-jobs", "300", "-csv", csv}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "hour,best-fit,best-fit") {
		t.Errorf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunVerbosePrintsSeries(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "worst-fit", "-nodes", "16", "-jobs", "300", "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hour") {
		t.Error("verbose output missing series table")
	}
}

func TestRunSWFTrace(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "t.swf")
	content := "; test\n" +
		"1 0 0 600 1 -1 524288 1 600 -1 1 1 1 1 1 1 -1 -1\n" +
		"2 60 0 900 2 -1 524288 2 900 -1 1 1 1 1 1 1 -1 -1\n"
	if err := os.WriteFile(swf, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-swf", swf, "-scheme", "dynamic", "-nodes", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 jobs -> 3 single-core VM requests") {
		t.Errorf("trace parsing output wrong:\n%s", sb.String())
	}
}

// TestRunErrors table-tests the CLI's rejection paths: every invalid
// flag combination must fail with a non-nil (one-line) error before any
// simulation work starts, and the message must name what was wrong.
func TestRunErrors(t *testing.T) {
	garbage := filepath.Join(t.TempDir(), "not-a-checkpoint.json")
	if err := os.WriteFile(garbage, []byte(`{"magic":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring the error must contain
	}{
		{"unknown scheme", []string{"-scheme", "nope"}, "scheme"},
		{"missing swf", []string{"-swf", "/nonexistent/file.swf"}, "no such file"},
		{"unwritable trace", []string{"-scheme", "first-fit", "-nodes", "4", "-jobs", "10",
			"-trace", "/nonexistent/dir/run.jsonl"}, "no such file"},
		{"bad flag", []string{"-badflag"}, "flag"},
		{"bad audit mode", []string{"-audit", "nonsense"}, "audit"},
		{"negative jobs", []string{"-jobs", "-5"}, "-jobs"},
		{"zero nodes", []string{"-nodes", "0"}, "-nodes"},
		{"negative nodes", []string{"-nodes", "-16"}, "-nodes"},
		{"negative warm", []string{"-warm", "-1"}, "-warm"},
		{"negative checkpoint-every", []string{"-checkpoint-every", "-10"}, "-checkpoint-every"},
		{"negative stop-after", []string{"-stop-after", "-3"}, "-stop-after"},
		{"checkpoint-every without path", []string{"-checkpoint-every", "100"}, "-checkpoint"},
		{"stop-after without path", []string{"-stop-after", "100"}, "-checkpoint"},
		{"resume missing file", []string{"-nodes", "4", "-jobs", "10", "-resume", "/nonexistent/ck.json"}, "no such file"},
		{"resume non-checkpoint", []string{"-nodes", "4", "-jobs", "10", "-resume", garbage}, "magic"},
		{"negative sparse", []string{"-scheme", "dynamic", "-sparse", "-8"}, "-sparse"},
		{"sparse on static scheme", []string{"-scheme", "first-fit", "-sparse", "64"}, "dynamic"},
		{"zero cells", []string{"-scheme", "dynamic", "-cells", "0"}, "-cells"},
		{"negative cells", []string{"-scheme", "dynamic", "-cells", "-2"}, "-cells"},
		{"more cells than nodes", []string{"-scheme", "dynamic", "-nodes", "4", "-cells", "5"}, "-cells"},
		{"negative kernel workers", []string{"-scheme", "dynamic", "-kernel-workers", "-1"}, "-kernel-workers"},
		{"very negative kernel workers", []string{"-kernel-workers", "-7"}, "-kernel-workers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			err := run(tc.args, &sb)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCrossFlagSchemeMatrix table-tests every pairwise combination of
// scheme and dynamic-family-only flag: -sparse and -kernel-workers
// configure the dynamic scheme's placement kernels, so they must be
// rejected (naming the family) for every scheme outside that family and
// accepted — with a real tiny run — for every scheme inside it.
func TestCrossFlagSchemeMatrix(t *testing.T) {
	schemes := []struct {
		name  string
		isDyn bool
	}{
		{"first-fit", false},
		{"best-fit", false},
		{"worst-fit", false},
		{"random", false},
		{"threshold", false},
		{"overbook", false},
		{"dynamic", true},
		{"dynamic-adaptive", true},
	}
	flags := [][]string{
		{"-sparse", "8"},
		{"-kernel-workers", "2"},
	}
	for _, s := range schemes {
		for _, fl := range flags {
			t.Run(s.name+fl[0], func(t *testing.T) {
				args := append([]string{"-scheme", s.name, "-nodes", "4", "-jobs", "10"}, fl...)
				var sb strings.Builder
				err := run(args, &sb)
				if s.isDyn {
					if err != nil {
						t.Fatalf("%v rejected for dynamic-family scheme: %v", fl, err)
					}
					return
				}
				if err == nil {
					t.Fatalf("%v accepted for scheme %s", fl, s.name)
				}
				if !strings.Contains(err.Error(), "dynamic scheme family") {
					t.Errorf("error %q does not name the dynamic scheme family", err)
				}
			})
		}
	}
}

// TestRunCheckpointResume drives the flags end to end: stop a run at an
// event boundary via -stop-after, resume it with -resume, and require
// the concatenated canonical traces to equal an uninterrupted run's.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	prefix := filepath.Join(dir, "prefix.jsonl")
	tail := filepath.Join(dir, "tail.jsonl")
	ckpt := filepath.Join(dir, "ck.json")
	base := []string{"-scheme", "dynamic", "-nodes", "8", "-seed", "5", "-jobs", "80", "-spare", "-timed"}

	var sb strings.Builder
	if err := run(append(base, "-trace", full), &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run(append(base, "-trace", prefix, "-checkpoint", ckpt, "-stop-after", "200"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stopping") {
		t.Fatalf("run did not stop at the cutoff:\n%s", sb.String())
	}
	sb.Reset()
	if err := run(append(base, "-trace", tail, "-resume", ckpt), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "resumed: "+ckpt) {
		t.Fatalf("output missing resume line:\n%s", sb.String())
	}

	read := func(p string) []byte {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var c bytes.Buffer
		if err := obs.Canonicalize(bytes.NewReader(data), &c); err != nil {
			t.Fatal(err)
		}
		return c.Bytes()
	}
	combined := append(read(prefix), read(tail)...)
	if want := read(full); !bytes.Equal(combined, want) {
		t.Fatal("resumed trace differs from the uninterrupted run")
	}
}

// TestDecisionRecordingLeavesTraceIdentical pins the policy-lab
// recording contract: the decision stream has its own logical clock, so
// a run recorded with -decisions must produce a run trace canonically
// byte-identical to the same run without recording.
func TestDecisionRecordingLeavesTraceIdentical(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.jsonl")
	recorded := filepath.Join(dir, "recorded.jsonl")
	dec := filepath.Join(dir, "dec.jsonl")
	base := []string{"-scheme", "dynamic", "-nodes", "8", "-seed", "3", "-jobs", "120", "-spare"}

	var sb strings.Builder
	if err := run(append(base, "-trace", plain), &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run(append(base, "-trace", recorded, "-decisions", dec), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "decisions: ") {
		t.Fatalf("output missing decision count:\n%s", sb.String())
	}
	read := func(p string) []byte {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var c bytes.Buffer
		if err := obs.Canonicalize(bytes.NewReader(data), &c); err != nil {
			t.Fatal(err)
		}
		return c.Bytes()
	}
	if !bytes.Equal(read(plain), read(recorded)) {
		t.Fatal("recording decisions perturbed the run trace")
	}
	if info, err := os.Stat(dec); err != nil || info.Size() == 0 {
		t.Fatalf("decision log missing or empty: %v", err)
	}
}

// TestDecisionLogCheckpointResume pins the decision stream's resume
// contract: stop a recorded run at a checkpoint, resume it recording to
// a second log, and require the concatenated canonical logs to equal an
// uninterrupted recording (seq continuity comes from the checkpointed
// decision clock and recorder counters).
func TestDecisionLogCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	prefix := filepath.Join(dir, "prefix.jsonl")
	tail := filepath.Join(dir, "tail.jsonl")
	ckpt := filepath.Join(dir, "ck.json")
	base := []string{"-scheme", "dynamic", "-nodes", "8", "-seed", "5", "-jobs", "80", "-spare", "-timed"}

	var sb strings.Builder
	if err := run(append(base, "-decisions", full), &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run(append(base, "-decisions", prefix, "-checkpoint", ckpt, "-stop-after", "200"), &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run(append(base, "-decisions", tail, "-resume", ckpt), &sb); err != nil {
		t.Fatal(err)
	}
	read := func(p string) []byte {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var c bytes.Buffer
		if err := obs.Canonicalize(bytes.NewReader(data), &c); err != nil {
			t.Fatal(err)
		}
		return c.Bytes()
	}
	combined := append(read(prefix), read(tail)...)
	if want := read(full); !bytes.Equal(combined, want) {
		t.Fatal("resumed decision log differs from the uninterrupted recording")
	}
}

// TestRunCheckpointEvery exercises periodic checkpointing: the file must
// exist after the run and be restorable.
func TestRunCheckpointEvery(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	base := []string{"-scheme", "first-fit", "-nodes", "8", "-seed", "2", "-jobs", "60"}
	var sb strings.Builder
	if err := run(append(base, "-checkpoint", ckpt, "-checkpoint-every", "50"), &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("periodic checkpoint not written: %v", err)
	}
	sb.Reset()
	if err := run(append(base, "-resume", ckpt), &sb); err != nil {
		t.Fatalf("resume from periodic checkpoint: %v", err)
	}
	if !strings.Contains(sb.String(), "completed") && !strings.Contains(sb.String(), "scheme") {
		t.Fatalf("resumed run produced no summary:\n%s", sb.String())
	}
}

func TestRunTimedWarmAndEventLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	var sb strings.Builder
	err := run([]string{
		"-scheme", "dynamic", "-nodes", "16", "-jobs", "200",
		"-timed", "-warm", "4", "-eventlog", logPath,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"arrive", "place", "depart"} {
		if !strings.Contains(string(data), marker) {
			t.Errorf("event log missing %q", marker)
		}
	}
}

func TestRunAuditFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scheme", "dynamic", "-nodes", "16", "-jobs", "200", "-audit", "event", "-spare"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "checks passed (mode event)") {
		t.Errorf("output missing audit summary:\n%s", out)
	}
	if err := run([]string{"-audit", "nonsense"}, &sb); err == nil {
		t.Error("bad audit mode accepted")
	}
}
