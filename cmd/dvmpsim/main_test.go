package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSyntheticSmallFleet(t *testing.T) {
	var sb strings.Builder
	// A 16-node fleet keeps the test fast while exercising the full path.
	err := run([]string{"-scheme", "first-fit", "-nodes", "16", "-seed", "2", "-jobs", "300"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"300 jobs", "first-fit", "energy by class"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "series.csv")
	var sb strings.Builder
	if err := run([]string{"-scheme", "best-fit", "-nodes", "16", "-jobs", "300", "-csv", csv}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "hour,best-fit,best-fit") {
		t.Errorf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunVerbosePrintsSeries(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "worst-fit", "-nodes", "16", "-jobs", "300", "-v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hour") {
		t.Error("verbose output missing series table")
	}
}

func TestRunSWFTrace(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "t.swf")
	content := "; test\n" +
		"1 0 0 600 1 -1 524288 1 600 -1 1 1 1 1 1 1 -1 -1\n" +
		"2 60 0 900 2 -1 524288 2 900 -1 1 1 1 1 1 1 -1 -1\n"
	if err := os.WriteFile(swf, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-swf", swf, "-scheme", "dynamic", "-nodes", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2 jobs -> 3 single-core VM requests") {
		t.Errorf("trace parsing output wrong:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "nope"}, &sb); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run([]string{"-swf", "/nonexistent/file.swf"}, &sb); err == nil {
		t.Error("missing SWF workload accepted")
	}
	if err := run([]string{"-scheme", "first-fit", "-nodes", "4", "-jobs", "10",
		"-trace", "/nonexistent/dir/run.jsonl"}, &sb); err == nil {
		t.Error("unwritable trace path accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunTimedWarmAndEventLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	var sb strings.Builder
	err := run([]string{
		"-scheme", "dynamic", "-nodes", "16", "-jobs", "200",
		"-timed", "-warm", "4", "-eventlog", logPath,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"arrive", "place", "depart"} {
		if !strings.Contains(string(data), marker) {
			t.Errorf("event log missing %q", marker)
		}
	}
}

func TestRunAuditFlag(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-scheme", "dynamic", "-nodes", "16", "-jobs", "200", "-audit", "event", "-spare"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "checks passed (mode event)") {
		t.Errorf("output missing audit summary:\n%s", out)
	}
	if err := run([]string{"-audit", "nonsense"}, &sb); err == nil {
		t.Error("bad audit mode accepted")
	}
}
