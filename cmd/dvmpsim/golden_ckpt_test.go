package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// goldenCkptEvent is the event boundary the committed checkpoint fixture
// freezes the golden scenario at — mid-trace, with placements, boots,
// spare plans, and migrations all live.
const goldenCkptEvent = "400"

// TestGoldenCheckpointResume pins the checkpoint FORMAT, not just the
// behavior: a checkpoint written by a past build and committed under
// testdata must still restore in this build, and the resumed run's
// canonical trace must be byte-for-byte the tail of the committed golden
// trace. Format drift without a version bump, or any resume divergence,
// fails here. Regenerate alongside the golden trace with
// `go test ./cmd/dvmpsim -run Golden -update`.
func TestGoldenCheckpointResume(t *testing.T) {
	ckptPath := filepath.Join("testdata", "golden_ckpt.json")

	if *update {
		var sb strings.Builder
		args := append(traceArgs(filepath.Join(t.TempDir(), "prefix.jsonl")),
			"-checkpoint", ckptPath, "-stop-after", goldenCkptEvent)
		if err := run(args, &sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "stopping") {
			t.Fatalf("golden run did not reach the checkpoint cutoff:\n%s", sb.String())
		}
		t.Logf("golden checkpoint updated: %s", ckptPath)
		return
	}

	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("missing golden checkpoint (run with -update): %v", err)
	}
	tailPath := filepath.Join(t.TempDir(), "tail.jsonl")
	var sb strings.Builder
	args := append(traceArgs(tailPath), "-resume", ckptPath)
	if err := run(args, &sb); err != nil {
		t.Fatalf("resume from committed checkpoint failed: %v", err)
	}

	raw, err := os.ReadFile(tailPath)
	if err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	if err := obs.Canonicalize(bytes.NewReader(raw), &tail); err != nil {
		t.Fatal(err)
	}
	tailLines := bytes.Split(bytes.TrimRight(tail.Bytes(), "\n"), []byte("\n"))
	if len(tailLines) == 0 || len(tailLines[0]) == 0 {
		t.Fatal("resumed run emitted no trace events")
	}

	// The tail's first event carries the logical clock it resumed at;
	// the golden trace's line at that index must start the identical
	// suffix.
	var head struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(tailLines[0], &head); err != nil {
		t.Fatalf("first tail line is not a trace event: %v\n%s", err, tailLines[0])
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatalf("missing golden trace (run with -update): %v", err)
	}
	goldenLines := bytes.Split(bytes.TrimRight(golden, "\n"), []byte("\n"))
	if int(head.Seq) >= len(goldenLines) {
		t.Fatalf("tail starts at seq %d but golden trace has only %d lines", head.Seq, len(goldenLines))
	}
	wantTail := goldenLines[head.Seq:]
	if len(tailLines) != len(wantTail) {
		t.Fatalf("resumed tail has %d events, golden tail has %d", len(tailLines), len(wantTail))
	}
	for i := range tailLines {
		if !bytes.Equal(tailLines[i], wantTail[i]) {
			t.Fatalf("resumed trace diverges from golden at seq %d:\ngot:  %s\nwant: %s",
				head.Seq+uint64(i), tailLines[i], wantTail[i])
		}
	}
}

// TestCheckpointVersionRejected corrupts the committed fixture's format
// version and confirms the CLI refuses it with a one-line error rather
// than restoring garbage.
func TestCheckpointVersionRejected(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_ckpt.json"))
	if err != nil {
		t.Skipf("no golden checkpoint yet: %v", err)
	}
	bad := bytes.Replace(raw, []byte(`"version":1`), []byte(`"version":99`), 1)
	if bytes.Equal(bad, raw) {
		t.Fatal("could not find the version field to corrupt")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = run(append(traceArgs(filepath.Join(t.TempDir(), "t.jsonl")), "-resume", badPath), &sb)
	if err == nil {
		t.Fatal("resume accepted a checkpoint with an unknown format version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("error does not mention the version: %v", err)
	}
}
