package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable2(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "table2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "25 fast + 75 slow = 100 nodes") {
		t.Errorf("table2 output wrong:\n%s", sb.String())
	}
}

func TestRunFig2(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig2", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "4574") {
		t.Errorf("fig2 output wrong:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-run", "fig99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunFig3CSV runs the full week comparison once; it is the package's
// heavyweight integration test (~5 s).
func TestRunFig3CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full week comparison skipped in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig3", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3_hourly_active_servers.csv"))
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(data), "\n", 2)[0]
	if head != "hour,first-fit,best-fit,dynamic" {
		t.Errorf("csv header = %q", head)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 169 { // header + 168 hours
		t.Errorf("csv rows = %d, want 169", lines)
	}
}

// TestRunFig3Obs checks the -obs fan-out: every scheme of the parallel
// comparison must get its own non-empty trace and metrics file, and the
// per-run metrics must be isolated (each trace carries exactly one
// run_start, for its own scheme).
func TestRunFig3Obs(t *testing.T) {
	if testing.Short() {
		t.Skip("full week comparison skipped in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig3", "-obs", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"first-fit", "best-fit", "dynamic"} {
		trace, err := os.ReadFile(filepath.Join(dir, scheme+".trace.jsonl"))
		if err != nil {
			t.Fatalf("%s trace missing: %v", scheme, err)
		}
		if n := strings.Count(string(trace), `"event":"run_start"`); n != 1 {
			t.Errorf("%s trace has %d run_start events, want 1 (runs not isolated?)", scheme, n)
		}
		if !strings.Contains(string(trace), `"scheme":"`+scheme+`"`) {
			t.Errorf("%s trace does not name its own scheme", scheme)
		}
		metr, err := os.ReadFile(filepath.Join(dir, scheme+".metrics.json"))
		if err != nil {
			t.Fatalf("%s metrics missing: %v", scheme, err)
		}
		if !strings.Contains(string(metr), "sim.arrivals") {
			t.Errorf("%s metrics missing sim.arrivals:\n%s", scheme, metr)
		}
	}
	if !strings.Contains(sb.String(), "obs: ") {
		t.Errorf("stdout missing obs file listing:\n%s", sb.String())
	}
}

func TestRunFig5SVG(t *testing.T) {
	if testing.Short() {
		t.Skip("full week comparison skipped in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-run", "fig5", "-out", dir}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5_daily_power.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "polyline") {
		t.Error("svg output malformed")
	}
	if _, err := os.ReadFile(filepath.Join(dir, "results.json")); err != nil {
		t.Errorf("results.json missing: %v", err)
	}
}
