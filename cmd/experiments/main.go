// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V), plus the ablation studies catalogued in
// DESIGN.md.
//
// Usage:
//
//	experiments [-run all|table2|fig2|fig3|fig4|fig5|ablation] [-seed 1] [-out DIR]
//	            [-obs DIR]
//
// Text renderings go to stdout; with -out, each figure's data is also
// written as CSV for plotting. With -obs, every scheme in the week
// comparison gets its own observability sink: DIR/<scheme>.trace.jsonl
// (the structured run trace, see cmd/tracestat) and
// DIR/<scheme>.metrics.json (counters, histograms, phase timings). Each
// run gets a private sink even though schemes execute in parallel. The
// reproduced numbers are recorded in EXPERIMENTS.md alongside the
// paper's.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which  = fs.String("run", "all", "experiment: all, table2, fig2, fig3, fig4, fig5, ablation, seeds, google")
		seed   = fs.Int64("seed", 1, "workload seed")
		seeds  = fs.Int("seeds", 5, "seed count for -run seeds")
		outDir = fs.String("out", "", "directory for CSV output (optional)")
		obsDir = fs.String("obs", "", "directory for per-scheme trace + metrics output of the week comparison (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	wantsComparison := false
	switch *which {
	case "all", "fig3", "fig4", "fig5":
		wantsComparison = true
	case "table2", "fig2", "ablation", "seeds", "google":
	default:
		return fmt.Errorf("unknown experiment %q", *which)
	}

	if *which == "all" || *which == "table2" {
		fmt.Fprintln(out, "=== E-T2: Table II ===")
		fmt.Fprintln(out, exp.Table2Report())
	}
	if *which == "all" || *which == "fig2" {
		fmt.Fprintln(out, "=== E-F2: Figure 2 ===")
		fmt.Fprintln(out, exp.Fig2Report(*seed))
	}

	var runs []*exp.SchemeRun
	if wantsComparison {
		opts := exp.DefaultOptions(*seed)
		var sinks *obsSinks
		if *obsDir != "" {
			var err error
			if sinks, err = newObsSinks(*obsDir); err != nil {
				return err
			}
			opts.Observe = sinks.observer
		}
		fmt.Fprintf(out, "running week comparison (seed %d, schemes in parallel) ... ", *seed)
		start := time.Now()
		var err error
		runs, err = exp.ParallelComparison(opts)
		if err != nil {
			if sinks != nil {
				sinks.finish(nil, io.Discard)
			}
			return err
		}
		fmt.Fprintf(out, "done in %s\n\n", time.Since(start).Round(time.Millisecond))
		if sinks != nil {
			if err := sinks.finish(runs, out); err != nil {
				return err
			}
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, "results.json")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := exp.WriteJSON(f, runs); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(out, "json: %s\n\n", path)
		}
	}

	emit := func(name string, table *metrics.Table, title, ylabel string) error {
		fmt.Fprintf(out, "=== %s ===\n", name)
		if *outDir == "" {
			return nil
		}
		csvPath := filepath.Join(*outDir, name+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := table.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		svgPath := filepath.Join(*outDir, name+".svg")
		g, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		chart := &plot.Chart{Title: title, XLabel: table.TimeLabel, YLabel: ylabel, Series: table.Series}
		if err := chart.WriteSVG(g); err != nil {
			g.Close()
			return err
		}
		if err := g.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "csv: %s   svg: %s\n", csvPath, svgPath)
		return nil
	}

	if runs != nil {
		if *which == "all" || *which == "fig3" {
			if err := emit("fig3_hourly_active_servers", exp.Fig3Table(runs),
				"Figure 3: hourly active servers (week)", "active PMs"); err != nil {
				return err
			}
			for _, r := range runs {
				s := exp.Fig3Table([]*exp.SchemeRun{r}).Series[0]
				fmt.Fprintf(out, "%-10s mean=%.1f peak=%.0f  %s\n", r.Scheme, s.Mean(), s.Max(), s.Downsample(4).Sparkline())
			}
			fmt.Fprintln(out)
		}
		if *which == "all" || *which == "fig4" {
			if err := emit("fig4_hourly_power", exp.Fig4Table(runs),
				"Figure 4: hourly power consumption (week)", "kWh per hour"); err != nil {
				return err
			}
			for _, r := range runs {
				fmt.Fprintf(out, "%-10s week energy = %.1f kWh (mean %.2f kW)\n",
					r.Scheme, r.WeekEnergyKWh, r.WeekEnergyKWh/exp.WeekHours)
			}
			fmt.Fprintln(out)
		}
		if *which == "all" || *which == "fig5" {
			if err := emit("fig5_daily_power", exp.Fig5Table(runs),
				"Figure 5: daily power consumption", "kWh per day"); err != nil {
				return err
			}
			if err := exp.Fig5Table(runs).WriteText(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		if *which == "all" {
			fmt.Fprintln(out, "=== headline comparison (figure window) ===")
			if err := metrics.WriteSummaries(out, exp.SummaryRows(runs)); err != nil {
				return err
			}
			fmt.Fprintln(out)
			fmt.Fprint(out, exp.SavingsReport(runs))
			fmt.Fprintln(out)

			fmt.Fprintln(out, "=== QoS cross-check (Erlang-C capacity model) ===")
			_, reqs := exp.WeekTrace(*seed)
			for _, r := range runs {
				if r.Scheme == "dynamic" {
					fmt.Fprint(out, exp.AnalyzeQoS(r, reqs, nil).String())
				}
			}
			fmt.Fprintln(out)
		}
	}

	if *which == "all" || *which == "ablation" {
		opts := exp.DefaultOptions(*seed)

		fmt.Fprintln(out, "=== E-A1a: factor ablation ===")
		fruns, err := exp.AblateFactors(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("drop one probability factor at a time:", fruns))
		fmt.Fprintln(out)

		fmt.Fprintln(out, "=== E-A1b: MIG_threshold sweep ===")
		truns, err := exp.AblateThreshold(opts, []float64{1.01, 1.05, 1.2, 1.5, 2})
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("migration aggressiveness (paper: 1.05):", truns))
		fmt.Fprintln(out)

		fmt.Fprintln(out, "=== E-A1c: MIG_round sweep ===")
		rruns, err := exp.AblateRounds(opts, []int{1, 3, 10, 30})
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("migration budget per pass (paper: no explicit value, default 10):", rruns))
		fmt.Fprintln(out)

		fmt.Fprintln(out, "=== E-A1d: spare-server alpha sweep ===")
		aruns, err := exp.AblateSpareAlpha(opts, []float64{0.01, 0.05, 0.2})
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("QoS tail bound (paper: 0.05):", aruns))
		fmt.Fprintln(out)

		fmt.Fprintln(out, "=== E-A1e: extended baseline comparison ===")
		extOpts := opts
		extOpts.Schemes = []string{"first-fit", "best-fit", "worst-fit", "random", "threshold", "dynamic"}
		eruns, err := exp.ParallelComparison(extOpts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("all implemented schemes (threshold = watermark baseline a la [21]):", eruns))
		fmt.Fprintln(out)

		fmt.Fprintln(out, "=== E-A1f: migration model (instant vs timed pre-copy) ===")
		mruns, err := exp.AblateMigrationModel(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("instant (paper's model) vs timed double-occupancy migration:", mruns))
		fmt.Fprintln(out)

		fmt.Fprintln(out, "=== E-A1g: offline packing oracle (FFD floor) ===")
		_, reqs := exp.WeekTrace(*seed)
		oracle := exp.OracleSeries(reqs, nil)
		oruns, err := exp.ParallelComparison(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.OracleReport(oruns, oracle))
	}

	if *which == "google" {
		fmt.Fprintln(out, "=== E-R2: generality on a Google-like cloud workload ===")
		gruns, err := exp.GeneralityStudy(exp.DefaultOptions(*seed))
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.AblationReport("short-task cloud trace (see EXPERIMENTS.md for the T-mismatch analysis):", gruns))
	}

	if *which == "seeds" {
		fmt.Fprintf(out, "=== E-R1: robustness across %d workload seeds ===\n", *seeds)
		start := time.Now()
		studies, err := exp.RobustnessStudy(*seeds, exp.DefaultOptions(*seed))
		if err != nil {
			return err
		}
		fmt.Fprint(out, exp.RobustnessReport(studies))
		fmt.Fprintf(out, "(%s)\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// obsSinks hands each comparison run a private Observer whose trace
// streams to DIR/<scheme>.trace.jsonl. The harness runs schemes in
// parallel, so observer() must be safe for concurrent calls and every
// run must get its own registry — a shared one would pool counters
// across schemes.
type obsSinks struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File
	bufs  map[string]*bufio.Writer
	err   error
}

func newObsSinks(dir string) (*obsSinks, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &obsSinks{dir: dir, files: map[string]*os.File{}, bufs: map[string]*bufio.Writer{}}, nil
}

func (s *obsSinks) observer(scheme string) *obs.Observer {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.Create(filepath.Join(s.dir, scheme+".trace.jsonl"))
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return obs.New() // metrics-only fallback; the failure surfaces in finish
	}
	w := bufio.NewWriterSize(f, 1<<16)
	s.files[scheme] = f
	s.bufs[scheme] = w
	return obs.NewTracing(w)
}

// finish flushes and closes every trace and writes each run's metrics
// registry next to it. Call after the comparison completes (runs may be
// nil on error — files still get closed).
func (s *obsSinks) finish(runs []*exp.SchemeRun, out io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.err
	for scheme, w := range s.bufs {
		if ferr := w.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if cerr := s.files[scheme].Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, r := range runs {
		if r.Obs == nil || r.Obs.Reg == nil {
			continue
		}
		if terr := r.Obs.Trace.Err(); terr != nil && err == nil {
			err = terr
		}
		path := filepath.Join(s.dir, r.Scheme+".metrics.json")
		f, ferr := os.Create(path)
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			continue
		}
		if werr := r.Obs.Reg.WriteJSON(f); werr != nil && err == nil {
			err = werr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		fmt.Fprintf(out, "obs: %-10s trace=%s metrics=%s\n",
			r.Scheme, filepath.Join(s.dir, r.Scheme+".trace.jsonl"), path)
	}
	if err == nil && runs != nil {
		fmt.Fprintln(out)
	}
	return err
}
