// Failure study: PMs fail under an exponential clock, their VMs are
// re-placed as fresh requests (Section III.C), and each failure decays the
// machine's reliability probability so the p_rel factor steers future
// placements away from flaky hardware (Section III.B.3).
//
//	go run ./examples/failure
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cluster"
	"repro/internal/failure"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	gen := workload.DefaultWeekConfig(3)
	gen.DailyJobs = []int{200, 200, 200}
	jobs := workload.Filter(workload.MustGenerate(gen), workload.DefaultFilter())
	requests := workload.ToRequests(jobs)

	dc := cluster.TableIIFleetScaled(20)
	res, err := sim.Run(sim.Config{
		DC:       dc,
		Placer:   policy.NewDynamic(),
		Requests: requests,
		Failures: failure.Config{
			MTBF:             36 * 3600, // each powered-on PM fails ~1.5x/day on average
			RepairTime:       1800,
			ReliabilityDecay: 0.85,
			MinReliability:   0.3,
			Seed:             5,
		},
		CheckInvariants: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d requests over 3 days; fleet: 20 nodes; failures injected: %d\n\n",
		len(requests), res.Failures)
	fmt.Printf("all %d VMs completed despite failures (rejected: %d)\n",
		res.Summary.VMsCompleted, res.Summary.Rejected)
	fmt.Printf("migrations: %d, boots: %d, queued: %.2f%%\n\n",
		res.Summary.Migrations, res.Summary.Boots, res.Summary.QueuedFraction*100)

	fmt.Println("per-PM failure history and resulting reliability (failed PMs only):")
	pms := dc.PMs()
	sort.SliceStable(pms, func(i, j int) bool { return pms[i].Failures > pms[j].Failures })
	for _, pm := range pms {
		if pm.Failures == 0 {
			continue
		}
		fmt.Printf("  PM%-3d (%s): %d failures -> p_rel %.3f (started at %.2f)\n",
			pm.ID, pm.Class.Name, pm.Failures, pm.Reliability, pm.Class.Reliability)
	}
	fmt.Println("\nthe decayed p_rel lowers every joint probability on those machines, so the")
	fmt.Println("dynamic scheme places and consolidates onto the reliable part of the fleet first.")
}
