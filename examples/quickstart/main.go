// Quickstart: simulate the paper's dynamic VM placement scheme on a small
// data center and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// 1. A data center: 4 fast + 8 slow nodes (Table II classes).
	fast, slow := cluster.FastClass, cluster.SlowClass
	dc := cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 4},
			{Class: &slow, Count: 8},
		},
	})

	// 2. A workload: two days of synthetic jobs, filtered and split into
	// single-core VM requests as in Section V.A of the paper.
	gen := workload.DefaultWeekConfig(42)
	gen.DailyJobs = []int{120, 160}
	jobs := workload.Filter(workload.MustGenerate(gen), workload.DefaultFilter())
	requests := workload.ToRequests(jobs)
	fmt.Printf("workload: %d jobs -> %d single-core VM requests\n\n", len(jobs), len(requests))

	// 3. Run the dynamic probability-matrix scheme.
	result, err := sim.Run(sim.Config{
		DC:       dc,
		Placer:   policy.NewDynamic(),
		Requests: requests,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the outcome.
	if err := metrics.WriteSummaries(os.Stdout, []metrics.Summary{result.Summary}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst migrations executed by Algorithm 1:\n")
	for i, mv := range result.Moves {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(result.Moves)-5)
			break
		}
		fmt.Printf("  round %d: VM%d moved PM%d -> PM%d (normalized gain %.3f)\n",
			mv.Round, mv.VM, mv.From, mv.To, mv.Gain)
	}
	fmt.Printf("\nhourly active servers: %v\n", result.ActivePMs.Values)
}
