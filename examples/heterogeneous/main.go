// Heterogeneous-fleet study: how the placement schemes distribute load and
// energy across PM classes with very different power efficiency — the
// setting the paper's relative power-efficiency parameter eff_j targets
// (Section III.B.4).
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/vector"
	"repro/internal/workload"
)

func main() {
	// Three classes: the Table II pair plus a power-hungry legacy node
	// whose per-VM power is 3x the fast node's (eff_j = 1/3).
	fast, slow := cluster.FastClass, cluster.SlowClass
	legacy := cluster.PMClass{
		Name:          "legacy",
		Capacity:      vector.New(4, 4),
		CreationTime:  60,
		MigrationTime: 60,
		OnOffOverhead: 90,
		ActivePower:   600,
		IdlePower:     400,
		Reliability:   0.95,
	}
	fleet := func() *cluster.Datacenter {
		f, s, l := fast, slow, legacy
		return cluster.MustNew(cluster.Config{
			RMin: cluster.TableIIRMin.Clone(),
			Groups: []cluster.Group{
				{Class: &f, Count: 4},
				{Class: &s, Count: 8},
				{Class: &l, Count: 8},
			},
		})
	}

	gen := workload.DefaultWeekConfig(7)
	gen.DailyJobs = []int{250, 300, 250}
	jobs := workload.Filter(workload.MustGenerate(gen), workload.DefaultFilter())
	requests := workload.ToRequests(jobs)
	fmt.Printf("workload: %d requests over %d days, fleet: 4 fast + 8 slow + 8 legacy\n\n",
		len(requests), len(gen.DailyJobs))

	var rows []metrics.Summary
	for _, name := range []string{"first-fit", "best-fit", "dynamic"} {
		placer, err := policy.ByName(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{DC: fleet(), Placer: placer, Requests: requests})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, res.Summary)
		fmt.Printf("%-10s energy split: fast %.1f, slow %.1f, legacy %.1f kWh\n",
			name, res.EnergyByClassKWh["fast"], res.EnergyByClassKWh["slow"], res.EnergyByClassKWh["legacy"])
	}
	fmt.Println()
	if err := metrics.WriteSummaries(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe dynamic scheme's eff_j factor steers VMs away from the legacy class,")
	fmt.Println("so its legacy-node energy share should be the smallest of the three schemes.")
}
