// Multi-region electricity-price study: the extension the paper sketches
// as future work ("the dynamic behavior of electricity price will be
// formulated as an important factor in the dynamic VM migration process").
//
// Two half-fleets sit in regions with a 3x electricity price gap. The
// price-aware dynamic scheme appends core.PriceFactor to the default
// factor set — no other changes — and the consolidation algorithm then
// migrates load into the cheap region, cutting the electricity bill even
// when raw energy is similar.
//
//	go run ./examples/multiregion
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func fleet() *cluster.Datacenter {
	fast, slow := cluster.FastClass, cluster.SlowClass
	// PMs 0-9 will be "east" (cheap), PMs 10-19 "west" (expensive).
	return cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 3}, {Class: &slow, Count: 7},
			{Class: &fast, Count: 3}, {Class: &slow, Count: 7},
		},
	})
}

func priceFactor() *core.PriceFactor {
	pf := core.NewPriceFactor([]string{"east", "west"}, "east",
		core.FlatPrices(map[string]float64{"east": 0.08, "west": 0.24})) // $/kWh
	for id := cluster.PMID(10); id < 20; id++ {
		pf.Assign(id, "west")
	}
	return pf
}

func main() {
	gen := workload.DefaultWeekConfig(13)
	gen.DailyJobs = []int{220, 260, 220}
	jobs := workload.Filter(workload.MustGenerate(gen), workload.DefaultFilter())
	requests := workload.ToRequests(jobs)
	fmt.Printf("workload: %d requests over 3 days; fleet: 10 nodes east ($0.08/kWh) + 10 west ($0.24/kWh)\n\n",
		len(requests))

	schemes := []struct {
		name   string
		placer policy.Placer
	}{
		{"dynamic", policy.NewDynamic()},
		{"dynamic+price", policy.NewDynamicVariant("dynamic+price",
			append(core.DefaultFactors(), priceFactor()), core.DefaultParams())},
	}

	for _, s := range schemes {
		pf := priceFactor() // fresh region map for billing below
		res, err := sim.Run(sim.Config{DC: fleet(), Placer: s.placer, Requests: requests})
		if err != nil {
			log.Fatal(err)
		}
		// Bill each PM's energy at its region's tariff.
		var east, west, bill float64
		for id, kwh := range res.PMEnergyKWh {
			region := pf.Region(id)
			price := map[string]float64{"east": 0.08, "west": 0.24}[region]
			bill += kwh * price
			if region == "east" {
				east += kwh
			} else {
				west += kwh
			}
		}
		fmt.Printf("%-14s energy east=%.1f kWh west=%.1f kWh  electricity bill=$%.2f  migrations=%d\n",
			s.name, east, west, bill, res.Summary.Migrations)
	}
	fmt.Println("\nappending the price factor shifts the energy share into the cheap region and")
	fmt.Println("lowers the bill — the joint-probability design extends exactly as the paper claims.")
}
