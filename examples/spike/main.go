// Workload-spike study: the spare-server controller of Section IV learns
// the arrival pattern with the Leemis NHPP estimator and pre-boots
// capacity before the daily peak, keeping queueing under the 5% QoS bound
// where the bare scheme queues heavily.
//
//	go run ./examples/spike
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
	"repro/internal/stats"
	"repro/internal/workload"
)

// spikyTrace builds three days of strongly diurnal arrivals: a quiet night
// and an intense midday burst, with day 3 the spike the controller must
// anticipate from days 1-2.
func spikyTrace(seed int64) []workload.Request {
	r := stats.NewRand(seed)
	var jobs []workload.Job
	id := 0
	for day := 0; day < 3; day++ {
		n := 260
		if day == 2 {
			n = 420 // the spike
		}
		for i := 0; i < n; i++ {
			// Concentrate 80% of arrivals in a 6-hour midday window.
			var at float64
			if r.Float64() < 0.8 {
				at = 10*3600 + r.Float64()*6*3600
			} else {
				at = r.Float64() * 86400
			}
			id++
			run := math.Round(stats.LogNormalFromMedian(r, 2400, 1.2))
			jobs = append(jobs, workload.Job{
				ID: id, Submit: float64(day)*86400 + at,
				RunTime: run, EstimatedRunTime: run,
				Cores: 1, MemoryGB: 0.5, Status: workload.StatusCompleted,
			})
		}
	}
	workload.SortBySubmit(jobs)
	return workload.ToRequests(jobs)
}

func main() {
	requests := spikyTrace(11)
	fleet := func() *cluster.Datacenter { return cluster.TableIIFleetScaled(24) }
	fmt.Printf("workload: %d requests over 3 days with a midday spike; fleet: 24 nodes\n\n", len(requests))

	bare, err := sim.Run(sim.Config{DC: fleet(), Placer: policy.NewDynamic(), Requests: requests})
	if err != nil {
		log.Fatal(err)
	}
	sc := spare.DefaultConfig()
	spared, err := sim.Run(sim.Config{DC: fleet(), Placer: policy.NewDynamic(), Requests: requests, Spare: &sc})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "no spares", "with spares")
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "requests queued",
		bare.Summary.QueuedFraction*100, spared.Summary.QueuedFraction*100)
	fmt.Printf("%-22s %11.1fs %11.1fs\n", "mean wait",
		bare.Summary.MeanWaitSeconds, spared.Summary.MeanWaitSeconds)
	fmt.Printf("%-22s %12.1f %12.1f\n", "energy (kWh)",
		bare.Summary.TotalEnergyKWh, spared.Summary.TotalEnergyKWh)
	fmt.Printf("%-22s %12.1f %12.1f\n", "mean active PMs",
		bare.Summary.MeanActivePMs, spared.Summary.MeanActivePMs)

	fmt.Println("\nspare plans around the day-3 spike (hours 48-72):")
	for _, p := range spared.SparePlans {
		h := int(p.At / 3600)
		if h >= 48 && h < 72 && h%2 == 0 {
			fmt.Printf("  hour %2d: E[arrivals]=%6.1f -> n_arrival=%3d, n_departure=%3d, N_ave=%.1f, spares=%d\n",
				h, p.ExpectedArrivals, p.NArrival, p.NDeparture, p.NAve, p.Spares)
		}
	}
	fmt.Println("\nthe controller holds spares before/through the midday burst and releases")
	fmt.Println("them at night — the paper's \"capable of dealing with workload spike\" claim.")
}
