// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (Section V). Each benchmark is named for the artifact
// it reproduces — see DESIGN.md's per-experiment index — and reports, via
// b.ReportMetric, the headline quantities to compare against the paper
// (and against EXPERIMENTS.md, which records a reference run).
//
// Run them with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/stats"
	"repro/internal/vector"
	"repro/internal/workload"
)

// BenchmarkTable2Fleet builds the Table II data center (E-T2). The
// interesting output is correctness (asserted) rather than speed; the
// metric reports fleet watts at full load.
func BenchmarkTable2Fleet(b *testing.B) {
	var fullLoadW float64
	for i := 0; i < b.N; i++ {
		dc := cluster.TableIIFleet()
		if dc.Size() != 100 {
			b.Fatalf("fleet size = %d", dc.Size())
		}
		fullLoadW = 0
		for _, pm := range dc.PMs() {
			fullLoadW += pm.Class.ActivePower
		}
	}
	b.ReportMetric(fullLoadW, "fleet-active-W") // 25*400 + 75*300 = 32500
}

// BenchmarkFig2Workload generates and summarizes the week trace (E-F2).
func BenchmarkFig2Workload(b *testing.B) {
	var s workload.Stats
	for i := 0; i < b.N; i++ {
		jobs, _ := exp.WeekTrace(1)
		s = workload.Summarize(jobs)
	}
	b.ReportMetric(float64(s.TotalJobs), "jobs")                // paper: 4574
	b.ReportMetric(float64(s.PeakDayRequests), "peak-day-reqs") // paper: 982 jobs/day
	b.ReportMetric(s.UnderOneGB*100, "pct-under-1GB")           // paper: "most"
	b.ReportMetric(float64(s.UnderOneDay), "jobs-under-1day")   // paper: 2077 (see EXPERIMENTS.md)
}

// comparison caches the expensive three-scheme week run across the Fig 3-5
// benchmarks within one `go test -bench` process.
var comparisonCache []*exp.SchemeRun

func weekComparison(b *testing.B) []*exp.SchemeRun {
	b.Helper()
	if comparisonCache == nil {
		runs, err := exp.Comparison(exp.DefaultOptions(1))
		if err != nil {
			b.Fatal(err)
		}
		comparisonCache = runs
	}
	return comparisonCache
}

func findRun(b *testing.B, runs []*exp.SchemeRun, scheme string) *exp.SchemeRun {
	b.Helper()
	for _, r := range runs {
		if r.Scheme == scheme {
			return r
		}
	}
	b.Fatalf("scheme %s missing", scheme)
	return nil
}

// BenchmarkFig3ActiveServers reproduces Figure 3 (E-F3): hourly active
// servers per scheme. The reported metrics are the week-mean active-server
// counts; the paper's claim is dynamic < both baselines.
func BenchmarkFig3ActiveServers(b *testing.B) {
	var runs []*exp.SchemeRun
	for i := 0; i < b.N; i++ {
		comparisonCache = nil
		runs = weekComparison(b)
	}
	t := exp.Fig3Table(runs)
	for _, s := range t.Series {
		b.ReportMetric(s.Mean(), "meanPMs-"+s.Name)
	}
	dyn := findRun(b, runs, "dynamic")
	ff := findRun(b, runs, "first-fit")
	bf := findRun(b, runs, "best-fit")
	dynMean := exp.Fig3Table([]*exp.SchemeRun{dyn}).Series[0].Mean()
	if dynMean >= exp.Fig3Table([]*exp.SchemeRun{ff}).Series[0].Mean() ||
		dynMean >= exp.Fig3Table([]*exp.SchemeRun{bf}).Series[0].Mean() {
		b.Errorf("figure 3 shape violated: dynamic does not use fewest servers")
	}
}

// BenchmarkFig4HourlyPower reproduces Figure 4 (E-F4): hourly power over
// the week; metrics are total week energy per scheme in kWh.
func BenchmarkFig4HourlyPower(b *testing.B) {
	var runs []*exp.SchemeRun
	for i := 0; i < b.N; i++ {
		runs = weekComparison(b)
	}
	for _, r := range runs {
		b.ReportMetric(r.WeekEnergyKWh, "weekKWh-"+r.Scheme)
	}
	dyn := findRun(b, runs, "dynamic")
	for _, base := range []string{"first-fit", "best-fit"} {
		if dyn.WeekEnergyKWh >= findRun(b, runs, base).WeekEnergyKWh {
			b.Errorf("figure 4 shape violated: dynamic not cheaper than %s", base)
		}
	}
}

// BenchmarkFig5DailyPower reproduces Figure 5 (E-F5): daily energy;
// metrics are the peak-day energies. The paper's shape — dynamic lowest on
// every day — is asserted for the majority of days (day-level noise is
// expected at this fleet size).
func BenchmarkFig5DailyPower(b *testing.B) {
	var runs []*exp.SchemeRun
	for i := 0; i < b.N; i++ {
		runs = weekComparison(b)
	}
	t := exp.Fig5Table(runs)
	for _, s := range t.Series {
		b.ReportMetric(s.Max(), "peakDayKWh-"+s.Name)
	}
	var dynSer, ffSer = t.Series[2], t.Series[0]
	if len(t.Series) != 3 {
		b.Fatal("expected 3 schemes")
	}
	wins := 0
	for d := 0; d < dynSer.Len(); d++ {
		if dynSer.At(d) <= ffSer.At(d) {
			wins++
		}
	}
	if wins*2 < dynSer.Len() {
		b.Errorf("figure 5 shape violated: dynamic cheaper on only %d/%d days", wins, dynSer.Len())
	}
}

// BenchmarkQoSBound verifies the Section IV claim wired into the spare
// controller: under the paper's alpha = 0.05, fewer than 5% of requests
// queue. Reported as a metric for EXPERIMENTS.md.
func BenchmarkQoSBound(b *testing.B) {
	var runs []*exp.SchemeRun
	for i := 0; i < b.N; i++ {
		runs = weekComparison(b)
	}
	dyn := findRun(b, runs, "dynamic")
	b.ReportMetric(dyn.Summary.QueuedFraction*100, "queued-pct")
	if dyn.Summary.QueuedFraction >= 0.05 {
		b.Errorf("QoS bound violated: %.2f%% of requests queued", dyn.Summary.QueuedFraction*100)
	}
}

// BenchmarkAblationFactors runs the factor ablation (E-A1): the dynamic
// scheme with each probability factor removed in turn.
func BenchmarkAblationFactors(b *testing.B) {
	opts := exp.DefaultOptions(1)
	var runs []*exp.SchemeRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = exp.AblateFactors(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range runs {
		b.ReportMetric(r.WeekEnergyKWh, "weekKWh-"+r.Scheme)
	}
}

// BenchmarkAblationThreshold sweeps MIG_threshold (E-A1).
func BenchmarkAblationThreshold(b *testing.B) {
	opts := exp.DefaultOptions(1)
	var runs []*exp.SchemeRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = exp.AblateThreshold(opts, []float64{1.01, 1.05, 1.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range runs {
		b.ReportMetric(float64(r.Summary.Migrations), "migrations-"+r.Scheme)
	}
}

// BenchmarkDatacenterScaling sweeps fleet size with the dynamic scheme to
// expose the simulator's scaling behaviour (not a paper artifact; an
// engineering bench).
func BenchmarkDatacenterScaling(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		b.Run(fleetName(n), func(b *testing.B) {
			_, reqs := exp.WeekTrace(1)
			// Thin the workload proportionally to fleet size so the
			// offered load per node stays comparable across runs.
			sub := thin(reqs, n, 100)
			opts := exp.DefaultOptions(1)
			opts.Fleet = func() *cluster.Datacenter { return cluster.TableIIFleetScaled(n) }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exp.RunScheme("dynamic", sub, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlacementKernel exercises the factored evaluation kernel
// (DESIGN.md section 7) through the exported core API on a deterministic
// mid-simulation snapshot: matrix construction, a full bounded
// consolidation pass (Algorithm 1), and single-VM arrival placement.
// Finer-grained kernel-vs-generic comparisons live in internal/core's
// Kernel* benchmarks; the pre-kernel baseline is measured by
// cmd/benchreport (not a paper artifact; an engineering bench).
func BenchmarkPlacementKernel(b *testing.B) {
	factors := core.DefaultFactors()
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("build/pms%d", n), func(b *testing.B) {
			ctx, vms := kernelBenchState(n, 2*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewMatrixWith(ctx, factors, vms, core.MatrixOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("consolidate/pms%d", n), func(b *testing.B) {
			// A first-fit snapshot is already packed tight, so Algorithm 1
			// finds nothing to do; scatter the VMs round-robin instead so
			// the pass executes real migration rounds.
			params := core.DefaultParams()
			var moves int
			for i := 0; i < b.N; i++ {
				b.StopTimer() // consolidation migrates VMs; rebuild the state
				ctx, _ := scatteredBenchState(n, 2*n)
				b.StartTimer()
				mv, err := core.Consolidate(ctx, factors, params)
				if err != nil {
					b.Fatal(err)
				}
				moves = len(mv)
			}
			b.ReportMetric(float64(moves), "moves")
		})
		b.Run(fmt.Sprintf("arrival/pms%d", n), func(b *testing.B) {
			ctx, _ := kernelBenchState(n, 2*n)
			arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if core.BestPlacement(ctx, factors, arrival) == nil {
					b.Fatal("no placement found")
				}
			}
		})
	}
}

// kernelBenchState builds the same deterministic snapshot cmd/benchreport
// measures: a scaled Table II fleet, all PMs on, varied demand shapes and
// runtimes placed first-fit, clock at two hours.
func kernelBenchState(pmCount, nVMs int) (*core.Context, []*cluster.VM) {
	return placedBenchState(pmCount, nVMs, false)
}

// scatteredBenchState spreads the VMs round-robin across the fleet,
// leaving every PM lightly loaded — the shape Algorithm 1 consolidates.
func scatteredBenchState(pmCount, nVMs int) (*core.Context, []*cluster.VM) {
	return placedBenchState(pmCount, nVMs, true)
}

func placedBenchState(pmCount, nVMs int, scatter bool) (*core.Context, []*cluster.VM) {
	dc := cluster.TableIIFleetScaled(pmCount)
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	rng := stats.NewRand(7)
	mems := []float64{0.25, 0.5, 1, 2}
	var vms []*cluster.VM
	for id := 1; id <= nVMs; id++ {
		demand := vector.New(float64(1+rng.Intn(2)), mems[rng.Intn(len(mems))])
		est := float64(600 + rng.Intn(86400))
		vm := cluster.NewVM(cluster.VMID(id), demand, est, est, 0)
		pms := dc.PMs()
		start := 0
		if scatter {
			start = id % len(pms)
		}
		placed := false
		for i := range pms {
			pm := pms[(start+i)%len(pms)]
			if pm.CanHost(vm.Demand) {
				if err := pm.Host(vm); err != nil {
					panic(err)
				}
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		vm.State = cluster.VMRunning
		vm.StartTime = float64(rng.Intn(7000))
		vms = append(vms, vm)
	}
	return core.NewContext(dc).At(7200), vms
}

// thin keeps num out of every den requests, evenly spread over the trace
// (Bresenham-style), preserving submit-time order.
func thin(reqs []workload.Request, num, den int) []workload.Request {
	if num >= den {
		return reqs
	}
	out := make([]workload.Request, 0, len(reqs)*num/den+1)
	acc := 0
	for _, r := range reqs {
		acc += num
		if acc >= den {
			acc -= den
			out = append(out, r)
		}
	}
	return out
}

func fleetName(n int) string {
	switch n {
	case 25:
		return "nodes25"
	case 50:
		return "nodes50"
	case 100:
		return "nodes100"
	default:
		return "nodes200"
	}
}
