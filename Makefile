GO ?= go
COUNT ?= 10
BENCHTIME ?= 300ms

.PHONY: test check vet race bench-kernel bench-paper bench-json

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

## check: the full pre-commit gate — vet plus the race-enabled test suite.
check: vet race

## bench-kernel: benchstat-friendly kernel micro-benchmarks (kernel vs the
## generic Factor path). Pipe to a file and compare runs with
## `benchstat old.txt new.txt`; COUNT=10 gives benchstat enough samples.
bench-kernel:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'Kernel[A-Za-z]*/(kernel|generic)/pms(100|1000)$$' \
		-benchtime $(BENCHTIME) -count $(COUNT)

## bench-paper: one benchmark per paper table/figure (root bench_test.go).
bench-paper:
	$(GO) test . -run '^$$' -bench . -benchmem

## bench-json: regenerate BENCH_core.json — kernel vs the frozen pre-kernel
## implementation on build / round / arrival at 100 and 1000 PMs.
bench-json:
	$(GO) run ./cmd/benchreport -sizes 100,1000 -o BENCH_core.json
