GO ?= go
COUNT ?= 10
BENCHTIME ?= 300ms

FUZZTIME ?= 10s

.PHONY: test check vet race audit resume-audit sparse-audit cells-audit policy-audit fuzz-smoke bench-smoke bench-kernel bench-paper bench-json bench-diff profile

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

## audit: full-trace invariant audit — the seed workload under the dynamic
## scheme with every event checked and every consolidation Apply verified
## against a cold matrix rebuild. Exits non-zero on the first violation.
audit:
	$(GO) run ./cmd/dvmpsim -audit=event -spare

## sparse-audit: the candidate-set differential gate — the same full-trace
## audit with the sparse engine driving placement, which adds the
## sparse-vs-dense check (every sparse Apply replayed against a dense
## matrix, trackers compared bit-for-bit), then the mirrored differential
## sweep in internal/audit (dense and sparse engines fed identical
## randomized operation streams across multiple seeds).
sparse-audit:
	$(GO) run ./cmd/dvmpsim -audit=event -spare -sparse 64
	$(GO) test ./internal/audit -run 'Sparse' -count=1 -v

## resume-audit: the crash-safety gate — run the seed workload under the
## dynamic scheme three times: uninterrupted, checkpointed-and-killed at
## roughly half the event stream, and resumed from that checkpoint. The
## prefix and tail traces concatenated must be canonically byte-identical
## to the uninterrupted trace (`tracestat -diff` exits non-zero on the
## first differing event).
RESUME_FLAGS ?= -scheme dynamic -nodes 16 -seed 1 -jobs 400 -spare -timed
RESUME_STOP ?= 1500
resume-audit:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/full.jsonl && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/prefix.jsonl \
		-checkpoint $$tmp/ck.json -stop-after $(RESUME_STOP) && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/tail.jsonl \
		-resume $$tmp/ck.json && \
	cat $$tmp/prefix.jsonl $$tmp/tail.jsonl > $$tmp/combined.jsonl && \
	$(GO) run ./cmd/tracestat -diff $$tmp/full.jsonl $$tmp/combined.jsonl && \
	rm -rf $$tmp

## cells-audit: the multi-cell differential gate — the resume-audit
## scenario run monolithically and at 4 and 16 cells (all three traces
## must be canonically byte-identical), then a re-shard resume chain: a
## 16-cell run checkpointed mid-stream and resumed as a 4-cell world,
## whose stitched trace must still match the monolith's. The 16-cell leg
## also runs the full event audit (per-cell queue verification plus the
## sharded snapshot round-trip check).
cells-audit:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/mono.jsonl && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/c4.jsonl -cells 4 && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/c16.jsonl -cells 16 -audit=event && \
	$(GO) run ./cmd/tracestat -diff $$tmp/mono.jsonl $$tmp/c4.jsonl && \
	$(GO) run ./cmd/tracestat -diff $$tmp/mono.jsonl $$tmp/c16.jsonl && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/prefix.jsonl -cells 16 \
		-checkpoint $$tmp/ck.json -stop-after $(RESUME_STOP) && \
	$(GO) run ./cmd/dvmpsim $(RESUME_FLAGS) -trace $$tmp/tail.jsonl -cells 4 \
		-resume $$tmp/ck.json && \
	cat $$tmp/prefix.jsonl $$tmp/tail.jsonl > $$tmp/combined.jsonl && \
	$(GO) run ./cmd/tracestat -diff $$tmp/mono.jsonl $$tmp/combined.jsonl && \
	rm -rf $$tmp

## policy-audit: the decision-recording/replay gate — run the seed
## workload three ways: plain, recorded (-decisions), and replayed from
## the recorded log (cmd/counterfact). Recording must leave the run trace
## canonically byte-identical (the decision stream has its own logical
## clock), and the replay of the recorded decisions must reproduce the
## original trace byte-for-byte (`tracestat -diff` exits non-zero on the
## first differing event, and counterfact exits non-zero on any
## unexpected divergence from the log).
POLICY_FLAGS ?= -scheme dynamic -nodes 16 -seed 1 -jobs 400 -spare -timed
policy-audit:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/dvmpsim $(POLICY_FLAGS) -trace $$tmp/base.jsonl && \
	$(GO) run ./cmd/dvmpsim $(POLICY_FLAGS) -trace $$tmp/recorded.jsonl \
		-decisions $$tmp/dec.jsonl && \
	$(GO) run ./cmd/tracestat -diff $$tmp/base.jsonl $$tmp/recorded.jsonl && \
	$(GO) run ./cmd/counterfact $(POLICY_FLAGS) -decisions $$tmp/dec.jsonl \
		-trace $$tmp/replay.jsonl && \
	$(GO) run ./cmd/tracestat -diff $$tmp/base.jsonl $$tmp/replay.jsonl && \
	rm -rf $$tmp

## fuzz-smoke: short randomized fuzz budgets — the audit harness's
## randomized-operations differential (internal/audit.FuzzOperations),
## the crash-injection resume differential (internal/sim.FuzzSnapshotResume),
## and the multi-cell crash-and-reshard differential
## (internal/sim.FuzzCellOrchestrator). FUZZTIME=10s by default (each).
fuzz-smoke:
	$(GO) test ./internal/audit -run '^$$' -fuzz FuzzOperations -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzSnapshotResume -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzCellOrchestrator -fuzztime $(FUZZTIME)

## bench-smoke: run every Kernel*, Engine*, and Sweep micro-benchmark
## exactly once. Not a measurement — a liveness gate: benchmarks bit-rot
## silently because `go test` never executes them, so check runs each for
## one iteration.
bench-smoke:
	$(GO) test ./internal/core -run '^$$' -bench '^BenchmarkKernel' -benchtime 1x
	$(GO) test ./internal/sim -run '^$$' -bench '^BenchmarkEngine' -benchtime 1x
	$(GO) test ./internal/exp -run '^$$' -bench '^BenchmarkSweep' -benchtime 1x

## check: the full pre-commit gate — vet, the race-enabled test suite
## (covers the lock-free metrics hot path, the parallel experiment
## harness, the multi-cell engine in internal/sim, internal/cell, and
## internal/exp, and the parallel placement kernels in internal/core —
## the worker-pool fan-outs behind MatrixOptions.Workers run under the
## race detector at explicit worker counts), the full-trace audit run,
## the sparse-vs-dense differential gate, the checkpoint/resume
## crash-safety gate, the multi-cell differential gate, the
## decision-recording/replay gate, a fuzz smoke test, and a
## one-iteration pass over the kernel benchmarks.
check: vet race audit sparse-audit resume-audit cells-audit policy-audit fuzz-smoke bench-smoke

## bench-kernel: benchstat-friendly kernel micro-benchmarks (kernel vs the
## generic Factor path). Pipe to a file and compare runs with
## `benchstat old.txt new.txt`; COUNT=10 gives benchstat enough samples.
bench-kernel:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'Kernel[A-Za-z]*/(kernel|generic)/pms(100|1000)$$' \
		-benchtime $(BENCHTIME) -count $(COUNT)

## bench-paper: one benchmark per paper table/figure (root bench_test.go).
bench-paper:
	$(GO) test . -run '^$$' -bench . -benchmem

## bench-json: regenerate BENCH_core.json (kernel vs the frozen pre-kernel
## implementation on build / round / arrival at 100 and 1000 PMs, plus the
## slab-vs-scalar row-fill ratio), BENCH_engine.json (calendar-queue
## scheduler vs the frozen binary heap at 10k / 100k / 1M dispatched
## events), BENCH_sweep.json (replication-sweep runs/sec at 1/2/4/8
## workers, merged reports asserted byte-identical across worker counts),
## and BENCH_scale.json (dense vs sparse candidate-set placement on
## build / round / arrival at 100 / 1k / 10k PMs, the kernel-workers
## curve at 1/2/4/8 workers over a 1k-PM fleet, a sparse-only 100k-PM
## point, and the multi-cell engine curve at 1/4/16/64 cells over a
## 10k-PM fleet — all equivalence-gated: every parallel or sharded
## result is asserted bit-identical to its serial baseline before any
## timing is recorded).
bench-json:
	$(GO) run ./cmd/benchreport -sizes 100,1000 -o BENCH_core.json \
		-engine-o BENCH_engine.json -sweep-o BENCH_sweep.json \
		-scale-o BENCH_scale.json

## bench-diff: re-measure both suites into a temp directory and compare
## against the committed BENCH_*.json, warning on any per-operation timing
## that regressed by more than 20%. Informational — machine-to-machine
## variance means a warning is a prompt to look, not a failure.
bench-diff:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/benchreport -sizes 100,1000 \
		-o $$tmp/BENCH_core.json -engine-o $$tmp/BENCH_engine.json \
		-sweep-o $$tmp/BENCH_sweep.json -scale-o $$tmp/BENCH_scale.json && \
	$(GO) run ./cmd/benchreport -diff BENCH_core.json $$tmp/BENCH_core.json && \
	$(GO) run ./cmd/benchreport -diff BENCH_engine.json $$tmp/BENCH_engine.json && \
	$(GO) run ./cmd/benchreport -diff BENCH_sweep.json $$tmp/BENCH_sweep.json && \
	$(GO) run ./cmd/benchreport -diff BENCH_scale.json $$tmp/BENCH_scale.json && \
	rm -rf $$tmp

## profile: capture CPU and heap profiles from the seed workload under the
## dynamic scheme (PROFILE_FLAGS to change the run). Inspect with
## `go tool pprof cpu.pprof` / `go tool pprof heap.pprof`.
PROFILE_FLAGS ?= -spare
profile:
	$(GO) run ./cmd/dvmpsim $(PROFILE_FLAGS) -cpuprofile cpu.pprof -memprofile heap.pprof
	@echo "wrote cpu.pprof and heap.pprof"
