// Package plot renders time-series line charts as standalone SVG files,
// using only the standard library. cmd/experiments uses it to emit
// graphical versions of the paper's Figures 3-5 next to the CSV data.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/metrics"
)

// palette holds distinguishable line colors (solarized-ish, printable).
var palette = []string{"#268bd2", "#dc322f", "#859900", "#b58900", "#6c71c4", "#2aa198"}

// Chart is one line chart. Lines share the x axis (sample index scaled by
// the series' Step) and the y axis.
type Chart struct {
	// Title is drawn across the top.
	Title string

	// XLabel and YLabel name the axes.
	XLabel, YLabel string

	// Series holds the lines to draw; all are rendered against the
	// global y maximum.
	Series []*metrics.Series

	// Width and Height are the SVG pixel dimensions; zero selects
	// 860x360.
	Width, Height int
}

const (
	marginLeft   = 62.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 44.0
)

// WriteSVG renders the chart. It fails on an empty chart: an axis needs at
// least one sample to scale against.
func (c *Chart) WriteSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 860
	}
	if height <= 0 {
		height = 360
	}
	maxLen, maxY := 0, 0.0
	for _, s := range c.Series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
		if m := s.Max(); m > maxY {
			maxY = m
		}
	}
	if maxLen == 0 {
		return fmt.Errorf("plot: chart %q has no samples", c.Title)
	}
	if maxY <= 0 {
		maxY = 1
	}

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	xAt := func(i int) float64 {
		if maxLen == 1 {
			return marginLeft
		}
		return marginLeft + plotW*float64(i)/float64(maxLen-1)
	}
	yAt := func(v float64) float64 {
		return marginTop + plotH*(1-v/maxY)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		width/2-len(c.Title)*3, escape(c.Title))

	// Gridlines and y ticks (5 divisions).
	for t := 0; t <= 5; t++ {
		v := maxY * float64(t) / 5
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd" stroke-width="1"/>`+"\n",
			marginLeft, y, float64(width)-marginRight, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+3, tick(v))
	}
	// X ticks (6 divisions).
	for t := 0; t <= 6; t++ {
		i := (maxLen - 1) * t / 6
		x := xAt(i)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd" stroke-width="1"/>`+"\n",
			x, marginTop, x, float64(height)-marginBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%d</text>`+"\n",
			x, float64(height)-marginBottom+14, i)
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(height)-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Lines.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts strings.Builder
		for i, v := range s.Values {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", xAt(i), yAt(clampNonNeg(v)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.6" points="%s"/>`+"\n",
			color, pts.String())
		// Legend entry.
		lx := marginLeft + 10 + float64(si)*150
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
			lx, marginTop-8, lx+18, marginTop-8, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+22, marginTop-4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func clampNonNeg(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// tick formats an axis value compactly.
func tick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v == math.Trunc(v):
		return fmt.Sprintf("%d", int(v))
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
