package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func chart(t *testing.T) *Chart {
	t.Helper()
	a := metrics.NewSeries("first-fit", 3600)
	b := metrics.NewSeries("dynamic", 3600)
	for i := 0; i < 24; i++ {
		a.Append(float64(20 + i%7))
		b.Append(float64(15 + i%5))
	}
	return &Chart{
		Title: "Figure 3 <active & idle>", XLabel: "hour", YLabel: "active PMs",
		Series: []*metrics.Series{a, b},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := chart(t).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be valid XML end to end.
	dec := xml.NewDecoder(&buf)
	polylines, texts := 0, 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("invalid XML: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			switch se.Name.Local {
			case "polyline":
				polylines++
			case "text":
				texts++
			}
		}
	}
	if polylines != 2 {
		t.Errorf("polylines = %d, want 2", polylines)
	}
	if texts < 10 {
		t.Errorf("texts = %d, want axis labels + ticks + legend", texts)
	}
}

func TestWriteSVGEscapesTitle(t *testing.T) {
	var buf bytes.Buffer
	if err := chart(t).WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<active") {
		t.Error("unescaped angle bracket in output")
	}
	if !strings.Contains(out, "&lt;active &amp; idle&gt;") {
		t.Error("escaped title missing")
	}
}

func TestWriteSVGEmptyChartFails(t *testing.T) {
	c := &Chart{Title: "x", Series: []*metrics.Series{metrics.NewSeries("e", 1)}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err == nil {
		t.Error("empty chart accepted")
	}
}

func TestWriteSVGSingleSample(t *testing.T) {
	s := metrics.NewSeries("one", 1)
	s.Append(5)
	c := &Chart{Title: "single", Series: []*metrics.Series{s}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polyline") {
		t.Error("no polyline for single sample")
	}
}

// TestWriteSVGEdgeSeries drives the renderer through the degenerate
// series shapes the experiment harness can hand it. No case may error
// (except the all-empty chart, covered above) and none may leak a
// literal NaN into the SVG — browsers silently drop such polylines.
func TestWriteSVGEdgeSeries(t *testing.T) {
	nanSeries := func() *metrics.Series {
		s := metrics.NewSeries("nan", 1)
		s.Append(1)
		s.Append(math.NaN())
		s.Append(3)
		return s
	}
	cases := []struct {
		name   string
		series []*metrics.Series
	}{
		{"NaN sample", []*metrics.Series{nanSeries()}},
		{"all NaN", []*metrics.Series{func() *metrics.Series {
			s := metrics.NewSeries("allnan", 1)
			s.Append(math.NaN())
			s.Append(math.NaN())
			return s
		}()}},
		{"single point", []*metrics.Series{func() *metrics.Series {
			s := metrics.NewSeries("pt", 1)
			s.Append(7)
			return s
		}()}},
		{"empty next to populated", []*metrics.Series{
			metrics.NewSeries("empty", 1), nanSeries(),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Neutral title: the NaN leak check scans the whole SVG,
			// so the subtest name must not appear in it.
			c := &Chart{Title: "edge case", Series: tc.series}
			var buf bytes.Buffer
			if err := c.WriteSVG(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if strings.Contains(out, "NaN") {
				t.Error("literal NaN leaked into SVG coordinates")
			}
			if got := strings.Count(out, "<polyline"); got != len(tc.series) {
				t.Errorf("polylines = %d, want %d", got, len(tc.series))
			}
			if _, err := xml.NewDecoder(strings.NewReader(out)).Token(); err != nil {
				t.Errorf("invalid XML: %v", err)
			}
		})
	}
}

func TestWriteSVGDimensions(t *testing.T) {
	c := chart(t)
	c.Width, c.Height = 400, 200
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="400" height="200"`) {
		t.Error("custom dimensions not applied")
	}
}

func TestTick(t *testing.T) {
	cases := map[float64]string{0: "0", 5: "5", 1500: "1.5k", 2.5: "2.50"}
	for v, want := range cases {
		if got := tick(v); got != want {
			t.Errorf("tick(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestClampNonNeg(t *testing.T) {
	if clampNonNeg(-1) != 0 || clampNonNeg(3) != 3 {
		t.Error("clamp wrong")
	}
}
