package failure

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	good := Config{MTBF: 1000, RepairTime: 60, ReliabilityDecay: 0.9, MinReliability: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{MTBF: -1},
		{MTBF: 10, RepairTime: -1, ReliabilityDecay: 0.9},
		{MTBF: 10, ReliabilityDecay: 0},
		{MTBF: 10, ReliabilityDecay: 1.5},
		{MTBF: 10, ReliabilityDecay: 0.9, MinReliability: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if !(Config{MTBF: 5}).Enabled() {
		t.Error("MTBF config not enabled")
	}
}

func TestNewInjectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewInjector(Config{MTBF: 10, ReliabilityDecay: -1})
}

func TestSampleTimeToFailureMean(t *testing.T) {
	inj := NewInjector(Config{MTBF: 500, ReliabilityDecay: 0.9, Seed: 1})
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		x := inj.SampleTimeToFailure()
		if x < 0 {
			t.Fatal("negative time to failure")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-500)/500 > 0.05 {
		t.Errorf("sample MTBF = %g, want ~500", mean)
	}
}

func TestFailDecaysReliability(t *testing.T) {
	inj := NewInjector(Config{MTBF: 100, ReliabilityDecay: 0.5, MinReliability: 0.2, Seed: 1})
	class := cluster.FastClass
	pm := cluster.NewPM(0, &class)
	if pm.Reliability != class.Reliability {
		t.Fatalf("initial reliability = %g", pm.Reliability)
	}
	inj.Fail(pm)
	if pm.Failures != 1 || math.Abs(pm.Reliability-0.495) > 1e-12 {
		t.Errorf("after 1 failure: count=%d rel=%g", pm.Failures, pm.Reliability)
	}
	inj.Fail(pm)
	inj.Fail(pm)
	if pm.Reliability != 0.2 {
		t.Errorf("reliability = %g, want floored at 0.2", pm.Reliability)
	}
	if pm.Failures != 3 {
		t.Errorf("failures = %d", pm.Failures)
	}
}

func TestInjectorAccessors(t *testing.T) {
	inj := NewInjector(Config{MTBF: 100, RepairTime: 77, ReliabilityDecay: 0.9})
	if !inj.Enabled() || inj.RepairTime() != 77 {
		t.Error("accessors wrong")
	}
}
