// Package failure models physical-machine failures for the reliability
// side of the placement scheme (Section III.B.3): while a PM is on it is
// exposed to an exponential failure clock; a failure forces every hosted
// VM to be re-placed ("if a physical machine fails, all the VMs that are
// running on it will be reallocated") and permanently lowers the machine's
// reliability probability, steering the placement factors away from flaky
// hardware.
package failure

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// Config parameterizes failure injection. The zero value disables it.
type Config struct {
	// MTBF is the per-PM mean time between failures while powered on,
	// in seconds. Zero disables failures.
	MTBF float64

	// RepairTime is how long a failed PM stays down before it becomes
	// bootable again.
	RepairTime float64

	// ReliabilityDecay multiplies the PM's reliability after each
	// failure (e.g. 0.9). Values outside (0, 1] are rejected.
	ReliabilityDecay float64

	// MinReliability floors the decay so a PM never becomes
	// unplaceable purely from history.
	MinReliability float64

	// Seed drives the failure clock.
	Seed int64
}

// Enabled reports whether failures are injected.
func (c Config) Enabled() bool { return c.MTBF > 0 }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MTBF < 0 || c.RepairTime < 0 {
		return fmt.Errorf("failure: negative times (mtbf=%g repair=%g)", c.MTBF, c.RepairTime)
	}
	if !c.Enabled() {
		return nil
	}
	if !(c.ReliabilityDecay > 0 && c.ReliabilityDecay <= 1) {
		return fmt.Errorf("failure: decay %g not in (0,1]", c.ReliabilityDecay)
	}
	if c.MinReliability < 0 || c.MinReliability > 1 {
		return fmt.Errorf("failure: min reliability %g not in [0,1]", c.MinReliability)
	}
	return nil
}

// Injector samples failure times and applies reliability decay.
type Injector struct {
	cfg Config
	rng *stats.Stream
}

// NewInjector builds an injector; it panics on invalid configuration.
func NewInjector(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, rng: stats.NewRand(cfg.Seed)}
}

// Enabled reports whether this injector produces failures.
func (i *Injector) Enabled() bool { return i.cfg.Enabled() }

// RNGState captures the failure clock's stream state for a checkpoint.
func (i *Injector) RNGState() stats.StreamState { return i.rng.State() }

// RestoreRNG reloads a checkpointed stream state so post-resume failure
// draws continue the original sequence exactly.
func (i *Injector) RestoreRNG(st stats.StreamState) error {
	rng, err := stats.RestoreStream(st)
	if err != nil {
		return err
	}
	i.rng = rng
	return nil
}

// RepairTime returns the configured repair duration.
func (i *Injector) RepairTime() float64 { return i.cfg.RepairTime }

// SampleTimeToFailure draws the next time-to-failure for a PM that just
// powered on.
func (i *Injector) SampleTimeToFailure() float64 {
	return stats.Exponential(i.rng, i.cfg.MTBF)
}

// Fail records a failure on pm: increments its failure count and decays
// its reliability probability (floored at MinReliability). The caller
// handles state transitions and VM re-placement.
func (i *Injector) Fail(pm *cluster.PM) {
	pm.Failures++
	pm.Reliability *= i.cfg.ReliabilityDecay
	if pm.Reliability < i.cfg.MinReliability {
		pm.Reliability = i.cfg.MinReliability
	}
}
