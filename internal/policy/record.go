package policy

import (
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

// Recorder wraps a Policy and writes every decision it makes — arrival
// placements, consolidation moves, spare-pool targets — to the
// observer's decision stream, each with the top-K rejected alternatives
// the scheme considered. The wrapped policy's behavior is unchanged:
// alternatives are enumerated through the side-effect-free Alternatives
// surface (and, for the dynamic family, a read-only core.DecisionHook),
// so a recorded run's trace is byte-identical to an unrecorded one
// (`make policy-audit` pins this).
//
// Decision records are the input to Replay and cmd/counterfact; their
// schema is documented in DESIGN.md §16.
type Recorder struct {
	// P is the wrapped policy.
	P Policy

	// K is the alternative-list depth per decision.
	K int

	// call counts Consolidate invocations and tick counts SpareTarget
	// invocations; both key their records so Replay can line resumed
	// logs up exactly. Checkpointed via RecorderState.
	call, tick uint64
}

// NewRecorder wraps p with decision recording at alternative depth k
// (<= 0 selects the default depth 3).
func NewRecorder(p Policy, k int) *Recorder {
	if k <= 0 {
		k = 3
	}
	return &Recorder{P: p, K: k}
}

// Name implements Placer: a recorded run reports the wrapped scheme's
// name (recording is instrumentation, not a scheme).
func (rec *Recorder) Name() string { return rec.P.Name() }

// Unwrap implements Unwrapper.
func (rec *Recorder) Unwrap() Placer { return rec.P }

// Place implements Placer: enumerate alternatives first (read-only),
// then delegate, then record both.
func (rec *Recorder) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	if !ctx.Obs.DecisionTracing() {
		return rec.P.Place(ctx, vm)
	}
	alts := rec.P.Alternatives(ctx, vm, rec.K)
	pm := rec.P.Place(ctx, vm)
	pmID := int64(-1)
	if pm != nil {
		pmID = int64(pm.ID)
	}
	ctx.Obs.EmitDecision(ctx.Now, "decision_place",
		obs.I("vm", int64(vm.ID)),
		obs.I("pm", pmID),
		obs.S("alts", encodeAlts(alts)),
	)
	return pm
}

// Consolidate implements Placer: for the dynamic family a read-only
// core.DecisionHook captures each move's column alternatives as the
// Algorithm 1 loop runs; other schemes record their moves without
// alternatives. Passes with zero moves are not recorded — Replay keys
// records by the invocation counter, so a missing record is a
// legitimate empty pass, not divergence.
func (rec *Recorder) Consolidate(ctx *core.Context) ([]core.Move, error) {
	call := rec.call
	rec.call++
	if !ctx.Obs.DecisionTracing() {
		return rec.P.Consolidate(ctx)
	}
	var alts [][]core.Placement
	if d, ok := DynamicOf(rec.P); ok {
		prev := d.Opts.DecisionHook
		d.Opts.DecisionHook = func(round int, mv core.Move, a []core.Placement) {
			if prev != nil {
				prev(round, mv, a)
			}
			alts = append(alts, a)
		}
		defer func() { d.Opts.DecisionHook = prev }()
	}
	moves, err := rec.P.Consolidate(ctx)
	if len(moves) > 0 {
		ctx.Obs.EmitDecision(ctx.Now, "decision_moves",
			obs.I("call", int64(call)),
			obs.S("moves", encodeMoves(moves, alts)),
		)
	}
	return moves, err
}

// Alternatives implements Policy (delegation; recording its own output
// would be circular).
func (rec *Recorder) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	return rec.P.Alternatives(ctx, vm, k)
}

// SpareTarget implements Policy: every call is recorded (unlike moves,
// the baseline passthrough result is still a decision Replay must
// reproduce without consulting the wrapped scheme).
func (rec *Recorder) SpareTarget(ctx *core.Context, baseline int) int {
	tick := rec.tick
	rec.tick++
	n := rec.P.SpareTarget(ctx, baseline)
	ctx.Obs.EmitDecision(ctx.Now, "decision_spare",
		obs.I("tick", int64(tick)),
		obs.I("baseline", int64(baseline)),
		obs.I("spares", int64(n)),
	)
	return n
}

// RecorderState is the checkpointed record-keying state.
type RecorderState struct {
	// Calls is the Consolidate invocation count at capture time.
	Calls uint64 `json:"calls"`

	// Ticks is the SpareTarget invocation count at capture time.
	Ticks uint64 `json:"ticks"`
}

// State captures the counters for a checkpoint.
func (rec *Recorder) State() RecorderState {
	return RecorderState{Calls: rec.call, Ticks: rec.tick}
}

// RestoreState reloads checkpointed counters so records emitted after a
// resume continue the original keying (a concatenated decision log
// replays seamlessly).
func (rec *Recorder) RestoreState(st RecorderState) {
	rec.call, rec.tick = st.Calls, st.Ticks
}

// PlacerState is the checkpoint payload for policy-internal state that
// the simulator snapshot carries opaquely: the Recorder's record keying
// and the Adaptive threshold walk. Nil (and omitted from the snapshot
// JSON) when the configured placer has neither, which keeps existing
// checkpoint files byte-stable.
type PlacerState struct {
	Recorder *RecorderState `json:"recorder,omitempty"`
	Adaptive *AdaptiveState `json:"adaptive,omitempty"`
}

// CaptureState walks p's wrapper chain and captures any policy-internal
// state; returns nil when there is none.
func CaptureState(p Placer) *PlacerState {
	var st PlacerState
	for p != nil {
		switch v := p.(type) {
		case *Recorder:
			s := v.State()
			st.Recorder = &s
		case *Adaptive:
			s := v.State()
			st.Adaptive = &s
		}
		u, ok := p.(Unwrapper)
		if !ok {
			break
		}
		p = u.Unwrap()
	}
	if st.Recorder == nil && st.Adaptive == nil {
		return nil
	}
	return &st
}

// RestoreState walks p's wrapper chain and reloads captured state.
// Lenient by design: state with no matching policy in the chain is
// ignored (the resume CLI may legitimately resume an instrumented run
// without instrumentation).
func RestoreState(p Placer, st *PlacerState) error {
	if st == nil {
		return nil
	}
	for p != nil {
		switch v := p.(type) {
		case *Recorder:
			if st.Recorder != nil {
				v.RestoreState(*st.Recorder)
			}
		case *Adaptive:
			if st.Adaptive != nil {
				if err := v.RestoreState(*st.Adaptive); err != nil {
					return err
				}
			}
		}
		u, ok := p.(Unwrapper)
		if !ok {
			return nil
		}
		p = u.Unwrap()
	}
	return nil
}

// encodeAlts renders an alternative list as "pm=score" pairs joined by
// commas, scores in strconv 'g'/-1 form (round-trippable, including
// "+Inf" for rescue moves).
func encodeAlts(alts []core.Placement) string {
	var b strings.Builder
	for i, a := range alts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(a.PM.ID), 10))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(a.Probability, 'g', -1, 64))
	}
	return b.String()
}

// encodeMoves renders a consolidation pass as "vm:from:to:round:gain"
// entries joined by "|", each optionally followed by "@" and its
// alternative list (present for the dynamic family, absent for
// threshold-style movers).
func encodeMoves(moves []core.Move, alts [][]core.Placement) string {
	var b strings.Builder
	for i, mv := range moves {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatInt(int64(mv.VM), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(mv.From), 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(int64(mv.To), 10))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(mv.Round))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(mv.Gain, 'g', -1, 64))
		if i < len(alts) && len(alts[i]) > 0 {
			b.WriteByte('@')
			b.WriteString(encodeAlts(alts[i]))
		}
	}
	return b.String()
}
