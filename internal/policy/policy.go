// Package policy defines the placement-scheme abstraction the simulator
// drives and implements the schemes the paper evaluates: the two static
// baselines (first-fit and best-fit, Section V), the proposed dynamic
// probability-matrix scheme, and two extra baselines (worst-fit, random)
// used for ablation studies.
package policy

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vector"
)

// Placer decides where new VM requests go and whether/how to consolidate
// running VMs. Implementations must be deterministic given their
// construction parameters (Random takes a seed).
type Placer interface {
	// Name identifies the scheme in reports ("first-fit", "dynamic"...).
	Name() string

	// Place returns the PM to host a new VM request, or nil when no
	// active PM can take it (the simulator then boots a machine and
	// queues the request).
	Place(ctx *core.Context, vm *cluster.VM) *cluster.PM

	// Consolidate runs the scheme's migration pass (triggered by
	// arrivals, departures, and PM failures per Section III.C) and
	// returns the executed moves. Static schemes return nil.
	Consolidate(ctx *core.Context) ([]core.Move, error)
}

// feasible reports whether pm can host demand right now.
func feasible(pm *cluster.PM, demand vector.V) bool {
	return pm.CanHost(demand)
}

// FirstFit places each request on the lowest-ID active PM with room — the
// paper's first static baseline ("the new arrival VM request will be
// placed to the first PM with available computation resources").
type FirstFit struct{}

// Name implements Placer.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Placer.
func (FirstFit) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	for _, pm := range ctx.DC.ActivePMs() {
		if feasible(pm, vm.Demand) {
			return pm
		}
	}
	return nil
}

// Consolidate implements Placer (static schemes never migrate).
func (FirstFit) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// BestFit places each request on the feasible PM whose utilization after
// placement would be highest — the paper's second static baseline ("the PM
// that can achieve its maximum utilization"). Ties break to the lower PM
// ID.
type BestFit struct{}

// Name implements Placer.
func (BestFit) Name() string { return "best-fit" }

// Place implements Placer.
func (BestFit) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var best *cluster.PM
	bestU := -1.0
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		u := vector.Utilization(pm.Used.Add(vm.Demand), pm.Class.Capacity)
		if u > bestU {
			bestU, best = u, pm
		}
	}
	return best
}

// Consolidate implements Placer.
func (BestFit) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// WorstFit places each request on the feasible PM with the most headroom
// (lowest prospective utilization) — a load-spreading anti-consolidation
// baseline for ablations.
type WorstFit struct{}

// Name implements Placer.
func (WorstFit) Name() string { return "worst-fit" }

// Place implements Placer.
func (WorstFit) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var worst *cluster.PM
	worstU := math.Inf(1)
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		u := vector.Utilization(pm.Used.Add(vm.Demand), pm.Class.Capacity)
		if u < worstU {
			worstU, worst = u, pm
		}
	}
	return worst
}

// Consolidate implements Placer.
func (WorstFit) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Random places each request on a uniformly random feasible PM. Seeded, so
// runs remain reproducible.
type Random struct {
	rng *stats.Stream
}

// NewRandom returns a Random placer with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: stats.NewRand(seed)}
}

// RNGState captures the placer's stream state for a checkpoint.
func (r *Random) RNGState() stats.StreamState { return r.rng.State() }

// RestoreRNG reloads a checkpointed stream state so post-resume placements
// continue the original draw sequence exactly.
func (r *Random) RestoreRNG(st stats.StreamState) error {
	rng, err := stats.RestoreStream(st)
	if err != nil {
		return err
	}
	r.rng = rng
	return nil
}

// Name implements Placer.
func (*Random) Name() string { return "random" }

// Place implements Placer.
func (r *Random) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var candidates []*cluster.PM
	for _, pm := range ctx.DC.ActivePMs() {
		if feasible(pm, vm.Demand) {
			candidates = append(candidates, pm)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[r.rng.Intn(len(candidates))]
}

// Consolidate implements Placer.
func (*Random) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Dynamic is the paper's statistical dynamic placement scheme: arrivals go
// to the highest-joint-probability PM (the new-request column of the
// matrix), and every placement-changing event triggers Algorithm 1.
type Dynamic struct {
	// Factors are the probability factors composing p_ij; nil selects
	// core.DefaultFactors (res, vir, rel, eff).
	Factors []core.Factor

	// Params are the MIG_threshold / MIG_round knobs.
	Params core.Params

	// Opts tunes matrix evaluation. The audit subsystem sets SelfAudit
	// here so every consolidation Apply verifies the incremental
	// trackers against a cold rebuild.
	Opts core.MatrixOptions

	// label overrides Name for ablation variants.
	label string
}

// NewDynamic returns the scheme with the paper's default factors and
// parameters.
func NewDynamic() *Dynamic {
	return &Dynamic{Factors: core.DefaultFactors(), Params: core.DefaultParams()}
}

// NewDynamicVariant builds an ablation variant with a custom label,
// factor set, and parameters.
func NewDynamicVariant(label string, factors []core.Factor, params core.Params) *Dynamic {
	return &Dynamic{Factors: factors, Params: params, label: label}
}

// Name implements Placer.
func (d *Dynamic) Name() string {
	if d.label != "" {
		return d.label
	}
	return "dynamic"
}

func (d *Dynamic) factors() []core.Factor {
	if len(d.Factors) > 0 {
		return d.Factors
	}
	return core.DefaultFactors()
}

// FactorSet returns the factors the scheme evaluates (the defaults when
// none were set). The audit subsystem uses it to build reference matrices
// with exactly the scheme's factor composition.
func (d *Dynamic) FactorSet() []core.Factor { return d.factors() }

// Place implements Placer. When every joint probability is zero — which
// happens for ultra-short requests whose estimated runtime is below even
// the creation overhead, zeroing p_vir everywhere — the request still has
// to run somewhere, so Place falls back to best-fit among resource-feasible
// PMs. (The paper's arrival rule, "allocate it to the PM with the highest
// probability", leaves the all-zero column undefined.)
func (d *Dynamic) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	if pm := core.BestPlacementWith(ctx, d.factors(), vm, d.Opts); pm != nil {
		ctx.Obs.Add("policy.dynamic_place", 1)
		return pm
	}
	// The all-zero-column fallback is a scheme blind spot worth watching
	// in production traces, so it gets its own counter.
	if pm := (BestFit{}).Place(ctx, vm); pm != nil {
		ctx.Obs.Add("policy.dynamic_place_fallback", 1)
		return pm
	}
	return nil
}

// Consolidate implements Placer.
func (d *Dynamic) Consolidate(ctx *core.Context) ([]core.Move, error) {
	return core.ConsolidateWith(ctx, d.factors(), d.Params, d.Opts)
}

// ByName constructs a scheme from its report name; seed feeds the Random
// scheme. Unknown names return an error listing the options.
func ByName(name string, seed int64) (Placer, error) {
	switch name {
	case "first-fit":
		return FirstFit{}, nil
	case "best-fit":
		return BestFit{}, nil
	case "worst-fit":
		return WorstFit{}, nil
	case "random":
		return NewRandom(seed), nil
	case "dynamic":
		return NewDynamic(), nil
	case "threshold":
		return NewThreshold(), nil
	default:
		return nil, fmt.Errorf("policy: unknown scheme %q (want first-fit, best-fit, worst-fit, random, threshold, or dynamic)", name)
	}
}
