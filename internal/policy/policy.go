// Package policy defines the placement-scheme abstraction the simulator
// drives and implements the schemes the paper evaluates: the two static
// baselines (first-fit and best-fit, Section V), the proposed dynamic
// probability-matrix scheme, and two extra baselines (worst-fit, random)
// used for ablation studies.
package policy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vector"
)

// Placer decides where new VM requests go and whether/how to consolidate
// running VMs. Implementations must be deterministic given their
// construction parameters (Random takes a seed).
type Placer interface {
	// Name identifies the scheme in reports ("first-fit", "dynamic"...).
	Name() string

	// Place returns the PM to host a new VM request, or nil when no
	// active PM can take it (the simulator then boots a machine and
	// queues the request).
	Place(ctx *core.Context, vm *cluster.VM) *cluster.PM

	// Consolidate runs the scheme's migration pass (triggered by
	// arrivals, departures, and PM failures per Section III.C) and
	// returns the executed moves. Static schemes return nil.
	Consolidate(ctx *core.Context) ([]core.Move, error)
}

// Policy is the full decision surface of a placement strategy: the
// Placer decision points (arrival placement, consolidation move
// selection) plus alternative enumeration for decision tracing and the
// spare-pool control point. Every scheme in this package implements
// Policy; Placer remains the minimal driving interface so external
// implementations are not forced to rank alternatives.
type Policy interface {
	Placer

	// Alternatives ranks the scheme's top-k candidate PMs for placing
	// vm, best first, using the scheme's own preference metric as the
	// score (utilization for the fit family, normalized probability for
	// dynamic). The head is the PM Place would choose (when any
	// candidate exists). Must be read-only — in particular it must not
	// advance scheme-internal state such as Random's RNG stream, so
	// recording alternatives never perturbs the run. k <= 0 means
	// unbounded.
	Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement

	// SpareTarget is the spare-pool control point: given the baseline
	// controller's planned spare count, return the scheme's target.
	// Stock schemes return the baseline unchanged (so existing traces
	// are byte-identical); overbooking shrinks it by the booking ratio.
	SpareTarget(ctx *core.Context, baseline int) int
}

// Unwrapper is implemented by policies that wrap another (Recorder,
// Replay, Adaptive). DynamicOf and RandomOf walk the chain so the
// simulator's concrete-type integrations (kernel workers, audit hooks,
// RNG checkpointing) keep working through any wrapper.
type Unwrapper interface {
	// Unwrap returns the wrapped Placer.
	Unwrap() Placer
}

// DynamicOf returns the *Dynamic at the core of p, unwrapping any
// wrapper chain, and whether one was found.
func DynamicOf(p Placer) (*Dynamic, bool) {
	for p != nil {
		if d, ok := p.(*Dynamic); ok {
			return d, true
		}
		u, ok := p.(Unwrapper)
		if !ok {
			return nil, false
		}
		p = u.Unwrap()
	}
	return nil, false
}

// RandomOf returns the *Random at the core of p, unwrapping any wrapper
// chain, and whether one was found.
func RandomOf(p Placer) (*Random, bool) {
	for p != nil {
		if r, ok := p.(*Random); ok {
			return r, true
		}
		u, ok := p.(Unwrapper)
		if !ok {
			return nil, false
		}
		p = u.Unwrap()
	}
	return nil, false
}

// Compile-time checks: every scheme in this package is a full Policy.
var (
	_ Policy = FirstFit{}
	_ Policy = BestFit{}
	_ Policy = WorstFit{}
	_ Policy = (*Random)(nil)
	_ Policy = (*Dynamic)(nil)
	_ Policy = (*Threshold)(nil)
	_ Policy = (*Overbook)(nil)
	_ Policy = (*Adaptive)(nil)
	_ Policy = (*Recorder)(nil)
	_ Policy = (*Replay)(nil)
)

// truncate caps a ranked placement list at k (k <= 0 means unbounded).
func truncate(out []core.Placement, k int) []core.Placement {
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// rankByUtil ranks the feasible active PMs for vm by prospective
// utilization (desc when bestFirst, else asc), ties toward the lower PM
// ID; scores carry the utilization. Shared by the fit-family
// Alternatives implementations.
func rankByUtil(ctx *core.Context, vm *cluster.VM, k int, bestFirst bool) []core.Placement {
	var out []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		u := vector.Utilization(pm.Used.Add(vm.Demand), pm.Class.Capacity)
		out = append(out, core.Placement{PM: pm, Probability: u})
	}
	sortPlacements(out, bestFirst)
	return truncate(out, k)
}

// sortPlacements orders placements by score (desc when bestFirst, else
// asc), ties toward the lower PM ID. ActivePMs iterates in ID order, so
// a stable sort keeps ties ID-ordered.
func sortPlacements(out []core.Placement, bestFirst bool) {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			if bestFirst {
				return out[i].Probability > out[j].Probability
			}
			return out[i].Probability < out[j].Probability
		}
		return out[i].PM.ID < out[j].PM.ID
	})
}

// feasible reports whether pm can host demand right now.
func feasible(pm *cluster.PM, demand vector.V) bool {
	return pm.CanHost(demand)
}

// FirstFit places each request on the lowest-ID active PM with room — the
// paper's first static baseline ("the new arrival VM request will be
// placed to the first PM with available computation resources").
type FirstFit struct{}

// Name implements Placer.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Placer.
func (FirstFit) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	for _, pm := range ctx.DC.ActivePMs() {
		if feasible(pm, vm.Demand) {
			return pm
		}
	}
	return nil
}

// Consolidate implements Placer (static schemes never migrate).
func (FirstFit) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Alternatives implements Policy: feasible PMs in ID order (first-fit's
// own preference order), unit scores.
func (FirstFit) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	var out []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if feasible(pm, vm.Demand) {
			out = append(out, core.Placement{PM: pm, Probability: 1})
		}
	}
	return truncate(out, k)
}

// SpareTarget implements Policy (baseline passthrough).
func (FirstFit) SpareTarget(_ *core.Context, baseline int) int { return baseline }

// BestFit places each request on the feasible PM whose utilization after
// placement would be highest — the paper's second static baseline ("the PM
// that can achieve its maximum utilization"). Ties break to the lower PM
// ID.
type BestFit struct{}

// Name implements Placer.
func (BestFit) Name() string { return "best-fit" }

// Place implements Placer.
func (BestFit) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var best *cluster.PM
	bestU := -1.0
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		u := vector.Utilization(pm.Used.Add(vm.Demand), pm.Class.Capacity)
		if u > bestU {
			bestU, best = u, pm
		}
	}
	return best
}

// Consolidate implements Placer.
func (BestFit) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Alternatives implements Policy: feasible PMs by prospective
// utilization, highest first.
func (BestFit) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	return rankByUtil(ctx, vm, k, true)
}

// SpareTarget implements Policy (baseline passthrough).
func (BestFit) SpareTarget(_ *core.Context, baseline int) int { return baseline }

// WorstFit places each request on the feasible PM with the most headroom
// (lowest prospective utilization) — a load-spreading anti-consolidation
// baseline for ablations.
type WorstFit struct{}

// Name implements Placer.
func (WorstFit) Name() string { return "worst-fit" }

// Place implements Placer.
func (WorstFit) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var worst *cluster.PM
	worstU := math.Inf(1)
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		u := vector.Utilization(pm.Used.Add(vm.Demand), pm.Class.Capacity)
		if u < worstU {
			worstU, worst = u, pm
		}
	}
	return worst
}

// Consolidate implements Placer.
func (WorstFit) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Alternatives implements Policy: feasible PMs by prospective
// utilization, lowest first (most headroom wins).
func (WorstFit) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	return rankByUtil(ctx, vm, k, false)
}

// SpareTarget implements Policy (baseline passthrough).
func (WorstFit) SpareTarget(_ *core.Context, baseline int) int { return baseline }

// Random places each request on a uniformly random feasible PM. Seeded, so
// runs remain reproducible.
type Random struct {
	rng *stats.Stream
}

// NewRandom returns a Random placer with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: stats.NewRand(seed)}
}

// RNGState captures the placer's stream state for a checkpoint.
func (r *Random) RNGState() stats.StreamState { return r.rng.State() }

// RestoreRNG reloads a checkpointed stream state so post-resume placements
// continue the original draw sequence exactly.
func (r *Random) RestoreRNG(st stats.StreamState) error {
	rng, err := stats.RestoreStream(st)
	if err != nil {
		return err
	}
	r.rng = rng
	return nil
}

// Name implements Placer.
func (*Random) Name() string { return "random" }

// Place implements Placer.
func (r *Random) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var candidates []*cluster.PM
	for _, pm := range ctx.DC.ActivePMs() {
		if feasible(pm, vm.Demand) {
			candidates = append(candidates, pm)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[r.rng.Intn(len(candidates))]
}

// Consolidate implements Placer.
func (*Random) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Alternatives implements Policy: the feasible candidate set in ID
// order with unit scores. Deliberately does NOT draw from the RNG —
// Alternatives must be side-effect-free so that recording them leaves
// the placement draw sequence (and therefore the run trace) untouched.
func (r *Random) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	var out []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if feasible(pm, vm.Demand) {
			out = append(out, core.Placement{PM: pm, Probability: 1})
		}
	}
	return truncate(out, k)
}

// SpareTarget implements Policy (baseline passthrough).
func (*Random) SpareTarget(_ *core.Context, baseline int) int { return baseline }

// Dynamic is the paper's statistical dynamic placement scheme: arrivals go
// to the highest-joint-probability PM (the new-request column of the
// matrix), and every placement-changing event triggers Algorithm 1.
type Dynamic struct {
	// Factors are the probability factors composing p_ij; nil selects
	// core.DefaultFactors (res, vir, rel, eff).
	Factors []core.Factor

	// Params are the MIG_threshold / MIG_round knobs.
	Params core.Params

	// Opts tunes matrix evaluation. The audit subsystem sets SelfAudit
	// here so every consolidation Apply verifies the incremental
	// trackers against a cold rebuild.
	Opts core.MatrixOptions

	// label overrides Name for ablation variants.
	label string
}

// NewDynamic returns the scheme with the paper's default factors and
// parameters.
func NewDynamic() *Dynamic {
	return &Dynamic{Factors: core.DefaultFactors(), Params: core.DefaultParams()}
}

// NewDynamicVariant builds an ablation variant with a custom label,
// factor set, and parameters.
func NewDynamicVariant(label string, factors []core.Factor, params core.Params) *Dynamic {
	return &Dynamic{Factors: factors, Params: params, label: label}
}

// Name implements Placer.
func (d *Dynamic) Name() string {
	if d.label != "" {
		return d.label
	}
	return "dynamic"
}

func (d *Dynamic) factors() []core.Factor {
	if len(d.Factors) > 0 {
		return d.Factors
	}
	return core.DefaultFactors()
}

// FactorSet returns the factors the scheme evaluates (the defaults when
// none were set). The audit subsystem uses it to build reference matrices
// with exactly the scheme's factor composition.
func (d *Dynamic) FactorSet() []core.Factor { return d.factors() }

// Place implements Placer. When every joint probability is zero — which
// happens for ultra-short requests whose estimated runtime is below even
// the creation overhead, zeroing p_vir everywhere — the request still has
// to run somewhere, so Place falls back to best-fit among resource-feasible
// PMs. (The paper's arrival rule, "allocate it to the PM with the highest
// probability", leaves the all-zero column undefined.)
func (d *Dynamic) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	if pm := core.BestPlacementWith(ctx, d.factors(), vm, d.Opts); pm != nil {
		ctx.Obs.Add("policy.dynamic_place", 1)
		return pm
	}
	// The all-zero-column fallback is a scheme blind spot worth watching
	// in production traces, so it gets its own counter.
	if pm := (BestFit{}).Place(ctx, vm); pm != nil {
		ctx.Obs.Add("policy.dynamic_place_fallback", 1)
		return pm
	}
	return nil
}

// Consolidate implements Placer.
func (d *Dynamic) Consolidate(ctx *core.Context) ([]core.Move, error) {
	return core.ConsolidateWith(ctx, d.factors(), d.Params, d.Opts)
}

// Alternatives implements Policy: the arrival column's ranked joint
// probabilities (the sparse shortlist when the candidate index covers
// the factor program, the dense ranking otherwise), truncated to k.
func (d *Dynamic) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	if d.Opts.CandidateK > 0 {
		if out, ok := core.ArrivalShortlist(ctx, d.factors(), vm, k); ok {
			return out
		}
	}
	return truncate(core.RankPlacements(ctx, d.factors(), vm), k)
}

// SpareTarget implements Policy (baseline passthrough).
func (*Dynamic) SpareTarget(_ *core.Context, baseline int) int { return baseline }

// ByName constructs a scheme from its report name; seed feeds the Random
// scheme. Unknown names return an error listing the options.
func ByName(name string, seed int64) (Placer, error) {
	switch name {
	case "first-fit":
		return FirstFit{}, nil
	case "best-fit":
		return BestFit{}, nil
	case "worst-fit":
		return WorstFit{}, nil
	case "random":
		return NewRandom(seed), nil
	case "dynamic":
		return NewDynamic(), nil
	case "threshold":
		return NewThreshold(), nil
	case "overbook":
		return NewOverbook(), nil
	case "dynamic-adaptive":
		return NewAdaptive(), nil
	default:
		return nil, fmt.Errorf("policy: unknown scheme %q (want first-fit, best-fit, worst-fit, random, threshold, dynamic, overbook, or dynamic-adaptive)", name)
	}
}
