package policy

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vector"
)

// dc builds 3 fast PMs, all on; PM1 pre-loaded with one VM of demand (4,4).
func dc(t *testing.T) (*cluster.Datacenter, *core.Context) {
	t.Helper()
	fast := cluster.FastClass
	d := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 3}},
	})
	for _, p := range d.PMs() {
		p.State = cluster.PMOn
	}
	filler := cluster.NewVM(100, vector.New(4, 4), 100000, 100000, 0)
	if err := d.PM(1).Host(filler); err != nil {
		t.Fatal(err)
	}
	filler.State = cluster.VMRunning
	return d, &core.Context{DC: d, Now: 0}
}

func newVM(id cluster.VMID) *cluster.VM {
	return cluster.NewVM(id, vector.New(2, 2), 100000, 100000, 0)
}

func TestFirstFitPlacesOnLowestID(t *testing.T) {
	_, ctx := dc(t)
	pm := FirstFit{}.Place(ctx, newVM(1))
	if pm == nil || pm.ID != 0 {
		t.Errorf("first-fit chose %v, want PM0", pm)
	}
}

func TestFirstFitSkipsFullPMs(t *testing.T) {
	d, ctx := dc(t)
	// Fill PM0 completely.
	block := cluster.NewVM(101, vector.New(8, 8), 1000, 1000, 0)
	if err := d.PM(0).Host(block); err != nil {
		t.Fatal(err)
	}
	pm := FirstFit{}.Place(ctx, newVM(1))
	if pm == nil || pm.ID != 1 {
		t.Errorf("first-fit chose %v, want PM1", pm)
	}
}

func TestBestFitPrefersHighestProspectiveUtilization(t *testing.T) {
	_, ctx := dc(t)
	pm := BestFit{}.Place(ctx, newVM(1))
	if pm == nil || pm.ID != 1 {
		t.Errorf("best-fit chose %v, want the partially loaded PM1", pm)
	}
}

func TestWorstFitPrefersEmptiestPM(t *testing.T) {
	_, ctx := dc(t)
	pm := WorstFit{}.Place(ctx, newVM(1))
	if pm == nil || pm.ID == 1 {
		t.Errorf("worst-fit chose %v, want an empty PM", pm)
	}
}

func TestPlacersReturnNilWhenNothingFits(t *testing.T) {
	_, ctx := dc(t)
	huge := cluster.NewVM(1, vector.New(100, 100), 1000, 1000, 0)
	placers := []Placer{FirstFit{}, BestFit{}, WorstFit{}, NewRandom(1), NewDynamic()}
	for _, p := range placers {
		if got := p.Place(ctx, huge); got != nil {
			t.Errorf("%s placed an oversized VM on %v", p.Name(), got)
		}
	}
}

func TestRandomPlacesOnFeasiblePM(t *testing.T) {
	d, ctx := dc(t)
	r := NewRandom(7)
	seen := map[cluster.PMID]bool{}
	for i := 0; i < 200; i++ {
		pm := r.Place(ctx, newVM(cluster.VMID(i)))
		if pm == nil {
			t.Fatal("random found no PM")
		}
		if !pm.CanHost(vector.New(2, 2)) {
			t.Fatalf("random chose infeasible PM %d", pm.ID)
		}
		seen[pm.ID] = true
	}
	if len(seen) < 2 {
		t.Errorf("random only ever chose %v", seen)
	}
	_ = d
}

func TestRandomDeterministicWithSeed(t *testing.T) {
	_, ctx := dc(t)
	a, b := NewRandom(3), NewRandom(3)
	for i := 0; i < 50; i++ {
		pa := a.Place(ctx, newVM(cluster.VMID(i)))
		pb := b.Place(ctx, newVM(cluster.VMID(i)))
		if pa.ID != pb.ID {
			t.Fatal("same-seed random placers diverged")
		}
	}
}

func TestDynamicPlaceUsesJointProbability(t *testing.T) {
	_, ctx := dc(t)
	pm := NewDynamic().Place(ctx, newVM(1))
	// The busy PM1 has a higher prospective utilization level, so the
	// efficiency factor makes it the best placement.
	if pm == nil || pm.ID != 1 {
		t.Errorf("dynamic chose %v, want PM1", pm)
	}
}

func TestDynamicConsolidateMigrates(t *testing.T) {
	d, ctx := dc(t)
	// Spread another VM onto PM2 so consolidation has something to do.
	stray := cluster.NewVM(200, vector.New(2, 2), 100000, 100000, 0)
	if err := d.PM(2).Host(stray); err != nil {
		t.Fatal(err)
	}
	stray.State = cluster.VMRunning

	moves, err := NewDynamic().Consolidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("dynamic consolidation produced no moves")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestStaticSchemesNeverConsolidate(t *testing.T) {
	_, ctx := dc(t)
	for _, p := range []Placer{FirstFit{}, BestFit{}, WorstFit{}, NewRandom(1)} {
		moves, err := p.Consolidate(ctx)
		if err != nil || moves != nil {
			t.Errorf("%s consolidated: %v, %v", p.Name(), moves, err)
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]Placer{
		"first-fit": FirstFit{},
		"best-fit":  BestFit{},
		"worst-fit": WorstFit{},
		"random":    NewRandom(1),
		"dynamic":   NewDynamic(),
	}
	for name, p := range want {
		if p.Name() != name {
			t.Errorf("Name = %q, want %q", p.Name(), name)
		}
	}
	v := NewDynamicVariant("dynamic-novir", nil, core.DefaultParams())
	if v.Name() != "dynamic-novir" {
		t.Errorf("variant name = %q", v.Name())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"first-fit", "best-fit", "worst-fit", "random", "dynamic"} {
		p, err := ByName(name, 1)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestDynamicVariantFallsBackToDefaultFactors(t *testing.T) {
	_, ctx := dc(t)
	v := NewDynamicVariant("x", nil, core.DefaultParams())
	if pm := v.Place(ctx, newVM(1)); pm == nil {
		t.Error("variant with nil factors failed to place")
	}
}
