package policy

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vector"
)

// Overbook is a ratio-based overbooking policy in the style of Ortigoza
// & López-Pires (arXiv:1601.01881): customers reserve Inflation times
// what their VMs actually use, and the provider sells reservations up
// to Ratio times physical capacity, betting that actual usage stays
// within the hardware. Placement is best-fit on *booked* utilization —
// each VM charges demand * (Inflation / Ratio) against the host, which
// is the reservation discounted by the overbooking ratio. Because
// Inflation >= Ratio that charge is at least the actual demand, so a
// booked-feasible host is always physically feasible too and the
// simulator's hard placement invariant holds.
//
// The bet can still strain individual hosts: whenever a placement
// pushes a host's actual bottleneck utilization past Watermark, the
// policy books a violation on the "policy.overbook_violations" counter
// — the violation accounting the tournament's QoS objective reads.
type Overbook struct {
	// Ratio is the overbooking ratio: total reservations may reach
	// Ratio times physical capacity. Must be >= 1 (1 disables
	// overbooking).
	Ratio float64

	// Inflation is how much customers over-reserve relative to actual
	// usage. Must be >= Ratio so booked charges never understate real
	// demand.
	Inflation float64

	// Watermark is the actual bottleneck utilization above which a
	// placement counts as a violation, in (0, 1].
	Watermark float64
}

// NewOverbook returns the policy with a 1.2x overbooking ratio, 1.5x
// reservation inflation, and a 90% violation watermark.
func NewOverbook() *Overbook {
	return &Overbook{Ratio: 1.2, Inflation: 1.5, Watermark: 0.9}
}

// Validate checks the knobs.
func (o *Overbook) Validate() error {
	if !(o.Ratio >= 1) {
		return fmt.Errorf("policy: overbook ratio must be >= 1, got %g", o.Ratio)
	}
	if !(o.Inflation >= o.Ratio) {
		return fmt.Errorf("policy: overbook inflation %g must be >= ratio %g", o.Inflation, o.Ratio)
	}
	if !(o.Watermark > 0 && o.Watermark <= 1) {
		return fmt.Errorf("policy: overbook watermark must be in (0, 1], got %g", o.Watermark)
	}
	return nil
}

// Name implements Placer.
func (*Overbook) Name() string { return "overbook" }

// bookFactor is the per-VM booking multiplier: the inflated reservation
// discounted by the overbooking ratio. Always >= 1 when the knobs
// validate.
func (o *Overbook) bookFactor() float64 { return o.Inflation / o.Ratio }

// bookedLoad recomputes a host's booked demand from its hosted VMs.
// Stateless by design: nothing to checkpoint, and evictions/departures
// are automatically reflected.
func (o *Overbook) bookedLoad(pm *cluster.PM) vector.V {
	load := vector.Zero(pm.Class.Capacity.Dim())
	f := o.bookFactor()
	for _, vm := range pm.VMs() {
		load.AddInPlace(vm.Demand.Scale(f))
	}
	return load
}

// bookedUtil returns the prospective booked bottleneck utilization of
// pm after accepting vm, or -1 when the booking does not fit.
func (o *Overbook) bookedUtil(pm *cluster.PM, vm *cluster.VM) float64 {
	booked := o.bookedLoad(pm)
	booked.AddInPlace(vm.Demand.Scale(o.bookFactor()))
	cap := pm.Class.Capacity
	for k := range booked {
		if booked[k] > cap[k]+vector.Epsilon {
			return -1
		}
	}
	return bottleneck(booked, cap)
}

// Place implements Placer: best-fit on booked utilization among hosts
// whose booked load stays within capacity; if every host is fully
// booked, any physically feasible host (serving the request beats the
// booking discipline, counted on "policy.overbook_fallback").
func (o *Overbook) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var best *cluster.PM
	bestU := -1.0
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		if u := o.bookedUtil(pm, vm); u > bestU {
			bestU, best = u, pm
		}
	}
	if best == nil {
		if best = (BestFit{}).Place(ctx, vm); best != nil {
			ctx.Obs.Add("policy.overbook_fallback", 1)
		}
	}
	if best != nil && bottleneck(best.Used.Add(vm.Demand), best.Class.Capacity) > o.Watermark {
		ctx.Obs.Add("policy.overbook_violations", 1)
	}
	return best
}

// Consolidate implements Placer (overbooking is an admission policy;
// it never migrates).
func (*Overbook) Consolidate(*core.Context) ([]core.Move, error) { return nil, nil }

// Alternatives implements Policy: Place's candidate order — bookable
// hosts by booked utilization descending (ties toward the lower PM ID),
// scored by that utilization.
func (o *Overbook) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	var out []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if !feasible(pm, vm.Demand) {
			continue
		}
		if u := o.bookedUtil(pm, vm); u >= 0 {
			out = append(out, core.Placement{PM: pm, Probability: u})
		}
	}
	sortPlacements(out, true)
	return truncate(out, k)
}

// SpareTarget implements Policy: overbooking extends to the spare pool
// — reservations are assumed inflated, so the policy keeps only
// baseline/Ratio spares warm (rounded up, so a positive baseline never
// drops to zero spares).
func (o *Overbook) SpareTarget(_ *core.Context, baseline int) int {
	if baseline <= 0 || o.Ratio <= 1 {
		return baseline
	}
	return int(math.Ceil(float64(baseline) / o.Ratio))
}
