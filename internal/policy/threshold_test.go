package policy

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vector"
)

func thresholdDC(t *testing.T, n int) (*cluster.Datacenter, *core.Context) {
	t.Helper()
	fast := cluster.FastClass
	d := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: n}},
	})
	for _, p := range d.PMs() {
		p.State = cluster.PMOn
	}
	return d, &core.Context{DC: d, Now: 0}
}

func hostRunning(t *testing.T, pm *cluster.PM, id cluster.VMID, cpu, mem float64) *cluster.VM {
	t.Helper()
	vm := cluster.NewVM(id, vector.New(cpu, mem), 100000, 100000, 0)
	if err := pm.Host(vm); err != nil {
		t.Fatal(err)
	}
	vm.State = cluster.VMRunning
	return vm
}

func TestThresholdValidate(t *testing.T) {
	if err := NewThreshold().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []*Threshold{
		{Lo: 0, Hi: 0.9, MaxMoves: 5},
		{Lo: 0.9, Hi: 0.5, MaxMoves: 5},
		{Lo: 0.2, Hi: 1.5, MaxMoves: 5},
		{Lo: 0.2, Hi: 0.9, MaxMoves: 0},
	}
	for i, th := range bad {
		if th.Validate() == nil {
			t.Errorf("bad threshold %d accepted", i)
		}
	}
}

func TestThresholdPlaceRespectsHi(t *testing.T) {
	d, ctx := thresholdDC(t, 2)
	th := NewThreshold()               // Hi = 0.9 -> cap (8,8): 7.2 of either resource
	hostRunning(t, d.PM(0), 100, 7, 1) // CPU 7/8 = 0.875; adding 1 core -> 1.0 > Hi
	vm := cluster.NewVM(1, vector.New(1, 0.5), 1000, 1000, 0)
	pm := th.Place(ctx, vm)
	if pm == nil || pm.ID != 1 {
		t.Errorf("Place chose %v, want the empty PM1", pm)
	}
}

func TestThresholdPlaceFallsBackWhenAllAboveHi(t *testing.T) {
	d, ctx := thresholdDC(t, 1)
	th := NewThreshold()
	hostRunning(t, d.PM(0), 100, 7, 7)
	vm := cluster.NewVM(1, vector.New(1, 0.5), 1000, 1000, 0)
	// Post utilization 8/8 = 1 > Hi, but it is the only feasible host.
	if pm := th.Place(ctx, vm); pm == nil || pm.ID != 0 {
		t.Errorf("fallback failed: %v", pm)
	}
}

func TestThresholdPlaceBestFitUnderHi(t *testing.T) {
	d, ctx := thresholdDC(t, 3)
	th := NewThreshold()
	hostRunning(t, d.PM(1), 100, 4, 4) // 50%
	hostRunning(t, d.PM(2), 101, 2, 2) // 25%
	vm := cluster.NewVM(1, vector.New(1, 0.5), 1000, 1000, 0)
	if pm := th.Place(ctx, vm); pm == nil || pm.ID != 1 {
		t.Errorf("Place chose %v, want the most-loaded PM1", pm)
	}
}

func TestThresholdEvacuatesUnderloadedPM(t *testing.T) {
	d, ctx := thresholdDC(t, 3)
	th := NewThreshold()               // Lo = 0.25
	hostRunning(t, d.PM(0), 1, 1, 0.5) // 12.5% CPU -> underloaded
	hostRunning(t, d.PM(1), 2, 4, 2)   // 50%
	moves, err := th.Consolidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].VM != 1 || moves[0].To != 1 {
		t.Fatalf("moves = %+v, want VM1 -> PM1", moves)
	}
	if d.PM(0).VMCount() != 0 {
		t.Error("source not emptied")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestThresholdEvacuationIsAllOrNothing(t *testing.T) {
	d, ctx := thresholdDC(t, 2)
	th := &Threshold{Lo: 0.5, Hi: 0.9, MaxMoves: 10}
	// PM0 has two VMs at 25% total (underloaded under Lo=0.5); PM1 can
	// absorb one but not both without exceeding Hi.
	hostRunning(t, d.PM(0), 1, 1, 1)
	hostRunning(t, d.PM(0), 2, 1, 1)
	hostRunning(t, d.PM(1), 3, 6, 6) // 75%; +1 -> 87.5% <= 0.9, +2 -> 100% > Hi
	moves, err := th.Consolidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("partial evacuation happened: %+v", moves)
	}
	if d.PM(0).VMCount() != 2 {
		t.Error("source PM disturbed despite failed plan")
	}
}

func TestThresholdRelievesOverload(t *testing.T) {
	d, ctx := thresholdDC(t, 2)
	th := &Threshold{Lo: 0.1, Hi: 0.6, MaxMoves: 10}
	// PM0 at 87.5% CPU with distinct VMs; PM1 empty.
	hostRunning(t, d.PM(0), 1, 4, 1)
	hostRunning(t, d.PM(0), 2, 2, 1)
	hostRunning(t, d.PM(0), 3, 1, 1)
	moves, err := th.Consolidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no relief moves")
	}
	u := d.PM(0).Used[0] / 8
	if u > 0.6 {
		t.Errorf("PM0 still overloaded at %.2f", u)
	}
	// Smallest VM should have moved first.
	if moves[0].VM != 3 {
		t.Errorf("first relief move = VM%d, want the smallest VM3", moves[0].VM)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestThresholdRespectsBudget(t *testing.T) {
	d, ctx := thresholdDC(t, 4)
	th := &Threshold{Lo: 0.5, Hi: 0.9, MaxMoves: 1}
	hostRunning(t, d.PM(0), 1, 1, 0.5)
	hostRunning(t, d.PM(1), 2, 1, 0.5)
	hostRunning(t, d.PM(2), 3, 4, 2)
	moves, err := th.Consolidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) > 1 {
		t.Errorf("budget exceeded: %d moves", len(moves))
	}
}

func TestThresholdConsolidateValidates(t *testing.T) {
	_, ctx := thresholdDC(t, 1)
	th := &Threshold{Lo: 0.9, Hi: 0.5, MaxMoves: 1}
	if _, err := th.Consolidate(ctx); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestThresholdByName(t *testing.T) {
	p, err := ByName("threshold", 1)
	if err != nil || p.Name() != "threshold" {
		t.Errorf("ByName = %v, %v", p, err)
	}
}

func TestBottleneck(t *testing.T) {
	if got := bottleneck(vector.New(4, 2), vector.New(8, 8)); got != 0.5 {
		t.Errorf("bottleneck = %g, want 0.5", got)
	}
	if got := bottleneck(vector.New(0, 6), vector.New(8, 8)); got != 0.75 {
		t.Errorf("bottleneck = %g, want 0.75", got)
	}
	if got := bottleneck(vector.New(1, 1), vector.New(8, 0)); got != 0.125 {
		t.Errorf("zero-cap dimension should be skipped: %g", got)
	}
}
