package policy

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vector"
)

// Threshold is a watermark-based dynamic consolidation baseline in the
// style the paper attributes to Goiri et al. [21] and contrasts itself
// against: instead of a per-(VM, PM) probability matrix, two workload-
// intensity thresholds drive decisions. A PM is overloaded when its
// bottleneck utilization exceeds Hi and underloaded below Lo; placements
// avoid pushing hosts past Hi, and consolidation evacuates underloaded
// hosts whose VMs all fit elsewhere, then relieves overloaded hosts.
//
// Utilization here is the bottleneck (max per-resource) fraction — the
// conventional watermark metric — unlike the scheme's product utilization.
type Threshold struct {
	// Lo and Hi are the under/overload watermarks in (0, 1], Lo < Hi.
	Lo, Hi float64

	// MaxMoves caps migrations per consolidation pass.
	MaxMoves int
}

// NewThreshold returns the baseline with conventional watermarks
// (25% / 90%) and the same per-pass migration budget as the dynamic
// scheme's default.
func NewThreshold() *Threshold {
	return &Threshold{Lo: 0.25, Hi: 0.90, MaxMoves: core.DefaultParams().MIGRound}
}

// Validate checks the watermarks.
func (t *Threshold) Validate() error {
	if !(t.Lo > 0 && t.Lo < t.Hi && t.Hi <= 1) {
		return fmt.Errorf("policy: thresholds need 0 < Lo < Hi <= 1, got %g/%g", t.Lo, t.Hi)
	}
	if t.MaxMoves <= 0 {
		return fmt.Errorf("policy: threshold MaxMoves must be positive")
	}
	return nil
}

// Name implements Placer.
func (*Threshold) Name() string { return "threshold" }

// bottleneck returns the max per-resource utilization of used within cap.
func bottleneck(used, cap vector.V) float64 {
	m := 0.0
	for k := range used {
		if cap[k] <= vector.Epsilon {
			continue
		}
		if f := used[k] / cap[k]; f > m {
			m = f
		}
	}
	return m
}

func (t *Threshold) postUtil(pm *cluster.PM, demand vector.V) float64 {
	return bottleneck(pm.Used.Add(demand), pm.Class.Capacity)
}

// Place implements Placer: best-fit (highest post-placement bottleneck
// utilization) among hosts that stay at or below Hi; if none qualifies,
// any feasible host (QoS beats the watermark).
func (t *Threshold) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	var best, fallback *cluster.PM
	bestU, fallbackU := -1.0, -1.0
	for _, pm := range ctx.DC.ActivePMs() {
		if !pm.CanHost(vm.Demand) {
			continue
		}
		u := t.postUtil(pm, vm.Demand)
		if u <= t.Hi && u > bestU {
			bestU, best = u, pm
		}
		if u > fallbackU {
			fallbackU, fallback = u, pm
		}
	}
	if best != nil {
		return best
	}
	return fallback
}

// Alternatives implements Policy: feasible hosts in Place's preference
// order — watermark-respecting candidates first (post-placement
// bottleneck utilization descending), then over-watermark fallbacks —
// scored by that utilization.
func (t *Threshold) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	var within, over []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if !pm.CanHost(vm.Demand) {
			continue
		}
		u := t.postUtil(pm, vm.Demand)
		if u <= t.Hi {
			within = append(within, core.Placement{PM: pm, Probability: u})
		} else {
			over = append(over, core.Placement{PM: pm, Probability: u})
		}
	}
	sortPlacements(within, true)
	sortPlacements(over, true)
	return truncate(append(within, over...), k)
}

// SpareTarget implements Policy (baseline passthrough).
func (*Threshold) SpareTarget(_ *core.Context, baseline int) int { return baseline }

// Consolidate implements Placer: first evacuate fully-drainable
// underloaded hosts, then relieve overloaded hosts, within the MaxMoves
// budget.
func (t *Threshold) Consolidate(ctx *core.Context) ([]core.Move, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var moves []core.Move
	budget := t.MaxMoves

	moves, budget = t.evacuateUnderloaded(ctx, moves, budget)
	moves, _ = t.relieveOverloaded(ctx, moves, budget)
	return moves, nil
}

// evacuateUnderloaded empties hosts below Lo when every VM fits elsewhere
// without pushing any target past Hi. Candidates drain least-loaded first
// (cheapest wins first).
func (t *Threshold) evacuateUnderloaded(ctx *core.Context, moves []core.Move, budget int) ([]core.Move, int) {
	pms := ctx.DC.ActivePMs()
	var under []*cluster.PM
	for _, pm := range pms {
		if pm.State != cluster.PMOn || pm.VMCount() == 0 {
			continue
		}
		u := bottleneck(pm.Used, pm.Class.Capacity)
		if u > 0 && u < t.Lo {
			under = append(under, pm)
		}
	}
	sort.SliceStable(under, func(i, j int) bool {
		return bottleneck(under[i].Used, under[i].Class.Capacity) <
			bottleneck(under[j].Used, under[j].Class.Capacity)
	})

	for _, src := range under {
		vms := migratable(src)
		if len(vms) == 0 || len(vms) > budget {
			continue
		}
		// Plan all moves before committing: evacuation is all-or-nothing.
		plan := make([]*cluster.PM, 0, len(vms))
		ok := true
		for _, vm := range vms {
			dst := t.target(ctx, src, vm, plan, vms)
			if dst == nil {
				ok = false
				break
			}
			plan = append(plan, dst)
		}
		if !ok {
			continue
		}
		for i, vm := range vms {
			if err := moveVM(vm, src, plan[i]); err != nil {
				return moves, budget // accounting intact; stop the pass
			}
			moves = append(moves, core.Move{
				VM: vm.ID, From: src.ID, To: plan[i].ID,
				Gain: 0, Round: len(moves) + 1,
			})
			budget--
		}
		if budget <= 0 {
			break
		}
	}
	return moves, budget
}

// relieveOverloaded moves the smallest VMs off hosts above Hi until they
// drop back under the watermark.
func (t *Threshold) relieveOverloaded(ctx *core.Context, moves []core.Move, budget int) ([]core.Move, int) {
	for _, src := range ctx.DC.ActivePMs() {
		if budget <= 0 {
			break
		}
		if src.State != cluster.PMOn {
			continue
		}
		for budget > 0 && bottleneck(src.Used, src.Class.Capacity) > t.Hi {
			vms := migratable(src)
			if len(vms) == 0 {
				break
			}
			// Smallest VM first: cheapest relief.
			sort.SliceStable(vms, func(i, j int) bool {
				return vms[i].Demand.Sum() < vms[j].Demand.Sum()
			})
			vm := vms[0]
			dst := t.target(ctx, src, vm, nil, nil)
			if dst == nil {
				break
			}
			if err := moveVM(vm, src, dst); err != nil {
				break
			}
			moves = append(moves, core.Move{
				VM: vm.ID, From: src.ID, To: dst.ID,
				Gain: 0, Round: len(moves) + 1,
			})
			budget--
		}
	}
	return moves, budget
}

// target picks the most-loaded destination that stays at or below Hi after
// receiving vm, excluding src, accounting for already-planned sibling
// moves (planned[i] will receive siblings[i]).
func (t *Threshold) target(ctx *core.Context, src *cluster.PM, vm *cluster.VM, planned []*cluster.PM, siblings []*cluster.VM) *cluster.PM {
	var best *cluster.PM
	bestU := -1.0
	for _, pm := range ctx.DC.ActivePMs() {
		if pm == src || pm.State != cluster.PMOn {
			continue
		}
		extra := vm.Demand.Clone()
		for i, p := range planned {
			if p == pm {
				extra.AddInPlace(siblings[i].Demand)
			}
		}
		if !extra.Fits(pm.Used, pm.Class.Capacity) {
			continue
		}
		if u := bottleneck(pm.Used.Add(extra), pm.Class.Capacity); u <= t.Hi && u > bestU {
			bestU, best = u, pm
		}
	}
	return best
}

// migratable lists a PM's running VMs, sorted by ID.
func migratable(pm *cluster.PM) []*cluster.VM {
	var out []*cluster.VM
	for _, vm := range pm.VMs() {
		if vm.State == cluster.VMRunning {
			out = append(out, vm)
		}
	}
	return out
}

// moveVM migrates vm from src to dst, keeping the model consistent on
// failure.
func moveVM(vm *cluster.VM, src, dst *cluster.PM) error {
	if err := src.Evict(vm); err != nil {
		return err
	}
	if err := dst.Host(vm); err != nil {
		if rb := src.Host(vm); rb != nil {
			panic(fmt.Sprintf("policy: rollback failed: %v after %v", rb, err))
		}
		return err
	}
	vm.Migrations++
	return nil
}
