package policy

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vector"
)

// obsCtx attaches a decision-tracing observer to a test context and
// returns the decision buffer.
func obsCtx(ctx *core.Context) *bytes.Buffer {
	var dec bytes.Buffer
	o := obs.New()
	o.Decisions = obs.NewTracer(&dec)
	ctx.Obs = o
	return &dec
}

func TestByNameNewSchemes(t *testing.T) {
	for _, name := range []string{"overbook", "dynamic-adaptive"} {
		p, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, p.Name())
		}
		if _, ok := p.(Policy); !ok {
			t.Errorf("%s is not a full Policy", name)
		}
	}
	if _, err := ByName("bogus", 1); err == nil || !strings.Contains(err.Error(), "overbook") {
		t.Errorf("unknown-scheme error should list overbook: %v", err)
	}
}

func TestUnwrapHelpers(t *testing.T) {
	a := NewAdaptive()
	if d, ok := DynamicOf(a); !ok || d != a.Dynamic {
		t.Error("DynamicOf failed to unwrap Adaptive")
	}
	rec := NewRecorder(a, 0)
	if d, ok := DynamicOf(rec); !ok || d != a.Dynamic {
		t.Error("DynamicOf failed to unwrap Recorder(Adaptive)")
	}
	r := NewRandom(7)
	if got, ok := RandomOf(NewRecorder(r, 2)); !ok || got != r {
		t.Error("RandomOf failed to unwrap Recorder(Random)")
	}
	if _, ok := DynamicOf(FirstFit{}); ok {
		t.Error("DynamicOf found a Dynamic inside FirstFit")
	}
	rp := NewReplay(nil, NewDynamic())
	if _, ok := DynamicOf(rp); !ok {
		t.Error("DynamicOf failed to unwrap Replay")
	}
}

func TestAlternativesHeadMatchesPlace(t *testing.T) {
	// For deterministic schemes the top alternative must be Place's
	// choice — the decision log's invariant the counterfactual UI leans
	// on. (Random is exempt: its Alternatives are the candidate set, not
	// a prediction of the draw.)
	for _, p := range []Policy{FirstFit{}, BestFit{}, WorstFit{}, NewThreshold(), NewDynamic(), NewOverbook()} {
		_, ctx := dc(t)
		vm := newVM(1)
		alts := p.Alternatives(ctx, vm, 3)
		chosen := p.Place(ctx, vm)
		if chosen == nil {
			t.Fatalf("%s: no placement in the test fleet", p.Name())
		}
		if len(alts) == 0 || alts[0].PM.ID != chosen.ID {
			t.Errorf("%s: alternatives head %v, Place chose PM%d", p.Name(), alts, chosen.ID)
		}
	}
}

func TestRandomAlternativesDoNotConsumeRNG(t *testing.T) {
	r := NewRandom(42)
	_, ctx := dc(t)
	before := r.RNGState()
	r.Alternatives(ctx, newVM(1), 5)
	if r.RNGState() != before {
		t.Error("Alternatives advanced the RNG stream")
	}
}

func TestStockSpareTargetIsPassthrough(t *testing.T) {
	_, ctx := dc(t)
	for _, p := range []Policy{FirstFit{}, BestFit{}, WorstFit{}, NewRandom(1), NewThreshold(), NewDynamic(), NewAdaptive()} {
		if got := p.SpareTarget(ctx, 5); got != 5 {
			t.Errorf("%s.SpareTarget(5) = %d, want 5", p.Name(), got)
		}
	}
}

func TestOverbookValidateAndSpares(t *testing.T) {
	o := NewOverbook()
	if err := o.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	for _, bad := range []*Overbook{
		{Ratio: 0.9, Inflation: 1.5, Watermark: 0.9},
		{Ratio: 1.5, Inflation: 1.2, Watermark: 0.9},
		{Ratio: 1.2, Inflation: 1.5, Watermark: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	_, ctx := dc(t)
	if got := o.SpareTarget(ctx, 6); got != 5 { // ceil(6/1.2)
		t.Errorf("SpareTarget(6) = %d, want 5", got)
	}
	if got := o.SpareTarget(ctx, 0); got != 0 {
		t.Errorf("SpareTarget(0) = %d, want 0", got)
	}
	if got := (&Overbook{Ratio: 1, Inflation: 1, Watermark: 0.9}).SpareTarget(ctx, 4); got != 4 {
		t.Errorf("ratio-1 SpareTarget(4) = %d, want 4", got)
	}
}

func TestOverbookPlacementStaysPhysicallyFeasible(t *testing.T) {
	// Booked charges are >= actual demand (Inflation >= Ratio), so any
	// booked-feasible choice must also be physically feasible; the
	// fallback path covers the fully-booked case. Place a stream of VMs
	// until nothing fits and assert every choice could really host.
	o := NewOverbook()
	d, ctx := dc(t)
	ctx.Obs = obs.New()
	for id := cluster.VMID(1); id < 40; id++ {
		vm := newVM(id)
		pm := o.Place(ctx, vm)
		if pm == nil {
			break
		}
		if !pm.CanHost(vm.Demand) {
			t.Fatalf("overbook chose physically infeasible PM%d for VM%d", pm.ID, id)
		}
		if err := pm.Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
	}
	// With 1.25x booked charges the fleet must saturate in booked terms
	// before physical terms at some point, exercising the fallback; the
	// violation counter tracks watermark breaches.
	_ = d
}

func TestOverbookViolationAccounting(t *testing.T) {
	o := &Overbook{Ratio: 1, Inflation: 1, Watermark: 0.5}
	_, ctx := dc(t)
	ob := obs.New()
	ctx.Obs = ob
	vm := cluster.NewVM(1, vector.New(6, 6), 1000, 1000, 0)
	if pm := o.Place(ctx, vm); pm == nil {
		t.Fatal("no placement")
	}
	if got := ob.Reg.Counter("policy.overbook_violations").Value(); got != 1 {
		t.Errorf("violations = %d, want 1 (placement pushed past the 0.5 watermark)", got)
	}
}

func TestAdaptiveThresholdWalk(t *testing.T) {
	a := NewAdaptive()
	if got := a.Threshold(); got != 1.05 {
		t.Fatalf("initial threshold %g, want the dynamic default 1.05", got)
	}
	st := a.State()
	if st.Threshold != 1.05 || st.Idle != 0 {
		t.Errorf("State = %+v", st)
	}
	if err := a.RestoreState(AdaptiveState{Threshold: 1.10, Idle: 3}); err != nil {
		t.Fatal(err)
	}
	if a.Threshold() != 1.10 || a.idle != 3 {
		t.Errorf("restore did not land: cur=%g idle=%d", a.cur, a.idle)
	}
	if err := a.RestoreState(AdaptiveState{Threshold: 2.0}); err == nil {
		t.Error("RestoreState accepted an out-of-range threshold")
	}
	if err := a.RestoreState(AdaptiveState{Threshold: 1.05, Idle: -1}); err == nil {
		t.Error("RestoreState accepted a negative idle count")
	}

	// Empty passes relax the threshold after IdleWindow of them.
	_, ctx := dc(t)
	ctx.Obs = obs.New()
	if err := a.RestoreState(AdaptiveState{Threshold: 1.05}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.IdleWindow; i++ {
		if _, err := a.Consolidate(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Threshold(); got >= 1.05 {
		t.Errorf("threshold %g did not relax after %d idle passes", got, a.IdleWindow)
	}
	if a.idle != 0 {
		t.Errorf("idle counter %d not reset after a step", a.idle)
	}
}

func TestRecorderEmitsDecisions(t *testing.T) {
	_, ctx := dc(t)
	dec := obsCtx(ctx)
	rec := NewRecorder(BestFit{}, 2)
	vm := newVM(1)
	pm := rec.Place(ctx, vm)
	if pm == nil || pm.ID != 1 {
		t.Fatalf("recorder changed the decision: %v", pm)
	}
	if n := rec.SpareTarget(ctx, 3); n != 3 {
		t.Fatalf("recorder changed the spare target: %d", n)
	}
	if _, err := rec.Consolidate(ctx); err != nil { // zero moves: not recorded
		t.Fatal(err)
	}
	log, err := ParseDecisionLog(bytes.NewReader(dec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 {
		t.Fatalf("got %d records, want 2 (place + spare; empty pass unrecorded): %s", len(log), dec.String())
	}
	if log[0].Kind != KindPlace || log[0].VM != 1 || log[0].PM != 1 {
		t.Errorf("place record = %+v", log[0])
	}
	if len(log[0].Alts) == 0 || log[0].Alts[0].PM != 1 {
		t.Errorf("place alternatives = %+v", log[0].Alts)
	}
	if log[1].Kind != KindSpare || log[1].Tick != 0 || log[1].Baseline != 3 || log[1].Spares != 3 {
		t.Errorf("spare record = %+v", log[1])
	}

	// Counter state round-trips.
	st := rec.State()
	if st.Calls != 1 || st.Ticks != 1 {
		t.Errorf("State = %+v", st)
	}
	rec2 := NewRecorder(BestFit{}, 2)
	rec2.RestoreState(st)
	if rec2.call != 1 || rec2.tick != 1 {
		t.Errorf("RestoreState did not land: %d/%d", rec2.call, rec2.tick)
	}
}

func TestRecorderQueuedPlacement(t *testing.T) {
	_, ctx := dc(t)
	dec := obsCtx(ctx)
	rec := NewRecorder(FirstFit{}, 2)
	huge := cluster.NewVM(1, vector.New(100, 100), 10, 10, 0)
	if pm := rec.Place(ctx, huge); pm != nil {
		t.Fatalf("placed an impossible VM on %v", pm)
	}
	log, err := ParseDecisionLog(bytes.NewReader(dec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].PM != -1 || len(log[0].Alts) != 0 {
		t.Fatalf("queued record = %+v", log)
	}
}

func TestCaptureRestorePlacerState(t *testing.T) {
	if st := CaptureState(NewDynamic()); st != nil {
		t.Errorf("stateless placer captured %+v", st)
	}
	a := NewAdaptive()
	if err := a.RestoreState(AdaptiveState{Threshold: 1.12, Idle: 2}); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(a, 0)
	rec.call, rec.tick = 9, 4
	st := CaptureState(rec)
	if st == nil || st.Recorder == nil || st.Adaptive == nil {
		t.Fatalf("CaptureState = %+v", st)
	}
	if st.Recorder.Calls != 9 || st.Adaptive.Threshold != 1.12 {
		t.Errorf("captured %+v / %+v", st.Recorder, st.Adaptive)
	}
	fresh := NewRecorder(NewAdaptive(), 0)
	if err := RestoreState(fresh, st); err != nil {
		t.Fatal(err)
	}
	if fresh.call != 9 || fresh.tick != 4 {
		t.Errorf("recorder counters not restored: %d/%d", fresh.call, fresh.tick)
	}
	if got := fresh.P.(*Adaptive).Threshold(); got != 1.12 {
		t.Errorf("adaptive threshold not restored: %g", got)
	}
	// Lenient on mismatched chains and nil state.
	if err := RestoreState(FirstFit{}, st); err != nil {
		t.Errorf("mismatched chain errored: %v", err)
	}
	if err := RestoreState(fresh, nil); err != nil {
		t.Errorf("nil state errored: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, ctx := dc(t)
	alts := []core.Placement{
		{PM: ctx.DC.PM(0), Probability: 1.25},
		{PM: ctx.DC.PM(2), Probability: math.Inf(1)},
	}
	s := encodeAlts(alts)
	back, err := parseAlts(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].PM != 0 || back[0].Score != 1.25 ||
		back[1].PM != 2 || !math.IsInf(back[1].Score, 1) {
		t.Fatalf("alts %q decoded to %+v", s, back)
	}
	moves := []core.Move{
		{VM: 7, From: 1, To: 2, Gain: math.Inf(1), Round: 1},
		{VM: 9, From: 0, To: 1, Gain: 1.0625, Round: 2},
	}
	ms := encodeMoves(moves, [][]core.Placement{alts, nil})
	mback, err := parseMoves(ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(mback) != 2 || mback[0].VM != 7 || !math.IsInf(mback[0].Gain, 1) ||
		len(mback[0].Alts) != 2 || mback[1].Gain != 1.0625 || len(mback[1].Alts) != 0 {
		t.Fatalf("moves %q decoded to %+v", ms, mback)
	}
	for _, bad := range []string{"x", "1:2:3", "1:2:3:x:5"} {
		if _, err := parseMoves(bad); err == nil {
			t.Errorf("parseMoves accepted %q", bad)
		}
	}
	if _, err := parseAlts("nope"); err == nil {
		t.Error("parseAlts accepted a pair without =")
	}
}

func TestReplayReproducesAndOverrides(t *testing.T) {
	// Record a placement sequence with best-fit, then replay it on an
	// identical fleet: identical choices. Then replay with an override
	// and observe the counterfactual placement.
	record := func() ([]Decision, []cluster.PMID) {
		_, ctx := dc(t)
		dec := obsCtx(ctx)
		rec := NewRecorder(BestFit{}, 3)
		var chose []cluster.PMID
		for id := cluster.VMID(1); id <= 3; id++ {
			vm := newVM(id)
			pm := rec.Place(ctx, vm)
			if pm == nil {
				t.Fatal("unexpected queue")
			}
			chose = append(chose, pm.ID)
			if err := pm.Host(vm); err != nil {
				t.Fatal(err)
			}
			vm.State = cluster.VMRunning
			rec.SpareTarget(ctx, int(id))
		}
		log, err := ParseDecisionLog(bytes.NewReader(dec.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return log, chose
	}
	log, chose := record()

	rp := NewReplay(log, BestFit{})
	_, ctx := dc(t)
	ctx.Obs = obs.New()
	for i, id := range []cluster.VMID{1, 2, 3} {
		vm := newVM(id)
		pm := rp.Place(ctx, vm)
		if pm == nil || pm.ID != chose[i] {
			t.Fatalf("replay placed VM%d on %v, recorded PM%d", id, pm, chose[i])
		}
		if err := pm.Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
		if got := rp.SpareTarget(ctx, int(id)); got != int(id) {
			t.Fatalf("replay spare target %d, recorded %d", got, id)
		}
	}
	if rp.Diverged() || rp.Err() != nil {
		t.Fatalf("clean replay diverged: %v", rp.Err())
	}

	// Counterfactual: substitute alternative #1 of the first placement.
	if len(log[0].Alts) < 2 {
		t.Fatalf("first record has no alternative to substitute: %+v", log[0].Alts)
	}
	rp2 := NewReplay(log, BestFit{})
	rp2.Override = &ReplayOverride{Index: 0, Alt: 1}
	_, ctx2 := dc(t)
	ctx2.Obs = obs.New()
	pm := rp2.Place(ctx2, newVM(1))
	if pm == nil || pm.ID != log[0].Alts[1].PM {
		t.Fatalf("override placed on %v, want alternative PM%d", pm, log[0].Alts[1].PM)
	}
	if !rp2.Diverged() || rp2.Err() != nil {
		t.Errorf("override should diverge deliberately (err nil): %v / %v", rp2.Diverged(), rp2.Err())
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	_, ctx := dc(t)
	ctx.Obs = obs.New()
	// Wrong VM in the next record.
	rp := NewReplay([]Decision{{Kind: KindPlace, VM: 99, PM: 0}}, BestFit{})
	if pm := rp.Place(ctx, newVM(1)); pm == nil {
		t.Fatal("fallback did not place")
	}
	if !rp.Diverged() || rp.Err() == nil {
		t.Error("wrong-VM record did not flag divergence")
	}
	// Exhausted log.
	rp2 := NewReplay(nil, BestFit{})
	rp2.Place(ctx, newVM(2))
	if rp2.Err() == nil {
		t.Error("exhausted log did not flag divergence")
	}
	// Missing spare record is divergence (unlike a missing moves record).
	rp3 := NewReplay(nil, BestFit{})
	if got := rp3.SpareTarget(ctx, 2); got != 2 {
		t.Errorf("diverged spare target fell back to %d, want baseline 2", got)
	}
	if rp3.Err() == nil {
		t.Error("missing spare record did not flag divergence")
	}
	// Missing moves record is a recorded empty pass, NOT divergence.
	rp4 := NewReplay(nil, BestFit{})
	if moves, err := rp4.Consolidate(ctx); err != nil || len(moves) != 0 {
		t.Errorf("empty-pass replay = %v, %v", moves, err)
	}
	if rp4.Diverged() {
		t.Error("empty consolidation pass flagged divergence")
	}
}

func TestReplayAppliesRecordedMoves(t *testing.T) {
	d, ctx := dc(t)
	ctx.Obs = obs.New()
	// The filler VM (ID 100) lives on PM1; record a move sending it to
	// PM2 and replay it.
	log := []Decision{{
		Kind: KindMoves, Call: 0,
		Moves: []DecisionMove{{VM: 100, From: 1, To: 2, Round: 1, Gain: 1.5}},
	}}
	rp := NewReplay(log, NewDynamic())
	moves, err := rp.Consolidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].VM != 100 || moves[0].To != 2 || moves[0].Gain != 1.5 {
		t.Fatalf("replayed moves = %+v", moves)
	}
	if !d.PM(2).HasVM(100) || d.PM(1).HasVM(100) {
		t.Error("move was not applied to the datacenter")
	}
	// A second pass has no record: empty.
	if moves, err := rp.Consolidate(ctx); err != nil || len(moves) != 0 {
		t.Errorf("second pass = %v, %v", moves, err)
	}
	// A move whose VM is not on the recorded source errors loudly.
	rp2 := NewReplay(log, NewDynamic())
	if _, err := rp2.Consolidate(ctx); err == nil {
		t.Error("stale move record applied silently")
	}
}

func TestParseDecisionLogRejectsDamage(t *testing.T) {
	for _, bad := range []string{
		`{"v":1,"seq":0,"t":0,"event":"mystery"}`,
		`{"v":1,"seq":0,"t":0,"event":"decision_place","vm":1,"pm":0,"alts":"x"}`,
		`{"v":1,"seq":0,"t":0,"event":"decision_moves","call":0,"moves":""}`,
		`not json`,
	} {
		if _, err := ParseDecisionLog(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseDecisionLog accepted %q", bad)
		}
	}
	log, err := ParseDecisionLog(strings.NewReader(""))
	if err != nil || len(log) != 0 {
		t.Errorf("empty log = %v, %v", log, err)
	}
}
