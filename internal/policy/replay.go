package policy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
)

// DecisionKind discriminates parsed decision records.
type DecisionKind int

// The three decision points a Recorder logs.
const (
	KindPlace DecisionKind = iota
	KindMoves
	KindSpare
)

// DecisionAlt is one ranked rejected-or-chosen alternative.
type DecisionAlt struct {
	PM    cluster.PMID
	Score float64
}

// DecisionMove is one recorded consolidation move with its column
// alternatives (empty for schemes outside the dynamic family).
type DecisionMove struct {
	VM       cluster.VMID
	From, To cluster.PMID
	Round    int
	Gain     float64
	Alts     []DecisionAlt
}

// Decision is one parsed decision record.
type Decision struct {
	Kind DecisionKind
	Seq  uint64
	T    float64

	// KindPlace: the placed VM, chosen PM (-1 = queued), and ranked
	// alternatives.
	VM   cluster.VMID
	PM   cluster.PMID
	Alts []DecisionAlt

	// KindMoves: the Consolidate invocation index and its moves.
	Call  uint64
	Moves []DecisionMove

	// KindSpare: the SpareTarget invocation index, controller baseline,
	// and recorded target.
	Tick     uint64
	Baseline int
	Spares   int
}

// decLine is the JSON shape of one decision-stream line.
type decLine struct {
	Seq      uint64  `json:"seq"`
	T        float64 `json:"t"`
	Event    string  `json:"event"`
	VM       int64   `json:"vm"`
	PM       int64   `json:"pm"`
	Alts     string  `json:"alts"`
	Call     uint64  `json:"call"`
	Moves    string  `json:"moves"`
	Tick     uint64  `json:"tick"`
	Baseline int64   `json:"baseline"`
	Spares   int64   `json:"spares"`
}

// ParseDecisionLog reads a Recorder decision stream (JSONL) back into
// decisions, in order. Unknown events and malformed payloads are
// positional errors, not skips — a damaged log must not replay as a
// shorter clean one.
func ParseDecisionLog(r io.Reader) ([]Decision, error) {
	var out []Decision
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var dl decLine
		if err := json.Unmarshal([]byte(line), &dl); err != nil {
			return nil, fmt.Errorf("policy: decision log line %d: %w", lineNo, err)
		}
		d := Decision{Seq: dl.Seq, T: dl.T}
		switch dl.Event {
		case "decision_place":
			d.Kind = KindPlace
			d.VM = cluster.VMID(dl.VM)
			d.PM = cluster.PMID(dl.PM)
			alts, err := parseAlts(dl.Alts)
			if err != nil {
				return nil, fmt.Errorf("policy: decision log line %d: %w", lineNo, err)
			}
			d.Alts = alts
		case "decision_moves":
			d.Kind = KindMoves
			d.Call = dl.Call
			moves, err := parseMoves(dl.Moves)
			if err != nil {
				return nil, fmt.Errorf("policy: decision log line %d: %w", lineNo, err)
			}
			if len(moves) == 0 {
				return nil, fmt.Errorf("policy: decision log line %d: decision_moves with no moves", lineNo)
			}
			d.Moves = moves
		case "decision_spare":
			d.Kind = KindSpare
			d.Tick = dl.Tick
			d.Baseline = int(dl.Baseline)
			d.Spares = int(dl.Spares)
		default:
			return nil, fmt.Errorf("policy: decision log line %d: unknown event %q", lineNo, dl.Event)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: decision log: %w", err)
	}
	return out, nil
}

// parseAlts decodes encodeAlts' "pm=score,pm=score" form.
func parseAlts(s string) ([]DecisionAlt, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]DecisionAlt, 0, len(parts))
	for _, p := range parts {
		id, score, ok := strings.Cut(p, "=")
		if !ok {
			return nil, fmt.Errorf("malformed alternative %q", p)
		}
		pm, err := strconv.ParseInt(id, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed alternative PM %q: %v", id, err)
		}
		v, err := strconv.ParseFloat(score, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed alternative score %q: %v", score, err)
		}
		out = append(out, DecisionAlt{PM: cluster.PMID(pm), Score: v})
	}
	return out, nil
}

// parseMoves decodes encodeMoves' "vm:from:to:round:gain[@alts]|..."
// form.
func parseMoves(s string) ([]DecisionMove, error) {
	if s == "" {
		return nil, nil
	}
	entries := strings.Split(s, "|")
	out := make([]DecisionMove, 0, len(entries))
	for _, e := range entries {
		body, altStr, hasAlts := strings.Cut(e, "@")
		fields := strings.Split(body, ":")
		if len(fields) != 5 {
			return nil, fmt.Errorf("malformed move %q", e)
		}
		var mv DecisionMove
		vm, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed move VM %q: %v", fields[0], err)
		}
		from, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed move source %q: %v", fields[1], err)
		}
		to, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed move target %q: %v", fields[2], err)
		}
		round, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("malformed move round %q: %v", fields[3], err)
		}
		gain, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed move gain %q: %v", fields[4], err)
		}
		mv.VM, mv.From, mv.To = cluster.VMID(vm), cluster.PMID(from), cluster.PMID(to)
		mv.Round, mv.Gain = round, gain
		if hasAlts {
			if mv.Alts, err = parseAlts(altStr); err != nil {
				return nil, fmt.Errorf("malformed move alternatives %q: %v", altStr, err)
			}
		}
		out = append(out, mv)
	}
	return out, nil
}

// ReplayOverride substitutes one recorded placement: at decision log
// index Index (a KindPlace record), pick ranked alternative Alt instead
// of the recorded choice. Everything after the substitution runs live
// on the Fallback policy — that is the counterfactual.
type ReplayOverride struct {
	// Index is the record's position in the parsed decision log.
	Index int

	// Alt indexes the record's alternative list.
	Alt int
}

// Replay is a Policy that re-executes a recorded decision log verbatim:
// placements return the recorded PM, consolidation passes re-apply the
// recorded moves, spare targets return the recorded count. With no
// Override, driving the same workload yields a byte-identical run trace
// (the policy-audit gate). With an Override, the run follows the log up
// to the substitution and the Fallback policy afterward.
//
// Any mismatch between the log and the live run — wrong VM, wrong
// record kind, exhausted log — marks the replay diverged: subsequent
// decisions fall through to Fallback and Err reports the first reason.
type Replay struct {
	// Log is the parsed decision log.
	Log []Decision

	// Fallback decides everything after divergence (normally the same
	// scheme that recorded the log).
	Fallback Policy

	// Override, when set, substitutes one recorded placement.
	Override *ReplayOverride

	pos        int
	call, tick uint64
	diverged   bool
	err        error
}

// NewReplay returns a Replay over log with the given fallback.
func NewReplay(log []Decision, fallback Policy) *Replay {
	return &Replay{Log: log, Fallback: fallback}
}

// Name implements Placer: the replayed scheme's name, so run_start
// events (and scheme-fingerprinted checkpoints) match the original.
func (rp *Replay) Name() string { return rp.Fallback.Name() }

// Unwrap implements Unwrapper, exposing the fallback scheme to the
// simulator's kernel-worker and audit integrations.
func (rp *Replay) Unwrap() Placer { return rp.Fallback }

// Diverged reports whether the live run left the recorded log, and Err
// returns the first divergence reason (nil for a deliberate Override
// substitution).
func (rp *Replay) Diverged() bool { return rp.diverged }

// Err returns the first unexpected-divergence reason, if any.
func (rp *Replay) Err() error { return rp.err }

// divergef marks the replay diverged with a reason (keeping the first).
func (rp *Replay) divergef(format string, args ...any) {
	rp.diverged = true
	if rp.err == nil {
		rp.err = fmt.Errorf(format, args...)
	}
}

// Place implements Placer.
func (rp *Replay) Place(ctx *core.Context, vm *cluster.VM) *cluster.PM {
	if rp.diverged {
		return rp.Fallback.Place(ctx, vm)
	}
	if rp.pos >= len(rp.Log) {
		rp.divergef("policy: replay: log exhausted at placement of VM %d", vm.ID)
		return rp.Fallback.Place(ctx, vm)
	}
	d := rp.Log[rp.pos]
	if d.Kind != KindPlace || d.VM != vm.ID {
		rp.divergef("policy: replay: record %d is not the placement of VM %d", rp.pos, vm.ID)
		return rp.Fallback.Place(ctx, vm)
	}
	idx := rp.pos
	rp.pos++
	if ov := rp.Override; ov != nil && ov.Index == idx {
		if ov.Alt < 0 || ov.Alt >= len(d.Alts) {
			rp.divergef("policy: replay: record %d has no alternative %d (have %d)", idx, ov.Alt, len(d.Alts))
			return rp.Fallback.Place(ctx, vm)
		}
		rp.diverged = true // deliberate: the counterfactual begins here
		alt := ctx.DC.PM(d.Alts[ov.Alt].PM)
		if alt == nil || !feasible(alt, vm.Demand) {
			// The alternative was feasible when recorded but the
			// substitution context is identical up to here, so this only
			// fires on a stale override index; surface it.
			rp.divergef("policy: replay: alternative PM %d cannot host VM %d", d.Alts[ov.Alt].PM, vm.ID)
			return rp.Fallback.Place(ctx, vm)
		}
		return alt
	}
	if d.PM < 0 {
		return nil
	}
	pm := ctx.DC.PM(d.PM)
	if pm == nil || !feasible(pm, vm.Demand) {
		rp.divergef("policy: replay: recorded PM %d cannot host VM %d", d.PM, vm.ID)
		return rp.Fallback.Place(ctx, vm)
	}
	return pm
}

// Consolidate implements Placer: re-apply the recorded pass keyed by
// the invocation counter. A pass with no matching record is a recorded
// empty pass (zero-move passes are not logged), not divergence.
func (rp *Replay) Consolidate(ctx *core.Context) ([]core.Move, error) {
	if rp.diverged {
		return rp.Fallback.Consolidate(ctx)
	}
	call := rp.call
	rp.call++
	if rp.pos >= len(rp.Log) || rp.Log[rp.pos].Kind != KindMoves || rp.Log[rp.pos].Call != call {
		return nil, nil
	}
	d := rp.Log[rp.pos]
	rp.pos++
	moves := make([]core.Move, 0, len(d.Moves))
	for _, mv := range d.Moves {
		src, dst := ctx.DC.PM(mv.From), ctx.DC.PM(mv.To)
		if src == nil || dst == nil {
			return moves, fmt.Errorf("policy: replay: move of VM %d references unknown PM %d->%d", mv.VM, mv.From, mv.To)
		}
		var vm *cluster.VM
		for _, v := range src.VMs() {
			if v.ID == mv.VM {
				vm = v
				break
			}
		}
		if vm == nil {
			return moves, fmt.Errorf("policy: replay: VM %d not on recorded source PM %d", mv.VM, mv.From)
		}
		if err := moveVM(vm, src, dst); err != nil {
			return moves, fmt.Errorf("policy: replay: move of VM %d to PM %d: %w", mv.VM, mv.To, err)
		}
		moves = append(moves, core.Move{
			VM: mv.VM, From: mv.From, To: mv.To, Gain: mv.Gain, Round: mv.Round,
		})
	}
	return moves, nil
}

// Alternatives implements Policy (the log has no live column to rank;
// delegate to the fallback).
func (rp *Replay) Alternatives(ctx *core.Context, vm *cluster.VM, k int) []core.Placement {
	return rp.Fallback.Alternatives(ctx, vm, k)
}

// SpareTarget implements Policy: spare records exist for every call, so
// a missing or mismatched one is divergence.
func (rp *Replay) SpareTarget(ctx *core.Context, baseline int) int {
	if rp.diverged {
		return rp.Fallback.SpareTarget(ctx, baseline)
	}
	tick := rp.tick
	rp.tick++
	if rp.pos >= len(rp.Log) || rp.Log[rp.pos].Kind != KindSpare || rp.Log[rp.pos].Tick != tick {
		rp.divergef("policy: replay: no spare record for tick %d", tick)
		return rp.Fallback.SpareTarget(ctx, baseline)
	}
	d := rp.Log[rp.pos]
	rp.pos++
	if d.Baseline != baseline {
		rp.divergef("policy: replay: spare tick %d baseline %d, recorded %d", tick, baseline, d.Baseline)
	}
	return d.Spares
}
