package policy

import (
	"fmt"

	"repro/internal/core"
)

// Adaptive wraps the dynamic scheme with a self-tuning MIG_threshold:
// when a consolidation pass exhausts its full MIG_round budget the
// threshold is raised (migration is too eager — demand more gain per
// move), and after IdleWindow consecutive empty passes it is lowered
// back toward Lo (opportunities are being left on the table). The
// threshold walks in Step increments clamped to [Lo, Hi].
//
// Everything else — arrival placement, the Algorithm 1 loop, alternative
// ranking — is the embedded *Dynamic's; Unwrap exposes it so the
// simulator's kernel-worker and audit integrations keep working.
type Adaptive struct {
	*Dynamic

	// Lo and Hi clamp the threshold walk; both must exceed 1 (the
	// Params validity floor) with Lo <= Hi.
	Lo, Hi float64

	// Step is the per-adjustment increment.
	Step float64

	// IdleWindow is how many consecutive zero-move passes trigger a
	// downward step.
	IdleWindow int

	// cur is the live threshold; idle counts consecutive empty passes.
	// Both are checkpointed via AdaptiveState so a resumed run continues
	// the walk exactly.
	cur  float64
	idle int
}

// NewAdaptive returns the variant with the paper's default dynamic
// scheme inside, walking the threshold in 0.01 steps between 1.02 and
// 1.25 (around the paper's 1.05 default, which is the starting point),
// relaxing after 8 idle passes.
func NewAdaptive() *Adaptive {
	d := NewDynamic()
	return &Adaptive{
		Dynamic:    d,
		Lo:         1.02,
		Hi:         1.25,
		Step:       0.01,
		IdleWindow: 8,
		cur:        d.Params.MIGThreshold,
	}
}

// Name implements Placer.
func (*Adaptive) Name() string { return "dynamic-adaptive" }

// Unwrap implements Unwrapper.
func (a *Adaptive) Unwrap() Placer { return a.Dynamic }

// Threshold returns the live MIG_threshold (for reports and tests).
func (a *Adaptive) Threshold() float64 { return a.cur }

// Consolidate implements Placer: run the dynamic pass at the live
// threshold, then adjust it from the outcome.
func (a *Adaptive) Consolidate(ctx *core.Context) ([]core.Move, error) {
	a.Params.MIGThreshold = a.cur
	moves, err := a.Dynamic.Consolidate(ctx)
	if err != nil {
		return moves, err
	}
	switch {
	case len(moves) >= a.Params.MIGRound:
		// Budget exhausted: the threshold admits too many moves.
		if a.cur = a.cur + a.Step; a.cur > a.Hi {
			a.cur = a.Hi
		}
		a.idle = 0
		ctx.Obs.Add("policy.adaptive_raise", 1)
	case len(moves) == 0:
		if a.idle++; a.idle >= a.IdleWindow {
			if a.cur = a.cur - a.Step; a.cur < a.Lo {
				a.cur = a.Lo
			}
			a.idle = 0
			ctx.Obs.Add("policy.adaptive_lower", 1)
		}
	default:
		a.idle = 0
	}
	return moves, nil
}

// AdaptiveState is the checkpointed threshold walk.
type AdaptiveState struct {
	// Threshold is the live MIG_threshold at capture time.
	Threshold float64 `json:"threshold"`

	// Idle is the consecutive-empty-pass count at capture time.
	Idle int `json:"idle"`
}

// State captures the walk for a checkpoint.
func (a *Adaptive) State() AdaptiveState {
	return AdaptiveState{Threshold: a.cur, Idle: a.idle}
}

// RestoreState reloads a checkpointed walk so a resumed run continues
// the threshold trajectory exactly.
func (a *Adaptive) RestoreState(st AdaptiveState) error {
	if !(st.Threshold >= a.Lo && st.Threshold <= a.Hi) {
		return fmt.Errorf("policy: adaptive threshold %g outside [%g, %g]", st.Threshold, a.Lo, a.Hi)
	}
	if st.Idle < 0 {
		return fmt.Errorf("policy: adaptive idle count %d negative", st.Idle)
	}
	a.cur, a.idle = st.Threshold, st.Idle
	return nil
}
