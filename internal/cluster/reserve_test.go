package cluster

import (
	"testing"

	"repro/internal/vector"
)

func TestReserveRelease(t *testing.T) {
	pm := NewPM(0, testClass()) // cap (8,8)
	pm.State = PMOn
	if err := pm.Reserve(vector.New(3, 2)); err != nil {
		t.Fatal(err)
	}
	if !pm.Used.Equal(vector.New(3, 2)) || !pm.Reserved().Equal(vector.New(3, 2)) {
		t.Errorf("after reserve: used=%v reserved=%v", pm.Used, pm.Reserved())
	}
	if pm.Idle() {
		t.Error("reserved PM reported idle")
	}
	pm.Release(vector.New(3, 2))
	if !pm.Used.IsZero() || !pm.Reserved().IsZero() {
		t.Errorf("after release: used=%v reserved=%v", pm.Used, pm.Reserved())
	}
	if !pm.Idle() {
		t.Error("released PM should be idle")
	}
}

func TestReserveRejectsOverflow(t *testing.T) {
	pm := NewPM(0, testClass())
	pm.State = PMOn
	vm := NewVM(1, vector.New(6, 6), 10, 10, 0)
	if err := pm.Host(vm); err != nil {
		t.Fatal(err)
	}
	if err := pm.Reserve(vector.New(3, 3)); err == nil {
		t.Error("overflowing reservation accepted")
	}
	if err := pm.Reserve(vector.New(-1, 0)); err == nil {
		t.Error("negative reservation accepted")
	}
}

func TestReleaseExcessPanics(t *testing.T) {
	pm := NewPM(0, testClass())
	pm.State = PMOn
	if err := pm.Reserve(vector.New(1, 1)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	pm.Release(vector.New(2, 1))
}

func TestReservationBlocksPlacement(t *testing.T) {
	pm := NewPM(0, testClass()) // cap (8,8)
	pm.State = PMOn
	if err := pm.Reserve(vector.New(6, 6)); err != nil {
		t.Fatal(err)
	}
	if pm.CanHost(vector.New(4, 1)) {
		t.Error("reservation did not block placement")
	}
	if !pm.CanHost(vector.New(2, 2)) {
		t.Error("remaining space wrongly blocked")
	}
}

func TestReservationInvariants(t *testing.T) {
	d := TableIIFleet()
	p := d.PM(0)
	p.State = PMOn
	if err := p.Host(NewVM(1, vector.New(2, 1), 10, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(vector.New(1, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Errorf("reservations broke invariants: %v", err)
	}
	// Corrupt the reservation accounting.
	p.reserved[0] = 5
	if err := d.CheckInvariants(); err == nil {
		t.Error("reservation corruption not detected")
	}
}

func TestReservedReturnsCopy(t *testing.T) {
	pm := NewPM(0, testClass())
	pm.State = PMOn
	if err := pm.Reserve(vector.New(1, 1)); err != nil {
		t.Fatal(err)
	}
	r := pm.Reserved()
	r[0] = 99
	if pm.Reserved()[0] == 99 {
		t.Error("Reserved aliases internal state")
	}
}
