// Package cluster models the virtualized data center the placement scheme
// manages: virtual machines (VM requests), physical machines (PMs) with
// heterogeneous capacities and virtualization overheads, and the Datacenter
// aggregate that tracks the VM/PM mapping.
//
// The models follow Section III.A and Table II of the paper: a VM request is
// a K-dimensional resource demand plus an estimated runtime, a PM is a
// K-dimensional capacity plus creation/migration/on-off overheads, power
// constants, and a reliability probability.
package cluster

import (
	"fmt"

	"repro/internal/vector"
)

// VMID identifies a VM request within a simulation run.
type VMID int

// NoVM is the zero-value "no such VM" sentinel.
const NoVM VMID = -1

// VMState is the lifecycle state of a VM request.
type VMState int

// VM lifecycle states. Transitions:
//
//	Queued -> Creating -> Running -> Finished
//	Running -> Migrating -> Running
//	Running/Creating -> Queued (host failure re-queues the VM)
const (
	VMQueued VMState = iota
	VMCreating
	VMRunning
	VMMigrating
	VMFinished
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	switch s {
	case VMQueued:
		return "queued"
	case VMCreating:
		return "creating"
	case VMRunning:
		return "running"
	case VMMigrating:
		return "migrating"
	case VMFinished:
		return "finished"
	default:
		return fmt.Sprintf("VMState(%d)", int(s))
	}
}

// VM is a virtual machine request. In the paper's notation a request i is
// the K+1-dimensional vector R_i whose first K components are resource
// demands and whose last component is the user-estimated runtime; here the
// demands live in Demand and the runtime estimate in EstimatedRuntime.
type VM struct {
	ID     VMID
	Demand vector.V // resource demands R_i(1..K)

	// EstimatedRuntime is the runtime the user submitted with the
	// request, R_i(K+1), in seconds. The scheme's virtualization-overhead
	// factor and departure prediction both consume this estimate.
	EstimatedRuntime float64

	// ActualRuntime is the true execution time in seconds, revealed to
	// the simulator (but never to the placement scheme) by the trace.
	ActualRuntime float64

	// SubmitTime is when the request entered the system (seconds since
	// simulation start).
	SubmitTime float64

	// StartTime is when the VM finished creation and began executing;
	// meaningful once the VM has reached VMRunning.
	StartTime float64

	// FinishTime is when the VM departed; meaningful once VMFinished.
	FinishTime float64

	// State is the current lifecycle state.
	State VMState

	// Host is the PM currently hosting (or creating) the VM, or NoPM.
	Host PMID

	// Migrations counts completed live migrations of this VM.
	Migrations int
}

// NewVM returns a queued VM request. It panics if the demand vector is
// invalid or the runtimes are negative; requests come from the workload
// layer which validates trace input, so malformed values here are bugs.
func NewVM(id VMID, demand vector.V, estimatedRuntime, actualRuntime, submitTime float64) *VM {
	if err := demand.Validate(); err != nil {
		panic(fmt.Sprintf("cluster: VM %d demand: %v", id, err))
	}
	if estimatedRuntime < 0 || actualRuntime < 0 || submitTime < 0 {
		panic(fmt.Sprintf("cluster: VM %d has negative time (est=%g act=%g submit=%g)",
			id, estimatedRuntime, actualRuntime, submitTime))
	}
	return &VM{
		ID:               id,
		Demand:           demand.Clone(),
		EstimatedRuntime: estimatedRuntime,
		ActualRuntime:    actualRuntime,
		SubmitTime:       submitTime,
		State:            VMQueued,
		Host:             NoPM,
	}
}

// RemainingEstimate returns the VM's estimated remaining runtime T_i^re at
// time now: the submitted estimate minus elapsed execution time, floored at
// zero. Before the VM starts running the full estimate remains.
func (v *VM) RemainingEstimate(now float64) float64 {
	switch v.State {
	case VMQueued, VMCreating:
		return v.EstimatedRuntime
	case VMFinished:
		return 0
	default:
		rem := v.EstimatedRuntime - (now - v.StartTime)
		if rem < 0 {
			return 0
		}
		return rem
	}
}

// WaitTime returns how long the VM waited in the queue before starting, or
// the wait so far for a still-queued VM at time now.
func (v *VM) WaitTime(now float64) float64 {
	if v.State == VMQueued {
		return now - v.SubmitTime
	}
	w := v.StartTime - v.SubmitTime
	if w < 0 {
		return 0
	}
	return w
}

// Placed reports whether the VM currently occupies resources on some PM
// (creating, running, or migrating).
func (v *VM) Placed() bool {
	return v.State == VMCreating || v.State == VMRunning || v.State == VMMigrating
}

// String implements fmt.Stringer.
func (v *VM) String() string {
	return fmt.Sprintf("VM%d{%s demand=%v est=%gs host=%d}",
		v.ID, v.State, v.Demand, v.EstimatedRuntime, v.Host)
}
