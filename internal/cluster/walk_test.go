package cluster

import (
	"errors"
	"testing"

	"repro/internal/vector"
)

func walkFixture(t *testing.T) *Datacenter {
	t.Helper()
	fast := FastClass
	dc := MustNew(Config{
		RMin:   TableIIRMin.Clone(),
		Groups: []Group{{Class: &fast, Count: 3}},
	})
	for _, pm := range dc.PMs() {
		pm.State = PMOn
	}
	// Host out of ID order to prove the walk sorts by ID, not insertion.
	for _, pair := range [][2]int{{2, 5}, {0, 3}, {2, 1}, {1, 4}} {
		vm := NewVM(VMID(pair[1]), vector.New(1, 0.5), 100, 100, 0)
		if err := dc.PM(PMID(pair[0])).Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = VMRunning
	}
	return dc
}

func TestWalkPlacementsDeterministicOrder(t *testing.T) {
	dc := walkFixture(t)
	var got [][2]int
	err := dc.WalkPlacements(func(pm *PM, vm *VM) error {
		got = append(got, [2]int{int(pm.ID), int(vm.ID)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 3}, {1, 4}, {2, 1}, {2, 5}}
	if len(got) != len(want) {
		t.Fatalf("visited %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestWalkPlacementsStopsOnError(t *testing.T) {
	dc := walkFixture(t)
	boom := errors.New("boom")
	visits := 0
	err := dc.WalkPlacements(func(pm *PM, vm *VM) error {
		visits++
		if visits == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if visits != 2 {
		t.Fatalf("visited %d pairs after error, want 2", visits)
	}
}

func TestVMsByState(t *testing.T) {
	dc := walkFixture(t)
	// Flip one VM to creating, one to migrating.
	flipped := 0
	_ = dc.WalkPlacements(func(pm *PM, vm *VM) error {
		switch flipped {
		case 0:
			vm.State = VMCreating
		case 1:
			vm.State = VMMigrating
		}
		flipped++
		return nil
	})
	byState := dc.VMsByState()
	if byState[VMCreating] != 1 || byState[VMMigrating] != 1 || byState[VMRunning] != 2 {
		t.Fatalf("VMsByState = %v, want 1 creating, 1 migrating, 2 running", byState)
	}
	if byState[VMQueued] != 0 || byState[VMFinished] != 0 {
		t.Fatalf("VMsByState reports unhosted states: %v", byState)
	}
}
