package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func testClass() *PMClass {
	c := FastClass // copy
	return &c
}

func TestPMClassValidate(t *testing.T) {
	good := testClass()
	if err := good.Validate(); err != nil {
		t.Fatalf("Table II fast class invalid: %v", err)
	}
	bad := []*PMClass{
		{},
		{Name: "x", Capacity: vector.New(-1)},
		{Name: "x", Capacity: vector.Zero(2)},
		{Name: "x", Capacity: vector.New(1), CreationTime: -1, Reliability: 1},
		{Name: "x", Capacity: vector.New(1), ActivePower: 100, IdlePower: 200, Reliability: 1},
		{Name: "x", Capacity: vector.New(1), Reliability: 0},
		{Name: "x", Capacity: vector.New(1), Reliability: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad class %d accepted", i)
		}
	}
}

func TestMaxMinimalVMs(t *testing.T) {
	fast := testClass() // 8 cores, 8 GB
	if got := fast.MaxMinimalVMs(vector.New(1, 0.25)); got != 8 {
		t.Errorf("fast W_j = %d, want 8 (CPU-bound)", got)
	}
	slow := SlowClass
	if got := slow.MaxMinimalVMs(vector.New(1, 0.25)); got != 4 {
		t.Errorf("slow W_j = %d, want 4", got)
	}
	if got := fast.MaxMinimalVMs(vector.New(16, 1)); got != 0 {
		t.Errorf("oversized rmin W_j = %d, want 0", got)
	}
	if got := fast.MaxMinimalVMs(vector.Zero(2)); got != 1 {
		t.Errorf("zero rmin W_j = %d, want 1", got)
	}
}

func TestPMHostEvict(t *testing.T) {
	pm := NewPM(0, testClass())
	pm.State = PMOn
	vm := NewVM(1, vector.New(2, 1), 100, 100, 0)

	if err := pm.Host(vm); err != nil {
		t.Fatalf("Host: %v", err)
	}
	if vm.Host != 0 || !pm.HasVM(1) || pm.VMCount() != 1 {
		t.Error("Host bookkeeping wrong")
	}
	if !pm.Used.Equal(vector.New(2, 1)) {
		t.Errorf("Used = %v", pm.Used)
	}
	if err := pm.Evict(vm); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if vm.Host != NoPM || pm.VMCount() != 0 || !pm.Used.IsZero() {
		t.Error("Evict bookkeeping wrong")
	}
}

func TestPMHostErrors(t *testing.T) {
	pm := NewPM(0, testClass())
	vm := NewVM(1, vector.New(2, 1), 100, 100, 0)

	if err := pm.Host(vm); err == nil {
		t.Error("hosting on an off PM should fail")
	}
	pm.State = PMOn
	if err := pm.Host(vm); err != nil {
		t.Fatal(err)
	}
	if err := pm.Host(vm); err == nil {
		t.Error("double-hosting the same VM should fail")
	}
	other := NewPM(1, testClass())
	other.State = PMOn
	if err := other.Host(vm); err == nil {
		t.Error("hosting a VM placed elsewhere should fail")
	}
	big := NewVM(2, vector.New(100, 1), 10, 10, 0)
	if err := pm.Host(big); err == nil {
		t.Error("hosting an oversized VM should fail")
	}
}

func TestPMEvictNotHosted(t *testing.T) {
	pm := NewPM(0, testClass())
	vm := NewVM(1, vector.New(1, 1), 10, 10, 0)
	if err := pm.Evict(vm); err == nil {
		t.Error("evicting a non-hosted VM should fail")
	}
}

func TestPMCanHostStates(t *testing.T) {
	pm := NewPM(0, testClass())
	d := vector.New(1, 1)
	for state, want := range map[PMState]bool{
		PMOff: false, PMBooting: true, PMOn: true,
		PMShuttingDown: false, PMFailed: false,
	} {
		pm.State = state
		if pm.CanHost(d) != want {
			t.Errorf("CanHost in %s = %v, want %v", state, pm.CanHost(d), want)
		}
	}
}

func TestPMVMsSorted(t *testing.T) {
	pm := NewPM(0, testClass())
	pm.State = PMOn
	for _, id := range []VMID{5, 1, 3} {
		if err := pm.Host(NewVM(id, vector.New(1, 1), 10, 10, 0)); err != nil {
			t.Fatal(err)
		}
	}
	vms := pm.VMs()
	if len(vms) != 3 || vms[0].ID != 1 || vms[1].ID != 3 || vms[2].ID != 5 {
		t.Errorf("VMs order = %v", vms)
	}
}

func TestPMIdleAndUtilization(t *testing.T) {
	pm := NewPM(0, testClass()) // cap 8, 8
	pm.State = PMOn
	if !pm.Idle() {
		t.Error("fresh on PM should be idle")
	}
	if pm.Utilization() != 0 {
		t.Error("idle utilization != 0")
	}
	vm := NewVM(1, vector.New(4, 2), 10, 10, 0)
	if err := pm.Host(vm); err != nil {
		t.Fatal(err)
	}
	if pm.Idle() {
		t.Error("hosting PM reported idle")
	}
	want := (4.0 / 8.0) * (2.0 / 8.0)
	if got := pm.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %g, want %g", got, want)
	}
}

func TestUtilizationLevel(t *testing.T) {
	fast := testClass() // cap (8,8); rmin (1,0.25) -> W=8, umin = (1/8)(0.25/8) = 1/256
	rmin := vector.New(1, 0.25)
	umin := (1.0 / 8.0) * (0.25 / 8.0)

	cases := []struct {
		u     float64
		level int
	}{
		{0, 0},
		{umin / 2, 0},
		{umin, 1},
		{3.99 * umin, 1}, // below 2^2 umin
		{4 * umin, 2},    // exactly 2^2 umin
		{8.99 * umin, 2}, // below 3^2 umin
		{9 * umin, 3},    // 3^2 umin
		{64 * umin, 8},   // 8^2 umin = top level
		{1, 8},           // fully utilized clamps to W_j
	}
	for _, c := range cases {
		level, wj := UtilizationLevel(c.u, fast, rmin)
		if wj != 8 {
			t.Fatalf("W_j = %d, want 8", wj)
		}
		if level != c.level {
			t.Errorf("level(u=%g) = %d, want %d", c.u, level, c.level)
		}
	}
}

func TestUtilizationLevelMatchesHostedMinimalVMs(t *testing.T) {
	// Hosting w minimal VMs must land exactly in level w (Eq. 4).
	rmin := vector.New(1, 0.25)
	for w := 1; w <= 8; w++ {
		pm := NewPM(0, testClass())
		pm.State = PMOn
		for i := 0; i < w; i++ {
			if err := pm.Host(NewVM(VMID(i), rmin, 10, 10, 0)); err != nil {
				t.Fatalf("w=%d host %d: %v", w, i, err)
			}
		}
		if got := pm.UtilizationLevel(rmin); got != w {
			t.Errorf("hosting %d minimal VMs -> level %d", w, got)
		}
	}
}

func TestUtilizationLevelDegenerate(t *testing.T) {
	c := &PMClass{Name: "x", Capacity: vector.New(4), ActivePower: 1, Reliability: 1}
	// rmin with zero component: umin = 0.
	level, wj := UtilizationLevel(0.5, c, vector.Zero(1))
	if level != wj {
		t.Errorf("degenerate busy level = %d, want W_j=%d", level, wj)
	}
	level, _ = UtilizationLevel(0, c, vector.Zero(1))
	if level != 0 {
		t.Errorf("degenerate idle level = %d, want 0", level)
	}
	// Class that cannot host one minimal VM.
	level, wj = UtilizationLevel(0.5, c, vector.New(10))
	if level != 0 || wj != 0 {
		t.Errorf("unhostable class level/wj = %d/%d, want 0/0", level, wj)
	}
}

func TestPMStateString(t *testing.T) {
	for s, want := range map[PMState]string{
		PMOff: "off", PMBooting: "booting", PMOn: "on",
		PMShuttingDown: "shutting-down", PMFailed: "failed",
	} {
		if got := s.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if !strings.Contains(PMState(9).String(), "9") {
		t.Error("unknown state should show its number")
	}
}

func TestPMString(t *testing.T) {
	pm := NewPM(2, testClass())
	if s := pm.String(); !strings.Contains(s, "PM2") || !strings.Contains(s, "fast") {
		t.Errorf("String = %q", s)
	}
}

func TestNewPMPanicsOnNilClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPM(0, nil)
}

// Property: Host then Evict restores exact resource accounting for any
// feasible sequence of small VMs.
func TestQuickHostEvictConservation(t *testing.T) {
	f := func(demands [6][2]uint8) bool {
		pm := NewPM(0, testClass())
		pm.State = PMOn
		var hosted []*VM
		for i, d := range demands {
			vm := NewVM(VMID(i), vector.New(float64(d[0]%4), float64(d[1]%4)/2), 10, 10, 0)
			if pm.CanHost(vm.Demand) {
				if err := pm.Host(vm); err != nil {
					return false
				}
				hosted = append(hosted, vm)
			}
		}
		for _, vm := range hosted {
			if err := pm.Evict(vm); err != nil {
				return false
			}
		}
		return pm.Used.IsZero() && pm.VMCount() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: utilization level is monotone in utilization.
func TestQuickUtilizationLevelMonotone(t *testing.T) {
	rmin := vector.New(1, 0.25)
	c := testClass()
	f := func(a, b uint16) bool {
		ua := float64(a) / float64(math.MaxUint16)
		ub := float64(b) / float64(math.MaxUint16)
		if ua > ub {
			ua, ub = ub, ua
		}
		la, _ := UtilizationLevel(ua, c, rmin)
		lb, _ := UtilizationLevel(ub, c, rmin)
		return la <= lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
