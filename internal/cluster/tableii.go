package cluster

import "repro/internal/vector"

// Resource vector component indices used by the Table II configuration and
// the workload layer. The paper's evaluation considers exactly two resource
// types: CPU (cores) and memory (GB).
const (
	ResCPU = 0 // cores
	ResMem = 1 // gigabytes
	// ResDim is the resource dimension K of the Table II setup.
	ResDim = 2
)

// Table II of the paper, "Data center parameter settings":
//
//	Nodes                         Fast   Slow
//	Number                          25     75
//	VM creation time (s)            30     40
//	VM migration time (s)           40     45
//	ON/OFF overhead (s)             50     55
//	Number of processors             2      2
//	Cores per processor              4      2
//	Memory (G)                       8      4
//	Active power consumption (W)   400    300
//	Idle power consumption (W)     240    180
//
// FastClass and SlowClass encode those constants. Reliability is not given
// numerically in the paper; we default both classes to the same high value
// so the reliability factor is neutral in the Table II experiments, and the
// failure example overrides it.
var (
	FastClass = PMClass{
		Name:          "fast",
		Capacity:      vector.V{8, 8}, // 2 processors x 4 cores, 8 GB
		CreationTime:  30,
		MigrationTime: 40,
		OnOffOverhead: 50,
		ActivePower:   400,
		IdlePower:     240,
		Reliability:   0.99,
	}
	SlowClass = PMClass{
		Name:          "slow",
		Capacity:      vector.V{4, 4}, // 2 processors x 2 cores, 4 GB
		CreationTime:  40,
		MigrationTime: 45,
		OnOffOverhead: 55,
		ActivePower:   300,
		IdlePower:     180,
		Reliability:   0.99,
	}
)

// TableIIRMin is the minimal VM request in the Table II experiments: one
// core and the smallest memory grant the filtered trace produces (0.25 GB).
var TableIIRMin = vector.V{1, 0.25}

// TableIIFleet returns the paper's evaluation data center: 100 nodes, 25
// fast and 75 slow. Fresh class copies are made per call so callers can
// tweak (e.g. reliability) without affecting other fleets.
func TableIIFleet() *Datacenter {
	fast := FastClass
	slow := SlowClass
	return MustNew(Config{
		RMin: TableIIRMin.Clone(),
		Groups: []Group{
			{Class: &fast, Count: 25},
			{Class: &slow, Count: 75},
		},
	})
}

// TableIIFleetScaled returns a fleet with the Table II 1:3 fast/slow mix
// scaled to approximately n nodes (at least one of each class). Used by
// benchmarks that sweep data-center size.
func TableIIFleetScaled(n int) *Datacenter {
	if n < 2 {
		n = 2
	}
	fastN := n / 4
	if fastN < 1 {
		fastN = 1
	}
	slowN := n - fastN
	fast := FastClass
	slow := SlowClass
	return MustNew(Config{
		RMin: TableIIRMin.Clone(),
		Groups: []Group{
			{Class: &fast, Count: fastN},
			{Class: &slow, Count: slowN},
		},
	})
}
