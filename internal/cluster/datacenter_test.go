package cluster

import (
	"math"
	"testing"

	"repro/internal/vector"
)

func twoClassDC(t *testing.T) *Datacenter {
	t.Helper()
	return TableIIFleet()
}

func TestNewValidation(t *testing.T) {
	fast := FastClass
	cases := map[string]Config{
		"no groups":    {RMin: vector.New(1, 1)},
		"nil class":    {RMin: vector.New(1, 1), Groups: []Group{{Count: 1}}},
		"bad rmin":     {RMin: vector.New(-1, 1), Groups: []Group{{Class: &fast, Count: 1}}},
		"zero count":   {RMin: vector.New(1, 1), Groups: []Group{{Class: &fast, Count: 0}}},
		"dim mismatch": {RMin: vector.New(1), Groups: []Group{{Class: &fast, Count: 1}}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestTableIIFleetShape(t *testing.T) {
	d := twoClassDC(t)
	if d.Size() != 100 {
		t.Fatalf("Size = %d, want 100", d.Size())
	}
	fast, slow := 0, 0
	for _, p := range d.PMs() {
		switch p.Class.Name {
		case "fast":
			fast++
		case "slow":
			slow++
		}
		if p.State != PMOff {
			t.Errorf("PM %d starts %s, want off", p.ID, p.State)
		}
	}
	if fast != 25 || slow != 75 {
		t.Errorf("fast/slow = %d/%d, want 25/75", fast, slow)
	}
}

func TestTableIIConstants(t *testing.T) {
	// Spot-check that the encoded class constants match Table II.
	if FastClass.CreationTime != 30 || SlowClass.CreationTime != 40 {
		t.Error("creation times do not match Table II")
	}
	if FastClass.MigrationTime != 40 || SlowClass.MigrationTime != 45 {
		t.Error("migration times do not match Table II")
	}
	if FastClass.OnOffOverhead != 50 || SlowClass.OnOffOverhead != 55 {
		t.Error("on/off overheads do not match Table II")
	}
	if FastClass.ActivePower != 400 || FastClass.IdlePower != 240 {
		t.Error("fast power does not match Table II")
	}
	if SlowClass.ActivePower != 300 || SlowClass.IdlePower != 180 {
		t.Error("slow power does not match Table II")
	}
	if !FastClass.Capacity.Equal(vector.New(8, 8)) || !SlowClass.Capacity.Equal(vector.New(4, 4)) {
		t.Error("capacities do not match Table II (2x4 cores/8G, 2x2 cores/4G)")
	}
}

func TestEfficiency(t *testing.T) {
	d := twoClassDC(t)
	// rmin = (1, 0.25): fast W=8 -> 400/8 = 50 W/VM; slow W=4 -> 300/4 = 75 W/VM.
	// min per-VM power = 50, so eff_fast = 1, eff_slow = 50/75 = 2/3.
	var fast, slow *PM
	for _, p := range d.PMs() {
		if p.Class.Name == "fast" && fast == nil {
			fast = p
		}
		if p.Class.Name == "slow" && slow == nil {
			slow = p
		}
	}
	if got := d.Efficiency(fast); math.Abs(got-1) > 1e-12 {
		t.Errorf("eff_fast = %g, want 1", got)
	}
	if got := d.Efficiency(slow); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("eff_slow = %g, want 2/3", got)
	}
}

func TestPMAccessors(t *testing.T) {
	d := twoClassDC(t)
	if d.PM(0) == nil || d.PM(99) == nil {
		t.Error("in-range PM lookup failed")
	}
	if d.PM(-1) != nil || d.PM(100) != nil {
		t.Error("out-of-range PM lookup should be nil")
	}
	if got := d.RMin(); !got.Equal(TableIIRMin) {
		t.Errorf("RMin = %v", got)
	}
	// RMin returns a copy.
	r := d.RMin()
	r[0] = 42
	if d.RMin()[0] == 42 {
		t.Error("RMin aliases internal state")
	}
}

func TestStateCountsAndSets(t *testing.T) {
	d := twoClassDC(t)
	d.PM(0).State = PMOn
	d.PM(1).State = PMOn
	d.PM(2).State = PMBooting
	d.PM(3).State = PMFailed

	if got := d.ActiveCount(); got != 3 {
		t.Errorf("ActiveCount = %d, want 3", got)
	}
	if got := len(d.ActivePMs()); got != 3 {
		t.Errorf("ActivePMs = %d, want 3", got)
	}
	if got := len(d.OffPMs()); got != 96 {
		t.Errorf("OffPMs = %d, want 96 (failed PM excluded)", got)
	}
	counts := d.CountByState()
	if counts[PMOn] != 2 || counts[PMBooting] != 1 || counts[PMFailed] != 1 || counts[PMOff] != 96 {
		t.Errorf("CountByState = %v", counts)
	}

	vm := NewVM(1, vector.New(1, 1), 10, 10, 0)
	if err := d.PM(0).Host(vm); err != nil {
		t.Fatal(err)
	}
	if got := d.NonIdleCount(); got != 1 {
		t.Errorf("NonIdleCount = %d, want 1", got)
	}
	if got := len(d.IdlePMs()); got != 1 { // PM 1 on+empty; booting PM not idle
		t.Errorf("IdlePMs = %d, want 1", got)
	}
	if got := d.VMCount(); got != 1 {
		t.Errorf("VMCount = %d, want 1", got)
	}
}

func TestRunningVMsSorted(t *testing.T) {
	d := twoClassDC(t)
	d.PM(0).State = PMOn
	d.PM(50).State = PMOn
	for _, pair := range []struct {
		pm PMID
		vm VMID
	}{{50, 9}, {0, 3}, {0, 7}} {
		if err := d.PM(pair.pm).Host(NewVM(pair.vm, vector.New(1, 0.5), 10, 10, 0)); err != nil {
			t.Fatal(err)
		}
	}
	vms := d.RunningVMs()
	if len(vms) != 3 || vms[0].ID != 3 || vms[1].ID != 7 || vms[2].ID != 9 {
		t.Errorf("RunningVMs = %v", vms)
	}
}

func TestAverageVMsPerPM(t *testing.T) {
	d := twoClassDC(t)
	if got := d.AverageVMsPerPM(2.5); got != 2.5 {
		t.Errorf("cold-start fallback = %g", got)
	}
	d.PM(0).State = PMOn
	d.PM(1).State = PMOn
	for i := VMID(0); i < 3; i++ {
		if err := d.PM(0).Host(NewVM(i, vector.New(1, 0.5), 10, 10, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.PM(1).Host(NewVM(10, vector.New(1, 0.5), 10, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if got := d.AverageVMsPerPM(0); got != 2 { // 4 VMs / 2 non-idle PMs
		t.Errorf("AverageVMsPerPM = %g, want 2", got)
	}
}

func TestCheckInvariantsClean(t *testing.T) {
	d := twoClassDC(t)
	d.PM(0).State = PMOn
	if err := d.PM(0).Host(NewVM(1, vector.New(2, 1), 10, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Errorf("CheckInvariants: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	d := twoClassDC(t)
	d.PM(0).State = PMOn
	vm := NewVM(1, vector.New(2, 1), 10, 10, 0)
	if err := d.PM(0).Host(vm); err != nil {
		t.Fatal(err)
	}

	// Corrupt usage accounting.
	d.PM(0).Used[0] = 7
	if err := d.CheckInvariants(); err == nil {
		t.Error("corrupted usage not detected")
	}
	d.PM(0).Used[0] = 2

	// VM host mismatch.
	vm.Host = 5
	if err := d.CheckInvariants(); err == nil {
		t.Error("host mismatch not detected")
	}
	vm.Host = 0

	// PM off while hosting.
	d.PM(0).State = PMOff
	if err := d.CheckInvariants(); err == nil {
		t.Error("off PM hosting VMs not detected")
	}
	d.PM(0).State = PMOn

	// Duplicate VM across PMs.
	d.PM(1).State = PMOn
	d.PM(1).vms[vm.ID] = vm
	d.PM(1).Used.AddInPlace(vm.Demand)
	vmOK := NewVM(1, vector.New(2, 1), 10, 10, 0)
	vmOK.Host = 1
	d.PM(1).vms[vm.ID] = vmOK
	if err := d.CheckInvariants(); err == nil {
		t.Error("duplicate VM not detected")
	}
}

func TestTableIIFleetScaled(t *testing.T) {
	d := TableIIFleetScaled(40)
	if d.Size() != 40 {
		t.Errorf("Size = %d, want 40", d.Size())
	}
	counts := map[string]int{}
	for _, p := range d.PMs() {
		counts[p.Class.Name]++
	}
	if counts["fast"] != 10 || counts["slow"] != 30 {
		t.Errorf("class mix = %v, want 10/30", counts)
	}
	if d2 := TableIIFleetScaled(1); d2.Size() < 2 {
		t.Error("degenerate size should be clamped to >= 2")
	}
}

func TestFleetsAreIndependent(t *testing.T) {
	a, b := TableIIFleet(), TableIIFleet()
	a.PM(0).Class.Reliability = 0.5
	if b.PM(0).Class.Reliability == 0.5 {
		t.Error("fleets share class instances")
	}
}
