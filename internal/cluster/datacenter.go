package cluster

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/vector"
)

// Datacenter aggregates the physical machines and the global constants the
// placement scheme derives from them: the minimal VM requirement R^MIN and
// the relative power-efficiency parameters eff_j (Section III.B.4).
type Datacenter struct {
	pms []*PM

	// rmin is R^MIN, the minimal resource requirement of any VM the data
	// center accepts; it anchors the utilization-level partition.
	rmin vector.V

	// minPerVMPower caches min_j{power_j}, the smallest per-VM active
	// power across classes, used to normalize eff_j.
	minPerVMPower float64
}

// Config describes a data center to build: a list of (class, count) groups
// and the minimal VM requirement.
type Config struct {
	Groups []Group
	RMin   vector.V
}

// Group is count PMs of a shared class.
type Group struct {
	Class *PMClass
	Count int
}

// New builds a data center from cfg. PMs are numbered sequentially in group
// order. All PMs start powered off; callers (the simulator or tests) power
// on the machines they need.
func New(cfg Config) (*Datacenter, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("cluster: datacenter needs at least one PM group")
	}
	if err := cfg.RMin.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: RMin: %w", err)
	}
	d := &Datacenter{rmin: cfg.RMin.Clone()}
	id := PMID(0)
	dim := cfg.RMin.Dim()
	for gi, g := range cfg.Groups {
		if g.Class == nil {
			return nil, fmt.Errorf("cluster: group %d has nil class", gi)
		}
		if err := g.Class.Validate(); err != nil {
			return nil, err
		}
		if g.Class.Capacity.Dim() != dim {
			return nil, fmt.Errorf("cluster: class %s capacity dim %d != RMin dim %d",
				g.Class.Name, g.Class.Capacity.Dim(), dim)
		}
		if g.Count <= 0 {
			return nil, fmt.Errorf("cluster: group %d (%s) has non-positive count %d", gi, g.Class.Name, g.Count)
		}
		for i := 0; i < g.Count; i++ {
			d.pms = append(d.pms, NewPM(id, g.Class))
			id++
		}
	}
	d.recomputeMinPower()
	return d, nil
}

// MustNew is New that panics on error; convenient for tests and examples
// with hard-coded valid configurations.
func MustNew(cfg Config) *Datacenter {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

func (d *Datacenter) recomputeMinPower() {
	d.minPerVMPower = math.Inf(1)
	seen := map[*PMClass]bool{}
	for _, p := range d.pms {
		if seen[p.Class] {
			continue
		}
		seen[p.Class] = true
		if pv := d.perVMPower(p.Class); pv < d.minPerVMPower {
			d.minPerVMPower = pv
		}
	}
}

// perVMPower returns power_j for a class: active power divided by W_j, the
// per-VM power consumption (Section III.B.4).
func (d *Datacenter) perVMPower(c *PMClass) float64 {
	w := c.MaxMinimalVMs(d.rmin)
	if w <= 0 {
		return math.Inf(1) // cannot host even one minimal VM
	}
	return c.ActivePower / float64(w)
}

// Efficiency returns eff_j = min_j{power_j} / power_j for the PM's class:
// 1 for the most power-efficient class, smaller for the rest.
func (d *Datacenter) Efficiency(p *PM) float64 {
	pv := d.perVMPower(p.Class)
	if math.IsInf(pv, 1) {
		return 0
	}
	return d.minPerVMPower / pv
}

// CloneTopology returns a new datacenter with the same PM IDs, classes,
// and derived constants but entirely fresh machine state: every clone PM
// starts powered off, fully reliable, and empty. PMClass values are shared
// (they are immutable by convention). The snapshot auditor restores
// checkpoints into topology clones so a round-trip check never aliases the
// live fleet.
func (d *Datacenter) CloneTopology() *Datacenter {
	out := &Datacenter{rmin: d.rmin.Clone(), minPerVMPower: d.minPerVMPower}
	out.pms = make([]*PM, len(d.pms))
	for i, p := range d.pms {
		out.pms[i] = NewPM(p.ID, p.Class)
	}
	return out
}

// RMin returns the minimal VM requirement vector (a copy).
func (d *Datacenter) RMin() vector.V { return d.rmin.Clone() }

// RMinShared returns the minimal VM requirement vector without copying.
// The returned slice is a read-only view into the datacenter's state; it
// exists for hot paths (the placement factors evaluate it M*N times per
// consolidation) and must not be mutated.
func (d *Datacenter) RMinShared() vector.V { return d.rmin }

// Size returns the total number of PMs.
func (d *Datacenter) Size() int { return len(d.pms) }

// PM returns the PM with the given ID, or nil if out of range.
func (d *Datacenter) PM(id PMID) *PM {
	if id < 0 || int(id) >= len(d.pms) {
		return nil
	}
	return d.pms[id]
}

// PMs returns all PMs in ID order. The returned slice is shared; callers
// must not reorder it.
func (d *Datacenter) PMs() []*PM { return d.pms }

// ActivePMs returns PMs that are on or booting (consuming power and
// available for placement planning).
func (d *Datacenter) ActivePMs() []*PM {
	var out []*PM
	for _, p := range d.pms {
		if p.State == PMOn || p.State == PMBooting {
			out = append(out, p)
		}
	}
	return out
}

// AppendActivePMs appends the on/booting PMs to dst in ID order and
// returns the extended slice. It is the allocation-free form of ActivePMs
// for hot paths (the per-arrival placement argmax, matrix construction)
// that keep a reusable backing slice across calls.
func (d *Datacenter) AppendActivePMs(dst []*PM) []*PM {
	for _, p := range d.pms {
		if p.State == PMOn || p.State == PMBooting {
			dst = append(dst, p)
		}
	}
	return dst
}

// CountByState returns how many PMs are in each state.
func (d *Datacenter) CountByState() map[PMState]int {
	m := make(map[PMState]int)
	for _, p := range d.pms {
		m[p.State]++
	}
	return m
}

// NonIdleCount returns N_nidle, the number of PMs hosting at least one VM.
func (d *Datacenter) NonIdleCount() int {
	n := 0
	for _, p := range d.pms {
		if (p.State == PMOn || p.State == PMBooting) && p.VMCount() > 0 {
			n++
		}
	}
	return n
}

// ActiveCount returns the number of PMs that are on or booting.
func (d *Datacenter) ActiveCount() int {
	n := 0
	for _, p := range d.pms {
		if p.State == PMOn || p.State == PMBooting {
			n++
		}
	}
	return n
}

// IdlePMs returns PMs that are on and hosting nothing, candidates for
// shutdown during consolidation.
func (d *Datacenter) IdlePMs() []*PM {
	var out []*PM
	for _, p := range d.pms {
		if p.Idle() {
			out = append(out, p)
		}
	}
	return out
}

// OffPMs returns PMs that are powered off, candidates for boot. Failed PMs
// are excluded; the failure model owns their recovery.
func (d *Datacenter) OffPMs() []*PM {
	var out []*PM
	for _, p := range d.pms {
		if p.State == PMOff {
			out = append(out, p)
		}
	}
	return out
}

// RunningVMs returns every VM placed on any PM, sorted by VM ID.
func (d *Datacenter) RunningVMs() []*VM {
	var out []*VM
	for _, p := range d.pms {
		out = append(out, p.VMs()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AppendVMsInState appends every placed VM in state st to dst, sorted by
// ID within the appended span, and returns the extended slice. The
// allocation-free form of filtering RunningVMs for callers with a
// reusable backing slice (the consolidation pass rebuilds its column set
// every control period).
func (d *Datacenter) AppendVMsInState(dst []*VM, st VMState) []*VM {
	start := len(dst)
	for _, p := range d.pms {
		for _, vm := range p.vms {
			if vm.State == st {
				dst = append(dst, vm)
			}
		}
	}
	// slices.SortFunc rather than sort.Slice: the generic sort keeps this
	// path allocation-free, which is the method's reason to exist.
	slices.SortFunc(dst[start:], func(a, b *VM) int { return int(a.ID) - int(b.ID) })
	return dst
}

// CountVMs returns how many placed VMs satisfy pred. Iteration order is
// unspecified — the predicate must not depend on it. Allocation-free
// (unlike materializing RunningVMs just to count a subset).
func (d *Datacenter) CountVMs(pred func(*VM) bool) int {
	n := 0
	for _, p := range d.pms {
		for _, vm := range p.vms {
			if pred(vm) {
				n++
			}
		}
	}
	return n
}

// VMCount returns the total number of placed VMs.
func (d *Datacenter) VMCount() int {
	n := 0
	for _, p := range d.pms {
		n += p.VMCount()
	}
	return n
}

// AverageVMsPerPM returns N_Ave(t): running VMs divided by non-idle PMs
// (Section IV). It returns fallback when no PM is non-idle so the spare
// controller has a sane divisor at cold start.
func (d *Datacenter) AverageVMsPerPM(fallback float64) float64 {
	nonIdle := d.NonIdleCount()
	if nonIdle == 0 {
		return fallback
	}
	return float64(d.VMCount()) / float64(nonIdle)
}

// WalkPlacements visits every (PM, hosted VM) pair in deterministic order
// (PMs by ID, VMs by ID within a PM) and stops at the first error. The
// audit subsystem and exporters use it to traverse the full mapping
// without materializing intermediate slices per call site.
func (d *Datacenter) WalkPlacements(fn func(*PM, *VM) error) error {
	for _, p := range d.pms {
		for _, vm := range p.VMs() {
			if err := fn(p, vm); err != nil {
				return err
			}
		}
	}
	return nil
}

// VMsByState counts the placed VMs per lifecycle state. Only VMs currently
// occupying a PM appear; queued and finished VMs are not reachable from the
// datacenter.
func (d *Datacenter) VMsByState() map[VMState]int {
	m := make(map[VMState]int)
	for _, p := range d.pms {
		for _, vm := range p.vms {
			m[vm.State]++
		}
	}
	return m
}

// CheckInvariants validates global consistency: every PM's usage equals the
// sum of its VM demands and stays within capacity, and no VM appears on two
// PMs. Tests and the simulator's self-check mode call this.
func (d *Datacenter) CheckInvariants() error {
	seen := make(map[VMID]PMID)
	for _, p := range d.pms {
		sum := p.reserved.Clone()
		if !sum.NonNegative() {
			return fmt.Errorf("cluster: PM %d has negative reservations %v", p.ID, p.reserved)
		}
		for _, vm := range p.VMs() {
			if prev, dup := seen[vm.ID]; dup {
				return fmt.Errorf("cluster: VM %d on both PM %d and PM %d", vm.ID, prev, p.ID)
			}
			seen[vm.ID] = p.ID
			if vm.Host != p.ID {
				return fmt.Errorf("cluster: VM %d hosted by PM %d but Host=%d", vm.ID, p.ID, vm.Host)
			}
			sum.AddInPlace(vm.Demand)
		}
		for k := range sum {
			if diff := sum[k] - p.Used[k]; diff > 1e-6 || diff < -1e-6 {
				return fmt.Errorf("cluster: PM %d used %v != demands+reservations %v", p.ID, p.Used, sum)
			}
		}
		if !p.Used.LE(p.Class.Capacity) {
			return fmt.Errorf("cluster: PM %d used %v exceeds capacity %v", p.ID, p.Used, p.Class.Capacity)
		}
		if p.VMCount() > 0 && p.State != PMOn && p.State != PMBooting {
			return fmt.Errorf("cluster: PM %d hosts %d VMs while %s", p.ID, p.VMCount(), p.State)
		}
	}
	return nil
}
