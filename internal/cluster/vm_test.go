package cluster

import (
	"strings"
	"testing"

	"repro/internal/vector"
)

func TestNewVM(t *testing.T) {
	vm := NewVM(7, vector.New(1, 0.5), 3600, 3000, 100)
	if vm.ID != 7 || vm.State != VMQueued || vm.Host != NoPM {
		t.Errorf("NewVM = %v", vm)
	}
	if vm.EstimatedRuntime != 3600 || vm.ActualRuntime != 3000 {
		t.Error("runtimes not stored")
	}
}

func TestNewVMClonesDemand(t *testing.T) {
	d := vector.New(1, 2)
	vm := NewVM(1, d, 10, 10, 0)
	d[0] = 99
	if vm.Demand[0] != 1 {
		t.Error("NewVM aliases caller's demand vector")
	}
}

func TestNewVMPanics(t *testing.T) {
	cases := map[string]func(){
		"negative demand": func() { NewVM(1, vector.New(-1), 1, 1, 0) },
		"negative est":    func() { NewVM(1, vector.New(1), -1, 1, 0) },
		"negative act":    func() { NewVM(1, vector.New(1), 1, -1, 0) },
		"negative submit": func() { NewVM(1, vector.New(1), 1, 1, -1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRemainingEstimate(t *testing.T) {
	vm := NewVM(1, vector.New(1), 1000, 900, 0)
	if got := vm.RemainingEstimate(500); got != 1000 {
		t.Errorf("queued remaining = %g, want full estimate", got)
	}
	vm.State = VMCreating
	if got := vm.RemainingEstimate(500); got != 1000 {
		t.Errorf("creating remaining = %g, want full estimate", got)
	}
	vm.State = VMRunning
	vm.StartTime = 100
	if got := vm.RemainingEstimate(400); got != 700 {
		t.Errorf("running remaining = %g, want 700", got)
	}
	if got := vm.RemainingEstimate(5000); got != 0 {
		t.Errorf("overrun remaining = %g, want 0", got)
	}
	vm.State = VMFinished
	if got := vm.RemainingEstimate(400); got != 0 {
		t.Errorf("finished remaining = %g, want 0", got)
	}
}

func TestWaitTime(t *testing.T) {
	vm := NewVM(1, vector.New(1), 10, 10, 100)
	if got := vm.WaitTime(150); got != 50 {
		t.Errorf("queued wait = %g, want 50", got)
	}
	vm.State = VMRunning
	vm.StartTime = 130
	if got := vm.WaitTime(999); got != 30 {
		t.Errorf("started wait = %g, want 30", got)
	}
}

func TestPlaced(t *testing.T) {
	vm := NewVM(1, vector.New(1), 10, 10, 0)
	for state, want := range map[VMState]bool{
		VMQueued: false, VMCreating: true, VMRunning: true,
		VMMigrating: true, VMFinished: false,
	} {
		vm.State = state
		if vm.Placed() != want {
			t.Errorf("Placed in %s = %v, want %v", state, vm.Placed(), want)
		}
	}
}

func TestVMStateString(t *testing.T) {
	for s, want := range map[VMState]string{
		VMQueued: "queued", VMCreating: "creating", VMRunning: "running",
		VMMigrating: "migrating", VMFinished: "finished", VMState(42): "VMState(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestVMString(t *testing.T) {
	vm := NewVM(3, vector.New(1, 0.5), 60, 55, 0)
	if s := vm.String(); !strings.Contains(s, "VM3") || !strings.Contains(s, "queued") {
		t.Errorf("String = %q", s)
	}
}
