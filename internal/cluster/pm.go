package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vector"
)

// PMID identifies a physical machine.
type PMID int

// NoPM is the "no host" sentinel.
const NoPM PMID = -1

// PMState is the lifecycle state of a physical machine.
type PMState int

// PM lifecycle states. Transitions:
//
//	Off -> Booting -> On -> ShuttingDown -> Off
//	On -> Failed -> Off (repair not modelled; a failed PM is re-bootable)
const (
	PMOff PMState = iota
	PMBooting
	PMOn
	PMShuttingDown
	PMFailed
)

// String implements fmt.Stringer.
func (s PMState) String() string {
	switch s {
	case PMOff:
		return "off"
	case PMBooting:
		return "booting"
	case PMOn:
		return "on"
	case PMShuttingDown:
		return "shutting-down"
	case PMFailed:
		return "failed"
	default:
		return fmt.Sprintf("PMState(%d)", int(s))
	}
}

// PMClass describes a homogeneous family of physical machines: capacity,
// virtualization overheads, power constants, and reliability. The paper's
// Table II defines two classes, Fast and Slow (see TableIIFleet).
type PMClass struct {
	// Name labels the class in reports ("fast", "slow").
	Name string

	// Capacity is the K-dimensional maximum resource vector C_j^max.
	Capacity vector.V

	// CreationTime is T^cre, the seconds needed to create a VM on a PM
	// of this class.
	CreationTime float64

	// MigrationTime is T^mig, the seconds a live migration onto a PM of
	// this class takes.
	MigrationTime float64

	// OnOffOverhead is the seconds needed to power the PM on or off.
	OnOffOverhead float64

	// ActivePower and IdlePower are the PM's power draw in watts when
	// fully utilized and when idle-but-on, respectively. Power at
	// intermediate utilization is interpolated linearly (see
	// internal/power).
	ActivePower float64
	IdlePower   float64

	// Reliability is p_j^rel, the probability used by the reliability
	// factor: higher is more reliable. Must be in (0, 1].
	Reliability float64
}

// Validate checks the class for internal consistency.
func (c *PMClass) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("cluster: PM class has no name")
	}
	if err := c.Capacity.Validate(); err != nil {
		return fmt.Errorf("cluster: class %s capacity: %w", c.Name, err)
	}
	if c.Capacity.IsZero() {
		return fmt.Errorf("cluster: class %s has zero capacity", c.Name)
	}
	if c.CreationTime < 0 || c.MigrationTime < 0 || c.OnOffOverhead < 0 {
		return fmt.Errorf("cluster: class %s has negative overhead", c.Name)
	}
	if c.ActivePower < c.IdlePower || c.IdlePower < 0 {
		return fmt.Errorf("cluster: class %s power constants inconsistent (active=%g idle=%g)",
			c.Name, c.ActivePower, c.IdlePower)
	}
	if !(c.Reliability > 0 && c.Reliability <= 1) {
		return fmt.Errorf("cluster: class %s reliability %g not in (0,1]", c.Name, c.Reliability)
	}
	return nil
}

// MaxMinimalVMs returns W_j for a PM of this class: the maximum number of
// VMs with the minimal resource requirement rmin that fit in the class
// capacity (Section III.B.4). It returns at least 1 so a PM that can host
// any VM at all has a non-degenerate level partition, and 0 if even a
// single minimal VM does not fit.
func (c *PMClass) MaxMinimalVMs(rmin vector.V) int {
	if rmin.IsZero() {
		return 1
	}
	w := int(math.Floor(vector.DivMin(c.Capacity, rmin) + vector.Epsilon))
	if w < 0 {
		return 0
	}
	return w
}

// PM is one physical machine.
type PM struct {
	ID    PMID
	Class *PMClass

	// Used is the K-dimensional current resource occupation C_j.
	Used vector.V

	// State is the power state.
	State PMState

	// Reliability is this PM's p_j^rel, initialized from the class and
	// adjustable per machine (the failure model decays it with age and
	// past failures).
	Reliability float64

	// vms holds the VMs currently placed on this PM (creating, running,
	// or migrating in).
	vms map[VMID]*VM

	// reserved is the portion of Used held by non-VM reservations (the
	// timed-migration model's source-side double occupancy).
	reserved vector.V

	// ver counts mutations of Used (Host/Evict/Reserve/Release). Caches
	// keyed on a PM's occupancy — the sparse candidate index in
	// internal/core — compare it against a remembered value to detect
	// staleness without diffing the vector. State and Reliability are
	// plain fields written directly by the simulator, so such caches must
	// compare them alongside ver.
	ver uint64

	// Failures counts how many times this PM has failed.
	Failures int
}

// NewPM returns a powered-off PM of the given class.
func NewPM(id PMID, class *PMClass) *PM {
	if class == nil {
		panic("cluster: NewPM requires a class")
	}
	return &PM{
		ID:          id,
		Class:       class,
		Used:        vector.Zero(class.Capacity.Dim()),
		State:       PMOff,
		Reliability: class.Reliability,
		vms:         make(map[VMID]*VM),
		reserved:    vector.Zero(class.Capacity.Dim()),
	}
}

// CanHost reports whether demand fits in the PM's remaining capacity. It is
// the p_res feasibility predicate (Eq. 2) restricted to this PM. Only a PM
// that is on (or booting, since boot completes before any placement takes
// effect) can host.
func (p *PM) CanHost(demand vector.V) bool {
	if p.State != PMOn && p.State != PMBooting {
		return false
	}
	return demand.Fits(p.Used, p.Class.Capacity)
}

// Host places vm on the PM, reserving its resources. The VM's Host field is
// updated; its lifecycle state is managed by the caller (the simulator
// distinguishes creation from migration). Host returns an error when the VM
// does not fit or is already placed elsewhere.
func (p *PM) Host(vm *VM) error {
	if _, dup := p.vms[vm.ID]; dup {
		return fmt.Errorf("cluster: VM %d already on PM %d", vm.ID, p.ID)
	}
	if vm.Host != NoPM {
		return fmt.Errorf("cluster: VM %d already hosted on PM %d", vm.ID, vm.Host)
	}
	if !p.CanHost(vm.Demand) {
		return fmt.Errorf("cluster: VM %d (demand %v) does not fit on PM %d (used %v / cap %v, state %s)",
			vm.ID, vm.Demand, p.ID, p.Used, p.Class.Capacity, p.State)
	}
	p.Used.AddInPlace(vm.Demand)
	p.ver++
	p.vms[vm.ID] = vm
	vm.Host = p.ID
	return nil
}

// Evict removes vm from the PM, releasing its resources. It returns an
// error if the VM is not hosted here.
func (p *PM) Evict(vm *VM) error {
	if _, ok := p.vms[vm.ID]; !ok {
		return fmt.Errorf("cluster: VM %d not on PM %d", vm.ID, p.ID)
	}
	p.Used.SubInPlace(vm.Demand)
	// Guard against negative drift from float arithmetic.
	for i, x := range p.Used {
		if x < 0 {
			if x < -1e-6 {
				panic(fmt.Sprintf("cluster: PM %d used went negative (%v) evicting VM %d", p.ID, p.Used, vm.ID))
			}
			p.Used[i] = 0
		}
	}
	p.ver++
	delete(p.vms, vm.ID)
	vm.Host = NoPM
	return nil
}

// Reserve holds demand on the PM without attaching a VM. The timed
// live-migration model uses this for the source side of a pre-copy
// migration: until cutover completes, the departing VM's resources remain
// committed on the source so no new placement can claim them. Reserve
// fails when the PM lacks room.
func (p *PM) Reserve(demand vector.V) error {
	if err := demand.Validate(); err != nil {
		return fmt.Errorf("cluster: reserve on PM %d: %w", p.ID, err)
	}
	if !demand.Fits(p.Used, p.Class.Capacity) {
		return fmt.Errorf("cluster: reservation %v does not fit on PM %d (used %v / cap %v)",
			demand, p.ID, p.Used, p.Class.Capacity)
	}
	p.Used.AddInPlace(demand)
	p.reserved.AddInPlace(demand)
	p.ver++
	return nil
}

// Release returns a previous reservation. Releasing more than is reserved
// is a programming error and panics: it would silently corrupt resource
// accounting.
func (p *PM) Release(demand vector.V) {
	if !demand.LE(p.reserved) {
		panic(fmt.Sprintf("cluster: releasing %v exceeds reservations %v on PM %d", demand, p.reserved, p.ID))
	}
	p.Used.SubInPlace(demand)
	p.reserved.SubInPlace(demand)
	for i := range p.Used {
		if p.Used[i] < 0 {
			p.Used[i] = 0
		}
		if p.reserved[i] < 0 {
			p.reserved[i] = 0
		}
	}
	p.ver++
}

// Version returns the PM's occupancy mutation counter. It increments on
// every Host, Evict, Reserve, and Release; an unchanged Version together
// with unchanged State and Reliability means every occupancy-derived
// quantity (utilization, headroom, level) is still valid.
func (p *PM) Version() uint64 { return p.ver }

// Reserved returns the currently reserved (non-VM) portion of Used.
func (p *PM) Reserved() vector.V { return p.reserved.Clone() }

// VMCount returns the number of VMs placed on the PM.
func (p *PM) VMCount() int { return len(p.vms) }

// VMs returns the hosted VMs sorted by ID (deterministic iteration order
// matters for reproducible simulations).
func (p *PM) VMs() []*VM {
	out := make([]*VM, 0, len(p.vms))
	for _, vm := range p.vms {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HasVM reports whether the VM is placed on this PM.
func (p *PM) HasVM(id VMID) bool {
	_, ok := p.vms[id]
	return ok
}

// Idle reports whether the PM is on, hosting no VMs, and holding no
// reservations (a migration source with an active hold is not idle — its
// resources are still committed).
func (p *PM) Idle() bool {
	return p.State == PMOn && len(p.vms) == 0 && p.reserved.IsZero()
}

// Utilization returns the PM's joint product utilization
// U_j = Π_k Used(k)/Capacity(k) (Section III.B.4).
func (p *PM) Utilization() float64 {
	return vector.Utilization(p.Used, p.Class.Capacity)
}

// UtilizationLevel returns the index w_j of the utilization level the PM
// currently occupies in the non-uniform partition of Eq. 4, given the
// minimal VM requirement rmin. Level 0 means idle; level W_j means fully or
// nearly fully utilized. The partition boundaries are
// L_w = [w^K * U_min, (w+1)^K * U_min) where U_min = Π_k rmin(k)/cap(k) and
// K is the resource dimension, so a PM hosting w minimal VMs sits in level
// w.
func (p *PM) UtilizationLevel(rmin vector.V) int {
	w, _ := UtilizationLevel(p.Utilization(), p.Class, rmin)
	return w
}

// UtilizationLevel computes the level index for an arbitrary utilization u
// on PMs of class c, returning the level and W_j. Exposed as a function so
// the placement core can evaluate hypothetical utilizations (e.g. "what
// level would PM j reach if this VM moved there") without mutating state.
func UtilizationLevel(u float64, c *PMClass, rmin vector.V) (level, wj int) {
	wj = c.MaxMinimalVMs(rmin)
	if wj <= 0 {
		return 0, 0
	}
	umin := vector.Utilization(rmin, c.Capacity)
	if umin <= 0 {
		// Degenerate minimal requirement: treat any non-zero
		// utilization as the top level, idle as level 0.
		if u > 0 {
			return wj, wj
		}
		return 0, wj
	}
	k := float64(rmin.Dim())
	if u < umin {
		return 0, wj
	}
	// Invert u = w^K * U_min  =>  w = (u/U_min)^(1/K); the level is the
	// floor, clamped to W_j.
	w := int(math.Floor(math.Pow(u/umin, 1/k) + vector.Epsilon))
	if w < 1 {
		w = 1
	}
	if w > wj {
		w = wj
	}
	return w, wj
}

// String implements fmt.Stringer.
func (p *PM) String() string {
	return fmt.Sprintf("PM%d{%s %s used=%v/%v vms=%d}",
		p.ID, p.Class.Name, p.State, p.Used, p.Class.Capacity, len(p.vms))
}
