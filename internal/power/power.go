// Package power models electrical power draw and energy accounting for the
// simulated data center.
//
// Table II of the paper gives each PM class an active and an idle power
// draw. We use the standard linear interpolation model between the two:
//
//	P(u) = P_idle + (P_active - P_idle) * u
//
// where u is the PM's joint resource utilization, plus full active draw
// during boot/shutdown transitions (the ON/OFF overhead window) and zero
// draw while off. Energy is integrated piecewise-constantly: the meter is
// advanced to the current simulation time before any state change, so each
// interval is charged at the power level that actually held during it.
package power

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// Draw returns the instantaneous power draw of PM p in watts under the
// linear model.
func Draw(p *cluster.PM) float64 {
	switch p.State {
	case cluster.PMOff, cluster.PMFailed:
		return 0
	case cluster.PMBooting, cluster.PMShuttingDown:
		// Power transitions draw full active power for the whole
		// ON/OFF overhead window; this charges the energy cost of
		// cycling a machine and is what makes needless power cycling
		// unattractive to the placement scheme.
		return p.Class.ActivePower
	default:
		u := p.Utilization()
		return p.Class.IdlePower + (p.Class.ActivePower-p.Class.IdlePower)*u
	}
}

// Meter integrates per-PM energy over simulated time and bins it into
// fixed-width intervals (hours in the paper's figures). All energies are in
// joules (watt-seconds); callers convert to kWh for reporting.
type Meter struct {
	dc       *cluster.Datacenter
	binWidth float64

	lastTime float64

	// bins[b] is the total energy consumed during bin b across all PMs.
	bins []float64
	// perPM[i] is the total energy of PM i over the whole run.
	perPM []float64
	total float64
}

// NewMeter creates a meter over dc with the given bin width in seconds.
// A binWidth of 3600 reproduces the paper's hourly accounting.
func NewMeter(dc *cluster.Datacenter, binWidth float64) *Meter {
	if binWidth <= 0 {
		panic(fmt.Sprintf("power: bin width must be positive, got %g", binWidth))
	}
	return &Meter{
		dc:       dc,
		binWidth: binWidth,
		perPM:    make([]float64, dc.Size()),
	}
}

// Advance integrates energy from the last observation up to now, charging
// the elapsed interval at each PM's *current* power level. Because the
// simulator always calls Advance(now) *before* mutating any PM state or
// placement at time now, the current levels are exactly the levels that
// held throughout the interval. Advancing backwards is a programming error.
func (m *Meter) Advance(now float64) {
	if now < m.lastTime-1e-9 {
		panic(fmt.Sprintf("power: meter advanced backwards (%g -> %g)", m.lastTime, now))
	}
	if now <= m.lastTime {
		return
	}
	dt := now - m.lastTime
	for i, p := range m.dc.PMs() {
		e := Draw(p) * dt
		if e != 0 {
			m.perPM[i] += e
			m.total += e
			m.spread(m.lastTime, now, e)
		}
	}
	m.lastTime = now
}

// spread distributes energy e consumed uniformly over [t0, t1) across the
// hour bins it overlaps.
func (m *Meter) spread(t0, t1, e float64) {
	if t1 <= t0 {
		return
	}
	rate := e / (t1 - t0)
	for t := t0; t < t1; {
		bin := int(t / m.binWidth)
		binEnd := float64(bin+1) * m.binWidth
		end := math.Min(binEnd, t1)
		m.ensureBin(bin)
		m.bins[bin] += rate * (end - t)
		t = end
	}
}

func (m *Meter) ensureBin(b int) {
	for len(m.bins) <= b {
		m.bins = append(m.bins, 0)
	}
}

// MeterState is the serializable accumulator state of a Meter. The
// datacenter reference and bin width are reconstruction parameters, not
// state; they come from the run configuration on restore.
type MeterState struct {
	LastTime float64   `json:"last_time"`
	Bins     []float64 `json:"bins,omitempty"`
	PerPM    []float64 `json:"per_pm"`
	Total    float64   `json:"total"`
}

// State captures the meter's accumulators for a checkpoint.
func (m *Meter) State() MeterState {
	return MeterState{
		LastTime: m.lastTime,
		Bins:     append([]float64(nil), m.bins...),
		PerPM:    append([]float64(nil), m.perPM...),
		Total:    m.total,
	}
}

// RestoreState reloads checkpointed accumulators into a freshly built
// meter over the same fleet.
func (m *Meter) RestoreState(st MeterState) error {
	if len(st.PerPM) != len(m.perPM) {
		return fmt.Errorf("power: snapshot has %d per-PM accumulators, fleet has %d", len(st.PerPM), len(m.perPM))
	}
	if st.LastTime < 0 {
		return fmt.Errorf("power: negative meter time %g", st.LastTime)
	}
	m.lastTime = st.LastTime
	m.bins = append(m.bins[:0], st.Bins...)
	m.perPM = append(m.perPM[:0], st.PerPM...)
	m.total = st.Total
	return nil
}

// TotalEnergy returns total energy consumed so far, in joules.
func (m *Meter) TotalEnergy() float64 { return m.total }

// PMEnergy returns the total energy of PM id in joules.
func (m *Meter) PMEnergy(id cluster.PMID) float64 {
	if id < 0 || int(id) >= len(m.perPM) {
		return 0
	}
	return m.perPM[id]
}

// Bins returns a copy of the per-bin energy series in joules. The last bin
// may be partially filled.
func (m *Meter) Bins() []float64 {
	return append([]float64(nil), m.bins...)
}

// BinWidth returns the bin width in seconds.
func (m *Meter) BinWidth() float64 { return m.binWidth }

// KWh converts joules to kilowatt-hours.
func KWh(joules float64) float64 { return joules / 3.6e6 }

// Joules converts kilowatt-hours to joules.
func Joules(kwh float64) float64 { return kwh * 3.6e6 }

// Rebin aggregates a fine-grained energy series into coarser bins of factor
// n (e.g. 24 hourly bins -> daily). A trailing partial group is kept.
func Rebin(series []float64, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("power: rebin factor must be positive, got %d", n))
	}
	var out []float64
	for i, x := range series {
		if i%n == 0 {
			out = append(out, 0)
		}
		out[len(out)-1] += x
	}
	return out
}
