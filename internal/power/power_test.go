package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/vector"
)

func smallDC(t *testing.T) *cluster.Datacenter {
	if t != nil {
		t.Helper()
	}
	fast := cluster.FastClass
	slow := cluster.SlowClass
	return cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 2},
			{Class: &slow, Count: 2},
		},
	})
}

func TestDrawStates(t *testing.T) {
	d := smallDC(t)
	p := d.PM(0) // fast: active 400, idle 240

	p.State = cluster.PMOff
	if got := Draw(p); got != 0 {
		t.Errorf("off draw = %g", got)
	}
	p.State = cluster.PMFailed
	if got := Draw(p); got != 0 {
		t.Errorf("failed draw = %g", got)
	}
	p.State = cluster.PMBooting
	if got := Draw(p); got != 400 {
		t.Errorf("booting draw = %g, want 400", got)
	}
	p.State = cluster.PMShuttingDown
	if got := Draw(p); got != 400 {
		t.Errorf("shutdown draw = %g, want 400", got)
	}
	p.State = cluster.PMOn
	if got := Draw(p); got != 240 {
		t.Errorf("idle-on draw = %g, want 240", got)
	}
}

func TestDrawLinearInUtilization(t *testing.T) {
	d := smallDC(t)
	p := d.PM(0)
	p.State = cluster.PMOn
	// Host a VM using half of each resource: u = 0.5*0.5 = 0.25.
	vm := cluster.NewVM(1, vector.New(4, 4), 100, 100, 0)
	if err := p.Host(vm); err != nil {
		t.Fatal(err)
	}
	want := 240 + (400-240)*0.25
	if got := Draw(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("draw = %g, want %g", got, want)
	}
}

func TestMeterIntegration(t *testing.T) {
	d := smallDC(t)
	m := NewMeter(d, 3600)
	p := d.PM(0)

	// Turn on at t=0; the interval [0, 3600) is charged at the on level.
	p.State = cluster.PMOn
	m.Advance(3600) // one idle hour at 240 W
	want := 240.0 * 3600
	if got := m.TotalEnergy(); math.Abs(got-want) > 1e-6 {
		t.Errorf("energy after 1h idle = %g, want %g", got, want)
	}
	if got := m.PMEnergy(0); math.Abs(got-want) > 1e-6 {
		t.Errorf("PM energy = %g, want %g", got, want)
	}
	if got := m.PMEnergy(1); got != 0 {
		t.Errorf("off PM accrued energy %g", got)
	}
}

func TestMeterChargesOldLevel(t *testing.T) {
	d := smallDC(t)
	m := NewMeter(d, 3600)
	p := d.PM(0)
	p.State = cluster.PMOn
	m.Advance(0)

	// At t=1800 the PM goes off; the first half hour must be charged at
	// 240 W, the second at 0.
	m.Advance(1800)
	p.State = cluster.PMOff
	m.Advance(3600)

	want := 240.0 * 1800
	if got := m.TotalEnergy(); math.Abs(got-want) > 1e-6 {
		t.Errorf("energy = %g, want %g", got, want)
	}
}

func TestMeterBinning(t *testing.T) {
	d := smallDC(t)
	m := NewMeter(d, 3600)
	p := d.PM(0)
	p.State = cluster.PMOn
	m.Advance(0)

	// 2.5 hours at 240 W: bins [864000, 864000, 432000].
	m.Advance(2.5 * 3600)
	bins := m.Bins()
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	for i, want := range []float64{864000, 864000, 432000} {
		if math.Abs(bins[i]-want) > 1e-6 {
			t.Errorf("bin %d = %g, want %g", i, bins[i], want)
		}
	}
	// Bin energy sums to total.
	var sum float64
	for _, b := range bins {
		sum += b
	}
	if math.Abs(sum-m.TotalEnergy()) > 1e-6 {
		t.Errorf("bin sum %g != total %g", sum, m.TotalEnergy())
	}
}

func TestMeterSpanningManyBins(t *testing.T) {
	d := smallDC(t)
	m := NewMeter(d, 10)
	p := d.PM(0)
	p.State = cluster.PMOn
	m.Advance(0)
	m.Advance(100) // 10 bins of 10 s at 240 W
	bins := m.Bins()
	if len(bins) != 10 {
		t.Fatalf("bins = %d, want 10", len(bins))
	}
	for i, b := range bins {
		if math.Abs(b-2400) > 1e-9 {
			t.Errorf("bin %d = %g, want 2400", i, b)
		}
	}
}

func TestMeterBackwardsPanics(t *testing.T) {
	d := smallDC(t)
	m := NewMeter(d, 3600)
	m.Advance(100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on backwards advance")
		}
	}()
	m.Advance(50)
}

func TestNewMeterPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMeter(smallDC(t), 0)
}

func TestPMEnergyOutOfRange(t *testing.T) {
	m := NewMeter(smallDC(t), 3600)
	if m.PMEnergy(-1) != 0 || m.PMEnergy(100) != 0 {
		t.Error("out-of-range PMEnergy should be 0")
	}
}

func TestAdvanceSameInstantNoCharge(t *testing.T) {
	d := smallDC(t)
	m := NewMeter(d, 3600)
	d.PM(0).State = cluster.PMOn
	m.Advance(10)
	m.Advance(10)
	if got := m.TotalEnergy(); math.Abs(got-2400) > 1e-9 {
		t.Errorf("energy = %g, want 2400 (no double charge)", got)
	}
}

func TestKWhConversions(t *testing.T) {
	if got := KWh(3.6e6); got != 1 {
		t.Errorf("KWh(3.6e6) = %g", got)
	}
	if got := Joules(2); got != 7.2e6 {
		t.Errorf("Joules(2) = %g", got)
	}
	if got := KWh(Joules(5.5)); math.Abs(got-5.5) > 1e-12 {
		t.Error("KWh/Joules not inverse")
	}
}

func TestRebin(t *testing.T) {
	hourly := []float64{1, 2, 3, 4, 5}
	daily := Rebin(hourly, 2)
	want := []float64{3, 7, 5}
	if len(daily) != len(want) {
		t.Fatalf("Rebin len = %d", len(daily))
	}
	for i := range want {
		if daily[i] != want[i] {
			t.Errorf("Rebin[%d] = %g, want %g", i, daily[i], want[i])
		}
	}
	if got := Rebin(nil, 24); len(got) != 0 {
		t.Error("Rebin(nil) should be empty")
	}
}

func TestRebinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Rebin([]float64{1}, 0)
}

// Property: rebinning conserves total energy.
func TestQuickRebinConserves(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		series := make([]float64, len(raw))
		var total float64
		for i, x := range raw {
			series[i] = float64(x)
			total += series[i]
		}
		var sum float64
		for _, b := range Rebin(series, n) {
			sum += b
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: meter total equals the sum of per-PM energies and bins.
func TestQuickMeterConservation(t *testing.T) {
	f := func(steps []uint8) bool {
		d := smallDC(nil)
		m := NewMeter(d, 500)
		now := 0.0
		for i, s := range steps {
			now += float64(s%100) + 1
			m.Advance(now)
			// Toggle a PM state each step.
			p := d.PM(cluster.PMID(i % d.Size()))
			if p.State == cluster.PMOff {
				p.State = cluster.PMOn
			} else {
				p.State = cluster.PMOff
			}
		}
		m.Advance(now + 10)
		var perPM, binSum float64
		for i := 0; i < d.Size(); i++ {
			perPM += m.PMEnergy(cluster.PMID(i))
		}
		for _, b := range m.Bins() {
			binSum += b
		}
		tot := m.TotalEnergy()
		return math.Abs(perPM-tot) < 1e-6*(1+tot) && math.Abs(binSum-tot) < 1e-6*(1+tot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMeterAdvance(b *testing.B) {
	d := cluster.TableIIFleet()
	for _, p := range d.PMs() {
		p.State = cluster.PMOn
	}
	m := NewMeter(d, 3600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Advance(float64(i))
	}
}
