package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (no-ops / zero), so instrumented code never guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. The hot path is a single atomic add.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric stored as atomic float bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bounded histogram: observations are counted into the
// bucket of the first bound >= v, with one implicit overflow bucket. The
// bucket counts, total count, and sum all update atomically (the sum via
// a CAS loop), so concurrent runs can share nothing but still be
// race-clean under `go test -race`.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	n      atomic.Int64
	sum    atomic.Uint64 // float bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket returns the count of bucket i (i == len(bounds) is overflow).
func (h *Histogram) Bucket(i int) int64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// Span accumulates wall-clock time spent in one named phase. Stop
// functions are cheap enough for per-event use: two time.Now calls and
// two atomic adds per timed region.
type Span struct {
	calls Counter
	ns    Counter
}

// Time starts the clock and returns the stop function. Safe on a nil
// receiver (returns a shared no-op).
func (s *Span) Time() func() {
	if s == nil {
		return noopStop
	}
	start := time.Now()
	return func() {
		s.calls.Add(1)
		s.ns.Add(time.Since(start).Nanoseconds())
	}
}

// Calls returns how many times the phase ran.
func (s *Span) Calls() int64 {
	if s == nil {
		return 0
	}
	return s.calls.Value()
}

// TotalNS returns the accumulated wall-clock nanoseconds.
func (s *Span) TotalNS() int64 {
	if s == nil {
		return 0
	}
	return s.ns.Value()
}

var noopStop = func() {}

// Registry holds named metrics. Lookup (get-or-create) takes a mutex;
// updates on the returned metric are lock-free, so hot paths cache the
// pointer once and pay only atomics per event.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	phases map[string]*Span
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		phases: make(map[string]*Span),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket bounds (ascending). Bounds are fixed at creation; later
// calls with different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		r.hists[name] = h
	}
	return h
}

func (r *Registry) phase(name string) *Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.phases[name]
	if !ok {
		s = &Span{}
		r.phases[name] = s
	}
	return s
}

// histSnapshot is a histogram's JSON form.
type histSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// phaseSnapshot is a span's JSON form.
type phaseSnapshot struct {
	Calls   int64 `json:"calls"`
	TotalNS int64 `json:"total_ns"`
}

// snapshot captures every metric under the registry lock.
type snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]histSnapshot  `json:"histograms"`
	Phases     map[string]phaseSnapshot `json:"phases"`
}

func (r *Registry) snapshot() snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]histSnapshot, len(r.hists)),
		Phases:     make(map[string]phaseSnapshot, len(r.phases)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := histSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	for name, sp := range r.phases {
		s.Phases[name] = phaseSnapshot{Calls: sp.Calls(), TotalNS: sp.TotalNS()}
	}
	return s
}

// WriteJSON dumps every metric as one JSON object. Map keys are emitted
// in sorted order (encoding/json's map behaviour), so the dump layout is
// deterministic even though timing values are wall-clock.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshot())
}

// WriteText renders a human-readable metrics summary: counters and
// gauges one per line, phases with call counts and mean latency.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%-36s %12d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%-36s %12g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Phases) {
		p := s.Phases[name]
		mean := time.Duration(0)
		if p.Calls > 0 {
			mean = time.Duration(p.TotalNS / p.Calls)
		}
		if _, err := fmt.Fprintf(w, "phase %-30s %12d calls  total %-12s mean %s\n",
			name, p.Calls, time.Duration(p.TotalNS), mean); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "hist  %-30s %12d samples  sum %g\n", name, h.Count, h.Sum); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
