package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// SchemaVersion is the trace event schema version, carried by every event
// as "v". Bump it when an event's field set changes meaning.
const SchemaVersion = 1

// wallKey is the one wall-clock field a trace line may carry. It is
// always the final key of the line, which is what makes CanonicalLine a
// simple suffix cut rather than a JSON round-trip.
const wallKey = `,"wall":`

// cellKey is the multi-cell engine's cell-ID stamp. Like "wall" it is
// non-canonical by design: a C-cell run and the monolith make identical
// decisions (DESIGN.md §14), so the cell an event happened to fire in is
// execution metadata, not simulation output. It is emitted directly
// before "wall" (wall stays the final key) and CanonicalLine strips
// both, keeping canonical traces byte-comparable across cell counts.
// The key "cell" is therefore reserved: events must not use it as an
// ordinary field name.
const cellKey = `,"cell":`

// KV is one typed event field. Construct with I, F, S, or B.
type KV struct {
	K    string
	kind byte // 'i', 'f', 's', 'b'
	i    int64
	f    float64
	s    string
}

// I is an integer field.
func I(k string, v int64) KV { return KV{K: k, kind: 'i', i: v} }

// F is a float field.
func F(k string, v float64) KV { return KV{K: k, kind: 'f', f: v} }

// S is a string field.
func S(k, v string) KV { return KV{K: k, kind: 's', s: v} }

// B is a boolean field.
func B(k string, v bool) KV {
	var i int64
	if v {
		i = 1
	}
	return KV{K: k, kind: 'b', i: i}
}

// Tracer writes schema-versioned JSONL run events. Each event carries a
// logical clock ("seq", the emission index), the simulation time ("t"),
// the event type, the caller's fields in call order, and finally the
// wall-clock timestamp ("wall", Unix nanoseconds). Field order is fixed
// by construction — the encoder is hand-rolled, not reflective — so two
// identical runs produce byte-identical traces once "wall" is stripped.
//
// Emit is safe for concurrent use (a mutex orders lines), though the
// simulator itself is single-threaded per run.
type Tracer struct {
	mu   sync.Mutex
	w    io.Writer
	buf  []byte
	seq  uint64
	err  error
	wall func() int64 // injectable for tests

	// cell is the active cell scope stamped onto emitted lines as the
	// non-canonical "cell" field; hasCell gates it (cell IDs start at 0).
	cell    int64
	hasCell bool
}

// NewTracer returns a tracer writing to w. The line buffer is
// preallocated so steady-state emission reallocates only for lines that
// outgrow every predecessor.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{
		w:    w,
		buf:  make([]byte, 0, 512),
		wall: func() int64 { return time.Now().UnixNano() },
	}
}

// Emit writes one event line.
func (tr *Tracer) Emit(t float64, event string, fields ...KV) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	b := tr.buf[:0]
	b = append(b, `{"v":`...)
	b = strconv.AppendInt(b, SchemaVersion, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, tr.seq, 10)
	b = append(b, `,"t":`...)
	b = appendFloat(b, t)
	b = append(b, `,"event":`...)
	b = strconv.AppendQuote(b, event)
	for _, kv := range fields {
		if kv.K == "cell" {
			panic(`obs: "cell" is a reserved trace field (the multi-cell engine's stamp)`)
		}
		b = append(b, ',')
		b = strconv.AppendQuote(b, kv.K)
		b = append(b, ':')
		switch kv.kind {
		case 'i':
			b = strconv.AppendInt(b, kv.i, 10)
		case 'f':
			b = appendFloat(b, kv.f)
		case 's':
			b = strconv.AppendQuote(b, kv.s)
		case 'b':
			if kv.i != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		default:
			b = append(b, "null"...)
		}
	}
	if tr.hasCell {
		b = append(b, cellKey...)
		b = strconv.AppendInt(b, tr.cell, 10)
	}
	b = append(b, wallKey...)
	b = strconv.AppendInt(b, tr.wall(), 10)
	b = append(b, '}', '\n')
	tr.buf = b
	tr.seq++
	if tr.err == nil {
		_, tr.err = tr.w.Write(b)
	}
}

// SetCell stamps subsequently emitted events with the given cell ID (a
// trailing non-canonical "cell" field, before "wall"). The multi-cell
// engine sets it around each dispatched event.
func (tr *Tracer) SetCell(c int64) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.cell, tr.hasCell = c, true
	tr.mu.Unlock()
}

// ClearCell removes the cell stamp.
func (tr *Tracer) ClearCell() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.hasCell = false
	tr.mu.Unlock()
}

// ResumeSeq fast-forwards the logical clock to seq, so a tracer opened
// after a checkpoint restore numbers its first event exactly where the
// interrupted run's tracer stopped. Concatenating the interrupted trace
// with the resumed one then reproduces the uninterrupted trace
// byte-for-byte (canonically). Rewinding an already-advanced clock is
// refused — it would mint duplicate sequence numbers.
func (tr *Tracer) ResumeSeq(seq uint64) error {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.seq > seq {
		return fmt.Errorf("obs: cannot rewind trace clock from %d to %d", tr.seq, seq)
	}
	tr.seq = seq
	return nil
}

// Events returns the number of events emitted so far.
func (tr *Tracer) Events() uint64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.seq
}

// Err returns the first write error, if any.
func (tr *Tracer) Err() error {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.err
}

// appendFloat formats a float as shortest-round-trip JSON. NaN and
// infinities (never produced by a healthy run) are quoted so the line
// stays valid JSON.
func appendFloat(b []byte, v float64) []byte {
	if v != v || v > 1.7976931348623157e308 || v < -1.7976931348623157e308 {
		return strconv.AppendQuote(b, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// CanonicalLine strips the non-canonical suffix from one trace line —
// the wall-clock field and, when present, the multi-cell engine's cell
// stamp directly before it — returning the determinism-comparable form.
// Lines without a wall field are returned unchanged (minus any trailing
// newline).
func CanonicalLine(line []byte) []byte {
	line = bytes.TrimRight(line, "\r\n")
	if i := bytes.LastIndex(line, []byte(wallKey)); i >= 0 && bytes.HasSuffix(line, []byte("}")) {
		trimmed := line[:i]
		if j := bytes.LastIndex(trimmed, []byte(cellKey)); j >= 0 && allDigits(trimmed[j+len(cellKey):]) {
			trimmed = trimmed[:j]
		}
		out := append([]byte(nil), trimmed...)
		return append(out, '}')
	}
	return append([]byte(nil), line...)
}

// allDigits reports whether b is a non-empty run of ASCII digits — the
// exact shape of an emitted cell stamp's value (cell IDs are >= 0). The
// check keeps CanonicalLine from eating an ordinary field that merely
// ends a line, should an event ever (wrongly) use the reserved key.
func allDigits(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	for _, c := range b {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// Canonicalize streams a JSONL trace from r to w with every line's
// wall-clock field stripped. After this, two same-seed runs' traces are
// byte-identical — the property the golden-trace test and
// `tracestat -diff` assert.
func Canonicalize(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	bw := bufio.NewWriter(w)
	for sc.Scan() {
		if _, err := bw.Write(CanonicalLine(sc.Bytes())); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
