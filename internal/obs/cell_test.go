package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestTracerCellStamp pins the cell-stamp plumbing: SetCell appends a
// ,"cell":K field immediately before the trailing wall field, ClearCell
// removes it, and a never-scoped tracer emits no cell field at all.
func TestTracerCellStamp(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixedWall(tr, 42)

	tr.Emit(1, "plain", I("vm", 1))
	tr.SetCell(3)
	tr.Emit(2, "stamped", I("vm", 2))
	tr.ClearCell()
	tr.Emit(3, "plain-again", I("vm", 3))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d lines, want 3", len(lines))
	}
	if strings.Contains(lines[0], `"cell":`) {
		t.Errorf("unscoped line carries a cell stamp: %s", lines[0])
	}
	if !strings.HasSuffix(lines[1], `,"cell":3,"wall":42}`) {
		t.Errorf("stamped line must end ...,\"cell\":3,\"wall\":42}: %s", lines[1])
	}
	if strings.Contains(lines[2], `"cell":`) {
		t.Errorf("line after ClearCell carries a cell stamp: %s", lines[2])
	}

	// Cell 0 is a real cell, not "no cell": the stamp must still appear.
	tr.SetCell(0)
	tr.Emit(4, "zero")
	last := strings.TrimSpace(buf.String())
	last = last[strings.LastIndexByte(last, '\n')+1:]
	if !strings.HasSuffix(last, `,"cell":0,"wall":42}`) {
		t.Errorf("cell-0 stamp dropped: %s", last)
	}
}

// TestCanonicalLineStripsCellStamp asserts canonicalization removes the
// cell stamp along with the wall field — the canonical stream is
// layout-independent — while leaving user payloads that merely look
// like a cell field untouched.
func TestCanonicalLineStripsCellStamp(t *testing.T) {
	in := []byte(`{"v":1,"seq":0,"t":0,"event":"boot","pm":3,"cell":2,"wall":123}` + "\n")
	want := `{"v":1,"seq":0,"t":0,"event":"boot","pm":3}`
	if got := string(CanonicalLine(in)); got != want {
		t.Errorf("canonical = %s, want %s", got, want)
	}
	// No stamp: only the wall field goes (the pre-cell format).
	plain := []byte(`{"v":1,"seq":1,"t":0,"event":"x","wall":9}`)
	if got := string(CanonicalLine(plain)); got != `{"v":1,"seq":1,"t":0,"event":"x"}` {
		t.Errorf("plain canonical = %s", got)
	}
	// A "cell" with a non-numeric value is user data, not our stamp.
	odd := []byte(`{"v":1,"seq":2,"t":0,"event":"x","cell":"a1","wall":9}`)
	if got := string(CanonicalLine(odd)); got != `{"v":1,"seq":2,"t":0,"event":"x","cell":"a1"}` {
		t.Errorf("string-valued cell stripped: %s", got)
	}
}

// TestEmitRejectsReservedCellKey pins "cell" as a reserved field name:
// handlers must not collide with the tracer-owned stamp.
func TestEmitRejectsReservedCellKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Emit accepted a user field named \"cell\"")
		}
	}()
	tr := NewTracer(&bytes.Buffer{})
	tr.Emit(0, "x", I("cell", 1))
}

// TestObserveScopedCellHistograms pins the histogram counterpart of the
// PR-8 counter fix: ObserveScoped double-books samples into per-cell
// "@cellK" histograms so cells never share a sink, and the per-cell
// sums and counts partition the base histogram's exactly.
func TestObserveScopedCellHistograms(t *testing.T) {
	o := New()
	bounds := []float64{1, 10, 100}

	o.ObserveScoped("x.wait", bounds, 0.5) // unscoped: base only
	o.EnterCell(0)
	o.ObserveScoped("x.wait", bounds, 2)
	o.ObserveScoped("x.wait", bounds, 3)
	o.LeaveCell()
	o.EnterCell(1)
	o.ObserveScoped("x.wait", bounds, 50)
	o.LeaveCell()
	o.ObserveScoped("x.wait", bounds, 200) // unscoped overflow sample

	base := o.Reg.Histogram("x.wait", bounds)
	c0 := o.Reg.Histogram("x.wait@cell0", bounds)
	c1 := o.Reg.Histogram("x.wait@cell1", bounds)

	if got := base.Count(); got != 5 {
		t.Errorf("base count = %d, want 5", got)
	}
	if got := base.Sum(); got != 255.5 {
		t.Errorf("base sum = %g, want 255.5", got)
	}
	if got, want := c0.Count(), int64(2); got != want {
		t.Errorf("@cell0 count = %d, want %d", got, want)
	}
	if got := c0.Sum(); got != 5 {
		t.Errorf("@cell0 sum = %g, want 5", got)
	}
	if got, want := c1.Count(), int64(1); got != want {
		t.Errorf("@cell1 count = %d, want %d", got, want)
	}
	if got := c1.Sum(); got != 50 {
		t.Errorf("@cell1 sum = %g, want 50", got)
	}
	// Per-cell buckets partition the scoped share of the base exactly.
	for i := 0; i <= len(bounds); i++ {
		cells := c0.Bucket(i) + c1.Bucket(i)
		if cells > base.Bucket(i) {
			t.Errorf("bucket %d: cell total %d exceeds base %d", i, cells, base.Bucket(i))
		}
	}

	// A zero-valued Observer literal degrades to a plain observe (no
	// spurious @cell0 twin), and a nil registry is a no-op.
	lit := Observer{Reg: NewRegistry()}
	lit.ObserveScoped("y.wait", bounds, 7)
	if got := lit.Reg.Histogram("y.wait", bounds).Count(); got != 1 {
		t.Errorf("literal observer base count = %d, want 1", got)
	}
	if got := lit.Reg.Histogram("y.wait@cell0", bounds).Count(); got != 0 {
		t.Errorf("literal observer booked a @cell0 twin: count %d", got)
	}
	var nilObs *Observer
	nilObs.ObserveScoped("z", bounds, 1) // must not panic
}

// TestDecisionStreamIsolated pins the decision log's independence from
// the run trace: its own seq clock starting at 0, no cell stamp even
// while the run trace is cell-scoped, and EmitDecision is inert without
// a Decisions tracer.
func TestDecisionStreamIsolated(t *testing.T) {
	var runBuf, decBuf bytes.Buffer
	o := NewTracing(&runBuf)
	o.Decisions = NewTracer(&decBuf)
	fixedWall(o.Trace, 42)
	fixedWall(o.Decisions, 42)

	if !o.DecisionTracing() {
		t.Fatal("DecisionTracing false with a Decisions tracer set")
	}

	o.Emit(1, "run_event")
	o.EnterCell(2)
	o.Emit(2, "scoped_run_event")
	o.EmitDecision(2, "decision_place", I("vm", 7))
	o.LeaveCell()
	o.EmitDecision(3, "decision_spare", I("spares", 1))

	dec := strings.Split(strings.TrimSpace(decBuf.String()), "\n")
	if len(dec) != 2 {
		t.Fatalf("decision stream has %d lines, want 2", len(dec))
	}
	// Independent seq clock: decisions number from 0 even though the run
	// trace already consumed seqs.
	if !strings.Contains(dec[0], `"seq":0,`) || !strings.Contains(dec[1], `"seq":1,`) {
		t.Errorf("decision seqs not independent: %q", dec)
	}
	// No cell stamp leaks into the decision stream.
	for _, line := range dec {
		if strings.Contains(line, `"cell":`) {
			t.Errorf("decision line carries a cell stamp: %s", line)
		}
	}
	// The run trace still got its stamp (the scope applies there only).
	if !bytes.Contains(runBuf.Bytes(), []byte(`,"cell":2,`)) {
		t.Errorf("run trace lost its cell stamp: %s", runBuf.String())
	}

	// Without a Decisions tracer both helpers are inert.
	plain := New()
	if plain.DecisionTracing() {
		t.Error("DecisionTracing true without a Decisions tracer")
	}
	plain.EmitDecision(1, "decision_place") // no-op, must not panic
	var nilObs *Observer
	nilObs.EmitDecision(1, "decision_place")
	if nilObs.DecisionTracing() {
		t.Error("nil observer reports decision tracing")
	}
}

// TestObserverCellScope pins the observer-level scope: EnterCell routes
// the scope to AddScoped (base counter plus a @cellK twin) and to the
// tracer; LeaveCell ends it; a zero-valued Observer literal reports no
// scope and AddScoped degrades to a plain Add.
func TestObserverCellScope(t *testing.T) {
	var buf bytes.Buffer
	o := NewTracing(&buf)

	o.AddScoped("x.events", 2) // unscoped: base only
	o.EnterCell(1)
	if c, ok := o.CellScope(); !ok || c != 1 {
		t.Fatalf("CellScope = (%d,%v), want (1,true)", c, ok)
	}
	o.AddScoped("x.events", 3) // scoped: base + @cell1
	o.LeaveCell()
	if _, ok := o.CellScope(); ok {
		t.Fatal("scope survives LeaveCell")
	}
	o.AddScoped("x.events", 5) // unscoped again

	if got := o.Reg.Counter("x.events").Value(); got != 10 {
		t.Errorf("base counter = %d, want 10", got)
	}
	if got := o.Reg.Counter("x.events@cell1").Value(); got != 3 {
		t.Errorf("@cell1 counter = %d, want 3", got)
	}

	// The scope reached the tracer too.
	o.EnterCell(2)
	o.Trace.Emit(1, "scoped")
	o.LeaveCell()
	if !bytes.Contains(buf.Bytes(), []byte(`,"cell":2,`)) {
		t.Errorf("EnterCell did not stamp the tracer: %s", buf.String())
	}

	// A literal-constructed Observer must behave as unscoped, not as
	// "scoped to cell 0" — the internal offset guards the zero value.
	var lit Observer
	if _, ok := lit.CellScope(); ok {
		t.Fatal("zero-valued Observer reports a cell scope")
	}
	lit.EnterCell(0)
	if c, ok := lit.CellScope(); !ok || c != 0 {
		t.Fatalf("EnterCell(0) scope = (%d,%v), want (0,true)", c, ok)
	}
	lit.LeaveCell() // nil Reg/Trace: must not panic
}
