package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestTracerCellStamp pins the cell-stamp plumbing: SetCell appends a
// ,"cell":K field immediately before the trailing wall field, ClearCell
// removes it, and a never-scoped tracer emits no cell field at all.
func TestTracerCellStamp(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixedWall(tr, 42)

	tr.Emit(1, "plain", I("vm", 1))
	tr.SetCell(3)
	tr.Emit(2, "stamped", I("vm", 2))
	tr.ClearCell()
	tr.Emit(3, "plain-again", I("vm", 3))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d lines, want 3", len(lines))
	}
	if strings.Contains(lines[0], `"cell":`) {
		t.Errorf("unscoped line carries a cell stamp: %s", lines[0])
	}
	if !strings.HasSuffix(lines[1], `,"cell":3,"wall":42}`) {
		t.Errorf("stamped line must end ...,\"cell\":3,\"wall\":42}: %s", lines[1])
	}
	if strings.Contains(lines[2], `"cell":`) {
		t.Errorf("line after ClearCell carries a cell stamp: %s", lines[2])
	}

	// Cell 0 is a real cell, not "no cell": the stamp must still appear.
	tr.SetCell(0)
	tr.Emit(4, "zero")
	last := strings.TrimSpace(buf.String())
	last = last[strings.LastIndexByte(last, '\n')+1:]
	if !strings.HasSuffix(last, `,"cell":0,"wall":42}`) {
		t.Errorf("cell-0 stamp dropped: %s", last)
	}
}

// TestCanonicalLineStripsCellStamp asserts canonicalization removes the
// cell stamp along with the wall field — the canonical stream is
// layout-independent — while leaving user payloads that merely look
// like a cell field untouched.
func TestCanonicalLineStripsCellStamp(t *testing.T) {
	in := []byte(`{"v":1,"seq":0,"t":0,"event":"boot","pm":3,"cell":2,"wall":123}` + "\n")
	want := `{"v":1,"seq":0,"t":0,"event":"boot","pm":3}`
	if got := string(CanonicalLine(in)); got != want {
		t.Errorf("canonical = %s, want %s", got, want)
	}
	// No stamp: only the wall field goes (the pre-cell format).
	plain := []byte(`{"v":1,"seq":1,"t":0,"event":"x","wall":9}`)
	if got := string(CanonicalLine(plain)); got != `{"v":1,"seq":1,"t":0,"event":"x"}` {
		t.Errorf("plain canonical = %s", got)
	}
	// A "cell" with a non-numeric value is user data, not our stamp.
	odd := []byte(`{"v":1,"seq":2,"t":0,"event":"x","cell":"a1","wall":9}`)
	if got := string(CanonicalLine(odd)); got != `{"v":1,"seq":2,"t":0,"event":"x","cell":"a1"}` {
		t.Errorf("string-valued cell stripped: %s", got)
	}
}

// TestEmitRejectsReservedCellKey pins "cell" as a reserved field name:
// handlers must not collide with the tracer-owned stamp.
func TestEmitRejectsReservedCellKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Emit accepted a user field named \"cell\"")
		}
	}()
	tr := NewTracer(&bytes.Buffer{})
	tr.Emit(0, "x", I("cell", 1))
}

// TestObserverCellScope pins the observer-level scope: EnterCell routes
// the scope to AddScoped (base counter plus a @cellK twin) and to the
// tracer; LeaveCell ends it; a zero-valued Observer literal reports no
// scope and AddScoped degrades to a plain Add.
func TestObserverCellScope(t *testing.T) {
	var buf bytes.Buffer
	o := NewTracing(&buf)

	o.AddScoped("x.events", 2) // unscoped: base only
	o.EnterCell(1)
	if c, ok := o.CellScope(); !ok || c != 1 {
		t.Fatalf("CellScope = (%d,%v), want (1,true)", c, ok)
	}
	o.AddScoped("x.events", 3) // scoped: base + @cell1
	o.LeaveCell()
	if _, ok := o.CellScope(); ok {
		t.Fatal("scope survives LeaveCell")
	}
	o.AddScoped("x.events", 5) // unscoped again

	if got := o.Reg.Counter("x.events").Value(); got != 10 {
		t.Errorf("base counter = %d, want 10", got)
	}
	if got := o.Reg.Counter("x.events@cell1").Value(); got != 3 {
		t.Errorf("@cell1 counter = %d, want 3", got)
	}

	// The scope reached the tracer too.
	o.EnterCell(2)
	o.Trace.Emit(1, "scoped")
	o.LeaveCell()
	if !bytes.Contains(buf.Bytes(), []byte(`,"cell":2,`)) {
		t.Errorf("EnterCell did not stamp the tracer: %s", buf.String())
	}

	// A literal-constructed Observer must behave as unscoped, not as
	// "scoped to cell 0" — the internal offset guards the zero value.
	var lit Observer
	if _, ok := lit.CellScope(); ok {
		t.Fatal("zero-valued Observer reports a cell scope")
	}
	lit.EnterCell(0)
	if c, ok := lit.CellScope(); !ok || c != 0 {
		t.Fatalf("EnterCell(0) scope = (%d,%v), want (0,true)", c, ok)
	}
	lit.LeaveCell() // nil Reg/Trace: must not panic
}
