// Package obs is the simulator's zero-dependency observability layer:
// a metrics registry (counters, gauges, bounded histograms) with atomic
// hot-path updates, a structured JSONL run tracer with schema-versioned
// events, and per-phase wall-clock timing spans.
//
// Everything is nil-safe: an Observer that was never constructed (a nil
// pointer) turns every call into a no-op, so instrumented code paths need
// no guards and pay only a nil check when observability is off. The
// simulator threads a single *Observer through sim.Config, core.Context,
// and spare.Controller; both CLIs expose it via -trace / -metrics.
//
// Determinism contract: trace events carry only simulation-derived data
// plus one wall-clock field ("wall", always the final key of a line).
// CanonicalLine strips it, after which two same-seed runs produce
// byte-identical traces — the golden-trace regression test and
// `tracestat -diff` are built on this.
package obs

import "io"

// Observer bundles a metrics registry with an optional run tracer. A nil
// Observer is valid and inert.
type Observer struct {
	// Reg collects counters, gauges, and histograms. Always non-nil on
	// a constructed Observer.
	Reg *Registry

	// Trace receives structured run events; nil disables tracing while
	// keeping metrics.
	Trace *Tracer
}

// New returns an Observer that collects metrics only.
func New() *Observer {
	return &Observer{Reg: NewRegistry()}
}

// NewTracing returns an Observer that collects metrics and writes JSONL
// trace events to w. The caller owns w (and should flush/close it after
// the run); Tracer buffers internally per line only.
func NewTracing(w io.Writer) *Observer {
	return &Observer{Reg: NewRegistry(), Trace: NewTracer(w)}
}

// Counter returns the named counter, or nil (an inert counter) when the
// observer is nil.
func (o *Observer) Counter(name string) *Counter {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Add increments the named counter by n; a convenience for call sites
// too cold to cache the *Counter.
func (o *Observer) Add(name string, n int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Counter(name).Add(n)
}

// SetGauge sets the named gauge.
func (o *Observer) SetGauge(name string, v float64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Gauge(name).Set(v)
}

// Phase returns the named timing span, or nil (inert) when the observer
// is nil. Hot call sites should cache the *Span.
func (o *Observer) Phase(name string) *Span {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.phase(name)
}

// Tracing reports whether trace events are being recorded; call sites use
// it to skip building event payloads entirely when tracing is off.
func (o *Observer) Tracing() bool {
	return o != nil && o.Trace != nil
}

// Emit writes one trace event when tracing is enabled. Cold call sites
// can call it unconditionally; hot ones should guard with Tracing() to
// avoid assembling the key/value payload.
func (o *Observer) Emit(t float64, event string, fields ...KV) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.Emit(t, event, fields...)
}
