// Package obs is the simulator's zero-dependency observability layer:
// a metrics registry (counters, gauges, bounded histograms) with atomic
// hot-path updates, a structured JSONL run tracer with schema-versioned
// events, and per-phase wall-clock timing spans.
//
// Everything is nil-safe: an Observer that was never constructed (a nil
// pointer) turns every call into a no-op, so instrumented code paths need
// no guards and pay only a nil check when observability is off. The
// simulator threads a single *Observer through sim.Config, core.Context,
// and spare.Controller; both CLIs expose it via -trace / -metrics.
//
// Determinism contract: trace events carry only simulation-derived data
// plus one wall-clock field ("wall", always the final key of a line).
// CanonicalLine strips it, after which two same-seed runs produce
// byte-identical traces — the golden-trace regression test and
// `tracestat -diff` are built on this.
package obs

import (
	"io"
	"strconv"
)

// Observer bundles a metrics registry with an optional run tracer. A nil
// Observer is valid and inert.
type Observer struct {
	// Reg collects counters, gauges, and histograms. Always non-nil on
	// a constructed Observer.
	Reg *Registry

	// Trace receives structured run events; nil disables tracing while
	// keeping metrics.
	Trace *Tracer

	// Decisions receives the policy lab's structured decision records
	// (decision_place / decision_moves / decision_spare, emitted by
	// policy.Recorder) on a stream separate from the run trace. The
	// separation is deliberate: the decision log has its own logical
	// clock, so recording decisions never perturbs the run trace's "seq"
	// numbering — a recorded run stays byte-identical to an unrecorded
	// one (`make policy-audit` pins this). Decision lines never carry
	// the multi-cell stamp either: decisions are bit-identical across
	// cell counts, so the log is canonical by construction.
	Decisions *Tracer

	// cellPlus1 is the active cell scope plus one; zero means no scope.
	// The offset keeps a literal-constructed Observer{} (scope never
	// set) from silently reporting cell 0. Set via EnterCell/LeaveCell
	// by the multi-cell engine around each dispatched event; read by
	// AddScoped to double-book counters per cell. Single-writer by the
	// run's own event loop, like the simulator state itself.
	cellPlus1 int

	// cellNames caches "@cellK" counter suffixes so scoped increments
	// on the hot path do not re-format the label.
	cellNames []string
}

// New returns an Observer that collects metrics only.
func New() *Observer {
	return &Observer{Reg: NewRegistry()}
}

// NewTracing returns an Observer that collects metrics and writes JSONL
// trace events to w. The caller owns w (and should flush/close it after
// the run); Tracer buffers internally per line only.
func NewTracing(w io.Writer) *Observer {
	return &Observer{Reg: NewRegistry(), Trace: NewTracer(w)}
}

// Counter returns the named counter, or nil (an inert counter) when the
// observer is nil.
func (o *Observer) Counter(name string) *Counter {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.Counter(name)
}

// Add increments the named counter by n; a convenience for call sites
// too cold to cache the *Counter.
func (o *Observer) Add(name string, n int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Counter(name).Add(n)
}

// EnterCell sets the ambient cell scope: trace events emitted until
// LeaveCell carry a trailing non-canonical "cell" field, and AddScoped
// counters double-book into "<name>@cellK". Mirrors the sweep runner's
// "@seedN" disambiguation so per-cell tallies never share a sink.
func (o *Observer) EnterCell(c int) {
	if o == nil {
		return
	}
	o.cellPlus1 = c + 1
	if o.Trace != nil {
		o.Trace.SetCell(int64(c))
	}
}

// LeaveCell clears the cell scope.
func (o *Observer) LeaveCell() {
	if o == nil {
		return
	}
	o.cellPlus1 = 0
	if o.Trace != nil {
		o.Trace.ClearCell()
	}
}

// CellScope returns the active cell scope, if one is set.
func (o *Observer) CellScope() (cell int, ok bool) {
	if o == nil || o.cellPlus1 == 0 {
		return 0, false
	}
	return o.cellPlus1 - 1, true
}

// AddScoped increments the named counter and, when a cell scope is
// active, the per-cell "<name>@cellK" counter as well. The base counter
// always carries the global total, so existing consumers are unchanged;
// the suffixed counters add the per-cell breakdown without any shared
// sink between cells.
func (o *Observer) AddScoped(name string, n int64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Counter(name).Add(n)
	if o.cellPlus1 > 0 {
		o.Reg.Counter(name + o.cellSuffix(o.cellPlus1-1)).Add(n)
	}
}

// ObserveScoped records v into the named histogram and, when a cell
// scope is active, into the per-cell "<name>@cellK" histogram as well —
// the histogram counterpart of AddScoped. The base histogram always
// carries the global distribution, so existing consumers are unchanged;
// the suffixed histograms add the per-cell breakdown without any shared
// sink between cells (their bucket counts and sums partition the
// base's exactly). Bounds are fixed at first creation, so every call
// site for one name must pass the same bounds.
func (o *Observer) ObserveScoped(name string, bounds []float64, v float64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Histogram(name, bounds).Observe(v)
	if o.cellPlus1 > 0 {
		o.Reg.Histogram(name+o.cellSuffix(o.cellPlus1-1), bounds).Observe(v)
	}
}

// cellSuffix returns the cached "@cellK" label for cell c.
func (o *Observer) cellSuffix(c int) string {
	for len(o.cellNames) <= c {
		o.cellNames = append(o.cellNames, "@cell"+strconv.Itoa(len(o.cellNames)))
	}
	return o.cellNames[c]
}

// SetGauge sets the named gauge.
func (o *Observer) SetGauge(name string, v float64) {
	if o == nil || o.Reg == nil {
		return
	}
	o.Reg.Gauge(name).Set(v)
}

// Phase returns the named timing span, or nil (inert) when the observer
// is nil. Hot call sites should cache the *Span.
func (o *Observer) Phase(name string) *Span {
	if o == nil || o.Reg == nil {
		return nil
	}
	return o.Reg.phase(name)
}

// Tracing reports whether trace events are being recorded; call sites use
// it to skip building event payloads entirely when tracing is off.
func (o *Observer) Tracing() bool {
	return o != nil && o.Trace != nil
}

// Emit writes one trace event when tracing is enabled. Cold call sites
// can call it unconditionally; hot ones should guard with Tracing() to
// avoid assembling the key/value payload.
func (o *Observer) Emit(t float64, event string, fields ...KV) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.Emit(t, event, fields...)
}

// DecisionTracing reports whether decision records are being collected;
// policy.Recorder uses it to skip payload assembly entirely when the
// decision log is off.
func (o *Observer) DecisionTracing() bool {
	return o != nil && o.Decisions != nil
}

// EmitDecision writes one decision record when decision tracing is
// enabled. The record goes to the Decisions tracer only — never the run
// trace — so its sequence numbering is independent of run events.
func (o *Observer) EmitDecision(t float64, event string, fields ...KV) {
	if o == nil || o.Decisions == nil {
		return
	}
	o.Decisions.Emit(t, event, fields...)
}
