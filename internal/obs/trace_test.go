package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// fixedWall pins the tracer's wall clock for byte-exact assertions.
func fixedWall(tr *Tracer, ns int64) { tr.wall = func() int64 { return ns } }

func TestEmitFieldOrderAndTypes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixedWall(tr, 42)
	tr.Emit(3600, "migration",
		I("vm", 7), I("from", 0), I("to", 12), F("gain", 1.25), S("note", `a"b`), B("timed", true))
	want := `{"v":1,"seq":0,"t":3600,"event":"migration","vm":7,"from":0,"to":12,"gain":1.25,"note":"a\"b","timed":true,"wall":42}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("line mismatch:\ngot  %s\nwant %s", got, want)
	}
	// Every line must be valid JSON.
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if m["from"] != float64(0) {
		t.Error("zero-valued ID field dropped — PM IDs are 0-based, zeros must survive")
	}
}

func TestSeqIsLogicalClock(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixedWall(tr, 1)
	for i := 0; i < 3; i++ {
		tr.Emit(float64(i), "tick")
	}
	if tr.Events() != 3 {
		t.Errorf("events = %d, want 3", tr.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i, line := range lines {
		if !strings.Contains(line, fmt.Sprintf(`"seq":%d,`, i)) {
			t.Errorf("line %d missing seq %d: %s", i, i, line)
		}
	}
}

func TestCanonicalLineStripsOnlyWall(t *testing.T) {
	in := []byte(`{"v":1,"seq":0,"t":0,"event":"boot","pm":3,"wall":123456789}` + "\n")
	want := `{"v":1,"seq":0,"t":0,"event":"boot","pm":3}`
	if got := string(CanonicalLine(in)); got != want {
		t.Errorf("canonical = %s, want %s", got, want)
	}
	// A line without a wall field passes through unchanged.
	plain := `{"v":1,"seq":1,"t":0,"event":"x"}`
	if got := string(CanonicalLine([]byte(plain + "\n"))); got != plain {
		t.Errorf("plain line changed: %s", got)
	}
	// A wall-like string VALUE must not confuse the cut: the wall field is
	// always last, so only the final occurrence is removed.
	tricky := `{"v":1,"seq":2,"t":0,"event":"x","note":",\"wall\":9","wall":5}`
	got := string(CanonicalLine([]byte(tricky)))
	if !strings.Contains(got, `"note"`) || strings.HasSuffix(got, `"wall":5}`) {
		t.Errorf("tricky canonical = %s", got)
	}
}

func TestCanonicalizeMakesRunsComparable(t *testing.T) {
	emit := func(wall int64) string {
		var buf bytes.Buffer
		tr := NewTracer(&buf)
		fixedWall(tr, wall)
		tr.Emit(0, "arrival", I("vm", 1))
		tr.Emit(60, "depart", I("vm", 1), I("pm", 0))
		return buf.String()
	}
	a, b := emit(100), emit(999)
	if a == b {
		t.Fatal("wall clocks should differ before canonicalization")
	}
	var ca, cb bytes.Buffer
	if err := Canonicalize(strings.NewReader(a), &ca); err != nil {
		t.Fatal(err)
	}
	if err := Canonicalize(strings.NewReader(b), &cb); err != nil {
		t.Fatal(err)
	}
	if ca.String() != cb.String() {
		t.Errorf("canonical traces differ:\n%s\nvs\n%s", ca.String(), cb.String())
	}
}

func TestEmitNonFiniteFloatsStayValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixedWall(tr, 1)
	tr.Emit(0, "weird", F("nan", math.NaN()), F("inf", math.Inf(1)))
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("non-finite floats broke JSON: %v\n%s", err, buf.String())
	}
}

func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	fixedWall(tr, 7)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit(float64(i), "tick", I("n", int64(i)))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved write produced invalid JSON: %v\n%s", err, line)
		}
	}
	if tr.Err() != nil {
		t.Errorf("unexpected tracer error: %v", tr.Err())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestTracerCapturesFirstWriteError(t *testing.T) {
	tr := NewTracer(&failWriter{})
	fixedWall(tr, 1)
	tr.Emit(0, "a")
	tr.Emit(1, "b")
	tr.Emit(2, "c")
	if tr.Err() == nil || !strings.Contains(tr.Err().Error(), "disk full") {
		t.Errorf("err = %v, want disk full", tr.Err())
	}
}
