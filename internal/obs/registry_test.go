package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	// Same name returns the same metric.
	if r.Counter("a") != c || r.Gauge("g") != g {
		t.Error("registry returned a different instance for an existing name")
	}
}

func TestNilMetricsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	var o *Observer
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	s.Time()()
	o.Add("x", 1)
	o.SetGauge("x", 1)
	o.Emit(0, "x")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Calls() != 0 {
		t.Error("nil metrics reported nonzero values")
	}
	if o.Counter("x") != nil || o.Phase("x") != nil || o.Tracing() {
		t.Error("nil observer handed out live metrics")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	// SearchFloat64s: bucket i counts v with bounds[i-1] < v <= ... first
	// index where bounds[i] >= v.
	want := []int64{2, 1, 1, 2} // {0.5,1}, {5}, {50}, {500,5000}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-5556.5) > 1e-9 {
		t.Errorf("sum = %g, want 5556.5", h.Sum())
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewRegistry().Histogram("bad", []float64{10, 1})
}

// TestConcurrentHotPath hammers every atomic update path from many
// goroutines; `go test -race ./internal/obs` is the real assertion here,
// the totals just confirm no update was lost.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 100})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			sp := r.phase("work")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				r.Gauge("level").Set(float64(i))
				h.Observe(float64(i % 200))
				sp.Time()()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("hits = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.phase("work").Calls(); got != workers*perWorker {
		t.Errorf("span calls = %d, want %d", got, workers*perWorker)
	}
}

func TestWriteJSONShape(t *testing.T) {
	o := New()
	o.Add("migrations", 7)
	o.SetGauge("active_pms", 12)
	o.Reg.Histogram("wait", []float64{1, 60}).Observe(0.5)
	o.Phase("kernel_build").Time()()

	var buf bytes.Buffer
	if err := o.Reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Counts []int64
			Count  int64
		}
		Phases map[string]struct {
			Calls   int64
			TotalNS int64 `json:"total_ns"`
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Counters["migrations"] != 7 {
		t.Errorf("counters.migrations = %d", got.Counters["migrations"])
	}
	if got.Gauges["active_pms"] != 12 {
		t.Errorf("gauges.active_pms = %g", got.Gauges["active_pms"])
	}
	if got.Histograms["wait"].Count != 1 {
		t.Errorf("histograms.wait.count = %d", got.Histograms["wait"].Count)
	}
	if got.Phases["kernel_build"].Calls != 1 {
		t.Errorf("phases.kernel_build.calls = %d", got.Phases["kernel_build"].Calls)
	}
}

func TestWriteText(t *testing.T) {
	o := New()
	o.Add("boots", 3)
	o.SetGauge("spares", 2)
	o.Phase("dispatch").Time()()
	o.Reg.Histogram("wait", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := o.Reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"boots", "spares", "phase dispatch", "hist  wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestSpanAccumulates(t *testing.T) {
	var s Span
	stop := s.Time()
	stop()
	s.Time()()
	if s.Calls() != 2 {
		t.Errorf("calls = %d, want 2", s.Calls())
	}
	if s.TotalNS() < 0 {
		t.Errorf("total ns negative: %d", s.TotalNS())
	}
}
