package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// This file implements the sparse candidate index behind
// MatrixOptions.CandidateK: a headroom/class grouping of the fleet that
// lets the arrival argmax and the consolidation column trackers score a
// handful of score-groups instead of all M PMs (DESIGN.md §13).
//
// The key observation is that for the canonical factor program
// (res, vir, rel, eff) the non-host cell value
//
//	p = ((p_vir * p_rel) * p_eff)
//
// depends on the PM only through (class, reliability bits, prospective
// utilization level for the column's demand shape) plus the feasibility
// predicate. Every feasible PM sharing that triple has a bit-identical p
// for every column of the shape, so the fleet collapses into score groups:
// per demand shape, a map from (class, level, reliability) to the sorted
// ID list of its member PMs. The dense argmax with its ID-order tie-break
// becomes "max p over groups, tie to the lowest member ID" — the same
// answer, computed over G groups instead of M rows.
//
// The index is owned by a Context (not safe for concurrent use, like the
// rest of the Context's scratch) and is maintained incrementally: each PM
// carries an occupancy version counter (cluster.PM.Version), and a sync
// pass re-derives group membership only for PMs whose (version, state,
// reliability) stamp changed since the last look. A full sync costs three
// word-compares per PM; re-deriving one PM costs O(shapes) feasibility and
// level evaluations.
//
// CandidateK is a sizing contract, not a structural cap: when a shape's
// population needs more than K non-empty groups the scan simply covers
// them all — exactness is never traded away. Overflow is counted on
// ctx.Obs ("core.sparse_shape_overflow") so a misconfigured K is visible.

// candIndex is the fleet-wide score-group index. One per Context, built
// lazily by Context.candidates.
type candIndex struct {
	ctx *Context

	// pms is the full fleet in ID order; PM IDs are dense (0..M-1 by
	// construction in cluster.New), so per-PM caches are plain slices.
	pms []*cluster.PM

	// stamps holds the last-seen (version, reliability bits, state) per
	// PM; a mismatch means the PM's groups must be re-derived.
	stamps []pmStamp

	// classIdx/classes give each PM class a compact index plus the
	// precomputed efficiency value per level.
	classIdx map[*cluster.PMClass]int32
	classes  []*candClass

	// shapes interns demand vectors by exact bit pattern, like the dense
	// kernel, so memoized group values are bit-identical to per-cell
	// evaluation.
	shapes    map[string]*candShape
	shapeList []*candShape
	key       []byte

	// events collects membership changes produced by syncPM for the
	// consolidation engine's targeted tracker updates. Bulk syncs discard
	// it.
	events []candEvent

	// workers is the sticky MatrixOptions.Workers request the bulk kernels
	// (sync's staleness sweep, shapeFor's first-seen fleet pass) resolve
	// against; candidatesWith updates it. Zero auto-sizes.
	workers int

	// dirty holds sync's per-span stale-PM lists (parallel path scratch).
	dirty [][]int32
}

// pmStamp is the staleness fingerprint of one PM. Version covers every
// occupancy mutation; State and Reliability are plain fields the simulator
// writes directly, so they are compared alongside.
type pmStamp struct {
	ver   uint64
	rel   uint64 // math.Float64bits(pm.Reliability)
	state cluster.PMState
}

// candClass is one PM class with the per-level efficiency products.
type candClass struct {
	class *cluster.PMClass
	info  *classInfo

	// effVal[l] = float64(l) / float64(W_j) * eff_j for l in 1..W_j —
	// exactly effProbability's return expression, so group values match
	// the dense kernel bit-for-bit. Nil when W_j == 0 (the class scores 0
	// everywhere and never joins a group).
	effVal []float64
}

// candKey identifies a score group within a shape.
type candKey struct {
	ci    int32  // compact class index
	level int32  // prospective utilization level for the shape's demand
	rel   uint64 // reliability bits
}

// candGroup is one score group: the PMs sharing a bit-identical non-host
// probability for every column of the shape.
type candGroup struct {
	key    candKey
	rel    float64 // the shared reliability value
	effVal float64 // the shared p_eff value
	// members holds the group's PM IDs in ascending order; the head is
	// the dense tie-break winner (rows are ID-sorted), with the column's
	// host — present in at most one group — skipped to its successor.
	members []int32
}

// candShape is the per-demand-shape grouping.
type candShape struct {
	demand   vector.V
	groups   []candGroup
	byKey    map[candKey]int32
	groupOf  []int32 // per PM ID: group index, or -1 when excluded
	nonEmpty int     // count of non-empty groups (the K contract)

	// seq/evFrom/evTo are per-Apply scratch for the sparse matrix: which
	// migration endpoint produced a membership event in this shape during
	// the Apply numbered seq (sparse.go).
	seq    uint64
	evFrom bool
	evTo   bool
}

// candEvent is one membership change: pm moved from group old to group new
// (-1 = excluded) within shape.
type candEvent struct {
	shape *candShape
	pm    int32
	old   int32
	new   int32
}

// candidates returns the Context's candidate index, synced to the current
// fleet state under the most recently requested worker count.
func (ctx *Context) candidates() *candIndex {
	if ctx.cand == nil {
		ctx.cand = newCandIndex(ctx)
	}
	ctx.cand.sync()
	return ctx.cand
}

// candidatesWith is candidates with an explicit worker request
// (MatrixOptions.Workers) applied to the index's bulk kernels before the
// sync pass runs. The setting is sticky: later plain candidates() calls
// reuse it, matching how one options value drives a whole consolidation
// pass.
func (ctx *Context) candidatesWith(workers int) *candIndex {
	if ctx.cand == nil {
		ctx.cand = newCandIndex(ctx)
	}
	ctx.cand.workers = workers
	ctx.cand.sync()
	return ctx.cand
}

func newCandIndex(ctx *Context) *candIndex {
	pms := ctx.DC.PMs()
	for i, pm := range pms {
		if int(pm.ID) != i {
			panic(fmt.Sprintf("core: candidate index needs dense PM IDs (slot %d holds PM %d)", i, pm.ID))
		}
	}
	return &candIndex{
		ctx:      ctx,
		pms:      pms,
		stamps:   make([]pmStamp, len(pms)),
		classIdx: make(map[*cluster.PMClass]int32, 4),
		shapes:   make(map[string]*candShape, 16),
	}
}

func stampOf(pm *cluster.PM) pmStamp {
	return pmStamp{ver: pm.Version(), rel: math.Float64bits(pm.Reliability), state: pm.State}
}

// sync re-derives group membership for every PM whose stamp changed. The
// events produced by a bulk sync have no consumer and are dropped.
//
// The staleness sweep — three word-compares per PM, the whole fleet every
// sync — shards across workers in fixed contiguous PM spans, each span
// collecting its stale IDs into its own slot; re-derivation then applies
// serially in span order, which is ascending PM ID, exactly the serial
// sweep's order. Group state mutates only in the serial phase, so worker
// count cannot change the index.
func (x *candIndex) sync() {
	n := len(x.pms)
	workers, borrowed := x.syncWorkers(n)
	defer ReturnWorkers(borrowed)
	if workers <= 1 {
		for id, pm := range x.pms {
			s := stampOf(pm)
			if s == x.stamps[id] {
				continue
			}
			x.stamps[id] = s
			x.resyncPM(int32(id))
		}
		x.events = x.events[:0]
		return
	}
	span := (n + workers - 1) / workers
	nspans := (n + span - 1) / span
	for len(x.dirty) < nspans {
		x.dirty = append(x.dirty, nil)
	}
	runSpans(workers, n, span, func(_, lo, hi int) {
		buf := x.dirty[lo/span][:0]
		for id := lo; id < hi; id++ {
			if stampOf(x.pms[id]) != x.stamps[id] {
				buf = append(buf, int32(id))
			}
		}
		x.dirty[lo/span] = buf
	})
	for si := 0; si < nspans; si++ {
		for _, id := range x.dirty[si] {
			x.stamps[id] = stampOf(x.pms[id])
			x.resyncPM(id)
		}
	}
	x.events = x.events[:0]
}

// syncWorkers resolves the index's worker count for a fleet-sized loop;
// the caller must ReturnWorkers the borrowed tokens. Auto requests share
// the sparse engine's serial-below threshold.
func (x *candIndex) syncWorkers(n int) (workers, borrowed int) {
	if x.workers == 0 && n < sparseParallelThreshold {
		return 1, 0
	}
	return claimWorkers(x.workers, n)
}

// syncPM refreshes one PM's stamp and membership, appending any membership
// changes to x.events (the consolidation Apply path reads them).
func (x *candIndex) syncPM(id int32) {
	x.stamps[id] = stampOf(x.pms[id])
	x.resyncPM(id)
}

// resyncPM recomputes pm's group in every tracked shape, moving it between
// member lists where the (feasibility, class, level, reliability) signature
// changed.
func (x *candIndex) resyncPM(id int32) {
	pm := x.pms[id]
	for _, sh := range x.shapeList {
		key, rel, ev, ok := x.membership(pm, sh.demand)
		ng := int32(-1)
		if ok {
			ng = sh.groupIdx(key, rel, ev)
		}
		og := sh.groupOf[id]
		if og == ng {
			continue
		}
		if og >= 0 {
			sh.removeMember(og, id)
		}
		if ng >= 0 {
			sh.addMember(ng, id)
		}
		sh.groupOf[id] = ng
		x.events = append(x.events, candEvent{shape: sh, pm: id, old: og, new: ng})
	}
}

// membership computes pm's score-group signature for a demand shape, or
// ok = false when every column of the shape scores 0 on pm (infeasible,
// zero reliability, or a zero efficiency term) and the PM stays out of the
// shape's groups entirely.
func (x *candIndex) membership(pm *cluster.PM, demand vector.V) (key candKey, rel, effVal float64, ok bool) {
	if !pm.CanHost(demand) {
		return candKey{}, 0, 0, false
	}
	rel = pm.Reliability
	if rel == 0 {
		return candKey{}, 0, 0, false
	}
	ci := x.classFor(pm)
	cc := x.classes[ci]
	if cc.info.wj == 0 {
		return candKey{}, 0, 0, false
	}
	level := levelOf(cc.info, prospectiveUtilization(pm, demand))
	effVal = cc.effVal[level]
	if effVal == 0 {
		return candKey{}, 0, 0, false
	}
	return candKey{ci: ci, level: int32(level), rel: math.Float64bits(rel)}, rel, effVal, true
}

func (x *candIndex) classFor(pm *cluster.PM) int32 {
	if ci, ok := x.classIdx[pm.Class]; ok {
		return ci
	}
	info := x.ctx.classInfoFor(pm)
	cc := &candClass{class: pm.Class, info: info}
	if info.wj > 0 {
		cc.effVal = make([]float64, info.wj+1)
		for l := 1; l <= info.wj; l++ {
			cc.effVal[l] = float64(l) / float64(info.wj) * info.eff
		}
	}
	ci := int32(len(x.classes))
	x.classes = append(x.classes, cc)
	x.classIdx[pm.Class] = ci
	return ci
}

// shapeFor interns a demand vector and returns its grouping, building the
// membership of a first-seen shape from the live fleet in one pass.
func (x *candIndex) shapeFor(demand vector.V) *candShape {
	key := x.key[:0]
	for _, v := range demand {
		key = binary.LittleEndian.AppendUint64(key, math.Float64bits(v))
	}
	x.key = key
	if sh, ok := x.shapes[string(key)]; ok {
		return sh
	}
	sh := &candShape{
		demand:  demand.Clone(),
		byKey:   make(map[candKey]int32, 16),
		groupOf: make([]int32, len(x.pms)),
	}
	for i := range sh.groupOf {
		sh.groupOf[i] = -1
	}
	// The first-seen fleet pass is the index's O(M) hotspot: membership is
	// a pure signature evaluation per PM once the class table is warm, so
	// it shards across workers into per-PM result slots; groups are then
	// built serially in PM-ID order, so group numbering and member order
	// match the serial pass exactly.
	n := len(x.pms)
	if workers, borrowed := x.syncWorkers(n); workers > 1 {
		for _, pm := range x.pms {
			x.classFor(pm) // prewarm the class table: read-only below
		}
		keys := make([]candKey, n)
		rels := make([]float64, n)
		evs := make([]float64, n)
		oks := make([]bool, n)
		runSpans(workers, n, spanChunk(n, workers), func(_, lo, hi int) {
			for id := lo; id < hi; id++ {
				keys[id], rels[id], evs[id], oks[id] = x.membership(x.pms[id], sh.demand)
			}
		})
		ReturnWorkers(borrowed)
		for id := range x.pms {
			if !oks[id] {
				continue
			}
			gi := sh.groupIdx(keys[id], rels[id], evs[id])
			sh.addMember(gi, int32(id))
			sh.groupOf[id] = gi
		}
	} else {
		ReturnWorkers(borrowed)
		for id, pm := range x.pms {
			k, rel, ev, ok := x.membership(pm, sh.demand)
			if !ok {
				continue
			}
			gi := sh.groupIdx(k, rel, ev)
			sh.addMember(gi, int32(id))
			sh.groupOf[id] = gi
		}
	}
	x.shapes[string(key)] = sh
	x.shapeList = append(x.shapeList, sh)
	return sh
}

// groupIdx returns the index of the group keyed k, creating it on first
// use.
func (sh *candShape) groupIdx(k candKey, rel, effVal float64) int32 {
	if gi, ok := sh.byKey[k]; ok {
		return gi
	}
	gi := int32(len(sh.groups))
	sh.groups = append(sh.groups, candGroup{key: k, rel: rel, effVal: effVal})
	sh.byKey[k] = gi
	return gi
}

func (sh *candShape) addMember(gi, id int32) {
	g := &sh.groups[gi]
	if len(g.members) == 0 {
		sh.nonEmpty++
	}
	i, _ := searchInt32(g.members, id)
	g.members = append(g.members, 0)
	copy(g.members[i+1:], g.members[i:])
	g.members[i] = id
}

func (sh *candShape) removeMember(gi, id int32) {
	g := &sh.groups[gi]
	i, ok := searchInt32(g.members, id)
	if !ok {
		panic(fmt.Sprintf("core: PM %d missing from its candidate group", id))
	}
	g.members = append(g.members[:i], g.members[i+1:]...)
	if len(g.members) == 0 {
		sh.nonEmpty--
	}
}

// searchInt32 is a binary search over an ascending []int32.
func searchInt32(s []int32, v int32) (int, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s) && s[lo] == v
}

// bestArrival is the sparse arrival argmax: the PM the dense BestPlacement
// scan would pick for vm, or nil when no PM scores a positive probability.
// Group values are evaluated in cellDefault's exact multiplication order
// ((p_vir * p_rel) * p_eff) on bit-identical operands, and ties resolve to
// the lowest member ID — dense's strict p > best scan in ID order — so the
// answer is bit-identical by construction.
func (x *candIndex) bestArrival(vm *cluster.VM, k int) *cluster.PM {
	sh := x.shapeFor(vm.Demand)
	if sh.nonEmpty > k {
		x.ctx.Obs.AddScoped("core.sparse_shape_overflow", 1)
	}
	tre := vm.RemainingEstimate(x.ctx.Now)
	var best *cluster.PM
	bestP := 0.0
	bestID := int32(-1)
	for gi := range sh.groups {
		g := &sh.groups[gi]
		if len(g.members) == 0 {
			continue
		}
		cand := g.members[0]
		cc := x.classes[g.key.ci]
		overhead := cc.info.overhead
		if vm.Host == cluster.NoPM {
			overhead = cc.class.CreationTime
		}
		p := virProbability(tre, overhead)
		if p == 0 {
			continue
		}
		p *= g.rel
		if p == 0 {
			continue
		}
		p = p * g.effVal
		if p > bestP || (p == bestP && bestID >= 0 && cand < bestID) {
			bestP, bestID = p, cand
			best = x.pms[cand]
		}
	}
	return best
}

// shortlist appends the shape's candidate PMs for vm — every PM with a
// positive probability, ordered exactly as RankPlacements orders them
// (probability descending, ID ascending) — truncated to at most k entries.
// It is the per-VM top-K shortlist of DESIGN.md §13; the property tests
// assert it always contains the dense argmax and, when k covers the whole
// feasible set, equals the dense ranking outright.
func (x *candIndex) shortlist(dst []Placement, vm *cluster.VM, k int) []Placement {
	sh := x.shapeFor(vm.Demand)
	tre := vm.RemainingEstimate(x.ctx.Now)
	for gi := range sh.groups {
		g := &sh.groups[gi]
		if len(g.members) == 0 {
			continue
		}
		cc := x.classes[g.key.ci]
		overhead := cc.info.overhead
		if vm.Host == cluster.NoPM {
			overhead = cc.class.CreationTime
		}
		p := virProbability(tre, overhead)
		if p == 0 {
			continue
		}
		p *= g.rel
		if p == 0 {
			continue
		}
		p = p * g.effVal
		if p <= 0 {
			continue
		}
		for _, id := range g.members {
			dst = append(dst, Placement{PM: x.pms[id], Probability: p})
		}
	}
	// Insertion sort by (probability desc, ID asc): group counts are
	// small and the members of one group arrive pre-sorted by ID.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0; j-- {
			a, b := dst[j-1], dst[j]
			if a.Probability > b.Probability ||
				(a.Probability == b.Probability && a.PM.ID < b.PM.ID) {
				break
			}
			dst[j-1], dst[j] = b, a
		}
	}
	if k > 0 && len(dst) > k {
		dst = dst[:k]
	}
	return dst
}
