package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vector"
)

// Example reproduces the paper's Figure 1 in miniature: jobs spread across
// two machines are consolidated onto one, freeing the other to power off.
func Example() {
	fast := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 2}},
	})
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}

	// VM1 runs on PM0; VM2 and VM3 run on PM1. Everything fits on PM1.
	place := func(id cluster.VMID, pm cluster.PMID, cores, mem float64) {
		vm := cluster.NewVM(id, vector.New(cores, mem), 86400, 86400, 0)
		if err := dc.PM(pm).Host(vm); err != nil {
			panic(err)
		}
		vm.State = cluster.VMRunning
	}
	place(1, 0, 2, 2)
	place(2, 1, 2, 2)
	place(3, 1, 2, 2)

	ctx := &core.Context{DC: dc, Now: 0}
	moves, err := core.Consolidate(ctx, core.DefaultFactors(), core.DefaultParams())
	if err != nil {
		panic(err)
	}
	for _, mv := range moves {
		fmt.Printf("VM%d migrated PM%d -> PM%d\n", mv.VM, mv.From, mv.To)
	}
	fmt.Printf("non-idle machines: %d\n", dc.NonIdleCount())
	// Output:
	// VM1 migrated PM0 -> PM1
	// non-idle machines: 1
}

// ExampleBestPlacement shows the arrival path: the new request's matrix
// column is evaluated and the highest-probability machine wins.
func ExampleBestPlacement() {
	fast := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 2}},
	})
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	// PM1 already hosts work, so the efficiency factor prefers it.
	busy := cluster.NewVM(10, vector.New(4, 4), 86400, 86400, 0)
	if err := dc.PM(1).Host(busy); err != nil {
		panic(err)
	}
	busy.State = cluster.VMRunning

	arrival := cluster.NewVM(11, vector.New(1, 0.5), 3600, 3600, 0)
	pm := core.BestPlacement(&core.Context{DC: dc, Now: 0}, core.DefaultFactors(), arrival)
	fmt.Printf("new VM goes to PM%d\n", pm.ID)
	// Output:
	// new VM goes to PM1
}
