// Package core implements the paper's primary contribution: the statistical
// dynamic VM placement scheme of Section III.
//
// The scheme scores every (VM i, PM j) pair with a joint probability
//
//	p_ij = p_ij^res * p_ij^vir * p_ij^rel * p_ij^eff
//
// built from four pluggable factors (resource feasibility, virtualization
// overhead, server reliability, energy efficiency — Eq. 2-5), arranges the
// scores in an M x N probability matrix (Eq. 1), and runs Algorithm 1:
// normalize each column by the probability of the VM's current host, then
// repeatedly migrate the VM with the largest normalized gain above
// MIG_threshold, for at most MIG_round rounds, updating only the affected
// matrix rows between rounds.
//
// Because p_ij is a product, additional constraints compose by appending a
// Factor — exactly the extensibility the paper advertises ("since the p_ij
// is a joint probability, it is easy to be extended to accommodate other
// constraints in the light of users demand").
package core

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/vector"
)

// Context carries the read-only simulation state factors evaluate against.
// Its internal per-class cache assumes the data center's classes and R^MIN
// do not change while the Context lives; under that invariant a single
// Context can be reused across placement events (see NewContext and At),
// which keeps the cache warm on the arrival hot path.
type Context struct {
	// DC is the data center (supplies RMin and eff_j).
	DC *cluster.Datacenter

	// Now is the current simulation time in seconds; the virtualization
	// factor uses it to compute remaining runtimes.
	Now float64

	// Obs, when non-nil, receives phase timings (kernel build, Algorithm 1
	// rounds, arrival argmax) and decision counters from the placement
	// paths. Nil — the default, and what every benchmark uses — keeps the
	// hot paths free of instrumentation beyond a nil check.
	Obs *obs.Observer

	// classes lazily caches the per-class constants (W_j, U_j^MIN,
	// eff_j) the efficiency factor needs; the factors are evaluated
	// M*N times per consolidation, so recomputing these per entry
	// dominates the run otherwise.
	classes map[*cluster.PMClass]*classInfo

	// Reusable hot-path scratch (scratch.go): mscratch backs matrix
	// builds via checkout, arr backs the per-arrival argmax, vmBuf backs
	// the consolidation pass's column collection. Their presence is why a
	// Context is not safe for concurrent use.
	mscratch *matrixScratch
	arr      arrivalScratch
	vmBuf    []*cluster.VM

	// cand is the sparse candidate index (candidates.go), built lazily on
	// the first placement evaluated with MatrixOptions.CandidateK > 0 and
	// kept in sync with the fleet via per-PM version stamps.
	cand *candIndex
}

// classInfo holds the per-class constants of Section III.B.4.
type classInfo struct {
	wj       int     // W_j: max minimal VMs the class can host
	umin     float64 // U_j^MIN: utilization with one minimal VM
	eff      float64 // eff_j: relative power efficiency
	invK     float64 // 1/K for inverting the level partition
	overhead float64 // T_cre + T_mig for the virtualization factor
}

// NewContext returns a reusable Context for dc. Callers that process many
// placement events (the simulator's arrival and consolidation paths) should
// build one Context per run and advance it with At, so the per-class cache
// survives across events instead of being rebuilt M times per event.
func NewContext(dc *cluster.Datacenter) *Context {
	return &Context{DC: dc}
}

// At updates the Context's clock and returns it, for chaining:
//
//	placer.Place(ctx.At(engine.Now()), vm)
//
// The per-class cache is retained; it only depends on the fleet's classes
// and R^MIN, not on time.
func (ctx *Context) At(now float64) *Context {
	ctx.Now = now
	return ctx
}

func (ctx *Context) classInfoFor(pm *cluster.PM) *classInfo {
	if info, ok := ctx.classes[pm.Class]; ok {
		return info
	}
	if ctx.classes == nil {
		ctx.classes = make(map[*cluster.PMClass]*classInfo, 4)
	}
	rmin := ctx.DC.RMinShared()
	info := &classInfo{
		wj:       pm.Class.MaxMinimalVMs(rmin),
		umin:     vector.Utilization(rmin, pm.Class.Capacity),
		eff:      ctx.DC.Efficiency(pm),
		overhead: pm.Class.CreationTime + pm.Class.MigrationTime,
	}
	if k := rmin.Dim(); k > 0 {
		info.invK = 1 / float64(k)
	}
	ctx.classes[pm.Class] = info
	return info
}

// Factor computes one conditional probability p_ij^xxx of hosting vm on pm.
// Implementations must be pure with respect to the passed state: factors
// are re-evaluated incrementally as the migration algorithm mutates
// placements, so any hidden caching would go stale.
//
// hosted reports whether pm is vm's current host; several of the paper's
// factors special-case that ("if the VM i is already hosted in the PM j
// ... the probability is 1").
type Factor interface {
	// Name identifies the factor in ablation reports ("res", "vir",
	// "rel", "eff").
	Name() string

	// Probability returns p_ij^xxx in [0, 1].
	Probability(ctx *Context, vm *cluster.VM, pm *cluster.PM, hosted bool) float64
}

// DefaultFactors returns the paper's four factors in evaluation order.
func DefaultFactors() []Factor {
	return []Factor{ResourceFactor{}, VirtualizationFactor{}, ReliabilityFactor{}, EfficiencyFactor{}}
}

// Joint evaluates the product of factors for (vm, pm), short-circuiting on
// the first zero.
func Joint(ctx *Context, factors []Factor, vm *cluster.VM, pm *cluster.PM, hosted bool) float64 {
	p := 1.0
	for _, f := range factors {
		p *= f.Probability(ctx, vm, pm, hosted)
		if p == 0 {
			return 0
		}
	}
	return p
}

// ResourceFactor is p_ij^res (Eq. 2): 1 when PM j has sufficient free
// resources for VM i, else 0. The current host trivially satisfies it.
type ResourceFactor struct{}

// Name implements Factor.
func (ResourceFactor) Name() string { return "res" }

// Probability implements Factor.
func (ResourceFactor) Probability(_ *Context, vm *cluster.VM, pm *cluster.PM, hosted bool) float64 {
	if hosted {
		return 1
	}
	if pm.CanHost(vm.Demand) {
		return 1
	}
	return 0
}

// VirtualizationFactor is p_ij^vir (Eq. 3): 1 for the current host;
// otherwise the quadratic penalty ((T_re - T_cre - T_mig) / T_re)^2 when
// the remaining runtime exceeds the combined creation and migration
// overheads of the target PM, else 0. The quadratic form makes the
// probability fall off faster as the remaining time shrinks: a VM about to
// finish is not worth moving, because it will release its resources on its
// own.
type VirtualizationFactor struct{}

// Name implements Factor.
func (VirtualizationFactor) Name() string { return "vir" }

// Probability implements Factor.
func (VirtualizationFactor) Probability(ctx *Context, vm *cluster.VM, pm *cluster.PM, hosted bool) float64 {
	if hosted {
		return 1
	}
	// A migration pays creation plus transfer on the target (Eq. 3); an
	// initial placement of a not-yet-running VM only pays creation —
	// there is nothing to transfer yet.
	overhead := ctx.classInfoFor(pm).overhead
	if vm.Host == cluster.NoPM {
		overhead = pm.Class.CreationTime
	}
	return virProbability(vm.RemainingEstimate(ctx.Now), overhead)
}

// virProbability is the Eq. 3 penalty for remaining estimate tre against a
// target-side overhead. It is shared by VirtualizationFactor and the
// factored kernel's per-(column, class) memo so the two paths are
// bit-identical by construction.
func virProbability(tre, overhead float64) float64 {
	if tre <= 0 {
		return 0
	}
	q := (tre - overhead) / tre
	if q <= 0 {
		return 0
	}
	return q * q
}

// ReliabilityFactor is p_ij^rel (Section III.B.3): the PM's reliability
// probability, independent of the VM.
type ReliabilityFactor struct{}

// Name implements Factor.
func (ReliabilityFactor) Name() string { return "rel" }

// Probability implements Factor.
func (ReliabilityFactor) Probability(_ *Context, _ *cluster.VM, pm *cluster.PM, _ bool) float64 {
	return pm.Reliability
}

// EfficiencyFactor is p_ij^eff (Eq. 4-5): the PM's prospective utilization
// level after hosting the VM, scaled by the class's relative power
// efficiency:
//
//	p_ij^eff = (w_j / W_j) * eff_j
//
// For the current host the PM's present utilization already includes the
// VM. A PM that cannot host even one minimal VM has W_j = 0 and scores 0.
// Higher levels score higher, which is what drives consolidation: VMs
// gravitate toward already-busy, power-efficient machines, starving idle
// PMs until the spare-server controller can switch them off.
type EfficiencyFactor struct{}

// Name implements Factor.
func (EfficiencyFactor) Name() string { return "eff" }

// Probability implements Factor.
func (EfficiencyFactor) Probability(ctx *Context, vm *cluster.VM, pm *cluster.PM, hosted bool) float64 {
	info := ctx.classInfoFor(pm)
	var u float64
	if hosted {
		u = pm.Utilization()
	} else {
		u = prospectiveUtilization(pm, vm.Demand)
	}
	return effProbability(info, u)
}

// effProbability is Eq. 4-5 for a PM of the given class at utilization u.
// It is shared by EfficiencyFactor and the factored kernel so the two
// paths are bit-identical by construction.
func effProbability(info *classInfo, u float64) float64 {
	if info.wj == 0 {
		return 0
	}
	return float64(levelOf(info, u)) / float64(info.wj) * info.eff
}

// levelOf inverts the level partition of Eq. 4 for a class at utilization
// u, returning the level in {1, ..., W_j}. It is the single source of the
// level arithmetic: effProbability and the sparse candidate index
// (candidates.go) both call it, so a PM's score group and its dense cell
// value agree bit-for-bit by construction. Callers must ensure
// info.wj > 0.
func levelOf(info *classInfo, u float64) int {
	// Eq. 5 draws w_j from {1, ..., W_j}: with VM i on board the PM is
	// never idle, so the floor of the partition is level 1. Inverting
	// the level partition of Eq. 4: w = floor((u/U_min)^(1/K)).
	level := 1
	if info.umin > 0 && u >= info.umin {
		ratio := u / info.umin
		var w float64
		if info.invK == 0.5 {
			w = math.Sqrt(ratio) // the Table II case, K = 2
		} else {
			w = math.Pow(ratio, info.invK)
		}
		level = int(w + vector.Epsilon)
		if level < 1 {
			level = 1
		}
		if level > info.wj {
			level = info.wj
		}
	} else if info.umin <= 0 && u > 0 {
		level = info.wj
	}
	return level
}

// prospectiveUtilization computes the joint utilization PM pm would have
// with demand added, without allocating an intermediate vector (this sits
// on the matrix-construction hot path).
func prospectiveUtilization(pm *cluster.PM, demand vector.V) float64 {
	u := 1.0
	cap := pm.Class.Capacity
	for k := range cap {
		if cap[k] <= vector.Epsilon {
			if pm.Used[k]+demand[k] <= vector.Epsilon {
				continue
			}
			return 0
		}
		f := (pm.Used[k] + demand[k]) / cap[k]
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		u *= f
	}
	return u
}
