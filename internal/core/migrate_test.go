package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/vector"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	for _, p := range []Params{
		{MIGThreshold: 1, MIGRound: 5},
		{MIGThreshold: 0.9, MIGRound: 5},
		{MIGThreshold: 1.1, MIGRound: 0},
	} {
		if p.Validate() == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestConsolidateEmpty(t *testing.T) {
	dc := smallDC()
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams())
	if err != nil || len(moves) != 0 {
		t.Errorf("empty consolidate = %v, %v", moves, err)
	}
}

func TestConsolidateRejectsBadParams(t *testing.T) {
	dc := smallDC()
	if _, err := Consolidate(&Context{DC: dc}, DefaultFactors(), Params{MIGThreshold: 0.5, MIGRound: 1}); err == nil {
		t.Error("bad params accepted")
	}
}

// figure1Scenario reproduces the motivating example of Figure 1: jobs
// spread thin across PMs such that consolidation should pack them onto
// fewer machines, leaving one PM empty.
func figure1Scenario(t *testing.T) (*cluster.Datacenter, []*cluster.VM) {
	t.Helper()
	class := cluster.FastClass // cap (8, 8)
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &class, Count: 3}},
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	// PM0 hosts a medium VM, PM1 hosts two small VMs; everything fits
	// on PM0 together.
	vms := []*cluster.VM{
		cluster.NewVM(1, vector.New(3, 3), 100000, 100000, 0),
		cluster.NewVM(2, vector.New(2, 2), 100000, 100000, 0),
		cluster.NewVM(3, vector.New(2, 2), 100000, 100000, 0),
	}
	mustHost(t, dc.PM(0), vms[0])
	mustHost(t, dc.PM(1), vms[1])
	mustHost(t, dc.PM(1), vms[2])
	return dc, vms
}

func TestConsolidatePacksOntoFewerPMs(t *testing.T) {
	dc, _ := figure1Scenario(t)
	before := dc.NonIdleCount()
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no consolidation moves produced")
	}
	after := dc.NonIdleCount()
	if after >= before {
		t.Errorf("non-idle PMs %d -> %d, want reduction", before, after)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestConsolidateGainsExceedThreshold(t *testing.T) {
	dc, _ := figure1Scenario(t)
	params := DefaultParams()
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), params)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range moves {
		if mv.Gain <= params.MIGThreshold {
			t.Errorf("move %+v gain below threshold", mv)
		}
		if mv.From == mv.To {
			t.Errorf("move %+v is a no-op", mv)
		}
	}
}

func TestConsolidateRoundLimit(t *testing.T) {
	dc, _ := figure1Scenario(t)
	params := Params{MIGThreshold: 1.01, MIGRound: 1}
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), params)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) > 1 {
		t.Errorf("moves = %d, want <= MIG_round 1", len(moves))
	}
	if len(moves) == 1 && moves[0].Round != 1 {
		t.Errorf("round = %d, want 1", moves[0].Round)
	}
}

func TestConsolidateHighThresholdFreezes(t *testing.T) {
	dc, _ := figure1Scenario(t)
	params := Params{MIGThreshold: 1e9, MIGRound: 10}
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), params)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("moves = %v with prohibitive threshold", moves)
	}
}

func TestConsolidateDeterministic(t *testing.T) {
	run := func() []Move {
		dc, _ := figure1Scenario(t)
		moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return moves
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic move counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConsolidateSkipsNonRunningVMs(t *testing.T) {
	dc, vms := figure1Scenario(t)
	for _, vm := range vms {
		vm.State = cluster.VMCreating
	}
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("creating VMs migrated: %v", moves)
	}
}

func TestConsolidateShortRemainingVMsStay(t *testing.T) {
	// VMs whose remaining estimate is below the migration overhead must
	// not move (p_vir = 0 for every alternative).
	class := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &class, Count: 2}},
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	a := cluster.NewVM(1, vector.New(2, 2), 60, 60, 0) // < 70 s overhead
	b := cluster.NewVM(2, vector.New(2, 2), 60, 60, 0)
	mustHostT(t, dc, 0, a)
	mustHostT(t, dc, 1, b)
	moves, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("short-remaining VMs migrated: %v", moves)
	}
}

func mustHostT(t *testing.T, dc *cluster.Datacenter, pm cluster.PMID, vm *cluster.VM) {
	t.Helper()
	if err := dc.PM(pm).Host(vm); err != nil {
		t.Fatal(err)
	}
	vm.State = cluster.VMRunning
}

func TestConsolidateJointProbabilityImproves(t *testing.T) {
	// Every applied move must strictly improve the moved VM's joint
	// placement probability by more than the threshold factor.
	dc, vms := figure1Scenario(t)
	ctx := &Context{DC: dc, Now: 0}
	factors := DefaultFactors()
	params := DefaultParams()

	before := make(map[cluster.VMID]float64)
	for _, vm := range vms {
		before[vm.ID] = Joint(ctx, factors, vm, dc.PM(vm.Host), true)
	}
	moves, err := Consolidate(ctx, factors, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range moves {
		// Recompute what the probability of the old placement would
		// have been versus the gain ratio actually recorded.
		if mv.Gain <= params.MIGThreshold {
			t.Errorf("gain %g not above threshold", mv.Gain)
		}
	}
	_ = before
}

func TestRankPlacementsOrdering(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	factors := DefaultFactors()
	// Make PM1 busier so it outranks the empty PM0 for a new arrival.
	filler := cluster.NewVM(50, vector.New(4, 4), 100000, 100000, 0)
	mustHostT(t, dc, 1, filler)

	vm := cluster.NewVM(1, dc.RMin(), 100000, 100000, 0)
	ranked := RankPlacements(ctx, factors, vm)
	if len(ranked) == 0 {
		t.Fatal("no placements")
	}
	if ranked[0].PM.ID != 1 {
		t.Errorf("best PM = %d, want busy PM1", ranked[0].PM.ID)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Probability > ranked[i-1].Probability {
			t.Fatal("ranking not sorted")
		}
	}
	if best := BestPlacement(ctx, factors, vm); best == nil || best.ID != 1 {
		t.Errorf("BestPlacement = %v", best)
	}
}

func TestBestPlacementNilWhenFull(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	vm := cluster.NewVM(1, vector.New(100, 100), 1000, 1000, 0)
	if got := BestPlacement(ctx, DefaultFactors(), vm); got != nil {
		t.Errorf("oversized VM placed on %v", got)
	}
}

func TestBestPlacementDeterministicTieBreak(t *testing.T) {
	// For a minimal VM, empty slow PMs (2 and 3) outrank empty fast PMs
	// — level 1/4 * eff 2/3 beats level 1/8 * eff 1 — and tie with each
	// other; the tie must break to the lower PM ID, deterministically.
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	vm := cluster.NewVM(1, dc.RMin(), 100000, 100000, 0)
	for i := 0; i < 5; i++ {
		if got := BestPlacement(ctx, DefaultFactors(), vm); got.ID != 2 {
			t.Fatalf("tie-break chose PM%d, want PM2", got.ID)
		}
	}
}

// Property: consolidation never violates datacenter invariants and never
// increases the number of non-idle PMs, across randomized initial
// placements.
func TestQuickConsolidateInvariants(t *testing.T) {
	f := func(seedDemands [8][2]uint8, hostChoice [8]uint8) bool {
		class := cluster.FastClass
		dc := cluster.MustNew(cluster.Config{
			RMin:   cluster.TableIIRMin.Clone(),
			Groups: []cluster.Group{{Class: &class, Count: 4}},
		})
		for _, p := range dc.PMs() {
			p.State = cluster.PMOn
		}
		for i, d := range seedDemands {
			cpu := float64(d[0]%3) + 1
			mem := float64(d[1]%4)/2 + 0.25
			vm := cluster.NewVM(cluster.VMID(i), vector.New(cpu, mem), 50000, 50000, 0)
			pm := dc.PM(cluster.PMID(hostChoice[i] % 4))
			if pm.CanHost(vm.Demand) {
				if err := pm.Host(vm); err != nil {
					return false
				}
				vm.State = cluster.VMRunning
			}
		}
		before := dc.NonIdleCount()
		if _, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams()); err != nil {
			return false
		}
		if err := dc.CheckInvariants(); err != nil {
			return false
		}
		return dc.NonIdleCount() <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: with an all-factors matrix, the normalized gain of the
// executed first move matches the ratio of joint probabilities computed
// independently.
func TestQuickGainMatchesJointRatio(t *testing.T) {
	dc, vms := figure1Scenario(t)
	ctx := &Context{DC: dc, Now: 0}
	factors := DefaultFactors()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	r, c, gain, ok := m.Best()
	if !ok {
		t.Fatal("no move")
	}
	vm := m.vms[c]
	pOld := Joint(ctx, factors, vm, dc.PM(vm.Host), true)
	pNew := Joint(ctx, factors, vm, m.pms[r], false)
	if math.Abs(gain-pNew/pOld) > 1e-12 {
		t.Errorf("gain %g != joint ratio %g", gain, pNew/pOld)
	}
}

func BenchmarkConsolidate100PMs(b *testing.B) {
	build := func() *cluster.Datacenter {
		dc := cluster.TableIIFleet()
		for _, p := range dc.PMs() {
			p.State = cluster.PMOn
		}
		id := cluster.VMID(0)
		for _, p := range dc.PMs() {
			for k := 0; k < 2; k++ {
				vm := cluster.NewVM(id, vector.New(1, 0.5), 100000, 100000, 0)
				if p.CanHost(vm.Demand) {
					if err := p.Host(vm); err != nil {
						b.Fatal(err)
					}
					vm.State = cluster.VMRunning
				}
				id++
			}
		}
		return dc
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dc := build()
		b.StartTimer()
		if _, err := Consolidate(&Context{DC: dc, Now: 0}, DefaultFactors(), DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}
