package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

func priceDC() *cluster.Datacenter {
	fast := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 4}},
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	return dc
}

func TestNewPriceFactorPanics(t *testing.T) {
	cases := map[string]func(){
		"no regions": func() { NewPriceFactor(nil, "x", FlatPrices(nil)) },
		"nil price":  func() { NewPriceFactor([]string{"a"}, "a", nil) },
		"bad default": func() {
			NewPriceFactor([]string{"a"}, "b", FlatPrices(map[string]float64{"a": 1}))
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPriceFactorNormalization(t *testing.T) {
	dc := priceDC()
	pf := NewPriceFactor([]string{"east", "west"}, "east",
		FlatPrices(map[string]float64{"east": 0.10, "west": 0.25}))
	pf.Assign(0, "east")
	pf.Assign(1, "west")
	ctx := &Context{DC: dc, Now: 0}
	vm := cluster.NewVM(1, dc.RMin(), 1000, 1000, 0)

	if got := pf.Probability(ctx, vm, dc.PM(0), false); got != 1 {
		t.Errorf("cheapest region p = %g, want 1", got)
	}
	if got := pf.Probability(ctx, vm, dc.PM(1), false); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("expensive region p = %g, want 0.4", got)
	}
	// Unassigned PMs fall back to the default region.
	if got := pf.Probability(ctx, vm, dc.PM(3), false); got != 1 {
		t.Errorf("default region p = %g, want 1", got)
	}
	if pf.Region(3) != "east" {
		t.Errorf("Region(3) = %q", pf.Region(3))
	}
}

func TestPriceFactorInvalidPrice(t *testing.T) {
	dc := priceDC()
	pf := NewPriceFactor([]string{"a"}, "a", FlatPrices(map[string]float64{"a": 0}))
	ctx := &Context{DC: dc, Now: 0}
	if got := pf.Probability(ctx, nil, dc.PM(0), false); got != 0 {
		t.Errorf("zero price p = %g, want 0", got)
	}
}

func TestTimeOfUsePrices(t *testing.T) {
	price := TimeOfUsePrices(map[string]float64{"a": 0.2}, 8, 20, 0.5)
	if got := price("a", 12*3600); got != 0.2 {
		t.Errorf("peak price = %g", got)
	}
	if got := price("a", 2*3600); got != 0.1 {
		t.Errorf("off-peak price = %g", got)
	}
	// Next-day peak hours are also peak.
	if got := price("a", 86400+12*3600); got != 0.2 {
		t.Errorf("day-2 peak price = %g", got)
	}
}

func TestPriceFactorSteersConsolidation(t *testing.T) {
	// Two identical PMs in regions with a 3x price gap; VMs start in the
	// expensive region and must migrate to the cheap one.
	dc := priceDC()
	pf := NewPriceFactor([]string{"cheap", "dear"}, "cheap",
		FlatPrices(map[string]float64{"cheap": 0.1, "dear": 0.3}))
	pf.Assign(0, "dear")
	pf.Assign(1, "dear")
	pf.Assign(2, "cheap")
	pf.Assign(3, "cheap")

	factors := append(DefaultFactors(), pf)
	for i := cluster.VMID(1); i <= 2; i++ {
		vm := cluster.NewVM(i, vector.New(1, 0.5), 100000, 100000, 0)
		if err := dc.PM(cluster.PMID(i - 1)).Host(vm); err != nil { // PMs 0 and 1 (dear)
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
	}

	moves, err := Consolidate(&Context{DC: dc, Now: 0}, factors, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("price pressure produced no migrations")
	}
	for _, vm := range dc.RunningVMs() {
		if pf.Region(vm.Host) != "cheap" {
			t.Errorf("VM %d still in region %q on PM %d", vm.ID, pf.Region(vm.Host), vm.Host)
		}
	}
}

func TestPriceFactorName(t *testing.T) {
	pf := NewPriceFactor([]string{"a"}, "a", FlatPrices(map[string]float64{"a": 1}))
	if pf.Name() != "price" {
		t.Errorf("Name = %q", pf.Name())
	}
}
