package core

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"repro/internal/cluster"
)

// Matrix is the VM/PM mapping probability matrix of Eq. 1: M rows (active
// PMs) by N columns (migratable VMs). It maintains, per column, the joint
// probability of the VM's *current* placement and the best normalized
// alternative, plus a max-heap over the per-column best gains, so
// Algorithm 1 can extract the best move in O(1) and refresh only the two
// affected rows per round.
type Matrix struct {
	ctx     *Context
	factors []Factor
	opts    MatrixOptions

	// kern is the compiled factored evaluator; nil when the factor list
	// contains none of the paper's factors (or the kernel is disabled),
	// in which case cells evaluate through the generic Factor interface.
	kern *kernel

	pms []*cluster.PM // rows
	vms []*cluster.VM // columns

	rowOf map[cluster.PMID]int
	colOf map[cluster.VMID]int

	// p[r][c] = joint probability of hosting vms[c] on pms[r].
	p [][]float64

	// curRow[c] is the row index of vms[c]'s current host; curProb[c]
	// the joint probability of that placement (the column normalizer).
	curRow  []int
	curProb []float64

	// bestRow[c] / bestGain[c] track the maximizing non-host row of the
	// normalized column and its value d = p / curProb. bestP[c] caches the
	// raw probability behind bestGain[c]: for a fixed positive normalizer
	// the division is monotone, so tracker maintenance compares raw
	// probabilities and divides only when the best actually changes.
	bestRow  []int
	bestGain []float64
	bestP    []float64

	// topRows/topPs/topLen hold, per column, an exactly ordered list of
	// the column's leading positive candidate rows (probability desc,
	// row asc), flattened in topK-sized slots. Invariants, for columns
	// with a positive normalizer: the list is exactly the ordered top-L
	// rows of the column (excluding the host row), and every other row
	// orders at or below the last entry. The head mirrors
	// bestRow/bestP.
	//
	// The list makes the mass-update case cheap: when a migration
	// endpoint PM was the cached best of many columns, each affected
	// column promotes or repositions within its list in O(topK) — the
	// other rows are untouched, so the remaining entries stay exact —
	// instead of rescanning all M rows. A removal that drains a list is
	// the only event that forces the column back into a full rescan.
	topRows []int32
	topPs   []float64
	topLen  []int32

	// heap orders the columns by (bestGain desc, column asc) — a total
	// order, so heap[0] is exactly the column a linear scan would pick.
	// hpos[c] is column c's position in heap; nil until the initial
	// trackers are in place.
	heap []int
	hpos []int

	// pending is recomputeRow's reusable scratch list of columns that
	// need a full rescan.
	pending []int

	// scr is the checked-out backing storage behind every slice above
	// (scratch.go); Release returns it to the Context. Nil after Release.
	scr *matrixScratch
}

// topK is the depth of the per-column exact candidate list. Deep enough
// that consolidation rounds rarely drain a list (each migration endpoint
// consumes at most one slot per column), shallow enough that the
// per-column bookkeeping stays a handful of comparisons.
const topK = 4

// MatrixOptions tunes matrix construction.
type MatrixOptions struct {
	// DisableKernel forces every cell through the generic Factor
	// interface instead of the factored kernel. The two paths produce
	// bit-identical matrices (asserted by TestKernelEquivalence); the
	// switch exists for equivalence testing and for benchmarking the
	// kernel against the naive path (cmd/benchreport).
	DisableKernel bool

	// DisableSlab keeps the factored kernel but forces the scalar
	// cell-at-a-time row fill instead of the batched aligned-slab path
	// (slab.go). The two fills are bit-identical (TestSlabEquivalence);
	// the switch exists to benchmark the slab layout against its scalar
	// ancestor (cmd/benchreport emits the ratio).
	DisableSlab bool

	// SelfAudit makes every Apply verify the incrementally maintained
	// state against a cold rebuild: probabilities, column trackers, and
	// the heap root must be bit-identical to a fresh NewMatrixWith over
	// the same VMs. Expensive (one full matrix build per move); the
	// simulator enables it in -audit=event mode.
	SelfAudit bool

	// CandidateK, when positive, routes consolidation and arrival
	// placement through the sparse candidate index (candidates.go,
	// sparse.go) for the canonical default factor program: decisions come
	// from per-shape score groups instead of a dense M x N fill, and are
	// bit-identical to the dense engine by construction. K is a sizing
	// contract — the expected ceiling on non-empty score groups per
	// demand shape — not a structural cap: a shape that needs more groups
	// is still scanned exactly, and the overflow is counted on
	// ctx.Obs ("core.sparse_shape_overflow") so a misconfigured K is
	// visible. Factor programs other than the canonical four fall back to
	// the dense path. Zero keeps the dense engine everywhere.
	CandidateK int

	// Workers bounds the goroutines the in-run kernels fan out on
	// (parallel.go): the dense/slab build by row ranges, the build-time
	// column sweep, the sparse candidate-index sync and column scans, and
	// the sparse consolidation argmax. Zero auto-sizes to GOMAXPROCS
	// bounded by the process-wide budget shared with exp.RunSweep (and
	// stays serial below the build-size thresholds); one forces the
	// strictly serial path with its zero-allocation budgets; an explicit
	// count above one is honored verbatim — results are bit-identical at
	// every setting (DESIGN.md §15), so the knob trades goroutines for
	// wall clock, never determinism.
	Workers int

	// DecisionHook, when set, observes every Algorithm 1 migration just
	// before it is applied: the move itself plus the column's ranked
	// non-host alternatives (probability normalized by the column's
	// current placement, so scores are the gains Algorithm 1 compares;
	// the head is the chosen target; depth is at most the per-column
	// list depth, currently 4). The hook runs on both the dense and the
	// sparse engine with identical chosen moves; alternative-list depth
	// may differ cosmetically between engines (the dense list shrinks
	// conservatively mid-pass, the sparse shortlist is always exact).
	// Observation only: the hook must not mutate simulation state.
	DecisionHook func(round int, mv Move, alts []Placement)
}

// NewMatrix builds the probability matrix over the data center's active
// PMs and the given VMs (typically every running VM). Every VM must
// currently be hosted on an active PM. Rows and columns are ordered by ID
// for deterministic tie-breaking.
func NewMatrix(ctx *Context, factors []Factor, vms []*cluster.VM) (*Matrix, error) {
	return NewMatrixWith(ctx, factors, vms, MatrixOptions{})
}

// NewMatrixWith is NewMatrix with explicit options.
func NewMatrixWith(ctx *Context, factors []Factor, vms []*cluster.VM, opts MatrixOptions) (*Matrix, error) {
	if ctx == nil || ctx.DC == nil {
		return nil, fmt.Errorf("core: matrix needs a context with a datacenter")
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("core: matrix needs at least one factor")
	}
	scr := ctx.takeScratch()
	m := &Matrix{
		ctx:     ctx,
		factors: factors,
		opts:    opts,
		scr:     scr,
		pms:     ctx.DC.AppendActivePMs(scr.pms[:0]),
		rowOf:   scr.rowOf,
		colOf:   scr.colOf,
	}
	// AppendActivePMs already yields ID order; the sort documents the row
	// contract and is O(M) on sorted input (slices.SortFunc: no
	// allocation, unlike sort.Slice).
	slices.SortFunc(m.pms, func(a, b *cluster.PM) int { return int(a.ID) - int(b.ID) })
	for r, pm := range m.pms {
		m.rowOf[pm.ID] = r
	}

	m.vms = append(scr.vms[:0], vms...)
	slices.SortFunc(m.vms, func(a, b *cluster.VM) int { return int(a.ID) - int(b.ID) })
	for c, vm := range m.vms {
		if _, dup := m.colOf[vm.ID]; dup {
			m.Release()
			return nil, fmt.Errorf("core: duplicate VM %d in matrix", vm.ID)
		}
		if _, ok := m.rowOf[vm.Host]; !ok {
			m.Release()
			return nil, fmt.Errorf("core: VM %d hosted on inactive PM %d", vm.ID, vm.Host)
		}
		m.colOf[vm.ID] = c
	}

	if !opts.DisableKernel {
		m.kern, _ = newKernelInto(&scr.ks, ctx, factors, m.pms, m.vms)
		if m.kern != nil {
			m.kern.noSlab = opts.DisableSlab
		}
	}

	nr, nc := len(m.pms), len(m.vms)
	scr.pflat = growFloats(scr.pflat, nr*nc)
	if cap(scr.prows) < nr {
		scr.prows = make([][]float64, nr)
	}
	m.p = scr.prows[:nr]
	for r := range m.p {
		m.p[r] = scr.pflat[r*nc : (r+1)*nc : (r+1)*nc]
	}
	m.curRow = growInts(scr.curRow, nc)
	m.curProb = growFloats(scr.curProb, nc)
	m.bestRow = growInts(scr.bestRow, nc)
	m.bestGain = growFloats(scr.bestGain, nc)
	m.bestP = growFloats(scr.bestP, nc)
	m.topRows = growInt32s(scr.topRows, topK*nc)
	m.topPs = growFloats(scr.topPs, topK*nc)
	m.topLen = growInt32s(scr.topLen, nc)
	m.heap, m.hpos = scr.heap[:0], scr.hpos[:0]
	m.pending = scr.pending[:0]

	m.fill()
	scr.cols = growInts(scr.cols, nc)
	for c := range scr.cols {
		scr.cols[c] = c
	}
	m.refreshColumns(scr.cols)
	m.buildHeap()
	return m, nil
}

// eval computes one cell through whichever evaluation path the matrix was
// built with.
func (m *Matrix) eval(r, c int) float64 {
	pm, vm := m.pms[r], m.vms[c]
	hosted := vm.Host == pm.ID
	if m.kern != nil {
		return m.kern.cell(r, c, pm, vm, hosted)
	}
	return Joint(m.ctx, m.factors, vm, pm, hosted)
}

// parallelBuildThreshold is the matrix size (rows * cols) below which an
// auto-sized build (MatrixOptions.Workers == 0) stays serial — goroutine
// overhead beats the win on small fleets. Explicit worker counts bypass
// it. Variable rather than constant so tests can force both paths.
var parallelBuildThreshold = 50_000

// buildWorkers resolves the worker count for a build-scale loop over
// `items` independent units costing `cells` total cell evaluations. Auto
// mode stays serial below parallelBuildThreshold; the caller must
// ReturnWorkers the borrowed tokens.
func (m *Matrix) buildWorkers(items, cells int) (workers, borrowed int) {
	if m.opts.Workers == 0 && cells < parallelBuildThreshold {
		return 1, 0
	}
	return claimWorkers(m.opts.Workers, items)
}

// fill computes every p[r][c]. Rows are independent and each lands in its
// own slice, so the build shards across workers in row spans; the
// per-class constants are prewarmed first so the Context's lazy cache is
// read-only during the parallel phase (no locking on the hot path).
// Worker count cannot change the result: every cell is a pure function of
// (row, column) state no other worker touches.
func (m *Matrix) fill() {
	workers, borrowed := m.buildWorkers(len(m.pms), len(m.pms)*len(m.vms))
	defer ReturnWorkers(borrowed)
	if workers <= 1 {
		for r := range m.pms {
			m.fillRow(r)
		}
		return
	}
	for _, pm := range m.pms {
		m.ctx.classInfoFor(pm) // prewarm: cache becomes read-only below
	}
	// Each worker owns its demand-shape memo buffers; the matrix's serial
	// rowScratch cannot be shared across goroutines.
	rss := make([]rowScratch, workers)
	runSpans(workers, len(m.pms), spanChunk(len(m.pms), workers), func(w, lo, hi int) {
		for r := lo; r < hi; r++ {
			m.fillRowWith(r, &rss[w])
		}
	})
}

// fillRow evaluates every cell of row r using the matrix's serial row
// scratch (the single-threaded fill, recomputeRow).
func (m *Matrix) fillRow(r int) {
	m.fillRowWith(r, &m.scr.rs)
}

// RefillRow recomputes the probability entries of row r in place without
// touching the derived structures (column trackers, best-move heap). It is
// the measurement hook behind the slab-vs-scalar comparison in
// BENCH_core.json: cmd/benchreport needs to time the row fill alone from
// outside the package. After RefillRow the trackers are stale with respect
// to p, so production code never calls it — Apply refills and repairs
// everything together.
func (m *Matrix) RefillRow(r int) {
	m.fillRow(r)
}

// fillRowWith evaluates every cell of row r with an explicit row scratch,
// so parallel fillers can each bring their own.
func (m *Matrix) fillRowWith(r int, rs *rowScratch) {
	pm := m.pms[r]
	row := m.p[r]
	if m.kern != nil {
		m.kern.fillRow(r, pm, m.vms, row, rs)
		return
	}
	for c, vm := range m.vms {
		row[c] = Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
	}
}

// Rows and Cols report the matrix dimensions.
func (m *Matrix) Rows() int { return len(m.pms) }

// Cols reports the number of VM columns.
func (m *Matrix) Cols() int { return len(m.vms) }

// P returns the joint probability for (pm row r, vm column c).
func (m *Matrix) P(r, c int) float64 { return m.p[r][c] }

// PM returns the physical machine at row r.
func (m *Matrix) PM(r int) *cluster.PM { return m.pms[r] }

// VM returns the virtual machine at column c.
func (m *Matrix) VM(c int) *cluster.VM { return m.vms[c] }

// RowOf returns the row index of the PM with the given ID.
func (m *Matrix) RowOf(id cluster.PMID) (int, bool) {
	r, ok := m.rowOf[id]
	return r, ok
}

// CurProb returns column c's normalizer: the joint probability of the
// VM's current placement.
func (m *Matrix) CurProb(c int) float64 { return m.curProb[c] }

// BestAlt returns the tracked best non-host row of column c and its
// normalized gain, or (-1, 0) when no alternative has positive gain. The
// audit subsystem compares these trackers against the frozen oracle.
func (m *Matrix) BestAlt(c int) (row int, gain float64) {
	return m.bestRow[c], m.bestGain[c]
}

// ColumnAlternatives returns column c's tracked non-host candidates as
// ranked placements, truncated to at most k entries: the per-column
// exact list (probability desc, row asc) with each probability
// normalized by the column's current placement, so scores are directly
// comparable to MIG_threshold. When the current placement has
// probability 0 the list collapses to the single tracked rescue row
// with +Inf gain (mirroring Normalized). Returns nil when the column
// has no positive alternative. Decision recording uses this to capture
// the top-k rejected alternatives alongside each migration.
func (m *Matrix) ColumnAlternatives(c, k int) []Placement {
	cur := m.curProb[c]
	if cur <= 0 {
		if r := m.bestRow[c]; r >= 0 {
			return []Placement{{PM: m.pms[r], Probability: math.Inf(1)}}
		}
		return nil
	}
	n := int(m.topLen[c])
	if k > 0 && n > k {
		n = k
	}
	if n <= 0 {
		return nil
	}
	base := c * topK
	out := make([]Placement, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Placement{
			PM:          m.pms[m.topRows[base+i]],
			Probability: m.topPs[base+i] / cur,
		})
	}
	return out
}

// Normalized returns d_rc = p_rc / p_(current host of c), the column-
// normalized value Algorithm 1 compares against MIG_threshold. Values
// above 1 indicate the move improves the mapping; the current host is
// exactly 1. When the current placement has probability 0 (which can
// happen when a VM's remaining estimate has expired and its host became
// unreliable), any feasible alternative is treated as +Inf gain.
func (m *Matrix) Normalized(r, c int) float64 {
	if r == m.curRow[c] {
		return 1
	}
	return m.normalize(m.p[r][c], m.curProb[c])
}

func (m *Matrix) normalize(p, cur float64) float64 {
	if cur <= 0 {
		if p > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return p / cur
}

// refreshColumns recomputes curRow/curProb and the best alternative for
// every listed column, then repositions each in the gain heap. Two
// optimizations over a naive per-column rescan:
//
//   - The scan is division-free: for a positive normalizer, p/cur is
//     monotone in p, so the lowest row maximizing the raw probability is
//     the best alternative (max_r round(p_r/cur) = round(max_r p_r/cur),
//     since IEEE rounding is monotone) and one division at the end
//     recovers the gain. A non-positive normalizer means any feasible
//     alternative is a +Inf-gain rescue; the lowest such row wins.
//
//   - The columns are swept together row-major: p is stored by rows, so
//     k separate column scans stride the whole matrix k times, while one
//     joint sweep walks each row once. When a migration target was the
//     cached best of many columns, this turns the mass rescan from k
//     strided passes into a single sequential one.
//
// For positive-normalizer columns the sweep also rebuilds the exact
// top-topK candidate list that recomputeRow maintains incrementally.
//
// During the initial build — before the gain heap exists — the listed
// columns are fully independent (fixColumn is a no-op), so the sweep
// shards across workers in column spans; per-span results are
// bit-identical to the serial sweep because each column's trackers are a
// pure function of its own probabilities. Once the heap is live the
// incremental refreshes stay serial: fixColumn mutates shared heap state.
func (m *Matrix) refreshColumns(cols []int) {
	if len(cols) == 0 {
		return
	}
	if len(m.hpos) == 0 {
		workers, borrowed := m.buildWorkers(len(cols), len(m.pms)*len(cols))
		if workers > 1 {
			runSpans(workers, len(cols), spanChunk(len(cols), workers), func(_, lo, hi int) {
				m.refreshColumnSpan(cols[lo:hi])
			})
			ReturnWorkers(borrowed)
			return
		}
		ReturnWorkers(borrowed)
	}
	m.refreshColumnSpan(cols)
}

// refreshColumnSpan is refreshColumns' serial body over one span of
// columns.
func (m *Matrix) refreshColumnSpan(cols []int) {
	for _, c := range cols {
		vm := m.vms[c]
		cr, ok := m.rowOf[vm.Host]
		if !ok {
			panic(fmt.Sprintf("core: VM %d host %d left the matrix", vm.ID, vm.Host))
		}
		m.curRow[c] = cr
		m.curProb[c] = m.p[cr][c]
		m.bestRow[c] = -1
		m.bestP[c] = 0
		m.topLen[c] = 0
	}
	for r := range m.pms {
		row := m.p[r]
		for _, c := range cols {
			if r == m.curRow[c] {
				continue
			}
			p := row[c]
			if m.curProb[c] > 0 {
				// Exact top-topK insertion; rows ascend, so on equal
				// probabilities the earlier row keeps its slot.
				base := c * topK
				n := int(m.topLen[c])
				if n == topK && p <= m.topPs[base+n-1] {
					continue
				}
				if p <= 0 {
					continue
				}
				i := n
				for i > 0 && p > m.topPs[base+i-1] {
					i--
				}
				if n < topK {
					n++
					m.topLen[c] = int32(n)
				}
				copy(m.topPs[base+i+1:base+n], m.topPs[base+i:base+n-1])
				copy(m.topRows[base+i+1:base+n], m.topRows[base+i:base+n-1])
				m.topPs[base+i] = p
				m.topRows[base+i] = int32(r)
			} else if m.bestRow[c] < 0 && p > 0 {
				m.bestRow[c] = r
				m.bestP[c] = p
			}
		}
	}
	for _, c := range cols {
		if m.curProb[c] > 0 && m.topLen[c] > 0 {
			m.bestRow[c] = int(m.topRows[c*topK])
			m.bestP[c] = m.topPs[c*topK]
		}
		switch {
		case m.bestRow[c] < 0:
			m.bestGain[c] = 0
		case m.curProb[c] > 0:
			m.bestGain[c] = m.bestP[c] / m.curProb[c]
		default:
			m.bestGain[c] = math.Inf(1)
		}
		m.fixColumn(c)
	}
}

// recomputeRow re-evaluates every probability in row r and incrementally
// fixes the per-column best trackers. Columns whose normalizer changed
// (this row hosts them, or their VM moved) get a full refresh. Everywhere
// else only row r's value changed, so each column repositions row r
// within its exact top-topK candidate list in O(topK); a full column
// rescan is forced only when the list drains (every tracked candidate
// dropped out). Ties go to the lowest row, exactly what a from-scratch
// refreshColumns computes (the rebuild property test demands equality).
func (m *Matrix) recomputeRow(r int) {
	m.fillRow(r)
	pending := m.pending[:0]
	for c := range m.vms {
		if m.curRow[c] == r || m.rowOf[m.vms[c].Host] != m.curRow[c] {
			pending = append(pending, c)
			continue
		}
		p := m.p[r][c]
		if cur := m.curProb[c]; cur <= 0 {
			// +Inf rescue column: the tracker names the lowest row with
			// a positive probability. (The candidate list is not
			// maintained here; the sweep rebuilds it if the normalizer
			// ever turns positive again, which only happens through a
			// refresh.)
			if m.bestRow[c] == r {
				if p > 0 {
					m.bestP[c] = p // still the lowest positive row
				} else {
					pending = append(pending, c)
				}
			} else if p > 0 && (m.bestRow[c] < 0 || r < m.bestRow[c]) {
				m.bestRow[c], m.bestGain[c], m.bestP[c] = r, math.Inf(1), p
				m.fixColumn(c)
			}
		} else if !m.retop(c, r, p) {
			pending = append(pending, c)
		} else if head := int(m.topRows[c*topK]); m.topLen[c] > 0 &&
			(head != m.bestRow[c] || m.topPs[c*topK] != m.bestP[c]) {
			m.bestRow[c] = head
			m.bestP[c] = m.topPs[c*topK]
			m.bestGain[c] = m.bestP[c] / cur
			m.fixColumn(c)
		}
	}
	m.pending = pending
	m.refreshColumns(pending)
}

// retop repositions row r with its new probability p inside column c's
// exact top-topK candidate list. It reports false when the list drained
// and the column needs a full rescan. The list invariants (see the field
// docs) make every step exact: entries for other rows are untouched, so
// removing, repositioning, or inserting r against them preserves both the
// ordering and the everything-else-orders-below-the-tail guarantee.
func (m *Matrix) retop(c, r int, p float64) bool {
	base := c * topK
	n := int(m.topLen[c])
	pos := -1
	for i := 0; i < n; i++ {
		if int(m.topRows[base+i]) == r {
			pos = i
			break
		}
	}
	if pos < 0 {
		// r was outside the list (at or below the tail). It enters only
		// if it now orders above the tail — or if the list is certified
		// empty, in which case r is the only positive row. A value
		// between the tail and unknown outside rows stays out: the list
		// shrinks conservatively rather than guessing.
		if p <= 0 {
			return true
		}
		if n > 0 {
			tailP, tailR := m.topPs[base+n-1], int(m.topRows[base+n-1])
			if p < tailP || (p == tailP && r > tailR) {
				return true
			}
		}
	} else {
		oldP := m.topPs[base+pos]
		if p == oldP {
			return true // unchanged
		}
		// Remove r; it re-inserts below if it still provably orders
		// above everything outside the list. The outside rows are
		// bounded by the old tail — which is r's own old value when r
		// was the tail — so that is what a lowered r must still beat.
		copy(m.topPs[base+pos:base+n-1], m.topPs[base+pos+1:base+n])
		copy(m.topRows[base+pos:base+n-1], m.topRows[base+pos+1:base+n])
		n--
		qualified := p > 0
		if qualified {
			if pos == n { // r was the tail
				qualified = p > oldP
			} else {
				tailP, tailR := m.topPs[base+n-1], int(m.topRows[base+n-1])
				qualified = p > tailP || (p == tailP && r < tailR)
			}
		}
		if !qualified {
			m.topLen[c] = int32(n)
			return n > 0
		}
	}
	i := n
	for i > 0 && (p > m.topPs[base+i-1] ||
		(p == m.topPs[base+i-1] && r < int(m.topRows[base+i-1]))) {
		i--
	}
	if n < topK {
		n++
		m.topLen[c] = int32(n)
	}
	copy(m.topPs[base+i+1:base+n], m.topPs[base+i:base+n-1])
	copy(m.topRows[base+i+1:base+n], m.topRows[base+i:base+n-1])
	m.topPs[base+i] = p
	m.topRows[base+i] = int32(r)
	return true
}

// better reports whether column a should sit above column b in the gain
// heap: higher gain first, ties toward the lower column. Because this is a
// total order, the heap root is exactly the column the pre-heap linear
// scan selected, preserving Algorithm 1's deterministic tie-breaking
// (lowest VM ID; the lowest qualifying row is already tracked by
// refreshColumn).
func (m *Matrix) better(a, b int) bool {
	ga, gb := m.bestGain[a], m.bestGain[b]
	if ga != gb {
		return ga > gb
	}
	return a < b
}

// buildHeap heapifies all columns once the initial trackers are computed.
func (m *Matrix) buildHeap() {
	for i := 0; i < len(m.vms); i++ {
		m.heap = append(m.heap, i)
		m.hpos = append(m.hpos, i)
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

// fixColumn restores the heap invariant after column c's bestGain changed.
// No-op before the heap exists (during the initial tracker pass).
func (m *Matrix) fixColumn(c int) {
	if len(m.hpos) == 0 {
		return
	}
	m.siftUp(m.hpos[c])
	m.siftDown(m.hpos[c])
}

func (m *Matrix) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !m.better(m.heap[i], m.heap[parent]) {
			return
		}
		m.heapSwap(i, parent)
		i = parent
	}
}

func (m *Matrix) siftDown(i int) {
	n := len(m.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && m.better(m.heap[l], m.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && m.better(m.heap[r], m.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		m.heapSwap(i, best)
		i = best
	}
}

func (m *Matrix) heapSwap(i, j int) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.hpos[m.heap[i]] = i
	m.hpos[m.heap[j]] = j
}

// Best returns the globally maximal normalized gain and its (row, col), or
// ok = false when no column has a positive-gain alternative. Ties break
// toward the lowest column (VM ID) then lowest row (PM ID), keeping runs
// deterministic. The answer is the root of the gain heap, so extraction is
// O(1) instead of a scan over all columns.
func (m *Matrix) Best() (r, c int, gain float64, ok bool) {
	if len(m.heap) == 0 {
		return -1, -1, 0, false
	}
	col := m.heap[0]
	if m.bestRow[col] < 0 || m.bestGain[col] <= 0 {
		return -1, -1, 0, false
	}
	return m.bestRow[col], col, m.bestGain[col], true
}

// Move is one migration decision produced by Algorithm 1.
type Move struct {
	VM   cluster.VMID
	From cluster.PMID
	To   cluster.PMID

	// Gain is the normalized probability ratio d_ij that justified the
	// move (> MIG_threshold).
	Gain float64

	// Round is the 1-based migration round within the consolidation
	// pass.
	Round int
}

// Apply performs the move for column c to row r: it evicts the VM from its
// current host, hosts it on the target PM, and refreshes the two affected
// rows. The datacenter state is mutated. Apply returns an error if the
// target cannot actually host the VM (which would indicate a factor bug,
// since p_res must have been positive).
func (m *Matrix) Apply(r, c int) error {
	vm := m.vms[c]
	from := m.pms[m.curRow[c]]
	to := m.pms[r]
	if err := from.Evict(vm); err != nil {
		return fmt.Errorf("core: apply move of VM %d: %w", vm.ID, err)
	}
	if err := to.Host(vm); err != nil {
		// Roll back so the model stays consistent.
		if rbErr := from.Host(vm); rbErr != nil {
			panic(fmt.Sprintf("core: rollback failed after host error (%v): %v", err, rbErr))
		}
		return fmt.Errorf("core: apply move of VM %d: %w", vm.ID, err)
	}
	vm.Migrations++
	if m.kern != nil {
		m.kern.moveHosted(c, m.rowOf[from.ID], r)
	}
	m.recomputeRow(m.rowOf[from.ID])
	m.recomputeRow(m.rowOf[to.ID])
	if m.opts.SelfAudit {
		if err := m.verifyRebuild(); err != nil {
			return fmt.Errorf("core: self-audit after moving VM %d to PM %d: %w", vm.ID, to.ID, err)
		}
	}
	return nil
}

// SelfCheck re-derives every column tracker and the heap shape from the
// stored probabilities and reports the first divergence. It is the
// "re-derivable from scratch" half of the audit contract: the incremental
// maintenance in recomputeRow/refreshColumns must never drift from what a
// brute-force rescan of m.p computes, including tie-breaks (lowest row,
// then lowest column) and the +Inf rescue rule for zero normalizers.
func (m *Matrix) SelfCheck() error {
	for c, vm := range m.vms {
		cr, ok := m.rowOf[vm.Host]
		if !ok {
			return fmt.Errorf("core: column %d (VM %d) hosted on PM %d outside the matrix", c, vm.ID, vm.Host)
		}
		if m.curRow[c] != cr {
			return fmt.Errorf("core: column %d curRow %d, want %d", c, m.curRow[c], cr)
		}
		if m.curProb[c] != m.p[cr][c] {
			return fmt.Errorf("core: column %d curProb %g, want %g", c, m.curProb[c], m.p[cr][c])
		}
		cur := m.curProb[c]
		bestRow, bestP := -1, 0.0
		for r := range m.pms {
			if r == cr {
				continue
			}
			p := m.p[r][c]
			if cur > 0 {
				if p > bestP {
					bestP, bestRow = p, r
				}
			} else if p > 0 && bestRow < 0 {
				bestRow, bestP = r, p
			}
		}
		gain := 0.0
		switch {
		case bestRow < 0:
		case cur > 0:
			gain = bestP / cur
		default:
			gain = math.Inf(1)
		}
		if m.bestRow[c] != bestRow || m.bestGain[c] != gain {
			return fmt.Errorf("core: column %d tracker (row %d, gain %g) != rescan (row %d, gain %g)",
				c, m.bestRow[c], m.bestGain[c], bestRow, gain)
		}
		if bestRow >= 0 && m.bestP[c] != bestP {
			return fmt.Errorf("core: column %d bestP %g != rescan %g", c, m.bestP[c], bestP)
		}
	}
	if m.heap != nil {
		if len(m.heap) != len(m.vms) || len(m.hpos) != len(m.vms) {
			return fmt.Errorf("core: heap size %d != %d columns", len(m.heap), len(m.vms))
		}
		for i, c := range m.heap {
			if c < 0 || c >= len(m.vms) || m.hpos[c] != i {
				return fmt.Errorf("core: heap position map broken at slot %d (column %d)", i, c)
			}
		}
		for i := 1; i < len(m.heap); i++ {
			if m.better(m.heap[i], m.heap[(i-1)/2]) {
				return fmt.Errorf("core: heap property violated at slot %d", i)
			}
		}
	}
	return nil
}

// Diff compares two matrices bit-for-bit: dimensions, row/column
// identities, every probability, the column trackers, and the Best
// extraction. A nil return means the matrices are interchangeable for
// Algorithm 1.
func (m *Matrix) Diff(o *Matrix) error {
	if m.Rows() != o.Rows() || m.Cols() != o.Cols() {
		return fmt.Errorf("core: matrix %dx%d != %dx%d", m.Rows(), m.Cols(), o.Rows(), o.Cols())
	}
	for r := range m.pms {
		if m.pms[r].ID != o.pms[r].ID {
			return fmt.Errorf("core: row %d is PM %d vs PM %d", r, m.pms[r].ID, o.pms[r].ID)
		}
	}
	for c := range m.vms {
		if m.vms[c].ID != o.vms[c].ID {
			return fmt.Errorf("core: column %d is VM %d vs VM %d", c, m.vms[c].ID, o.vms[c].ID)
		}
	}
	for r := range m.pms {
		for c := range m.vms {
			if a, b := m.p[r][c], o.p[r][c]; a != b {
				return fmt.Errorf("core: p[%d][%d] = %v vs %v (PM %d, VM %d)",
					r, c, a, b, m.pms[r].ID, m.vms[c].ID)
			}
		}
	}
	for c := range m.vms {
		if m.curRow[c] != o.curRow[c] || m.curProb[c] != o.curProb[c] {
			return fmt.Errorf("core: column %d normalizer (row %d, p %g) vs (row %d, p %g)",
				c, m.curRow[c], m.curProb[c], o.curRow[c], o.curProb[c])
		}
		if m.bestRow[c] != o.bestRow[c] || m.bestGain[c] != o.bestGain[c] {
			return fmt.Errorf("core: column %d best (row %d, gain %g) vs (row %d, gain %g)",
				c, m.bestRow[c], m.bestGain[c], o.bestRow[c], o.bestGain[c])
		}
	}
	mr, mc, mg, mok := m.Best()
	or, oc, og, ook := o.Best()
	if mok != ook || (mok && (mr != or || mc != oc || mg != og)) {
		return fmt.Errorf("core: Best (%d, %d, %g, %t) vs (%d, %d, %g, %t)", mr, mc, mg, mok, or, oc, og, ook)
	}
	return nil
}

// verifyRebuild checks the live matrix against a cold rebuild over the
// same VM set (SelfAudit mode).
func (m *Matrix) verifyRebuild() error {
	opts := m.opts
	opts.SelfAudit = false
	fresh, err := NewMatrixWith(m.ctx, m.factors, m.vms, opts)
	if err != nil {
		return fmt.Errorf("core: rebuild failed: %w", err)
	}
	defer fresh.Release()
	if err := m.SelfCheck(); err != nil {
		return err
	}
	return m.Diff(fresh)
}

// String renders the normalized matrix for debugging, in the layout of the
// paper's worked example (PM rows x VM columns).
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "")
	for _, vm := range m.vms {
		fmt.Fprintf(&b, " VM%-6d", vm.ID)
	}
	b.WriteByte('\n')
	for r, pm := range m.pms {
		fmt.Fprintf(&b, "PM%-6d", pm.ID)
		for c := range m.vms {
			fmt.Fprintf(&b, " %8.4f", m.Normalized(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
