package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
)

// Matrix is the VM/PM mapping probability matrix of Eq. 1: M rows (active
// PMs) by N columns (migratable VMs). It maintains, per column, the joint
// probability of the VM's *current* placement and the best normalized
// alternative, so Algorithm 1 can repeatedly extract the best move and
// refresh only the two affected rows.
type Matrix struct {
	ctx     *Context
	factors []Factor

	pms []*cluster.PM // rows
	vms []*cluster.VM // columns

	rowOf map[cluster.PMID]int
	colOf map[cluster.VMID]int

	// p[r][c] = joint probability of hosting vms[c] on pms[r].
	p [][]float64

	// curRow[c] is the row index of vms[c]'s current host; curProb[c]
	// the joint probability of that placement (the column normalizer).
	curRow  []int
	curProb []float64

	// bestRow[c] / bestGain[c] track the maximizing non-host row of the
	// normalized column and its value d = p / curProb.
	bestRow  []int
	bestGain []float64
}

// NewMatrix builds the probability matrix over the data center's active
// PMs and the given VMs (typically every running VM). Every VM must
// currently be hosted on an active PM. Rows and columns are ordered by ID
// for deterministic tie-breaking.
func NewMatrix(ctx *Context, factors []Factor, vms []*cluster.VM) (*Matrix, error) {
	if ctx == nil || ctx.DC == nil {
		return nil, fmt.Errorf("core: matrix needs a context with a datacenter")
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("core: matrix needs at least one factor")
	}
	m := &Matrix{
		ctx:     ctx,
		factors: factors,
		pms:     ctx.DC.ActivePMs(),
		rowOf:   make(map[cluster.PMID]int),
		colOf:   make(map[cluster.VMID]int),
	}
	sort.Slice(m.pms, func(i, j int) bool { return m.pms[i].ID < m.pms[j].ID })
	for r, pm := range m.pms {
		m.rowOf[pm.ID] = r
	}

	m.vms = append(m.vms, vms...)
	sort.Slice(m.vms, func(i, j int) bool { return m.vms[i].ID < m.vms[j].ID })
	for c, vm := range m.vms {
		if _, dup := m.colOf[vm.ID]; dup {
			return nil, fmt.Errorf("core: duplicate VM %d in matrix", vm.ID)
		}
		if _, ok := m.rowOf[vm.Host]; !ok {
			return nil, fmt.Errorf("core: VM %d hosted on inactive PM %d", vm.ID, vm.Host)
		}
		m.colOf[vm.ID] = c
	}

	m.p = make([][]float64, len(m.pms))
	for r := range m.p {
		m.p[r] = make([]float64, len(m.vms))
	}
	m.curRow = make([]int, len(m.vms))
	m.curProb = make([]float64, len(m.vms))
	m.bestRow = make([]int, len(m.vms))
	m.bestGain = make([]float64, len(m.vms))

	m.fill()
	for c := range m.vms {
		m.refreshColumn(c)
	}
	return m, nil
}

// parallelBuildThreshold is the matrix size (rows * cols) above which the
// initial fill fans out across CPUs. Below it, goroutine overhead beats
// the win. Variable rather than constant so tests can force both paths.
var parallelBuildThreshold = 50_000

// fill computes every p[r][c]. Rows are independent, so for large fleets
// the build is sharded across workers; the per-class constants are
// prewarmed first so the Context's lazy cache is read-only during the
// parallel phase (no locking on the hot path).
func (m *Matrix) fill() {
	if len(m.pms)*len(m.vms) < parallelBuildThreshold {
		for r, pm := range m.pms {
			for c, vm := range m.vms {
				m.p[r][c] = Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
			}
		}
		return
	}
	for _, pm := range m.pms {
		m.ctx.classInfoFor(pm) // prewarm: cache becomes read-only below
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(m.pms) {
		workers = len(m.pms)
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range rows {
				pm := m.pms[r]
				for c, vm := range m.vms {
					m.p[r][c] = Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
				}
			}
		}()
	}
	for r := range m.pms {
		rows <- r
	}
	close(rows)
	wg.Wait()
}

// Rows and Cols report the matrix dimensions.
func (m *Matrix) Rows() int { return len(m.pms) }

// Cols reports the number of VM columns.
func (m *Matrix) Cols() int { return len(m.vms) }

// P returns the joint probability for (pm row r, vm column c).
func (m *Matrix) P(r, c int) float64 { return m.p[r][c] }

// Normalized returns d_rc = p_rc / p_(current host of c), the column-
// normalized value Algorithm 1 compares against MIG_threshold. Values
// above 1 indicate the move improves the mapping; the current host is
// exactly 1. When the current placement has probability 0 (which can
// happen when a VM's remaining estimate has expired and its host became
// unreliable), any feasible alternative is treated as +Inf gain.
func (m *Matrix) Normalized(r, c int) float64 {
	if r == m.curRow[c] {
		return 1
	}
	return m.normalize(m.p[r][c], m.curProb[c])
}

func (m *Matrix) normalize(p, cur float64) float64 {
	if cur <= 0 {
		if p > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return p / cur
}

// refreshColumn recomputes curRow/curProb and the best alternative for
// column c by scanning all rows.
func (m *Matrix) refreshColumn(c int) {
	vm := m.vms[c]
	cr, ok := m.rowOf[vm.Host]
	if !ok {
		panic(fmt.Sprintf("core: VM %d host %d left the matrix", vm.ID, vm.Host))
	}
	m.curRow[c] = cr
	m.curProb[c] = m.p[cr][c]

	bestRow, bestGain := -1, 0.0
	for r := range m.pms {
		if r == cr {
			continue
		}
		if g := m.normalize(m.p[r][c], m.curProb[c]); g > bestGain {
			bestGain, bestRow = g, r
		}
	}
	m.bestRow[c] = bestRow
	m.bestGain[c] = bestGain
}

// recomputeRow re-evaluates every probability in row r and incrementally
// fixes the per-column best trackers. Columns whose current host is row r
// get a full refresh (their normalizer changed); for the rest the row's
// new value either beats the cached best, or — if the cached best lived in
// this row — forces a column rescan.
func (m *Matrix) recomputeRow(r int) {
	pm := m.pms[r]
	for c, vm := range m.vms {
		m.p[r][c] = Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
	}
	for c := range m.vms {
		switch {
		case m.curRow[c] == r || m.rowOf[m.vms[c].Host] != m.curRow[c]:
			// Normalizer changed (this row hosts the column's VM,
			// or the VM moved since the trackers were computed).
			m.refreshColumn(c)
		case m.bestRow[c] == r:
			// Cached best was in this row; it may have dropped.
			m.refreshColumn(c)
		default:
			if g := m.normalize(m.p[r][c], m.curProb[c]); g > m.bestGain[c] {
				m.bestGain[c] = g
				m.bestRow[c] = r
			}
		}
	}
}

// Best returns the globally maximal normalized gain and its (row, col), or
// ok = false when no column has a positive-gain alternative. Ties break
// toward the lowest column (VM ID) then lowest row (PM ID), keeping runs
// deterministic.
func (m *Matrix) Best() (r, c int, gain float64, ok bool) {
	r, c, gain = -1, -1, 0
	for col := range m.vms {
		g := m.bestGain[col]
		if m.bestRow[col] < 0 {
			continue
		}
		if g > gain {
			gain, r, c, ok = g, m.bestRow[col], col, true
		}
	}
	return r, c, gain, ok
}

// Move is one migration decision produced by Algorithm 1.
type Move struct {
	VM   cluster.VMID
	From cluster.PMID
	To   cluster.PMID

	// Gain is the normalized probability ratio d_ij that justified the
	// move (> MIG_threshold).
	Gain float64

	// Round is the 1-based migration round within the consolidation
	// pass.
	Round int
}

// Apply performs the move for column c to row r: it evicts the VM from its
// current host, hosts it on the target PM, and refreshes the two affected
// rows. The datacenter state is mutated. Apply returns an error if the
// target cannot actually host the VM (which would indicate a factor bug,
// since p_res must have been positive).
func (m *Matrix) Apply(r, c int) error {
	vm := m.vms[c]
	from := m.pms[m.curRow[c]]
	to := m.pms[r]
	if err := from.Evict(vm); err != nil {
		return fmt.Errorf("core: apply move of VM %d: %w", vm.ID, err)
	}
	if err := to.Host(vm); err != nil {
		// Roll back so the model stays consistent.
		if rbErr := from.Host(vm); rbErr != nil {
			panic(fmt.Sprintf("core: rollback failed after host error (%v): %v", err, rbErr))
		}
		return fmt.Errorf("core: apply move of VM %d: %w", vm.ID, err)
	}
	vm.Migrations++
	m.recomputeRow(m.rowOf[from.ID])
	m.recomputeRow(m.rowOf[to.ID])
	return nil
}

// String renders the normalized matrix for debugging, in the layout of the
// paper's worked example (PM rows x VM columns).
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "")
	for _, vm := range m.vms {
		fmt.Fprintf(&b, " VM%-6d", vm.ID)
	}
	b.WriteByte('\n')
	for r, pm := range m.pms {
		fmt.Fprintf(&b, "PM%-6d", pm.ID)
		for c := range m.vms {
			fmt.Fprintf(&b, " %8.4f", m.Normalized(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
