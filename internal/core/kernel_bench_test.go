package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// Kernel micro-benchmarks: the factored evaluation path versus the
// generic Factor-interface path, at 100 / 1k / 10k PMs with ~2 VMs per
// PM, over the three hot operations of the scheme — matrix build,
// per-round incremental update, and arrival ranking. cmd/benchreport runs
// the same comparisons programmatically and records them in
// BENCH_core.json. For benchstat-friendly output:
//
//	go test ./internal/core -run '^$' -bench 'Kernel.*pms(100|1000)$' -count 10
//
// (the pms10000 variants are sized for scale tests, not quick runs).

var benchSizes = []int{100, 1000, 10000}

func benchPath(disable bool) string {
	if disable {
		return "generic"
	}
	return "kernel"
}

func BenchmarkKernelMatrixBuild(b *testing.B) {
	for _, disable := range []bool{false, true} {
		for _, pms := range benchSizes {
			b.Run(fmt.Sprintf("%s/pms%d", benchPath(disable), pms), func(b *testing.B) {
				ctx, vms := tableIIState(b, pms, 2*pms, 7)
				opts := MatrixOptions{DisableKernel: disable}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := NewMatrixWith(ctx, DefaultFactors(), vms, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(pms*len(vms)), "cells")
			})
		}
	}
}

// BenchmarkKernelMatrixRound measures one migration round's incremental
// work — Apply's two recomputeRow calls plus the heap maintenance behind
// Best — by ping-ponging the best move back and forth (two Applies per
// iteration, so one iteration ≈ two rounds).
func BenchmarkKernelMatrixRound(b *testing.B) {
	for _, disable := range []bool{false, true} {
		for _, pms := range benchSizes {
			b.Run(fmt.Sprintf("%s/pms%d", benchPath(disable), pms), func(b *testing.B) {
				ctx, vms := tableIIState(b, pms, 2*pms, 7)
				m, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{DisableKernel: disable})
				if err != nil {
					b.Fatal(err)
				}
				r, c, _, ok := m.Best()
				if !ok {
					b.Fatal("no positive-gain move in the bench state")
				}
				origin := m.curRow[c]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := m.Apply(r, c); err != nil {
						b.Fatal(err)
					}
					if err := m.Apply(origin, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelArrival measures the paper's arrival path: score the new
// VM's column and take the argmax. "kernel" is BestPlacement (factored,
// sort-free); "generic" replicates the pre-kernel path — Joint per PM,
// collect, full sort.
func BenchmarkKernelArrival(b *testing.B) {
	for _, disable := range []bool{false, true} {
		for _, pms := range benchSizes {
			b.Run(fmt.Sprintf("%s/pms%d", benchPath(disable), pms), func(b *testing.B) {
				ctx, _ := tableIIState(b, pms, 2*pms, 7)
				arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
				factors := DefaultFactors()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var pm *cluster.PM
					if disable {
						pm = genericBestPlacement(ctx, factors, arrival)
					} else {
						pm = BestPlacement(ctx, factors, arrival)
					}
					if pm == nil {
						b.Fatal("no placement found")
					}
				}
			})
		}
	}
}

// genericBestPlacement replicates the pre-kernel arrival path for
// comparison: evaluate Joint on every active PM, build the candidate
// slice, sort it, take the head.
func genericBestPlacement(ctx *Context, factors []Factor, vm *cluster.VM) *cluster.PM {
	var out []Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if p := Joint(ctx, factors, vm, pm, false); p > 0 {
			out = append(out, Placement{PM: pm, Probability: p})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].PM.ID < out[j].PM.ID
	})
	if len(out) == 0 {
		return nil
	}
	return out[0].PM
}
