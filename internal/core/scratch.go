package core

import (
	"repro/internal/cluster"
	"repro/internal/vector"
)

// This file holds the Context's reusable scratch storage. The placement
// paths run once per arrival and once per control period for the whole
// simulation; rebuilding their backing slices and maps from nothing each
// time made allocation churn, not arithmetic, the steady-state cost. The
// pools follow a checkout model so overlapping builds (the audit's
// differential matrix rebuilds) stay correct: a build detaches the
// scratch from the Context, a Release re-attaches it, and a build that
// finds no scratch attached simply allocates a fresh one that is either
// re-attached on its own Release or left to the GC.

// matrixScratch is the reusable backing store for one Matrix and its
// compiled kernel.
type matrixScratch struct {
	pms []*cluster.PM
	vms []*cluster.VM

	rowOf map[cluster.PMID]int
	colOf map[cluster.VMID]int

	// pflat is the probability storage, sliced into row headers (prows)
	// so Matrix.p keeps its [][]float64 shape without per-row allocations.
	pflat []float64
	prows [][]float64

	curRow   []int
	curProb  []float64
	bestRow  []int
	bestGain []float64
	bestP    []float64

	topRows []int32
	topPs   []float64
	topLen  []int32

	heap    []int
	hpos    []int
	pending []int
	cols    []int

	ks kernScratch
	rs rowScratch
}

// kernScratch is the reusable backing store for one compiled kernel.
type kernScratch struct {
	kern     kernel
	terms    []term
	rowClass []int
	infos    []*classInfo
	vir      []float64 // raw backing of the aligned vir slab (see alignedFloats)
	demIdx   []int
	demands  []vector.V
	classIdx map[*cluster.PMClass]int
	shapes   map[string]int
	key      []byte

	// Hosted-cell index storage (see kernel.buildHostIndex).
	hostHead []int32
	hostNext []int32
	hostPrev []int32
	hostIdx  map[cluster.PMID]int32
}

// rowScratch holds fillRow's per-demand-shape memo buffers and the slab
// path's aligned working slabs. Every concurrent row filler owns one; the
// serial fill and recomputeRow reuse the matrix's.
type rowScratch struct {
	feas []bool
	eff  []float64

	// Raw backings for the slab path's aligned views (alignedFloats):
	// effZRaw holds the per-demand-shape efficiency memo, effColRaw its
	// per-column expansion.
	effZRaw   []float64
	effColRaw []float64
}

// shapeSlab returns the aligned per-demand-shape slab sized for d shapes.
// Contents are unspecified; fillRowSlab writes every entry.
func (rs *rowScratch) shapeSlab(d int) []float64 {
	var v []float64
	rs.effZRaw, v = alignedFloats(rs.effZRaw, d)
	return v
}

// colSlab returns the aligned per-column slab sized for n columns.
// Contents are unspecified; fillRowSlab writes every entry.
func (rs *rowScratch) colSlab(n int) []float64 {
	var v []float64
	rs.effColRaw, v = alignedFloats(rs.effColRaw, n)
	return v
}

// buffers returns the memo buffers sized for d demand shapes, feasibility
// cleared. (eff entries are only read where feas is true, so they need no
// clearing.)
func (rs *rowScratch) buffers(d int) ([]bool, []float64) {
	if cap(rs.feas) < d {
		rs.feas = make([]bool, d)
		rs.eff = make([]float64, d)
	}
	feas, eff := rs.feas[:d], rs.eff[:d]
	for i := range feas {
		feas[i] = false
	}
	return feas, eff
}

// arrivalScratch is the per-arrival evaluation state BestPlacement and
// RankPlacements reuse: the active-PM row set and a single-column kernel.
// Arrivals are strictly sequential within a simulation, so plain reuse
// (no checkout) is safe here.
type arrivalScratch struct {
	pms   []*cluster.PM
	vmBuf [1]*cluster.VM
	ks    kernScratch
}

// takeScratch detaches the Context's matrix scratch (allocating one on
// first use or while another build has it checked out).
func (ctx *Context) takeScratch() *matrixScratch {
	scr := ctx.mscratch
	if scr == nil {
		scr = &matrixScratch{
			rowOf: make(map[cluster.PMID]int),
			colOf: make(map[cluster.VMID]int),
		}
	}
	ctx.mscratch = nil
	clear(scr.rowOf)
	clear(scr.colOf)
	return scr
}

// Release returns the matrix's backing storage to its Context for the
// next build to reuse. The matrix must not be used afterwards. Release is
// optional — an un-released matrix just leaves its storage to the GC, and
// when several matrices over one Context are alive at once (the audit's
// differential rebuilds) only the first Release re-attaches.
func (m *Matrix) Release() {
	if m == nil || m.scr == nil {
		return
	}
	scr := m.scr
	m.scr = nil
	// Store the possibly-regrown slices back so their capacity survives.
	scr.pms, scr.vms = m.pms, m.vms
	scr.prows, scr.curRow, scr.curProb = m.p, m.curRow, m.curProb
	scr.bestRow, scr.bestGain, scr.bestP = m.bestRow, m.bestGain, m.bestP
	scr.topRows, scr.topPs, scr.topLen = m.topRows, m.topPs, m.topLen
	scr.heap, scr.hpos, scr.pending = m.heap, m.hpos, m.pending
	if m.ctx.mscratch == nil {
		m.ctx.mscratch = scr
	}
}

// growFloats returns s resized to n, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite every element.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
