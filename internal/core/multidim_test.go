package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// The paper formulates everything for K resource types; the evaluation
// uses K = 2 (CPU, memory). These tests drive the full placement and
// consolidation pipeline with K = 3 (CPU, memory, disk) to pin the
// machinery's dimensional generality.

func threeDimDC() *cluster.Datacenter {
	node := &cluster.PMClass{
		Name:          "3d",
		Capacity:      vector.New(8, 8, 500), // cores, GB, GB-disk
		CreationTime:  30,
		MigrationTime: 40,
		OnOffOverhead: 50,
		ActivePower:   400,
		IdlePower:     240,
		Reliability:   0.99,
	}
	dc := cluster.MustNew(cluster.Config{
		RMin:   vector.New(1, 0.25, 10),
		Groups: []cluster.Group{{Class: node, Count: 4}},
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	return dc
}

func TestThreeDimensionalPlacement(t *testing.T) {
	dc := threeDimDC()
	ctx := &Context{DC: dc, Now: 0}
	factors := DefaultFactors()

	// A disk-heavy VM must respect the third dimension.
	disky := cluster.NewVM(1, vector.New(1, 0.5, 450), 10000, 10000, 0)
	pm := BestPlacement(ctx, factors, disky)
	if pm == nil {
		t.Fatal("3-dim VM not placed")
	}
	if err := pm.Host(disky); err != nil {
		t.Fatal(err)
	}
	disky.State = cluster.VMRunning

	// A second disk-heavy VM cannot share that PM (disk exhausted).
	disky2 := cluster.NewVM(2, vector.New(1, 0.5, 100), 10000, 10000, 0)
	pm2 := BestPlacement(ctx, factors, disky2)
	if pm2 == nil {
		t.Fatal("second VM not placed")
	}
	if pm2.ID == pm.ID {
		t.Errorf("disk constraint ignored: both VMs on PM%d", pm.ID)
	}
}

func TestThreeDimensionalConsolidation(t *testing.T) {
	dc := threeDimDC()
	ctx := &Context{DC: dc, Now: 0}

	// Spread three small VMs across three PMs; all fit on one.
	for i := 0; i < 3; i++ {
		vm := cluster.NewVM(cluster.VMID(i+1), vector.New(2, 1, 50), 100000, 100000, 0)
		if err := dc.PM(cluster.PMID(i)).Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
	}
	before := dc.NonIdleCount()
	moves, err := Consolidate(ctx, DefaultFactors(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no 3-dim consolidation")
	}
	if after := dc.NonIdleCount(); after >= before {
		t.Errorf("non-idle %d -> %d, want reduction", before, after)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestThreeDimensionalEfficiencyLevels(t *testing.T) {
	dc := threeDimDC()
	ctx := &Context{DC: dc, Now: 0}
	pm := dc.PM(0)
	rmin := dc.RMin()

	// W_j = min(8/1, 8/0.25, 500/10) = 8; hosting w minimal VMs lands in
	// level w under the K = 3 partition (w^3 scaling).
	for w := 1; w <= 4; w++ {
		vm := cluster.NewVM(cluster.VMID(100+w), rmin, 10000, 10000, 0)
		if err := pm.Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
		if got := pm.UtilizationLevel(rmin); got != w {
			t.Errorf("hosting %d minimal VMs -> level %d", w, got)
		}
	}
	// The efficiency factor must track the same levels.
	probe := cluster.NewVM(999, rmin, 10000, 10000, 0)
	p := (EfficiencyFactor{}).Probability(ctx, probe, pm, false)
	want := 5.0 / 8.0 // prospective level 5 of W=8, eff = 1 (single class)
	if diff := p - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("3-dim p_eff = %g, want %g", p, want)
	}
}
