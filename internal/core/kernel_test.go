package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vector"
)

// tableIIState builds a deterministic mid-simulation snapshot of a
// Table II-mix fleet: all pmCount PMs on, nVMs requests with varied
// demands, estimates, and elapsed runtimes, placed first-fit. Calling it
// twice with the same arguments yields two independent but identical
// states, which the Consolidate equivalence test needs (Algorithm 1
// mutates the fleet it runs on).
func tableIIState(tb testing.TB, pmCount, nVMs int, seed int64) (*Context, []*cluster.VM) {
	tb.Helper()
	dc := cluster.TableIIFleetScaled(pmCount)
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	rng := stats.NewRand(seed)
	const now = 7200.0
	var vms []*cluster.VM
	mems := []float64{0.25, 0.5, 1, 2}
	for id := 1; id <= nVMs; id++ {
		demand := vector.New(float64(1+rng.Intn(2)), mems[rng.Intn(len(mems))])
		est := float64(600 + rng.Intn(86400))
		vm := cluster.NewVM(cluster.VMID(id), demand, est, est, 0)
		placed := false
		for _, pm := range dc.PMs() {
			if pm.CanHost(vm.Demand) {
				if err := pm.Host(vm); err != nil {
					tb.Fatal(err)
				}
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		vm.State = cluster.VMRunning
		vm.StartTime = float64(rng.Intn(7000))
		vms = append(vms, vm)
	}
	if len(vms) < nVMs/2 {
		tb.Fatalf("only placed %d of %d VMs", len(vms), nVMs)
	}
	return &Context{DC: dc, Now: now}, vms
}

// offsetFactor is a user-supplied extra factor (pure, PM-dependent) used
// to exercise the kernel's generic-composition path.
type offsetFactor struct{}

func (offsetFactor) Name() string { return "offset" }

func (offsetFactor) Probability(_ *Context, _ *cluster.VM, pm *cluster.PM, _ bool) float64 {
	return 1 - float64(int(pm.ID)%5)/100
}

// assertMatricesEqual requires bit-identical probabilities and trackers.
func assertMatricesEqual(t *testing.T, fast, slow *Matrix) {
	t.Helper()
	if fast.Rows() != slow.Rows() || fast.Cols() != slow.Cols() {
		t.Fatalf("dims %dx%d != %dx%d", fast.Rows(), fast.Cols(), slow.Rows(), slow.Cols())
	}
	for r := 0; r < fast.Rows(); r++ {
		for c := 0; c < fast.Cols(); c++ {
			if fast.p[r][c] != slow.p[r][c] {
				t.Fatalf("p[%d][%d]: kernel %v != generic %v (VM %d on PM %d)",
					r, c, fast.p[r][c], slow.p[r][c], fast.vms[c].ID, fast.pms[r].ID)
			}
		}
	}
	for c := 0; c < fast.Cols(); c++ {
		if fast.curRow[c] != slow.curRow[c] || fast.curProb[c] != slow.curProb[c] {
			t.Fatalf("col %d normalizer: kernel (%d, %v) != generic (%d, %v)",
				c, fast.curRow[c], fast.curProb[c], slow.curRow[c], slow.curProb[c])
		}
		if fast.bestRow[c] != slow.bestRow[c] || fast.bestGain[c] != slow.bestGain[c] {
			t.Fatalf("col %d best: kernel (%d, %v) != generic (%d, %v)",
				c, fast.bestRow[c], fast.bestGain[c], slow.bestRow[c], slow.bestGain[c])
		}
	}
	fr, fc, fg, fok := fast.Best()
	sr, sc, sg, sok := slow.Best()
	if fr != sr || fc != sc || fg != sg || fok != sok {
		t.Fatalf("Best: kernel (%d, %d, %v, %v) != generic (%d, %d, %v, %v)",
			fr, fc, fg, fok, sr, sc, sg, sok)
	}
}

// TestKernelEquivalence proves the factored kernel yields bit-identical
// matrices to the generic Factor-interface path on the Table II fleet, for
// the default factors, for ablation subsets, and for a user factor
// composed on top.
func TestKernelEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		factors []Factor
		kernel  bool // kernel path expected to engage
	}{
		{"default", DefaultFactors(), true},
		{"no-vir", []Factor{ResourceFactor{}, ReliabilityFactor{}, EfficiencyFactor{}}, true},
		{"no-eff", []Factor{ResourceFactor{}, VirtualizationFactor{}, ReliabilityFactor{}}, true},
		{"no-rel", []Factor{ResourceFactor{}, VirtualizationFactor{}, EfficiencyFactor{}}, true},
		{"extra-on-top", append(DefaultFactors(), offsetFactor{}), true},
		{"pure-custom", []Factor{offsetFactor{}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, vms := tableIIState(t, 100, 260, 7)
			fast, err := NewMatrix(ctx, tc.factors, vms)
			if err != nil {
				t.Fatal(err)
			}
			if got := fast.kern != nil; got != tc.kernel {
				t.Fatalf("kernel engaged = %v, want %v", got, tc.kernel)
			}
			slow, err := NewMatrixWith(ctx, tc.factors, vms, MatrixOptions{DisableKernel: true})
			if err != nil {
				t.Fatal(err)
			}
			if slow.kern != nil {
				t.Fatal("DisableKernel did not disable the kernel")
			}
			assertMatricesEqual(t, fast, slow)
		})
	}
}

// TestKernelEquivalenceConsolidate proves Algorithm 1 produces identical
// move sequences (VM, endpoints, bit-identical gains, rounds) through both
// evaluation paths on the Table II fleet.
func TestKernelEquivalenceConsolidate(t *testing.T) {
	params := Params{MIGThreshold: 1.05, MIGRound: 50}
	ctxFast, _ := tableIIState(t, 100, 260, 11)
	ctxSlow, _ := tableIIState(t, 100, 260, 11)

	fast, err := ConsolidateWith(ctxFast, DefaultFactors(), params, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ConsolidateWith(ctxSlow, DefaultFactors(), params, MatrixOptions{DisableKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) == 0 {
		t.Fatal("consolidation produced no moves; the state is too easy to prove anything")
	}
	if len(fast) != len(slow) {
		t.Fatalf("move counts differ: kernel %d != generic %d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("move %d: kernel %+v != generic %+v", i, fast[i], slow[i])
		}
	}
	if err := ctxFast.DC.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestKernelArrivalEquivalence checks the fast arrival path: BestPlacement
// must return RankPlacements' top entry, and the kernel-scored ranking must
// equal a naive Joint scan — including the unhosted-VM overhead rule
// (creation only, no migration share).
func TestKernelArrivalEquivalence(t *testing.T) {
	ctx, _ := tableIIState(t, 100, 200, 13)
	factors := DefaultFactors()
	arrival := cluster.NewVM(9001, vector.New(2, 1), 5400, 5400, ctx.Now)

	ranked := RankPlacements(ctx, factors, arrival)
	if len(ranked) == 0 {
		t.Fatal("no feasible placements for the arrival")
	}
	if best := BestPlacement(ctx, factors, arrival); best != ranked[0].PM {
		t.Fatalf("BestPlacement = PM%d, RankPlacements[0] = PM%d", best.ID, ranked[0].PM.ID)
	}

	byPM := make(map[cluster.PMID]float64, len(ranked))
	for _, pl := range ranked {
		byPM[pl.PM.ID] = pl.Probability
	}
	n := 0
	for _, pm := range ctx.DC.ActivePMs() {
		want := Joint(ctx, factors, arrival, pm, false)
		if want > 0 {
			n++
		}
		if got := byPM[pm.ID]; got != want {
			t.Fatalf("PM %d: kernel arrival probability %v != generic %v", pm.ID, got, want)
		}
	}
	if n != len(ranked) {
		t.Fatalf("ranking has %d entries, generic scan found %d feasible", len(ranked), n)
	}
}

// TestMatrixTrackersMatchRebuildAfterRandomApplies is the incremental-
// drift property test: after a randomized sequence of Apply calls, the
// live matrix's curRow/curProb/bestRow/bestGain trackers (and the gain
// heap behind Best) must match a from-scratch NewMatrix rebuild of the
// mutated datacenter, on both evaluation paths.
func TestMatrixTrackersMatchRebuildAfterRandomApplies(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "kernel"
		if disable {
			name = "generic"
		}
		t.Run(name, func(t *testing.T) {
			ctx, vms := tableIIState(t, 100, 150, 23)
			opts := MatrixOptions{DisableKernel: disable}
			m, err := NewMatrixWith(ctx, DefaultFactors(), vms, opts)
			if err != nil {
				t.Fatal(err)
			}
			rng := stats.NewRand(42)
			applied := 0
			for step := 0; step < 40; step++ {
				// Random feasible move: any positive cell off the
				// current host.
				c := rng.Intn(m.Cols())
				var rows []int
				for r := 0; r < m.Rows(); r++ {
					if r != m.curRow[c] && m.p[r][c] > 0 {
						rows = append(rows, r)
					}
				}
				if len(rows) == 0 {
					continue
				}
				if err := m.Apply(rows[rng.Intn(len(rows))], c); err != nil {
					t.Fatal(err)
				}
				applied++

				fresh, err := NewMatrixWith(ctx, DefaultFactors(), vms, opts)
				if err != nil {
					t.Fatal(err)
				}
				assertMatricesEqual(t, m, fresh)
			}
			if applied < 10 {
				t.Fatalf("only %d random moves applied; property barely exercised", applied)
			}
			if err := ctx.DC.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestConsolidateZeroCurrentProbability exercises the curProb == 0 → +Inf
// gain path end-to-end through Consolidate with the real factors: a VM
// whose host's reliability has decayed to zero has a zero-probability
// placement, so any feasible alternative must be taken regardless of
// MIG_threshold, with an infinite recorded gain.
func TestConsolidateZeroCurrentProbability(t *testing.T) {
	for _, disable := range []bool{false, true} {
		name := "kernel"
		if disable {
			name = "generic"
		}
		t.Run(name, func(t *testing.T) {
			dc := cluster.TableIIFleetScaled(4)
			for _, pm := range dc.PMs() {
				pm.State = cluster.PMOn
			}
			vm := cluster.NewVM(1, vector.New(1, 0.5), 36000, 36000, 0)
			host := dc.PM(0)
			if err := host.Host(vm); err != nil {
				t.Fatal(err)
			}
			vm.State = cluster.VMRunning
			// The failure model decays per-PM reliability; zero means
			// the current placement's joint probability is zero.
			host.Reliability = 0

			ctx := NewContext(dc).At(100)
			moves, err := ConsolidateWith(ctx, DefaultFactors(), DefaultParams(), MatrixOptions{DisableKernel: disable})
			if err != nil {
				t.Fatal(err)
			}
			if len(moves) != 1 {
				t.Fatalf("moves = %+v, want exactly one rescue migration", moves)
			}
			mv := moves[0]
			if mv.VM != 1 || mv.From != 0 || mv.To == 0 {
				t.Errorf("move = %+v, want VM1 off PM0", mv)
			}
			if !math.IsInf(mv.Gain, 1) {
				t.Errorf("gain = %v, want +Inf (zero-probability current placement)", mv.Gain)
			}
			if vm.Host == 0 {
				t.Error("VM still on the unreliable host")
			}
			if err := dc.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}
