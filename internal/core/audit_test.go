package core

import (
	"strings"
	"testing"
)

func TestSelfCheckCleanAfterApplies(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SelfCheck(); err != nil {
		t.Fatalf("fresh matrix fails self-check: %v", err)
	}
	for i := 0; i < 3; i++ {
		r, c, _, ok := m.Best()
		if !ok {
			break
		}
		if err := m.Apply(r, c); err != nil {
			t.Fatal(err)
		}
		if err := m.SelfCheck(); err != nil {
			t.Fatalf("self-check after apply %d: %v", i, err)
		}
	}
}

func TestSelfCheckDetectsCorruptedTracker(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	m.bestGain[0] *= 1.5 // simulate a tracker gone stale
	if err := m.SelfCheck(); err == nil {
		t.Fatal("self-check missed a corrupted best-gain tracker")
	}
}

func TestDiffDetectsPerturbation(t *testing.T) {
	ctx, factors, vms := paperExample()
	a, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Diff(b); err != nil {
		t.Fatalf("identical matrices diff: %v", err)
	}
	b.p[1][2] += 1e-12
	if err := a.Diff(b); err == nil {
		t.Fatal("Diff missed a one-ulp probability perturbation")
	} else if !strings.Contains(err.Error(), "p[") {
		t.Fatalf("Diff error %q does not locate the cell", err)
	}
}

func TestSelfAuditOptionVerifiesEveryApply(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrixWith(ctx, factors, vms, MatrixOptions{SelfAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for {
		r, c, gain, ok := m.Best()
		if !ok || gain <= 1.05 {
			break
		}
		if err := m.Apply(r, c); err != nil {
			t.Fatalf("self-audited apply %d: %v", applied, err)
		}
		applied++
		if applied > 20 {
			t.Fatal("runaway migration loop")
		}
	}
	if applied == 0 {
		t.Fatal("paper example produced no migrations; self-audit never exercised")
	}
}

func TestConsolidateWithSelfAuditMatchesPlain(t *testing.T) {
	ctxA, factorsA, _ := paperExample()
	plain, err := ConsolidateWith(ctxA, factorsA, DefaultParams(), MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxB, factorsB, _ := paperExample()
	audited, err := ConsolidateWith(ctxB, factorsB, DefaultParams(), MatrixOptions{SelfAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(audited) {
		t.Fatalf("self-audit changed the move count: %d vs %d", len(plain), len(audited))
	}
	for i := range plain {
		if plain[i] != audited[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, plain[i], audited[i])
		}
	}
}
