package core

import (
	"fmt"
	"testing"
	"unsafe"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vector"
)

// slabState is tableIIState hardened for the slab path's edge cases: a
// zero-reliability PM (p_rel = 0 must propagate as exact +0 through the
// branch-free product), and a batch of expired-estimate VMs (remaining
// estimate below the migration overhead zeroes p_vir — the scalar path
// short-circuits there, the slab path multiplies through).
func slabState(tb testing.TB, pmCount, nVMs int, seed int64) (*Context, []*cluster.VM) {
	tb.Helper()
	ctx, vms := tableIIState(tb, pmCount, nVMs, seed)
	pms := ctx.DC.PMs()
	pms[len(pms)/2].Reliability = 0
	for i := 0; i < len(vms); i += 7 {
		// Elapsed runtime beyond the estimate: RemainingEstimate clamps
		// at zero, so p_vir = 0 for every non-host row.
		vms[i].EstimatedRuntime = 1
		vms[i].StartTime = 0
	}
	return ctx, vms
}

// TestSlabEquivalence is the three-way differential: the batched slab
// fill, the scalar kernel fill (DisableSlab), and the generic Factor path
// (DisableKernel) must produce bit-identical matrices — probabilities and
// trackers — including under zero-reliability rows and expired-estimate
// columns where the scalar path takes its literal-zero short circuits.
func TestSlabEquivalence(t *testing.T) {
	for _, size := range []struct{ pms, vms int }{{7, 11}, {40, 90}, {100, 260}} {
		t.Run(fmt.Sprintf("pms%d", size.pms), func(t *testing.T) {
			ctx, vms := slabState(t, size.pms, size.vms, 17)
			slab, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if slab.kern == nil || slab.kern.noSlab {
				t.Fatal("default options did not engage the slab path")
			}
			scalar, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{DisableSlab: true})
			if err != nil {
				t.Fatal(err)
			}
			if scalar.kern == nil || !scalar.kern.noSlab {
				t.Fatal("DisableSlab did not force the scalar fill")
			}
			generic, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{DisableKernel: true})
			if err != nil {
				t.Fatal(err)
			}
			assertMatricesEqual(t, slab, scalar)
			assertMatricesEqual(t, slab, generic)
		})
	}
}

// TestSlabEquivalenceAfterApplies drives identical random migration
// sequences through a slab matrix and a scalar-fill matrix over two
// independent copies of the same fleet state. Every Apply goes through
// moveHosted on the slab side, so divergence here means the hosted-cell
// index drifted from the live vm.Host fields.
func TestSlabEquivalenceAfterApplies(t *testing.T) {
	ctxSlab, vmsSlab := slabState(t, 60, 140, 29)
	ctxScalar, vmsScalar := slabState(t, 60, 140, 29)
	slab, err := NewMatrixWith(ctxSlab, DefaultFactors(), vmsSlab, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewMatrixWith(ctxScalar, DefaultFactors(), vmsScalar, MatrixOptions{DisableSlab: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(5)
	applied := 0
	for step := 0; step < 60; step++ {
		c := rng.Intn(slab.Cols())
		var rows []int
		for r := 0; r < slab.Rows(); r++ {
			if r != slab.curRow[c] && slab.p[r][c] > 0 {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		r := rows[rng.Intn(len(rows))]
		if err := slab.Apply(r, c); err != nil {
			t.Fatal(err)
		}
		if err := scalar.Apply(r, c); err != nil {
			t.Fatal(err)
		}
		applied++
		assertMatricesEqual(t, slab, scalar)
	}
	if applied < 20 {
		t.Fatalf("only %d moves applied; property barely exercised", applied)
	}
}

// TestSlabHostIndexTracksMoves checks the linked hosted index directly:
// after a migration the column must appear exactly once, in the target
// row's list.
func TestSlabHostIndexTracksMoves(t *testing.T) {
	ctx, vms := tableIIState(t, 20, 50, 3)
	m, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := m.kern
	if k == nil || k.hostHead == nil {
		t.Fatal("no hosted index on a fully hosted matrix")
	}
	check := func() {
		t.Helper()
		seen := make(map[int]int)
		for r := range m.pms {
			for c := k.hostHead[r]; c >= 0; c = k.hostNext[c] {
				seen[int(c)]++
				if m.vms[c].Host != m.pms[r].ID {
					t.Fatalf("index lists column %d under PM %d, but VM %d is hosted on PM %d",
						c, m.pms[r].ID, m.vms[c].ID, m.vms[c].Host)
				}
			}
		}
		if len(seen) != len(m.vms) {
			t.Fatalf("index covers %d of %d columns", len(seen), len(m.vms))
		}
		for c, n := range seen {
			if n != 1 {
				t.Fatalf("column %d appears %d times in the index", c, n)
			}
		}
	}
	check()
	rng := stats.NewRand(11)
	for step := 0; step < 30; step++ {
		c := rng.Intn(m.Cols())
		for r := 0; r < m.Rows(); r++ {
			if r != m.curRow[c] && m.p[r][c] > 0 {
				if err := m.Apply(r, c); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		check()
	}
}

// TestSlabAlignment pins the memory-layout contract: every slab view is
// 64-byte aligned, and each class lane of the vir memo starts on a cache
// line (the stride rounds the column count up to a whole line).
func TestSlabAlignment(t *testing.T) {
	for _, n := range []int{1, 7, 8, 63, 64, 65, 1000} {
		var raw, view []float64
		raw, view = alignedFloats(raw, n)
		if len(view) != n {
			t.Fatalf("n=%d: view length %d", n, len(view))
		}
		if addr := uintptr(unsafe.Pointer(&view[0])); addr%slabAlign != 0 {
			t.Fatalf("n=%d: slab base %#x not %d-byte aligned", n, addr, slabAlign)
		}
		// Regrowing through the same raw backing must stay aligned.
		raw, view = alignedFloats(raw, n)
		if addr := uintptr(unsafe.Pointer(&view[0])); addr%slabAlign != 0 {
			t.Fatalf("n=%d: reused slab base %#x not aligned", n, addr)
		}
	}
	if got := alignUp(0); got != 0 {
		t.Fatalf("alignUp(0) = %d", got)
	}
	for _, n := range []int{1, 8, 9, 100} {
		up := alignUp(n)
		if up < n || up%floatsPerLine != 0 || up-n >= floatsPerLine {
			t.Fatalf("alignUp(%d) = %d", n, up)
		}
	}

	ctx, vms := tableIIState(t, 30, 70, 9)
	m, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k := m.kern
	if k.virStride != alignUp(len(m.vms)) {
		t.Fatalf("virStride %d, want %d", k.virStride, alignUp(len(m.vms)))
	}
	for ci := range k.infos {
		if addr := uintptr(unsafe.Pointer(&k.vir[ci*k.virStride])); addr%slabAlign != 0 {
			t.Fatalf("vir lane %d base %#x not %d-byte aligned", ci, addr, slabAlign)
		}
	}
}

// TestSlabArrivalSkipsHostIndex pins the arrival fast path: a kernel
// compiled over a single unhosted column must not build (or pay for) the
// hosted index.
func TestSlabArrivalSkipsHostIndex(t *testing.T) {
	ctx, _ := tableIIState(t, 10, 20, 1)
	arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)
	var ks kernScratch
	pms := ctx.DC.ActivePMs()
	k, ok := newKernelInto(&ks, ctx, DefaultFactors(), pms, []*cluster.VM{arrival})
	if !ok {
		t.Fatal("kernel did not compile")
	}
	if k.hostHead != nil {
		t.Fatal("unhosted-only kernel built a hosted index")
	}
}

// BenchmarkKernelSlabMatrixBuild pits the batched slab fill against the
// scalar kernel fill it replaced (same factored kernel, DisableSlab) on
// the full matrix build. cmd/benchreport records the same ratio in
// BENCH_core.json as the "slab" measurement.
func BenchmarkKernelSlabMatrixBuild(b *testing.B) {
	for _, slabOn := range []bool{true, false} {
		for _, pms := range benchSizes {
			b.Run(fmt.Sprintf("%s/pms%d", slabPath(slabOn), pms), func(b *testing.B) {
				ctx, vms := tableIIState(b, pms, 2*pms, 7)
				opts := MatrixOptions{DisableSlab: !slabOn}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := NewMatrixWith(ctx, DefaultFactors(), vms, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(pms*len(vms)), "cells")
			})
		}
	}
}

// BenchmarkKernelSlabRowFill isolates the row-fill hot loop itself — the
// code the slab layout targets — by repeatedly refilling rows of a
// prebuilt matrix, bypassing the tracker and heap maintenance that
// dominates a full build.
func BenchmarkKernelSlabRowFill(b *testing.B) {
	for _, slabOn := range []bool{true, false} {
		for _, pms := range benchSizes {
			b.Run(fmt.Sprintf("%s/pms%d", slabPath(slabOn), pms), func(b *testing.B) {
				ctx, vms := tableIIState(b, pms, 2*pms, 7)
				m, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{DisableSlab: !slabOn})
				if err != nil {
					b.Fatal(err)
				}
				if m.kern == nil {
					b.Fatal("kernel not engaged")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.fillRow(i % m.Rows())
				}
				b.ReportMetric(float64(len(vms)), "cells")
			})
		}
	}
}

// BenchmarkKernelSlabRound measures the incremental per-round path (two
// Applies, i.e. four row refills plus tracker maintenance) with and
// without the slab fill.
func BenchmarkKernelSlabRound(b *testing.B) {
	for _, slabOn := range []bool{true, false} {
		for _, pms := range benchSizes {
			b.Run(fmt.Sprintf("%s/pms%d", slabPath(slabOn), pms), func(b *testing.B) {
				ctx, vms := tableIIState(b, pms, 2*pms, 7)
				m, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{DisableSlab: !slabOn})
				if err != nil {
					b.Fatal(err)
				}
				r, c, _, ok := m.Best()
				if !ok {
					b.Fatal("no positive-gain move in the bench state")
				}
				origin := m.curRow[c]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := m.Apply(r, c); err != nil {
						b.Fatal(err)
					}
					if err := m.Apply(origin, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func slabPath(on bool) string {
	if on {
		return "slab"
	}
	return "scalar"
}
