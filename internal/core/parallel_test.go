package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// bigScenario places many VMs across the Table II fleet so the matrix
// exceeds the parallel-build threshold when lowered.
func bigScenario(t *testing.T) (*Context, []*cluster.VM) {
	t.Helper()
	dc := cluster.TableIIFleet()
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	var vms []*cluster.VM
	id := cluster.VMID(1)
	for _, p := range dc.PMs() {
		for k := 0; k < 3; k++ {
			vm := cluster.NewVM(id, vector.New(1, 0.5), 50000+float64(id%7)*1000, 50000, 0)
			if !p.CanHost(vm.Demand) {
				break
			}
			if err := p.Host(vm); err != nil {
				t.Fatal(err)
			}
			vm.State = cluster.VMRunning
			vms = append(vms, vm)
			id++
		}
	}
	return &Context{DC: dc, Now: 0}, vms
}

// TestParallelFillMatchesSerial forces both build paths over the same
// state and requires bit-identical matrices.
func TestParallelFillMatchesSerial(t *testing.T) {
	ctxA, vmsA := bigScenario(t)
	ctxB, vmsB := bigScenario(t)

	old := parallelBuildThreshold
	defer func() { parallelBuildThreshold = old }()

	parallelBuildThreshold = 1 << 30 // force serial
	serial, err := NewMatrix(ctxA, DefaultFactors(), vmsA)
	if err != nil {
		t.Fatal(err)
	}
	parallelBuildThreshold = 1 // force parallel
	parallel, err := NewMatrix(ctxB, DefaultFactors(), vmsB)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Rows() != parallel.Rows() || serial.Cols() != parallel.Cols() {
		t.Fatalf("dims differ: %dx%d vs %dx%d", serial.Rows(), serial.Cols(), parallel.Rows(), parallel.Cols())
	}
	for r := 0; r < serial.Rows(); r++ {
		for c := 0; c < serial.Cols(); c++ {
			if serial.P(r, c) != parallel.P(r, c) {
				t.Fatalf("p[%d][%d] differs: %g vs %g", r, c, serial.P(r, c), parallel.P(r, c))
			}
		}
	}
}

// TestParallelConsolidateDeterministic runs full consolidation with the
// parallel build forced on and checks it matches the serial run move for
// move (the build is a pure function; only its schedule changes).
func TestParallelConsolidateDeterministic(t *testing.T) {
	run := func(threshold int) []Move {
		old := parallelBuildThreshold
		parallelBuildThreshold = threshold
		defer func() { parallelBuildThreshold = old }()
		ctx, _ := bigScenario(t)
		moves, err := Consolidate(ctx, DefaultFactors(), DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return moves
	}
	serial := run(1 << 30)
	parallel := run(1)
	if len(serial) != len(parallel) {
		t.Fatalf("move counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
