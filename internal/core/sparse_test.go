package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vector"
)

// TestSparseMatrixMatchesDenseAfterRandomApplies is the sparse engine's
// incremental-drift property test: after every move in a randomized Apply
// sequence, the live SparseMatrix trackers must be bit-identical to a
// from-scratch dense Matrix over the mutated fleet, and the candidate
// index must survive its structural self check.
func TestSparseMatrixMatchesDenseAfterRandomApplies(t *testing.T) {
	for _, k := range []int{1, 64} {
		t.Run(map[int]string{1: "k1-overflowing", 64: "k64"}[k], func(t *testing.T) {
			ctx, vms := tableIIState(t, 100, 150, 23)
			sm, err := NewSparseMatrix(ctx, DefaultFactors(), vms, MatrixOptions{CandidateK: k})
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.verifyDense(); err != nil {
				t.Fatalf("fresh build: %v", err)
			}
			rng := stats.NewRand(42)
			applied := 0
			for step := 0; step < 40; step++ {
				// Random feasible move, enumerated off a dense oracle
				// build so move selection cannot depend on the code
				// under test.
				oracle, err := NewMatrix(ctx, DefaultFactors(), vms)
				if err != nil {
					t.Fatal(err)
				}
				c := rng.Intn(oracle.Cols())
				var rows []int
				for r := 0; r < oracle.Rows(); r++ {
					if r != oracle.curRow[c] && oracle.p[r][c] > 0 {
						rows = append(rows, r)
					}
				}
				oracle.Release()
				if len(rows) == 0 {
					continue
				}
				if err := sm.Apply(rows[rng.Intn(len(rows))], c); err != nil {
					t.Fatal(err)
				}
				applied++
				if err := sm.verifyDense(); err != nil {
					t.Fatalf("after move %d: %v", applied, err)
				}
			}
			if applied < 10 {
				t.Fatalf("only %d random moves applied; property barely exercised", applied)
			}
			if err := ctx.DC.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSparseConsolidateMatchesDense proves Algorithm 1 emits an identical
// move sequence (VM, endpoints, bit-identical gains, rounds) through the
// sparse candidate engine and the dense kernel, across several fleet
// seeds.
func TestSparseConsolidateMatchesDense(t *testing.T) {
	params := Params{MIGThreshold: 1.05, MIGRound: 50}
	anyMoves := false
	for _, seed := range []int64{3, 7, 11, 19, 23} {
		ctxDense, _ := tableIIState(t, 100, 260, seed)
		ctxSparse, _ := tableIIState(t, 100, 260, seed)

		dense, err := ConsolidateWith(ctxDense, DefaultFactors(), params, MatrixOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := ConsolidateWith(ctxSparse, DefaultFactors(), params, MatrixOptions{CandidateK: 64})
		if err != nil {
			t.Fatal(err)
		}
		if len(dense) != len(sparse) {
			t.Fatalf("seed %d: move counts differ: dense %d != sparse %d", seed, len(dense), len(sparse))
		}
		for i := range dense {
			if dense[i] != sparse[i] {
				t.Fatalf("seed %d move %d: dense %+v != sparse %+v", seed, i, dense[i], sparse[i])
			}
		}
		anyMoves = anyMoves || len(dense) > 0
		if err := ctxSparse.DC.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
	if !anyMoves {
		t.Fatal("no seed produced moves; the states are too easy to prove anything")
	}
}

// TestSparseConsolidateZeroCurrentProbability is the rescue-path
// equivalence check: a VM on a zero-reliability host has curProb == 0, so
// the sparse engine must emit the same +Inf-gain rescue move as dense.
func TestSparseConsolidateZeroCurrentProbability(t *testing.T) {
	dc := cluster.TableIIFleetScaled(4)
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	vm := cluster.NewVM(1, vector.New(1, 0.5), 36000, 36000, 0)
	host := dc.PM(0)
	if err := host.Host(vm); err != nil {
		t.Fatal(err)
	}
	vm.State = cluster.VMRunning
	host.Reliability = 0

	ctx := NewContext(dc).At(100)
	moves, err := ConsolidateWith(ctx, DefaultFactors(), DefaultParams(), MatrixOptions{CandidateK: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want exactly one rescue migration", moves)
	}
	mv := moves[0]
	if mv.VM != 1 || mv.From != 0 || mv.To == 0 {
		t.Errorf("move = %+v, want VM1 off PM0", mv)
	}
	if !math.IsInf(mv.Gain, 1) {
		t.Errorf("gain = %v, want +Inf (zero-probability current placement)", mv.Gain)
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestSparseArrivalMatchesDense checks BestPlacementWith: with CandidateK
// set, the candidate-index argmax must return the exact PM the dense scan
// picks, for unhosted arrivals and for hosted VMs (whose overhead rule
// differs), across shapes and fleet seeds.
func TestSparseArrivalMatchesDense(t *testing.T) {
	factors := DefaultFactors()
	shapes := []vector.V{
		vector.New(1, 0.25), vector.New(1, 1), vector.New(2, 1), vector.New(2, 4),
	}
	for _, seed := range []int64{5, 13, 29} {
		ctx, vms := tableIIState(t, 100, 200, seed)
		id := cluster.VMID(9000)
		for _, demand := range shapes {
			id++
			arrival := cluster.NewVM(id, demand, 5400, 5400, ctx.Now)
			dense := BestPlacement(ctx, factors, arrival)
			sparse := BestPlacementWith(ctx, factors, arrival, MatrixOptions{CandidateK: 64})
			if dense != sparse {
				t.Fatalf("seed %d shape %v: dense %v != sparse %v", seed, demand, pmID(dense), pmID(sparse))
			}
		}
		// A hosted VM pays creation + migration overhead on the target;
		// re-placing an existing running VM exercises that branch.
		hosted := vms[len(vms)/2]
		dense := BestPlacement(ctx, factors, hosted)
		sparse := BestPlacementWith(ctx, factors, hosted, MatrixOptions{CandidateK: 64})
		if dense != sparse {
			t.Fatalf("seed %d hosted VM %d: dense %v != sparse %v", seed, hosted.ID, pmID(dense), pmID(sparse))
		}
		// CandidateK == 0 must leave the dense path in charge.
		if got := BestPlacementWith(ctx, factors, hosted, MatrixOptions{}); got != dense {
			t.Fatalf("seed %d: CandidateK=0 diverged from BestPlacement", seed)
		}
	}
}

func pmID(pm *cluster.PM) any {
	if pm == nil {
		return "<nil>"
	}
	return pm.ID
}

// TestSparseShortlistProperty is the satellite property test: for random
// fleets and VM shapes the top-K shortlist is exactly the length-K prefix
// of the dense ranking (so in particular it always contains the dense
// argmax), and with K at least the feasible count it equals the full dense
// ranking — including immediately after randomized Apply sequences.
func TestSparseShortlistProperty(t *testing.T) {
	factors := DefaultFactors()
	for _, seed := range []int64{2, 9, 31} {
		ctx, vms := tableIIState(t, 60, 120, seed)
		rng := stats.NewRand(seed * 977)
		checkShortlists := func(stage string) {
			t.Helper()
			id := cluster.VMID(9500)
			for trial := 0; trial < 6; trial++ {
				id++
				demand := vector.New(float64(1+rng.Intn(2)), []float64{0.25, 0.5, 1, 2}[rng.Intn(4)])
				probe := cluster.NewVM(id, demand, float64(600+rng.Intn(86400)), 0, ctx.Now)
				ranked := RankPlacements(ctx, factors, probe)
				for _, k := range []int{1, 4, 16, 0} {
					got, ok := ArrivalShortlist(ctx, factors, probe, k)
					if !ok {
						t.Fatalf("%s: shortlist unavailable for the default factors", stage)
					}
					want := ranked
					if k > 0 && len(want) > k {
						want = want[:k]
					}
					if len(got) != len(want) {
						t.Fatalf("%s seed %d k=%d: shortlist has %d entries, dense prefix %d",
							stage, seed, k, len(got), len(want))
					}
					for i := range got {
						if got[i].PM != want[i].PM || got[i].Probability != want[i].Probability {
							t.Fatalf("%s seed %d k=%d entry %d: sparse (PM%d, %v) != dense (PM%d, %v)",
								stage, seed, k, i, got[i].PM.ID, got[i].Probability,
								want[i].PM.ID, want[i].Probability)
						}
					}
					if len(ranked) > 0 && k > 0 {
						if best := BestPlacement(ctx, factors, probe); got[0].PM != best {
							t.Fatalf("%s seed %d k=%d: shortlist head PM%d != dense argmax PM%d",
								stage, seed, k, got[0].PM.ID, best.ID)
						}
					}
				}
			}
		}
		checkShortlists("fresh")

		// Mutate the fleet through a random Apply sequence on the sparse
		// engine, then re-check: the index must have tracked every
		// membership change.
		sm, err := NewSparseMatrix(ctx, factors, vms, MatrixOptions{CandidateK: 64})
		if err != nil {
			t.Fatal(err)
		}
		applied := 0
		for step := 0; step < 25 && applied < 12; step++ {
			oracle, err := NewMatrix(ctx, factors, vms)
			if err != nil {
				t.Fatal(err)
			}
			c := rng.Intn(oracle.Cols())
			var rows []int
			for r := 0; r < oracle.Rows(); r++ {
				if r != oracle.curRow[c] && oracle.p[r][c] > 0 {
					rows = append(rows, r)
				}
			}
			oracle.Release()
			if len(rows) == 0 {
				continue
			}
			if err := sm.Apply(rows[rng.Intn(len(rows))], c); err != nil {
				t.Fatal(err)
			}
			applied++
		}
		if applied < 5 {
			t.Fatalf("only %d moves applied; post-Apply property barely exercised", applied)
		}
		checkShortlists("after-applies")
	}
}

// TestSparseNonCanonicalFallback pins the fallback contract: any factor
// program other than the canonical four must route through the dense
// engine even with CandidateK set, and produce its usual result.
func TestSparseNonCanonicalFallback(t *testing.T) {
	params := Params{MIGThreshold: 1.05, MIGRound: 50}
	factors := append(DefaultFactors(), offsetFactor{})
	ctxA, _ := tableIIState(t, 100, 260, 11)
	ctxB, _ := tableIIState(t, 100, 260, 11)
	plain, err := ConsolidateWith(ctxA, factors, params, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaK, err := ConsolidateWith(ctxB, factors, params, MatrixOptions{CandidateK: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(viaK) {
		t.Fatalf("move counts differ: %d != %d", len(plain), len(viaK))
	}
	for i := range plain {
		if plain[i] != viaK[i] {
			t.Fatalf("move %d: %+v != %+v", i, plain[i], viaK[i])
		}
	}
	if _, ok := ArrivalShortlist(ctxA, factors, cluster.NewVM(9999, vector.New(1, 1), 5400, 0, ctxA.Now), 8); ok {
		t.Fatal("ArrivalShortlist claimed coverage of a non-canonical factor program")
	}
}
