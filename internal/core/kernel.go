package core

import (
	"encoding/binary"
	"math"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// This file implements the factored evaluation kernel: a compiled form of
// the joint probability p_ij = p_res * p_vir * p_rel * p_eff that exploits
// the product structure of Eq. 1 instead of dispatching through the
// generic Factor interface per cell.
//
// The decomposition (see DESIGN.md §7):
//
//   - p_rel depends only on the row (pm.Reliability, a field read);
//   - the class constants behind p_vir and p_eff (W_j, U_j^MIN, eff_j,
//     T_cre + T_mig) depend only on the PM's class, of which a fleet has
//     very few (Table II has 2);
//   - p_vir for a non-host cell depends only on (column, class): the
//     remaining estimate T_re is fixed for the lifetime of a matrix (the
//     clock does not advance during a consolidation pass), so the M*N
//     evaluations collapse to an N*C memo;
//   - p_res and p_eff must read pm.Used live (migrations mutate it), but
//     within a row they depend on the VM only through its demand vector —
//     and real workloads request a handful of standard shapes, so both
//     collapse to a per-(row, demand-shape) memo computed once per row
//     visit (D shapes instead of N columns).
//
// Factors the kernel does not recognize (user-supplied extras) are
// composed on top through the Factor interface in their original
// position, so p_ij remains bit-identical to the generic path for any
// factor list: each known factor is replaced by the exact same arithmetic
// on bit-identical operands, and multiplication order is preserved.

// termOp identifies how one factor in the compiled program is evaluated.
type termOp int

const (
	opRes     termOp = iota // ResourceFactor: feasibility predicate
	opVir                   // VirtualizationFactor: per-(column, class) memo
	opRel                   // ReliabilityFactor: row field read
	opEff                   // EfficiencyFactor: class constants + live utilization
	opGeneric               // any other Factor, via the interface
)

// term is one position of the compiled factor program.
type term struct {
	op termOp
	f  Factor // only for opGeneric
}

// compileTerms translates a factor list into a term program, appending to
// dst (pass a reused slice truncated to zero for allocation-free
// recompiles). known reports whether at least one of the paper's factors
// was recognized; when none is, the kernel adds only overhead and callers
// should stay on the generic path.
func compileTerms(dst []term, factors []Factor) (terms []term, known bool) {
	terms = dst
	for _, f := range factors {
		switch f.(type) {
		case ResourceFactor:
			terms = append(terms, term{op: opRes})
		case VirtualizationFactor:
			terms = append(terms, term{op: opVir})
		case ReliabilityFactor:
			terms = append(terms, term{op: opRel})
		case EfficiencyFactor:
			terms = append(terms, term{op: opEff})
		default:
			terms = append(terms, term{op: opGeneric, f: f})
			continue
		}
		known = true
	}
	return terms, known
}

// kernel is a compiled evaluator bound to a fixed PM row set and VM column
// set. It is built once per Matrix (or once per arrival event) and caches
// everything that is row-, column-, or class-static.
type kernel struct {
	ctx   *Context
	terms []term

	// isDefault marks the common case — exactly the paper's four factors
	// in canonical order — which takes a straight-line row-fill path with
	// no term loop and per-demand-shape memoization.
	isDefault bool

	// infos holds the per-class constants, indexed by compact class
	// index; rowClass maps each row to its class index.
	infos    []*classInfo
	rowClass []int

	// vir memoizes the non-host virtualization penalty per column and
	// class. With C classes this is N*C evaluations of Eq. 3 instead of
	// N*M. It is stored class-major in a 64-byte-aligned slab — one
	// contiguous lane of virStride float64s per class (ncols rounded up
	// to a whole cache line), addressed vir[ci*virStride+c] — so the
	// batched row fill streams one aligned, contiguous lane per row
	// instead of striding through a column-major interleave.
	vir       []float64
	virStride int
	ncols     int

	// noSlab forces the scalar cell-at-a-time row fill; set through
	// MatrixOptions.DisableSlab so benchmarks and differential tests can
	// pit the batched path against its scalar ancestor.
	noSlab bool

	// hostHead/hostNext/hostPrev index the hosted cells per row (built
	// only for the default program): hostHead[r] heads a doubly-linked,
	// -1-terminated list of the columns row r currently hosts, threaded
	// through hostNext/hostPrev by column. Kept in step with migrations
	// by moveHosted. Nil when no column is hosted (arrival kernels).
	hostHead []int32
	hostNext []int32
	hostPrev []int32

	// demands holds the distinct demand vectors across the columns and
	// demIdx maps each column to its shape. Real traces request few
	// shapes (the Table II workload has 8), so per-row feasibility and
	// efficiency collapse from N to D evaluations.
	demands []vector.V
	demIdx  []int
}

// newKernel compiles factors over the given rows and columns into fresh
// storage. ok is false when no known factor is present (pure user-factor
// matrices), in which case the caller should evaluate generically.
func newKernel(ctx *Context, factors []Factor, pms []*cluster.PM, vms []*cluster.VM) (*kernel, bool) {
	return newKernelInto(&kernScratch{}, ctx, factors, pms, vms)
}

// newKernelInto is newKernel building into reusable scratch storage: the
// returned kernel is ks.kern with every slice and map drawn from ks, so a
// caller that compiles a kernel per event (the arrival path) or per
// control period (matrix builds) allocates nothing once the scratch has
// grown to the working size. The kernel aliases ks and is valid only
// until the next newKernelInto over the same scratch.
func newKernelInto(ks *kernScratch, ctx *Context, factors []Factor, pms []*cluster.PM, vms []*cluster.VM) (*kernel, bool) {
	terms, known := compileTerms(ks.terms[:0], factors)
	ks.terms = terms
	if !known {
		return nil, false
	}
	k := &ks.kern
	*k = kernel{ctx: ctx, terms: terms}
	k.isDefault = len(terms) == 4 &&
		terms[0].op == opRes && terms[1].op == opVir &&
		terms[2].op == opRel && terms[3].op == opEff

	if ks.classIdx == nil {
		ks.classIdx = make(map[*cluster.PMClass]int, 4)
	} else {
		clear(ks.classIdx)
	}
	k.rowClass = growInts(ks.rowClass, len(pms))
	ks.rowClass = k.rowClass
	k.infos = ks.infos[:0]
	for r, pm := range pms {
		ci, seen := ks.classIdx[pm.Class]
		if !seen {
			ci = len(k.infos)
			ks.classIdx[pm.Class] = ci
			k.infos = append(k.infos, ctx.classInfoFor(pm))
		}
		k.rowClass[r] = ci
	}
	ks.infos = k.infos

	nc := len(k.infos)
	k.ncols = len(vms)
	k.virStride = alignUp(len(vms))
	ks.vir, k.vir = alignedFloats(ks.vir, nc*k.virStride)
	for c, vm := range vms {
		tre := vm.RemainingEstimate(ctx.Now)
		for ci := range k.infos {
			overhead := k.infos[ci].overhead
			if vm.Host == cluster.NoPM {
				// Initial placement pays creation only (Eq. 3) —
				// there is nothing to transfer yet.
				overhead = classCreationTime(pms, k.rowClass, ci)
			}
			k.vir[ci*k.virStride+c] = virProbability(tre, overhead)
		}
	}

	if k.isDefault {
		k.internDemands(ks, vms)
		k.buildHostIndex(ks, pms, vms)
	}
	return k, true
}

// internDemands assigns each column a compact demand-shape index, keyed on
// the exact bit patterns of the demand vector so memoized p_res/p_eff
// values are bit-identical to a per-cell evaluation.
func (k *kernel) internDemands(ks *kernScratch, vms []*cluster.VM) {
	k.demIdx = growInts(ks.demIdx, len(vms))
	ks.demIdx = k.demIdx
	if ks.shapes == nil {
		ks.shapes = make(map[string]int, 16)
	} else {
		clear(ks.shapes)
	}
	k.demands = ks.demands[:0]
	key := ks.key
	for c, vm := range vms {
		key = key[:0]
		for _, x := range vm.Demand {
			key = binary.LittleEndian.AppendUint64(key, math.Float64bits(x))
		}
		di, seen := ks.shapes[string(key)]
		if !seen {
			di = len(k.demands)
			ks.shapes[string(key)] = di
			k.demands = append(k.demands, vm.Demand)
		}
		k.demIdx[c] = di
	}
	ks.key = key
	ks.demands = k.demands
}

// classCreationTime returns the CreationTime of the class at compact index
// ci by finding one of its rows. The fleet's class count is tiny, so the
// scan is negligible and only runs for unhosted (arrival) columns.
func classCreationTime(pms []*cluster.PM, rowClass []int, ci int) float64 {
	for r, c := range rowClass {
		if c == ci {
			return pms[r].Class.CreationTime
		}
	}
	return 0
}

// fillRow evaluates every cell of row r into out. For the canonical
// factor program it takes the batched slab path (fillRowSlab) — or, when
// slabs are disabled, the scalar per-cell-branch path — and otherwise
// falls back to per-cell evaluation through the term program. rs supplies
// the memo and slab buffers — callers reuse one per goroutine, so the
// per-row fill allocates nothing. All three paths are bit-identical.
func (k *kernel) fillRow(r int, pm *cluster.PM, vms []*cluster.VM, out []float64, rs *rowScratch) {
	if !k.isDefault {
		for c, vm := range vms {
			out[c] = k.cell(r, c, pm, vm, vm.Host == pm.ID)
		}
		return
	}
	if !k.noSlab {
		k.fillRowSlab(r, pm, vms, out, rs)
		return
	}
	k.fillRowScalar(r, pm, vms, out, rs)
}

// fillRowScalar is the cell-at-a-time default-program row fill the slab
// path replaced: per-demand-shape memos, then a column loop with
// feasibility and zero short-circuit branches. Kept as the DisableSlab
// reference so differential tests and benchmarks can compare the batched
// path against it directly.
func (k *kernel) fillRowScalar(r int, pm *cluster.PM, vms []*cluster.VM, out []float64, rs *rowScratch) {
	ci := k.rowClass[r]
	info := k.infos[ci]
	rel := pm.Reliability

	// Per-demand-shape memo for this row: p_res (feasibility) and the
	// non-host p_eff. Identical inputs to the per-cell path (the interned
	// shape aliases a column's exact demand vector), so identical bits.
	feas, eff := rs.buffers(len(k.demands))
	for di, demand := range k.demands {
		if pm.CanHost(demand) {
			feas[di] = true
			eff[di] = effProbability(info, prospectiveUtilization(pm, demand))
		}
	}
	effHosted := -1.0 // lazily computed; the PM's utilization already includes its VMs

	for c, vm := range vms {
		if vm.Host == pm.ID {
			if effHosted < 0 {
				effHosted = effProbability(info, pm.Utilization())
			}
			if rel == 0 {
				out[c] = 0
				continue
			}
			out[c] = rel * effHosted
			continue
		}
		if !feas[k.demIdx[c]] {
			out[c] = 0
			continue
		}
		p := k.vir[ci*k.virStride+c]
		if p == 0 {
			out[c] = 0
			continue
		}
		p *= rel
		if p == 0 {
			out[c] = 0
			continue
		}
		out[c] = p * eff[k.demIdx[c]]
	}
}

// cell evaluates p_ij for (pm at row r, vm at column c). hosted reports
// whether pm currently hosts vm, exactly as in Joint.
func (k *kernel) cell(r, c int, pm *cluster.PM, vm *cluster.VM, hosted bool) float64 {
	ci := k.rowClass[r]
	if k.isDefault {
		return k.cellDefault(ci, c, pm, vm, hosted)
	}
	p := 1.0
	for _, t := range k.terms {
		var q float64
		switch t.op {
		case opRes:
			if !hosted && !pm.CanHost(vm.Demand) {
				return 0
			}
			continue // q = 1, multiplication is the identity
		case opVir:
			if hosted {
				continue
			}
			q = k.vir[ci*k.virStride+c]
		case opRel:
			q = pm.Reliability
		case opEff:
			info := k.infos[ci]
			if hosted {
				q = effProbability(info, pm.Utilization())
			} else {
				q = effProbability(info, prospectiveUtilization(pm, vm.Demand))
			}
		default:
			q = t.f.Probability(k.ctx, vm, pm, hosted)
		}
		p *= q
		if p == 0 {
			return 0
		}
	}
	return p
}

// cellDefault is the straight-line path for the canonical factor order
// (res, vir, rel, eff). The multiplication order matches Joint exactly:
// ((p_res * p_vir) * p_rel) * p_eff, with 1-valued terms elided (IEEE 754
// multiplication by 1.0 is the identity), so results are bit-identical.
func (k *kernel) cellDefault(ci, c int, pm *cluster.PM, vm *cluster.VM, hosted bool) float64 {
	info := k.infos[ci]
	if hosted {
		p := pm.Reliability
		if p == 0 {
			return 0
		}
		return p * effProbability(info, pm.Utilization())
	}
	if !pm.CanHost(vm.Demand) {
		return 0
	}
	p := k.vir[ci*k.virStride+c]
	if p == 0 {
		return 0
	}
	p *= pm.Reliability
	if p == 0 {
		return 0
	}
	return p * effProbability(info, prospectiveUtilization(pm, vm.Demand))
}
