package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// tableFactor replays a fixed probability table, mirroring the paper's
// worked example where the matrix values are given rather than derived.
type tableFactor struct {
	p map[[2]int]float64 // [pmID, vmID] -> probability
}

func (tableFactor) Name() string { return "table" }

func (t tableFactor) Probability(_ *Context, vm *cluster.VM, pm *cluster.PM, _ bool) float64 {
	return t.p[[2]int{int(pm.ID), int(vm.ID)}]
}

// paperExample builds the worked example of Section III.C: 5 VMs on 3 PMs,
// VM1 on PM2, VM2 on PM1, VM3 on PM1, VM4 on PM3, VM5 on PM3. The paper's
// figure gives the probability of VM1's current placement as 0.8 and shows
// the largest normalized value is 1.28, migrating VM2 to PM2. We encode a
// table consistent with those published anchors.
func paperExample() (*Context, []Factor, []*cluster.VM) {
	big := &cluster.PMClass{
		Name:        "big",
		Capacity:    vector.New(100, 100),
		ActivePower: 100, IdlePower: 50,
		Reliability: 1,
	}
	dc := cluster.MustNew(cluster.Config{
		RMin:   vector.New(1, 1),
		Groups: []cluster.Group{{Class: big, Count: 4}}, // PM0 unused; PMs 1-3 mirror the paper
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	hosts := map[int]int{1: 2, 2: 1, 3: 1, 4: 3, 5: 3}
	vms := make([]*cluster.VM, 0, 5)
	for id := 1; id <= 5; id++ {
		vm := cluster.NewVM(cluster.VMID(id), vector.New(1, 1), 1000, 1000, 0)
		if err := dc.PM(cluster.PMID(hosts[id])).Host(vm); err != nil {
			panic(err)
		}
		vm.State = cluster.VMRunning
		vms = append(vms, vm)
	}
	table := tableFactor{p: map[[2]int]float64{
		// Columns: VM1 (cur PM2, 0.8), VM2 (cur PM1, 0.5), VM3 (cur
		// PM1, 0.6), VM4 (cur PM3, 0.7), VM5 (cur PM3, 0.9).
		{1, 1}: 0.40, {2, 1}: 0.80, {3, 1}: 0.56,
		{1, 2}: 0.50, {2, 2}: 0.64, {3, 2}: 0.30, // 0.64/0.5 = 1.28 max
		{1, 3}: 0.60, {2, 3}: 0.54, {3, 3}: 0.42,
		{1, 4}: 0.49, {2, 4}: 0.63, {3, 4}: 0.70, // 0.63/0.7 = 0.9
		{1, 5}: 0.45, {2, 5}: 0.72, {3, 5}: 0.90, // 0.72/0.9 = 0.8
		// PM0 (not in the paper) is made uniformly unattractive.
		{0, 1}: 0.01, {0, 2}: 0.01, {0, 3}: 0.01, {0, 4}: 0.01, {0, 5}: 0.01,
	}}
	return &Context{DC: dc, Now: 0}, []Factor{table}, vms
}

func TestMatrixCurrentHostNormalizedToOne(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	for c, vm := range m.vms {
		r := m.rowOf[vm.Host]
		if got := m.Normalized(r, c); got != 1 {
			t.Errorf("VM %d current-host normalized = %g, want 1", vm.ID, got)
		}
	}
}

func TestMatrixPaperExampleFirstMove(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	r, c, gain, ok := m.Best()
	if !ok {
		t.Fatal("no best move found")
	}
	if m.vms[c].ID != 2 || m.pms[r].ID != 2 {
		t.Fatalf("best move = VM%d -> PM%d, want VM2 -> PM2", m.vms[c].ID, m.pms[r].ID)
	}
	if math.Abs(gain-1.28) > 1e-12 {
		t.Errorf("gain = %g, want 1.28 (paper's worked example)", gain)
	}
}

func TestMatrixApplyMovesVMAndRefreshes(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	r, c, _, _ := m.Best()
	vm := m.vms[c]
	if err := m.Apply(r, c); err != nil {
		t.Fatal(err)
	}
	if vm.Host != 2 {
		t.Errorf("VM2 host = %d, want PM2", vm.Host)
	}
	if vm.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", vm.Migrations)
	}
	// Column 2's normalizer is now 0.64; moving back to PM1 would gain
	// 0.5/0.64 < 1, so VM2 must not be the best column anymore.
	if _, c2, gain2, ok := m.Best(); ok {
		if m.vms[c2].ID == 2 {
			t.Errorf("VM2 re-selected with gain %g after moving", gain2)
		}
	}
	if err := ctx.DC.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestMatrixTrackersMatchFullRescan(t *testing.T) {
	// After several Apply calls, incremental trackers must agree with a
	// brute-force scan of the matrix.
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		r, c, _, ok := m.Best()
		if !ok {
			break
		}
		if err := m.Apply(r, c); err != nil {
			t.Fatal(err)
		}
		for col := range m.vms {
			wantRow, wantGain := -1, 0.0
			cur := m.rowOf[m.vms[col].Host]
			for row := range m.pms {
				if row == cur {
					continue
				}
				if g := m.Normalized(row, col); g > wantGain {
					wantGain, wantRow = g, row
				}
			}
			if m.bestRow[col] != wantRow || math.Abs(m.bestGain[col]-wantGain) > 1e-12 {
				t.Fatalf("step %d col %d tracker (%d, %g) != rescan (%d, %g)",
					i, col, m.bestRow[col], m.bestGain[col], wantRow, wantGain)
			}
			if m.curRow[col] != cur {
				t.Fatalf("step %d col %d curRow stale", i, col)
			}
		}
	}
}

func TestMatrixZeroCurrentProbability(t *testing.T) {
	ctx, _, vms := paperExample()
	// A factor that scores the current placement 0 but an alternative
	// positively must yield +Inf gain.
	f := tableFactor{p: map[[2]int]float64{
		{1, 1}: 0.5, {2, 1}: 0, {3, 1}: 0, {0, 1}: 0,
	}}
	m, err := NewMatrix(ctx, []Factor{f}, vms[:1]) // VM1 hosted on PM2
	if err != nil {
		t.Fatal(err)
	}
	r, c, gain, ok := m.Best()
	if !ok || !math.IsInf(gain, 1) {
		t.Fatalf("gain = %v (ok=%v), want +Inf", gain, ok)
	}
	if m.pms[r].ID != 1 || m.vms[c].ID != 1 {
		t.Errorf("best = VM%d -> PM%d, want VM1 -> PM1", m.vms[c].ID, m.pms[r].ID)
	}
}

func TestMatrixErrors(t *testing.T) {
	ctx, factors, vms := paperExample()
	if _, err := NewMatrix(nil, factors, vms); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := NewMatrix(ctx, nil, vms); err == nil {
		t.Error("no factors accepted")
	}
	if _, err := NewMatrix(ctx, factors, append(vms[:1], vms[0])); err == nil {
		t.Error("duplicate VM accepted")
	}
	orphan := cluster.NewVM(99, vector.New(1, 1), 10, 10, 0)
	if _, err := NewMatrix(ctx, factors, []*cluster.VM{orphan}); err == nil {
		t.Error("unhosted VM accepted")
	}
}

func TestMatrixDimensions(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 4 || m.Cols() != 5 {
		t.Errorf("dims = %dx%d, want 4x5", m.Rows(), m.Cols())
	}
	if m.P(0, 0) != 0.01 {
		t.Errorf("P(0,0) = %g", m.P(0, 0))
	}
}

func TestMatrixString(t *testing.T) {
	ctx, factors, vms := paperExample()
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if !strings.Contains(s, "PM1") || !strings.Contains(s, "VM5") {
		t.Errorf("String missing labels:\n%s", s)
	}
	if !strings.Contains(s, "1.2800") {
		t.Errorf("String missing the 1.28 gain:\n%s", s)
	}
}
