package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vector"
)

// Equivalence battery for MatrixOptions.Workers: every kernel the knob
// parallelizes must produce bit-identical results at any worker count —
// fresh builds, incremental trackers after randomized Apply sequences,
// consolidation move streams, and candidate shortlists. Workers 2 and 7
// exercise even and odd span splits (7 leaves a ragged tail span); the
// serial reference is an explicit Workers: 1.

// workerCounts are the parallel settings every equivalence test compares
// against the Workers: 1 reference.
var workerCounts = []int{2, 7}

// TestKernelWorkersDenseEquivalence builds the dense matrix serially and
// at each parallel worker count over identical fleets, requires Diff to
// pass (probabilities, trackers, Best), then drives both through the same
// randomized Apply sequence re-checking after every move.
func TestKernelWorkersDenseEquivalence(t *testing.T) {
	for _, w := range workerCounts {
		t.Run(fmt.Sprintf("workers%d", w), func(t *testing.T) {
			ctxS, vmsS := tableIIState(t, 120, 300, 11)
			ctxP, vmsP := tableIIState(t, 120, 300, 11)
			serial, err := NewMatrixWith(ctxS, DefaultFactors(), vmsS, MatrixOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewMatrixWith(ctxP, DefaultFactors(), vmsP, MatrixOptions{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if err := serial.Diff(par); err != nil {
				t.Fatalf("fresh build with %d workers diverges: %v", w, err)
			}
			rng := stats.NewRand(int64(100 + w))
			applied := 0
			for step := 0; step < 30; step++ {
				c := rng.Intn(serial.Cols())
				var rows []int
				for r := 0; r < serial.Rows(); r++ {
					if r != serial.curRow[c] && serial.p[r][c] > 0 {
						rows = append(rows, r)
					}
				}
				if len(rows) == 0 {
					continue
				}
				r := rows[rng.Intn(len(rows))]
				if err := serial.Apply(r, c); err != nil {
					t.Fatal(err)
				}
				if err := par.Apply(r, c); err != nil {
					t.Fatal(err)
				}
				applied++
				if err := serial.Diff(par); err != nil {
					t.Fatalf("after move %d: %v", applied, err)
				}
			}
			if applied < 10 {
				t.Fatalf("only %d random moves applied; property barely exercised", applied)
			}
		})
	}
}

// TestKernelWorkersSparseEquivalence is the sparse-engine counterpart:
// candidate-index sync, initial column sync, Best argmax, and shortlists
// must match the serial engine bit for bit at every worker count, before
// and after a randomized Apply sequence.
func TestKernelWorkersSparseEquivalence(t *testing.T) {
	for _, w := range workerCounts {
		t.Run(fmt.Sprintf("workers%d", w), func(t *testing.T) {
			ctxS, vmsS := tableIIState(t, 100, 200, 31)
			ctxP, vmsP := tableIIState(t, 100, 200, 31)
			serial, err := NewSparseMatrix(ctxS, DefaultFactors(), vmsS, MatrixOptions{CandidateK: 16, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewSparseMatrix(ctxP, DefaultFactors(), vmsP, MatrixOptions{CandidateK: 16, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			checkShortlists := func(stage string) {
				t.Helper()
				for c := 0; c < serial.Cols(); c += 13 {
					a, b := serial.ColumnShortlist(c, 8), par.ColumnShortlist(c, 8)
					if len(a) != len(b) {
						t.Fatalf("%s: column %d shortlist lengths %d vs %d", stage, c, len(a), len(b))
					}
					for i := range a {
						if a[i].PM.ID != b[i].PM.ID || a[i].Probability != b[i].Probability {
							t.Fatalf("%s: column %d shortlist[%d]: (PM %d, %g) vs (PM %d, %g)",
								stage, c, i, a[i].PM.ID, a[i].Probability, b[i].PM.ID, b[i].Probability)
						}
					}
				}
			}
			if err := serial.DiffSparse(par); err != nil {
				t.Fatalf("fresh build with %d workers diverges: %v", w, err)
			}
			checkShortlists("fresh build")
			rng := stats.NewRand(int64(200 + w))
			applied := 0
			for step := 0; step < 25; step++ {
				// Random feasible move enumerated off a dense build over
				// the serial fixture, so move selection cannot depend on
				// the code under test.
				oracle, err := NewMatrix(ctxS, DefaultFactors(), vmsS)
				if err != nil {
					t.Fatal(err)
				}
				c := rng.Intn(oracle.Cols())
				var rows []int
				for r := 0; r < oracle.Rows(); r++ {
					if r != oracle.curRow[c] && oracle.p[r][c] > 0 {
						rows = append(rows, r)
					}
				}
				oracle.Release()
				if len(rows) == 0 {
					continue
				}
				r := rows[rng.Intn(len(rows))]
				if err := serial.Apply(r, c); err != nil {
					t.Fatal(err)
				}
				if err := par.Apply(r, c); err != nil {
					t.Fatal(err)
				}
				applied++
				if err := serial.DiffSparse(par); err != nil {
					t.Fatalf("after move %d: %v", applied, err)
				}
			}
			if applied < 8 {
				t.Fatalf("only %d random moves applied; property barely exercised", applied)
			}
			checkShortlists("after applies")
			if err := par.SelfCheck(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelWorkersConsolidateEquivalence runs full Algorithm 1 passes —
// dense and sparse — at every worker count and requires the move streams
// (VM, endpoints, bit-identical gains, rounds) to match the serial run.
func TestKernelWorkersConsolidateEquivalence(t *testing.T) {
	params := Params{MIGThreshold: 1.05, MIGRound: 50}
	for _, k := range []int{0, 16} {
		engine := map[int]string{0: "dense", 16: "sparse"}[k]
		anyMoves := false
		for _, seed := range []int64{3, 7, 11, 19, 23} {
			ctxRef, _ := tableIIState(t, 100, 260, seed)
			ref, err := ConsolidateWith(ctxRef, DefaultFactors(), params, MatrixOptions{CandidateK: k, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			anyMoves = anyMoves || len(ref) > 0
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/seed%d/workers%d", engine, seed, w), func(t *testing.T) {
					ctx, _ := tableIIState(t, 100, 260, seed)
					moves, err := ConsolidateWith(ctx, DefaultFactors(), params, MatrixOptions{CandidateK: k, Workers: w})
					if err != nil {
						t.Fatal(err)
					}
					if len(moves) != len(ref) {
						t.Fatalf("move counts differ: %d vs serial %d", len(moves), len(ref))
					}
					for i := range ref {
						if moves[i] != ref[i] {
							t.Fatalf("move %d: %+v vs serial %+v", i, moves[i], ref[i])
						}
					}
				})
			}
		}
		if !anyMoves {
			t.Fatalf("%s: no seed produced moves; the states are too easy to prove anything", engine)
		}
	}
}

// TestKernelWorkersArrivalEquivalence pins the sparse arrival path (which
// syncs the candidate index under the workers setting) to the serial
// decision for a spread of arrival demands.
func TestKernelWorkersArrivalEquivalence(t *testing.T) {
	ctx, _ := tableIIState(t, 100, 200, 43)
	demands := []vector.V{vector.New(1, 0.5), vector.New(2, 1), vector.New(1, 2)}
	for _, w := range workerCounts {
		for di, d := range demands {
			arrival := cluster.NewVM(cluster.VMID(1<<20), d, 5400, 5400, ctx.Now)
			want := BestPlacementWith(ctx, DefaultFactors(), arrival, MatrixOptions{CandidateK: 16, Workers: 1})
			got := BestPlacementWith(ctx, DefaultFactors(), arrival, MatrixOptions{CandidateK: 16, Workers: w})
			switch {
			case (want == nil) != (got == nil):
				t.Fatalf("demand %d workers %d: nil mismatch (%v vs %v)", di, w, got, want)
			case want != nil && want.ID != got.ID:
				t.Fatalf("demand %d workers %d: placed on PM %d, serial picked %d", di, w, got.ID, want.ID)
			}
		}
	}
}

// TestKernelWorkersSerialAllocBudget pins Workers: 1 to the hot paths'
// existing allocation budgets: forcing the serial path must not cost a
// single extra allocation over the default configuration the main alloc
// tests measure.
func TestKernelWorkersSerialAllocBudget(t *testing.T) {
	ctx, _ := tableIIState(t, 200, 400, 7)
	factors := DefaultFactors()
	params := DefaultParams()
	opts := MatrixOptions{Workers: 1}
	arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)

	for i := 0; i < 3; i++ {
		if BestPlacementWith(ctx, factors, arrival, opts) == nil {
			t.Fatal("no placement found")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		BestPlacementWith(ctx, factors, arrival, opts)
	})
	if avg > arrivalAllocCeiling {
		t.Fatalf("BestPlacementWith(Workers: 1) allocates %.2f allocs/op on a warm context, budget %d",
			avg, arrivalAllocCeiling)
	}

	if _, err := ConsolidateWith(ctx, factors, params, opts); err != nil {
		t.Fatal(err)
	}
	nVMs := len(ctx.vmBuf)
	if nVMs == 0 {
		t.Fatal("bench state has no running VMs")
	}
	avg = testing.AllocsPerRun(50, func() {
		if _, err := ConsolidateWith(ctx, factors, params, opts); err != nil {
			t.Fatal(err)
		}
	})
	if perVM := avg / float64(nVMs); perVM > consolidateAllocsPerVM {
		t.Fatalf("ConsolidateWith(Workers: 1) allocates %.1f allocs/op (%.3f per VM column, budget %.2f)",
			avg, perVM, consolidateAllocsPerVM)
	}
}

// TestWorkerBudgetAccounting exercises the token pool's borrow/return
// arithmetic directly: the pool must never hand out more than its
// capacity, and returns must restore it exactly.
func TestWorkerBudgetAccounting(t *testing.T) {
	capacity := BorrowWorkers(1 << 20) // drain whatever is free
	ReturnWorkers(capacity)
	got := BorrowWorkers(capacity)
	if got != capacity {
		ReturnWorkers(got)
		t.Fatalf("borrowed %d of %d free tokens", got, capacity)
	}
	if extra := BorrowWorkers(1); extra != 0 {
		ReturnWorkers(got + extra)
		t.Fatalf("empty budget still lent %d token(s)", extra)
	}
	ReturnWorkers(got)
	if again := BorrowWorkers(capacity); again != capacity {
		ReturnWorkers(again)
		t.Fatalf("budget not restored: borrowed %d of %d after return", again, capacity)
	}
	ReturnWorkers(capacity)
}

// BenchmarkKernelParallelBuild measures the full matrix build (dense and
// sparse) across worker counts. Parallel results are asserted identical
// to the serial build before timing — a benchmark that silently raced
// would be worse than no benchmark.
func BenchmarkKernelParallelBuild(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dense/workers%d", w), func(b *testing.B) {
			ctx, vms := tableIIState(b, 1000, 2000, 7)
			opts := MatrixOptions{Workers: w}
			if w > 1 {
				ref, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				m, err := NewMatrixWith(ctx, DefaultFactors(), vms, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := ref.Diff(m); err != nil {
					b.Fatalf("parallel build diverges: %v", err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewMatrixWith(ctx, DefaultFactors(), vms, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse/workers%d", w), func(b *testing.B) {
			ctx, vms := tableIIState(b, 1000, 2000, 7)
			opts := MatrixOptions{CandidateK: 64, Workers: w}
			if w > 1 {
				ref, err := NewSparseMatrix(ctx, DefaultFactors(), vms, MatrixOptions{CandidateK: 64, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				sm, err := NewSparseMatrix(ctx, DefaultFactors(), vms, opts)
				if err != nil {
					b.Fatal(err)
				}
				if err := ref.DiffSparse(sm); err != nil {
					b.Fatalf("parallel build diverges: %v", err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewSparseMatrix(ctx, DefaultFactors(), vms, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelParallelRound measures a full consolidation pass across
// worker counts (build + Algorithm 1 rounds), the in-run unit the
// -kernel-workers flag actually scales.
func BenchmarkKernelParallelRound(b *testing.B) {
	params := DefaultParams()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			ctx, _ := tableIIState(b, 1000, 2000, 7)
			opts := MatrixOptions{Workers: w}
			// Settle the state: execute any profitable moves once so the
			// timed passes are steady-state evaluation.
			if _, err := ConsolidateWith(ctx, DefaultFactors(), params, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ConsolidateWith(ctx, DefaultFactors(), params, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
