// Package oracle freezes the pre-kernel probability-matrix implementation
// as an executable reference for differential checking. Every cell is
// evaluated through the generic Factor interface, per-column tracker
// refreshes pay a division per row, and Best is a linear scan over all
// columns — exactly the code that shipped before the factored kernel
// (PR 1), promoted from cmd/benchreport so the audit subsystem and the
// metamorphic tests can import it.
//
// The point of this package is to stay naive. Its simplicity is the
// argument for its correctness: no memoization, no incremental tracker
// surgery, no heap. When internal/core's kernel and this oracle disagree
// on a single bit, the optimized path is presumed wrong. Do not "improve"
// this code; any change must be justified as a semantics fix and mirrored
// by the equivalence tests in internal/audit.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Matrix is the naive M x N probability matrix: rows are active PMs, in ID
// order, columns the given VMs, in ID order.
type Matrix struct {
	ctx     *core.Context
	factors []core.Factor

	pms []*cluster.PM
	vms []*cluster.VM

	rowOf map[cluster.PMID]int

	p [][]float64

	curRow  []int
	curProb []float64

	bestRow  []int
	bestGain []float64
}

// NewMatrix builds the reference matrix over the data center's active PMs
// and the given VMs. Like core.NewMatrix it requires every VM to be hosted
// on an active PM.
func NewMatrix(ctx *core.Context, factors []core.Factor, vms []*cluster.VM) (*Matrix, error) {
	if ctx == nil || ctx.DC == nil {
		return nil, fmt.Errorf("oracle: matrix needs a context with a datacenter")
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("oracle: matrix needs at least one factor")
	}
	m := &Matrix{
		ctx:     ctx,
		factors: factors,
		pms:     ctx.DC.ActivePMs(),
		rowOf:   make(map[cluster.PMID]int),
	}
	sort.Slice(m.pms, func(i, j int) bool { return m.pms[i].ID < m.pms[j].ID })
	for r, pm := range m.pms {
		m.rowOf[pm.ID] = r
	}
	m.vms = append(m.vms, vms...)
	sort.Slice(m.vms, func(i, j int) bool { return m.vms[i].ID < m.vms[j].ID })
	for _, vm := range m.vms {
		if _, ok := m.rowOf[vm.Host]; !ok {
			return nil, fmt.Errorf("oracle: VM %d hosted on inactive PM %d", vm.ID, vm.Host)
		}
	}

	m.p = make([][]float64, len(m.pms))
	for r := range m.p {
		m.p[r] = make([]float64, len(m.vms))
	}
	m.curRow = make([]int, len(m.vms))
	m.curProb = make([]float64, len(m.vms))
	m.bestRow = make([]int, len(m.vms))
	m.bestGain = make([]float64, len(m.vms))

	for r, pm := range m.pms {
		for c, vm := range m.vms {
			m.p[r][c] = core.Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
		}
	}
	for c := range m.vms {
		m.refreshColumn(c)
	}
	return m, nil
}

// Rows returns the number of PM rows.
func (m *Matrix) Rows() int { return len(m.pms) }

// Cols returns the number of VM columns.
func (m *Matrix) Cols() int { return len(m.vms) }

// P returns the joint probability for (pm row r, vm column c).
func (m *Matrix) P(r, c int) float64 { return m.p[r][c] }

// PM returns the physical machine at row r.
func (m *Matrix) PM(r int) *cluster.PM { return m.pms[r] }

// VM returns the virtual machine at column c.
func (m *Matrix) VM(c int) *cluster.VM { return m.vms[c] }

// CurRow returns the row index of column c's current host.
func (m *Matrix) CurRow(c int) int { return m.curRow[c] }

// CurProb returns the column normalizer: the joint probability of column
// c's current placement.
func (m *Matrix) CurProb(c int) float64 { return m.curProb[c] }

// BestAlt returns the tracked best non-host row of column c and its
// normalized gain, or (-1, 0) when no alternative has positive gain.
func (m *Matrix) BestAlt(c int) (row int, gain float64) {
	return m.bestRow[c], m.bestGain[c]
}

func (m *Matrix) normalize(p, cur float64) float64 {
	if cur <= 0 {
		if p > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return p / cur
}

func (m *Matrix) refreshColumn(c int) {
	vm := m.vms[c]
	cr := m.rowOf[vm.Host]
	m.curRow[c] = cr
	m.curProb[c] = m.p[cr][c]

	bestRow, bestGain := -1, 0.0
	for r := range m.pms {
		if r == cr {
			continue
		}
		if g := m.normalize(m.p[r][c], m.curProb[c]); g > bestGain {
			bestGain, bestRow = g, r
		}
	}
	m.bestRow[c] = bestRow
	m.bestGain[c] = bestGain
}

// RecomputeRow re-evaluates row r and repairs the per-column trackers, the
// way the pre-kernel implementation did.
func (m *Matrix) RecomputeRow(r int) {
	pm := m.pms[r]
	for c, vm := range m.vms {
		m.p[r][c] = core.Joint(m.ctx, m.factors, vm, pm, vm.Host == pm.ID)
	}
	for c := range m.vms {
		switch {
		case m.curRow[c] == r || m.rowOf[m.vms[c].Host] != m.curRow[c]:
			m.refreshColumn(c)
		case m.bestRow[c] == r:
			m.refreshColumn(c)
		default:
			if g := m.normalize(m.p[r][c], m.curProb[c]); g > m.bestGain[c] {
				m.bestGain[c] = g
				m.bestRow[c] = r
			}
		}
	}
}

// Best returns the globally maximal normalized gain and its (row, col) by
// linear scan, or ok = false when no column has a positive-gain
// alternative. Tie-breaking matches core.Matrix.Best: lowest column, then
// lowest row (the tracked row is already the lowest qualifying one).
func (m *Matrix) Best() (r, c int, gain float64, ok bool) {
	r, c, gain = -1, -1, 0
	for col := range m.vms {
		g := m.bestGain[col]
		if m.bestRow[col] < 0 {
			continue
		}
		if g > gain {
			gain, r, c, ok = g, m.bestRow[col], col, true
		}
	}
	return r, c, gain, ok
}

// Apply performs the move for column c to row r, mutating the datacenter,
// and recomputes the two affected rows.
func (m *Matrix) Apply(r, c int) error {
	vm := m.vms[c]
	from := m.pms[m.curRow[c]]
	to := m.pms[r]
	if err := from.Evict(vm); err != nil {
		return fmt.Errorf("oracle: apply move of VM %d: %w", vm.ID, err)
	}
	if err := to.Host(vm); err != nil {
		return fmt.Errorf("oracle: apply move of VM %d: %w", vm.ID, err)
	}
	m.RecomputeRow(m.rowOf[from.ID])
	m.RecomputeRow(m.rowOf[to.ID])
	return nil
}

// BestPlacement is the pre-kernel arrival path: evaluate Joint on every
// active PM, build the full candidate slice, sort it, take the head.
func BestPlacement(ctx *core.Context, factors []core.Factor, vm *cluster.VM) *cluster.PM {
	var out []core.Placement
	for _, pm := range ctx.DC.ActivePMs() {
		if p := core.Joint(ctx, factors, vm, pm, false); p > 0 {
			out = append(out, core.Placement{PM: pm, Probability: p})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].PM.ID < out[j].PM.ID
	})
	if len(out) == 0 {
		return nil
	}
	return out[0].PM
}
