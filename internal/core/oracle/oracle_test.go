package oracle

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/vector"
)

// fixture builds a small heterogeneous datacenter with real factors and a
// deliberately poor initial packing, so Algorithm 1 has migrations to find.
func fixture(t *testing.T) (*core.Context, []core.Factor, []*cluster.VM) {
	t.Helper()
	fast := cluster.FastClass
	slow := cluster.SlowClass
	dc := cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 2},
			{Class: &slow, Count: 3},
		},
	})
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	var vms []*cluster.VM
	spread := []cluster.PMID{0, 1, 2, 3, 4, 0, 1, 2}
	for i, host := range spread {
		vm := cluster.NewVM(cluster.VMID(i+1), vector.New(1, 0.5), 5000, 5000, 0)
		if err := dc.PM(host).Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
		vms = append(vms, vm)
	}
	return core.NewContext(dc).At(100), core.DefaultFactors(), vms
}

func TestNewMatrixValidation(t *testing.T) {
	ctx, factors, vms := fixture(t)
	if _, err := NewMatrix(nil, factors, vms); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := NewMatrix(ctx, nil, vms); err == nil {
		t.Error("empty factor list accepted")
	}
	ctx2, factors2, vms2 := fixture(t)
	ctx2.DC.PM(0).State = cluster.PMOff // its VMs are now on an inactive PM
	if _, err := NewMatrix(ctx2, factors2, vms2); err == nil {
		t.Error("VM on inactive PM accepted")
	}
}

func TestMatrixAxesSortedByID(t *testing.T) {
	ctx, factors, vms := fixture(t)
	// Shuffle the VM argument order; the matrix must sort it.
	shuffled := []*cluster.VM{vms[3], vms[0], vms[7], vms[1], vms[5], vms[2], vms[6], vms[4]}
	m, err := NewMatrix(ctx, factors, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < m.Cols(); c++ {
		if m.VM(c-1).ID >= m.VM(c).ID {
			t.Fatalf("columns not sorted by VM ID at %d", c)
		}
	}
	for r := 1; r < m.Rows(); r++ {
		if m.PM(r-1).ID >= m.PM(r).ID {
			t.Fatalf("rows not sorted by PM ID at %d", r)
		}
	}
}

func TestBestReportsMaxNormalizedGain(t *testing.T) {
	ctx, factors, vms := fixture(t)
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	r, c, gain, ok := m.Best()
	if !ok {
		t.Fatal("no best move in a spread-out packing")
	}
	// Recompute the max by brute force over P and CurProb.
	wantGain, wantR, wantC := 0.0, -1, -1
	for col := 0; col < m.Cols(); col++ {
		cur := m.CurProb(col)
		for row := 0; row < m.Rows(); row++ {
			if row == m.CurRow(col) {
				continue
			}
			var g float64
			switch {
			case cur > 0:
				g = m.P(row, col) / cur
			case m.P(row, col) > 0:
				g = math.Inf(1)
			}
			if g > wantGain {
				wantGain, wantR, wantC = g, row, col
			}
		}
	}
	if r != wantR || c != wantC || gain != wantGain {
		t.Fatalf("Best = (%d, %d, %g), brute force says (%d, %d, %g)", r, c, gain, wantR, wantC, wantGain)
	}
}

func TestApplyMovesVMAndRefreshes(t *testing.T) {
	ctx, factors, vms := fixture(t)
	m, err := NewMatrix(ctx, factors, vms)
	if err != nil {
		t.Fatal(err)
	}
	r, c, _, ok := m.Best()
	if !ok {
		t.Fatal("no move")
	}
	vm := m.VM(c)
	target := m.PM(r)
	if err := m.Apply(r, c); err != nil {
		t.Fatal(err)
	}
	if vm.Host != target.ID {
		t.Fatalf("VM %d on PM %d after Apply, want %d", vm.ID, vm.Host, target.ID)
	}
	if m.CurRow(c) != r {
		t.Fatalf("curRow %d after Apply, want %d", m.CurRow(c), r)
	}
	// The moved column's normalizer must match its new placement cell.
	if m.CurProb(c) != m.P(r, c) {
		t.Fatalf("curProb %g != p[%d][%d] %g", m.CurProb(c), r, c, m.P(r, c))
	}
	if err := ctx.DC.CheckInvariants(); err != nil {
		t.Fatalf("datacenter corrupted by Apply: %v", err)
	}
}

func TestBestPlacementMatchesCore(t *testing.T) {
	ctx, factors, _ := fixture(t)
	for i := 0; i < 5; i++ {
		vm := cluster.NewVM(cluster.VMID(100+i), vector.New(1, float64(i)*0.25+0.25), 3000, 3000, 100)
		got := BestPlacement(ctx, factors, vm)
		want := core.BestPlacement(ctx, factors, vm)
		switch {
		case got == nil && want == nil:
		case got == nil || want == nil:
			t.Fatalf("vm %d: oracle %v vs core %v", vm.ID, got, want)
		case got.ID != want.ID:
			t.Fatalf("vm %d: oracle picks PM %d, core picks PM %d", vm.ID, got.ID, want.ID)
		}
	}
}
