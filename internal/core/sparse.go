package core

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/cluster"
)

// SparseMatrix is the candidate-set consolidation engine behind
// MatrixOptions.CandidateK: it maintains the same per-column trackers as
// the dense Matrix — current-placement normalizer, best alternative row,
// best gain — but derives them from the Context's candidate index
// (candidates.go) instead of a materialized M x N probability matrix.
// Column scans touch one score group per distinct (class, level,
// reliability) signature rather than one row per PM, and an Apply
// re-derives only the two migration endpoints plus the columns their
// membership events can actually affect.
//
// Every decision is bit-identical to the dense engine by construction:
// group values are evaluated in cellDefault's multiplication order on
// bit-identical operands, ties resolve to the lowest member ID (dense's
// ID-ordered strict-greater scan), and Best applies the dense gain heap's
// total order. The contract is enforced three ways — DiffDense against a dense
// build (the auditor's SparseCheck), the per-Apply SelfAudit rebuild, and
// the differential fuzz harness in internal/audit.
type SparseMatrix struct {
	ctx     *Context
	factors []Factor
	opts    MatrixOptions
	cand    *candIndex

	pms []*cluster.PM // active rows, ID ascending (dense row order)
	vms []*cluster.VM // columns, ID ascending

	rowOf  map[cluster.PMID]int
	id2row []int32 // PM ID -> row index, -1 for inactive PMs

	colShape  []*candShape
	shapeIdx  map[*candShape]int
	shapeCols [][]int32 // columns per distinct shape, for targeted updates

	// Column trackers, mirroring Matrix: curRow/curProb the current
	// placement and its probability, bestRow/bestP/bestGain the best
	// non-host alternative under the dense tie-break.
	curRow   []int
	curProb  []float64
	bestRow  []int
	bestP    []float64
	bestGain []float64
	colSeq   []uint64 // Apply seq that last re-derived the column in full

	// Reverse indices so Apply can enumerate exactly the columns a move
	// invalidates instead of scanning all N: hostCols[r] lists columns
	// hosted on row r (maintained by refreshColumn), bestCols[r] the
	// columns whose cached best is row r (maintained by setBest). hostPos
	// and bestPos are each column's slot in its list, -1 when absent.
	hostCols [][]int32
	bestCols [][]int32
	hostPos  []int32
	bestPos  []int32

	// vir memoizes the non-host virtualization penalty per (class index
	// of the candidate index, column), like the dense kernel's slab.
	vir []float64

	// effH lazily memoizes the hosted-cell efficiency term per row
	// (NaN = unset); invalidated for the two endpoints of each Apply.
	effH []float64

	// seq numbers Applies; candShape.seq/evFrom/evTo are valid for the
	// current Apply only when they carry this value.
	seq uint64

	// argmaxG/argmaxC are Best's reusable per-span reduction slots
	// (one per fixed column span when the argmax runs on workers).
	argmaxG []float64
	argmaxC []int
}

// canonicalDefault reports whether factors are exactly the paper's four in
// canonical order — the only program the candidate index can factor.
func canonicalDefault(factors []Factor) bool {
	if len(factors) != 4 {
		return false
	}
	_, ok0 := factors[0].(ResourceFactor)
	_, ok1 := factors[1].(VirtualizationFactor)
	_, ok2 := factors[2].(ReliabilityFactor)
	_, ok3 := factors[3].(EfficiencyFactor)
	return ok0 && ok1 && ok2 && ok3
}

// NewSparseMatrix builds the sparse engine over the data center's active
// PMs and the given VMs. It requires the canonical default factor program
// (canonicalDefault — anything else errors, the consolidation entry point
// falls back to dense before getting here); the same VM-set preconditions
// as NewMatrixWith apply (no duplicates, every VM hosted on an active PM).
func NewSparseMatrix(ctx *Context, factors []Factor, vms []*cluster.VM, opts MatrixOptions) (*SparseMatrix, error) {
	if ctx == nil || ctx.DC == nil {
		return nil, fmt.Errorf("core: sparse matrix needs a context with a datacenter")
	}
	if !canonicalDefault(factors) {
		return nil, fmt.Errorf("core: sparse matrix requires the canonical default factors")
	}
	sm := &SparseMatrix{
		ctx:     ctx,
		factors: factors,
		opts:    opts,
		cand:    ctx.candidatesWith(opts.Workers),
		rowOf:   make(map[cluster.PMID]int, 64),
	}
	sm.pms = ctx.DC.AppendActivePMs(nil)
	slices.SortFunc(sm.pms, func(a, b *cluster.PM) int { return int(a.ID) - int(b.ID) })
	sm.id2row = make([]int32, len(sm.cand.pms))
	for i := range sm.id2row {
		sm.id2row[i] = -1
	}
	for r, pm := range sm.pms {
		sm.rowOf[pm.ID] = r
		sm.id2row[pm.ID] = int32(r)
	}

	sm.vms = append([]*cluster.VM(nil), vms...)
	slices.SortFunc(sm.vms, func(a, b *cluster.VM) int { return int(a.ID) - int(b.ID) })
	seen := make(map[cluster.VMID]struct{}, len(sm.vms))
	for _, vm := range sm.vms {
		if _, dup := seen[vm.ID]; dup {
			return nil, fmt.Errorf("core: duplicate VM %d in matrix", vm.ID)
		}
		seen[vm.ID] = struct{}{}
		if _, ok := sm.rowOf[vm.Host]; !ok {
			return nil, fmt.Errorf("core: VM %d hosted on inactive PM %d", vm.ID, vm.Host)
		}
	}

	nc := len(sm.vms)
	sm.colShape = make([]*candShape, nc)
	sm.shapeIdx = make(map[*candShape]int, 16)
	for c, vm := range sm.vms {
		sh := sm.cand.shapeFor(vm.Demand)
		sm.colShape[c] = sh
		si, ok := sm.shapeIdx[sh]
		if !ok {
			si = len(sm.shapeCols)
			sm.shapeIdx[sh] = si
			sm.shapeCols = append(sm.shapeCols, nil)
		}
		sm.shapeCols[si] = append(sm.shapeCols[si], int32(c))
		if sh.nonEmpty > opts.CandidateK {
			ctx.Obs.AddScoped("core.sparse_shape_overflow", 1)
		}
	}

	// Non-host virtualization memo per (candidate-index class, column):
	// the same virProbability on the same operands as the dense kernel's
	// per-(column, class) slab, so values are bit-identical. Register
	// every fleet class first — membership only registers a class once
	// one of its PMs is feasible for some shape, and a class surfacing
	// mid-consolidation must not index past the slab.
	for _, pm := range sm.cand.pms {
		sm.cand.classFor(pm)
	}
	sm.vir = make([]float64, len(sm.cand.classes)*nc)
	for c, vm := range sm.vms {
		tre := vm.RemainingEstimate(ctx.Now)
		for ci, cc := range sm.cand.classes {
			overhead := cc.info.overhead
			if vm.Host == cluster.NoPM {
				overhead = cc.class.CreationTime
			}
			sm.vir[ci*nc+c] = virProbability(tre, overhead)
		}
	}

	sm.curRow = make([]int, nc)
	sm.curProb = make([]float64, nc)
	sm.bestRow = make([]int, nc)
	sm.bestP = make([]float64, nc)
	sm.bestGain = make([]float64, nc)
	sm.colSeq = make([]uint64, nc)
	sm.hostCols = make([][]int32, len(sm.pms))
	sm.bestCols = make([][]int32, len(sm.pms))
	sm.hostPos = make([]int32, nc)
	sm.bestPos = make([]int32, nc)
	for c := range sm.vms {
		sm.curRow[c] = -1
		sm.bestRow[c] = -1
		sm.hostPos[c] = -1
		sm.bestPos[c] = -1
	}
	sm.effH = make([]float64, len(sm.pms))
	for r := range sm.effH {
		sm.effH[r] = math.NaN()
	}
	sm.initialSync()
	return sm, nil
}

// sparseParallelThreshold is the column count below which auto-sized
// sparse kernels (Workers == 0) stay serial; explicit worker counts
// bypass it. Variable so tests and benchmarks can force both paths.
var sparseParallelThreshold = 4096

// sparseWorkers resolves the worker count for a sparse kernel over n
// units; the caller must ReturnWorkers the borrowed tokens.
func (sm *SparseMatrix) sparseWorkers(n int) (workers, borrowed int) {
	if sm.opts.Workers == 0 && n < sparseParallelThreshold {
		return 1, 0
	}
	return claimWorkers(sm.opts.Workers, n)
}

// initialSync derives every column's trackers for the first time. The
// serial path is one refreshColumn per column; above the threshold the
// scan phase shards across workers in column spans — each column's
// normalizer, best alternative, and gain land in that column's own slots,
// with the per-row efficiency memo prewarmed so hostProb is read-only —
// and the shared reverse indices are then installed serially in column
// order, reproducing the serial loop's exact append order. Both paths are
// bit-identical: per-column values come from the same scanColumn code on
// the same operands.
func (sm *SparseMatrix) initialSync() {
	nc := len(sm.vms)
	workers, borrowed := sm.sparseWorkers(nc)
	defer ReturnWorkers(borrowed)
	if workers <= 1 {
		for c := range sm.vms {
			sm.refreshColumn(c)
		}
		return
	}
	for r := range sm.pms {
		sm.hostProb(r) // prewarm the effH memo: read-only below
	}
	runSpans(workers, nc, spanChunk(nc, workers), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			vm := sm.vms[c]
			h := int(vm.Host)
			if h < 0 || h >= len(sm.id2row) || sm.id2row[h] < 0 {
				panic(fmt.Sprintf("core: VM %d host %d left the matrix", vm.ID, vm.Host))
			}
			row := int(sm.id2row[h])
			sm.curRow[c] = row
			sm.curProb[c] = sm.hostProb(row)
			bestRow, bestP := sm.scanColumn(c)
			sm.bestRow[c] = bestRow
			sm.bestP[c] = bestP
			switch {
			case bestRow < 0:
				sm.bestGain[c] = 0
			case sm.curProb[c] > 0:
				sm.bestGain[c] = bestP / sm.curProb[c]
			default:
				sm.bestGain[c] = math.Inf(1)
			}
		}
	})
	for c := range sm.vms {
		r := sm.curRow[c]
		sm.hostPos[c] = int32(len(sm.hostCols[r]))
		sm.hostCols[r] = append(sm.hostCols[r], int32(c))
		if br := sm.bestRow[c]; br >= 0 {
			sm.bestPos[c] = int32(len(sm.bestCols[br]))
			sm.bestCols[br] = append(sm.bestCols[br], int32(c))
		}
	}
}

// Rows and Cols report the engine's dimensions, mirroring Matrix.
func (sm *SparseMatrix) Rows() int { return len(sm.pms) }

// Cols reports the number of VM columns.
func (sm *SparseMatrix) Cols() int { return len(sm.vms) }

// PM returns the physical machine at row r.
func (sm *SparseMatrix) PM(r int) *cluster.PM { return sm.pms[r] }

// VM returns the virtual machine at column c.
func (sm *SparseMatrix) VM(c int) *cluster.VM { return sm.vms[c] }

// hostProb returns the hosted-cell probability for row r, in cellDefault's
// exact form: reliability times the hosted efficiency term, memoized per
// row.
func (sm *SparseMatrix) hostProb(r int) float64 {
	pm := sm.pms[r]
	rel := pm.Reliability
	if rel == 0 {
		return 0
	}
	if math.IsNaN(sm.effH[r]) {
		sm.effH[r] = effProbability(sm.ctx.classInfoFor(pm), pm.Utilization())
	}
	return rel * sm.effH[r]
}

// refreshColumn re-derives column c's trackers from scratch: the current
// placement normalizer and a scan over the shape's score groups.
func (sm *SparseMatrix) refreshColumn(c int) {
	vm := sm.vms[c]
	// id2row instead of the rowOf map: this lookup runs once per repaired
	// column per Apply and the map hash dominated the repair profile.
	h := int(vm.Host)
	if h < 0 || h >= len(sm.id2row) || sm.id2row[h] < 0 {
		panic(fmt.Sprintf("core: VM %d host %d left the matrix", vm.ID, vm.Host))
	}
	row := int(sm.id2row[h])
	sm.colSeq[c] = sm.seq
	if old := sm.curRow[c]; old != row {
		sm.listMove(sm.hostCols, sm.hostPos, c, old, row)
		sm.curRow[c] = row
	}
	sm.curProb[c] = sm.hostProb(row)
	bestRow, bestP := sm.scanColumn(c)
	sm.setBest(c, bestRow, bestP)
}

// scanColumn computes column c's best non-host alternative over the
// shape's score groups: the lowest-ID feasible PM maximizing the raw
// probability when the normalizer is positive, or the lowest-ID PM with
// any positive probability for a +Inf rescue column — exactly the dense
// refreshColumns rules.
func (sm *SparseMatrix) scanColumn(c int) (bestRow int, bestP float64) {
	sh := sm.colShape[c]
	hostID := int32(sm.pms[sm.curRow[c]].ID)
	cur := sm.curProb[c]
	nc := len(sm.vms)
	bestID := int32(-1)
	for gi := range sh.groups {
		g := &sh.groups[gi]
		m := g.members
		if len(m) == 0 {
			continue
		}
		cand := m[0]
		if cand == hostID {
			if len(m) < 2 {
				continue
			}
			cand = m[1]
		}
		p := sm.vir[int(g.key.ci)*nc+c]
		if p == 0 {
			continue
		}
		p *= g.rel
		if p == 0 {
			continue
		}
		p = p * g.effVal
		if cur > 0 {
			if p > bestP || (p == bestP && bestID >= 0 && cand < bestID) {
				bestP, bestID = p, cand
			}
		} else if p > 0 && (bestID < 0 || cand < bestID) {
			bestP, bestID = p, cand
		}
	}
	if bestID < 0 {
		return -1, 0
	}
	return int(sm.id2row[bestID]), bestP
}

// listMove relocates column c from lists[from] to lists[to] (either may be
// -1 for absent), swap-removing and keeping pos — each column's slot in its
// current list — consistent.
func (sm *SparseMatrix) listMove(lists [][]int32, pos []int32, c, from, to int) {
	if from >= 0 {
		cols := lists[from]
		i := pos[c]
		last := int32(len(cols) - 1)
		moved := cols[last]
		cols[i] = moved
		pos[moved] = i
		lists[from] = cols[:last]
	}
	if to >= 0 {
		pos[c] = int32(len(lists[to]))
		lists[to] = append(lists[to], int32(c))
	} else {
		pos[c] = -1
	}
}

// setBest installs a freshly computed (bestRow, bestP) pair and the
// derived gain for column c, without touching the heap.
func (sm *SparseMatrix) setBest(c, bestRow int, bestP float64) {
	if old := sm.bestRow[c]; old != bestRow {
		sm.listMove(sm.bestCols, sm.bestPos, c, old, bestRow)
		sm.bestRow[c] = bestRow
	}
	sm.bestP[c] = bestP
	switch {
	case bestRow < 0:
		sm.bestGain[c] = 0
	case sm.curProb[c] > 0:
		sm.bestGain[c] = bestP / sm.curProb[c]
	default:
		sm.bestGain[c] = math.Inf(1)
	}
}

// CurProb returns column c's normalizer, mirroring Matrix.CurProb.
func (sm *SparseMatrix) CurProb(c int) float64 { return sm.curProb[c] }

// BestAlt returns the tracked best non-host row of column c and its gain,
// mirroring Matrix.BestAlt.
func (sm *SparseMatrix) BestAlt(c int) (row int, gain float64) {
	return sm.bestRow[c], sm.bestGain[c]
}

// Best returns the globally maximal normalized gain and its (row, col),
// with Matrix.Best's exact contract and tie-breaks. Unlike the dense
// engine there is no gain heap to maintain: Best runs once per
// consolidation round, so a sequential argmax over the gain slice
// (~N contiguous loads) is cheaper than paying O(log N) heap repairs for
// each of the hundreds of columns an Apply re-derives. The strict
// greater-than keeps the first maximum, which is the dense heap's
// (gain desc, column asc) order.
//
// With workers, the argmax splits into fixed contiguous column spans with
// one result slot per span (indexed by span, not by worker, so scheduling
// cannot reorder results) merged in span order under the same strict
// greater-than — the first maximum wins within a span and across spans,
// so the answer is bit-identical to the serial scan at any worker count.
func (sm *SparseMatrix) Best() (r, c int, gain float64, ok bool) {
	n := len(sm.bestGain)
	col, best := -1, 0.0
	workers, borrowed := sm.sparseWorkers(n)
	if workers > 1 {
		span := (n + workers - 1) / workers
		nspans := (n + span - 1) / span
		if cap(sm.argmaxG) < nspans {
			sm.argmaxG = make([]float64, nspans)
			sm.argmaxC = make([]int, nspans)
		}
		slotG, slotC := sm.argmaxG[:nspans], sm.argmaxC[:nspans]
		runSpans(workers, n, span, func(_, lo, hi int) {
			bg, bc := 0.0, -1
			for c2 := lo; c2 < hi; c2++ {
				if g := sm.bestGain[c2]; g > bg {
					bg, bc = g, c2
				}
			}
			si := lo / span
			slotG[si], slotC[si] = bg, bc
		})
		for si := 0; si < nspans; si++ {
			if slotG[si] > best {
				best, col = slotG[si], slotC[si]
			}
		}
	} else {
		for c2, g := range sm.bestGain {
			if g > best {
				best, col = g, c2
			}
		}
	}
	ReturnWorkers(borrowed)
	if col < 0 || sm.bestRow[col] < 0 {
		return -1, -1, 0, false
	}
	return sm.bestRow[col], col, best, true
}

// Apply performs the move for column c to row r and incrementally repairs
// the trackers. The fleet is mutated exactly as Matrix.Apply mutates it;
// the repair re-derives only the two endpoint PMs' group memberships and
// the columns those membership events can affect:
//
//   - the moved column and every column hosted on an endpoint re-derive in
//     full (their normalizer changed);
//   - a column whose cached best is an endpoint re-derives only when that
//     endpoint actually changed groups in the column's shape (otherwise
//     its probability is untouched);
//   - a join event whose PM became one of its new group's two lowest
//     members is tested against each remaining column of the shape in
//     O(1) — the only way an untouched column's best can improve, since a
//     pre-Apply-exact tracker already dominates every standing group.
func (sm *SparseMatrix) Apply(r, c int) error {
	vm := sm.vms[c]
	from := sm.pms[sm.curRow[c]]
	to := sm.pms[r]
	if err := from.Evict(vm); err != nil {
		return fmt.Errorf("core: apply move of VM %d: %w", vm.ID, err)
	}
	if err := to.Host(vm); err != nil {
		if rbErr := from.Host(vm); rbErr != nil {
			panic(fmt.Sprintf("core: rollback failed after host error (%v): %v", err, rbErr))
		}
		return fmt.Errorf("core: apply move of VM %d: %w", vm.ID, err)
	}
	vm.Migrations++

	rF, rT := sm.curRow[c], r
	sm.seq++
	x := sm.cand
	x.events = x.events[:0]
	x.syncPM(int32(from.ID))
	x.syncPM(int32(to.ID))
	sm.effH[rF] = math.NaN()
	sm.effH[rT] = math.NaN()

	for i := range x.events {
		ev := &x.events[i]
		sh := ev.shape
		if sh.seq != sm.seq {
			sh.seq = sm.seq
			sh.evFrom, sh.evTo = false, false
		}
		if ev.pm == int32(from.ID) {
			sh.evFrom = true
		} else {
			sh.evTo = true
		}
	}

	// Targeted repair via the reverse indices. Each loop tolerates the
	// swap-removals its own refreshes perform on the list it is walking:
	// when the element at slot i changes, the slot is re-tested; colSeq
	// bounds every column to one re-derivation per Apply, so both loops
	// terminate. The moved column itself sits in hostCols[rF] until its
	// refresh re-homes it.
	for _, r2 := range [2]int{rF, rT} {
		for i := 0; i < len(sm.hostCols[r2]); {
			c2 := int(sm.hostCols[r2][i])
			if sm.colSeq[c2] != sm.seq {
				sm.refreshColumn(c2)
				if i < len(sm.hostCols[r2]) && int(sm.hostCols[r2][i]) != c2 {
					continue
				}
			}
			i++
		}
	}
	for _, e := range [2]struct {
		row  int
		from bool
	}{{rF, true}, {rT, false}} {
		for i := 0; i < len(sm.bestCols[e.row]); {
			c2 := int(sm.bestCols[e.row][i])
			sh := sm.colShape[c2]
			if sm.colSeq[c2] != sm.seq && sh.seq == sm.seq &&
				((e.from && sh.evFrom) || (!e.from && sh.evTo)) {
				sm.refreshColumn(c2)
				if i < len(sm.bestCols[e.row]) && int(sm.bestCols[e.row][i]) != c2 {
					continue
				}
			}
			i++
		}
	}

	for i := range x.events {
		ev := &x.events[i]
		if ev.new < 0 {
			continue
		}
		g := &ev.shape.groups[ev.new]
		// Only a joiner that landed among its group's two lowest members
		// can become any column's candidate (the second-lowest matters
		// when the lowest is the column's host).
		if g.members[0] != ev.pm && (len(g.members) < 2 || g.members[1] != ev.pm) {
			continue
		}
		// The index may track shapes no column here uses (interned by
		// arrival placements); their events cannot affect this matrix.
		si, ok := sm.shapeIdx[ev.shape]
		if !ok {
			continue
		}
		sm.joinUpdate(si, g)
	}

	if sm.opts.SelfAudit {
		if err := sm.verifyDense(); err != nil {
			return fmt.Errorf("core: sparse self-audit after moving VM %d to PM %d: %w", vm.ID, to.ID, err)
		}
	}
	return nil
}

// joinUpdate tests one group — whose candidate member just changed — as an
// improved best against every column of its shape. Columns already exactly
// re-derived this Apply are unaffected: for them the group's value is
// already dominated by the tracker, so the strict-improvement test is a
// no-op.
func (sm *SparseMatrix) joinUpdate(si int, g *candGroup) {
	nc := len(sm.vms)
	for _, c32 := range sm.shapeCols[si] {
		c := int(c32)
		// A column re-derived this Apply is exact: scanColumn already
		// covered every standing group, so strict improvement is
		// impossible and the test below would be a guaranteed no-op.
		if sm.colSeq[c] == sm.seq {
			continue
		}
		hostID := int32(sm.pms[sm.curRow[c]].ID)
		cand := g.members[0]
		if cand == hostID {
			if len(g.members) < 2 {
				continue
			}
			cand = g.members[1]
		}
		p := sm.vir[int(g.key.ci)*nc+c]
		if p == 0 {
			continue
		}
		p *= g.rel
		if p == 0 {
			continue
		}
		p = p * g.effVal
		if sm.curProb[c] > 0 {
			if p > sm.bestP[c] ||
				(p == sm.bestP[c] && p > 0 && sm.bestRow[c] >= 0 && int(sm.id2row[cand]) < sm.bestRow[c]) {
				sm.setBest(c, int(sm.id2row[cand]), p)
			}
		} else if p > 0 {
			candRow := int(sm.id2row[cand])
			if sm.bestRow[c] < 0 || candRow < sm.bestRow[c] {
				sm.setBest(c, candRow, p)
			}
		}
	}
}

// SelfCheck re-derives every column tracker from a fresh group scan and
// validates the reverse indices and the candidate index's internal
// structure, reporting the first divergence — the incremental Apply repair must never
// drift from a from-scratch derivation.
func (sm *SparseMatrix) SelfCheck() error {
	for c, vm := range sm.vms {
		row, ok := sm.rowOf[vm.Host]
		if !ok {
			return fmt.Errorf("core: column %d (VM %d) hosted on PM %d outside the matrix", c, vm.ID, vm.Host)
		}
		if sm.curRow[c] != row {
			return fmt.Errorf("core: column %d curRow %d, want %d", c, sm.curRow[c], row)
		}
		pm := sm.pms[row]
		want := 0.0
		if pm.Reliability != 0 {
			want = pm.Reliability * effProbability(sm.ctx.classInfoFor(pm), pm.Utilization())
		}
		if sm.curProb[c] != want {
			return fmt.Errorf("core: column %d curProb %g, want %g", c, sm.curProb[c], want)
		}
		bestRow, bestP := sm.scanColumn(c)
		gain := 0.0
		switch {
		case bestRow < 0:
		case sm.curProb[c] > 0:
			gain = bestP / sm.curProb[c]
		default:
			gain = math.Inf(1)
		}
		if sm.bestRow[c] != bestRow || sm.bestGain[c] != gain {
			return fmt.Errorf("core: column %d tracker (row %d, gain %g) != rescan (row %d, gain %g)",
				c, sm.bestRow[c], sm.bestGain[c], bestRow, gain)
		}
		if bestRow >= 0 && sm.bestP[c] != bestP {
			return fmt.Errorf("core: column %d bestP %g != rescan %g", c, sm.bestP[c], bestP)
		}
	}
	nBest := 0
	for c := range sm.vms {
		r := sm.curRow[c]
		if i := sm.hostPos[c]; i < 0 || int(i) >= len(sm.hostCols[r]) || sm.hostCols[r][i] != int32(c) {
			return fmt.Errorf("core: column %d missing from hostCols[%d]", c, r)
		}
		if r := sm.bestRow[c]; r >= 0 {
			nBest++
			if i := sm.bestPos[c]; i < 0 || int(i) >= len(sm.bestCols[r]) || sm.bestCols[r][i] != int32(c) {
				return fmt.Errorf("core: column %d missing from bestCols[%d]", c, r)
			}
		} else if sm.bestPos[c] != -1 {
			return fmt.Errorf("core: column %d has no best row but bestPos %d", c, sm.bestPos[c])
		}
	}
	nHost, nBestListed := 0, 0
	for r := range sm.pms {
		nHost += len(sm.hostCols[r])
		nBestListed += len(sm.bestCols[r])
	}
	if nHost != len(sm.vms) || nBestListed != nBest {
		return fmt.Errorf("core: reverse index sizes (host %d, best %d) != (%d, %d)",
			nHost, nBestListed, len(sm.vms), nBest)
	}
	return sm.checkIndex()
}

// checkIndex validates the candidate index's structural invariants for
// every shape the matrix uses: sorted member lists, a consistent groupOf
// inverse, and membership signatures that match a fresh evaluation.
func (sm *SparseMatrix) checkIndex() error {
	x := sm.cand
	for si, sh := range x.shapeList {
		nonEmpty := 0
		for gi := range sh.groups {
			g := &sh.groups[gi]
			if len(g.members) > 0 {
				nonEmpty++
			}
			for i, id := range g.members {
				if i > 0 && g.members[i-1] >= id {
					return fmt.Errorf("core: shape %d group %d members out of order", si, gi)
				}
				if sh.groupOf[id] != int32(gi) {
					return fmt.Errorf("core: shape %d PM %d groupOf %d != group %d", si, id, sh.groupOf[id], gi)
				}
			}
		}
		if nonEmpty != sh.nonEmpty {
			return fmt.Errorf("core: shape %d nonEmpty %d, counted %d", si, sh.nonEmpty, nonEmpty)
		}
		for id, pm := range x.pms {
			key, _, _, ok := x.membership(pm, sh.demand)
			gi := sh.groupOf[id]
			if !ok {
				if gi >= 0 {
					return fmt.Errorf("core: shape %d PM %d grouped but excluded on re-evaluation", si, id)
				}
				continue
			}
			if gi < 0 {
				return fmt.Errorf("core: shape %d PM %d ungrouped but eligible (key %+v)", si, id, key)
			}
			if sh.groups[gi].key != key {
				return fmt.Errorf("core: shape %d PM %d in group %+v, want %+v", si, id, sh.groups[gi].key, key)
			}
		}
	}
	return nil
}

// DiffDense compares the sparse trackers against a dense Matrix built over
// the same VMs: dimensions, identities, normalizers, best alternatives,
// and the Best extraction must all be bit-identical. It is the oracle
// check behind the auditor's sparse differential and the fuzz harness.
func (sm *SparseMatrix) DiffDense(o *Matrix) error {
	if sm.Rows() != o.Rows() || sm.Cols() != o.Cols() {
		return fmt.Errorf("core: sparse %dx%d != dense %dx%d", sm.Rows(), sm.Cols(), o.Rows(), o.Cols())
	}
	for r := range sm.pms {
		if sm.pms[r].ID != o.pms[r].ID {
			return fmt.Errorf("core: row %d is PM %d vs PM %d", r, sm.pms[r].ID, o.pms[r].ID)
		}
	}
	for c := range sm.vms {
		if sm.vms[c].ID != o.vms[c].ID {
			return fmt.Errorf("core: column %d is VM %d vs VM %d", c, sm.vms[c].ID, o.vms[c].ID)
		}
	}
	for c := range sm.vms {
		if sm.curRow[c] != o.curRow[c] || sm.curProb[c] != o.curProb[c] {
			return fmt.Errorf("core: column %d normalizer (row %d, p %g) vs dense (row %d, p %g)",
				c, sm.curRow[c], sm.curProb[c], o.curRow[c], o.curProb[c])
		}
		if sm.bestRow[c] != o.bestRow[c] || sm.bestGain[c] != o.bestGain[c] {
			return fmt.Errorf("core: column %d best (row %d, gain %g) vs dense (row %d, gain %g)",
				c, sm.bestRow[c], sm.bestGain[c], o.bestRow[c], o.bestGain[c])
		}
		if sm.bestRow[c] >= 0 && sm.bestP[c] != o.bestP[c] {
			return fmt.Errorf("core: column %d bestP %g vs dense %g", c, sm.bestP[c], o.bestP[c])
		}
	}
	mr, mc, mg, mok := sm.Best()
	or, oc, og, ook := o.Best()
	if mok != ook || (mok && (mr != or || mc != oc || mg != og)) {
		return fmt.Errorf("core: Best (%d, %d, %g, %t) vs dense (%d, %d, %g, %t)", mr, mc, mg, mok, or, oc, og, ook)
	}
	return nil
}

// DiffSparse compares two sparse engines tracker-for-tracker: dimensions,
// row/column identities, normalizers, best alternatives, and the Best
// extraction must all be bit-identical. It is the equivalence gate behind
// the parallel-kernel tests and cmd/benchreport's 100k-PM scale point,
// where a dense reference matrix (DiffDense) would not fit in memory.
func (sm *SparseMatrix) DiffSparse(o *SparseMatrix) error {
	if sm.Rows() != o.Rows() || sm.Cols() != o.Cols() {
		return fmt.Errorf("core: sparse %dx%d != sparse %dx%d", sm.Rows(), sm.Cols(), o.Rows(), o.Cols())
	}
	for r := range sm.pms {
		if sm.pms[r].ID != o.pms[r].ID {
			return fmt.Errorf("core: row %d is PM %d vs PM %d", r, sm.pms[r].ID, o.pms[r].ID)
		}
	}
	for c := range sm.vms {
		if sm.vms[c].ID != o.vms[c].ID {
			return fmt.Errorf("core: column %d is VM %d vs VM %d", c, sm.vms[c].ID, o.vms[c].ID)
		}
		if sm.curRow[c] != o.curRow[c] || sm.curProb[c] != o.curProb[c] {
			return fmt.Errorf("core: column %d normalizer (row %d, p %g) vs (row %d, p %g)",
				c, sm.curRow[c], sm.curProb[c], o.curRow[c], o.curProb[c])
		}
		if sm.bestRow[c] != o.bestRow[c] || sm.bestGain[c] != o.bestGain[c] {
			return fmt.Errorf("core: column %d best (row %d, gain %g) vs (row %d, gain %g)",
				c, sm.bestRow[c], sm.bestGain[c], o.bestRow[c], o.bestGain[c])
		}
		if sm.bestRow[c] >= 0 && sm.bestP[c] != o.bestP[c] {
			return fmt.Errorf("core: column %d bestP %g vs %g", c, sm.bestP[c], o.bestP[c])
		}
	}
	mr, mc, mg, mok := sm.Best()
	or, oc, og, ook := o.Best()
	if mok != ook || (mok && (mr != or || mc != oc || mg != og)) {
		return fmt.Errorf("core: Best (%d, %d, %g, %t) vs (%d, %d, %g, %t)", mr, mc, mg, mok, or, oc, og, ook)
	}
	return nil
}

// verifyDense checks the live sparse state against a cold dense build over
// the same VM set (SelfAudit mode), plus the from-scratch self check.
func (sm *SparseMatrix) verifyDense() error {
	opts := sm.opts
	opts.SelfAudit = false
	opts.CandidateK = 0
	fresh, err := NewMatrixWith(sm.ctx, sm.factors, sm.vms, opts)
	if err != nil {
		return fmt.Errorf("core: dense rebuild failed: %w", err)
	}
	defer fresh.Release()
	if err := sm.SelfCheck(); err != nil {
		return err
	}
	return sm.DiffDense(fresh)
}

// ColumnShortlist returns column c's candidate shortlist: every feasible
// non-host PM with a positive probability, ordered (probability desc, PM
// ID asc) and truncated to at most k entries. The head, when present, is
// exactly the tracked best alternative; the property tests compare the
// list against a dense column ranking.
func (sm *SparseMatrix) ColumnShortlist(c, k int) []Placement {
	sh := sm.colShape[c]
	hostID := int32(sm.pms[sm.curRow[c]].ID)
	nc := len(sm.vms)
	var out []Placement
	for gi := range sh.groups {
		g := &sh.groups[gi]
		if len(g.members) == 0 {
			continue
		}
		p := sm.vir[int(g.key.ci)*nc+c]
		if p == 0 {
			continue
		}
		p *= g.rel
		if p == 0 {
			continue
		}
		p = p * g.effVal
		if p <= 0 {
			continue
		}
		for _, id := range g.members {
			if id == hostID {
				continue
			}
			out = append(out, Placement{PM: sm.cand.pms[id], Probability: p})
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Probability > b.Probability ||
				(a.Probability == b.Probability && a.PM.ID < b.PM.ID) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// columnAlternatives is the sparse twin of Matrix.ColumnAlternatives:
// the column shortlist with each probability normalized by the current
// placement, collapsing to the single tracked rescue row with +Inf gain
// when the current placement has probability 0. The decision hook in
// consolidateSparse uses it so recorded alternatives carry the same
// gain scale as the dense engine.
func (sm *SparseMatrix) columnAlternatives(c, k int) []Placement {
	cur := sm.curProb[c]
	if cur <= 0 {
		if r := sm.bestRow[c]; r >= 0 {
			return []Placement{{PM: sm.pms[r], Probability: math.Inf(1)}}
		}
		return nil
	}
	out := sm.ColumnShortlist(c, k)
	for i := range out {
		out[i].Probability /= cur
	}
	return out
}

// BestPlacementWith is BestPlacement with explicit matrix options: with
// CandidateK > 0 and the canonical factor program the argmax comes from
// the candidate index (bit-identical to the dense scan by construction);
// anything else falls through to the dense path.
func BestPlacementWith(ctx *Context, factors []Factor, vm *cluster.VM, opts MatrixOptions) *cluster.PM {
	if opts.CandidateK > 0 && canonicalDefault(factors) {
		defer ctx.Obs.Phase("arrival_place").Time()()
		return ctx.candidatesWith(opts.Workers).bestArrival(vm, opts.CandidateK)
	}
	return BestPlacement(ctx, factors, vm)
}

// ArrivalShortlist returns the sparse top-k shortlist for placing vm —
// RankPlacements' exact ordering truncated to k — and ok = true when the
// candidate index covers the factor program. Callers outside the tests
// want BestPlacementWith; this exists so the shortlist-containment
// property is checkable from outside the package.
func ArrivalShortlist(ctx *Context, factors []Factor, vm *cluster.VM, k int) ([]Placement, bool) {
	if !canonicalDefault(factors) {
		return nil, false
	}
	return ctx.candidates().shortlist(nil, vm, k), true
}

// consolidateSparse is ConsolidateWith's candidate-set engine: the same
// Algorithm 1 loop over a SparseMatrix. The caller has already verified
// the canonical factor program and collected the running VMs.
func consolidateSparse(ctx *Context, factors []Factor, params Params, opts MatrixOptions, vms []*cluster.VM) ([]Move, error) {
	stop := ctx.Obs.Phase("kernel_build").Time()
	sm, err := NewSparseMatrix(ctx, factors, vms, opts)
	stop()
	if err != nil {
		return nil, err
	}
	stop = ctx.Obs.Phase("algo1_rounds").Time()
	var moves []Move
	for round := 1; round <= params.MIGRound; round++ {
		r, c, gain, ok := sm.Best()
		if !ok || gain <= params.MIGThreshold || math.IsNaN(gain) {
			break
		}
		vm := sm.vms[c]
		from := vm.Host
		if opts.DecisionHook != nil {
			opts.DecisionHook(round,
				Move{VM: vm.ID, From: from, To: sm.pms[r].ID, Gain: gain, Round: round},
				sm.columnAlternatives(c, topK))
		}
		if err := sm.Apply(r, c); err != nil {
			stop()
			return moves, err
		}
		moves = append(moves, Move{
			VM: vm.ID, From: from, To: vm.Host, Gain: gain, Round: round,
		})
	}
	stop()
	ctx.Obs.Add("core.consolidate_passes", 1)
	if len(moves) > 0 {
		ctx.Obs.Add("core.consolidate_moves", int64(len(moves)))
	}
	return moves, nil
}
