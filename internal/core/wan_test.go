package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

func wanDC() *cluster.Datacenter {
	fast := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 4}},
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	return dc
}

func TestNewWANFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWANFactor("a", 0.5)
}

func TestWANFactorSameSiteNeutral(t *testing.T) {
	dc := wanDC()
	wf := NewWANFactor("east", 5)
	ctx := &Context{DC: dc, Now: 0}
	vm := cluster.NewVM(1, vector.New(1, 0.5), 10000, 10000, 0)
	mustHost(t, dc.PM(0), vm)
	if got := wf.Probability(ctx, vm, dc.PM(1), false); got != 1 {
		t.Errorf("same-site p_wan = %g, want 1", got)
	}
	if got := wf.Probability(ctx, vm, dc.PM(0), true); got != 1 {
		t.Errorf("hosted p_wan = %g, want 1", got)
	}
}

func TestWANFactorNewVMNeutral(t *testing.T) {
	dc := wanDC()
	wf := NewWANFactor("east", 5)
	wf.Assign(2, "west")
	ctx := &Context{DC: dc, Now: 0}
	vm := cluster.NewVM(1, vector.New(1, 0.5), 10000, 10000, 0)
	if got := wf.Probability(ctx, vm, dc.PM(2), false); got != 1 {
		t.Errorf("unplaced VM p_wan = %g, want 1 (no state to ship)", got)
	}
}

func TestWANFactorCrossSitePenalty(t *testing.T) {
	dc := wanDC()
	wf := NewWANFactor("east", 5) // extra = 4 * 40 = 160 s on fast targets
	wf.Assign(2, "west")
	wf.Assign(3, "west")
	ctx := &Context{DC: dc, Now: 0}

	vm := cluster.NewVM(1, vector.New(1, 0.5), 1600, 1600, 0)
	mustHost(t, dc.PM(0), vm) // east
	want := math.Pow((1600.0-160)/1600, 2)
	if got := wf.Probability(ctx, vm, dc.PM(2), false); math.Abs(got-want) > 1e-12 {
		t.Errorf("cross-site p_wan = %g, want %g", got, want)
	}

	// Too little remaining time to ship across the WAN.
	short := cluster.NewVM(2, vector.New(1, 0.5), 150, 150, 0)
	mustHost(t, dc.PM(0), short)
	if got := wf.Probability(ctx, short, dc.PM(2), false); got != 0 {
		t.Errorf("short-remaining cross-site p_wan = %g, want 0", got)
	}
}

func TestWANFactorKeepsConsolidationLocal(t *testing.T) {
	// Two sites, two PMs each. Fragmented load within the east site must
	// consolidate east-to-east, not across the WAN, when gains are
	// comparable.
	dc := wanDC()
	wf := NewWANFactor("east", 50) // brutal WAN cost
	wf.Assign(2, "west")
	wf.Assign(3, "west")
	factors := append(DefaultFactors(), wf)
	ctx := &Context{DC: dc, Now: 0}

	// Runtimes chosen so the WAN transfer (4 * 49 * T_mig ~ 1960 s extra)
	// devours most of the remaining time: a rational scheme amortizes a
	// WAN move only for long-lived VMs, and these are not.
	a := cluster.NewVM(1, vector.New(2, 1), 3000, 3000, 0)
	b := cluster.NewVM(2, vector.New(2, 1), 3000, 3000, 0)
	mustHost(t, dc.PM(0), a)
	mustHost(t, dc.PM(1), b)
	// Make the west site attractive on pure efficiency: pre-load PM2.
	w := cluster.NewVM(3, vector.New(4, 2), 3000, 3000, 0)
	mustHost(t, dc.PM(2), w)

	moves, err := Consolidate(ctx, factors, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("no consolidation at all")
	}
	for _, mv := range moves {
		if wf.Site(mv.From) != wf.Site(mv.To) {
			t.Errorf("WAN-crossing move %+v despite 50x multiplier on short-lived VMs", mv)
		}
	}
	if err := dc.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWANFactorName(t *testing.T) {
	if NewWANFactor("a", 2).Name() != "wan" {
		t.Error("name wrong")
	}
}
