package core

import (
	"unsafe"

	"repro/internal/cluster"
)

// This file implements the batched, SIMD-friendly evaluation path of the
// factored kernel: instead of walking a row cell by cell with per-cell
// branches (feasibility gate, two zero short-circuits, a hosted-cell
// special case), fillRowSlab evaluates the whole row as three fused
// passes over flat, 64-byte-aligned float64 slabs laid out structure-of-
// arrays:
//
//  1. a per-demand-shape pass computing the efficiency term, with
//     infeasible shapes stored as literal 0 (D evaluations);
//  2. a gather expanding the D-entry shape memo into a contiguous
//     per-column slab (effCol[c] = effZ[demIdx[c]]);
//  3. one branch-free fused product over contiguous slices,
//     out[c] = (vir[c] * rel) * effCol[c], with the slice bounds hoisted
//     so the compiler drops the per-iteration bounds checks;
//
// followed by an O(hosted) patch loop that overwrites the columns this
// row currently hosts (located through a per-row linked index kept in
// sync with migrations by moveHosted). The virtualization memo is stored
// class-major — one
// contiguous, cache-line-aligned lane of length ncols per PM class, the
// exact slice the inner loop streams — instead of the column-major
// [c*nc+ci] interleave the scalar path used.
//
// Bit-exactness. The scalar path computes ((p_vir * p_rel)) * p_eff with
// literal-zero short circuits; every operand here is a finite,
// non-negative float64 (probabilities and Eq. 4-5 levels), so replacing a
// short-circuited literal 0 with the actual product against a zero factor
// yields the same +0 bit pattern, and the fused pass multiplies in the
// identical order on bit-identical operands. The slab path is therefore
// bit-identical to both the scalar kernel path and the generic Factor
// path — asserted by TestSlabEquivalence and the audit differential
// oracle, and relied on by MatrixOptions.DisableSlab existing only for
// benchmarking, never for correctness.

// slabAlign is the alignment of every slab base, in bytes: one x86/ARM
// cache line, which is also the widest vector register footprint (AVX-512)
// that a future vectorized build could use without split loads.
const slabAlign = 64

// floatsPerLine is slabAlign in float64 units.
const floatsPerLine = slabAlign / 8

// alignUp rounds n up to a multiple of floatsPerLine, so consecutive
// class lanes inside one slab all start on cache-line boundaries.
func alignUp(n int) int {
	return (n + floatsPerLine - 1) &^ (floatsPerLine - 1)
}

// alignedFloats returns (raw, view) where view is a length-n float64
// slice whose base address is slabAlign-aligned, carved out of raw. raw
// is the (possibly re-grown) backing array to stash back into scratch so
// the capacity survives across builds; callers must address the slab only
// through view.
func alignedFloats(raw []float64, n int) ([]float64, []float64) {
	if n == 0 {
		return raw, nil
	}
	need := n + floatsPerLine - 1
	if cap(raw) < need {
		raw = make([]float64, need)
	}
	raw = raw[:cap(raw)]
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % slabAlign; rem != 0 {
		off = int((slabAlign - rem) / 8)
	}
	return raw, raw[off : off+n : off+n]
}

// buildHostIndex compiles the per-row index of hosted cells: hostHead[r]
// heads a doubly-linked list (threaded through hostNext/hostPrev, indexed
// by column, -1 terminated) of the columns whose VM currently resides on
// row r. Unhosted columns (arrival evaluations, vm.Host == NoPM) appear
// in no list. The index is what lets the slab fill run branch-free over
// all N columns and patch the (typically ~N/M per row) hosted cells
// afterwards; linked lists rather than a packed CSR because Matrix.Apply
// rehomes one column per move and the index must follow in O(1)
// (moveHosted) — a packed layout would need an O(N) shift per move.
func (k *kernel) buildHostIndex(ks *kernScratch, pms []*cluster.PM, vms []*cluster.VM) {
	// Arrival evaluations compile a kernel per event over a single unhosted
	// column; skip the per-row index rebuild entirely when no column is
	// hosted so that path stays O(1) beyond the vir memo.
	anyHosted := false
	for _, vm := range vms {
		if vm.Host != cluster.NoPM {
			anyHosted = true
			break
		}
	}
	if !anyHosted {
		k.hostHead, k.hostNext, k.hostPrev = nil, nil, nil
		return
	}
	if ks.hostIdx == nil {
		ks.hostIdx = make(map[cluster.PMID]int32, len(pms))
	} else {
		clear(ks.hostIdx)
	}
	for r, pm := range pms {
		ks.hostIdx[pm.ID] = int32(r)
	}
	k.hostHead = growInt32s(ks.hostHead, len(pms))
	ks.hostHead = k.hostHead
	k.hostNext = growInt32s(ks.hostNext, len(vms))
	ks.hostNext = k.hostNext
	k.hostPrev = growInt32s(ks.hostPrev, len(vms))
	ks.hostPrev = k.hostPrev
	for r := range k.hostHead {
		k.hostHead[r] = -1
	}
	// Reverse column order so each push-front leaves the lists ascending —
	// the patch loop then walks columns in memory order.
	for c := len(vms) - 1; c >= 0; c-- {
		hr, ok := ks.hostIdx[vms[c].Host]
		if !ok {
			k.hostNext[c], k.hostPrev[c] = -1, -1
			continue
		}
		head := k.hostHead[hr]
		k.hostNext[c], k.hostPrev[c] = head, -1
		if head >= 0 {
			k.hostPrev[head] = int32(c)
		}
		k.hostHead[hr] = int32(c)
	}
}

// moveHosted rehomes column c from row `from` to row `to` in the hosted
// index, mirroring the vm.Host mutation Matrix.Apply just performed so
// subsequent slab row fills patch the right cells. O(1).
func (k *kernel) moveHosted(c, from, to int) {
	if k.hostHead == nil {
		return
	}
	if p := k.hostPrev[c]; p >= 0 {
		k.hostNext[p] = k.hostNext[c]
	} else {
		k.hostHead[from] = k.hostNext[c]
	}
	if n := k.hostNext[c]; n >= 0 {
		k.hostPrev[n] = k.hostPrev[c]
	}
	head := k.hostHead[to]
	k.hostNext[c], k.hostPrev[c] = head, -1
	if head >= 0 {
		k.hostPrev[head] = int32(c)
	}
	k.hostHead[to] = int32(c)
}

// fillRowSlab evaluates every cell of row r through the batched slab
// path. Results are bit-identical to fillRowScalar (see the file
// comment); the difference is purely mechanical: no per-cell branches, no
// strided loads, and a single fused multiply chain the compiler can keep
// in registers.
func (k *kernel) fillRowSlab(r int, pm *cluster.PM, vms []*cluster.VM, out []float64, rs *rowScratch) {
	ci := k.rowClass[r]
	info := k.infos[ci]
	rel := pm.Reliability
	n := len(vms)

	// Pass 1: per-demand-shape efficiency memo, infeasible shapes as
	// literal zero so the fused product needs no feasibility gate.
	effZ := rs.shapeSlab(len(k.demands))
	for di, demand := range k.demands {
		if pm.CanHost(demand) {
			effZ[di] = effProbability(info, prospectiveUtilization(pm, demand))
		} else {
			effZ[di] = 0
		}
	}

	// Pass 2: gather the shape memo into a contiguous per-column slab.
	effCol := rs.colSlab(n)
	demIdx := k.demIdx[:n]
	for c := range effCol {
		effCol[c] = effZ[demIdx[c]]
	}

	// Pass 3: fused Eq. 1 product over contiguous, aligned slices. The
	// re-slices pin every operand to length n so the bounds checks hoist
	// out of the loop; the body is branch-free straight-line code.
	virRow := k.vir[ci*k.virStride : ci*k.virStride+n : ci*k.virStride+n]
	out = out[:n]
	effCol = effCol[:n]
	for c := range out {
		out[c] = virRow[c] * rel * effCol[c]
	}

	// Patch the hosted cells: p_res = p_vir = 1 there, and p_eff reads
	// the PM's present utilization (which already includes its VMs).
	if k.hostHead == nil {
		return
	}
	if c0 := k.hostHead[r]; c0 >= 0 {
		hosted := rel * effProbability(info, pm.Utilization())
		for c := c0; c >= 0; c = k.hostNext[c] {
			out[c] = hosted
		}
	}
}
