package core

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// PriceFactor is the electricity-price extension the paper sketches as
// future work ("the dynamic behavior of electricity price will be
// formulated as an important factor in the dynamic VM migration process").
// It demonstrates the advertised extensibility of the joint probability:
// appending this factor to DefaultFactors makes the scheme prefer — and
// migrate toward — machines in cheaper-electricity regions, with no other
// code changes.
//
// Each PM belongs to a region with a (possibly time-varying) $/kWh price.
// The factor is the normalized inverse price, mirroring how eff_j
// normalizes per-VM power:
//
//	p_ij^price = min_region(price(now)) / price_region(j)(now)
//
// so the cheapest region scores 1 and pricier regions proportionally less.
type PriceFactor struct {
	// RegionOf maps a PM to its region name. PMs not in the map belong
	// to DefaultRegion.
	RegionOf map[cluster.PMID]string

	// DefaultRegion names the region of unmapped PMs.
	DefaultRegion string

	// Price returns a region's electricity price at a simulation time,
	// in any consistent unit (only ratios matter). Prices must be
	// positive.
	Price func(region string, now float64) float64

	// Regions lists every region so the factor can normalize by the
	// cheapest current price.
	Regions []string
}

// NewPriceFactor builds the factor; it panics on an incomplete
// specification (prices are experiment configuration, not runtime input).
func NewPriceFactor(regions []string, defaultRegion string, price func(string, float64) float64) *PriceFactor {
	if len(regions) == 0 || price == nil {
		panic("core: price factor needs regions and a price function")
	}
	found := false
	for _, r := range regions {
		if r == defaultRegion {
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("core: default region %q not in region list", defaultRegion))
	}
	return &PriceFactor{
		RegionOf:      make(map[cluster.PMID]string),
		DefaultRegion: defaultRegion,
		Price:         price,
		Regions:       regions,
	}
}

// Assign places a PM in a region.
func (f *PriceFactor) Assign(pm cluster.PMID, region string) { f.RegionOf[pm] = region }

// Region returns the region a PM belongs to.
func (f *PriceFactor) Region(pm cluster.PMID) string {
	if r, ok := f.RegionOf[pm]; ok {
		return r
	}
	return f.DefaultRegion
}

// Name implements Factor.
func (*PriceFactor) Name() string { return "price" }

// Probability implements Factor.
func (f *PriceFactor) Probability(ctx *Context, _ *cluster.VM, pm *cluster.PM, _ bool) float64 {
	p := f.Price(f.Region(pm.ID), ctx.Now)
	if p <= 0 || math.IsNaN(p) {
		return 0
	}
	cheapest := math.Inf(1)
	for _, r := range f.Regions {
		if rp := f.Price(r, ctx.Now); rp > 0 && rp < cheapest {
			cheapest = rp
		}
	}
	if math.IsInf(cheapest, 1) {
		return 0
	}
	return cheapest / p
}

// FlatPrices is a convenience Price function over a static map.
func FlatPrices(perRegion map[string]float64) func(string, float64) float64 {
	return func(region string, _ float64) float64 { return perRegion[region] }
}

// TimeOfUsePrices models a simple day/night tariff: price = base during
// [peakStartHour, peakEndHour) local hours, base*offPeakScale otherwise,
// per region.
func TimeOfUsePrices(base map[string]float64, peakStartHour, peakEndHour, offPeakScale float64) func(string, float64) float64 {
	return func(region string, now float64) float64 {
		b := base[region]
		h := math.Mod(now/3600, 24)
		if h >= peakStartHour && h < peakEndHour {
			return b
		}
		return b * offPeakScale
	}
}
