package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
)

// Params are the two knobs the paper uses to restrain dynamic migration
// (Section III.C).
type Params struct {
	// MIGThreshold is the minimum normalized gain a migration must
	// achieve; the paper's example uses 1.05. Values <= 1 allow
	// zero-improvement churn and are rejected.
	MIGThreshold float64

	// MIGRound caps migration rounds per consolidation pass.
	MIGRound int
}

// DefaultParams returns the paper's example settings.
func DefaultParams() Params {
	return Params{MIGThreshold: 1.05, MIGRound: 10}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if !(p.MIGThreshold > 1) {
		return fmt.Errorf("core: MIG_threshold must exceed 1, got %g", p.MIGThreshold)
	}
	if p.MIGRound <= 0 {
		return fmt.Errorf("core: MIG_round must be positive, got %d", p.MIGRound)
	}
	return nil
}

// Consolidate runs Algorithm 1 (dynamic VM migration) over the data
// center's currently running VMs: build the probability matrix, normalize
// each column by its current placement, and while the largest normalized
// value exceeds MIG_threshold (and fewer than MIG_round rounds have run),
// migrate that VM and refresh the affected rows. The datacenter state is
// mutated; the executed moves are returned in order.
//
// Only VMs in the Running state participate: creating and migrating VMs
// are in transition and queued VMs hold no resources.
func Consolidate(ctx *Context, factors []Factor, params Params) ([]Move, error) {
	return ConsolidateWith(ctx, factors, params, MatrixOptions{})
}

// ConsolidateWith is Consolidate with explicit matrix options; it exists
// so the kernel-equivalence tests and benchmarks can run Algorithm 1 over
// both evaluation paths.
func ConsolidateWith(ctx *Context, factors []Factor, params Params, opts MatrixOptions) ([]Move, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ctx.vmBuf = ctx.DC.AppendVMsInState(ctx.vmBuf[:0], cluster.VMRunning)
	vms := ctx.vmBuf
	if len(vms) == 0 {
		return nil, nil
	}
	if opts.CandidateK > 0 && canonicalDefault(factors) {
		return consolidateSparse(ctx, factors, params, opts, vms)
	}
	stop := ctx.Obs.Phase("kernel_build").Time()
	m, err := NewMatrixWith(ctx, factors, vms, opts)
	stop()
	if err != nil {
		return nil, err
	}
	defer m.Release()
	stop = ctx.Obs.Phase("algo1_rounds").Time()
	var moves []Move
	for round := 1; round <= params.MIGRound; round++ {
		r, c, gain, ok := m.Best()
		if !ok || gain <= params.MIGThreshold || math.IsNaN(gain) {
			break
		}
		vm := m.vms[c]
		from := vm.Host
		if opts.DecisionHook != nil {
			opts.DecisionHook(round,
				Move{VM: vm.ID, From: from, To: m.pms[r].ID, Gain: gain, Round: round},
				m.ColumnAlternatives(c, topK))
		}
		if err := m.Apply(r, c); err != nil {
			stop()
			return moves, err
		}
		moves = append(moves, Move{
			VM: vm.ID, From: from, To: vm.Host, Gain: gain, Round: round,
		})
	}
	stop()
	ctx.Obs.Add("core.consolidate_passes", 1)
	if len(moves) > 0 {
		ctx.Obs.Add("core.consolidate_moves", int64(len(moves)))
	}
	return moves, nil
}

// MigratableVMs returns the VMs eligible for Algorithm 1 — state Running;
// creating and migrating VMs are in transition and queued VMs hold no
// resources — sorted by ID. The sort holds by construction
// (AppendVMsInState sorts the appended span): Algorithm 1's tie-breaks
// are ID-ordered, so the column order must not depend on an upstream
// implementation accident (the determinism tests assert it).
func MigratableVMs(dc *cluster.Datacenter) []*cluster.VM {
	return dc.AppendVMsInState(nil, cluster.VMRunning)
}

// Placement scores one candidate PM for a new VM request.
type Placement struct {
	PM          *cluster.PM
	Probability float64
}

// RankPlacements evaluates the new-arrival column of the probability
// matrix: the joint probability of hosting vm on every active PM, sorted
// by decreasing probability (ties toward lower PM ID). Infeasible PMs
// (probability 0) are omitted.
//
// This is the paper's arrival path: "if a new VM request arrives, we only
// calculate the probability in the new VM column and allocate it to the PM
// with the highest probability". Callers that only need the argmax should
// use BestPlacement, which is sort- and allocation-free.
func RankPlacements(ctx *Context, factors []Factor, vm *cluster.VM) []Placement {
	pms, k, useKernel := ctx.arrivalKernel(factors, vm)
	var out []Placement
	for r, pm := range pms {
		var p float64
		if useKernel {
			p = k.cell(r, 0, pm, vm, false)
		} else {
			p = Joint(ctx, factors, vm, pm, false)
		}
		if p > 0 {
			out = append(out, Placement{PM: pm, Probability: p})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].PM.ID < out[j].PM.ID
	})
	return out
}

// BestPlacement returns the highest-probability PM for vm, or nil when no
// active PM can host it (the caller then boots a machine or queues the
// request). It is a single argmax pass over the arrival column — no
// candidate slice, no sort — with ties broken toward the lower PM ID
// (ActivePMs iterates in ID order), matching RankPlacements' first entry.
func BestPlacement(ctx *Context, factors []Factor, vm *cluster.VM) *cluster.PM {
	defer ctx.Obs.Phase("arrival_place").Time()()
	pms, k, useKernel := ctx.arrivalKernel(factors, vm)
	var best *cluster.PM
	bestP := 0.0
	for r, pm := range pms {
		var p float64
		if useKernel {
			p = k.cell(r, 0, pm, vm, false)
		} else {
			p = Joint(ctx, factors, vm, pm, false)
		}
		if p > bestP {
			bestP, best = p, pm
		}
	}
	return best
}

// arrivalKernel assembles the active-PM row set and single-column kernel
// for one arrival evaluation out of the Context's arrival scratch, so the
// per-event cost is the argmax pass itself rather than slice and map
// construction.
func (ctx *Context) arrivalKernel(factors []Factor, vm *cluster.VM) ([]*cluster.PM, *kernel, bool) {
	ctx.arr.pms = ctx.DC.AppendActivePMs(ctx.arr.pms[:0])
	ctx.arr.vmBuf[0] = vm
	k, useKernel := newKernelInto(&ctx.arr.ks, ctx, factors, ctx.arr.pms, ctx.arr.vmBuf[:])
	return ctx.arr.pms, k, useKernel
}
