package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// smallDC builds a 2-fast + 2-slow datacenter with all PMs on.
func smallDC() *cluster.Datacenter {
	fast := cluster.FastClass
	slow := cluster.SlowClass
	dc := cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 2},
			{Class: &slow, Count: 2},
		},
	})
	for _, p := range dc.PMs() {
		p.State = cluster.PMOn
	}
	return dc
}

func mustHost(t *testing.T, pm *cluster.PM, vm *cluster.VM) {
	t.Helper()
	if err := pm.Host(vm); err != nil {
		t.Fatal(err)
	}
	vm.State = cluster.VMRunning
}

func TestResourceFactor(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	pm := dc.PM(0) // fast, cap (8,8)
	vm := cluster.NewVM(1, vector.New(6, 6), 1000, 1000, 0)

	if got := (ResourceFactor{}).Probability(ctx, vm, pm, false); got != 1 {
		t.Errorf("fitting VM p_res = %g, want 1", got)
	}
	filler := cluster.NewVM(2, vector.New(4, 4), 1000, 1000, 0)
	mustHost(t, pm, filler)
	if got := (ResourceFactor{}).Probability(ctx, vm, pm, false); got != 0 {
		t.Errorf("non-fitting VM p_res = %g, want 0", got)
	}
	// The current host always scores 1, even "over" capacity checks.
	if got := (ResourceFactor{}).Probability(ctx, filler, pm, true); got != 1 {
		t.Errorf("hosted p_res = %g, want 1", got)
	}
}

func TestVirtualizationFactor(t *testing.T) {
	dc := smallDC()
	pm := dc.PM(0) // fast: T_cre 30 + T_mig 40 = 70 s overhead
	f := VirtualizationFactor{}

	vm := cluster.NewVM(1, vector.New(1, 1), 700, 700, 0)
	ctx := &Context{DC: dc, Now: 0}
	// A new, unplaced VM pays only the creation overhead:
	// T_re = 700, overhead 30: ((700-30)/700)^2.
	wantNew := math.Pow(670.0/700, 2)
	if got := f.Probability(ctx, vm, pm, false); math.Abs(got-wantNew) > 1e-12 {
		t.Errorf("new-VM p_vir = %g, want %g", got, wantNew)
	}
	// Once hosted elsewhere, a migration pays T_cre + T_mig = 70
	// (Eq. 3): ((700-70)/700)^2 = 0.81.
	other := dc.PM(1)
	mustHost(t, other, vm)
	if got := f.Probability(ctx, vm, pm, false); math.Abs(got-0.81) > 1e-12 {
		t.Errorf("migration p_vir = %g, want 0.81", got)
	}
	if got := f.Probability(ctx, vm, pm, true); got != 1 {
		t.Errorf("hosted p_vir = %g, want 1", got)
	}

	// Remaining time exactly equals overhead: no chance to migrate.
	vm2 := cluster.NewVM(2, vector.New(1, 1), 70, 70, 0)
	mustHost(t, dc.PM(2), vm2)
	if got := f.Probability(ctx, vm2, pm, false); got != 0 {
		t.Errorf("boundary p_vir = %g, want 0", got)
	}

	// Remaining shrinks as the VM runs.
	vm.StartTime = 0
	late := &Context{DC: dc, Now: 560} // T_re = 140, ((140-70)/140)^2 = 0.25
	if got := f.Probability(late, vm, pm, false); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("late p_vir = %g, want 0.25", got)
	}
	// After the estimate expires, migration probability is 0.
	expired := &Context{DC: dc, Now: 10000}
	if got := f.Probability(expired, vm, pm, false); got != 0 {
		t.Errorf("expired p_vir = %g, want 0", got)
	}
}

func TestVirtualizationFactorQuadraticPenalty(t *testing.T) {
	// The quadratic form must penalize short-remaining VMs MORE than a
	// linear form would: p(small T_re) decays faster.
	dc := smallDC()
	pm := dc.PM(0)
	f := VirtualizationFactor{}
	ctx := &Context{DC: dc, Now: 0}
	long := cluster.NewVM(1, vector.New(1, 1), 7000, 7000, 0)
	short := cluster.NewVM(2, vector.New(1, 1), 140, 140, 0)
	mustHost(t, dc.PM(1), long) // hosted -> migration overhead applies
	mustHost(t, dc.PM(1), short)
	pl := f.Probability(ctx, long, pm, false)
	ps := f.Probability(ctx, short, pm, false)
	linLong, linShort := (7000.0-70)/7000, (140.0-70)/140
	if !(pl > ps) {
		t.Fatalf("long %g should beat short %g", pl, ps)
	}
	if !(ps/pl < linShort/linLong) {
		t.Errorf("quadratic penalty not steeper than linear: %g vs %g", ps/pl, linShort/linLong)
	}
}

func TestReliabilityFactor(t *testing.T) {
	dc := smallDC()
	pm := dc.PM(0)
	pm.Reliability = 0.7
	got := (ReliabilityFactor{}).Probability(&Context{DC: dc}, nil, pm, false)
	if got != 0.7 {
		t.Errorf("p_rel = %g, want 0.7", got)
	}
}

func TestEfficiencyFactorLevels(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	f := EfficiencyFactor{}
	fast := dc.PM(0) // W_j = 8, eff = 1
	rmin := dc.RMin()

	vm := cluster.NewVM(1, rmin, 1000, 1000, 0)
	// Empty fast PM, prospective level after hosting one minimal VM = 1.
	if got := f.Probability(ctx, vm, fast, false); math.Abs(got-1.0/8) > 1e-12 {
		t.Errorf("empty-PM p_eff = %g, want 1/8", got)
	}

	// Fill with 5 minimal VMs: prospective level 6 -> 6/8.
	for i := cluster.VMID(10); i < 15; i++ {
		mustHost(t, fast, cluster.NewVM(i, rmin, 1000, 1000, 0))
	}
	if got := f.Probability(ctx, vm, fast, false); math.Abs(got-6.0/8) > 1e-12 {
		t.Errorf("busy-PM p_eff = %g, want 6/8", got)
	}

	// Current host: level from current utilization (5 VMs -> level 5).
	hosted := fast.VMs()[0]
	if got := f.Probability(ctx, hosted, fast, true); math.Abs(got-5.0/8) > 1e-12 {
		t.Errorf("hosted p_eff = %g, want 5/8", got)
	}
}

func TestEfficiencyFactorPrefersEfficientClass(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	f := EfficiencyFactor{}
	vm := cluster.NewVM(1, dc.RMin(), 1000, 1000, 0)
	fast := f.Probability(ctx, vm, dc.PM(0), false) // eff 1, level 1/8
	slow := f.Probability(ctx, vm, dc.PM(2), false) // eff 2/3, level 1/4
	// slow: (1/4)*(2/3) = 1/6 > fast 1/8: a *busier-fraction* slow node
	// can outrank an empty fast node — the level term dominates.
	if math.Abs(fast-1.0/8) > 1e-12 || math.Abs(slow-1.0/6) > 1e-12 {
		t.Errorf("fast/slow p_eff = %g/%g, want 0.125/0.1667", fast, slow)
	}
}

func TestJointShortCircuit(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	// A VM that does not fit anywhere scores 0 regardless of the other
	// factors.
	vm := cluster.NewVM(1, vector.New(100, 100), 1000, 1000, 0)
	if got := Joint(ctx, DefaultFactors(), vm, dc.PM(0), false); got != 0 {
		t.Errorf("Joint = %g, want 0", got)
	}
}

func TestJointProductOfFactors(t *testing.T) {
	dc := smallDC()
	ctx := &Context{DC: dc, Now: 0}
	pm := dc.PM(0)
	pm.Reliability = 0.9
	vm := cluster.NewVM(1, dc.RMin(), 700, 700, 0)
	mustHost(t, dc.PM(1), vm) // hosted elsewhere -> full migration overhead
	want := 1.0 * 0.81 * 0.9 * (1.0 / 8)
	if got := Joint(ctx, DefaultFactors(), vm, pm, false); math.Abs(got-want) > 1e-12 {
		t.Errorf("Joint = %g, want %g", got, want)
	}
}

func TestFactorNames(t *testing.T) {
	want := []string{"res", "vir", "rel", "eff"}
	for i, f := range DefaultFactors() {
		if f.Name() != want[i] {
			t.Errorf("factor %d name = %q, want %q", i, f.Name(), want[i])
		}
	}
}

func TestProspectiveUtilizationMatchesVector(t *testing.T) {
	dc := smallDC()
	pm := dc.PM(0)
	mustHost(t, pm, cluster.NewVM(1, vector.New(2, 3), 100, 100, 0))
	d := vector.New(1, 0.5)
	want := vector.Utilization(pm.Used.Add(d), pm.Class.Capacity)
	if got := prospectiveUtilization(pm, d); math.Abs(got-want) > 1e-12 {
		t.Errorf("prospectiveUtilization = %g, want %g", got, want)
	}
}
