package core

import (
	"fmt"

	"repro/internal/cluster"
)

// WANFactor models inter-datacenter migration cost for the multi-
// geographical-datacenter setting of the paper's future work ("VM
// migrations will be performed not only inside a data center but also
// among data centers"). Machines are grouped into sites; migrating a VM
// between sites moves its state across a WAN link, which multiplies the
// effective migration time. The factor applies the same quadratic
// remaining-runtime penalty as Eq. 3, but against the *extra* WAN transfer
// cost, so it composes cleanly with the intra-DC VirtualizationFactor:
//
//	p_ij^wan = 1                                      same site / new VM
//	           ((T_re - T_wan) / T_re)^2              cross-site, feasible
//	           0                                      cross-site, T_re <= T_wan
//
// where T_wan = (WANMultiplier - 1) * T_mig(target) is the additional
// transfer time a WAN migration costs over a LAN one.
type WANFactor struct {
	// SiteOf maps PMs to site names; unmapped PMs belong to DefaultSite.
	SiteOf map[cluster.PMID]string

	// DefaultSite names the site of unmapped PMs.
	DefaultSite string

	// WANMultiplier scales migration time across sites; must be >= 1.
	// A value of 5 means a cross-site migration takes 5x the target's
	// LAN T_mig.
	WANMultiplier float64
}

// NewWANFactor builds the factor; it panics on a multiplier below 1
// (cross-site migration cannot be cheaper than local).
func NewWANFactor(defaultSite string, multiplier float64) *WANFactor {
	if multiplier < 1 {
		panic(fmt.Sprintf("core: WAN multiplier %g < 1", multiplier))
	}
	return &WANFactor{
		SiteOf:        make(map[cluster.PMID]string),
		DefaultSite:   defaultSite,
		WANMultiplier: multiplier,
	}
}

// Assign places a PM in a site.
func (f *WANFactor) Assign(pm cluster.PMID, site string) { f.SiteOf[pm] = site }

// Site returns a PM's site.
func (f *WANFactor) Site(pm cluster.PMID) string {
	if s, ok := f.SiteOf[pm]; ok {
		return s
	}
	return f.DefaultSite
}

// Name implements Factor.
func (*WANFactor) Name() string { return "wan" }

// Probability implements Factor.
func (f *WANFactor) Probability(ctx *Context, vm *cluster.VM, pm *cluster.PM, hosted bool) float64 {
	if hosted || vm.Host == cluster.NoPM {
		return 1 // staying put, or an initial placement with no state to ship
	}
	if f.Site(vm.Host) == f.Site(pm.ID) {
		return 1
	}
	tre := vm.RemainingEstimate(ctx.Now)
	if tre <= 0 {
		return 0
	}
	extra := (f.WANMultiplier - 1) * pm.Class.MigrationTime
	q := (tre - extra) / tre
	if q <= 0 {
		return 0
	}
	return q * q
}
