package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// Steady-state allocation budgets for the placement hot paths. The scratch
// pools (scratch.go) exist so a long simulation's per-event cost is the
// arithmetic, not the garbage: these tests pin that property with asserted
// ceilings, the same way internal/sim pins the event loop's.

// arrivalAllocCeiling bounds allocs per BestPlacement call on a warm
// Context. The argmax itself is allocation-free; the ceiling leaves room
// for incidental runtime allocations (map growth straggling, etc.) without
// letting a per-PM or per-term regression through.
const arrivalAllocCeiling = 2

func TestArrivalAllocBudget(t *testing.T) {
	ctx, _ := tableIIState(t, 200, 400, 7)
	factors := DefaultFactors()
	arrival := cluster.NewVM(cluster.VMID(1<<20), vector.New(2, 1), 5400, 5400, ctx.Now)

	// Warm the scratch and the per-class cache.
	for i := 0; i < 3; i++ {
		if BestPlacement(ctx, factors, arrival) == nil {
			t.Fatal("no placement found")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		BestPlacement(ctx, factors, arrival)
	})
	if avg > arrivalAllocCeiling {
		t.Fatalf("BestPlacement allocates %.2f allocs/op on a warm context, budget %d",
			avg, arrivalAllocCeiling)
	}
}

// consolidateAllocsPerVM bounds the per-column allocation rate of a full
// warm consolidation pass (matrix build + Algorithm 1 rounds + release).
// A cold pass allocates the scratch once; after that the dominant costs
// must reuse it, so the per-VM rate stays well below one.
const consolidateAllocsPerVM = 0.5

func TestConsolidateAllocBudget(t *testing.T) {
	ctx, _ := tableIIState(t, 200, 400, 7)
	factors := DefaultFactors()
	params := DefaultParams()

	// Warm pass: checks out (and sizes) the scratch, executes any
	// profitable moves so later passes are steady-state no-ops.
	if _, err := Consolidate(ctx, factors, params); err != nil {
		t.Fatal(err)
	}
	nVMs := len(ctx.vmBuf)
	if nVMs == 0 {
		t.Fatal("bench state has no running VMs")
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := Consolidate(ctx, factors, params); err != nil {
			t.Fatal(err)
		}
	})
	if perVM := avg / float64(nVMs); perVM > consolidateAllocsPerVM {
		t.Fatalf("Consolidate allocates %.1f allocs/op (%.3f per VM column, budget %.2f) on a warm context",
			avg, perVM, consolidateAllocsPerVM)
	}
}

// TestSlabRowFillAllocBudget pins the slab path's steady-state property:
// once the aligned working slabs have grown to the row width, refilling a
// row allocates nothing at all.
func TestSlabRowFillAllocBudget(t *testing.T) {
	ctx, vms := tableIIState(t, 200, 400, 7)
	m, err := NewMatrixWith(ctx, DefaultFactors(), vms, MatrixOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.kern == nil || m.kern.noSlab {
		t.Fatal("slab path not engaged")
	}
	m.fillRow(0) // warm the row scratch slabs
	r := 0
	avg := testing.AllocsPerRun(100, func() {
		m.fillRow(r % m.Rows())
		r++
	})
	if avg > 0 {
		t.Fatalf("slab row fill allocates %.2f allocs/op on warm scratch, budget 0", avg)
	}
}
