package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the in-run parallelism layer behind MatrixOptions.Workers:
// a process-wide goroutine budget shared with the replication-sweep runner
// (exp.RunSweep) plus the span scheduler the matrix kernels fan out on.
//
// Determinism contract (DESIGN.md §15): every parallel kernel in this
// package is a pure fan-out over independent units — matrix rows, columns,
// or PM shards — whose per-unit computation reads only shared immutable
// state (prewarmed memos) and writes only unit-indexed slots or
// worker-private scratch. Reductions (the sparse Best argmax) use fixed
// contiguous spans with one result slot per span, merged in span order
// under the serial comparison, so the result is bit-identical to the
// serial scan at any worker count. Worker count changes scheduling, never
// values.

// workerTokens is the process-wide budget of *extra* goroutines beyond the
// calling one: GOMAXPROCS-1 tokens. Auto-resolved kernels (Workers == 0)
// spawn only as many workers as they can borrow, so a kernel running under
// a saturated sweep (which borrows its workers' tokens up front) stays
// serial instead of oversubscribing the host. Explicit worker counts
// (Workers > 1) borrow best-effort for accounting but always spawn the
// requested goroutines — an explicit count is an equivalence-testing and
// benchmarking contract, honored even on hosts with fewer cores.
var workerTokens = func() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	ch := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		ch <- struct{}{}
	}
	return ch
}()

// BorrowWorkers takes up to n tokens from the process-wide worker budget
// without blocking and reports how many it got. Callers must pass the
// result to ReturnWorkers when their parallel section ends. The sweep
// runner borrows its worker count so nested kernel auto-parallelism sees a
// drained budget; returning more tokens than were borrowed corrupts the
// budget (ReturnWorkers would block).
func BorrowWorkers(n int) int {
	for got := 0; ; got++ {
		if got >= n {
			return got
		}
		select {
		case <-workerTokens:
		default:
			return got
		}
	}
}

// ReturnWorkers gives back n tokens previously obtained from
// BorrowWorkers.
func ReturnWorkers(n int) {
	for i := 0; i < n; i++ {
		workerTokens <- struct{}{}
	}
}

// claimWorkers resolves a MatrixOptions.Workers request for a loop of
// `items` independent units: the worker count to use and the tokens
// borrowed from the budget (always ReturnWorkers'd by the caller).
// Zero requests auto-size to GOMAXPROCS bounded by the free budget;
// one — the default for small problems — stays strictly serial on the
// calling goroutine; an explicit count above one is honored verbatim
// (capped at items, one worker per unit being the maximum useful
// parallelism).
func claimWorkers(requested, items int) (workers, borrowed int) {
	if items < 1 {
		items = 1
	}
	switch {
	case requested == 1 || items == 1:
		return 1, 0
	case requested > 1:
		w := requested
		if w > items {
			w = items
		}
		if w == 1 {
			return 1, 0
		}
		return w, BorrowWorkers(w - 1)
	default:
		w := runtime.GOMAXPROCS(0)
		if w > items {
			w = items
		}
		if w <= 1 {
			return 1, 0
		}
		borrowed = BorrowWorkers(w - 1)
		return borrowed + 1, borrowed
	}
}

// runSpans executes body over [0, n) split into chunk-sized spans drawn
// from a shared atomic cursor by `workers` goroutines (the calling
// goroutine is one of them). Which worker claims which span is
// nondeterministic, so body must confine its writes to element-indexed
// state of its own span plus scratch keyed by the worker argument — the
// discipline every kernel in this package follows.
func runSpans(workers, n, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n <= chunk {
		body(0, 0, n)
		return
	}
	var cursor atomic.Int64
	work := func(w int) {
		for {
			lo := int(cursor.Add(1)-1) * chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(w, lo, hi)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	work(0)
	wg.Wait()
}

// spanChunk picks a span size for n units over w workers: several spans
// per worker keep the load balanced when unit costs vary, without paying
// one cursor bump per unit.
func spanChunk(n, w int) int {
	chunk := n / (w * 8)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// Parallel runs the given functions concurrently (the calling goroutine
// executes the first) and returns when all have finished. It exists for
// coarse-grained fan-out of a fixed handful of independent jobs — the
// auditor's differential rebuilds — where each job already owns its state;
// the budget is charged best-effort for accounting, but all functions
// always run concurrently (they would otherwise serialize an audit that is
// pure overlap).
func Parallel(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 {
		fns[0]()
		return
	}
	borrowed := BorrowWorkers(len(fns) - 1)
	defer ReturnWorkers(borrowed)
	var wg sync.WaitGroup
	for _, fn := range fns[1:] {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}
