package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic teletraffic table values.
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{5, 3, 0.11005},
		{10, 5, 0.018385},
	}
	for _, tc := range cases {
		got := ErlangB(tc.c, tc.a)
		if math.Abs(got-tc.want) > 2e-5 {
			t.Errorf("ErlangB(%d, %g) = %.6f, want %.5f", tc.c, tc.a, got, tc.want)
		}
	}
}

func TestErlangBEdges(t *testing.T) {
	if got := ErlangB(5, 0); got != 0 {
		t.Errorf("zero load blocking = %g", got)
	}
	if got := ErlangB(0, 2); got != 1 {
		t.Errorf("zero servers blocking = %g", got)
	}
}

func TestErlangBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ErlangB(-1, 1)
}

func TestErlangCKnownValues(t *testing.T) {
	// C(c,a) from B via the standard identity; spot-check c=2, a=1:
	// B = 0.2, C = 2*0.2 / (2 - 1*0.8) = 1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ErlangC(2,1) = %g, want 1/3", got)
	}
	// Single server: C(1, a) = a for a < 1 (waiting prob = utilization).
	if got := ErlangC(1, 0.6); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("ErlangC(1,0.6) = %g, want 0.6", got)
	}
}

func TestErlangCOverload(t *testing.T) {
	if got := ErlangC(4, 4); got != 1 {
		t.Errorf("saturated C = %g, want 1", got)
	}
	if got := ErlangC(4, 9); got != 1 {
		t.Errorf("overloaded C = %g, want 1", got)
	}
	if got := ErlangC(0, 0); got != 0 {
		t.Errorf("empty system C = %g", got)
	}
	if got := ErlangC(0, 1); got != 1 {
		t.Errorf("no servers C = %g", got)
	}
}

func TestMeanWaitMM_c(t *testing.T) {
	// M/M/1 with rho = 0.5: W_q = rho / (mu - lambda) = 0.5/(1-0.5) = 1.
	if got := MeanWaitMM_c(1, 0.5, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("M/M/1 wait = %g, want 1", got)
	}
	if got := MeanWaitMM_c(2, 0, 1); got != 0 {
		t.Errorf("no-arrival wait = %g", got)
	}
	if got := MeanWaitMM_c(1, 2, 1); !math.IsInf(got, 1) {
		t.Errorf("overload wait = %g, want +Inf", got)
	}
}

func TestServersForWaitProbability(t *testing.T) {
	a := 20.0
	c := ServersForWaitProbability(a, 0.05)
	if ErlangC(c, a) > 0.05 {
		t.Errorf("c = %d does not meet target", c)
	}
	if c > int(a) && ErlangC(c-1, a) <= 0.05 {
		t.Errorf("c = %d not minimal", c)
	}
	if got := ServersForWaitProbability(0, 0.05); got != 0 {
		t.Errorf("zero-load servers = %d", got)
	}
}

func TestServersForWaitProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ServersForWaitProbability(5, 0)
}

// TestErlangEdgeTable sweeps the formulas across the regimes the QoS
// cross-check can hit at runtime: empty systems, saturation, deep
// overload, and pools far larger than the paper's fleet. Exact values
// (where the teletraffic tables give one) use NaN as "property-check
// only" sentinel otherwise; every row must still yield probabilities
// with C >= B.
func TestErlangEdgeTable(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name         string
		c            int
		a            float64
		wantB, wantC float64
	}{
		{"zero servers, zero load", 0, 0, 0, 0},
		{"zero servers, positive load", 0, 3, 1, 1},
		{"zero load", 8, 0, 0, 0},
		{"load equals servers", 4, 4, 0.31068, 1},
		{"load exceeds servers", 2, 10, 0.81967, 1},
		{"deep overload", 10, 1e6, nan, 1},
		{"large stable pool", 1000, 900, nan, nan},
		{"large pool near saturation", 1000, 999.5, nan, nan},
		{"very large pool", 10000, 9000, nan, nan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, c := ErlangB(tc.c, tc.a), ErlangC(tc.c, tc.a)
			for name, v := range map[string]float64{"B": b, "C": c} {
				if math.IsNaN(v) || v < 0 || v > 1 {
					t.Errorf("Erlang%s(%d, %g) = %g, not a probability", name, tc.c, tc.a, v)
				}
			}
			if c < b-1e-12 {
				t.Errorf("C (%g) < B (%g): waiting system cannot beat loss system", c, b)
			}
			if !math.IsNaN(tc.wantB) && math.Abs(b-tc.wantB) > 2e-5 {
				t.Errorf("ErlangB(%d, %g) = %.6f, want %.5f", tc.c, tc.a, b, tc.wantB)
			}
			if !math.IsNaN(tc.wantC) && math.Abs(c-tc.wantC) > 2e-5 {
				t.Errorf("ErlangC(%d, %g) = %.6f, want %.5f", tc.c, tc.a, c, tc.wantC)
			}
		})
	}
}

// TestLargeNStability exercises the recurrence at fleet sizes three
// orders of magnitude past Table II: the results must stay finite,
// monotone in c, and the sizing search must still terminate minimally.
func TestLargeNStability(t *testing.T) {
	if w := MeanWaitMM_c(1000, 900, 1); math.IsNaN(w) || w < 0 || math.IsInf(w, 0) {
		t.Errorf("large-pool mean wait = %g, want finite non-negative", w)
	}
	if c1, c2 := ErlangC(1000, 900), ErlangC(1100, 900); c2 > c1+1e-12 {
		t.Errorf("adding servers increased wait probability: %g -> %g", c1, c2)
	}
	a := 500.0
	c := ServersForWaitProbability(a, 0.05)
	if c < int(a) {
		t.Errorf("sizing returned %d servers for %g Erlangs: unstable", c, a)
	}
	if ErlangC(c, a) > 0.05 {
		t.Errorf("c = %d does not meet the 5%% target", c)
	}
	if ErlangC(c-1, a) <= 0.05 {
		t.Errorf("c = %d not minimal", c)
	}
}

// Property: Erlang B and C are probabilities, C >= B (a waiting system
// holds arrivals a loss system would drop), and both decrease as servers
// are added.
func TestQuickErlangProperties(t *testing.T) {
	f := func(cRaw, aRaw uint8) bool {
		c := int(cRaw%50) + 1
		a := float64(aRaw) / 8
		b1, c1 := ErlangB(c, a), ErlangC(c, a)
		b2, c2 := ErlangB(c+1, a), ErlangC(c+1, a)
		if b1 < 0 || b1 > 1 || c1 < 0 || c1 > 1 {
			return false
		}
		if c1 < b1-1e-12 {
			return false
		}
		return b2 <= b1+1e-12 && c2 <= c1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
