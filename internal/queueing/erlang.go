// Package queueing provides the classical Erlang formulas for
// capacity-driven waiting and loss in multi-server systems. The experiment
// harness uses them as an analytic cross-check on the simulator's QoS
// numbers: treating the fleet's cores as an M/M/c server pool, Erlang C
// gives the probability a request would wait *due to capacity alone*.
// Comparing that against the simulator's observed queueing isolates how
// much waiting is capacity (should match Erlang C) versus boot latency
// (the part the spare-server controller exists to remove).
package queueing

import (
	"fmt"
	"math"
)

// ErlangB returns the blocking probability of an M/M/c/c loss system with
// offered load a (in Erlangs, a = λ * mean service time) and c servers,
// using the numerically stable recurrence
//
//	B(0, a) = 1;  B(k, a) = a*B(k-1, a) / (k + a*B(k-1, a))
//
// It panics on a < 0 or c < 0 (programming errors, not runtime inputs).
func ErlangB(c int, a float64) float64 {
	if a < 0 || c < 0 {
		panic(fmt.Sprintf("queueing: invalid ErlangB args c=%d a=%g", c, a))
	}
	if a == 0 {
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the probability that an arrival must wait in an M/M/c
// queueing system with offered load a Erlangs and c servers, derived from
// Erlang B via
//
//	C(c, a) = c*B / (c - a*(1 - B))
//
// For a >= c (overload) the wait probability is 1: the queue grows without
// bound.
func ErlangC(c int, a float64) float64 {
	if a < 0 || c < 0 {
		panic(fmt.Sprintf("queueing: invalid ErlangC args c=%d a=%g", c, a))
	}
	if c == 0 {
		if a > 0 {
			return 1
		}
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	b := ErlangB(c, a)
	return float64(c) * b / (float64(c) - a*(1-b))
}

// MeanWaitMM_c returns the expected waiting time in queue for an M/M/c
// system: W_q = C(c, a) / (c*mu - lambda), with service rate mu per server
// and arrival rate lambda (so a = lambda/mu). Returns +Inf at or beyond
// saturation.
func MeanWaitMM_c(c int, lambda, mu float64) float64 {
	if lambda < 0 || mu <= 0 || c < 0 {
		panic(fmt.Sprintf("queueing: invalid MeanWaitMM_c args c=%d lambda=%g mu=%g", c, lambda, mu))
	}
	if lambda == 0 {
		return 0
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	return ErlangC(c, a) / (float64(c)*mu - lambda)
}

// ServersForWaitProbability returns the smallest server count c such that
// the M/M/c waiting probability is at or below target — an analytic
// counterpart to the paper's spare-server sizing (how many *slots* the
// fleet must keep live for a given QoS bound).
func ServersForWaitProbability(a, target float64) int {
	if !(target > 0 && target < 1) {
		panic(fmt.Sprintf("queueing: target %g not in (0,1)", target))
	}
	if a <= 0 {
		return 0
	}
	c := int(math.Ceil(a)) // below this the system is unstable
	for ; ; c++ {
		if ErlangC(c, a) <= target {
			return c
		}
	}
}
