package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func testMeta() Meta {
	return Meta{
		Scheme: "dynamic", FleetSize: 8, ClassDigest: "abc", Requests: 3,
		WorkloadDigest: "def", ControlPeriod: 3600, MeterBin: 3600,
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	type payload struct {
		N int     `json:"n"`
		X float64 `json:"x"`
	}
	var buf bytes.Buffer
	if err := Write(&buf, testMeta(), payload{N: 7, X: 0.1}); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Magic != Magic || f.Version != Version {
		t.Fatalf("envelope header mangled: %+v", f)
	}
	if err := f.CheckMeta(testMeta()); err != nil {
		t.Fatal(err)
	}
	want := testMeta()
	want.Scheme = "first-fit"
	if err := f.CheckMeta(want); err == nil {
		t.Fatal("CheckMeta accepted a different scheme")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "hello world",
		"wrong magic":   `{"magic":"something-else","version":1,"meta":{},"state":{}}`,
		"zero version":  `{"magic":"` + Magic + `","version":0,"meta":{},"state":{}}`,
		"old version":   `{"magic":"` + Magic + `","version":-3,"meta":{},"state":{}}`,
		"future":        `{"magic":"` + Magic + `","version":2,"meta":{},"state":{}}`,
		"missing state": `{"magic":"` + Magic + `","version":1,"meta":{}}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted %q", name, in)
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	state := map[string]float64{"t": 1.5}
	if err := Write(&a, testMeta(), state); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, testMeta(), state); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of identical state differ")
	}
}

func TestDigestsDistinguish(t *testing.T) {
	fast := cluster.FastClass
	slow := cluster.SlowClass
	dcA := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 2}, {Class: &slow, Count: 2}},
	})
	dcB := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 3}, {Class: &slow, Count: 1}},
	})
	if ClassDigest(dcA) == ClassDigest(dcB) {
		t.Fatal("different fleets digest equal")
	}
	// Same shape built twice (distinct class pointers) digests equal.
	fast2 := cluster.FastClass
	slow2 := cluster.SlowClass
	dcA2 := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast2, Count: 2}, {Class: &slow2, Count: 2}},
	})
	if ClassDigest(dcA) != ClassDigest(dcA2) {
		t.Fatal("identical fleets digest differently")
	}

	reqsA := []workload.Request{{JobID: 1, Submit: 0, CPUCores: 1, MemoryGB: 0.5, EstimatedRunTime: 10, RunTime: 9}}
	reqsB := []workload.Request{{JobID: 1, Submit: 0, CPUCores: 1, MemoryGB: 0.5, EstimatedRunTime: 10, RunTime: 8}}
	if WorkloadDigest(reqsA) == WorkloadDigest(reqsB) {
		t.Fatal("different workloads digest equal")
	}
	if WorkloadDigest(reqsA) != WorkloadDigest(append([]workload.Request(nil), reqsA...)) {
		t.Fatal("identical workloads digest differently")
	}
}
