// Package snapshot defines the self-describing checkpoint envelope the
// simulator writes and restores. The envelope is versioned JSON: a magic
// string and format version guard against feeding the loader a foreign or
// stale file, and a compatibility fingerprint (Meta) ties a checkpoint to
// the run configuration that produced it — scheme, fleet, workload, and
// the control knobs that change event timing. The simulation-state payload
// itself is opaque to this package (the sim layer owns its schema); it is
// carried as raw JSON so the envelope can be checked without decoding it.
//
// Encoding is plain encoding/json: float64 values marshal in
// shortest-round-trip form and struct fields in declaration order, so
// writing the same state twice produces byte-identical files — the
// property the snapshot auditor's save→load→save comparison and the
// committed golden fixture both rely on.
package snapshot

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// Magic identifies a dvmpsim checkpoint file.
const Magic = "dvmps-checkpoint"

// Version is the current checkpoint format version. Bump it whenever the
// envelope or the sim state schema changes shape or meaning; the loader
// rejects any other version.
const Version = 1

// Meta is the compatibility fingerprint of the run configuration. A
// checkpoint may only be restored under a configuration whose Meta is
// identical: resuming a run under a different scheme, fleet, workload, or
// control cadence would not crash, it would silently produce a trace that
// diverges from the interrupted run — exactly the failure mode checkpoints
// exist to prevent.
type Meta struct {
	Scheme          string  `json:"scheme"`
	FleetSize       int     `json:"fleet_size"`
	ClassDigest     string  `json:"class_digest"`
	Requests        int     `json:"requests"`
	WorkloadDigest  string  `json:"workload_digest"`
	ControlPeriod   float64 `json:"control_period"`
	MeterBin        float64 `json:"meter_bin"`
	TimedMigrations bool    `json:"timed_migrations"`
	Spare           bool    `json:"spare"`
	Failures        bool    `json:"failures"`
}

// File is the checkpoint envelope.
type File struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	Meta    Meta            `json:"meta"`
	State   json.RawMessage `json:"state"`
}

// Write marshals state and wraps it in a versioned envelope on w.
func Write(w io.Writer, meta Meta, state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("snapshot: encode state: %w", err)
	}
	out, err := json.Marshal(File{Magic: Magic, Version: Version, Meta: meta, State: raw})
	if err != nil {
		return fmt.Errorf("snapshot: encode envelope: %w", err)
	}
	out = append(out, '\n')
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("snapshot: write: %w", err)
	}
	return nil
}

// Read decodes the envelope from r and validates magic and version. The
// state payload is returned raw for the owner to decode.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if f.Magic != Magic {
		return nil, fmt.Errorf("snapshot: not a checkpoint file (magic %q, want %q)", f.Magic, Magic)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("snapshot: format version %d not supported (this build reads version %d)", f.Version, Version)
	}
	if len(f.State) == 0 {
		return nil, fmt.Errorf("snapshot: envelope carries no state")
	}
	return &f, nil
}

// CheckMeta verifies the checkpoint was produced by a run configuration
// fingerprint-identical to want.
func (f *File) CheckMeta(want Meta) error {
	if f.Meta == want {
		return nil
	}
	return fmt.Errorf("snapshot: checkpoint is for a different run configuration:\n  checkpoint: %+v\n  current:    %+v", f.Meta, want)
}

// ClassDigest fingerprints the fleet: every PM's ID and its class's full
// parameter set, in fleet order. Two datacenters digest equal exactly when
// the simulation cannot tell them apart at construction time.
func ClassDigest(dc *cluster.Datacenter) string {
	h := fnv.New64a()
	for _, pm := range dc.PMs() {
		c := pm.Class
		fmt.Fprintf(h, "%d|%s|%v|%g|%g|%g|%g|%g|%g\n",
			pm.ID, c.Name, c.Capacity, c.CreationTime, c.MigrationTime,
			c.OnOffOverhead, c.ActivePower, c.IdlePower, c.Reliability)
	}
	fmt.Fprintf(h, "rmin=%v\n", dc.RMinShared())
	return fmt.Sprintf("%016x", h.Sum64())
}

// WorkloadDigest fingerprints the request sequence the run was built
// from. VM IDs are assigned by request index, so an identical digest means
// identical arrival events.
func WorkloadDigest(reqs []workload.Request) string {
	h := fnv.New64a()
	for _, r := range reqs {
		fmt.Fprintf(h, "%d|%d|%g|%g|%g|%g|%g\n",
			r.JobID, r.Index, r.Submit, r.CPUCores, r.MemoryGB, r.EstimatedRunTime, r.RunTime)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
