package spare

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vector"
)

func testDC() *cluster.Datacenter {
	fast := cluster.FastClass
	return cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 10}},
	})
}

func runVM(t *testing.T, dc *cluster.Datacenter, pm cluster.PMID, id cluster.VMID, start, est float64) *cluster.VM {
	t.Helper()
	vm := cluster.NewVM(id, vector.New(1, 0.5), est, est, start)
	dc.PM(pm).State = cluster.PMOn
	if err := dc.PM(pm).Host(vm); err != nil {
		t.Fatal(err)
	}
	vm.State = cluster.VMRunning
	vm.StartTime = start
	return vm
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.Cycle = -1 },
		func(c *Config) { c.MaxSpares = -1 },
		func(c *Config) { c.NAveFallback = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewControllerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewController(Config{})
}

func TestPredictDepartures(t *testing.T) {
	dc := testDC()
	runVM(t, dc, 0, 1, 0, 1000)  // remaining 1000 at t=500 -> departs
	runVM(t, dc, 0, 2, 0, 10000) // remaining 9500 -> stays
	runVM(t, dc, 1, 3, 400, 500) // remaining 400 -> departs
	if got := PredictDepartures(dc, 500, 3600); got != 2 {
		t.Errorf("departures = %d, want 2", got)
	}
}

func TestPredictDeparturesIgnoresNonRunning(t *testing.T) {
	dc := testDC()
	vm := runVM(t, dc, 0, 1, 0, 100)
	vm.State = cluster.VMCreating
	if got := PredictDepartures(dc, 0, 3600); got != 0 {
		t.Errorf("creating VM predicted to depart: %d", got)
	}
	vm.State = cluster.VMMigrating
	if got := PredictDepartures(dc, 0, 3600); got != 1 {
		t.Errorf("migrating VM should count: %d", got)
	}
}

func TestPlanNoSparesWhenDeparturesDominate(t *testing.T) {
	c := NewController(DefaultConfig())
	dc := testDC()
	// Many imminent departures, no recorded arrivals.
	for i := cluster.VMID(0); i < 5; i++ {
		runVM(t, dc, cluster.PMID(i%3), i, 0, 60)
	}
	p := c.PlanSpares(100, dc)
	if p.Spares != 0 {
		t.Errorf("spares = %d, want 0 (Eq. 8 negative branch)", p.Spares)
	}
	if p.NDeparture != 5 {
		t.Errorf("NDeparture = %d, want 5", p.NDeparture)
	}
}

func TestPlanSparesScaleWithArrivalRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cycle = 86400
	c := NewController(cfg)
	dc := testDC()
	// Uniform heavy arrivals: 24/hour for 2 days.
	r := stats.NewRand(1)
	for d := 0; d < 2; d++ {
		for i := 0; i < 24*24; i++ {
			c.RecordArrival(float64(d)*86400 + r.Float64()*86400)
		}
	}
	now := 2.0 * 86400
	p := c.PlanSpares(now, dc)
	// ~24 expected arrivals; Poisson 95% quantile ~ 32; N_Ave fallback 1.
	if p.ExpectedArrivals < 18 || p.ExpectedArrivals > 30 {
		t.Errorf("expected arrivals = %g, want ~24", p.ExpectedArrivals)
	}
	if float64(p.NArrival) < p.ExpectedArrivals {
		t.Errorf("quantile %d below mean %g", p.NArrival, p.ExpectedArrivals)
	}
	if p.Spares != dc.Size() {
		t.Errorf("spares = %d, want capped at fleet size %d", p.Spares, dc.Size())
	}
}

func TestPlanDividesByNAve(t *testing.T) {
	cfg := DefaultConfig()
	c := NewController(cfg)
	dc := testDC()
	// N_Ave = 4: one PM hosting 4 long-running VMs.
	for i := cluster.VMID(0); i < 4; i++ {
		runVM(t, dc, 0, i, 0, 1e6)
	}
	// Steady 8 arrivals/hour for 1 day -> expect ~8, quantile ~13.
	for i := 0; i < 8*24; i++ {
		c.RecordArrival(float64(i) * 86400 / (8 * 24))
	}
	p := c.PlanSpares(86400, dc)
	if p.NAve != 4 {
		t.Fatalf("NAve = %g, want 4", p.NAve)
	}
	wantSpares := int(math.Ceil(float64(p.NArrival-p.NDeparture) / 4))
	if p.Spares != wantSpares {
		t.Errorf("spares = %d, want %d", p.Spares, wantSpares)
	}
	if p.Spares < 2 || p.Spares > 5 {
		t.Errorf("spares = %d, expected a small positive count", p.Spares)
	}
}

func TestPlanMaxSparesCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSpares = 2
	c := NewController(cfg)
	dc := testDC()
	for i := 0; i < 1000; i++ {
		c.RecordArrival(float64(i) * 86.4)
	}
	p := c.PlanSpares(86400, dc)
	if p.Spares != 2 {
		t.Errorf("spares = %d, want capped 2", p.Spares)
	}
}

func TestPlanQoSTailBound(t *testing.T) {
	// The chosen n_arrival must satisfy P(N > n) <= alpha for the
	// estimated mean.
	cfg := DefaultConfig()
	c := NewController(cfg)
	dc := testDC()
	for i := 0; i < 480; i++ { // 20/hour over a day
		c.RecordArrival(float64(i) * 180)
	}
	p := c.PlanSpares(86400, dc)
	tail := 1 - stats.PoissonCDF(p.ExpectedArrivals, p.NArrival)
	if tail > cfg.Alpha+1e-9 {
		t.Errorf("P(N > %d) = %g exceeds alpha %g", p.NArrival, tail, cfg.Alpha)
	}
}

func TestPlanColdStart(t *testing.T) {
	c := NewController(DefaultConfig())
	dc := testDC()
	p := c.PlanSpares(0, dc)
	if p.Spares != 0 || p.NArrival != 0 {
		t.Errorf("cold-start plan = %+v, want zeros", p)
	}
}

func TestChurnAwareReducesSpares(t *testing.T) {
	// High arrival rate of very short tasks: Eq. 8 predicts large net
	// growth, the churn-aware correction recognizes the arrivals mostly
	// depart within the period too.
	build := func(churn bool) Plan {
		cfg := DefaultConfig()
		cfg.ChurnAware = churn
		c := NewController(cfg)
		for i := 0; i < 24*120; i++ { // 120 arrivals/hour for a day
			c.RecordArrival(float64(i) * 30)
		}
		for i := 0; i < 500; i++ {
			c.RecordCompletion(480) // 8-minute tasks
		}
		dc := testDC()
		// A few long runners so N_ave is realistic.
		for i := cluster.VMID(0); i < 6; i++ {
			runVM(t, dc, cluster.PMID(i%3), i, 0, 1e6)
		}
		return c.PlanSpares(86400, dc)
	}
	paper := build(false)
	churn := build(true)
	if churn.Spares >= paper.Spares {
		t.Errorf("churn-aware spares %d not below paper's %d", churn.Spares, paper.Spares)
	}
	if churn.Spares < 0 {
		t.Error("negative spares")
	}
	// With 8-minute tasks and T = 1 h the correction saturates: nearly
	// every predicted arrival departs within the period.
	if churn.NDeparture < paper.NArrival {
		t.Errorf("churn departure %d below arrival quantile %d", churn.NDeparture, paper.NArrival)
	}
}

func TestChurnAwareNoCompletionsFallsBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChurnAware = true
	c := NewController(cfg)
	for i := 0; i < 480; i++ {
		c.RecordArrival(float64(i) * 180)
	}
	dc := testDC()
	// Without completion data the correction is inert (MeanRuntime 0).
	p := c.PlanSpares(86400, dc)
	if p.NDeparture != 0 {
		t.Errorf("NDeparture = %d with no data", p.NDeparture)
	}
	if c.MeanRuntime() != 0 {
		t.Error("MeanRuntime without completions should be 0")
	}
	c.RecordCompletion(-5) // ignored
	if c.MeanRuntime() != 0 {
		t.Error("negative runtime recorded")
	}
}

func TestPlanDeparturesExceedArrivals(t *testing.T) {
	// Both sides of Eq. 8 non-zero, departures larger: a modest arrival
	// rate (so n_arrival > 0) against a fleet full of imminently
	// finishing VMs. The negative difference must clamp to zero spares,
	// never underflow into booting machines for demand that is shrinking.
	c := NewController(DefaultConfig())
	for i := 0; i < 24*4; i++ { // 4 arrivals/hour for a day
		c.RecordArrival(float64(i) * 900)
	}
	dc := testDC()
	for i := cluster.VMID(0); i < 30; i++ {
		runVM(t, dc, cluster.PMID(i%5), i, 0, 600) // all depart within T
	}
	p := c.PlanSpares(86400, dc)
	if p.NArrival <= 0 {
		t.Fatalf("NArrival = %d, want positive (test needs both sides live)", p.NArrival)
	}
	if p.NDeparture <= p.NArrival {
		t.Fatalf("NDeparture %d not above NArrival %d; fixture broken", p.NDeparture, p.NArrival)
	}
	if p.Spares != 0 {
		t.Errorf("spares = %d, want 0 when departures dominate", p.Spares)
	}
}
