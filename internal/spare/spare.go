// Package spare implements the paper's spare-server controller
// (Section IV): every control period T it decides how many idle PMs to
// keep powered on so that unexpected arrivals do not queue, while letting
// the consolidation scheme switch everything else off.
//
// The controller models incoming VM requests as a non-homogeneous Poisson
// process. Each period it:
//
//  1. estimates Λ(t, t+T), the expected arrivals in the next period, with
//     the Leemis nonparametric estimator (internal/nhpp);
//  2. picks n_arrival as the smallest n with P(N > n) <= alpha, the QoS
//     bound (the paper uses alpha = 0.05: "less than 5% of VM requests
//     have to wait in the queue because of insufficient PMs");
//  3. derives n_departure from the runtime estimates of running VMs;
//  4. sets N_spare = ceil((n_arrival - n_departure) / N_Ave) when arrivals
//     exceed departures, else 0 (Eq. 8), where N_Ave is the average number
//     of VMs a non-idle PM hosts.
package spare

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/nhpp"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Config parameterizes the controller.
type Config struct {
	// Period is the control period T in seconds (3600 in the paper's
	// hourly evaluation).
	Period float64

	// Alpha is the QoS tail bound: P(arrivals > n_arrival) <= Alpha.
	Alpha float64

	// Cycle is the workload's periodicity fed to the NHPP estimator
	// (86400 for daily cycles).
	Cycle float64

	// MaxSpares caps the number of spare servers (0 = no cap beyond the
	// fleet size). A cap protects against estimator blow-ups early in a
	// run.
	MaxSpares int

	// NAveFallback seeds N_Ave before any VM has run.
	NAveFallback float64

	// ChurnAware enables the corrected departure estimate (an
	// improvement over the paper's Eq. 8 motivated by the E-R2 study in
	// EXPERIMENTS.md). The paper's n_departure counts only *currently
	// running* VMs that finish within T; when typical task lifetimes
	// are short relative to T, most of the predicted arrivals also
	// depart again within the period, so Eq. 8 wildly overestimates net
	// growth. The churn-aware estimate adds the expected within-period
	// completions of the arrivals themselves, using the observed mean
	// runtime of recently finished VMs:
	//
	//	n_departure' = n_departure + n_arrival * min(1, T / (2*meanRun))
	//
	// (an arriving task lands uniformly within the period, so it has
	// T/2 expected residual window; tasks shorter than that finish).
	ChurnAware bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Period:       3600,
		Alpha:        0.05,
		Cycle:        86400,
		NAveFallback: 1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("spare: period must be positive, got %g", c.Period)
	}
	if !(c.Alpha > 0 && c.Alpha < 1) {
		return fmt.Errorf("spare: alpha %g not in (0,1)", c.Alpha)
	}
	if c.Cycle <= 0 {
		return fmt.Errorf("spare: cycle must be positive, got %g", c.Cycle)
	}
	if c.MaxSpares < 0 {
		return fmt.Errorf("spare: negative spare cap")
	}
	if c.NAveFallback <= 0 {
		return fmt.Errorf("spare: N_Ave fallback must be positive")
	}
	return nil
}

// Controller tracks arrivals and produces spare-server plans.
type Controller struct {
	cfg Config
	est *nhpp.Estimator

	// Obs, when non-nil, receives the spare_plan timing span and the
	// controller's decision metrics (plans made, current spare target).
	// The simulator sets it from sim.Config.Obs.
	Obs *obs.Observer

	// runtime statistics of completed VMs, for the churn-aware
	// departure correction.
	runSum   float64
	runCount int
}

// NewController builds a controller; it panics on invalid configuration
// (configurations are static and author-supplied).
func NewController(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{cfg: cfg, est: nhpp.New(cfg.Cycle)}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// RecordArrival feeds one VM-request arrival at time t into the NHPP
// estimator.
func (c *Controller) RecordArrival(t float64) { c.est.Observe(t) }

// State is the controller's serializable learning state: the NHPP
// observation window plus the completed-runtime accumulator behind the
// churn-aware departure correction.
type State struct {
	NHPP     nhpp.State `json:"nhpp"`
	RunSum   float64    `json:"run_sum"`
	RunCount int        `json:"run_count"`
}

// State captures the controller's learning state for a checkpoint.
func (c *Controller) State() State {
	return State{NHPP: c.est.State(), RunSum: c.runSum, RunCount: c.runCount}
}

// RestoreState reloads a checkpointed learning state into the controller,
// replacing whatever it had accumulated.
func (c *Controller) RestoreState(st State) error {
	if st.RunCount < 0 || st.RunSum < 0 {
		return fmt.Errorf("spare: negative runtime accumulator (%g over %d)", st.RunSum, st.RunCount)
	}
	est, err := nhpp.Restore(c.cfg.Cycle, st.NHPP)
	if err != nil {
		return err
	}
	c.est = est
	c.runSum = st.RunSum
	c.runCount = st.RunCount
	return nil
}

// RecordCompletion feeds one finished VM's actual runtime into the
// churn-aware departure model. Harmless to call when ChurnAware is off.
func (c *Controller) RecordCompletion(runtime float64) {
	if runtime > 0 {
		c.runSum += runtime
		c.runCount++
	}
}

// MeanRuntime returns the observed mean runtime of completed VMs, or 0
// before any completion.
func (c *Controller) MeanRuntime() float64 {
	if c.runCount == 0 {
		return 0
	}
	return c.runSum / float64(c.runCount)
}

// Plan is the controller's decision for one control period.
type Plan struct {
	// At is the decision time t.
	At float64

	// ExpectedArrivals is Λ̂(t, t+T).
	ExpectedArrivals float64

	// NArrival is the QoS-quantile arrival count (step 2 above).
	NArrival int

	// NDeparture is the number of VMs predicted to finish within the
	// period from their submitted runtime estimates (plus, when
	// ChurnAware is on, the expected within-period completions of the
	// predicted arrivals themselves).
	NDeparture int

	// NAve is the average-VMs-per-PM divisor used.
	NAve float64

	// Spares is N_spare, the number of idle PMs to keep (or bring) on.
	Spares int
}

// PlanSpares computes the spare-server plan at time now for the next
// control period. dc supplies departure predictions (via VM runtime
// estimates) and N_Ave.
func (c *Controller) PlanSpares(now float64, dc *cluster.Datacenter) Plan {
	defer c.Obs.Phase("spare_plan").Time()()
	c.est.Advance(now)
	p := Plan{At: now}
	p.ExpectedArrivals = c.est.CumulativeIntensity(now, now+c.cfg.Period)
	p.NArrival = stats.PoissonQuantile(p.ExpectedArrivals, c.cfg.Alpha)
	p.NDeparture = PredictDepartures(dc, now, c.cfg.Period)
	if c.cfg.ChurnAware {
		if mean := c.MeanRuntime(); mean > 0 {
			frac := c.cfg.Period / (2 * mean)
			if frac > 1 {
				frac = 1
			}
			p.NDeparture += int(float64(p.NArrival) * frac)
		}
	}
	p.NAve = dc.AverageVMsPerPM(c.cfg.NAveFallback)

	if diff := p.NArrival - p.NDeparture; diff > 0 && p.NAve > 0 {
		p.Spares = int(math.Ceil(float64(diff) / p.NAve))
	}
	if c.cfg.MaxSpares > 0 && p.Spares > c.cfg.MaxSpares {
		p.Spares = c.cfg.MaxSpares
	}
	if p.Spares > dc.Size() {
		p.Spares = dc.Size()
	}
	c.Obs.Add("spare.plans", 1)
	c.Obs.SetGauge("spare.target", float64(p.Spares))
	return p
}

// PredictDepartures returns n_departure(t, t+T): how many running VMs are
// expected to finish within the window according to their submitted
// runtime estimates ("it can be easily derived, since each VM request is
// submitted with an estimated running time", Section IV).
func PredictDepartures(dc *cluster.Datacenter, now, period float64) int {
	// CountVMs rather than materializing RunningVMs: the prediction runs
	// every control period and only needs a count, not a sorted slice.
	return dc.CountVMs(func(vm *cluster.VM) bool {
		if vm.State != cluster.VMRunning && vm.State != cluster.VMMigrating {
			return false
		}
		return vm.RemainingEstimate(now) <= period
	})
}
