package stats

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoStdlibRandAnywhere enforces the checkpoint layer's RNG contract
// repo-wide: every random draw must flow through stats.Stream (explicitly
// seeded, state fully serializable), because a math/rand source hides its
// state and makes bit-exact resume impossible. The test parses the import
// list of every .go file in the module and fails on math/rand or
// math/rand/v2 — including in tests and tools, so a straggler can't sneak
// back in through a benchmark harness.
func TestNoStdlibRandAnywhere(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			t.Errorf("parse %s: %v", path, perr)
			return nil
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s imports %s; use repro/internal/stats.Stream (seeded, snapshot-serializable)", rel, p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNoTimeSeededRand greps for the idioms that would reintroduce
// nondeterminism even without math/rand: seeding anything from the wall
// clock. time.Now is legitimate for wall-clock observability (obs trace
// timestamps, phase timings), so only seed-shaped uses are flagged.
func TestNoTimeSeededRand(t *testing.T) {
	root := moduleRoot(t)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "randsweep_test.go") {
			return nil
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for _, bad := range []string{
			"NewRand(time.Now", "NewStream(time.Now", "rand.Seed(",
		} {
			if strings.Contains(string(src), bad) {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s contains %q: random streams must be explicitly seeded", rel, bad)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the package directory to the directory holding
// go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above package directory")
		}
		dir = parent
	}
}
