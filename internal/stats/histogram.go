package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates samples into fixed-edge bins. Edges must be strictly
// increasing; a sample x lands in bin i when edges[i] <= x < edges[i+1].
// Samples below the first edge are counted in Under, samples at or above the
// last edge in Over.
type Histogram struct {
	edges []float64
	count []int
	Under int
	Over  int
	total int
}

// NewHistogram creates a histogram with the given bin edges. It panics if
// fewer than two edges are supplied or the edges are not strictly
// increasing.
func NewHistogram(edges ...float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("stats: histogram edges must be strictly increasing (%g then %g)", edges[i-1], edges[i]))
		}
	}
	return &Histogram{
		edges: append([]float64(nil), edges...),
		count: make([]int, len(edges)-1),
	}
}

// NewLinearHistogram creates a histogram of n equal-width bins over
// [lo, hi).
func NewLinearHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid linear histogram [%g, %g) n=%d", lo, hi, n))
	}
	edges := make([]float64, n+1)
	w := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + w*float64(i)
	}
	edges[n] = hi // avoid accumulation error on the last edge
	return NewHistogram(edges...)
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.edges[0]:
		h.Under++
	case x >= h.edges[len(h.edges)-1]:
		h.Over++
	default:
		// Binary search: first edge strictly greater than x, minus one.
		i := sort.SearchFloat64s(h.edges, x)
		// SearchFloat64s returns the first index with edges[i] >= x;
		// when edges[i] == x the sample belongs to bin i, otherwise to
		// bin i-1.
		if i == len(h.edges) || h.edges[i] != x {
			i--
		}
		h.count[i]++
	}
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.count) }

// Count returns the number of samples in bin i.
func (h *Histogram) Count(i int) int { return h.count[i] }

// Total returns the total number of samples recorded, including under/over.
func (h *Histogram) Total() int { return h.total }

// BinRange returns the [lo, hi) interval of bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	return h.edges[i], h.edges[i+1]
}

// Fraction returns the share of all samples that landed in bin i, or 0 when
// the histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.count[i]) / float64(h.total)
}

// CumulativeCount returns the number of samples in bins 0..i inclusive plus
// the underflow count.
func (h *Histogram) CumulativeCount(i int) int {
	c := h.Under
	for b := 0; b <= i && b < len(h.count); b++ {
		c += h.count[b]
	}
	return c
}

// String renders a compact textual histogram with proportional bars, the
// kind of output the experiment harness prints for Figure 2's workload
// characteristics.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.count {
		if c > maxCount {
			maxCount = c
		}
	}
	const barWidth = 40
	for i, c := range h.count {
		lo, hi := h.BinRange(i)
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * barWidth))
		}
		fmt.Fprintf(&b, "[%10.4g, %10.4g) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	if h.Under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.Over)
	}
	return b.String()
}
