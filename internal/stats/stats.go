// Package stats provides the small statistical toolkit the simulator and
// workload generator need: seeded random variate generation (exponential,
// log-normal, bounded Pareto, categorical), Poisson tail probabilities and
// quantiles (used by the spare-server controller's QoS bound, Section IV of
// the paper), and descriptive statistics (histograms, percentiles).
//
// Everything here is deterministic given a seed, which keeps experiments
// reproducible run-to-run.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Rand is the subset of a random source the variate generators need. Using
// an interface keeps the generators testable with scripted number streams.
type Rand interface {
	Float64() float64
	NormFloat64() float64
	ExpFloat64() float64
	Intn(n int) int
}

// NewRand returns a deterministic, snapshot-serializable source seeded with
// seed (see Stream). Every random draw in the repository flows through
// explicitly seeded Streams so a simulation can be checkpointed and resumed
// bit-exactly.
func NewRand(seed int64) *Stream {
	return NewStream(seed)
}

// Exponential draws an exponential variate with the given mean.
// It panics if mean <= 0.
func Exponential(r Rand, mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: exponential mean must be positive, got %g", mean))
	}
	return r.ExpFloat64() * mean
}

// LogNormal draws a log-normal variate with the given parameters mu and
// sigma of the underlying normal distribution. The median of the result is
// exp(mu).
func LogNormal(r Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LogNormalFromMedian converts a median and a shape parameter sigma into a
// log-normal draw. Convenient because workload specs are usually stated as
// "median runtime X".
func LogNormalFromMedian(r Rand, median, sigma float64) float64 {
	if median <= 0 {
		panic(fmt.Sprintf("stats: log-normal median must be positive, got %g", median))
	}
	return LogNormal(r, math.Log(median), sigma)
}

// BoundedPareto draws from a Pareto distribution with shape alpha truncated
// to [lo, hi]. Used for heavy-tailed memory demands.
func BoundedPareto(r Rand, alpha, lo, hi float64) float64 {
	if !(alpha > 0) || !(lo > 0) || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid bounded pareto params alpha=%g lo=%g hi=%g", alpha, lo, hi))
	}
	u := r.Float64()
	la, ha := math.Pow(lo, alpha), math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Categorical selects an index from weights proportionally. Weights must be
// non-negative and not all zero.
func Categorical(r Rand, weights []float64) int {
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: categorical weight %d is invalid (%g)", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("stats: categorical weights sum to zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack lands on the last bucket
}

// PoissonPMF returns P(N = k) for a Poisson distribution with mean lambda.
// Computed in log space to stay stable for large lambda.
func PoissonPMF(lambda float64, k int) float64 {
	if lambda < 0 || k < 0 {
		return 0
	}
	if lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(lambda) - lambda - lg)
}

// PoissonCDF returns P(N <= k) for a Poisson distribution with mean lambda.
func PoissonCDF(lambda float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if lambda <= 0 {
		return 1
	}
	// Sum the PMF recursively: p_0 = e^-lambda, p_{i} = p_{i-1} * lambda/i.
	// For large lambda the early terms underflow; start from log space.
	sum := 0.0
	p := math.Exp(-lambda)
	if p == 0 {
		// lambda too large for direct start; fall back to normal
		// approximation with continuity correction, accurate to ~1e-3
		// in the tails for lambda > ~700 which far exceeds anything
		// the spare-server controller sees.
		z := (float64(k) + 0.5 - lambda) / math.Sqrt(lambda)
		return normalCDF(z)
	}
	for i := 0; i <= k; i++ {
		if i > 0 {
			p *= lambda / float64(i)
		}
		sum += p
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// PoissonQuantile returns the smallest n such that P(N > n) <= alpha, i.e.
// P(N <= n) >= 1 - alpha, for a Poisson distribution with mean lambda.
// This is exactly the bound the paper's spare-server controller applies:
// "the estimated number of arrival VMs n_arrival is determined by
// P(Λ(T) > n_arrival) <= 0.05" (Section IV).
func PoissonQuantile(lambda, alpha float64) int {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: quantile alpha must be in (0,1), got %g", alpha))
	}
	if lambda <= 0 {
		return 0
	}
	target := 1 - alpha
	// Walk up from the mean's lower neighborhood; the quantile is within
	// a few standard deviations of lambda.
	n := 0
	if lambda > 10 {
		n = int(lambda - 5*math.Sqrt(lambda))
		if n < 0 {
			n = 0
		}
	}
	for ; ; n++ {
		if PoissonCDF(lambda, n) >= target {
			return n
		}
	}
}

// normalCDF is the standard normal CDF.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }
