package stats

import (
	"fmt"
	"math"
)

// Stream is a deterministic, explicitly seeded random stream whose complete
// state is four exported words — the property the checkpoint/restore layer
// needs. The standard library's math/rand sources keep their state private
// (a 607-word lagged-Fibonacci ring for v1, and v2's PCG only round-trips
// through MarshalBinary), so a simulator built on them cannot be resumed
// bit-exactly from a snapshot. Stream is a self-contained xoshiro256++
// generator: every variate is a pure function of the four state words, so
// State/Restore round-trips reproduce the remaining sequence exactly, on
// any platform and across Go releases.
//
// Stream implements the Rand interface. It is not safe for concurrent use;
// the simulator is single-threaded per run.
type Stream struct {
	s [4]uint64
}

// StreamState is a Stream's complete serializable state.
type StreamState [4]uint64

// splitmix64 is the seed expander recommended by the xoshiro authors: it
// decorrelates nearby seeds and can never produce the all-zero state from
// any input sequence.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewStream returns a stream seeded deterministically from seed.
func NewStream(seed int64) *Stream {
	st := &Stream{}
	x := uint64(seed)
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	return st
}

// State returns the stream's complete state. Restoring it with
// RestoreStream resumes the variate sequence exactly where it left off.
func (r *Stream) State() StreamState { return r.s }

// RestoreStream reconstructs a stream from a previously captured state. The
// all-zero state is the one fixed point of xoshiro256++ (it would emit
// zeros forever) and is rejected: no NewStream-seeded stream can reach it,
// so seeing one means the snapshot is corrupt.
func RestoreStream(st StreamState) (*Stream, error) {
	if st[0] == 0 && st[1] == 0 && st[2] == 0 && st[3] == 0 {
		return nil, fmt.Errorf("stats: all-zero stream state is invalid")
	}
	return &Stream{s: st}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit output (xoshiro256++).
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential variate with mean 1, by inversion:
// -ln(1-U). Inversion (rather than math/rand's ziggurat) keeps the draw a
// pure function of a single uniform, which is what makes the stream's
// remaining sequence depend only on its four state words.
func (r *Stream) ExpFloat64() float64 {
	return -math.Log1p(-r.Float64())
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform. The cosine branch is used alone — no cached second variate —
// so the generator carries no hidden state beyond the four stream words.
func (r *Stream) NormFloat64() float64 {
	// 1-U ∈ (0, 1] keeps the logarithm finite.
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0. Modulo
// bias is removed by rejection, so the distribution is exactly uniform.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Intn bound must be positive, got %d", n))
	}
	bound := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}
