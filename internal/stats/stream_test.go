package stats

import (
	"math"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c := NewStream(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

// TestStreamStateRoundTrip is the property the snapshot layer depends on:
// capturing the state mid-sequence and restoring it reproduces the exact
// remaining sequence, across every variate kind.
func TestStreamStateRoundTrip(t *testing.T) {
	r := NewStream(7)
	// Burn an arbitrary prefix mixing variate kinds so the state is
	// mid-sequence, not fresh.
	for i := 0; i < 137; i++ {
		r.Float64()
		r.NormFloat64()
		r.ExpFloat64()
		r.Intn(17)
	}
	st := r.State()
	clone, err := RestoreStream(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if a, b := r.Float64(), clone.Float64(); a != b {
			t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
		}
		if a, b := r.NormFloat64(), clone.NormFloat64(); a != b {
			t.Fatalf("NormFloat64 diverged at %d: %v vs %v", i, a, b)
		}
		if a, b := r.ExpFloat64(), clone.ExpFloat64(); a != b {
			t.Fatalf("ExpFloat64 diverged at %d: %v vs %v", i, a, b)
		}
		if a, b := r.Intn(1000), clone.Intn(1000); a != b {
			t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
		}
	}
}

func TestRestoreStreamRejectsZeroState(t *testing.T) {
	if _, err := RestoreStream(StreamState{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}

func TestStreamRanges(t *testing.T) {
	r := NewStream(1)
	for i := 0; i < 20000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if e := r.ExpFloat64(); e < 0 || math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("ExpFloat64 invalid: %v", e)
		}
		if n := r.NormFloat64(); math.IsInf(n, 0) || math.IsNaN(n) {
			t.Fatalf("NormFloat64 invalid: %v", n)
		}
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of [0,7): %d", v)
		}
	}
}

// TestStreamMoments sanity-checks the variate transforms against their
// distributions' first two moments.
func TestStreamMoments(t *testing.T) {
	r := NewStream(99)
	const n = 200000
	var sumN, sumN2, sumE float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sumN += x
		sumN2 += x * x
		sumE += r.ExpFloat64()
	}
	if mean := sumN / n; math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if v := sumN2 / n; math.Abs(v-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", v)
	}
	if mean := sumE / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}
