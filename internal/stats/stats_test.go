package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give the same stream")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(1)
	const n, mean = 200000, 3.5
	var sum float64
	for i := 0; i < n; i++ {
		x := Exponential(r, mean)
		if x < 0 {
			t.Fatalf("negative exponential draw %g", x)
		}
		sum += x
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Errorf("sample mean %g, want ~%g", got, mean)
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive mean")
		}
	}()
	Exponential(NewRand(1), 0)
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(2)
	const n, median = 100001, 120.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormalFromMedian(r, median, 1.3)
	}
	got := Median(xs)
	if math.Abs(got-median)/median > 0.05 {
		t.Errorf("sample median %g, want ~%g", got, median)
	}
}

func TestLogNormalFromMedianPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive median")
		}
	}()
	LogNormalFromMedian(NewRand(1), -1, 1)
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		x := BoundedPareto(r, 1.5, 0.25, 8)
		if x < 0.25 || x > 8 {
			t.Fatalf("draw %g outside [0.25, 8]", x)
		}
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	// A heavy-tailed draw should have median much closer to lo than hi.
	r := NewRand(4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = BoundedPareto(r, 1.5, 1, 100)
	}
	if m := Median(xs); m > 5 {
		t.Errorf("median %g, expected < 5 for alpha=1.5", m)
	}
}

func TestBoundedParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for hi <= lo")
		}
	}()
	BoundedPareto(NewRand(1), 1, 2, 2)
}

func TestCategoricalDistribution(t *testing.T) {
	r := NewRand(5)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[Categorical(r, weights)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want)/want > 0.05 {
			t.Errorf("bucket %d count %d, want ~%g", i, counts[i], want)
		}
	}
}

func TestCategoricalSingle(t *testing.T) {
	if got := Categorical(NewRand(1), []float64{5}); got != 0 {
		t.Errorf("single-bucket categorical = %d", got)
	}
}

func TestCategoricalZeroWeightSkipped(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 1000; i++ {
		if got := Categorical(r, []float64{0, 1, 0}); got != 1 {
			t.Fatalf("zero-weight bucket selected: %d", got)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for all-zero weights")
		}
	}()
	Categorical(NewRand(1), []float64{0, 0})
}

func TestPoissonPMFBasics(t *testing.T) {
	if got := PoissonPMF(0, 0); got != 1 {
		t.Errorf("PMF(0,0) = %g, want 1", got)
	}
	if got := PoissonPMF(0, 3); got != 0 {
		t.Errorf("PMF(0,3) = %g, want 0", got)
	}
	// lambda=2, k=1: 2 e^-2
	want := 2 * math.Exp(-2)
	if got := PoissonPMF(2, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("PMF(2,1) = %g, want %g", got, want)
	}
	if PoissonPMF(5, -1) != 0 {
		t.Error("negative k must have probability 0")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.3, 1, 5, 40} {
		var sum float64
		for k := 0; k < 400; k++ {
			sum += PoissonPMF(lambda, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda=%g: PMF sums to %g", lambda, sum)
		}
	}
}

func TestPoissonCDF(t *testing.T) {
	if got := PoissonCDF(3, -1); got != 0 {
		t.Errorf("CDF(3,-1) = %g", got)
	}
	if got := PoissonCDF(0, 0); got != 1 {
		t.Errorf("CDF(0,0) = %g", got)
	}
	// Compare against a direct PMF summation.
	for _, lambda := range []float64{0.5, 2, 17} {
		var sum float64
		for k := 0; k <= 30; k++ {
			sum += PoissonPMF(lambda, k)
			if got := PoissonCDF(lambda, k); math.Abs(got-sum) > 1e-9 {
				t.Errorf("CDF(%g,%d) = %g, want %g", lambda, k, got, sum)
			}
		}
	}
}

func TestPoissonCDFLargeLambda(t *testing.T) {
	// Normal approximation regime: CDF at the mean should be ~0.5.
	got := PoissonCDF(800, 800)
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("CDF(800,800) = %g, want ~0.5", got)
	}
	if PoissonCDF(800, 10000) < 0.999 {
		t.Error("far-right tail should be ~1")
	}
}

func TestPoissonQuantile(t *testing.T) {
	for _, tc := range []struct {
		lambda, alpha float64
	}{{1, 0.05}, {5, 0.05}, {20, 0.05}, {100, 0.01}, {3, 0.5}} {
		n := PoissonQuantile(tc.lambda, tc.alpha)
		if tail := 1 - PoissonCDF(tc.lambda, n); tail > tc.alpha+1e-12 {
			t.Errorf("lambda=%g alpha=%g: P(N>%d) = %g > alpha", tc.lambda, tc.alpha, n, tail)
		}
		if n > 0 {
			if tail := 1 - PoissonCDF(tc.lambda, n-1); tail <= tc.alpha {
				t.Errorf("lambda=%g alpha=%g: quantile %d not minimal", tc.lambda, tc.alpha, n)
			}
		}
	}
}

func TestPoissonQuantileZeroLambda(t *testing.T) {
	if got := PoissonQuantile(0, 0.05); got != 0 {
		t.Errorf("quantile(0) = %d, want 0", got)
	}
}

func TestPoissonQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for alpha out of range")
		}
	}()
	PoissonQuantile(5, 0)
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("p0 = %g", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("p100 = %g", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Errorf("p50 = %g", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("p25 = %g", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-sample percentile = %g", got)
	}
	// Does not mutate input.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestPercentileClampsP(t *testing.T) {
	xs := []float64{1, 2, 3}
	if Percentile(xs, -10) != 1 || Percentile(xs, 400) != 3 {
		t.Error("out-of-range p should clamp")
	}
}

// Property: Poisson CDF is non-decreasing in k and within [0, 1].
func TestQuickPoissonCDFMonotone(t *testing.T) {
	f := func(l uint8, k uint8) bool {
		lambda := float64(l%50) + 0.5
		kk := int(k % 60)
		a, b := PoissonCDF(lambda, kk), PoissonCDF(lambda, kk+1)
		return a >= 0 && b <= 1 && b >= a-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the quantile's tail bound always holds.
func TestQuickPoissonQuantileTail(t *testing.T) {
	f := func(l uint8) bool {
		lambda := float64(l) / 4
		n := PoissonQuantile(lambda+0.01, 0.05)
		return 1-PoissonCDF(lambda+0.01, n) <= 0.05+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPoissonQuantile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PoissonQuantile(42.5, 0.05)
	}
}
