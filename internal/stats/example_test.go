package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExamplePoissonQuantile computes the spare-server controller's QoS
// quantile: the smallest n with P(N > n) <= 0.05 when ~20 arrivals are
// expected in the next control period.
func ExamplePoissonQuantile() {
	n := stats.PoissonQuantile(20, 0.05)
	fmt.Printf("provision for %d arrivals\n", n)
	fmt.Printf("tail above that: %.3f\n", 1-stats.PoissonCDF(20, n))
	// Output:
	// provision for 28 arrivals
	// tail above that: 0.034
}

// ExampleHistogram buckets job runtimes the way the Figure 2 report does.
func ExampleHistogram() {
	h := stats.NewHistogram(0, 1, 6, 24)
	h.AddAll([]float64{0.5, 0.9, 3, 4, 5, 12, 30})
	for i := 0; i < h.Bins(); i++ {
		lo, hi := h.BinRange(i)
		fmt.Printf("[%g, %g) hours: %d jobs\n", lo, hi, h.Count(i))
	}
	fmt.Printf("over a day: %d\n", h.Over)
	// Output:
	// [0, 1) hours: 2 jobs
	// [1, 6) hours: 3 jobs
	// [6, 24) hours: 1 jobs
	// over a day: 1
}
