package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 2, 4)
	if h.Bins() != 3 {
		t.Fatalf("Bins = %d, want 3", h.Bins())
	}
	h.AddAll([]float64{0, 0.5, 1, 1.5, 3.9, 4, -1})
	if h.Count(0) != 2 { // 0, 0.5
		t.Errorf("bin 0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 2 { // 1, 1.5
		t.Errorf("bin 1 = %d, want 2", h.Count(1))
	}
	if h.Count(2) != 1 { // 3.9
		t.Errorf("bin 2 = %d, want 1", h.Count(2))
	}
	if h.Over != 1 || h.Under != 1 {
		t.Errorf("over/under = %d/%d, want 1/1", h.Over, h.Under)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramEdgeSample(t *testing.T) {
	h := NewHistogram(0, 10, 20)
	h.Add(10) // exactly on an interior edge -> bin 1
	if h.Count(1) != 1 || h.Count(0) != 0 {
		t.Errorf("edge sample landed in bins %d/%d", h.Count(0), h.Count(1))
	}
	h.Add(20) // on last edge -> overflow
	if h.Over != 1 {
		t.Errorf("last-edge sample Over = %d, want 1", h.Over)
	}
}

func TestHistogramBinRangeAndFraction(t *testing.T) {
	h := NewHistogram(0, 5, 10)
	lo, hi := h.BinRange(1)
	if lo != 5 || hi != 10 {
		t.Errorf("BinRange(1) = %g, %g", lo, hi)
	}
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
	h.AddAll([]float64{1, 2, 7, 8})
	if got := h.Fraction(0); got != 0.5 {
		t.Errorf("Fraction(0) = %g, want 0.5", got)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(0, 1, 2, 3)
	h.AddAll([]float64{-1, 0.5, 1.5, 1.7, 2.5})
	if got := h.CumulativeCount(0); got != 2 { // under + bin0
		t.Errorf("CumulativeCount(0) = %d, want 2", got)
	}
	if got := h.CumulativeCount(2); got != 5 {
		t.Errorf("CumulativeCount(2) = %d, want 5", got)
	}
}

func TestNewLinearHistogram(t *testing.T) {
	h := NewLinearHistogram(0, 10, 5)
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d, want 5", h.Bins())
	}
	lo, hi := h.BinRange(4)
	if lo != 8 || hi != 10 {
		t.Errorf("last bin = [%g, %g)", lo, hi)
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	for name, f := range map[string]func(){
		"too few":        func() { NewHistogram(1) },
		"not increasing": func() { NewHistogram(1, 1) },
		"bad linear":     func() { NewLinearHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.AddAll([]float64{0.5, 0.6, 1.5, -3, 9})
	s := h.String()
	if !strings.Contains(s, "underflow 1") || !strings.Contains(s, "overflow 1") {
		t.Errorf("String missing under/overflow: %q", s)
	}
	if !strings.Contains(s, "#") {
		t.Errorf("String missing bars: %q", s)
	}
}

// Property: every sample is accounted for exactly once.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []int8) bool {
		h := NewLinearHistogram(-50, 50, 10)
		for _, x := range raw {
			h.Add(float64(x))
		}
		inBins := h.Under + h.Over
		for i := 0; i < h.Bins(); i++ {
			inBins += h.Count(i)
		}
		return inBins == len(raw) && h.Total() == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
