// Package vector implements the K-dimensional resource vectors used
// throughout the placement framework.
//
// The paper (Section III.A) models a VM request as a K+1 dimensional vector
// whose first K components are resource demands (CPU cores, memory, ...)
// and whose last component is the estimated runtime; a PM's capacity and
// current occupation are K dimensional vectors. This package provides the
// K-dimensional arithmetic: feasibility checks (Eq. 2), the product
// utilization U_j = Π_k C_j(k)/C_j^max(k) used by the energy-efficiency
// factor (Section III.B.4), and general element-wise helpers.
package vector

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Epsilon is the tolerance used for floating-point comparisons of resource
// quantities. Resource amounts in this codebase are sums and differences of
// user-supplied values, so exact equality is too strict while 1e-9 is far
// below any meaningful resource granularity (a byte of memory, a millicore).
const Epsilon = 1e-9

// V is a K-dimensional resource vector. The zero value is a valid empty
// vector of dimension 0. Component k holds the quantity of resource type k;
// the meaning of each index (CPU, memory, ...) is established by the caller
// and must be consistent across all vectors that interact.
type V []float64

// ErrDimensionMismatch is returned (or wrapped) when two vectors of
// different dimensions are combined.
var ErrDimensionMismatch = errors.New("vector: dimension mismatch")

// New returns a vector with the given components.
func New(components ...float64) V {
	v := make(V, len(components))
	copy(v, components)
	return v
}

// Zero returns the zero vector of dimension k.
func Zero(k int) V { return make(V, k) }

// Dim reports the dimension K of the vector.
func (v V) Dim() int { return len(v) }

// Clone returns an independent copy of v.
func (v V) Clone() V {
	c := make(V, len(v))
	copy(c, v)
	return c
}

// IsZero reports whether every component is zero within Epsilon.
func (v V) IsZero() bool {
	for _, x := range v {
		if math.Abs(x) > Epsilon {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is >= 0 within Epsilon.
func (v V) NonNegative() bool {
	for _, x := range v {
		if x < -Epsilon {
			return false
		}
	}
	return true
}

func (v V) checkDim(w V) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(v), len(w)))
	}
}

// Add returns v + w. It panics if the dimensions differ: mixing vectors of
// different dimensions is a programming error, not a runtime condition.
func (v V) Add(w V) V {
	v.checkDim(w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if the dimensions differ.
func (v V) Sub(w V) V {
	v.checkDim(w)
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v without allocating.
func (v V) AddInPlace(w V) {
	v.checkDim(w)
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v without allocating.
func (v V) SubInPlace(w V) {
	v.checkDim(w)
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale returns v multiplied component-wise by s.
func (v V) Scale(s float64) V {
	out := make(V, len(v))
	for i := range v {
		out[i] = v[i] * s
	}
	return out
}

// LE reports whether v <= w component-wise within Epsilon.
func (v V) LE(w V) bool {
	v.checkDim(w)
	for i := range v {
		if v[i] > w[i]+Epsilon {
			return false
		}
	}
	return true
}

// Fits reports whether a demand of v fits on top of an occupation used
// within a capacity cap, i.e. used + v <= cap component-wise. This is the
// resource-feasibility predicate of Eq. 2 in the paper: p_res = 1 iff
// R_i(k) + C_j(k) <= C_j^max(k) for every resource type k.
func (v V) Fits(used, cap V) bool {
	v.checkDim(used)
	v.checkDim(cap)
	for i := range v {
		if used[i]+v[i] > cap[i]+Epsilon {
			return false
		}
	}
	return true
}

// Utilization returns the product utilization of an occupation used under
// capacity cap: U = Π_k used(k)/cap(k) (Section III.B.4 of the paper).
// A zero-capacity component contributes factor 0 (the resource cannot be
// used at all, so joint utilization is 0) unless the corresponding usage is
// also zero, in which case the component is skipped: a PM that simply does
// not expose a resource type should not nullify its utilization.
func Utilization(used, cap V) float64 {
	used.checkDim(cap)
	u := 1.0
	for i := range used {
		if cap[i] <= Epsilon {
			if used[i] <= Epsilon {
				continue
			}
			return 0
		}
		f := used[i] / cap[i]
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		u *= f
	}
	return u
}

// Dot returns the dot product of v and w.
func (v V) Dot(w V) float64 {
	v.checkDim(w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Max returns the largest component of v, or 0 for the empty vector.
func (v V) Max() float64 {
	var m float64
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest component of v, or 0 for the empty vector.
func (v V) Min() float64 {
	var m float64
	for i, x := range v {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of all components.
func (v V) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Equal reports whether v and w are equal component-wise within Epsilon.
// Vectors of different dimensions are never equal.
func (v V) Equal(w V) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > Epsilon {
			return false
		}
	}
	return true
}

// DivMin returns the minimum over components of cap(k)/v(k) for components
// where v(k) > 0, i.e. how many copies of demand v fit inside cap ignoring
// integrality. It returns +Inf if v has no positive component (an empty
// demand fits infinitely often). This computes W_j, the maximum number of
// minimal VMs a PM can host (Section III.B.4), before flooring.
func DivMin(cap, v V) float64 {
	cap.checkDim(v)
	m := math.Inf(1)
	for i := range v {
		if v[i] > Epsilon {
			if r := cap[i] / v[i]; r < m {
				m = r
			}
		}
	}
	return m
}

// String renders the vector as "[a, b, ...]" with compact formatting.
func (v V) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", x)
	}
	b.WriteByte(']')
	return b.String()
}

// Validate returns an error if the vector contains NaN, infinite, or
// negative components. Resource demands and capacities must be finite and
// non-negative.
func (v V) Validate() error {
	for i, x := range v {
		switch {
		case math.IsNaN(x):
			return fmt.Errorf("vector: component %d is NaN", i)
		case math.IsInf(x, 0):
			return fmt.Errorf("vector: component %d is infinite", i)
		case x < 0:
			return fmt.Errorf("vector: component %d is negative (%g)", i, x)
		}
	}
	return nil
}
