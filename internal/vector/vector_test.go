package vector

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndClone(t *testing.T) {
	v := New(1, 2, 3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("Clone aliases the original: v[0] = %g", v[0])
	}
}

func TestZero(t *testing.T) {
	z := Zero(4)
	if z.Dim() != 4 || !z.IsZero() {
		t.Errorf("Zero(4) = %v", z)
	}
	if !Zero(0).IsZero() {
		t.Error("empty vector should be zero")
	}
}

func TestIsZeroTolerance(t *testing.T) {
	if !New(0, Epsilon/2).IsZero() {
		t.Error("sub-epsilon components should count as zero")
	}
	if New(0, 1e-3).IsZero() {
		t.Error("1e-3 should not count as zero")
	}
}

func TestAddSub(t *testing.T) {
	a, b := New(1, 2), New(3, 5)
	if got := a.Add(b); !got.Equal(New(4, 7)) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(New(2, 3)) {
		t.Errorf("Sub = %v", got)
	}
	// Originals untouched.
	if !a.Equal(New(1, 2)) || !b.Equal(New(3, 5)) {
		t.Error("Add/Sub mutated operands")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := New(1, 2)
	a.AddInPlace(New(1, 1))
	if !a.Equal(New(2, 3)) {
		t.Errorf("AddInPlace = %v", a)
	}
	a.SubInPlace(New(2, 3))
	if !a.IsZero() {
		t.Errorf("SubInPlace = %v", a)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched dims should panic")
		}
	}()
	New(1).Add(New(1, 2))
}

func TestScale(t *testing.T) {
	if got := New(1, 2).Scale(2.5); !got.Equal(New(2.5, 5)) {
		t.Errorf("Scale = %v", got)
	}
}

func TestLE(t *testing.T) {
	cases := []struct {
		a, b V
		want bool
	}{
		{New(1, 2), New(1, 2), true},
		{New(1, 2), New(2, 3), true},
		{New(2, 2), New(1, 3), false},
		{New(1, 1), New(1+Epsilon/2, 1), true}, // within tolerance
	}
	for _, c := range cases {
		if got := c.a.LE(c.b); got != c.want {
			t.Errorf("%v.LE(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFits(t *testing.T) {
	cap := New(8, 16)
	used := New(6, 10)
	if !New(2, 6).Fits(used, cap) {
		t.Error("exact fit should succeed")
	}
	if New(2.1, 1).Fits(used, cap) {
		t.Error("CPU overflow should fail")
	}
	if New(0, 6.1).Fits(used, cap) {
		t.Error("memory overflow should fail")
	}
	if !Zero(2).Fits(cap, cap) {
		t.Error("zero demand fits on a full PM")
	}
}

func TestUtilization(t *testing.T) {
	cap := New(8, 16)
	if u := Utilization(New(4, 8), cap); math.Abs(u-0.25) > 1e-12 {
		t.Errorf("Utilization = %g, want 0.25", u)
	}
	if u := Utilization(Zero(2), cap); u != 0 {
		t.Errorf("idle utilization = %g, want 0", u)
	}
	if u := Utilization(cap, cap); math.Abs(u-1) > 1e-12 {
		t.Errorf("full utilization = %g, want 1", u)
	}
}

func TestUtilizationZeroCapacity(t *testing.T) {
	// A resource type with zero capacity and zero use is skipped.
	if u := Utilization(New(4, 0), New(8, 0)); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("zero-cap unused = %g, want 0.5", u)
	}
	// Using a resource a PM does not have yields 0.
	if u := Utilization(New(4, 1), New(8, 0)); u != 0 {
		t.Errorf("zero-cap used = %g, want 0", u)
	}
}

func TestUtilizationClamped(t *testing.T) {
	// Slight numeric overshoot must not push utilization above 1.
	if u := Utilization(New(8.0000000001), New(8)); u > 1 {
		t.Errorf("Utilization = %g, want <= 1", u)
	}
	if u := Utilization(New(-0.0000000001), New(8)); u < 0 {
		t.Errorf("Utilization = %g, want >= 0", u)
	}
}

func TestDot(t *testing.T) {
	if got := New(1, 2, 3).Dot(New(4, 5, 6)); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestMaxMinSum(t *testing.T) {
	v := New(3, -1, 7)
	if v.Max() != 7 || v.Min() != -1 || v.Sum() != 9 {
		t.Errorf("Max/Min/Sum = %g/%g/%g", v.Max(), v.Min(), v.Sum())
	}
	var empty V
	if empty.Max() != 0 || empty.Min() != 0 || empty.Sum() != 0 {
		t.Error("empty vector aggregates should be 0")
	}
}

func TestEqualDifferentDims(t *testing.T) {
	if New(1).Equal(New(1, 0)) {
		t.Error("different dims must not be equal")
	}
}

func TestDivMin(t *testing.T) {
	if got := DivMin(New(8, 16), New(1, 4)); got != 4 {
		t.Errorf("DivMin = %g, want 4 (memory-bound)", got)
	}
	if got := DivMin(New(8, 16), New(2, 1)); got != 4 {
		t.Errorf("DivMin = %g, want 4 (cpu-bound)", got)
	}
	if got := DivMin(New(8, 16), Zero(2)); !math.IsInf(got, 1) {
		t.Errorf("DivMin with zero demand = %g, want +Inf", got)
	}
}

func TestNonNegative(t *testing.T) {
	if !New(0, 1).NonNegative() {
		t.Error("non-negative vector misreported")
	}
	if New(-1, 1).NonNegative() {
		t.Error("negative vector misreported")
	}
	if !New(-Epsilon / 2).NonNegative() {
		t.Error("sub-epsilon negative should pass")
	}
}

func TestString(t *testing.T) {
	s := New(1, 2.5).String()
	if !strings.Contains(s, "1") || !strings.Contains(s, "2.5") {
		t.Errorf("String = %q", s)
	}
}

func TestValidate(t *testing.T) {
	if err := New(1, 2).Validate(); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	for _, bad := range []V{New(math.NaN()), New(math.Inf(1)), New(-1)} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted invalid vector", bad)
		}
	}
}

// Property: Add and Sub are inverse operations.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for _, x := range append(a[:], b[:]...) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip degenerate inputs
			}
		}
		va, vb := New(a[:]...), New(b[:]...)
		got := va.Add(vb).Sub(vb)
		for i := range got {
			// Allow relative error for large magnitudes.
			tol := Epsilon * (1 + math.Abs(a[i]) + math.Abs(b[i]))
			if math.Abs(got[i]-a[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Utilization is always within [0, 1].
func TestQuickUtilizationBounded(t *testing.T) {
	f := func(used, cap [3]uint16) bool {
		u := New(float64(used[0]), float64(used[1]), float64(used[2]))
		c := New(float64(cap[0]), float64(cap[1]), float64(cap[2]))
		x := Utilization(u, c)
		return x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fits is consistent with LE on the summed vector.
func TestQuickFitsConsistent(t *testing.T) {
	f := func(d, u, c [3]uint8) bool {
		dv := New(float64(d[0]), float64(d[1]), float64(d[2]))
		uv := New(float64(u[0]), float64(u[1]), float64(u[2]))
		cv := New(float64(c[0]), float64(c[1]), float64(c[2]))
		return dv.Fits(uv, cv) == uv.Add(dv).LE(cv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DivMin * demand fits within capacity (for integer floor).
func TestQuickDivMinFits(t *testing.T) {
	f := func(c, d [2]uint8) bool {
		cv := New(float64(c[0])+1, float64(c[1])+1) // ensure positive caps
		dv := New(float64(d[0]), float64(d[1]))
		if dv.IsZero() {
			return true
		}
		n := math.Floor(DivMin(cv, dv))
		return dv.Scale(n).LE(cv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFits(b *testing.B) {
	d, u, c := New(1, 2, 0.5, 4), New(3, 4, 1, 8), New(8, 16, 4, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Fits(u, c)
	}
}

func BenchmarkUtilization(b *testing.B) {
	u, c := New(3, 4, 1, 8), New(8, 16, 4, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Utilization(u, c)
	}
}
