package nhpp

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

// A burst of arrivals in the first instants of a run used to extrapolate to
// an absurd homogeneous rate: 2 arrivals by t=1ms divided by latest=1ms is
// 2000 arrivals per second. The warm-up fallback now clamps the observed
// span to period/24, so early estimates stay sane.
func TestWarmupFallbackClampsTinySpan(t *testing.T) {
	e := New(86400)
	e.Observe(0.0005)
	e.Observe(0.001)

	got := e.CumulativeIntensity(0, 3600)
	want := 2.0 / (86400.0 / 24) * 3600 // rate over the clamped span
	if !almost(got, want) {
		t.Fatalf("clamped warm-up estimate = %g, want %g", got, want)
	}
	if got > 10 {
		t.Fatalf("warm-up estimate %g blew up on a tiny observed span", got)
	}
}

// Once the observed span clears the clamp the fallback must be the plain
// observed rate, unchanged from before the fix.
func TestWarmupFallbackUsesObservedSpanWhenLongEnough(t *testing.T) {
	e := New(86400)
	for _, at := range []float64{1000, 2000, 3000, 4000} {
		e.Observe(at)
	}
	// latest = 4000 > 86400/24 = 3600, so no clamping.
	got := e.CumulativeIntensity(0, 8000)
	want := 4.0 / 4000 * 8000
	if !almost(got, want) {
		t.Fatalf("warm-up estimate = %g, want %g", got, want)
	}
}

// fourPerCycle builds an estimator with k complete cycles of period 100 and
// arrivals at phases 10, 30, 60, 90 in each.
func fourPerCycle(k int) *Estimator {
	e := New(100)
	for c := 0; c < k; c++ {
		base := float64(c) * 100
		for _, p := range []float64{10, 30, 60, 90} {
			e.Observe(base + p)
		}
	}
	e.Advance(float64(k) * 100)
	return e
}

// An interval spanning exactly one period must return the full cycle mass
// regardless of where it starts: the whole-cycle shortcut and the residual
// path have to agree at the length == period boundary.
func TestIntervalExactlyOnePeriod(t *testing.T) {
	e := fourPerCycle(2)
	mass := e.CycleMass()
	if mass <= 0 {
		t.Fatal("no cycle mass learned")
	}
	for _, from := range []float64{0, 10, 37.5, 90, 99.999} {
		got := e.CumulativeIntensity(from, from+100)
		if !almost(got, mass) {
			t.Errorf("Λ̂[%g, %g) = %g, want full cycle mass %g", from, from+100, got, mass)
		}
	}
}

// A residual interval that ends exactly at the cycle boundary (p1 ==
// period) must take the non-wrapping branch and equal the tail mass; the
// same interval computed via the complement must agree.
func TestResidualEndsExactlyAtCycleBoundary(t *testing.T) {
	e := fourPerCycle(3)
	mass := e.CycleMass()
	tail := e.CumulativeIntensity(60, 100) // p1 == period exactly
	head := e.CumulativeIntensity(0, 60)
	if !almost(head+tail, mass) {
		t.Fatalf("Λ̂[0,60) + Λ̂[60,100) = %g + %g != cycle mass %g", head, tail, mass)
	}
	// Crossing the boundary by an epsilon must be continuous with the
	// exact-boundary case.
	cross := e.CumulativeIntensity(60, 100+1e-9)
	if math.Abs(cross-tail) > 1e-6 {
		t.Fatalf("Λ̂[60, 100+ε) = %g jumps from Λ̂[60, 100) = %g at the wrap", cross, tail)
	}
}

// Arrivals in the incomplete trailing cycle must not contribute to the
// folded estimate (they belong to a cycle that has not finished), but
// queries starting inside that trailing cycle still answer from the learned
// shape.
func TestFromInIncompleteTrailingCycle(t *testing.T) {
	e := fourPerCycle(2)
	// Partial third cycle: a burst that would distort the estimate were
	// it folded in.
	for i := 0; i < 50; i++ {
		e.Observe(200 + float64(i)*0.1)
	}
	e.Advance(230) // 2 complete cycles + 30s of the third

	mass := e.CycleMass()
	if want := (4.0*2 + 1) / 2; !almost(mass, want) {
		t.Fatalf("cycle mass = %g, want %g (trailing-cycle burst leaked in)", mass, want)
	}
	// Query starting mid-trailing-cycle: phases fold onto [30, 80).
	got := e.CumulativeIntensity(230, 280)
	want := e.CumulativeIntensity(30, 80)
	if !almost(got, want) {
		t.Fatalf("Λ̂[230, 280) = %g != folded Λ̂[30, 80) = %g", got, want)
	}
}
