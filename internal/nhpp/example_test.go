package nhpp_test

import (
	"fmt"

	"repro/internal/nhpp"
)

// Example learns a two-phase daily arrival pattern and predicts the next
// morning's load, the computation behind the spare-server controller's
// n_arrival estimate (Section IV of the paper).
func Example() {
	day := 86400.0
	est := nhpp.New(day)
	// Five observed days: 12 arrivals every morning (hours 8-10), 2 at
	// night (hour 22).
	for d := 0; d < 5; d++ {
		base := float64(d) * day
		for i := 0; i < 12; i++ {
			est.Observe(base + 8*3600 + float64(i)*600)
		}
		est.Observe(base + 22*3600)
		est.Observe(base + 22.5*3600)
	}
	now := 5 * day
	est.Advance(now)

	morning := est.CumulativeIntensity(now+8*3600, now+10*3600)
	night := est.CumulativeIntensity(now+22*3600, now+23*3600)
	fmt.Printf("expected morning arrivals: %.1f\n", morning)
	fmt.Printf("expected night arrivals:   %.1f\n", night)
	fmt.Printf("per-day mass:              %.1f\n", est.CycleMass())
	// Output:
	// expected morning arrivals: 11.8
	// expected night arrivals:   1.9
	// per-day mass:              14.2
}
