package nhpp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0)
}

func TestObserveNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(10).Observe(-1)
}

func TestReversedIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(10).CumulativeIntensity(5, 1)
}

func TestEmptyEstimator(t *testing.T) {
	e := New(100)
	if got := e.CumulativeIntensity(0, 50); got != 0 {
		t.Errorf("empty intensity = %g", got)
	}
	if got := e.CycleMass(); got != 0 {
		t.Errorf("empty cycle mass = %g", got)
	}
	if e.Observations() != 0 || e.Period() != 100 {
		t.Error("accessors wrong")
	}
}

func TestWarmupFallbackRate(t *testing.T) {
	e := New(1000) // no complete cycle yet
	for _, at := range []float64{10, 20, 30, 40, 50} {
		e.Observe(at)
	}
	// Observed rate = 5 arrivals / 50 s = 0.1/s.
	if got := e.CumulativeIntensity(50, 150); math.Abs(got-10) > 1e-9 {
		t.Errorf("warm-up intensity = %g, want 10", got)
	}
}

func TestUniformCycleEstimate(t *testing.T) {
	// 10 arrivals per 100 s cycle, evenly spaced, for 5 cycles.
	e := New(100)
	for c := 0; c < 5; c++ {
		for i := 0; i < 10; i++ {
			e.Observe(float64(c*100) + float64(i)*10 + 5)
		}
	}
	e.Advance(500)
	// Λ over a full next cycle ~ (n+1)/k = 51/5 = 10.2.
	got := e.CumulativeIntensity(500, 600)
	if math.Abs(got-10.2) > 1e-9 {
		t.Errorf("full-cycle intensity = %g, want 10.2", got)
	}
	// Half cycle ~ half mass (within interpolation slack).
	half := e.CumulativeIntensity(500, 550)
	if math.Abs(half-5.1) > 0.6 {
		t.Errorf("half-cycle intensity = %g, want ~5.1", half)
	}
}

func TestDiurnalShapeRecovered(t *testing.T) {
	// Arrivals concentrated in the first half of each cycle must yield a
	// much larger estimate for the first half than the second.
	e := New(100)
	for c := 0; c < 10; c++ {
		base := float64(c * 100)
		for i := 0; i < 9; i++ {
			e.Observe(base + float64(i)*5) // phases 0..40
		}
		e.Observe(base + 80) // one late arrival
	}
	e.Advance(1000)
	early := e.CumulativeIntensity(1000, 1050)
	late := e.CumulativeIntensity(1050, 1100)
	if early < 3*late {
		t.Errorf("early/late = %g/%g, want strong contrast", early, late)
	}
	// Sum of the halves equals the full cycle mass.
	full := e.CumulativeIntensity(1000, 1100)
	if math.Abs(early+late-full) > 1e-9 {
		t.Errorf("halves %g + %g != full %g", early, late, full)
	}
}

func TestMultiCycleInterval(t *testing.T) {
	e := New(100)
	for c := 0; c < 4; c++ {
		for i := 0; i < 10; i++ {
			e.Observe(float64(c*100) + float64(i)*10)
		}
	}
	e.Advance(400)
	one := e.CumulativeIntensity(400, 500)
	three := e.CumulativeIntensity(400, 700)
	if math.Abs(three-3*one) > 1e-9 {
		t.Errorf("3-cycle intensity %g != 3x one-cycle %g", three, one)
	}
}

func TestWrapAroundInterval(t *testing.T) {
	e := New(100)
	for c := 0; c < 5; c++ {
		for i := 0; i < 10; i++ {
			e.Observe(float64(c*100) + float64(i)*10)
		}
	}
	e.Advance(500)
	// [480, 520) wraps the cycle boundary.
	wrap := e.CumulativeIntensity(480, 520)
	direct := e.CumulativeIntensity(480, 500) + e.CumulativeIntensity(500, 520)
	if math.Abs(wrap-direct) > 1e-9 {
		t.Errorf("wrapped %g != split %g", wrap, direct)
	}
}

func TestCycleMass(t *testing.T) {
	e := New(50)
	for i := 0; i < 20; i++ {
		e.Observe(float64(i) * 5) // 10 per cycle over 2 cycles
	}
	e.Advance(100)
	if got := e.CycleMass(); math.Abs(got-10.5) > 1e-9 { // (20+1)/2
		t.Errorf("CycleMass = %g, want 10.5", got)
	}
}

func TestEstimateAgainstKnownNHPP(t *testing.T) {
	// Simulate a sinusoidal-rate NHPP by thinning and check the
	// estimator recovers interval masses within sampling error.
	r := stats.NewRand(11)
	period := 86400.0
	rate := func(t float64) float64 {
		phase := t / period * 2 * math.Pi
		return (20 + 15*math.Sin(phase)) / 3600 // arrivals per second
	}
	maxRate := 35.0 / 3600
	e := New(period)
	days := 20
	var total int
	for t := 0.0; t < float64(days)*period; {
		t += stats.Exponential(r, 1/maxRate)
		if r.Float64() < rate(t)/maxRate {
			e.Observe(t)
			total++
		}
	}
	now := float64(days) * period
	e.Advance(now)
	// Expected arrivals over [0h, 6h) of a cycle.
	expected := 0.0
	for s := 0.0; s < 6*3600; s++ {
		expected += rate(s)
	}
	got := e.CumulativeIntensity(now, now+6*3600)
	if math.Abs(got-expected)/expected > 0.15 {
		t.Errorf("6h mass = %g, want ~%g (within 15%%)", got, expected)
	}
}

func TestZeroLengthInterval(t *testing.T) {
	e := New(100)
	e.Observe(5)
	if got := e.CumulativeIntensity(50, 50); got != 0 {
		t.Errorf("zero interval = %g", got)
	}
}

// Property: cumulative intensity is additive over adjacent intervals.
func TestQuickAdditive(t *testing.T) {
	e := New(100)
	r := stats.NewRand(3)
	for i := 0; i < 300; i++ {
		e.Observe(r.Float64() * 1000)
	}
	e.Advance(1000)
	f := func(a, b, c uint16) bool {
		x := float64(a%2000) + 1000
		y := x + float64(b%500)
		z := y + float64(c%500)
		whole := e.CumulativeIntensity(x, z)
		split := e.CumulativeIntensity(x, y) + e.CumulativeIntensity(y, z)
		return math.Abs(whole-split) < 1e-6*(1+whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intensity is non-negative and monotone in interval length.
func TestQuickMonotone(t *testing.T) {
	e := New(100)
	r := stats.NewRand(4)
	for i := 0; i < 200; i++ {
		e.Observe(r.Float64() * 500)
	}
	e.Advance(500)
	f := func(a, b, c uint16) bool {
		from := float64(a % 1000)
		l1 := float64(b % 300)
		l2 := l1 + float64(c%300)
		m1 := e.CumulativeIntensity(from, from+l1)
		m2 := e.CumulativeIntensity(from, from+l2)
		return m1 >= 0 && m2 >= m1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCumulativeIntensity(b *testing.B) {
	e := New(86400)
	r := stats.NewRand(1)
	for i := 0; i < 5000; i++ {
		e.Observe(r.Float64() * 7 * 86400)
	}
	e.Advance(7 * 86400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CumulativeIntensity(7*86400, 7*86400+3600)
	}
}
