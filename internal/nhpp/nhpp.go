// Package nhpp estimates the cumulative intensity function of a
// non-homogeneous Poisson process from observed arrivals, following the
// nonparametric estimator of Leemis ("Nonparametric Estimation of the
// Cumulative Intensity Function for a Nonhomogeneous Poisson Process",
// Management Science 37(7), 1991) — the method the paper cites for its
// spare-server controller (Section IV, Eq. 6-7).
//
// The Leemis estimator assumes the process is cyclic with a known period S
// (a day, for data-center workloads) and that k complete cycles have been
// observed. All n arrival times are folded into one cycle [0, S) and
// sorted: 0 = t(0) < t(1) <= ... <= t(n) < t(n+1) = S. The estimated
// cumulative intensity at phase t in [t(i), t(i+1)) is the piecewise-linear
// interpolant
//
//	Λ̂(t) = ( i + (t - t(i)) / (t(i+1) - t(i)) ) / k
//
// which rises by 1/k per observed arrival and reaches (n+1)/k at the cycle
// end (the n+1 numerator is Leemis' bias correction for the unobserved
// next arrival). Expected arrivals over an interval follow by
// differencing, unwrapping intervals that cross cycle boundaries.
package nhpp

import (
	"fmt"
	"sort"
)

// Estimator accumulates arrival observations and answers cumulative-
// intensity queries. It is not safe for concurrent use; the simulator is
// single-threaded per run.
type Estimator struct {
	period float64

	// arrivals holds raw absolute observation times, unsorted.
	arrivals []float64

	// latest is the largest observation time seen (observations may not
	// regress in a DES, but we tolerate out-of-order bookkeeping).
	latest float64

	// folded caches the sorted folded phases of arrivals from complete
	// cycles; rebuilt lazily when cycleCache no longer matches.
	folded     []float64
	cycleCache int
}

// New returns an estimator with the given cycle period in seconds
// (86400 for the daily cycle of the paper's workload).
func New(period float64) *Estimator {
	if period <= 0 {
		panic(fmt.Sprintf("nhpp: period must be positive, got %g", period))
	}
	return &Estimator{period: period}
}

// Period returns the configured cycle length.
func (e *Estimator) Period() float64 { return e.period }

// Observations returns the number of recorded arrivals.
func (e *Estimator) Observations() int { return len(e.arrivals) }

// Observe records an arrival at absolute time t >= 0.
func (e *Estimator) Observe(t float64) {
	if t < 0 {
		panic(fmt.Sprintf("nhpp: negative observation time %g", t))
	}
	e.arrivals = append(e.arrivals, t)
	if t > e.latest {
		e.latest = t
	}
}

// Advance tells the estimator that observation has continued (arrival-free)
// up to time now. Cycles with no arrivals still count as observed cycles;
// without Advance a quiet stretch would silently inflate the per-cycle
// estimate. The simulator calls Advance at every control period.
func (e *Estimator) Advance(now float64) {
	if now > e.latest {
		e.latest = now
	}
}

// State is the serializable observation window of the estimator: the raw
// arrival times plus the observation horizon. The folded-phase cache is
// deliberately excluded — it is a pure function of (arrivals, latest) and
// rebuilds lazily after a restore, bit-identically (same inputs, same
// sort, same floats).
type State struct {
	Arrivals []float64 `json:"arrivals,omitempty"`
	Latest   float64   `json:"latest"`
}

// State captures the estimator's observations for a checkpoint.
func (e *Estimator) State() State {
	return State{Arrivals: append([]float64(nil), e.arrivals...), Latest: e.latest}
}

// Restore rebuilds an estimator from a checkpointed state.
func Restore(period float64, st State) (*Estimator, error) {
	if period <= 0 {
		return nil, fmt.Errorf("nhpp: period must be positive, got %g", period)
	}
	if st.Latest < 0 {
		return nil, fmt.Errorf("nhpp: negative observation horizon %g", st.Latest)
	}
	for i, t := range st.Arrivals {
		if t < 0 || t > st.Latest {
			return nil, fmt.Errorf("nhpp: arrival %d at %g outside [0, %g]", i, t, st.Latest)
		}
	}
	return &Estimator{
		period:   period,
		arrivals: append([]float64(nil), st.Arrivals...),
		latest:   st.Latest,
	}, nil
}

// completeCycles returns k, the number of fully observed cycles.
func (e *Estimator) completeCycles() int {
	return int(e.latest / e.period)
}

// rebuild refreshes the folded phase cache for k complete cycles.
func (e *Estimator) rebuild(k int) {
	if k == e.cycleCache && e.folded != nil {
		return
	}
	limit := float64(k) * e.period
	e.folded = e.folded[:0]
	for _, t := range e.arrivals {
		if t < limit {
			phase := t - float64(int(t/e.period))*e.period
			e.folded = append(e.folded, phase)
		}
	}
	sort.Float64s(e.folded)
	e.cycleCache = k
}

// lambdaHatPhase evaluates the Leemis piecewise-linear estimate of the
// within-cycle cumulative intensity at phase p in [0, period], given k
// complete cycles. Requires the folded cache to be current.
func (e *Estimator) lambdaHatPhase(p float64, k int) float64 {
	n := len(e.folded)
	if n == 0 || k == 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= e.period {
		return float64(n+1) / float64(k)
	}
	// i = number of folded arrivals with phase <= p.
	i := sort.SearchFloat64s(e.folded, p)
	// Stretch each segment [t(i), t(i+1)) to contribute one unit; the
	// boundary knots are t(0)=0 and t(n+1)=period.
	lo := 0.0
	if i > 0 {
		lo = e.folded[i-1]
	}
	hi := e.period
	if i < n {
		hi = e.folded[i]
	}
	frac := 0.0
	if hi > lo {
		frac = (p - lo) / (hi - lo)
	}
	return (float64(i) + frac) / float64(k)
}

// CycleMass returns Λ̂ over one full cycle: the expected number of
// arrivals per period, (n+1)/k. It returns 0 before any complete cycle has
// been observed.
func (e *Estimator) CycleMass() float64 {
	k := e.completeCycles()
	if k == 0 {
		return 0
	}
	e.rebuild(k)
	if len(e.folded) == 0 {
		return 0
	}
	return float64(len(e.folded)+1) / float64(k)
}

// CumulativeIntensity returns Λ̂(from, to): the expected number of
// arrivals in the absolute interval [from, to), per Eq. 6 of the paper.
// The estimate folds the interval onto the learned cycle; intervals longer
// than a full period accumulate whole-cycle mass. Before the first
// complete cycle the estimator falls back to the overall observed rate
// (arrivals so far divided by elapsed time), which lets the controller
// produce usable estimates during warm-up.
func (e *Estimator) CumulativeIntensity(from, to float64) float64 {
	if to < from {
		panic(fmt.Sprintf("nhpp: interval [%g, %g) reversed", from, to))
	}
	if to == from {
		return 0
	}
	k := e.completeCycles()
	if k == 0 {
		// Warm-up: homogeneous-rate fallback over the observed span. The
		// span is clamped from below: a burst of arrivals in the first few
		// seconds would otherwise divide by a tiny e.latest and report an
		// absurd rate (two arrivals at t=1ms extrapolate to 2000/s). One
		// twenty-fourth of a period — an "hour" of a daily cycle — is the
		// shortest window we trust a rate estimate from.
		if e.latest <= 0 || len(e.arrivals) == 0 {
			return 0
		}
		span := e.latest
		if min := e.period / 24; span < min {
			span = min
		}
		rate := float64(len(e.arrivals)) / span
		return rate * (to - from)
	}
	e.rebuild(k)
	if len(e.folded) == 0 {
		return 0
	}

	mass := 0.0
	length := to - from
	if cycles := int(length / e.period); cycles > 0 {
		mass += float64(cycles) * (float64(len(e.folded)+1) / float64(k))
		length -= float64(cycles) * e.period
	}
	p0 := from - float64(int(from/e.period))*e.period
	p1 := p0 + length
	if p1 <= e.period {
		mass += e.lambdaHatPhase(p1, k) - e.lambdaHatPhase(p0, k)
	} else {
		// The residual interval wraps the cycle boundary.
		mass += e.lambdaHatPhase(e.period, k) - e.lambdaHatPhase(p0, k)
		mass += e.lambdaHatPhase(p1-e.period, k)
	}
	if mass < 0 {
		mass = 0
	}
	return mass
}
