package workload_test

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Example generates the paper's evaluation week and applies the Section
// V.A pipeline: filter, then split jobs into single-core VM requests.
func Example() {
	jobs := workload.MustGenerate(workload.DefaultWeekConfig(1))
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	requests := workload.ToRequests(jobs)
	s := workload.Summarize(jobs)

	fmt.Printf("jobs: %d\n", s.TotalJobs)
	fmt.Printf("requests: %d\n", len(requests))
	fmt.Printf("peak day: %d\n", s.PeakDay)
	// Output:
	// jobs: 4574
	// requests: 9024
	// peak day: 2
}

// ExampleParseSWF reads a Standard Workload Format fragment, the format of
// the Parallel Workloads Archive logs the paper draws its trace from.
func ExampleParseSWF() {
	trace := `; Computer: example
1 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1
2 60 0 600 1 -1 262144 1 900 -1 1 10 20 1 1 1 -1 -1
`
	jobs, err := workload.ParseSWF(strings.NewReader(trace))
	if err != nil {
		panic(err)
	}
	for _, j := range jobs {
		fmt.Printf("job %d: %d cores, %.2f GB, runs %.0fs\n", j.ID, j.Cores, j.MemoryGB, j.RunTime)
	}
	// Output:
	// job 1: 4 cores, 2.00 GB, runs 3600s
	// job 2: 1 cores, 0.25 GB, runs 600s
}
