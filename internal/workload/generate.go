package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// GenConfig parameterizes the synthetic LPC-like trace generator.
//
// The paper's trace (Figure 2) is one week of the LPC log: 4,574 jobs after
// filtering, a peak of 982 VM requests in one day, most jobs requiring less
// than 1 GB of memory, and 2,077 jobs running for less than a day. The
// defaults below reproduce the job count, the per-day arrival shape with
// its 982-job peak, and the memory distribution.
//
// One deliberate calibration difference, documented in DESIGN.md: with the
// paper's literal runtime distribution (~45% of jobs longer than a day) a
// 500-core data center at 653 jobs/day would saturate, which contradicts
// the fluctuating server counts of Figure 3. The default runtime
// distribution therefore keeps the published *shape* (log-normal body with
// a heavy tail, a meaningful multi-day cohort) while keeping offered load
// in the regime Figure 3 shows. RuntimeScale lets callers push toward the
// literal distribution.
type GenConfig struct {
	// Seed drives all randomness; the same seed yields the same trace.
	Seed int64

	// DailyJobs is the number of jobs submitted on each simulated day;
	// its length sets the trace length in days.
	DailyJobs []int

	// DiurnalPeakHour is the hour of day (0-23) of peak submission
	// intensity; intensity follows 1 + DiurnalAmplitude*cos about it.
	DiurnalPeakHour float64

	// DiurnalAmplitude in [0, 1) controls day/night contrast.
	DiurnalAmplitude float64

	// CoreWeights[i] is the relative frequency of jobs requesting
	// CoreOptions[i] processors.
	CoreOptions []int
	CoreWeights []float64

	// MemPerCoreOptions/Weights give the per-core memory demand in GB.
	MemPerCoreOptions []float64
	MemPerCoreWeights []float64

	// RuntimeMedian and RuntimeSigma shape the log-normal runtime body
	// (seconds); RuntimeScale multiplies every runtime draw.
	RuntimeMedian float64
	RuntimeSigma  float64
	RuntimeScale  float64

	// LongJobFraction of jobs instead draw from a long-job log-normal
	// with LongRuntimeMedian, producing the multi-day cohort.
	LongJobFraction   float64
	LongRuntimeMedian float64

	// MaxRuntime truncates runtime draws (seconds); 0 disables.
	MaxRuntime float64

	// EstimateNoise adds user runtime-estimate error: the submitted
	// estimate is RunTime * (1 + U[0, EstimateNoise]). Zero reproduces
	// the paper's assumption of accurate estimates.
	EstimateNoise float64
}

// DefaultWeekConfig returns the generator configuration used by the
// experiment harness: one week, 4,574 jobs with a 982-job peak day.
func DefaultWeekConfig(seed int64) GenConfig {
	return GenConfig{
		Seed: seed,
		// Sums to 4574 with a midweek peak of 982 (Figure 2a).
		DailyJobs:        []int{520, 705, 982, 770, 640, 480, 477},
		DiurnalPeakHour:  14,
		DiurnalAmplitude: 0.6,
		// Mostly narrow jobs; a job with c cores becomes c single-core
		// VM requests after normalization.
		CoreOptions: []int{1, 2, 4, 8},
		CoreWeights: []float64{0.62, 0.2, 0.12, 0.06},
		// "most jobs require the memories of less than 1GB" (Fig 2b).
		MemPerCoreOptions: []float64{0.25, 0.5, 1, 2, 4},
		MemPerCoreWeights: []float64{0.38, 0.3, 0.2, 0.09, 0.03},
		// Calibrated so offered load (arrival rate x mean runtime x
		// cores) averages ~40% of the Table II fleet's 500 cores with
		// peak-day bursts near capacity — the regime in which
		// Figure 3's server counts fluctuate rather than saturate.
		RuntimeMedian:     50 * 60,
		RuntimeSigma:      1.5,
		RuntimeScale:      1,
		LongJobFraction:   0.04,
		LongRuntimeMedian: 13 * 3600,
		MaxRuntime:        4 * 24 * 3600,
		EstimateNoise:     0,
	}
}

// GoogleLikeConfig returns a generator preset with the character of
// public cloud-cluster traces rather than HPC batch logs: an order of
// magnitude more, much shorter tasks (median minutes, not hours), almost
// all single-core, tiny memory grants, and a flatter diurnal profile.
// The generality study (EXPERIMENTS.md E-R2) uses it to check that the
// placement scheme's win is not an artifact of the LPC-like calibration.
func GoogleLikeConfig(seed int64) GenConfig {
	return GenConfig{
		Seed:             seed,
		DailyJobs:        []int{2400, 2600, 2800, 2600, 2500, 2300, 2200},
		DiurnalPeakHour:  15,
		DiurnalAmplitude: 0.25,
		CoreOptions:      []int{1, 2, 4},
		CoreWeights:      []float64{0.88, 0.09, 0.03},
		// Mostly sub-GB tasks.
		MemPerCoreOptions: []float64{0.25, 0.5, 1},
		MemPerCoreWeights: []float64{0.7, 0.25, 0.05},
		// Short tasks with a long service tail.
		RuntimeMedian:     8 * 60,
		RuntimeSigma:      1.8,
		RuntimeScale:      1,
		LongJobFraction:   0.02,
		LongRuntimeMedian: 12 * 3600,
		MaxRuntime:        3 * 24 * 3600,
		EstimateNoise:     0,
	}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if len(c.DailyJobs) == 0 {
		return fmt.Errorf("workload: generator needs at least one day")
	}
	for d, n := range c.DailyJobs {
		if n < 0 {
			return fmt.Errorf("workload: day %d has negative job count", d)
		}
	}
	if len(c.CoreOptions) == 0 || len(c.CoreOptions) != len(c.CoreWeights) {
		return fmt.Errorf("workload: core options/weights mismatched")
	}
	if len(c.MemPerCoreOptions) == 0 || len(c.MemPerCoreOptions) != len(c.MemPerCoreWeights) {
		return fmt.Errorf("workload: memory options/weights mismatched")
	}
	if c.RuntimeMedian <= 0 || c.RuntimeSigma < 0 {
		return fmt.Errorf("workload: invalid runtime distribution (median=%g sigma=%g)", c.RuntimeMedian, c.RuntimeSigma)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("workload: diurnal amplitude %g not in [0,1)", c.DiurnalAmplitude)
	}
	if c.LongJobFraction < 0 || c.LongJobFraction > 1 {
		return fmt.Errorf("workload: long-job fraction %g not in [0,1]", c.LongJobFraction)
	}
	if c.EstimateNoise < 0 {
		return fmt.Errorf("workload: negative estimate noise")
	}
	return nil
}

// Generate produces a synthetic trace per cfg, sorted by submit time.
// Job IDs are assigned sequentially in submission order starting at 1.
func Generate(cfg GenConfig) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRand(cfg.Seed)
	scale := cfg.RuntimeScale
	if scale == 0 {
		scale = 1
	}

	var jobs []Job
	for day, n := range cfg.DailyJobs {
		dayStart := float64(day) * 24 * 3600
		for i := 0; i < n; i++ {
			submit := dayStart + diurnalOffset(r, cfg.DiurnalPeakHour, cfg.DiurnalAmplitude)
			cores := cfg.CoreOptions[stats.Categorical(r, cfg.CoreWeights)]
			memPerCore := cfg.MemPerCoreOptions[stats.Categorical(r, cfg.MemPerCoreWeights)]

			median := cfg.RuntimeMedian
			if cfg.LongJobFraction > 0 && r.Float64() < cfg.LongJobFraction {
				median = cfg.LongRuntimeMedian
			}
			run := stats.LogNormalFromMedian(r, median, cfg.RuntimeSigma) * scale
			if run < 1 {
				run = 1
			}
			if cfg.MaxRuntime > 0 && run > cfg.MaxRuntime {
				run = cfg.MaxRuntime
			}
			est := run
			if cfg.EstimateNoise > 0 {
				est = run * (1 + r.Float64()*cfg.EstimateNoise)
			}

			jobs = append(jobs, Job{
				Submit:           submit,
				RunTime:          math.Round(run),
				EstimatedRunTime: math.Round(est),
				Cores:            cores,
				MemoryGB:         memPerCore * float64(cores),
				Status:           StatusCompleted,
			})
		}
	}
	SortBySubmit(jobs)
	for i := range jobs {
		jobs[i].ID = i + 1
	}
	return jobs, nil
}

// MustGenerate is Generate that panics on configuration errors.
func MustGenerate(cfg GenConfig) []Job {
	jobs, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return jobs
}

// diurnalOffset samples a within-day offset (seconds in [0, 86400)) from
// the density 1 + a*cos(2π(h - peak)/24) by rejection sampling, which is
// exact and fast for a < 1.
func diurnalOffset(r stats.Rand, peakHour, amplitude float64) float64 {
	if amplitude == 0 {
		return r.Float64() * 86400
	}
	for {
		t := r.Float64() * 86400
		h := t / 3600
		density := 1 + amplitude*math.Cos(2*math.Pi*(h-peakHour)/24)
		if r.Float64()*(1+amplitude) <= density {
			return t
		}
	}
}

// Stats summarizes a trace for Figure 2: arrivals per day, memory and
// runtime distributions (computed over single-core VM requests, as the
// paper plots them).
type Stats struct {
	// JobsPerDay counts VM requests arriving in each 24 h window
	// (Figure 2a plots "number of arrival jobs per day" post-split).
	JobsPerDay []int

	// TotalJobs is the number of jobs; TotalRequests the number of
	// single-core VM requests after normalization.
	TotalJobs     int
	TotalRequests int

	// PeakDay is the day index with most requests; PeakDayRequests its
	// count.
	PeakDay         int
	PeakDayRequests int

	// MemHistogram buckets per-request memory in GB (Figure 2b).
	MemHistogram *stats.Histogram

	// RuntimeHistogram buckets runtime in hours (Figure 2c).
	RuntimeHistogram *stats.Histogram

	// UnderOneGB is the fraction of requests needing < 1 GB.
	UnderOneGB float64

	// UnderOneDay is the number of jobs with runtime < 24 h (the paper
	// reports 2,077 for its trace).
	UnderOneDay int
}

// Summarize computes trace statistics from jobs.
func Summarize(jobs []Job) Stats {
	reqs := ToRequests(jobs)
	s := Stats{
		TotalJobs:        len(jobs),
		TotalRequests:    len(reqs),
		MemHistogram:     stats.NewHistogram(0, 0.25, 0.5, 1, 2, 4, 8, 16),
		RuntimeHistogram: stats.NewHistogram(0, 1, 3, 6, 12, 24, 48, 96, 24*14),
	}
	var lastDay int
	for _, q := range reqs {
		if d := int(q.Submit / 86400); d > lastDay {
			lastDay = d
		}
	}
	s.JobsPerDay = make([]int, lastDay+1)
	under1GB := 0
	for _, q := range reqs {
		d := int(q.Submit / 86400)
		s.JobsPerDay[d]++
		s.MemHistogram.Add(q.MemoryGB)
		s.RuntimeHistogram.Add(q.RunTime / 3600)
		if q.MemoryGB < 1 {
			under1GB++
		}
	}
	for d, n := range s.JobsPerDay {
		if n > s.PeakDayRequests {
			s.PeakDayRequests = n
			s.PeakDay = d
		}
	}
	if len(reqs) > 0 {
		s.UnderOneGB = float64(under1GB) / float64(len(reqs))
	}
	for _, j := range jobs {
		if j.RunTime < 86400 {
			s.UnderOneDay++
		}
	}
	return s
}

// RuntimePercentiles returns the given runtime percentiles in seconds over
// jobs.
func RuntimePercentiles(jobs []Job, ps ...float64) []float64 {
	rs := make([]float64, len(jobs))
	for i, j := range jobs {
		rs[i] = j.RunTime
	}
	sort.Float64s(rs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = stats.Percentile(rs, p)
	}
	return out
}
