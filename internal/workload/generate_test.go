package workload

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultWeekConfig(42)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedChangesTrace(t *testing.T) {
	a := MustGenerate(DefaultWeekConfig(1))
	b := MustGenerate(DefaultWeekConfig(2))
	same := true
	for i := range a {
		if i < len(b) && a[i].Submit != b[i].Submit {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical submit streams")
	}
}

func TestGenerateWeekShape(t *testing.T) {
	jobs := MustGenerate(DefaultWeekConfig(1))
	if len(jobs) != 4574 {
		t.Fatalf("total jobs = %d, want 4574 (paper's filtered week)", len(jobs))
	}
	// Jobs per calendar day must match the configured counts exactly.
	perDay := make([]int, 7)
	for _, j := range jobs {
		d := int(j.Submit / 86400)
		if d < 0 || d > 6 {
			t.Fatalf("job submitted outside the week: %g", j.Submit)
		}
		perDay[d]++
	}
	want := []int{520, 705, 982, 770, 640, 480, 477}
	for d := range want {
		if perDay[d] != want[d] {
			t.Errorf("day %d jobs = %d, want %d", d, perDay[d], want[d])
		}
	}
}

func TestGenerateSortedAndNumbered(t *testing.T) {
	jobs := MustGenerate(DefaultWeekConfig(1))
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("trace not sorted by submit time")
		}
	}
	for i, j := range jobs {
		if j.ID != i+1 {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestGenerateFieldSanity(t *testing.T) {
	jobs := MustGenerate(DefaultWeekConfig(1))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.RunTime < 1 {
			t.Fatalf("job %d runtime %g < 1", j.ID, j.RunTime)
		}
		if j.EstimatedRunTime < j.RunTime {
			t.Fatalf("job %d estimate below actual with zero noise", j.ID)
		}
		if j.Cores < 1 || j.Cores > 8 {
			t.Fatalf("job %d cores = %d", j.ID, j.Cores)
		}
		if j.Status != StatusCompleted {
			t.Fatalf("job %d status = %d", j.ID, j.Status)
		}
	}
}

func TestGenerateMemoryMostlyUnder1GB(t *testing.T) {
	s := Summarize(MustGenerate(DefaultWeekConfig(1)))
	if s.UnderOneGB < 0.5 {
		t.Errorf("under-1GB fraction = %g, want majority (Figure 2b)", s.UnderOneGB)
	}
}

func TestGenerateEstimateNoise(t *testing.T) {
	cfg := DefaultWeekConfig(1)
	cfg.DailyJobs = []int{500}
	cfg.EstimateNoise = 0.5
	jobs := MustGenerate(cfg)
	inflated := 0
	for _, j := range jobs {
		if j.EstimatedRunTime < j.RunTime {
			t.Fatalf("estimate %g below runtime %g", j.EstimatedRunTime, j.RunTime)
		}
		if j.EstimatedRunTime > j.RunTime {
			inflated++
		}
	}
	if inflated < len(jobs)/2 {
		t.Errorf("only %d/%d estimates inflated with noise on", inflated, len(jobs))
	}
}

func TestGenerateMaxRuntimeTruncates(t *testing.T) {
	cfg := DefaultWeekConfig(1)
	cfg.DailyJobs = []int{2000}
	cfg.MaxRuntime = 3600
	for _, j := range MustGenerate(cfg) {
		if j.RunTime > 3600 {
			t.Fatalf("runtime %g exceeds cap", j.RunTime)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []func(*GenConfig){
		func(c *GenConfig) { c.DailyJobs = nil },
		func(c *GenConfig) { c.DailyJobs = []int{-1} },
		func(c *GenConfig) { c.CoreWeights = c.CoreWeights[:1] },
		func(c *GenConfig) { c.MemPerCoreWeights = nil },
		func(c *GenConfig) { c.RuntimeMedian = 0 },
		func(c *GenConfig) { c.DiurnalAmplitude = 1 },
		func(c *GenConfig) { c.LongJobFraction = 2 },
		func(c *GenConfig) { c.EstimateNoise = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultWeekConfig(1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustGenerate(GenConfig{})
}

func TestDiurnalConcentration(t *testing.T) {
	cfg := DefaultWeekConfig(5)
	cfg.DailyJobs = []int{20000}
	jobs := MustGenerate(cfg)
	// Peak 6-hour window around hour 14 should hold well above the
	// uniform share (25%).
	peak := 0
	for _, j := range jobs {
		h := math.Mod(j.Submit/3600, 24)
		if h >= 11 && h < 17 {
			peak++
		}
	}
	frac := float64(peak) / float64(len(jobs))
	if frac < 0.3 {
		t.Errorf("peak-window fraction = %g, want > 0.3 with amplitude 0.6", frac)
	}
}

func TestDiurnalZeroAmplitudeUniform(t *testing.T) {
	cfg := DefaultWeekConfig(5)
	cfg.DailyJobs = []int{20000}
	cfg.DiurnalAmplitude = 0
	jobs := MustGenerate(cfg)
	night := 0
	for _, j := range jobs {
		if math.Mod(j.Submit/3600, 24) < 6 {
			night++
		}
	}
	frac := float64(night) / float64(len(jobs))
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("night fraction = %g, want ~0.25 when uniform", frac)
	}
}

func TestSummarize(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 0, RunTime: 3600, Cores: 2, MemoryGB: 1},          // day 0, 2 reqs of 0.5 GB
		{ID: 2, Submit: 90000, RunTime: 2 * 86400, Cores: 1, MemoryGB: 2}, // day 1
		{ID: 3, Submit: 90001, RunTime: 1000, Cores: 1, MemoryGB: 0.25},   // day 1
	}
	s := Summarize(jobs)
	if s.TotalJobs != 3 || s.TotalRequests != 4 {
		t.Errorf("totals = %d/%d", s.TotalJobs, s.TotalRequests)
	}
	if len(s.JobsPerDay) != 2 || s.JobsPerDay[0] != 2 || s.JobsPerDay[1] != 2 {
		t.Errorf("JobsPerDay = %v", s.JobsPerDay)
	}
	if s.PeakDay != 0 || s.PeakDayRequests != 2 {
		t.Errorf("peak = day %d (%d)", s.PeakDay, s.PeakDayRequests)
	}
	if s.UnderOneDay != 2 {
		t.Errorf("UnderOneDay = %d, want 2", s.UnderOneDay)
	}
	if math.Abs(s.UnderOneGB-0.75) > 1e-9 { // 3 of 4 requests < 1 GB
		t.Errorf("UnderOneGB = %g, want 0.75", s.UnderOneGB)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.TotalJobs != 0 || s.TotalRequests != 0 || s.UnderOneGB != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestRuntimePercentiles(t *testing.T) {
	jobs := []Job{{RunTime: 10}, {RunTime: 20}, {RunTime: 30}}
	ps := RuntimePercentiles(jobs, 0, 50, 100)
	if ps[0] != 10 || ps[1] != 20 || ps[2] != 30 {
		t.Errorf("percentiles = %v", ps)
	}
}

func BenchmarkGenerateWeek(b *testing.B) {
	cfg := DefaultWeekConfig(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
