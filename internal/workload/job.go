// Package workload supplies the job traces that drive the simulator.
//
// The paper evaluates on one week of the LPC log from the Parallel
// Workloads Archive, filtered to drop cancelled jobs and jobs with small
// memory requirements, with each job's memory divided evenly over its cores
// so every VM request is single-core (Section V.A). This package provides:
//
//   - a parser and writer for the archive's Standard Workload Format (SWF),
//     so the real trace file can be used directly when available;
//   - the paper's filtering and per-core normalization steps;
//   - a seeded synthetic generator calibrated to the published workload
//     characteristics (Figure 2) for use when the original trace is not
//     available — see Generate;
//   - descriptive statistics reproducing Figure 2.
package workload

import (
	"fmt"
	"sort"
)

// Job is one batch job from a trace, before conversion to VM requests.
// Times are seconds; memory is total gigabytes across all cores.
type Job struct {
	// ID is the job number from the trace.
	ID int

	// Submit is the submission time in seconds since trace start.
	Submit float64

	// RunTime is the job's actual execution time in seconds.
	RunTime float64

	// EstimatedRunTime is the user-requested (estimated) runtime in
	// seconds; the placement scheme sees only this value.
	EstimatedRunTime float64

	// Cores is the number of processors the job used.
	Cores int

	// MemoryGB is the total memory the job used, in gigabytes.
	MemoryGB float64

	// Status is the SWF completion status (1 = completed, 0 = failed,
	// 5 = cancelled).
	Status int
}

// SWF status codes relevant to filtering.
const (
	StatusFailed    = 0
	StatusCompleted = 1
	StatusCancelled = 5
)

// Validate reports structural problems with the job record.
func (j Job) Validate() error {
	if j.Submit < 0 {
		return fmt.Errorf("workload: job %d has negative submit time %g", j.ID, j.Submit)
	}
	if j.RunTime < 0 || j.EstimatedRunTime < 0 {
		return fmt.Errorf("workload: job %d has negative runtime", j.ID)
	}
	if j.Cores < 0 {
		return fmt.Errorf("workload: job %d has negative core count", j.ID)
	}
	if j.MemoryGB < 0 {
		return fmt.Errorf("workload: job %d has negative memory", j.ID)
	}
	return nil
}

// FilterConfig selects which jobs survive trace cleaning, mirroring the
// paper: "filter out the canceled jobs, jobs with small memory
// requirements".
type FilterConfig struct {
	// MinMemoryPerCoreGB drops jobs whose per-core memory falls below
	// the threshold. The paper does not state its cut-off; 0.25 GB keeps
	// the minimal VM request aligned with cluster.TableIIRMin.
	MinMemoryPerCoreGB float64

	// DropCancelled removes StatusCancelled jobs.
	DropCancelled bool

	// DropZeroRuntime removes jobs that never ran (runtime <= 0), which
	// appear in real archive logs as failed submissions.
	DropZeroRuntime bool

	// MaxCores, when positive, drops jobs wider than the whole cluster
	// could ever host.
	MaxCores int
}

// DefaultFilter is the filter used for the paper's experiments.
func DefaultFilter() FilterConfig {
	return FilterConfig{
		MinMemoryPerCoreGB: 0.25,
		DropCancelled:      true,
		DropZeroRuntime:    true,
	}
}

// Filter returns the jobs that pass cfg, preserving order.
func Filter(jobs []Job, cfg FilterConfig) []Job {
	out := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if cfg.DropCancelled && j.Status == StatusCancelled {
			continue
		}
		if cfg.DropZeroRuntime && j.RunTime <= 0 {
			continue
		}
		if j.Cores <= 0 {
			continue
		}
		if cfg.MaxCores > 0 && j.Cores > cfg.MaxCores {
			continue
		}
		if cfg.MinMemoryPerCoreGB > 0 && j.MemoryGB/float64(j.Cores) < cfg.MinMemoryPerCoreGB {
			continue
		}
		out = append(out, j)
	}
	return out
}

// ExtractWindow returns the jobs submitted in [start, end), re-based so
// the first instant of the window is time 0 — the operation the paper
// applies to the ten-month LPC log ("we extracted a week from this
// trace"). Jobs are returned in submission order; IDs are preserved.
func ExtractWindow(jobs []Job, start, end float64) []Job {
	if end <= start {
		return nil
	}
	var out []Job
	for _, j := range jobs {
		if j.Submit >= start && j.Submit < end {
			j.Submit -= start
			out = append(out, j)
		}
	}
	SortBySubmit(out)
	return out
}

// BusiestWindow finds the start of the window of the given length (in
// seconds) containing the most job submissions, scanning in steps of
// stride seconds. It returns 0 for an empty trace. Use it to pick the
// paper-style "busiest week" out of a long archive log.
func BusiestWindow(jobs []Job, length, stride float64) float64 {
	if len(jobs) == 0 || length <= 0 || stride <= 0 {
		return 0
	}
	var last float64
	for _, j := range jobs {
		if j.Submit > last {
			last = j.Submit
		}
	}
	bestStart, bestCount := 0.0, -1
	for start := 0.0; start <= last; start += stride {
		count := 0
		for _, j := range jobs {
			if j.Submit >= start && j.Submit < start+length {
				count++
			}
		}
		if count > bestCount {
			bestCount, bestStart = count, start
		}
	}
	return bestStart
}

// SortBySubmit orders jobs by submission time (stable on ID for ties),
// which the simulator requires.
func SortBySubmit(jobs []Job) {
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
}

// Request is one single-core VM request derived from a job, the unit the
// placement scheme operates on.
type Request struct {
	// JobID is the originating job.
	JobID int

	// Index distinguishes the request among the job's cores.
	Index int

	// Submit is the arrival time in seconds.
	Submit float64

	// CPUCores is always 1 after normalization (kept as a field so the
	// converter can be reused with different splits).
	CPUCores float64

	// MemoryGB is the job memory divided by its core count.
	MemoryGB float64

	// EstimatedRunTime and RunTime are inherited from the job.
	EstimatedRunTime float64
	RunTime          float64
}

// ToRequests converts filtered jobs to single-core VM requests: a job with
// c cores becomes c requests of one core and MemoryGB/c memory each, as in
// Section V.A ("we have normalized the memory required by each job by
// equally dividing its number of cores required").
func ToRequests(jobs []Job) []Request {
	var out []Request
	for _, j := range jobs {
		if j.Cores <= 0 {
			continue
		}
		perCore := j.MemoryGB / float64(j.Cores)
		for c := 0; c < j.Cores; c++ {
			out = append(out, Request{
				JobID:            j.ID,
				Index:            c,
				Submit:           j.Submit,
				CPUCores:         1,
				MemoryGB:         perCore,
				EstimatedRunTime: j.EstimatedRunTime,
				RunTime:          j.RunTime,
			})
		}
	}
	return out
}
