package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJobValidate(t *testing.T) {
	good := Job{ID: 1, Submit: 0, RunTime: 10, EstimatedRunTime: 10, Cores: 1, MemoryGB: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	bad := []Job{
		{Submit: -1},
		{RunTime: -1},
		{EstimatedRunTime: -1},
		{Cores: -1},
		{MemoryGB: -1},
	}
	for i, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
}

func TestFilterDropsCancelled(t *testing.T) {
	jobs := []Job{
		{ID: 1, RunTime: 10, Cores: 1, MemoryGB: 1, Status: StatusCompleted},
		{ID: 2, RunTime: 10, Cores: 1, MemoryGB: 1, Status: StatusCancelled},
		{ID: 3, RunTime: 10, Cores: 1, MemoryGB: 1, Status: StatusFailed},
	}
	out := Filter(jobs, DefaultFilter())
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 3 {
		t.Errorf("Filter = %v", out)
	}
}

func TestFilterDropsSmallMemory(t *testing.T) {
	jobs := []Job{
		{ID: 1, RunTime: 10, Cores: 2, MemoryGB: 0.25, Status: 1}, // 0.125/core
		{ID: 2, RunTime: 10, Cores: 2, MemoryGB: 0.5, Status: 1},  // 0.25/core
	}
	out := Filter(jobs, DefaultFilter())
	if len(out) != 1 || out[0].ID != 2 {
		t.Errorf("Filter = %v", out)
	}
}

func TestFilterDropsZeroRuntimeAndZeroCores(t *testing.T) {
	jobs := []Job{
		{ID: 1, RunTime: 0, Cores: 1, MemoryGB: 1, Status: 1},
		{ID: 2, RunTime: 5, Cores: 0, MemoryGB: 1, Status: 1},
		{ID: 3, RunTime: 5, Cores: 1, MemoryGB: 1, Status: 1},
	}
	out := Filter(jobs, DefaultFilter())
	if len(out) != 1 || out[0].ID != 3 {
		t.Errorf("Filter = %v", out)
	}
}

func TestFilterMaxCores(t *testing.T) {
	cfg := DefaultFilter()
	cfg.MaxCores = 4
	jobs := []Job{
		{ID: 1, RunTime: 5, Cores: 8, MemoryGB: 8, Status: 1},
		{ID: 2, RunTime: 5, Cores: 4, MemoryGB: 4, Status: 1},
	}
	out := Filter(jobs, cfg)
	if len(out) != 1 || out[0].ID != 2 {
		t.Errorf("Filter = %v", out)
	}
}

func TestFilterDisabledChecks(t *testing.T) {
	jobs := []Job{{ID: 1, RunTime: 0, Cores: 1, MemoryGB: 0.01, Status: StatusCancelled}}
	out := Filter(jobs, FilterConfig{})
	if len(out) != 1 {
		t.Error("permissive filter dropped a job")
	}
}

func TestSortBySubmit(t *testing.T) {
	jobs := []Job{
		{ID: 3, Submit: 50},
		{ID: 1, Submit: 10},
		{ID: 4, Submit: 50},
		{ID: 2, Submit: 30},
	}
	SortBySubmit(jobs)
	wantIDs := []int{1, 2, 3, 4}
	for i, w := range wantIDs {
		if jobs[i].ID != w {
			t.Fatalf("order = %v", jobs)
		}
	}
}

func TestToRequestsSplit(t *testing.T) {
	jobs := []Job{{ID: 9, Submit: 100, RunTime: 50, EstimatedRunTime: 60, Cores: 4, MemoryGB: 2}}
	reqs := ToRequests(jobs)
	if len(reqs) != 4 {
		t.Fatalf("requests = %d, want 4", len(reqs))
	}
	for i, q := range reqs {
		if q.JobID != 9 || q.Index != i {
			t.Errorf("request %d identity = %+v", i, q)
		}
		if q.CPUCores != 1 {
			t.Errorf("request %d cores = %g, want 1", i, q.CPUCores)
		}
		if math.Abs(q.MemoryGB-0.5) > 1e-12 {
			t.Errorf("request %d mem = %g, want 0.5", i, q.MemoryGB)
		}
		if q.Submit != 100 || q.RunTime != 50 || q.EstimatedRunTime != 60 {
			t.Errorf("request %d times = %+v", i, q)
		}
	}
}

func TestToRequestsSkipsZeroCores(t *testing.T) {
	if got := ToRequests([]Job{{ID: 1, Cores: 0}}); len(got) != 0 {
		t.Errorf("zero-core job produced %d requests", len(got))
	}
}

// Property: filtering is idempotent.
func TestQuickFilterIdempotent(t *testing.T) {
	cfg := DefaultFilter()
	f := func(raw []struct {
		Run    uint16
		Cores  uint8
		MemDGB uint8 // deci-GB
		Status uint8
	}) bool {
		jobs := make([]Job, len(raw))
		for i, r := range raw {
			jobs[i] = Job{
				ID: i, RunTime: float64(r.Run), Cores: int(r.Cores % 16),
				MemoryGB: float64(r.MemDGB) / 10, Status: int(r.Status % 6),
			}
		}
		once := Filter(jobs, cfg)
		twice := Filter(once, cfg)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ToRequests conserves total memory and request count equals
// total cores.
func TestQuickToRequestsConserves(t *testing.T) {
	f := func(raw []struct {
		Cores  uint8
		MemDGB uint16
	}) bool {
		jobs := make([]Job, len(raw))
		totalCores := 0
		var totalMem float64
		for i, r := range raw {
			c := int(r.Cores%8) + 1
			jobs[i] = Job{ID: i, Cores: c, MemoryGB: float64(r.MemDGB) / 10}
			totalCores += c
			totalMem += jobs[i].MemoryGB
		}
		reqs := ToRequests(jobs)
		if len(reqs) != totalCores {
			return false
		}
		var mem float64
		for _, q := range reqs {
			mem += q.MemoryGB
		}
		return math.Abs(mem-totalMem) < 1e-6*(1+totalMem)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
