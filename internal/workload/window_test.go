package workload

import (
	"testing"
)

func TestExtractWindow(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 50},
		{ID: 2, Submit: 150},
		{ID: 3, Submit: 250},
		{ID: 4, Submit: 100},
	}
	out := ExtractWindow(jobs, 100, 200)
	if len(out) != 2 {
		t.Fatalf("window jobs = %d, want 2", len(out))
	}
	// Re-based to window start and sorted.
	if out[0].ID != 4 || out[0].Submit != 0 {
		t.Errorf("first = %+v", out[0])
	}
	if out[1].ID != 2 || out[1].Submit != 50 {
		t.Errorf("second = %+v", out[1])
	}
	// Input untouched.
	if jobs[1].Submit != 150 {
		t.Error("ExtractWindow mutated input")
	}
}

func TestExtractWindowDegenerate(t *testing.T) {
	if got := ExtractWindow([]Job{{Submit: 1}}, 5, 5); got != nil {
		t.Errorf("empty window = %v", got)
	}
	if got := ExtractWindow(nil, 0, 10); len(got) != 0 {
		t.Errorf("nil trace = %v", got)
	}
}

func TestBusiestWindow(t *testing.T) {
	// Cluster of submissions around t=1000..1100; stragglers elsewhere.
	var jobs []Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, Job{ID: i, Submit: 1000 + float64(i)*5})
	}
	jobs = append(jobs, Job{ID: 100, Submit: 10}, Job{ID: 101, Submit: 5000})

	start := BusiestWindow(jobs, 200, 50)
	if start < 900 || start > 1100 {
		t.Errorf("busiest window start = %g, want ~1000", start)
	}
	window := ExtractWindow(jobs, start, start+200)
	if len(window) < 20 {
		t.Errorf("busiest window holds %d jobs, want >= 20", len(window))
	}
}

func TestBusiestWindowDegenerate(t *testing.T) {
	if got := BusiestWindow(nil, 100, 10); got != 0 {
		t.Errorf("empty trace = %g", got)
	}
	if got := BusiestWindow([]Job{{Submit: 5}}, 0, 10); got != 0 {
		t.Errorf("zero length = %g", got)
	}
	if got := BusiestWindow([]Job{{Submit: 5}}, 10, 0); got != 0 {
		t.Errorf("zero stride = %g", got)
	}
}

func TestBusiestWindowOfGeneratedTrace(t *testing.T) {
	jobs := MustGenerate(DefaultWeekConfig(1))
	// One-day windows, 6 h stride: the busiest day is day 2 (982 jobs).
	start := BusiestWindow(jobs, 86400, 6*3600)
	if day := int(start / 86400); day != 2 && day != 1 {
		t.Errorf("busiest day window starts on day %d (t=%g), want around day 2", day, start)
	}
}
