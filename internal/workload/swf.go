package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) of the Parallel Workloads Archive is a
// line-oriented text format: lines starting with ';' are header comments,
// data lines carry 18 whitespace-separated integer fields. The fields this
// reproduction consumes are:
//
//	 1  job number
//	 2  submit time (s)
//	 4  run time (s)
//	 5  number of allocated processors
//	 7  used memory (KB per processor)
//	 9  requested time (s)   — the user's runtime estimate
//	10  requested memory (KB per processor)
//	11  status (1 completed, 0 failed, 5 cancelled)
//
// Missing values are encoded as -1 in SWF.
const swfFields = 18

// ParseSWF reads an SWF trace. Malformed lines produce an error naming the
// line and field: a wrong field count, a non-numeric field, a negative
// value other than the -1 missing marker, or a duplicate job number each
// reject the trace rather than silently normalizing it. Header comment
// lines are skipped. Memory fields are converted from KB-per-processor to
// total GB. When the used-memory field is missing (-1), the requested
// memory is substituted; when the requested time is missing, the actual
// runtime is used as the estimate.
func ParseSWF(r io.Reader) ([]Job, error) {
	var jobs []Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	seen := map[int]int{} // job ID -> first line it appeared on
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != swfFields {
			return nil, fmt.Errorf("workload: swf line %d has %d fields, want %d", lineNo, len(fields), swfFields)
		}
		get := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return 0, fmt.Errorf("workload: swf line %d field %d: %w", lineNo, i, err)
			}
			return v, nil
		}
		// SWF encodes a missing value as exactly -1; any other negative is
		// not a marker, it is a damaged trace, and clamping it to zero
		// would silently change the workload being replayed.
		check := func(i int, v float64, what string) error {
			if v < 0 && v != -1 {
				return fmt.Errorf("workload: swf line %d field %d: negative %s %g (only -1 marks a missing value)", lineNo, i, what, v)
			}
			return nil
		}
		var j Job
		var err error
		var f float64

		if f, err = get(1); err != nil {
			return nil, err
		}
		j.ID = int(f)
		if f < 0 {
			return nil, fmt.Errorf("workload: swf line %d field 1: negative job ID %g", lineNo, f)
		}
		if first, dup := seen[j.ID]; dup {
			return nil, fmt.Errorf("workload: swf line %d: duplicate job ID %d (first at line %d)", lineNo, j.ID, first)
		}
		seen[j.ID] = lineNo
		if j.Submit, err = get(2); err != nil {
			return nil, err
		}
		if err = check(2, j.Submit, "submit time"); err != nil {
			return nil, err
		}
		if j.RunTime, err = get(4); err != nil {
			return nil, err
		}
		if err = check(4, j.RunTime, "run time"); err != nil {
			return nil, err
		}
		if f, err = get(5); err != nil {
			return nil, err
		}
		if err = check(5, f, "processor count"); err != nil {
			return nil, err
		}
		j.Cores = int(f)
		usedMemKB, err := get(7)
		if err != nil {
			return nil, err
		}
		if err = check(7, usedMemKB, "used memory"); err != nil {
			return nil, err
		}
		if j.EstimatedRunTime, err = get(9); err != nil {
			return nil, err
		}
		if err = check(9, j.EstimatedRunTime, "requested time"); err != nil {
			return nil, err
		}
		reqMemKB, err := get(10)
		if err != nil {
			return nil, err
		}
		if err = check(10, reqMemKB, "requested memory"); err != nil {
			return nil, err
		}
		if f, err = get(11); err != nil {
			return nil, err
		}
		j.Status = int(f)

		// Normalize SWF missing-value markers.
		if j.RunTime < 0 {
			j.RunTime = 0
		}
		if j.EstimatedRunTime < 0 {
			j.EstimatedRunTime = j.RunTime
		}
		if j.Cores < 0 {
			j.Cores = 0
		}
		memKB := usedMemKB
		if memKB < 0 {
			memKB = reqMemKB
		}
		if memKB < 0 {
			memKB = 0
		}
		// KB per processor -> total GB.
		j.MemoryGB = memKB / 1024 / 1024 * float64(max(j.Cores, 1))
		if j.Submit < 0 {
			j.Submit = 0
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading swf: %w", err)
	}
	return jobs, nil
}

// WriteSWF serializes jobs in SWF. Fields this package does not model are
// written as -1 per the SWF convention. The memory fields are converted
// back to KB per processor.
func WriteSWF(w io.Writer, jobs []Job, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
			if _, err := fmt.Fprintf(bw, "; %s\n", line); err != nil {
				return err
			}
		}
	}
	for _, j := range jobs {
		memKBPerCore := -1.0
		if j.Cores > 0 {
			memKBPerCore = j.MemoryGB / float64(j.Cores) * 1024 * 1024
		}
		// 18 fields: id submit wait run procs avgcpu usedmem reqprocs
		// reqtime reqmem status uid gid exe queue partition precede think
		if _, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 %d %d %d %d %d -1 -1 -1 -1 -1 -1 -1\n",
			j.ID, int(j.Submit), int(j.RunTime), j.Cores,
			int(memKBPerCore), j.Cores, int(j.EstimatedRunTime), int(memKBPerCore), j.Status); err != nil {
			return err
		}
	}
	return bw.Flush()
}
