package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const sampleSWF = `; Computer: test cluster
; Version: 2.2
1 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1
2 100 0 60 1 -1 -1 1 -1 262144 5 10 20 1 1 1 -1 -1
3 200 0 -1 2 -1 1048576 2 3600 -1 0 10 20 1 1 1 -1 -1
`

func TestParseSWF(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}

	j := jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.RunTime != 3600 || j.Cores != 4 {
		t.Errorf("job 1 = %+v", j)
	}
	// 524288 KB/core * 4 cores = 2 GB total.
	if math.Abs(j.MemoryGB-2) > 1e-9 {
		t.Errorf("job 1 mem = %g, want 2", j.MemoryGB)
	}
	if j.EstimatedRunTime != 7200 || j.Status != 1 {
		t.Errorf("job 1 est/status = %g/%d", j.EstimatedRunTime, j.Status)
	}

	// Job 2: used memory missing -> requested memory (262144 KB = 0.25 GB),
	// requested time missing -> runtime.
	j = jobs[1]
	if math.Abs(j.MemoryGB-0.25) > 1e-9 {
		t.Errorf("job 2 mem = %g, want 0.25", j.MemoryGB)
	}
	if j.EstimatedRunTime != 60 {
		t.Errorf("job 2 est = %g, want runtime fallback 60", j.EstimatedRunTime)
	}
	if j.Status != StatusCancelled {
		t.Errorf("job 2 status = %d", j.Status)
	}

	// Job 3: runtime missing -> 0.
	if jobs[2].RunTime != 0 {
		t.Errorf("job 3 runtime = %g, want 0", jobs[2].RunTime)
	}
}

func TestParseSWFErrors(t *testing.T) {
	good := "1 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n"
	cases := map[string]struct {
		in   string
		want string // substring the positional error must contain
	}{
		"short line":  {"1 0 5\n", "line 1 has 3 fields"},
		"long line":   {"1 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1 99\n", "line 1 has 19 fields"},
		"bad number":  {"x 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n", "line 1 field 1"},
		"negative id": {"-2 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n", "negative job ID"},
		"negative submit": {"1 -7 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n",
			"line 1 field 2: negative submit time -7"},
		"negative runtime": {"1 0 5 -3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n",
			"line 1 field 4: negative run time -3600"},
		"negative processors": {"1 0 5 3600 -4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n",
			"line 1 field 5: negative processor count -4"},
		"negative used memory": {"1 0 5 3600 4 -1 -524288 4 7200 -1 1 10 20 1 1 1 -1 -1\n",
			"line 1 field 7: negative used memory"},
		"negative requested time": {"1 0 5 3600 4 -1 524288 4 -7200 -1 1 10 20 1 1 1 -1 -1\n",
			"line 1 field 9: negative requested time"},
		"negative requested memory": {"1 0 5 3600 4 -1 524288 4 7200 -9 1 10 20 1 1 1 -1 -1\n",
			"line 1 field 10: negative requested memory"},
		"duplicate job id": {good + "2 1 5 60 1 -1 -1 1 -1 -1 1 10 20 1 1 1 -1 -1\n" +
			"1 2 5 60 1 -1 -1 1 -1 -1 1 10 20 1 1 1 -1 -1\n",
			"line 3: duplicate job ID 1 (first at line 1)"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseSWF(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("parse accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestParseSWFMissingMarkersStillNormalize pins that hardening the
// parser kept the -1 convention intact: every consumed field may still
// be exactly -1 (WriteSWF emits -1 for unmodeled fields, so the
// round-trip depends on it).
func TestParseSWFMissingMarkersStillNormalize(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader("7 -1 -1 -1 -1 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"))
	if err != nil {
		t.Fatal(err)
	}
	j := jobs[0]
	if j.Submit != 0 || j.RunTime != 0 || j.Cores != 0 || j.EstimatedRunTime != 0 || j.MemoryGB != 0 {
		t.Errorf("missing markers not normalized: %+v", j)
	}
}

func TestParseSWFEmptyAndComments(t *testing.T) {
	jobs, err := ParseSWF(strings.NewReader("; only comments\n\n;\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Errorf("jobs = %d, want 0", len(jobs))
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig := []Job{
		{ID: 1, Submit: 0, RunTime: 3600, EstimatedRunTime: 7200, Cores: 4, MemoryGB: 2, Status: 1},
		{ID: 2, Submit: 50, RunTime: 60, EstimatedRunTime: 60, Cores: 1, MemoryGB: 0.25, Status: 5},
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig, "synthetic trace\nline two"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "; synthetic trace\n; line two\n") {
		t.Errorf("header = %q", buf.String()[:40])
	}
	back, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip jobs = %d", len(back))
	}
	for i := range orig {
		a, b := orig[i], back[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.RunTime != b.RunTime ||
			a.Cores != b.Cores || a.Status != b.Status ||
			math.Abs(a.MemoryGB-b.MemoryGB) > 1e-6 ||
			a.EstimatedRunTime != b.EstimatedRunTime {
			t.Errorf("job %d: %+v != %+v", i, a, b)
		}
	}
}

func TestWriteSWFNoHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSWF(&buf, []Job{{ID: 1, Cores: 1, MemoryGB: 1, Status: 1}}, ""); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), ";") {
		t.Error("unexpected header")
	}
}

func TestGeneratedTraceRoundTripsThroughSWF(t *testing.T) {
	cfg := DefaultWeekConfig(3)
	cfg.DailyJobs = []int{40, 60}
	jobs := MustGenerate(cfg)
	var buf bytes.Buffer
	if err := WriteSWF(&buf, jobs, "gen"); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d -> %d", len(jobs), len(back))
	}
	for i := range jobs {
		if int(jobs[i].Submit) != int(back[i].Submit) || jobs[i].Cores != back[i].Cores {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, jobs[i], back[i])
		}
		if math.Abs(jobs[i].MemoryGB-back[i].MemoryGB) > 1e-5 {
			t.Fatalf("job %d memory drift: %g vs %g", i, jobs[i].MemoryGB, back[i].MemoryGB)
		}
	}
}
