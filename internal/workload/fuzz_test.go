package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseSWF drives the SWF parser with arbitrary input: it must never
// panic, and anything it accepts must survive a write/parse round trip
// with consistent record counts. Run with `go test -fuzz=FuzzParseSWF`
// for exploration; the seed corpus below runs in every `go test`.
func FuzzParseSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("")
	f.Add("; comment only\n")
	f.Add("1 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1")
	f.Add("not a trace at all")
	f.Add("1 2 3\n4 5 6\n")
	f.Add("-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("1 0 5 3600 4 -1 524288 4 7200 -1 1 10 20 1 1 1 -1 -1 extra fields here\n")
	f.Add(strings.Repeat("9 ", 18) + "\n")

	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := ParseSWF(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, j := range jobs {
			// Parsed jobs must satisfy the normalization guarantees.
			if j.Submit < 0 || j.RunTime < 0 || j.EstimatedRunTime < 0 || j.MemoryGB < 0 {
				t.Fatalf("negative field survived normalization: %+v", j)
			}
		}
		var buf bytes.Buffer
		if err := WriteSWF(&buf, jobs, ""); err != nil {
			t.Fatalf("write of parsed jobs failed: %v", err)
		}
		back, err := ParseSWF(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if len(back) != len(jobs) {
			t.Fatalf("round trip count %d != %d", len(back), len(jobs))
		}
	})
}
