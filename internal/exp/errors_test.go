package exp

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestParallelComparisonJoinsAllErrors pins the fixed error contract:
// when several schemes fail, every failure is reported — under
// parallelism "first error wins" used to mean "whichever goroutine lost
// the race wins", silently dropping the rest.
func TestParallelComparisonJoinsAllErrors(t *testing.T) {
	opts := smallOptions()
	opts.Schemes = []string{"bogus-a", "first-fit", "bogus-b"}
	_, err := ParallelComparison(opts)
	if err == nil {
		t.Fatal("comparison with two bogus schemes succeeded")
	}
	for _, scheme := range []string{"bogus-a", "bogus-b"} {
		if !strings.Contains(err.Error(), scheme) {
			t.Errorf("joined error does not mention %s:\n%v", scheme, err)
		}
	}
	if strings.Contains(err.Error(), "scheme first-fit:") {
		t.Errorf("error blames the healthy scheme:\n%v", err)
	}
}

// TestSweepGenericJoinsAllErrors covers the generic Sweep fan-out: every
// failed item index must appear in the joined error.
func TestSweepGenericJoinsAllErrors(t *testing.T) {
	params := []int{0, 1, 2, 3}
	_, err := Sweep(params, func(p int) (*SchemeRun, error) {
		if p%2 == 0 {
			return nil, fmt.Errorf("boom %d", p)
		}
		return &SchemeRun{}, nil
	})
	if err == nil {
		t.Fatal("sweep with failing items succeeded")
	}
	for _, want := range []string{"sweep item 0", "sweep item 2", "boom 0", "boom 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
	if strings.Contains(err.Error(), "item 1") || strings.Contains(err.Error(), "item 3") {
		t.Errorf("error blames healthy items:\n%v", err)
	}
}

// TestRobustnessStudyJoinsAllErrors: a broken scheme fails at every seed,
// and the study must name each (scheme, seed) pair.
func TestRobustnessStudyJoinsAllErrors(t *testing.T) {
	base := smallOptions()
	base.Schemes = []string{"first-fit", "no-such-scheme"}
	base.TraceGen = sweepTrace
	_, err := RobustnessStudy(2, base)
	if err == nil {
		t.Fatal("study with a bogus scheme succeeded")
	}
	for seed := 1; seed <= 2; seed++ {
		want := fmt.Sprintf("(scheme no-such-scheme, seed %d)", seed)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %s:\n%v", want, err)
		}
	}
	if strings.Contains(err.Error(), "scheme first-fit") {
		t.Errorf("error blames the healthy scheme:\n%v", err)
	}
}

// TestRobustnessStudyObserverPerSeed is the regression test for the
// shared-observer hazard: the study runs the same scheme concurrently at
// every seed, so a scheme-keyed Observe callback used to hand all those
// runs one sink (and cmd/experiments-style file sinks collided on the
// same path). The study must now disambiguate the key per seed and every
// run must end up with a private observer.
func TestRobustnessStudyObserverPerSeed(t *testing.T) {
	const n = 3
	base := smallOptions()
	base.Schemes = []string{"first-fit", "dynamic"}
	base.TraceGen = sweepTrace
	var mu sync.Mutex
	handed := map[string]*obs.Observer{}
	base.Observe = func(key string) *obs.Observer {
		o := obs.New()
		mu.Lock()
		defer mu.Unlock()
		if _, dup := handed[key]; dup {
			t.Errorf("Observe key %q handed out twice — concurrent runs would share a sink", key)
		}
		handed[key] = o
		return o
	}
	if _, err := RobustnessStudy(n, base); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if want := n * len(base.Schemes); len(handed) != want {
		t.Fatalf("%d distinct observer keys, want %d: %v", len(handed), want, keys(handed))
	}
	for _, scheme := range base.Schemes {
		for seed := 1; seed <= n; seed++ {
			key := fmt.Sprintf("%s@seed%d", scheme, seed)
			if _, ok := handed[key]; !ok {
				t.Errorf("no observer handed for %s", key)
			}
		}
	}
}

func keys(m map[string]*obs.Observer) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
