package exp

import (
	"encoding/json"
	"io"

	"repro/internal/metrics"
)

// RunRecord is the JSON-serializable snapshot of one scheme run, written
// by cmd/experiments so external plotting tools can consume results
// without re-running the simulator.
type RunRecord struct {
	Scheme        string          `json:"scheme"`
	WeekEnergyKWh float64         `json:"week_energy_kwh"`
	Summary       metrics.Summary `json:"summary"`

	// HourlyActivePMs and HourlyEnergyKWh are clipped to the figure
	// window (WeekHours samples).
	HourlyActivePMs []float64 `json:"hourly_active_pms"`
	HourlyEnergyKWh []float64 `json:"hourly_energy_kwh"`

	Migrations int `json:"migrations"`
	Failures   int `json:"failures"`
}

// Record converts a run into its serializable form.
func Record(r *SchemeRun) RunRecord {
	return RunRecord{
		Scheme:          r.Scheme,
		WeekEnergyKWh:   r.WeekEnergyKWh,
		Summary:         r.Summary,
		HourlyActivePMs: truncate(r.ActivePMs, WeekHours).Values,
		HourlyEnergyKWh: truncate(r.EnergyKWh, WeekHours).Values,
		Migrations:      len(r.Moves),
		Failures:        r.Failures,
	}
}

// WriteJSON serializes runs as an indented JSON array.
func WriteJSON(w io.Writer, runs []*SchemeRun) error {
	records := make([]RunRecord, len(runs))
	for i, r := range runs {
		records[i] = Record(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ReadJSON decodes a result file written by WriteJSON.
func ReadJSON(r io.Reader) ([]RunRecord, error) {
	var records []RunRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, err
	}
	return records, nil
}
