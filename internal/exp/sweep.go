package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file implements the replication sweep runner: R seeds x S schemes
// simulated across GOMAXPROCS workers with a work-stealing scheduler and
// a deterministic merge. Policy comparisons only mean something across
// many replications (one seed is one sample), and the runs are
// embarrassingly parallel — each owns a private fleet, placer, and RNG
// stream — so the sweep saturates the machine while guaranteeing the
// merged report is byte-identical no matter how many workers ran it or in
// what order they finished.
//
// Scheduling. The task list is the full cross product, indexed
// scheme-major (task = si*len(seeds)+vi). Each worker starts with an
// interleaved share (worker w owns tasks w, w+W, w+2W, ...) held in a
// private queue with an atomic take cursor; a worker that drains its own
// queue steals from the others round-robin. Interleaving spreads each
// scheme's runs across all workers (scheme costs differ wildly — dynamic
// consolidates, first-fit doesn't), and stealing absorbs whatever
// imbalance remains. Every take is a fetch-add on the owning queue's
// cursor, so a task runs exactly once regardless of which worker takes it.
//
// Memory. A completed run is reduced to a compact SweepRun immediately,
// on the worker, before the next task starts — the full sim.Result (the
// hourly series, the event machinery) becomes garbage right away, so live
// heavy state is bounded by the worker count, not the sweep size. Traces
// are generated once per seed (lazily, by whichever worker first needs
// one) and shared read-only across the schemes replaying that seed.
//
// Determinism. Workers write results only at their task's index, so the
// result slice is in (scheme, seed) order by construction — no sort, no
// completion-order dependence — and each run is the deterministic
// function of its (scheme, seed) alone. The report records nothing about
// the execution (no worker count, no timing), so its JSON encoding is
// byte-identical across worker counts; TestSweepDeterministicAcrossWorkers
// pins exactly that.

// SweepOptions configures a replication sweep.
type SweepOptions struct {
	// Base supplies the per-run configuration template: fleet, failures,
	// spare policy, and (via TraceGen) the workload family. Base.Seed,
	// Base.Schemes, and Base.Observe are ignored — the sweep's own
	// fields drive those. When Base.Trace is set, every run replays that
	// fixed trace and seeds vary only the schemes' internal randomness.
	Base Options

	// Schemes lists the placement schemes to replicate; default is the
	// paper's trio.
	Schemes []string

	// Seeds lists the replication seeds. Each (scheme, seed) pair is one
	// run; the seed drives both workload generation and the scheme's
	// internal randomness.
	Seeds []int64

	// Workers bounds the concurrent runs; <= 0 selects GOMAXPROCS. The
	// merged report is identical for every worker count.
	Workers int

	// Observe, when set, is called once per run (before it starts) with
	// the run's scheme and seed, returning that run's private
	// observability sink or nil. Unlike Options.Observe it is keyed by
	// both coordinates: replications of the same scheme run concurrently,
	// so a per-scheme sink would be shared across live runs.
	Observe func(scheme string, seed int64) *obs.Observer
}

// SweepRun is one replication's reduced result — the per-run scalars the
// aggregates are computed from, small enough to keep R*S of them around.
type SweepRun struct {
	Scheme string
	Seed   int64

	WeekEnergyKWh   float64
	TotalEnergyKWh  float64
	MeanActivePMs   float64
	PeakActivePMs   float64
	Migrations      int
	Boots           int
	VMsCompleted    int
	QueuedFraction  float64
	MeanWaitSeconds float64
}

// Moments summarizes one metric across a scheme's replications.
type Moments struct {
	Mean, StdDev, Min, Max float64
}

// SweepAggregate is the cross-replication summary for one scheme.
type SweepAggregate struct {
	Scheme string
	Runs   int

	WeekEnergyKWh   Moments
	MeanActivePMs   Moments
	Migrations      Moments
	QueuedFraction  Moments
	MeanWaitSeconds Moments
}

// SweepReport is the deterministic merge of a sweep: every run in
// (scheme, seed) order plus per-scheme aggregates. It deliberately
// records nothing about how the sweep executed (worker count, timing), so
// its JSON encoding is byte-identical across worker counts.
type SweepReport struct {
	Schemes    []string
	Seeds      []int64
	Runs       []SweepRun
	Aggregates []SweepAggregate
}

// sweepQueue is one worker's task share. pos is bumped with a fetch-add
// on every take — by the owner or a thief — so each task is handed out
// exactly once. The padding keeps neighboring queues' cursors off one
// cache line (the cursors are the only cross-worker write traffic).
type sweepQueue struct {
	pos   atomic.Int64
	tasks []int32
	_     [32]byte
}

// take claims the queue's next task, returning ok=false once drained.
func (q *sweepQueue) take() (int32, bool) {
	i := q.pos.Add(1) - 1
	if int(i) >= len(q.tasks) {
		return 0, false
	}
	return q.tasks[i], true
}

// traceCell lazily materializes one seed's workload, once, no matter
// which worker asks first.
type traceCell struct {
	once sync.Once
	reqs []workload.Request
}

// RunSweep executes the full (scheme, seed) cross product and returns the
// deterministic merged report. On failure it returns a joined error
// naming every failed (scheme, seed) pair — completed runs are not
// discarded silently, and one bad pair does not mask the others.
func RunSweep(opts SweepOptions) (*SweepReport, error) {
	if len(opts.Schemes) == 0 {
		opts.Schemes = DefaultOptions(0).Schemes
	}
	if len(opts.Seeds) == 0 {
		return nil, fmt.Errorf("exp: sweep needs at least one seed")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nTasks := len(opts.Schemes) * len(opts.Seeds)
	if workers > nTasks {
		workers = nTasks
	}
	// Charge the replication workers against the process-wide goroutine
	// budget shared with the in-run kernels (core.MatrixOptions.Workers):
	// a saturated sweep drains the budget, so auto-sized kernel
	// parallelism inside the runs stays serial instead of
	// oversubscribing the host. Explicit per-run kernel counts
	// (Base.KernelWorkers > 1) still spawn what they were asked for.
	defer core.ReturnWorkers(core.BorrowWorkers(workers - 1))

	gen := opts.Base.TraceGen
	if gen == nil {
		gen = func(seed int64) []workload.Request {
			_, reqs := WeekTrace(seed)
			return reqs
		}
	}
	traces := make([]traceCell, len(opts.Seeds))
	trace := func(vi int) []workload.Request {
		if opts.Base.Trace != nil {
			return opts.Base.Trace
		}
		c := &traces[vi]
		c.once.Do(func() { c.reqs = gen(opts.Seeds[vi]) })
		return c.reqs
	}

	// Interleaved initial shares: worker w owns tasks w, w+W, w+2W, ...
	queues := make([]sweepQueue, workers)
	for w := range queues {
		share := make([]int32, 0, nTasks/workers+1)
		for t := w; t < nTasks; t += workers {
			share = append(share, int32(t))
		}
		queues[w].tasks = share
	}

	runs := make([]SweepRun, nTasks)
	errs := make([]error, nTasks)
	runTask := func(t int) {
		si, vi := t/len(opts.Seeds), t%len(opts.Seeds)
		scheme, seed := opts.Schemes[si], opts.Seeds[vi]
		ro := opts.Base
		ro.Seed = seed
		ro.Trace = nil
		ro.TraceGen = nil
		ro.Observe = nil
		if opts.Observe != nil {
			ro.Observe = func(name string) *obs.Observer { return opts.Observe(name, seed) }
		}
		run, err := RunScheme(scheme, trace(vi), ro)
		if err != nil {
			errs[t] = fmt.Errorf("exp: sweep (scheme %s, seed %d): %w", scheme, seed, err)
			return
		}
		// Reduce on the worker: the full Result becomes garbage before
		// the next task starts, bounding live state to the worker count.
		s := run.Summary
		runs[t] = SweepRun{
			Scheme:          scheme,
			Seed:            seed,
			WeekEnergyKWh:   run.WeekEnergyKWh,
			TotalEnergyKWh:  s.TotalEnergyKWh,
			MeanActivePMs:   s.MeanActivePMs,
			PeakActivePMs:   s.PeakActivePMs,
			Migrations:      s.Migrations,
			Boots:           s.Boots,
			VMsCompleted:    s.VMsCompleted,
			QueuedFraction:  s.QueuedFraction,
			MeanWaitSeconds: s.MeanWaitSeconds,
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Drain the own queue first, then steal round-robin. Takes
			// are monotone, so a drained queue stays drained and one
			// pass over the queues visits every remaining task.
			for hop := 0; hop < workers; hop++ {
				q := &queues[(self+hop)%workers]
				for {
					t, ok := q.take()
					if !ok {
						break
					}
					runTask(int(t))
				}
			}
		}(w)
	}
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	report := &SweepReport{
		Schemes: append([]string(nil), opts.Schemes...),
		Seeds:   append([]int64(nil), opts.Seeds...),
		Runs:    runs,
	}
	for si, scheme := range opts.Schemes {
		block := runs[si*len(opts.Seeds) : (si+1)*len(opts.Seeds)]
		report.Aggregates = append(report.Aggregates, aggregate(scheme, block))
	}
	return report, nil
}

// aggregate folds one scheme's replications into cross-seed moments. The
// fold order is the fixed seed order, so the float sums — and therefore
// the report bytes — do not depend on completion order.
func aggregate(scheme string, block []SweepRun) SweepAggregate {
	n := len(block)
	week := make([]float64, n)
	active := make([]float64, n)
	migs := make([]float64, n)
	queued := make([]float64, n)
	wait := make([]float64, n)
	for i, r := range block {
		week[i] = r.WeekEnergyKWh
		active[i] = r.MeanActivePMs
		migs[i] = float64(r.Migrations)
		queued[i] = r.QueuedFraction
		wait[i] = r.MeanWaitSeconds
	}
	return SweepAggregate{
		Scheme:          scheme,
		Runs:            n,
		WeekEnergyKWh:   moments(week),
		MeanActivePMs:   moments(active),
		Migrations:      moments(migs),
		QueuedFraction:  moments(queued),
		MeanWaitSeconds: moments(wait),
	}
}

func moments(xs []float64) Moments {
	m := Moments{Mean: stats.Mean(xs), StdDev: stats.StdDev(xs)}
	if len(xs) == 0 {
		return m
	}
	m.Min, m.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < m.Min {
			m.Min = x
		}
		if x > m.Max {
			m.Max = x
		}
	}
	return m
}
