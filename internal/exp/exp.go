// Package exp assembles the paper's experiments: it wires the workload
// generator, the Table II fleet, the placement schemes, and the simulator
// into the exact runs behind each figure and table of Section V, plus the
// ablation studies listed in DESIGN.md. Both cmd/experiments and the
// repository-root benchmarks drive this package.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
	"repro/internal/workload"
)

// WeekHours is the length of the paper's evaluation window: Figures 3-5
// plot one week. Jobs still running past the window complete (and the
// summary's total energy includes them), but figure series are truncated
// here.
const WeekHours = 168

// Options configures a comparison run.
type Options struct {
	// Seed drives workload generation and the randomized schemes.
	Seed int64

	// Schemes lists the placement schemes to compare; default is the
	// paper's trio (first-fit, best-fit, dynamic).
	Schemes []string

	// SpareForDynamic attaches the Section IV spare-server controller
	// to the dynamic scheme (the paper's full system). Static schemes
	// never get one.
	SpareForDynamic bool

	// Fleet builds the data center per run; default Table II.
	Fleet func() *cluster.Datacenter

	// Failures optionally injects PM failures into every run.
	Failures failure.Config

	// Trace overrides the generated week workload (used by tests and
	// custom studies); nil selects WeekTrace(Seed).
	Trace []workload.Request

	// TraceGen, when set, supplies the per-seed workload for studies
	// that resample across seeds (RobustnessStudy); nil selects
	// WeekTrace.
	TraceGen func(seed int64) []workload.Request

	// CandidateK, when positive, runs the dynamic scheme through the
	// sparse candidate-set engine (core.MatrixOptions.CandidateK): top-K
	// score-group placement, bit-identical to the dense kernel. Static
	// schemes ignore it.
	CandidateK int

	// KernelWorkers bounds the goroutines the dynamic scheme's placement
	// kernels fan out on inside each run (sim.Config.KernelWorkers /
	// core.MatrixOptions.Workers). Zero auto-sizes against the
	// process-wide goroutine budget — which a parallel sweep drains
	// first, so replication-level parallelism takes precedence over
	// kernel-level; one forces the serial path; results are bit-identical
	// at every setting. Static schemes ignore it.
	KernelWorkers int

	// Cells, when > 1, runs every scheme through the sharded multi-cell
	// engine (sim.Config.Cells): the fleet is partitioned into that many
	// cells advanced by the shared-clock orchestrator, with decisions —
	// and therefore results — bit-identical to the monolith. 0 or 1
	// selects the monolithic engine.
	Cells int

	// Observe, when set, is called once per simulation run (before it
	// starts) with the scheme's name and must return that run's private
	// observability sink, or nil to leave the run uninstrumented. The
	// harness fans runs out in parallel (ParallelComparison, Sweep), so
	// a fresh Observer per call is required for per-run metrics — a
	// shared one would pool counters across concurrently running
	// schemes. The observer is reachable afterwards via SchemeRun.Obs.
	Observe func(scheme string) *obs.Observer
}

// DefaultOptions returns the paper's evaluation setup.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:            seed,
		Schemes:         []string{"first-fit", "best-fit", "dynamic"},
		SpareForDynamic: true,
	}
}

// WeekTrace generates, filters, and splits the week-long workload exactly
// as Section V.A describes: synthesize the LPC-like trace, drop cancelled
// and small-memory jobs, and normalize memory per core into single-core VM
// requests.
func WeekTrace(seed int64) ([]workload.Job, []workload.Request) {
	jobs := workload.MustGenerate(workload.DefaultWeekConfig(seed))
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	return jobs, workload.ToRequests(jobs)
}

// SchemeRun couples a simulation result with its figure-window slice.
type SchemeRun struct {
	*sim.Result

	// WeekEnergyKWh is the energy consumed during the first WeekHours
	// (the quantity Figures 4-5 integrate).
	WeekEnergyKWh float64

	// Obs is this run's private observability sink (nil unless
	// Options.Observe supplied one).
	Obs *obs.Observer
}

// RunScheme simulates one scheme over the given requests on a fresh fleet.
func RunScheme(name string, reqs []workload.Request, opts Options) (*SchemeRun, error) {
	placer, err := policy.ByName(name, opts.Seed)
	if err != nil {
		return nil, err
	}
	_, isDyn := policy.DynamicOf(placer)
	return runPlacer(placer, isDyn, reqs, opts)
}

func runPlacer(placer policy.Placer, wantSpare bool, reqs []workload.Request, opts Options) (*SchemeRun, error) {
	fleet := opts.Fleet
	if fleet == nil {
		fleet = cluster.TableIIFleet
	}
	if d, ok := policy.DynamicOf(placer); ok && opts.CandidateK > 0 {
		d.Opts.CandidateK = opts.CandidateK
	}
	cfg := sim.Config{
		DC:            fleet(),
		Placer:        placer,
		Requests:      reqs,
		Failures:      opts.Failures,
		Cells:         opts.Cells,
		KernelWorkers: opts.KernelWorkers,
	}
	if wantSpare && opts.SpareForDynamic {
		sc := spare.DefaultConfig()
		cfg.Spare = &sc
	}
	if opts.Observe != nil {
		cfg.Obs = opts.Observe(placer.Name())
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: scheme %s: %w", placer.Name(), err)
	}
	run := &SchemeRun{Result: res, Obs: cfg.Obs}
	for i := 0; i < WeekHours && i < res.EnergyKWh.Len(); i++ {
		run.WeekEnergyKWh += res.EnergyKWh.At(i)
	}
	return run, nil
}

// Comparison runs every scheme in opts over the same trace.
func Comparison(opts Options) ([]*SchemeRun, error) {
	if len(opts.Schemes) == 0 {
		opts.Schemes = DefaultOptions(opts.Seed).Schemes
	}
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}
	runs := make([]*SchemeRun, 0, len(opts.Schemes))
	for _, name := range opts.Schemes {
		r, err := RunScheme(name, reqs, opts)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// truncate clips a series to the figure window.
func truncate(s *metrics.Series, n int) *metrics.Series {
	out := metrics.NewSeries(s.Name, s.Step)
	for i := 0; i < n && i < s.Len(); i++ {
		out.Append(s.At(i))
	}
	return out
}

// Fig3Table builds Figure 3: hourly active-server counts per scheme over
// the week.
func Fig3Table(runs []*SchemeRun) *metrics.Table {
	t := &metrics.Table{TimeLabel: "hour"}
	for _, r := range runs {
		t.Series = append(t.Series, truncate(r.ActivePMs, WeekHours))
	}
	return t
}

// Fig4Table builds Figure 4: hourly energy (kWh per hour, numerically the
// mean kW) per scheme over the week.
func Fig4Table(runs []*SchemeRun) *metrics.Table {
	t := &metrics.Table{TimeLabel: "hour"}
	for _, r := range runs {
		t.Series = append(t.Series, truncate(r.EnergyKWh, WeekHours))
	}
	return t
}

// Fig5Table builds Figure 5: daily energy per scheme over the week.
func Fig5Table(runs []*SchemeRun) *metrics.Table {
	t := &metrics.Table{TimeLabel: "day"}
	for _, r := range runs {
		t.Series = append(t.Series, truncate(r.EnergyKWh, WeekHours).Downsample(24))
	}
	return t
}

// Fig2Report renders the workload characteristics of Figure 2.
func Fig2Report(seed int64) string {
	jobs, reqs := WeekTrace(seed)
	s := workload.Summarize(jobs)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — workload characteristics (seed %d)\n", seed)
	fmt.Fprintf(&b, "jobs after filtering: %d (paper: 4574)\n", len(jobs))
	fmt.Fprintf(&b, "single-core VM requests: %d\n", len(reqs))
	fmt.Fprintf(&b, "\n(a) VM requests per day (paper peak: 982 jobs/day):\n")
	for d, n := range s.JobsPerDay {
		fmt.Fprintf(&b, "  day %d: %d requests\n", d, n)
	}
	fmt.Fprintf(&b, "peak day: %d with %d requests\n", s.PeakDay, s.PeakDayRequests)
	fmt.Fprintf(&b, "\n(b) per-request memory (GB); %.1f%% below 1 GB (paper: most jobs < 1 GB):\n%s",
		s.UnderOneGB*100, s.MemHistogram.String())
	fmt.Fprintf(&b, "\n(c) runtime (hours); %d jobs < 1 day (paper: 2077 — see EXPERIMENTS.md\n"+
		"    for the load-feasibility recalibration note):\n%s",
		s.UnderOneDay, s.RuntimeHistogram.String())
	return b.String()
}

// Table2Report renders the Table II parameters actually encoded in the
// fleet, for verification against the paper.
func Table2Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — data center parameter settings\n")
	fmt.Fprintf(&b, "%-30s %8s %8s\n", "", "Fast", "Slow")
	rows := []struct {
		label      string
		fast, slow float64
	}{
		{"Number", 25, 75},
		{"VM creation time (s)", cluster.FastClass.CreationTime, cluster.SlowClass.CreationTime},
		{"VM migration time (s)", cluster.FastClass.MigrationTime, cluster.SlowClass.MigrationTime},
		{"ON/OFF overhead (s)", cluster.FastClass.OnOffOverhead, cluster.SlowClass.OnOffOverhead},
		{"Total cores", cluster.FastClass.Capacity[cluster.ResCPU], cluster.SlowClass.Capacity[cluster.ResCPU]},
		{"Memory (GB)", cluster.FastClass.Capacity[cluster.ResMem], cluster.SlowClass.Capacity[cluster.ResMem]},
		{"Active power (W)", cluster.FastClass.ActivePower, cluster.SlowClass.ActivePower},
		{"Idle power (W)", cluster.FastClass.IdlePower, cluster.SlowClass.IdlePower},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %8g %8g\n", r.label, r.fast, r.slow)
	}
	dc := cluster.TableIIFleet()
	counts := map[string]int{}
	for _, p := range dc.PMs() {
		counts[p.Class.Name]++
	}
	fmt.Fprintf(&b, "fleet check: %d fast + %d slow = %d nodes\n", counts["fast"], counts["slow"], dc.Size())
	return b.String()
}

// SummaryRows converts scheme runs into summary rows (figure-window energy
// replaces whole-run energy so the comparison matches the paper's plots).
func SummaryRows(runs []*SchemeRun) []metrics.Summary {
	rows := make([]metrics.Summary, 0, len(runs))
	for _, r := range runs {
		s := r.Summary
		s.TotalEnergyKWh = r.WeekEnergyKWh
		rows = append(rows, s)
	}
	return rows
}

// SavingsReport states the headline result: dynamic's energy saving over
// each baseline within the figure window.
func SavingsReport(runs []*SchemeRun) string {
	var dyn *SchemeRun
	for _, r := range runs {
		if strings.HasPrefix(r.Scheme, "dynamic") {
			dyn = r
			break
		}
	}
	if dyn == nil {
		return "no dynamic run in comparison\n"
	}
	ordered := append([]*SchemeRun(nil), runs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].WeekEnergyKWh < ordered[j].WeekEnergyKWh })
	var b strings.Builder
	for _, r := range ordered {
		if r == dyn {
			continue
		}
		save := (r.WeekEnergyKWh - dyn.WeekEnergyKWh) / r.WeekEnergyKWh * 100
		fmt.Fprintf(&b, "dynamic vs %-10s week energy %7.1f vs %7.1f kWh -> %+.1f%% saving\n",
			r.Scheme, dyn.WeekEnergyKWh, r.WeekEnergyKWh, save)
	}
	return b.String()
}
