package exp

import (
	"errors"
	"fmt"
	"sync"
)

// ParallelComparison runs every scheme in opts concurrently, one goroutine
// per scheme. Each run owns a private fleet and placer (sim state is
// single-threaded per run; runs share nothing but the immutable request
// slice), so this is a safe, embarrassingly parallel fan-out that cuts the
// wall-clock of cmd/experiments roughly by the scheme count. Results come
// back in the order of opts.Schemes regardless of completion order.
func ParallelComparison(opts Options) ([]*SchemeRun, error) {
	if len(opts.Schemes) == 0 {
		opts.Schemes = DefaultOptions(opts.Seed).Schemes
	}
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}

	runs := make([]*SchemeRun, len(opts.Schemes))
	errs := make([]error, len(opts.Schemes))
	var wg sync.WaitGroup
	for i, name := range opts.Schemes {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			runs[i], errs[i] = RunScheme(name, reqs, opts)
		}(i, name)
	}
	wg.Wait()

	// Join every failure rather than reporting the first: under
	// parallelism the "first" error is whichever scheme happened to lose
	// the race, and a masked failure in another scheme would go
	// unnoticed until a later run.
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("exp: parallel scheme %s: %w", opts.Schemes[i], err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return runs, nil
}

// Sweep runs fn for every parameter value concurrently and returns results
// in input order. It is the generic fan-out behind parallel ablation
// sweeps: fn must be self-contained (build its own fleet, share nothing
// mutable).
func Sweep[P any](params []P, fn func(P) (*SchemeRun, error)) ([]*SchemeRun, error) {
	runs := make([]*SchemeRun, len(params))
	errs := make([]error, len(params))
	var wg sync.WaitGroup
	for i, p := range params {
		wg.Add(1)
		go func(i int, p P) {
			defer wg.Done()
			runs[i], errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("exp: sweep item %d: %w", i, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return runs, nil
}
