package exp

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestParallelComparisonMatchesSequential(t *testing.T) {
	opts := smallOptions()
	seq, err := Comparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Scheme != par[i].Scheme {
			t.Errorf("order differs at %d: %s vs %s", i, seq[i].Scheme, par[i].Scheme)
		}
		if seq[i].WeekEnergyKWh != par[i].WeekEnergyKWh {
			t.Errorf("%s energy differs: %g vs %g",
				seq[i].Scheme, seq[i].WeekEnergyKWh, par[i].WeekEnergyKWh)
		}
		if seq[i].Summary.Migrations != par[i].Summary.Migrations {
			t.Errorf("%s migrations differ", seq[i].Scheme)
		}
	}
}

// TestParallelComparisonObserverIsolation proves the per-run metrics
// sinks stay private when schemes run concurrently: each run must end up
// with its own Observer (never shared), and each registry's counters must
// match that run's own results rather than a pooled total across schemes.
func TestParallelComparisonObserverIsolation(t *testing.T) {
	opts := smallOptions()
	var mu sync.Mutex
	handed := map[string]*obs.Observer{}
	opts.Observe = func(scheme string) *obs.Observer {
		o := obs.New()
		mu.Lock()
		handed[scheme] = o
		mu.Unlock()
		return o
	}
	runs, err := ParallelComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	seen := map[*obs.Observer]string{}
	for _, r := range runs {
		if r.Obs == nil {
			t.Fatalf("%s: run has no observer", r.Scheme)
		}
		if prev, dup := seen[r.Obs]; dup {
			t.Fatalf("observer shared between %s and %s", prev, r.Scheme)
		}
		seen[r.Obs] = r.Scheme
		if r.Obs != handed[r.Scheme] {
			t.Errorf("%s: run carries a different observer than Observe handed out", r.Scheme)
		}
		arrivals := r.Obs.Counter("sim.arrivals").Value()
		if want := int64(len(opts.Trace)); arrivals != want {
			t.Errorf("%s: sim.arrivals = %d, want %d (counters pooled across runs?)",
				r.Scheme, arrivals, want)
		}
		migs := r.Obs.Counter("sim.migrations").Value()
		if want := int64(r.Summary.Migrations); migs != want {
			t.Errorf("%s: sim.migrations = %d, want this run's own %d",
				r.Scheme, migs, want)
		}
	}
	// The static schemes never migrate while dynamic does on this
	// fragmenting trace, so identical registries would have been caught.
	if runs[2].Obs.Counter("sim.migrations").Value() == 0 {
		t.Error("dynamic run recorded no migrations; isolation check is vacuous")
	}
}

func TestParallelComparisonPropagatesErrors(t *testing.T) {
	opts := smallOptions()
	opts.Schemes = []string{"first-fit", "bogus"}
	if _, err := ParallelComparison(opts); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSweep(t *testing.T) {
	opts := smallOptions()
	thresholds := []float64{1.05, 1.5}
	runs, err := Sweep(thresholds, func(th float64) (*SchemeRun, error) {
		params := core.DefaultParams()
		params.MIGThreshold = th
		placer := policy.NewDynamicVariant("x", core.DefaultFactors(), params)
		return runPlacer(placer, false, opts.Trace, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[1].Summary.Migrations > runs[0].Summary.Migrations {
		t.Error("tighter threshold migrated more")
	}
}

func TestSweepError(t *testing.T) {
	_, err := Sweep([]int{1}, func(int) (*SchemeRun, error) {
		return nil, errBoom
	})
	if err == nil {
		t.Error("sweep error swallowed")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestJSONRoundTrip(t *testing.T) {
	runs, err := Comparison(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, runs); err != nil {
		t.Fatal(err)
	}
	records, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(runs) {
		t.Fatalf("records = %d", len(records))
	}
	for i, rec := range records {
		if rec.Scheme != runs[i].Scheme {
			t.Errorf("record %d scheme = %q", i, rec.Scheme)
		}
		if rec.WeekEnergyKWh != runs[i].WeekEnergyKWh {
			t.Errorf("record %d energy mismatch", i)
		}
		if len(rec.HourlyActivePMs) == 0 || len(rec.HourlyActivePMs) > WeekHours {
			t.Errorf("record %d series length %d", i, len(rec.HourlyActivePMs))
		}
	}
}

func TestReadJSONMalformed(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRobustnessStudySmall(t *testing.T) {
	opts := smallOptions()
	opts.Schemes = []string{"first-fit", "dynamic"}
	opts.TraceGen = func(seed int64) []workload.Request {
		// Seed-perturbed variant of the small fragmenting trace.
		rs := smallTrace()
		for i := range rs {
			rs[i].Submit += float64(int(seed) * (i % 7))
		}
		return rs
	}
	studies, err := RobustnessStudy(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 2 {
		t.Fatalf("studies = %d", len(studies))
	}
	for _, st := range studies {
		if len(st.EnergyKWh) != 2 {
			t.Errorf("%s has %d seeds", st.Scheme, len(st.EnergyKWh))
		}
		for _, e := range st.EnergyKWh {
			if e <= 0 {
				t.Errorf("%s energy %g", st.Scheme, e)
			}
		}
	}
	out := RobustnessReport(studies)
	if !strings.Contains(out, "dynamic beats first-fit") {
		t.Errorf("report missing win line:\n%s", out)
	}
}

func TestRobustnessStudyValidation(t *testing.T) {
	if _, err := RobustnessStudy(0, smallOptions()); err == nil {
		t.Error("zero seeds accepted")
	}
}

func TestRobustnessReportWithoutDynamic(t *testing.T) {
	out := RobustnessReport([]*SeedStudy{{Scheme: "first-fit", EnergyKWh: []float64{1}}})
	if strings.Contains(out, "beats") {
		t.Error("win lines without a dynamic study")
	}
}

func TestGoogleTraceShape(t *testing.T) {
	reqs := GoogleTrace(2)
	if len(reqs) < 15000 {
		t.Errorf("google-like trace too small: %d requests", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Submit < reqs[i-1].Submit {
			t.Fatal("trace not sorted")
		}
	}
	// Median runtime must be in the minutes range, not hours.
	runtimes := make([]float64, len(reqs))
	for i, q := range reqs {
		runtimes[i] = q.RunTime
	}
	if med := stats.Median(runtimes); med > 3600 {
		t.Errorf("median runtime %gs, want sub-hour cloud tasks", med)
	}
}
