package exp

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/queueing"
	"repro/internal/workload"
)

// QoSAnalysis cross-checks a run's observed queueing against the Erlang-C
// capacity model. Treating the fleet's cores as an M/M/c pool with the
// trace's empirical arrival rate and mean service time, Erlang C predicts
// the waiting probability *capacity alone* would cause. The gap between
// that and the simulator's observed queueing is boot latency — exactly the
// component the paper's spare-server controller targets.
type QoSAnalysis struct {
	// OfferedErlangs is λ * E[S] over the trace, in core-seconds per
	// second.
	OfferedErlangs float64

	// FleetCores is c: the total core count of the fleet.
	FleetCores int

	// ErlangCWaitProb is the analytic capacity-driven waiting
	// probability with every core live.
	ErlangCWaitProb float64

	// CoresForTarget is the minimal always-on core pool that meets the
	// paper's 5% bound analytically.
	CoresForTarget int

	// ObservedQueued is the simulator's measured queueing fraction.
	ObservedQueued float64
}

// AnalyzeQoS builds the cross-check for one scheme run over its trace.
func AnalyzeQoS(run *SchemeRun, reqs []workload.Request, fleet func() *cluster.Datacenter) QoSAnalysis {
	if fleet == nil {
		fleet = cluster.TableIIFleet
	}
	dc := fleet()
	cores := 0
	for _, pm := range dc.PMs() {
		cores += int(pm.Class.Capacity[cluster.ResCPU])
	}

	var span, busy float64
	for _, q := range reqs {
		busy += q.RunTime * q.CPUCores
		if end := q.Submit + q.RunTime; end > span {
			span = end
		}
	}
	a := 0.0
	if span > 0 {
		a = busy / span
	}
	an := QoSAnalysis{
		OfferedErlangs:  a,
		FleetCores:      cores,
		ErlangCWaitProb: queueing.ErlangC(cores, a),
		ObservedQueued:  run.Summary.QueuedFraction,
	}
	if a > 0 {
		an.CoresForTarget = queueing.ServersForWaitProbability(a, 0.05)
	}
	return an
}

// String renders the analysis for the experiment report.
func (q QoSAnalysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered load: %.1f Erlangs against %d cores (%.0f%% average utilization)\n",
		q.OfferedErlangs, q.FleetCores, q.OfferedErlangs/float64(q.FleetCores)*100)
	fmt.Fprintf(&b, "Erlang-C capacity-driven wait probability (all cores live): %.4f%%\n",
		q.ErlangCWaitProb*100)
	fmt.Fprintf(&b, "minimal always-on cores for the 5%% bound: %d\n", q.CoresForTarget)
	fmt.Fprintf(&b, "observed queueing in simulation: %.2f%%\n", q.ObservedQueued*100)
	fmt.Fprintf(&b, "=> observed waiting is boot latency, not capacity: the analytic floor is ~0,\n")
	fmt.Fprintf(&b, "   so every queued request reflects a machine that had to be powered on first —\n")
	fmt.Fprintf(&b, "   the component Section IV's spare pool exists to absorb.\n")
	return b.String()
}
