package exp

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// sweepTrace derives a seed-dependent variant of the small test workload,
// so sweep replications genuinely differ per seed (runtimes and spacing
// shift with the seed) while staying fast and deterministic.
func sweepTrace(seed int64) []workload.Request {
	base := smallTrace()
	for i := range base {
		base[i].Submit += float64(seed%7) * 13
		if (int64(i)+seed)%4 == 0 {
			base[i].RunTime *= 1.5
			base[i].EstimatedRunTime *= 1.5
		}
	}
	return base
}

func smallSweepOptions() SweepOptions {
	return SweepOptions{
		Base: Options{
			SpareForDynamic: true,
			Fleet:           smallFleet,
			TraceGen:        sweepTrace,
		},
		Schemes: []string{"first-fit", "random", "dynamic"},
		Seeds:   []int64{1, 2, 3, 4, 5},
	}
}

// TestSweepDeterministicAcrossWorkers is the merge contract: the same
// sweep at 1, 2, and 7 workers must serialize to byte-identical reports —
// scheduling and completion order must leave no trace in the output.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 7} {
		opts := smallSweepOptions()
		opts.Workers = workers
		report, err := RunSweep(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d report differs from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestSweepMatchesSequentialRuns checks each cell of the cross product
// against a direct RunScheme call with the same seed and trace: the sweep
// machinery must add scheduling, not change results.
func TestSweepMatchesSequentialRuns(t *testing.T) {
	opts := smallSweepOptions()
	opts.Workers = 3
	report, err := RunSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Runs) != len(opts.Schemes)*len(opts.Seeds) {
		t.Fatalf("got %d runs, want %d", len(report.Runs), len(opts.Schemes)*len(opts.Seeds))
	}
	for i, run := range report.Runs {
		si, vi := i/len(opts.Seeds), i%len(opts.Seeds)
		if run.Scheme != opts.Schemes[si] || run.Seed != opts.Seeds[vi] {
			t.Fatalf("run %d is (%s, %d), want (%s, %d)",
				i, run.Scheme, run.Seed, opts.Schemes[si], opts.Seeds[vi])
		}
		ro := opts.Base
		ro.Seed = run.Seed
		ro.TraceGen = nil
		direct, err := RunScheme(run.Scheme, sweepTrace(run.Seed), ro)
		if err != nil {
			t.Fatal(err)
		}
		if run.WeekEnergyKWh != direct.WeekEnergyKWh {
			t.Errorf("(%s, %d): sweep energy %g != direct %g",
				run.Scheme, run.Seed, run.WeekEnergyKWh, direct.WeekEnergyKWh)
		}
		if run.Migrations != direct.Summary.Migrations {
			t.Errorf("(%s, %d): sweep migrations %d != direct %d",
				run.Scheme, run.Seed, run.Migrations, direct.Summary.Migrations)
		}
	}
	if len(report.Aggregates) != len(opts.Schemes) {
		t.Fatalf("got %d aggregates, want %d", len(report.Aggregates), len(opts.Schemes))
	}
	for _, agg := range report.Aggregates {
		if agg.Runs != len(opts.Seeds) {
			t.Errorf("%s aggregate covers %d runs, want %d", agg.Scheme, agg.Runs, len(opts.Seeds))
		}
		if agg.WeekEnergyKWh.Min > agg.WeekEnergyKWh.Mean || agg.WeekEnergyKWh.Mean > agg.WeekEnergyKWh.Max {
			t.Errorf("%s energy moments inconsistent: %+v", agg.Scheme, agg.WeekEnergyKWh)
		}
	}
}

// TestSweepErrorsListEveryFailure pins the error contract: every failed
// (scheme, seed) pair appears in the joined error, not just the first.
func TestSweepErrorsListEveryFailure(t *testing.T) {
	opts := smallSweepOptions()
	opts.Schemes = []string{"first-fit", "no-such-scheme"}
	opts.Seeds = []int64{1, 2, 3}
	opts.Workers = 2
	_, err := RunSweep(opts)
	if err == nil {
		t.Fatal("sweep with a bogus scheme succeeded")
	}
	for _, seed := range opts.Seeds {
		want := fmt.Sprintf("(scheme no-such-scheme, seed %d)", seed)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not mention %s:\n%v", want, err)
		}
	}
	if strings.Contains(err.Error(), "scheme first-fit") {
		t.Errorf("error blames the healthy scheme:\n%v", err)
	}
}

// TestSweepObserverPerRunIsolation proves the sweep hands every
// (scheme, seed) run its own observer — replications of one scheme run
// concurrently, so scheme-keyed sharing would pool their counters.
func TestSweepObserverPerRunIsolation(t *testing.T) {
	opts := smallSweepOptions()
	opts.Workers = 4
	var mu sync.Mutex
	handed := map[string]*obs.Observer{}
	opts.Observe = func(scheme string, seed int64) *obs.Observer {
		o := obs.New()
		mu.Lock()
		defer mu.Unlock()
		key := fmt.Sprintf("%s@%d", scheme, seed)
		if _, dup := handed[key]; dup {
			t.Errorf("Observe called twice for %s", key)
		}
		handed[key] = o
		return o
	}
	if _, err := RunSweep(opts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if want := len(opts.Schemes) * len(opts.Seeds); len(handed) != want {
		t.Fatalf("Observe called for %d runs, want %d", len(handed), want)
	}
	seen := map[*obs.Observer]string{}
	for key, o := range handed {
		if prev, dup := seen[o]; dup {
			t.Fatalf("runs %s and %s share an observer", prev, key)
		}
		seen[o] = key
	}
}

// BenchmarkSweep measures replication throughput (runs/sec) at several
// worker counts over a small but non-trivial configuration.
// cmd/benchreport runs the same sweep programmatically for
// BENCH_sweep.json.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := smallSweepOptions()
			opts.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunSweep(opts); err != nil {
					b.Fatal(err)
				}
			}
			runs := len(opts.Schemes) * len(opts.Seeds)
			b.ReportMetric(float64(runs)*float64(b.N)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}
