package exp

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spare"
)

// FactorVariants returns the dynamic scheme plus one variant per dropped
// probability factor, quantifying what each of Eq. 2-5's terms contributes.
// The resource factor is never dropped — without it placements would be
// infeasible.
func FactorVariants() []policy.Placer {
	params := core.DefaultParams()
	return []policy.Placer{
		policy.NewDynamic(),
		policy.NewDynamicVariant("dyn-no-vir",
			[]core.Factor{core.ResourceFactor{}, core.ReliabilityFactor{}, core.EfficiencyFactor{}}, params),
		policy.NewDynamicVariant("dyn-no-eff",
			[]core.Factor{core.ResourceFactor{}, core.VirtualizationFactor{}, core.ReliabilityFactor{}}, params),
		policy.NewDynamicVariant("dyn-no-rel",
			[]core.Factor{core.ResourceFactor{}, core.VirtualizationFactor{}, core.EfficiencyFactor{}}, params),
	}
}

// AblateFactors runs the factor ablation over the week trace.
func AblateFactors(opts Options) ([]*SchemeRun, error) {
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}
	var runs []*SchemeRun
	for _, placer := range FactorVariants() {
		r, err := runPlacer(placer, true, reqs, opts)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// AblateThreshold sweeps MIG_threshold, the knob that separates "churn
// freely" from "never migrate" (Section III.C sets 1.05).
func AblateThreshold(opts Options, thresholds []float64) ([]*SchemeRun, error) {
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}
	var runs []*SchemeRun
	for _, th := range thresholds {
		params := core.DefaultParams()
		params.MIGThreshold = th
		placer := policy.NewDynamicVariant(fmt.Sprintf("dyn-th%.2f", th), core.DefaultFactors(), params)
		r, err := runPlacer(placer, true, reqs, opts)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// AblateRounds sweeps MIG_round, the per-pass migration budget.
func AblateRounds(opts Options, rounds []int) ([]*SchemeRun, error) {
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}
	var runs []*SchemeRun
	for _, n := range rounds {
		params := core.DefaultParams()
		params.MIGRound = n
		placer := policy.NewDynamicVariant(fmt.Sprintf("dyn-r%d", n), core.DefaultFactors(), params)
		r, err := runPlacer(placer, true, reqs, opts)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// AblateSpareAlpha sweeps the QoS tail bound alpha of the spare-server
// controller (the paper fixes 0.05) plus a no-spare configuration,
// exposing the energy/QoS trade-off directly.
func AblateSpareAlpha(opts Options, alphas []float64) ([]*SchemeRun, error) {
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}
	var runs []*SchemeRun

	// Baseline: dynamic without any spare controller.
	bare, err := runPlacer(policy.NewDynamicVariant("dyn-nospare", core.DefaultFactors(), core.DefaultParams()),
		false, reqs, opts)
	if err != nil {
		return nil, err
	}
	runs = append(runs, bare)

	fleet := opts.Fleet
	if fleet == nil {
		fleet = defaultFleet
	}
	for _, a := range alphas {
		sc := spare.DefaultConfig()
		sc.Alpha = a
		placer := policy.NewDynamicVariant(fmt.Sprintf("dyn-a%.3f", a), core.DefaultFactors(), core.DefaultParams())
		cfg := sim.Config{DC: fleet(), Placer: placer, Requests: reqs, Spare: &sc, Failures: opts.Failures}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		run := &SchemeRun{Result: res}
		for i := 0; i < WeekHours && i < res.EnergyKWh.Len(); i++ {
			run.WeekEnergyKWh += res.EnergyKWh.At(i)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// AblateMigrationModel contrasts the paper's instantaneous migration model
// with the timed pre-copy model (source-side double occupancy, one
// migration in flight per VM) on the same trace.
func AblateMigrationModel(opts Options) ([]*SchemeRun, error) {
	reqs := opts.Trace
	if reqs == nil {
		_, reqs = WeekTrace(opts.Seed)
	}
	fleet := opts.Fleet
	if fleet == nil {
		fleet = defaultFleet
	}
	var runs []*SchemeRun
	for _, timed := range []bool{false, true} {
		label := "dyn-instant"
		if timed {
			label = "dyn-timed"
		}
		placer := policy.NewDynamicVariant(label, core.DefaultFactors(), core.DefaultParams())
		cfg := sim.Config{
			DC: fleet(), Placer: placer, Requests: reqs,
			Failures: opts.Failures, TimedMigrations: timed,
		}
		if opts.SpareForDynamic {
			sc := spare.DefaultConfig()
			cfg.Spare = &sc
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		run := &SchemeRun{Result: res}
		for i := 0; i < WeekHours && i < res.EnergyKWh.Len(); i++ {
			run.WeekEnergyKWh += res.EnergyKWh.At(i)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// AblationReport renders an ablation's summary rows plus the QoS column
// the trade-offs hinge on.
func AblationReport(title string, runs []*SchemeRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if err := metrics.WriteSummaries(&b, SummaryRows(runs)); err != nil {
		fmt.Fprintf(&b, "render error: %v\n", err)
	}
	return b.String()
}

// defaultFleet builds the Table II data center when Options.Fleet is nil.
var defaultFleet = cluster.TableIIFleet
