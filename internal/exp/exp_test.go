package exp

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// smallTrace builds a fast, fragmenting workload for unit tests: a mix of
// short and long single-core requests over ~4 hours.
func smallTrace() []workload.Request {
	var rs []workload.Request
	for i := 0; i < 150; i++ {
		run := 1500.0
		if i%3 == 0 {
			run = 12000
		}
		rs = append(rs, workload.Request{
			JobID: i, Submit: float64(i) * 60, CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	return rs
}

func smallFleet() *cluster.Datacenter {
	return cluster.TableIIFleetScaled(12)
}

func smallOptions() Options {
	opts := DefaultOptions(1)
	opts.Trace = smallTrace()
	opts.Fleet = smallFleet
	return opts
}

func TestWeekTraceMatchesPaperCounts(t *testing.T) {
	jobs, reqs := WeekTrace(1)
	if len(jobs) != 4574 {
		t.Errorf("jobs = %d, want 4574", len(jobs))
	}
	if len(reqs) <= len(jobs) {
		t.Errorf("requests (%d) should exceed jobs (%d) after core splitting", len(reqs), len(jobs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Submit < reqs[i-1].Submit {
			t.Fatal("requests not sorted")
		}
	}
}

func TestComparisonRunsAllSchemes(t *testing.T) {
	runs, err := Comparison(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	names := []string{"first-fit", "best-fit", "dynamic"}
	for i, r := range runs {
		if r.Scheme != names[i] {
			t.Errorf("run %d scheme = %q", i, r.Scheme)
		}
		if r.WeekEnergyKWh <= 0 {
			t.Errorf("%s week energy = %g", r.Scheme, r.WeekEnergyKWh)
		}
		if r.Summary.VMsCompleted != 150 {
			t.Errorf("%s completed %d/150", r.Scheme, r.Summary.VMsCompleted)
		}
	}
}

func TestComparisonCellsBitIdentical(t *testing.T) {
	ref, err := Comparison(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cells := range []int{4, 12} {
		opts := smallOptions()
		opts.Cells = cells
		runs, err := Comparison(opts)
		if err != nil {
			t.Fatalf("cells=%d: %v", cells, err)
		}
		for i, r := range runs {
			if r.Summary != ref[i].Summary {
				t.Errorf("cells=%d scheme %s: summary differs from monolith:\n%+v\nvs\n%+v",
					cells, r.Scheme, r.Summary, ref[i].Summary)
			}
			if r.WeekEnergyKWh != ref[i].WeekEnergyKWh {
				t.Errorf("cells=%d scheme %s: week energy %g != monolith %g",
					cells, r.Scheme, r.WeekEnergyKWh, ref[i].WeekEnergyKWh)
			}
		}
	}
}

func TestComparisonUnknownScheme(t *testing.T) {
	opts := smallOptions()
	opts.Schemes = []string{"bogus"}
	if _, err := Comparison(opts); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestDynamicWinsOnFragmentingTrace(t *testing.T) {
	// Compare the bare placement schemes: on a 12-node fleet the spare
	// controller's QoS headroom would dominate the consolidation gain
	// (the full-scale comparison with spares lives in the benchmarks).
	opts := smallOptions()
	opts.SpareForDynamic = false
	runs, err := Comparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*SchemeRun{}
	for _, r := range runs {
		byName[r.Scheme] = r
	}
	dyn, ff := byName["dynamic"], byName["first-fit"]
	if dyn.Summary.MeanActivePMs >= ff.Summary.MeanActivePMs {
		t.Errorf("dynamic mean active %.2f >= first-fit %.2f",
			dyn.Summary.MeanActivePMs, ff.Summary.MeanActivePMs)
	}
}

func TestFigTablesShape(t *testing.T) {
	runs, err := Comparison(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	f3 := Fig3Table(runs)
	if len(f3.Series) != 3 || f3.TimeLabel != "hour" {
		t.Errorf("fig3 shape wrong")
	}
	for _, s := range f3.Series {
		if s.Len() > WeekHours {
			t.Errorf("fig3 series %s longer than the week window", s.Name)
		}
	}
	f4 := Fig4Table(runs)
	if len(f4.Series) != 3 {
		t.Error("fig4 shape wrong")
	}
	f5 := Fig5Table(runs)
	if f5.TimeLabel != "day" {
		t.Error("fig5 label wrong")
	}
	// Daily sums must equal hourly sums within the window.
	for i := range runs {
		if h, d := f4.Series[i].Sum(), f5.Series[i].Sum(); h != d {
			t.Errorf("scheme %d: daily %g != hourly %g", i, d, h)
		}
	}
}

func TestFig2Report(t *testing.T) {
	out := Fig2Report(1)
	for _, want := range []string{"4574", "day 2: ", "peak day", "memory", "runtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2Report missing %q", want)
		}
	}
}

func TestTable2Report(t *testing.T) {
	out := Table2Report()
	for _, want := range []string{"25 fast + 75 slow = 100 nodes", "400", "240", "300", "180", "30", "40", "45", "55"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2Report missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryRowsUseWeekEnergy(t *testing.T) {
	runs, err := Comparison(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := SummaryRows(runs)
	for i, row := range rows {
		if row.TotalEnergyKWh != runs[i].WeekEnergyKWh {
			t.Errorf("row %d energy = %g, want week energy %g", i, row.TotalEnergyKWh, runs[i].WeekEnergyKWh)
		}
	}
}

func TestSavingsReport(t *testing.T) {
	runs, err := Comparison(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := SavingsReport(runs)
	if !strings.Contains(out, "dynamic vs first-fit") || !strings.Contains(out, "dynamic vs best-fit") {
		t.Errorf("SavingsReport = %q", out)
	}
	if got := SavingsReport(runs[:2]); !strings.Contains(got, "no dynamic run") {
		t.Errorf("missing-dynamic report = %q", got)
	}
}

func TestAblateFactors(t *testing.T) {
	runs, err := AblateFactors(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(runs))
	}
	wantNames := []string{"dynamic", "dyn-no-vir", "dyn-no-eff", "dyn-no-rel"}
	for i, r := range runs {
		if r.Scheme != wantNames[i] {
			t.Errorf("run %d = %q, want %q", i, r.Scheme, wantNames[i])
		}
		if r.Summary.VMsCompleted != 150 {
			t.Errorf("%s completed %d/150", r.Scheme, r.Summary.VMsCompleted)
		}
	}
}

func TestAblateThresholdMonotoneMigrations(t *testing.T) {
	runs, err := AblateThreshold(smallOptions(), []float64{1.01, 1.5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	// Higher thresholds migrate no more than lower ones.
	for i := 1; i < len(runs); i++ {
		if runs[i].Summary.Migrations > runs[i-1].Summary.Migrations {
			t.Errorf("threshold %d migrations %d > looser threshold's %d",
				i, runs[i].Summary.Migrations, runs[i-1].Summary.Migrations)
		}
	}
}

func TestAblateRounds(t *testing.T) {
	runs, err := AblateRounds(smallOptions(), []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Summary.Migrations > runs[1].Summary.Migrations {
		t.Errorf("1-round pass migrated more (%d) than 10-round (%d)",
			runs[0].Summary.Migrations, runs[1].Summary.Migrations)
	}
}

func TestAblateSpareAlpha(t *testing.T) {
	runs, err := AblateSpareAlpha(smallOptions(), []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 { // nospare + 2 alphas
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Scheme != "dyn-nospare" {
		t.Errorf("first run = %q", runs[0].Scheme)
	}
	// Spares never hurt the wait metric relative to no spares.
	for _, r := range runs[1:] {
		if r.Summary.MeanWaitSeconds > runs[0].Summary.MeanWaitSeconds+1 {
			t.Errorf("%s wait %.1f worse than no-spare %.1f",
				r.Scheme, r.Summary.MeanWaitSeconds, runs[0].Summary.MeanWaitSeconds)
		}
	}
}

func TestAblationReport(t *testing.T) {
	runs, err := AblateRounds(smallOptions(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	out := AblationReport("rounds", runs)
	if !strings.Contains(out, "rounds") || !strings.Contains(out, "dyn-r1") {
		t.Errorf("report = %q", out)
	}
}

func TestAblateMigrationModel(t *testing.T) {
	runs, err := AblateMigrationModel(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Scheme != "dyn-instant" || runs[1].Scheme != "dyn-timed" {
		t.Fatalf("runs = %v", runs)
	}
	// Locking in-flight VMs perturbs the decision trajectory, so exact
	// migration counts differ between models; both must stay in the same
	// ballpark and complete all work.
	lo, hi := runs[0].Summary.Migrations, runs[1].Summary.Migrations
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || hi > 2*lo+10 {
		t.Errorf("migration counts diverge wildly: instant %d vs timed %d",
			runs[0].Summary.Migrations, runs[1].Summary.Migrations)
	}
	for _, r := range runs {
		if r.Summary.VMsCompleted != 150 {
			t.Errorf("%s completed %d/150", r.Scheme, r.Summary.VMsCompleted)
		}
	}
}

func TestOracleSeriesFloorsSchemes(t *testing.T) {
	opts := smallOptions()
	runs, err := Comparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OracleSeries(opts.Trace, opts.Fleet)
	if oracle.Len() != WeekHours {
		t.Fatalf("oracle samples = %d", oracle.Len())
	}
	// The oracle's mean must not exceed any scheme's mean active count
	// over the same window (offline packing with perfect knowledge).
	om := oracle.Mean()
	for _, r := range runs {
		if m := r.ActivePMs.Mean(); om > m+0.5 {
			t.Errorf("oracle mean %.2f above %s's %.2f", om, r.Scheme, m)
		}
	}
	out := OracleReport(runs, oracle)
	if !strings.Contains(out, "oracle-ffd") || !strings.Contains(out, "floor") {
		t.Errorf("report = %q", out)
	}
}

func TestOracleSeriesEmptyTrace(t *testing.T) {
	s := OracleSeries(nil, nil)
	if s.Sum() != 0 {
		t.Errorf("empty trace oracle sum = %g", s.Sum())
	}
}

func TestAnalyzeQoS(t *testing.T) {
	opts := smallOptions()
	runs, err := Comparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	an := AnalyzeQoS(runs[2], opts.Trace, opts.Fleet)
	if an.FleetCores <= 0 {
		t.Fatal("no cores counted")
	}
	if an.OfferedErlangs <= 0 || an.OfferedErlangs > float64(an.FleetCores) {
		t.Errorf("offered load %g implausible for %d cores", an.OfferedErlangs, an.FleetCores)
	}
	if an.ErlangCWaitProb < 0 || an.ErlangCWaitProb > 1 {
		t.Errorf("wait prob %g", an.ErlangCWaitProb)
	}
	if an.CoresForTarget <= 0 || an.CoresForTarget > an.FleetCores {
		t.Errorf("cores for target = %d", an.CoresForTarget)
	}
	out := an.String()
	for _, want := range []string{"Erlang-C", "observed queueing", "boot latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis report missing %q", want)
		}
	}
}
