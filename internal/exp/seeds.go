package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SeedStudy holds the cross-seed robustness results for one scheme: the
// figure-window energies observed across independently generated weeks.
type SeedStudy struct {
	Scheme     string
	EnergyKWh  []float64 // one entry per seed
	MeanActive []float64
	Queued     []float64
}

// RobustnessStudy reruns the scheme comparison over n different workload
// seeds (1..n), all runs in parallel, and aggregates per-scheme
// distributions. It answers the question single-seed figures cannot: does
// the dynamic scheme's win survive workload resampling?
func RobustnessStudy(n int, base Options) ([]*SeedStudy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("exp: robustness study needs at least one seed")
	}
	if len(base.Schemes) == 0 {
		base.Schemes = DefaultOptions(base.Seed).Schemes
	}

	traceGen := base.TraceGen
	if traceGen == nil {
		traceGen = func(seed int64) []workload.Request {
			_, reqs := WeekTrace(seed)
			return reqs
		}
	}

	type cell struct {
		run *SchemeRun
		err error
	}
	grid := make([][]cell, n)
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		grid[si] = make([]cell, len(base.Schemes))
		opts := base
		opts.Seed = int64(si + 1)
		opts.Trace = nil // each seed generates its own workload
		if base.Observe != nil {
			// The study runs the SAME scheme concurrently at every seed.
			// Options.Observe is keyed by scheme name alone, so passing it
			// through unwrapped would hand those concurrent runs one shared
			// sink (or collide their trace files). Disambiguate the key
			// with the seed; each run still gets whatever sink the caller
			// builds for it.
			seed := opts.Seed
			opts.Observe = func(scheme string) *obs.Observer {
				return base.Observe(fmt.Sprintf("%s@seed%d", scheme, seed))
			}
		}
		reqs := traceGen(opts.Seed)
		for pi, scheme := range base.Schemes {
			wg.Add(1)
			go func(si, pi int, scheme string, opts Options) {
				defer wg.Done()
				r, err := RunScheme(scheme, reqs, opts)
				grid[si][pi] = cell{run: r, err: err}
			}(si, pi, scheme, opts)
		}
	}
	wg.Wait()

	// Collect every failure across the grid before giving up: under
	// parallelism first-error-wins hides real failures behind whichever
	// one surfaced first.
	var errSink []error
	studies := make([]*SeedStudy, len(base.Schemes))
	for pi, scheme := range base.Schemes {
		st := &SeedStudy{Scheme: scheme}
		for si := 0; si < n; si++ {
			c := grid[si][pi]
			if c.err != nil {
				errSink = append(errSink, fmt.Errorf("exp: robustness (scheme %s, seed %d): %w", scheme, si+1, c.err))
				continue
			}
			st.EnergyKWh = append(st.EnergyKWh, c.run.WeekEnergyKWh)
			st.MeanActive = append(st.MeanActive, c.run.Summary.MeanActivePMs)
			st.Queued = append(st.Queued, c.run.Summary.QueuedFraction)
		}
		studies[pi] = st
	}
	if err := errors.Join(errSink...); err != nil {
		return nil, err
	}
	return studies, nil
}

// GoogleTrace generates, filters, and splits a week of the Google-like
// cloud workload preset, the alternate trace for the E-R2 generality
// study.
func GoogleTrace(seed int64) []workload.Request {
	jobs := workload.MustGenerate(workload.GoogleLikeConfig(seed))
	jobs = workload.Filter(jobs, workload.DefaultFilter())
	return workload.ToRequests(jobs)
}

// GeneralityStudy runs the scheme comparison on the Google-like workload:
// same fleet, same schemes, a completely different trace character.
func GeneralityStudy(opts Options) ([]*SchemeRun, error) {
	opts.Trace = GoogleTrace(opts.Seed)
	return ParallelComparison(opts)
}

// RobustnessReport renders per-scheme mean +/- stddev across seeds, plus
// the dynamic scheme's per-seed win count against each baseline.
func RobustnessReport(studies []*SeedStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %18s %14s %10s\n", "scheme", "week kWh (mean±sd)", "meanPMs", "queued%")
	for _, st := range studies {
		fmt.Fprintf(&b, "%-12s %10.1f ± %5.1f %14.1f %9.2f%%\n",
			st.Scheme, stats.Mean(st.EnergyKWh), stats.StdDev(st.EnergyKWh),
			stats.Mean(st.MeanActive), stats.Mean(st.Queued)*100)
	}
	var dyn *SeedStudy
	for _, st := range studies {
		if st.Scheme == "dynamic" {
			dyn = st
			break
		}
	}
	if dyn == nil {
		return b.String()
	}
	for _, st := range studies {
		if st == dyn {
			continue
		}
		wins := 0
		for i := range dyn.EnergyKWh {
			if dyn.EnergyKWh[i] < st.EnergyKWh[i] {
				wins++
			}
		}
		fmt.Fprintf(&b, "dynamic beats %-10s on %d/%d seeds\n", st.Scheme, wins, len(dyn.EnergyKWh))
	}
	return b.String()
}
