package exp

import (
	"encoding/json"
	"testing"
)

func smallTournamentOptions() TournamentOptions {
	return TournamentOptions{
		Base: Options{
			SpareForDynamic: true,
			Fleet:           smallFleet,
			TraceGen:        sweepTrace,
		},
		Seeds: []int64{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

// TestTournamentDeterministic pins the acceptance contract: the full
// five-policy roster over 8 seeds serializes to a byte-identical report
// at every worker count.
func TestTournamentDeterministic(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 7} {
		opts := smallTournamentOptions()
		opts.Workers = workers
		report, err := RunTournament(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := json.Marshal(report)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("workers=%d report differs from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestTournamentScoring checks the standings' structural invariants:
// all five default policies present, every objective rank a permutation
// of 1..N, TotalScore the Borda sum, and the final order sorted by
// (TotalScore, scheme).
func TestTournamentScoring(t *testing.T) {
	report, err := RunTournament(smallTournamentOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultTournamentPolicies()
	if len(report.Scores) != len(want) {
		t.Fatalf("got %d scores, want %d", len(report.Scores), len(want))
	}
	seen := map[string]bool{}
	for _, s := range report.Scores {
		seen[s.Scheme] = true
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("policy %s missing from standings", name)
		}
	}
	n := len(report.Scores)
	perm := func(get func(PolicyScore) int, label string) {
		used := make([]bool, n+1)
		for _, s := range report.Scores {
			r := get(s)
			if r < 1 || r > n || used[r] {
				t.Fatalf("%s ranks are not a permutation of 1..%d: %+v", label, n, report.Scores)
			}
			used[r] = true
		}
	}
	perm(func(s PolicyScore) int { return s.EnergyRank }, "energy")
	perm(func(s PolicyScore) int { return s.ViolationRank }, "violation")
	perm(func(s PolicyScore) int { return s.MigrationRank }, "migration")
	perm(func(s PolicyScore) int { return s.Rank }, "final")
	for i, s := range report.Scores {
		if s.TotalScore != s.EnergyRank+s.ViolationRank+s.MigrationRank {
			t.Errorf("%s: TotalScore %d != Borda sum %d", s.Scheme, s.TotalScore,
				s.EnergyRank+s.ViolationRank+s.MigrationRank)
		}
		if s.Rank != i+1 {
			t.Errorf("standing %d carries Rank %d", i+1, s.Rank)
		}
		if i > 0 {
			prev := report.Scores[i-1]
			if prev.TotalScore > s.TotalScore ||
				(prev.TotalScore == s.TotalScore && prev.Scheme > s.Scheme) {
				t.Errorf("standings out of order at %d: %+v before %+v", i, prev, s)
			}
		}
	}
	if report.Sweep == nil || len(report.Sweep.Runs) != n*8 {
		t.Fatalf("embedded sweep missing or wrong size")
	}
}
