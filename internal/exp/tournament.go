package exp

import (
	"fmt"
	"sort"
)

// This file implements the policy tournament: a replication sweep over
// the full policy roster scored on multi-objective fitness. Each policy
// is ranked per objective — mean week energy (the paper's Figure 4
// quantity), mean queued fraction (the QoS-violation proxy: requests
// that waited beyond a second), and mean migrations (churn) — and the
// objectives combine by Borda count: a policy's TotalScore is the sum
// of its per-objective ordinal ranks, lower is better. Borda needs no
// weight vector (any weighting of incommensurable units would be
// arbitrary) yet still rewards balanced policies over specialists.
//
// Determinism: the scores are pure functions of the SweepReport
// aggregates, every sort is total-ordered with scheme-name tie-breaks,
// and the embedded sweep is worker-count-independent by construction —
// so the tournament report is too (TestTournamentDeterministic pins
// it).

// TournamentOptions configures a policy tournament.
type TournamentOptions struct {
	// Base is the per-run configuration template (see SweepOptions.Base).
	Base Options

	// Policies lists the competing schemes; default is the paper's trio
	// plus the two policy-lab additions (overbook, dynamic-adaptive).
	Policies []string

	// Seeds lists the replication seeds; default is 1..8.
	Seeds []int64

	// Workers bounds concurrency (see SweepOptions.Workers).
	Workers int
}

// DefaultTournamentPolicies is the standard five-policy roster.
func DefaultTournamentPolicies() []string {
	return []string{"first-fit", "best-fit", "dynamic", "overbook", "dynamic-adaptive"}
}

// PolicyScore is one policy's multi-objective tournament standing.
type PolicyScore struct {
	Scheme string

	// Per-objective cross-seed means, from the sweep aggregates.
	EnergyMean     float64
	ViolationMean  float64
	MigrationsMean float64

	// Per-objective ordinal ranks (1 = best, i.e. lowest mean).
	EnergyRank    int
	ViolationRank int
	MigrationRank int

	// TotalScore is the Borda sum of the objective ranks (lower is
	// better); Rank is the final standing it produces.
	TotalScore int
	Rank       int
}

// TournamentReport couples the final standings with the sweep they were
// computed from.
type TournamentReport struct {
	Scores []PolicyScore
	Sweep  *SweepReport
}

// RunTournament sweeps every policy over every seed and scores the
// aggregates. The report is byte-identical across worker counts.
func RunTournament(opts TournamentOptions) (*TournamentReport, error) {
	if len(opts.Policies) == 0 {
		opts.Policies = DefaultTournamentPolicies()
	}
	if len(opts.Seeds) == 0 {
		for s := int64(1); s <= 8; s++ {
			opts.Seeds = append(opts.Seeds, s)
		}
	}
	sweep, err := RunSweep(SweepOptions{
		Base:    opts.Base,
		Schemes: opts.Policies,
		Seeds:   opts.Seeds,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: tournament: %w", err)
	}
	return &TournamentReport{Scores: scoreTournament(sweep), Sweep: sweep}, nil
}

// scoreTournament derives the standings from a sweep's aggregates.
func scoreTournament(sweep *SweepReport) []PolicyScore {
	scores := make([]PolicyScore, len(sweep.Aggregates))
	for i, agg := range sweep.Aggregates {
		scores[i] = PolicyScore{
			Scheme:         agg.Scheme,
			EnergyMean:     agg.WeekEnergyKWh.Mean,
			ViolationMean:  agg.QueuedFraction.Mean,
			MigrationsMean: agg.Migrations.Mean,
		}
	}
	rankBy(scores, func(s *PolicyScore) float64 { return s.EnergyMean },
		func(s *PolicyScore, r int) { s.EnergyRank = r })
	rankBy(scores, func(s *PolicyScore) float64 { return s.ViolationMean },
		func(s *PolicyScore, r int) { s.ViolationRank = r })
	rankBy(scores, func(s *PolicyScore) float64 { return s.MigrationsMean },
		func(s *PolicyScore, r int) { s.MigrationRank = r })
	for i := range scores {
		scores[i].TotalScore = scores[i].EnergyRank + scores[i].ViolationRank + scores[i].MigrationRank
	}
	sort.SliceStable(scores, func(i, j int) bool {
		if scores[i].TotalScore != scores[j].TotalScore {
			return scores[i].TotalScore < scores[j].TotalScore
		}
		return scores[i].Scheme < scores[j].Scheme
	})
	for i := range scores {
		scores[i].Rank = i + 1
	}
	return scores
}

// rankBy assigns ordinal ranks for one objective (lowest value ranks 1,
// ties broken by scheme name so ranks are deterministic).
func rankBy(scores []PolicyScore, value func(*PolicyScore) float64, assign func(*PolicyScore, int)) {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := value(&scores[order[a]]), value(&scores[order[b]])
		if va != vb {
			return va < vb
		}
		return scores[order[a]].Scheme < scores[order[b]].Scheme
	})
	for r, i := range order {
		assign(&scores[i], r+1)
	}
}
