package exp

import (
	"fmt"
	"strings"

	"repro/internal/binpack"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/vector"
	"repro/internal/workload"
)

// OracleSeries computes, for each hour of the figure window, the FFD
// offline packing of exactly the VM requests alive at that instant onto a
// fresh fleet — the static-consolidation oracle of the Related Work's
// bin-packing formulation. No online scheme can hold fewer machines than
// an offline packer with perfect knowledge (up to FFD's small optimality
// gap), so this series is the floor against which Figure 3's curves are
// judged.
func OracleSeries(reqs []workload.Request, fleet func() *cluster.Datacenter) *metrics.Series {
	if fleet == nil {
		fleet = cluster.TableIIFleet
	}
	dc := fleet()
	bins := binpack.FleetBins(dc)
	series := metrics.NewSeries("oracle-ffd", 3600)
	for h := 0; h < WeekHours; h++ {
		t := float64(h) * 3600
		var items []binpack.Item
		for i, q := range reqs {
			if q.Submit <= t && t < q.Submit+q.RunTime {
				items = append(items, binpack.Item{
					ID:     i,
					Demand: vector.New(q.CPUCores, q.MemoryGB),
				})
			}
		}
		res := binpack.FirstFitDecreasing(items, bins)
		series.Append(float64(res.BinsUsed))
	}
	return series
}

// OracleReport compares each scheme's mean active servers against the
// oracle floor over the figure window.
func OracleReport(runs []*SchemeRun, oracle *metrics.Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %14s\n", "scheme", "meanPMs", "vs oracle")
	om := oracle.Mean()
	fmt.Fprintf(&b, "%-12s %10.1f %14s\n", oracle.Name, om, "1.00x (floor)")
	for _, r := range runs {
		m := truncate(r.ActivePMs, WeekHours).Mean()
		ratio := 0.0
		if om > 0 {
			ratio = m / om
		}
		fmt.Fprintf(&b, "%-12s %10.1f %13.2fx\n", r.Scheme, m, ratio)
	}
	return b.String()
}
