package audit

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/power"
	"repro/internal/spare"
	"repro/internal/vector"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"off", Off, false},
		{"", Off, false},
		{"period", Period, false},
		{"event", Event, false},
		{" Event ", Event, false},
		{"PERIOD", Period, false},
		{"sometimes", Off, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseMode(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, m := range []Mode{Off, Period, Event} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip %v failed: %v, %v", m, back, err)
		}
	}
}

func TestRegisterRejectsBadChecks(t *testing.T) {
	var a Auditor
	for _, c := range []Check{
		{Name: "x"},
		{Fn: func(float64) error { return nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", c)
				}
			}()
			a.Register(c)
		}()
	}
}

func TestAuditorGranularityAndViolations(t *testing.T) {
	var a Auditor
	var cheap, expensive int
	boom := errors.New("ledger broke")
	a.Register(Check{Name: "cheap", PerEvent: true, Fn: func(float64) error { cheap++; return nil }})
	a.Register(Check{Name: "expensive", Fn: func(now float64) error {
		expensive++
		if now >= 100 {
			return boom
		}
		return nil
	}})

	if err := a.RunEvent(1); err != nil {
		t.Fatal(err)
	}
	if cheap != 1 || expensive != 0 {
		t.Fatalf("RunEvent ran cheap=%d expensive=%d, want 1, 0", cheap, expensive)
	}
	if err := a.RunPeriod(2); err != nil {
		t.Fatal(err)
	}
	if cheap != 2 || expensive != 1 {
		t.Fatalf("RunPeriod ran cheap=%d expensive=%d, want 2, 1", cheap, expensive)
	}

	err := a.RunPeriod(100)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("violation not surfaced: %v", err)
	}
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Check != "expensive" || vs[0].Time != 100 {
		t.Fatalf("violations = %+v", vs)
	}
	if !strings.Contains(vs[0].String(), "expensive") {
		t.Fatalf("violation string %q lacks check name", vs[0].String())
	}
	if a.Checks() != 5 {
		t.Fatalf("Checks() = %d, want 5 (1 event + 2 periods of 2)", a.Checks())
	}
}

func auditFixture(t *testing.T) (*cluster.Datacenter, []*cluster.VM) {
	t.Helper()
	fast := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 3}},
	})
	for _, pm := range dc.PMs() {
		pm.State = cluster.PMOn
	}
	var vms []*cluster.VM
	for i := 0; i < 4; i++ {
		vm := cluster.NewVM(cluster.VMID(i+1), vector.New(1, 0.5), 1000, 1000, 0)
		if err := dc.PM(cluster.PMID(i%3)).Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
		vms = append(vms, vm)
	}
	return dc, vms
}

func TestStateCheckDetectsCorruption(t *testing.T) {
	dc, vms := auditFixture(t)
	check := StateCheck(dc)
	if err := check.Fn(0); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	vms[0].Host = 99 // detach the bookkeeping from reality
	if err := check.Fn(0); err == nil {
		t.Fatal("corrupted Host field not detected")
	}
	vms[0].Host = dc.RunningVMs()[0].Host
}

func TestStateCheckDetectsBadLifecycleState(t *testing.T) {
	dc, vms := auditFixture(t)
	check := StateCheck(dc)
	vms[1].State = cluster.VMFinished // finished but still occupying a PM
	if err := check.Fn(0); err == nil {
		t.Fatal("finished VM still hosted not detected")
	}
}

func TestEnergyCheckConsistency(t *testing.T) {
	dc, _ := auditFixture(t)
	m := power.NewMeter(dc, 3600)
	m.Advance(5000)
	m.Advance(9500)
	if err := EnergyCheck(m, dc).Fn(9500); err != nil {
		t.Fatalf("consistent meter flagged: %v", err)
	}
}

func TestConservationCheckDetectsLoss(t *testing.T) {
	dc, _ := auditFixture(t)
	placed := dc.VMCount()
	good := ConservationCheck(dc, func() (int, int, int, int) { return placed + 3, 1, 1, 1 })
	if err := good.Fn(0); err != nil {
		t.Fatalf("balanced ledger flagged: %v", err)
	}
	lost := ConservationCheck(dc, func() (int, int, int, int) { return placed + 4, 1, 1, 1 })
	if err := lost.Fn(0); err == nil {
		t.Fatal("lost VM not detected")
	}
}

func TestSpareCheckBounds(t *testing.T) {
	dc, _ := auditFixture(t)
	cfg := spare.DefaultConfig()
	cfg.MaxSpares = 2
	plan := &spare.Plan{At: 0, Spares: 1, NArrival: 2, NDeparture: 1, NAve: 1.5, ExpectedArrivals: 1.2}
	check := SpareCheck(cfg, dc, func() *spare.Plan { return plan })
	if err := check.Fn(0); err != nil {
		t.Fatalf("in-bounds plan flagged: %v", err)
	}
	bad := []spare.Plan{
		{Spares: -1},
		{Spares: dc.Size() + 1},
		{Spares: 3}, // above MaxSpares 2
		{NArrival: -2},
		{ExpectedArrivals: -1},
	}
	for i := range bad {
		plan = &bad[i]
		if err := check.Fn(0); err == nil {
			t.Errorf("bad plan %d (%+v) not detected", i, bad[i])
		}
	}
	plan = nil
	if err := check.Fn(0); err != nil {
		t.Fatalf("nil plan (pre-first-period) flagged: %v", err)
	}
}

func TestViolationOrderPreserved(t *testing.T) {
	var a Auditor
	for i := 0; i < 3; i++ {
		i := i
		a.Register(Check{Name: fmt.Sprintf("c%d", i), PerEvent: true, Fn: func(float64) error {
			return fmt.Errorf("fail %d", i)
		}})
	}
	_ = a.RunEvent(7)
	vs := a.Violations()
	if len(vs) != 3 {
		t.Fatalf("recorded %d violations, want 3 (all failures, not just the first)", len(vs))
	}
	for i, v := range vs {
		if v.Check != fmt.Sprintf("c%d", i) {
			t.Fatalf("violation %d is %s, want c%d", i, v.Check, i)
		}
	}
}
