package audit

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

// This file is the sparse-vs-dense differential fuzz harness: two
// identically built datacenters walk the same byte-encoded operation
// stream, with every placement decision made by the dense engine on side A
// and the candidate-set engine (MatrixOptions.CandidateK) on side B. After
// each operation the decisions and the resulting fleet states must match
// exactly — PM choices, consolidation move lists, per-PM usage vectors,
// reliability bits, and hosted-VM sets. Any divergence is a bug in one of
// the engines; the dense path is the oracle.
//
// Compared to the FuzzOperations harness this one adds a reliability-decay
// opcode: the candidate index groups PMs partly by reliability bits, so
// decayed fleets exercise group splits the failure-free harness never
// produces.

// sparseSide is one of the two mirrored fleets.
type sparseSide struct {
	dc  *cluster.Datacenter
	ctx *core.Context
	vms map[cluster.VMID]*cluster.VM
}

func newSparseSide() *sparseSide {
	fast := cluster.FastClass
	slow := cluster.SlowClass
	dc := cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 3},
			{Class: &slow, Count: 5},
		},
	})
	for i, pm := range dc.PMs() {
		if i < 4 {
			pm.State = cluster.PMOn
		}
	}
	return &sparseSide{dc: dc, ctx: core.NewContext(dc), vms: make(map[cluster.VMID]*cluster.VM)}
}

// sparseHarness drives the mirrored pair through one operation stream.
type sparseHarness struct {
	t       testing.TB
	a, b    *sparseSide // a = dense oracle, b = sparse engine
	factors []core.Factor
	k       int

	now    float64
	nextID cluster.VMID
	live   []cluster.VMID // IDs live on both sides, arrival order

	arrived, rejected, moves int
}

func newSparseHarness(t testing.TB, k int) *sparseHarness {
	return &sparseHarness{
		t:       t,
		a:       newSparseSide(),
		b:       newSparseSide(),
		factors: core.DefaultFactors(),
		k:       k,
		nextID:  1,
	}
}

func (h *sparseHarness) opts() core.MatrixOptions {
	return core.MatrixOptions{CandidateK: h.k}
}

// step consumes two bytes (opcode, argument), applies one mirrored
// operation, and verifies the fleets are still in lockstep.
func (h *sparseHarness) step(op, arg byte) {
	h.now += float64(arg)
	switch op % 7 {
	case 0:
		h.arrival(arg)
	case 1:
		h.departure(arg)
	case 2:
		h.consolidate(arg)
	case 3:
		h.failPM(arg)
	case 4:
		h.bootPM(arg)
	case 5:
		h.shutdownPM(arg)
	case 6:
		h.decayReliability(arg)
	}
	h.compareFleets(op, arg)
}

// arrival creates the same VM on both sides and asks each engine for a
// host: the dense argmax on side A, the candidate index on side B. The two
// answers must name the same PM (or both reject).
func (h *sparseHarness) arrival(arg byte) {
	if len(h.live) >= 64 {
		h.departure(arg)
		return
	}
	demand := demandPalette[int(arg)%len(demandPalette)]
	// Long runtimes relative to the clock's per-op advance keep most of
	// the population migratable (Eq. 3 zeroes out VMs near completion),
	// so consolidation decisions stay non-trivial deep into the stream.
	runtime := float64(int(arg)%7+1) * 5000
	id := h.nextID
	h.nextID++
	h.arrived++
	va := cluster.NewVM(id, demand, runtime, runtime, h.now)
	vb := cluster.NewVM(id, demand, runtime, runtime, h.now)

	pa := core.BestPlacement(h.a.ctx.At(h.now), h.factors, va)
	pb := core.BestPlacementWith(h.b.ctx.At(h.now), h.factors, vb, h.opts())
	switch {
	case pa == nil && pb == nil:
		h.rejected++
		return
	case pa == nil || pb == nil:
		h.t.Fatalf("arrival VM %d at t=%g: dense chose %v, sparse chose %v",
			id, h.now, placementID(pa), placementID(pb))
	case pa.ID != pb.ID:
		h.t.Fatalf("arrival VM %d at t=%g: dense chose PM %d, sparse chose PM %d",
			id, h.now, pa.ID, pb.ID)
	}
	h.hostOn(h.a, va, pa.ID)
	h.hostOn(h.b, vb, pb.ID)
	h.live = append(h.live, id)
}

func placementID(pm *cluster.PM) any {
	if pm == nil {
		return "reject"
	}
	return pm.ID
}

func (h *sparseHarness) hostOn(s *sparseSide, vm *cluster.VM, id cluster.PMID) {
	if err := s.dc.PM(id).Host(vm); err != nil {
		h.t.Fatalf("hosting VM %d on chosen PM %d: %v", vm.ID, id, err)
	}
	vm.State = cluster.VMRunning
	vm.StartTime = h.now
	s.vms[vm.ID] = vm
}

func (h *sparseHarness) departure(arg byte) {
	if len(h.live) == 0 {
		return
	}
	i := int(arg) % len(h.live)
	id := h.live[i]
	h.live = append(h.live[:i], h.live[i+1:]...)
	for _, s := range []*sparseSide{h.a, h.b} {
		vm := s.vms[id]
		if err := s.dc.PM(vm.Host).Evict(vm); err != nil {
			h.t.Fatalf("departure eviction of VM %d: %v", id, err)
		}
		vm.State = cluster.VMFinished
		delete(s.vms, id)
	}
}

// consolidate runs Algorithm 1 on both sides — dense on A, sparse on B —
// and requires identical move lists: same VMs, same endpoints,
// bit-identical gains, same rounds.
func (h *sparseHarness) consolidate(arg byte) {
	params := core.Params{MIGThreshold: 1.05, MIGRound: int(arg)%3 + 1}
	movesA, err := core.ConsolidateWith(h.a.ctx.At(h.now), h.factors, params, core.MatrixOptions{})
	if err != nil {
		h.t.Fatalf("dense consolidate: %v", err)
	}
	movesB, err := core.ConsolidateWith(h.b.ctx.At(h.now), h.factors, params, h.opts())
	if err != nil {
		h.t.Fatalf("sparse consolidate: %v", err)
	}
	if len(movesA) != len(movesB) {
		h.t.Fatalf("consolidate at t=%g: dense made %d moves %+v, sparse %d moves %+v",
			h.now, len(movesA), movesA, len(movesB), movesB)
	}
	for i := range movesA {
		if movesA[i] != movesB[i] {
			h.t.Fatalf("consolidate at t=%g move %d: dense %+v != sparse %+v",
				h.now, i, movesA[i], movesB[i])
		}
	}
	h.moves += len(movesA)
}

// failPM kills the same powered-on machine on both sides; victims are
// re-placed by each side's engine, and the chosen targets must agree.
func (h *sparseHarness) failPM(arg byte) {
	on := h.a.dc.ActivePMs()
	if len(on) <= 1 {
		return
	}
	id := on[int(arg)%len(on)].ID
	pmA, pmB := h.a.dc.PM(id), h.b.dc.PM(id)
	for _, vm := range pmA.VMs() {
		va, vb := h.a.vms[vm.ID], h.b.vms[vm.ID]
		if err := pmA.Evict(va); err != nil {
			h.t.Fatalf("failure eviction: %v", err)
		}
		if err := pmB.Evict(vb); err != nil {
			h.t.Fatalf("failure eviction (sparse side): %v", err)
		}
		ta := core.BestPlacement(h.a.ctx.At(h.now), h.factors, va)
		tb := core.BestPlacementWith(h.b.ctx.At(h.now), h.factors, vb, h.opts())
		if (ta == nil) != (tb == nil) || (ta != nil && ta.ID != tb.ID) {
			h.t.Fatalf("re-place of VM %d after PM %d failure: dense %v, sparse %v",
				vm.ID, id, placementID(ta), placementID(tb))
		}
		if ta == nil || ta.ID == id {
			va.State = cluster.VMFinished
			vb.State = cluster.VMFinished
			delete(h.a.vms, vm.ID)
			delete(h.b.vms, vm.ID)
			h.removeLive(vm.ID)
			continue
		}
		if err := ta.Host(va); err != nil {
			h.t.Fatalf("re-place after failure: %v", err)
		}
		if err := h.b.dc.PM(tb.ID).Host(vb); err != nil {
			h.t.Fatalf("re-place after failure (sparse side): %v", err)
		}
		va.State, vb.State = cluster.VMRunning, cluster.VMRunning
	}
	pmA.State = cluster.PMOff
	pmB.State = cluster.PMOff
}

func (h *sparseHarness) removeLive(id cluster.VMID) {
	for i, v := range h.live {
		if v == id {
			h.live = append(h.live[:i], h.live[i+1:]...)
			return
		}
	}
}

func (h *sparseHarness) bootPM(arg byte) {
	off := h.a.dc.OffPMs()
	if len(off) == 0 {
		return
	}
	id := off[int(arg)%len(off)].ID
	h.a.dc.PM(id).State = cluster.PMOn
	h.b.dc.PM(id).State = cluster.PMOn
}

func (h *sparseHarness) shutdownPM(arg byte) {
	idle := h.a.dc.IdlePMs()
	if len(idle) <= 1 {
		return
	}
	id := idle[int(arg)%len(idle)].ID
	h.a.dc.PM(id).State = cluster.PMOff
	h.b.dc.PM(id).State = cluster.PMOff
}

// decayReliability multiplies one active PM's reliability the way the
// failure model does (failure.Injector.Fail), splitting its score group:
// the candidate index must track the new reliability bits on its next
// sync.
func (h *sparseHarness) decayReliability(arg byte) {
	on := h.a.dc.ActivePMs()
	if len(on) == 0 {
		return
	}
	id := on[int(arg)%len(on)].ID
	factor := 0.50 + float64(int(arg)%50)/100
	for _, s := range []*sparseSide{h.a, h.b} {
		pm := s.dc.PM(id)
		pm.Reliability *= factor
		if pm.Reliability < 0.01 {
			pm.Reliability = 0.01
		}
	}
}

// compareFleets requires the two sides bit-identical: PM states, usage
// vectors, reliability, and hosted-VM sets.
func (h *sparseHarness) compareFleets(op, arg byte) {
	if err := h.a.dc.CheckInvariants(); err != nil {
		h.t.Fatalf("dense side after op %d (arg %d): %v", op%7, arg, err)
	}
	if err := h.b.dc.CheckInvariants(); err != nil {
		h.t.Fatalf("sparse side after op %d (arg %d): %v", op%7, arg, err)
	}
	pmsA, pmsB := h.a.dc.PMs(), h.b.dc.PMs()
	for i := range pmsA {
		pa, pb := pmsA[i], pmsB[i]
		if pa.State != pb.State {
			h.t.Fatalf("after op %d at t=%g: PM %d state %s (dense) != %s (sparse)",
				op%7, h.now, pa.ID, pa.State, pb.State)
		}
		if math.Float64bits(pa.Reliability) != math.Float64bits(pb.Reliability) {
			h.t.Fatalf("after op %d at t=%g: PM %d reliability %v != %v",
				op%7, h.now, pa.ID, pa.Reliability, pb.Reliability)
		}
		if !pa.Used.Equal(pb.Used) {
			h.t.Fatalf("after op %d at t=%g: PM %d used %v (dense) != %v (sparse)",
				op%7, h.now, pa.ID, pa.Used, pb.Used)
		}
		va, vb := pa.VMs(), pb.VMs()
		if len(va) != len(vb) {
			h.t.Fatalf("after op %d at t=%g: PM %d hosts %d VMs (dense) vs %d (sparse)",
				op%7, h.now, pa.ID, len(va), len(vb))
		}
		for j := range va {
			if va[j].ID != vb[j].ID {
				h.t.Fatalf("after op %d at t=%g: PM %d slot %d hosts VM %d (dense) vs VM %d (sparse)",
					op%7, h.now, pa.ID, j, va[j].ID, vb[j].ID)
			}
		}
	}
}

func runSparseOps(t testing.TB, data []byte, k int) *sparseHarness {
	h := newSparseHarness(t, k)
	for i := 0; i+1 < len(data); i += 2 {
		h.step(data[i], data[i+1])
	}
	return h
}

// FuzzSparseOperations lets the fuzzer search for an operation sequence on
// which the candidate-set engine diverges from the dense oracle. The seeds
// cover each opcode including reliability decay, plus a K=1 run where
// every shape overflows its candidate budget.
func FuzzSparseOperations(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 2, 5, 1, 0}, 16)
	f.Add([]byte{0, 1, 0, 2, 0, 3, 6, 4, 2, 9, 3, 7, 4, 1, 5, 2, 1, 1}, 16)
	f.Add([]byte{4, 0, 0, 200, 0, 130, 6, 11, 2, 250, 3, 3, 0, 60, 1, 9}, 1)
	f.Fuzz(func(t *testing.T, data []byte, k int) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		if k <= 0 || k > 256 {
			k = 16
		}
		runSparseOps(t, data, k)
	})
}

// TestSparseDifferentialSweep is the deterministic bug sweep the issue
// requires: at least 2000 operations across at least 8 seeds, every
// decision differentially checked against the dense oracle (runs under
// -race in `make race`). The byte streams come from a fixed xorshift
// generator so failures reproduce exactly.
func TestSparseDifferentialSweep(t *testing.T) {
	const ops = 260
	seeds := []uint64{
		0x9E3779B97F4A7C15, 0xD1B54A32D192ED03, 0x2545F4914F6CDD1D, 0x123456789ABCDEF1,
		0xA24BAED4963EE407, 0x8CB92BA72F3D8DD7, 0xDA942042E4DD58B5, 0xFF51AFD7ED558CCD,
	}
	arrived, moves := 0, 0
	for i, seed := range seeds {
		data := make([]byte, 2*ops)
		state := seed
		for j := range data {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			data[j] = byte(state >> 32)
		}
		// Alternate candidate budgets: generous (groups fit) and
		// deliberately overflowing (K=1), which must change nothing but a
		// counter.
		k := 16
		if i%2 == 1 {
			k = 1
		}
		h := runSparseOps(t, data, k)
		arrived += h.arrived
		moves += h.moves
	}
	if arrived == 0 || moves == 0 {
		t.Fatalf("degenerate sweep: arrived=%d moves=%d", arrived, moves)
	}
	t.Logf("seeds=%d ops/seed=%d arrived=%d moves=%d", len(seeds), ops, arrived, moves)
}
