// Package audit implements the simulation invariant auditor: a pluggable
// set of checkers that walk the full datacenter state and verify the
// conservation laws the simulation is supposed to maintain — placement
// bookkeeping, capacity bounds (Eq. 2), energy accounting, spare-plan
// bounds, and bit-identical agreement between the incremental probability
// kernel and a from-scratch rebuild.
//
// Checks come in two granularities. Cheap O(M+N) state walks run after
// every event when the auditor is in Event mode; the expensive O(M*N)
// differential against the frozen oracle (internal/core/oracle) runs once
// per control period in either enabled mode. The simulator wires the
// auditor in via -audit=off|period|event.
package audit

import (
	"fmt"
	"strings"
)

// Mode selects how often the auditor runs.
type Mode int

const (
	// Off disables auditing entirely.
	Off Mode = iota
	// Period runs every check once per control period (the default
	// enabled mode; adds one oracle rebuild per period).
	Period
	// Event additionally runs the cheap per-event checks after every
	// dispatched event. Slow — meant for debugging and CI audit runs.
	Event
)

// ParseMode parses a -audit flag value.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "":
		return Off, nil
	case "period":
		return Period, nil
	case "event":
		return Event, nil
	default:
		return Off, fmt.Errorf("audit: unknown mode %q (want off, period, or event)", s)
	}
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Period:
		return "period"
	case Event:
		return "event"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Check is one invariant verifier. Fn receives the current simulation
// time and returns a descriptive error when the invariant is violated.
type Check struct {
	// Name identifies the check in violations and reports.
	Name string

	// PerEvent marks the check cheap enough to run after every event in
	// Event mode. Expensive checks leave it false and run per period
	// only.
	PerEvent bool

	// Fn verifies the invariant at simulation time now.
	Fn func(now float64) error
}

// Violation records one failed check.
type Violation struct {
	// Time is the simulation time the violation was detected at.
	Time float64

	// Check is the failing check's name.
	Check string

	// Err describes the violated invariant.
	Err error
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.3f %s: %v", v.Time, v.Check, v.Err)
}

// Auditor runs a registered set of checks against live simulation state.
// The zero value is usable; Register checks, then call RunEvent/RunPeriod
// from the simulation loop.
type Auditor struct {
	checks     []Check
	violations []Violation
	ran        int
}

// Register adds a check. Panics on a nil Fn or empty name: checks are
// wired at construction time and a silent no-op checker would defeat the
// auditor's purpose.
func (a *Auditor) Register(c Check) {
	if c.Fn == nil {
		panic("audit: registering check with nil Fn")
	}
	if c.Name == "" {
		panic("audit: registering check with empty name")
	}
	a.checks = append(a.checks, c)
}

// RunEvent runs the per-event checks at time now and returns the first
// violation as an error (nil when all pass).
func (a *Auditor) RunEvent(now float64) error { return a.run(now, true) }

// RunPeriod runs every registered check at time now and returns the first
// violation as an error (nil when all pass).
func (a *Auditor) RunPeriod(now float64) error { return a.run(now, false) }

func (a *Auditor) run(now float64, perEventOnly bool) error {
	var first error
	for _, c := range a.checks {
		if perEventOnly && !c.PerEvent {
			continue
		}
		a.ran++
		if err := c.Fn(now); err != nil {
			a.violations = append(a.violations, Violation{Time: now, Check: c.Name, Err: err})
			if first == nil {
				first = fmt.Errorf("audit: %s at t=%.3f: %w", c.Name, now, err)
			}
		}
	}
	return first
}

// Checks returns how many individual check executions have run.
func (a *Auditor) Checks() int { return a.ran }

// Violations returns every recorded violation in detection order.
func (a *Auditor) Violations() []Violation { return a.violations }
