package audit

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/oracle"
	"repro/internal/power"
	"repro/internal/spare"
)

// StateCheck verifies the datacenter's placement bookkeeping: PM usage
// equals the sum of hosted demands plus reservations, no VM is on two PMs,
// usage stays within capacity (Eq. 2), and every hosted VM is in a
// resource-occupying lifecycle state consistent with its Host field.
func StateCheck(dc *cluster.Datacenter) Check {
	return Check{
		Name:     "state",
		PerEvent: true,
		Fn: func(now float64) error {
			if err := dc.CheckInvariants(); err != nil {
				return err
			}
			return dc.WalkPlacements(func(pm *cluster.PM, vm *cluster.VM) error {
				if !vm.Placed() {
					return fmt.Errorf("PM %d hosts VM %d in non-placed state %s", pm.ID, vm.ID, vm.State)
				}
				if vm.Host != pm.ID {
					return fmt.Errorf("PM %d hosts VM %d whose Host field says %d", pm.ID, vm.ID, vm.Host)
				}
				return nil
			})
		},
	}
}

// energyTol is the relative tolerance for energy-ledger comparisons. The
// meter integrates piecewise-constant power in event order while the bin
// series re-splits intervals at bin boundaries, so the sums differ by
// floating-point associativity only.
const energyTol = 1e-6

func relClose(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= energyTol*math.Max(scale, 1)
}

// EnergyCheck verifies the power meter's ledger: total energy is finite and
// non-negative, and re-derivable both as the sum of per-PM energies and as
// the sum of the time-binned series.
func EnergyCheck(m *power.Meter, dc *cluster.Datacenter) Check {
	return Check{
		Name:     "energy",
		PerEvent: true,
		Fn: func(now float64) error {
			total := m.TotalEnergy()
			if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
				return fmt.Errorf("total energy %g is not a finite non-negative number", total)
			}
			perPM := 0.0
			for _, pm := range dc.PMs() {
				e := m.PMEnergy(pm.ID)
				if math.IsNaN(e) || e < 0 {
					return fmt.Errorf("PM %d energy %g is negative or NaN", pm.ID, e)
				}
				perPM += e
			}
			if !relClose(total, perPM) {
				return fmt.Errorf("total energy %g != sum of per-PM energies %g", total, perPM)
			}
			binned := 0.0
			for i, b := range m.Bins() {
				if math.IsNaN(b) || b < 0 {
					return fmt.Errorf("bin %d energy %g is negative or NaN", i, b)
				}
				binned += b
			}
			if !relClose(total, binned) {
				return fmt.Errorf("total energy %g != sum of bin energies %g", total, binned)
			}
			return nil
		},
	}
}

// ConservationCheck verifies the VM population ledger: every request that
// arrived is currently placed, queued, finished, or rejected — no VM is
// ever lost or double-counted. counts supplies the simulator's own
// tallies; the placed count is re-derived from datacenter state.
func ConservationCheck(dc *cluster.Datacenter, counts func() (arrived, queued, finished, rejected int)) Check {
	return Check{
		Name:     "conservation",
		PerEvent: true,
		Fn: func(now float64) error {
			arrived, queued, finished, rejected := counts()
			placed := dc.VMCount()
			if got := placed + queued + finished + rejected; got != arrived {
				return fmt.Errorf("arrived %d != placed %d + queued %d + finished %d + rejected %d (= %d)",
					arrived, placed, queued, finished, rejected, got)
			}
			if byState := dc.VMsByState(); byState[cluster.VMQueued] != 0 || byState[cluster.VMFinished] != 0 {
				return fmt.Errorf("datacenter hosts VMs in queued/finished states: %v", byState)
			}
			return nil
		},
	}
}

// SpareCheck verifies the spare-server controller's latest plan stays
// within configured bounds: spare count within [0, fleet size] and the
// MaxSpares cap, component estimates non-negative and finite. last returns
// the most recent plan, or nil before the first control period.
func SpareCheck(cfg spare.Config, dc *cluster.Datacenter, last func() *spare.Plan) Check {
	return Check{
		Name:     "spare",
		PerEvent: true,
		Fn: func(now float64) error {
			p := last()
			if p == nil {
				return nil
			}
			if p.Spares < 0 || p.Spares > dc.Size() {
				return fmt.Errorf("plan at t=%g wants %d spares, outside [0, %d]", p.At, p.Spares, dc.Size())
			}
			if cfg.MaxSpares > 0 && p.Spares > cfg.MaxSpares {
				return fmt.Errorf("plan at t=%g wants %d spares, above cap %d", p.At, p.Spares, cfg.MaxSpares)
			}
			if p.NArrival < 0 || p.NDeparture < 0 {
				return fmt.Errorf("plan at t=%g has negative components n_arrival=%d n_departure=%d",
					p.At, p.NArrival, p.NDeparture)
			}
			if math.IsNaN(p.ExpectedArrivals) || math.IsInf(p.ExpectedArrivals, 0) || p.ExpectedArrivals < 0 {
				return fmt.Errorf("plan at t=%g has invalid expected arrivals %g", p.At, p.ExpectedArrivals)
			}
			if math.IsNaN(p.NAve) || p.NAve < 0 {
				return fmt.Errorf("plan at t=%g has invalid N_Ave %g", p.At, p.NAve)
			}
			return nil
		},
	}
}

// QueueCheck verifies the event engine's calendar-queue invariants by
// delegating to its full-structure walk (sim.Engine.VerifyQueue): the
// live-event count the control loop's liveness test relies on must match
// an exhaustive walk of every bucket, and the queue must be consistently
// linked, sorted, and bucketed. verify is the engine's walk so the audit
// package does not import the simulation it is auditing.
func QueueCheck(verify func() error) Check {
	return Check{
		Name:     "queue",
		PerEvent: true,
		Fn: func(now float64) error {
			return verify()
		},
	}
}

// TrackerCheck is the differential oracle: it rebuilds the probability
// matrix three ways over the currently migratable VMs — the factored
// kernel, the generic Factor path (DisableKernel), and the frozen naive
// oracle — and requires all three bit-identical in every cell, tracker,
// and Best decision, plus internal consistency of the kernel matrix's
// incremental trackers (SelfCheck). O(M*N) factor evaluations per run, so
// it is a per-period check even in event mode.
//
// The three rebuilds are independent by construction — each builder copies
// and sorts its own VM slice and only reads the (quiescent) fleet — so
// they run concurrently (core.Parallel). The generic and oracle builds get
// fresh Contexts: a Context's scratch checkout and lazy per-class cache
// are single-threaded, and the per-class constants they re-derive depend
// only on the fleet's classes, so a fresh Context computes bit-identical
// cells. The diffs then run serially on the calling goroutine.
func TrackerCheck(ctx *core.Context, factors []core.Factor) Check {
	return Check{
		Name:     "tracker",
		PerEvent: false,
		Fn: func(now float64) error {
			ctx := ctx.At(now)
			vms := core.MigratableVMs(ctx.DC)
			if len(vms) == 0 {
				return nil
			}
			var (
				kernel, generic       *core.Matrix
				ref                   *oracle.Matrix
				kernErr, kernCheckErr error
				genErr, refErr        error
			)
			core.Parallel(
				func() {
					kernel, kernErr = core.NewMatrix(ctx, factors, vms)
					if kernErr == nil {
						kernCheckErr = kernel.SelfCheck()
					}
				},
				func() {
					generic, genErr = core.NewMatrixWith(core.NewContext(ctx.DC).At(now), factors, vms,
						core.MatrixOptions{DisableKernel: true})
				},
				func() {
					ref, refErr = oracle.NewMatrix(core.NewContext(ctx.DC).At(now), factors, vms)
				},
			)
			if kernErr != nil {
				return fmt.Errorf("kernel matrix build: %w", kernErr)
			}
			if kernCheckErr != nil {
				return fmt.Errorf("kernel matrix self-check: %w", kernCheckErr)
			}
			if genErr != nil {
				return fmt.Errorf("generic matrix build: %w", genErr)
			}
			if err := kernel.Diff(generic); err != nil {
				return fmt.Errorf("kernel vs generic factor path: %w", err)
			}
			if refErr != nil {
				return fmt.Errorf("oracle matrix build: %w", refErr)
			}
			if err := diffOracle(kernel, ref); err != nil {
				return fmt.Errorf("kernel vs frozen oracle: %w", err)
			}
			return nil
		},
	}
}

// SparseCheck is the sparse-vs-dense differential oracle behind
// MatrixOptions.CandidateK: it builds the candidate-set engine and a dense
// kernel matrix over the currently migratable VMs and requires every
// tracker and the Best decision bit-identical (core.SparseMatrix.DiffDense),
// plus internal consistency of the incremental candidate index
// (SelfCheck). It also replays the arrival ranking for a sample of hosted
// VMs: the candidate shortlist must be the exact prefix of the dense
// ranking. O(M*N) dense evaluations per run, so it is a per-period check
// even in event mode; the per-Apply SelfAudit covers the event
// granularity.
func SparseCheck(ctx *core.Context, factors []core.Factor, k int) Check {
	return Check{
		Name:     "sparse",
		PerEvent: false,
		Fn: func(now float64) error {
			ctx := ctx.At(now)
			// Detach the observer for the duration of the check: the
			// check's own sparse builds and shortlist replays would
			// otherwise increment the run's "core.sparse_shape_overflow"
			// counter (and any other kernel tallies) — the audit polluting
			// the very metrics it validates, the same shared-sink hazard
			// the sweep's @seedN fix closed. ctx is the run's live
			// context, so restore on every exit path.
			savedObs := ctx.Obs
			ctx.Obs = nil
			defer func() { ctx.Obs = savedObs }()
			vms := core.MigratableVMs(ctx.DC)
			if len(vms) == 0 {
				return nil
			}
			// The sparse build must run on the live Context (it exercises
			// the run's own candidate index); the dense reference only
			// needs the fleet, so it builds concurrently on a fresh
			// Context (same independence argument as TrackerCheck).
			var (
				sm             *core.SparseMatrix
				dense          *core.Matrix
				smErr, smCheck error
				denseErr       error
			)
			core.Parallel(
				func() {
					sm, smErr = core.NewSparseMatrix(ctx, factors, vms, core.MatrixOptions{CandidateK: k})
					if smErr == nil {
						smCheck = sm.SelfCheck()
					}
				},
				func() {
					dense, denseErr = core.NewMatrix(core.NewContext(ctx.DC).At(now), factors, vms)
				},
			)
			if denseErr == nil {
				defer dense.Release()
			}
			if smErr != nil {
				return fmt.Errorf("sparse matrix build: %w", smErr)
			}
			if smCheck != nil {
				return fmt.Errorf("sparse matrix self-check: %w", smCheck)
			}
			if denseErr != nil {
				return fmt.Errorf("dense matrix build: %w", denseErr)
			}
			if err := sm.DiffDense(dense); err != nil {
				return fmt.Errorf("sparse vs dense matrix: %w", err)
			}
			stride := len(vms)/8 + 1
			for i := 0; i < len(vms); i += stride {
				if err := diffShortlist(ctx, factors, vms[i], k); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// diffShortlist compares the candidate index's top-k arrival shortlist for
// vm against the dense ranking's length-k prefix, entry by entry.
func diffShortlist(ctx *core.Context, factors []core.Factor, vm *cluster.VM, k int) error {
	sparse, ok := core.ArrivalShortlist(ctx, factors, vm, k)
	if !ok {
		return fmt.Errorf("arrival shortlist unavailable for the configured factors")
	}
	dense := core.RankPlacements(ctx, factors, vm)
	if k > 0 && len(dense) > k {
		dense = dense[:k]
	}
	if len(sparse) != len(dense) {
		return fmt.Errorf("VM %d: sparse shortlist has %d entries, dense prefix %d", vm.ID, len(sparse), len(dense))
	}
	for i := range sparse {
		if sparse[i].PM != dense[i].PM || sparse[i].Probability != dense[i].Probability {
			return fmt.Errorf("VM %d shortlist entry %d: sparse (PM %d, %v) != dense (PM %d, %v)",
				vm.ID, i, sparse[i].PM.ID, sparse[i].Probability, dense[i].PM.ID, dense[i].Probability)
		}
	}
	return nil
}

func eqf(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// diffOracle compares a core matrix against the oracle reference through
// their public surfaces: dimensions, axis identities, every probability
// bitwise, column normalizers, tracked best alternatives, and the global
// Best decision.
func diffOracle(m *core.Matrix, o *oracle.Matrix) error {
	if m.Rows() != o.Rows() || m.Cols() != o.Cols() {
		return fmt.Errorf("dimensions %dx%d != oracle %dx%d", m.Rows(), m.Cols(), o.Rows(), o.Cols())
	}
	for r := 0; r < m.Rows(); r++ {
		if m.PM(r).ID != o.PM(r).ID {
			return fmt.Errorf("row %d is PM %d, oracle has PM %d", r, m.PM(r).ID, o.PM(r).ID)
		}
	}
	for c := 0; c < m.Cols(); c++ {
		if m.VM(c).ID != o.VM(c).ID {
			return fmt.Errorf("column %d is VM %d, oracle has VM %d", c, m.VM(c).ID, o.VM(c).ID)
		}
		for r := 0; r < m.Rows(); r++ {
			if !eqf(m.P(r, c), o.P(r, c)) {
				return fmt.Errorf("p[%d][%d] = %v != oracle %v (VM %d on PM %d)",
					r, c, m.P(r, c), o.P(r, c), m.VM(c).ID, m.PM(r).ID)
			}
		}
		if !eqf(m.CurProb(c), o.CurProb(c)) {
			return fmt.Errorf("column %d curProb %v != oracle %v", c, m.CurProb(c), o.CurProb(c))
		}
		mr, mg := m.BestAlt(c)
		or, og := o.BestAlt(c)
		if mr != or || !eqf(mg, og) {
			return fmt.Errorf("column %d best alternative (row %d, gain %v) != oracle (row %d, gain %v)",
				c, mr, mg, or, og)
		}
	}
	mr, mc, mg, mok := m.Best()
	or, oc, og, ook := o.Best()
	if mok != ook || (mok && (mr != or || mc != oc || !eqf(mg, og))) {
		return fmt.Errorf("Best() = (%d, %d, %v, %v) != oracle (%d, %d, %v, %v)",
			mr, mc, mg, mok, or, oc, og, ook)
	}
	return nil
}
