package audit

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/core/oracle"
	"repro/internal/power"
	"repro/internal/vector"
)

// harness drives a small datacenter through a byte-encoded operation
// sequence — arrivals, departures, consolidation passes, PM failures,
// boots, and shutdowns — auditing the full invariant set after every
// operation. It is the executable argument that the incremental state the
// simulator maintains cannot drift from first principles, whatever order
// events arrive in.
type harness struct {
	t       *testing.T
	dc      *cluster.Datacenter
	ctx     *core.Context
	factors []core.Factor
	meter   *power.Meter
	aud     *Auditor

	now    float64
	nextID cluster.VMID
	live   []*cluster.VM

	arrived, finished, rejected int
}

// demandPalette bounds arrival shapes to what the harness fleet can host.
var demandPalette = []vector.V{
	vector.New(1, 0.25),
	vector.New(1, 0.5),
	vector.New(1, 1),
	vector.New(2, 1),
	vector.New(4, 2),
}

func newHarness(t *testing.T) *harness {
	fast := cluster.FastClass
	slow := cluster.SlowClass
	dc := cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 3},
			{Class: &slow, Count: 5},
		},
	})
	for i, pm := range dc.PMs() {
		if i < 4 {
			pm.State = cluster.PMOn
		}
	}
	h := &harness{
		t:       t,
		dc:      dc,
		ctx:     core.NewContext(dc),
		factors: core.DefaultFactors(),
		meter:   power.NewMeter(dc, 3600),
		aud:     &Auditor{},
		nextID:  1,
	}
	h.aud.Register(StateCheck(dc))
	h.aud.Register(EnergyCheck(h.meter, dc))
	h.aud.Register(ConservationCheck(dc, func() (int, int, int, int) {
		return h.arrived, 0, h.finished, h.rejected
	}))
	h.aud.Register(TrackerCheck(h.ctx, h.factors))
	return h
}

// step consumes two bytes (opcode, argument) and applies one operation.
func (h *harness) step(op, arg byte) {
	h.now += float64(arg)
	h.meter.Advance(h.now)
	switch op % 6 {
	case 0:
		h.arrival(arg)
	case 1:
		h.departure(arg)
	case 2:
		h.consolidate(arg)
	case 3:
		h.failPM(arg)
	case 4:
		h.bootPM(arg)
	case 5:
		h.shutdownPM(arg)
	}
	if err := h.aud.RunPeriod(h.now); err != nil {
		h.t.Fatalf("after op %d (arg %d) at t=%g: %v", op%6, arg, h.now, err)
	}
}

func (h *harness) arrival(arg byte) {
	if len(h.live) >= 64 { // cap the population; treat as a departure
		h.departure(arg)
		return
	}
	demand := demandPalette[int(arg)%len(demandPalette)]
	runtime := float64(int(arg)%7+1) * 100
	vm := cluster.NewVM(h.nextID, demand, runtime, runtime, h.now)
	h.nextID++
	h.arrived++
	pm := core.BestPlacement(h.ctx.At(h.now), h.factors, vm)
	if pm == nil {
		h.rejected++
		return
	}
	if err := pm.Host(vm); err != nil {
		// A positive probability implies feasibility; a Host failure
		// here is itself an invariant violation.
		h.t.Fatalf("BestPlacement chose infeasible PM %d for VM %d: %v", pm.ID, vm.ID, err)
	}
	vm.State = cluster.VMRunning
	vm.StartTime = h.now
	h.live = append(h.live, vm)
}

func (h *harness) departure(arg byte) {
	if len(h.live) == 0 {
		return
	}
	i := int(arg) % len(h.live)
	vm := h.live[i]
	host := h.dc.PM(vm.Host)
	if err := host.Evict(vm); err != nil {
		h.t.Fatalf("departure eviction of VM %d: %v", vm.ID, err)
	}
	vm.State = cluster.VMFinished
	vm.FinishTime = h.now
	h.finished++
	h.live = append(h.live[:i], h.live[i+1:]...)
}

// consolidate runs up to arg%3+1 rounds of Algorithm 1 through the kernel
// matrix, then performs the metamorphic check: the incrementally updated
// matrix must be bit-identical to a cold rebuild over the final state, and
// internally consistent.
func (h *harness) consolidate(arg byte) {
	vms := core.MigratableVMs(h.dc)
	if len(vms) == 0 {
		return
	}
	ctx := h.ctx.At(h.now)
	m, err := core.NewMatrix(ctx, h.factors, vms)
	if err != nil {
		h.t.Fatalf("matrix build: %v", err)
	}
	rounds := int(arg)%3 + 1
	for round := 0; round < rounds; round++ {
		r, c, gain, ok := m.Best()
		if !ok || gain <= 1.05 {
			break
		}
		if err := m.Apply(r, c); err != nil {
			h.t.Fatalf("apply round %d: %v", round, err)
		}
	}
	if err := m.SelfCheck(); err != nil {
		h.t.Fatalf("self-check after %d rounds: %v", rounds, err)
	}
	fresh, err := core.NewMatrix(ctx, h.factors, vms)
	if err != nil {
		h.t.Fatalf("rebuild: %v", err)
	}
	if err := m.Diff(fresh); err != nil {
		h.t.Fatalf("incremental matrix diverged from cold rebuild: %v", err)
	}
	ref, err := oracle.NewMatrix(ctx, h.factors, vms)
	if err != nil {
		h.t.Fatalf("oracle build: %v", err)
	}
	if err := diffOracle(m, ref); err != nil {
		h.t.Fatalf("kernel diverged from frozen oracle: %v", err)
	}
}

// failPM kills a powered-on machine: every hosted VM is evicted and either
// re-placed from scratch or counted finished (progress lost, user gave up).
func (h *harness) failPM(arg byte) {
	on := h.dc.ActivePMs()
	if len(on) <= 1 {
		return // keep at least one machine alive
	}
	pm := on[int(arg)%len(on)]
	victims := pm.VMs()
	pmOff := func() {
		pm.State = cluster.PMOff
	}
	if len(victims) == 0 {
		pmOff()
		return
	}
	for _, vm := range victims {
		if err := pm.Evict(vm); err != nil {
			h.t.Fatalf("failure eviction: %v", err)
		}
		h.removeLive(vm)
		target := core.BestPlacement(h.ctx.At(h.now), h.factors, vm)
		if target == nil || target == pm {
			vm.State = cluster.VMFinished
			h.finished++
			continue
		}
		if err := target.Host(vm); err != nil {
			h.t.Fatalf("re-place after failure: %v", err)
		}
		vm.State = cluster.VMRunning
		h.live = append(h.live, vm)
	}
	pmOff()
}

func (h *harness) removeLive(vm *cluster.VM) {
	for i, v := range h.live {
		if v == vm {
			h.live = append(h.live[:i], h.live[i+1:]...)
			return
		}
	}
}

func (h *harness) bootPM(arg byte) {
	off := h.dc.OffPMs()
	if len(off) == 0 {
		return
	}
	off[int(arg)%len(off)].State = cluster.PMOn
}

func (h *harness) shutdownPM(arg byte) {
	idle := h.dc.IdlePMs()
	if len(idle) <= 1 {
		return
	}
	idle[int(arg)%len(idle)].State = cluster.PMOff
}

func runOps(t *testing.T, data []byte) *harness {
	h := newHarness(t)
	for i := 0; i+1 < len(data); i += 2 {
		h.step(data[i], data[i+1])
	}
	return h
}

// FuzzOperations lets the fuzzer search for an operation sequence that
// breaks any audited invariant. `make fuzz-smoke` gives it a short budget
// on every CI run; the corpus seeds cover each opcode.
func FuzzOperations(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 2, 5, 1, 0})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 3, 7, 2, 9, 4, 1, 5, 2, 1, 1})
	f.Add([]byte{4, 0, 0, 200, 0, 130, 2, 250, 3, 3, 0, 60, 1, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		runOps(t, data)
	})
}

// TestRandomOperationsAudit is the deterministic fuzz pass the acceptance
// criteria require: at least 1000 randomized operations, every one audited
// (runs under -race in `make race`). The byte stream comes from a fixed
// xorshift generator so failures reproduce exactly.
func TestRandomOperationsAudit(t *testing.T) {
	const ops = 1200
	data := make([]byte, 2*ops)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		data[i] = byte(state >> 32)
	}
	h := runOps(t, data)
	if h.aud.Checks() < 4*ops {
		t.Fatalf("only %d checks ran over %d ops", h.aud.Checks(), ops)
	}
	if h.arrived == 0 || h.finished == 0 {
		t.Fatalf("degenerate run: arrived=%d finished=%d", h.arrived, h.finished)
	}
	t.Logf("ops=%d arrived=%d finished=%d rejected=%d checks=%d",
		ops, h.arrived, h.finished, h.rejected, h.aud.Checks())
}
