package cell

import "fmt"

// Partition maps fleet entities to cells. PMs get balanced contiguous
// ID ranges (cell 0 owns the lowest IDs) so a cell is a physically
// meaningful slice of the datacenter; VMs are struck round-robin by ID
// so arrival load spreads evenly regardless of lifetime skew.
//
// Both maps are pure functions of (Cells, Fleet) — no state, no
// allocation — which is what lets snapshots stay cell-agnostic: a
// restore re-derives every event's cell from its routing tag and the
// *target* config's partition, so a C=8 checkpoint restores into C=1
// (or any other C) without a rewrite pass.
type Partition struct {
	Cells int // number of cells, >= 1
	Fleet int // number of PMs; PM IDs are dense 0..Fleet-1
}

// NewPartition validates and builds a partition. Cells must be in
// [1, fleet]: an empty cell would own no PMs and could never host a
// placement, so it is rejected rather than silently idle.
func NewPartition(cells, fleet int) (Partition, error) {
	if fleet < 1 {
		return Partition{}, fmt.Errorf("cell: fleet size %d < 1", fleet)
	}
	if cells < 1 {
		return Partition{}, fmt.Errorf("cell: cell count %d < 1", cells)
	}
	if cells > fleet {
		return Partition{}, fmt.Errorf("cell: %d cells > %d PMs (every cell must own at least one PM)", cells, fleet)
	}
	return Partition{Cells: cells, Fleet: fleet}, nil
}

// PMCell returns the cell owning PM id. The first Fleet%Cells cells own
// one extra PM, so range sizes differ by at most one.
func (p Partition) PMCell(id int) int {
	if id < 0 || id >= p.Fleet {
		panic(fmt.Sprintf("cell: PM id %d outside fleet [0,%d)", id, p.Fleet))
	}
	base := p.Fleet / p.Cells
	rem := p.Fleet % p.Cells
	// The first rem cells each own base+1 PMs.
	wide := rem * (base + 1)
	if id < wide {
		return id / (base + 1)
	}
	return rem + (id-wide)/base
}

// PMRange returns the half-open PM ID range [lo, hi) owned by cell c.
func (p Partition) PMRange(c int) (lo, hi int) {
	if c < 0 || c >= p.Cells {
		panic(fmt.Sprintf("cell: cell %d outside [0,%d)", c, p.Cells))
	}
	base := p.Fleet / p.Cells
	rem := p.Fleet % p.Cells
	if c < rem {
		lo = c * (base + 1)
		return lo, lo + base + 1
	}
	lo = rem*(base+1) + (c-rem)*base
	return lo, lo + base
}

// VMCell returns the cell owning VM id. VM IDs are 1-based (the
// simulator assigns them in arrival order), so VM 1 lands on cell 0.
func (p Partition) VMCell(id int64) int {
	if id < 1 {
		panic(fmt.Sprintf("cell: VM id %d < 1", id))
	}
	return int((id - 1) % int64(p.Cells))
}

// SeedFor derives a per-cell RNG seed from the run seed, mirroring the
// sweep runner's (scheme, seed) construction: the stream a cell draws
// is a function of (seed, cellID) only, never of scheduling order, so
// per-cell workload slices are reproducible independently of how cells
// interleave. The mix is SplitMix64's finalizer over the golden-ratio
// stride — cheap, stateless, and avalanching, so adjacent cell IDs get
// uncorrelated streams even for seed 0.
func SeedFor(seed int64, cellID int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(cellID+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
