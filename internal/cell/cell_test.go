package cell

import (
	"sort"
	"testing"

	"repro/internal/stats"
)

// fakeQueue is a scripted Queue: a sorted list of (at, seq) keys popped
// front-to-back, recording the global pop order into a shared log.
type fakeQueue struct {
	id     int
	events []fakeEvent
	log    *[]fakeEvent
}

type fakeEvent struct {
	at   float64
	seq  uint64
	cell int
}

func (q *fakeQueue) HasPendingEvents() bool { return len(q.events) > 0 }

func (q *fakeQueue) PeekNextEventTime() (float64, uint64, bool) {
	if len(q.events) == 0 {
		return 0, 0, false
	}
	return q.events[0].at, q.events[0].seq, true
}

func (q *fakeQueue) ProcessNextEvent() bool {
	if len(q.events) == 0 {
		return false
	}
	ev := q.events[0]
	ev.cell = q.id
	q.events = q.events[1:]
	*q.log = append(*q.log, ev)
	return true
}

// TestOrchestratorMergeOrder scatters globally-unique (at, seq) keys
// across random cells and asserts the orchestrator replays them in
// exactly the monolith order: ascending (at, seq).
func TestOrchestratorMergeOrder(t *testing.T) {
	for _, cells := range []int{1, 2, 3, 8} {
		rng := stats.NewStream(42)
		var log []fakeEvent
		qs := make([]*fakeQueue, cells)
		queues := make([]Queue, cells)
		for i := range qs {
			qs[i] = &fakeQueue{id: i, log: &log}
			queues[i] = qs[i]
		}
		// Shared-seq contract: seqs unique across all queues. Times
		// collide on purpose (25% duplicates) so the seq leg is hot.
		const n = 400
		type key struct {
			at  float64
			seq uint64
		}
		all := make([]key, n)
		for i := range all {
			all[i] = key{at: float64(rng.Uint64() % 100), seq: uint64(i + 1)}
		}
		for _, k := range all {
			c := int(rng.Uint64() % uint64(cells))
			qs[c].events = append(qs[c].events, fakeEvent{at: k.at, seq: k.seq})
		}
		for _, q := range qs {
			sort.Slice(q.events, func(a, b int) bool {
				if q.events[a].at != q.events[b].at {
					return q.events[a].at < q.events[b].at
				}
				return q.events[a].seq < q.events[b].seq
			})
		}

		o := NewOrchestrator(queues)
		if o.Cells() != cells {
			t.Fatalf("Cells() = %d, want %d", o.Cells(), cells)
		}
		for o.HasPendingEvents() {
			at, seq, ci, ok := o.Peek()
			if !ok {
				t.Fatal("Peek reported empty while HasPendingEvents is true")
			}
			gotCell, ok := o.ProcessNextEvent()
			if !ok || gotCell != ci {
				t.Fatalf("ProcessNextEvent fired cell %d, Peek chose %d", gotCell, ci)
			}
			last := log[len(log)-1]
			if last.at != at || last.seq != seq || last.cell != ci {
				t.Fatalf("fired (%g,%d,cell %d), peeked (%g,%d,cell %d)",
					last.at, last.seq, last.cell, at, seq, ci)
			}
		}
		if len(log) != n {
			t.Fatalf("dispatched %d events, want %d", len(log), n)
		}
		sorted := append([]fakeEvent(nil), log...)
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].at != sorted[b].at {
				return sorted[a].at < sorted[b].at
			}
			return sorted[a].seq < sorted[b].seq
		})
		for i := range log {
			if log[i].at != sorted[i].at || log[i].seq != sorted[i].seq {
				t.Fatalf("cells=%d: merge order broke at position %d: got (%g,%d), want (%g,%d)",
					cells, i, log[i].at, log[i].seq, sorted[i].at, sorted[i].seq)
			}
		}
		if _, _, _, ok := o.Peek(); ok {
			t.Fatal("Peek reports an event after drain")
		}
		if _, ok := o.ProcessNextEvent(); ok {
			t.Fatal("ProcessNextEvent fired after drain")
		}
	}
}

// TestOrchestratorCellIDTiebreak violates the shared-seq contract on
// purpose (identical (at, seq) in two cells) and asserts the final
// comparator leg picks the lower cell ID — the merge stays a
// deterministic total order even for contract-breaking inputs.
func TestOrchestratorCellIDTiebreak(t *testing.T) {
	var log []fakeEvent
	q0 := &fakeQueue{id: 0, log: &log, events: []fakeEvent{{at: 5, seq: 7}}}
	q1 := &fakeQueue{id: 1, log: &log, events: []fakeEvent{{at: 5, seq: 7}}}
	o := NewOrchestrator([]Queue{q0, q1})

	_, _, ci, ok := o.Peek()
	if !ok || ci != 0 {
		t.Fatalf("Peek chose cell %d for an exact (at,seq) tie, want 0", ci)
	}
	first, _ := o.ProcessNextEvent()
	second, _ := o.ProcessNextEvent()
	if first != 0 || second != 1 {
		t.Fatalf("tie fired cells (%d,%d), want (0,1)", first, second)
	}
}

// TestPartitionPMRanges asserts the PM map is a balanced contiguous
// partition: ranges tile [0, fleet), sizes differ by at most one, and
// PMCell inverts PMRange for every ID.
func TestPartitionPMRanges(t *testing.T) {
	for _, tc := range []struct{ cells, fleet int }{
		{1, 1}, {1, 8}, {2, 8}, {3, 8}, {8, 8}, {4, 10}, {7, 100}, {64, 1000},
	} {
		p, err := NewPartition(tc.cells, tc.fleet)
		if err != nil {
			t.Fatalf("NewPartition(%d,%d): %v", tc.cells, tc.fleet, err)
		}
		next := 0
		minSz, maxSz := tc.fleet, 0
		for c := 0; c < tc.cells; c++ {
			lo, hi := p.PMRange(c)
			if lo != next {
				t.Fatalf("cells=%d fleet=%d: cell %d starts at %d, want %d (gap or overlap)",
					tc.cells, tc.fleet, c, lo, next)
			}
			if hi <= lo {
				t.Fatalf("cells=%d fleet=%d: cell %d is empty [%d,%d)", tc.cells, tc.fleet, c, lo, hi)
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			for id := lo; id < hi; id++ {
				if got := p.PMCell(id); got != c {
					t.Fatalf("cells=%d fleet=%d: PMCell(%d) = %d, want %d", tc.cells, tc.fleet, id, got, c)
				}
			}
			next = hi
		}
		if next != tc.fleet {
			t.Fatalf("cells=%d fleet=%d: ranges cover [0,%d), want [0,%d)", tc.cells, tc.fleet, next, tc.fleet)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("cells=%d fleet=%d: range sizes span [%d,%d], want within 1", tc.cells, tc.fleet, minSz, maxSz)
		}
	}
}

// TestPartitionVMCell pins the round-robin VM map: VM 1 on cell 0, and
// consecutive IDs cycling through every cell.
func TestPartitionVMCell(t *testing.T) {
	p, err := NewPartition(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 12; id++ {
		want := int((id - 1) % 3)
		if got := p.VMCell(id); got != want {
			t.Fatalf("VMCell(%d) = %d, want %d", id, got, want)
		}
	}
}

// TestPartitionValidation pins the rejection rules: no zero or negative
// cell counts, no empty cells, no empty fleets.
func TestPartitionValidation(t *testing.T) {
	for _, tc := range []struct{ cells, fleet int }{
		{0, 8}, {-1, 8}, {9, 8}, {1, 0}, {2, 1},
	} {
		if _, err := NewPartition(tc.cells, tc.fleet); err == nil {
			t.Errorf("NewPartition(%d,%d) accepted, want error", tc.cells, tc.fleet)
		}
	}
}

// TestSeedFor pins the derivation contract: deterministic, sensitive to
// both inputs, and collision-free across a realistic (seed, cell) grid.
func TestSeedFor(t *testing.T) {
	if SeedFor(3, 1) != SeedFor(3, 1) {
		t.Fatal("SeedFor is not deterministic")
	}
	seen := make(map[int64]string)
	for seed := int64(0); seed < 16; seed++ {
		for c := 0; c < 64; c++ {
			v := SeedFor(seed, c)
			if prev, dup := seen[v]; dup {
				t.Fatalf("SeedFor collision: (seed=%d,cell=%d) = %s", seed, c, prev)
			}
			seen[v] = "taken"
		}
	}
}
