// Package cell partitions a simulated fleet into independently-queued
// cells advanced in global (time, seq) order by a shared-clock
// orchestrator.
//
// A cell owns a slice of the datacenter: a contiguous range of PMs, the
// VMs whose IDs hash onto it, the calendar queue holding their pending
// events, and (derived via SeedFor) its own RNG stream for workload
// slicing. The orchestrator merges the per-cell queues into one total
// order without ever moving an event between cells: each step it peeks
// every cell's next (at, seq) and fires the minimum, ties broken by
// ascending cell ID. Cross-cell concerns — the global spare budget,
// failure injection, consolidation migrations that cross a cell
// boundary — never live inside a cell; the simulation layer routes them
// through the orchestrator step so per-cell state never aliases.
//
// The package is dependency-free by design: the engine side implements
// Queue, the simulation side owns routing, and everything here is pure
// arithmetic over (at, seq, cellID) triples — which is what makes the
// ordering proof in DESIGN.md §14 short enough to trust.
package cell

import "fmt"

// Queue is the per-cell event source the orchestrator merges. It is the
// HasPendingEvents / PeekNextEventTime / ProcessNextEvent decomposition
// of a discrete-event queue: peek must be side-effect-free with respect
// to ordering, and ProcessNextEvent must fire exactly the event peek
// reported.
//
// PeekNextEventTime returns the (at, seq) key of the queue's minimum
// pending event. Seq values must be unique ACROSS all queues handed to
// one orchestrator (the engine layer guarantees this with a shared
// counter); the orchestrator's merge is a strict total order only under
// that contract.
type Queue interface {
	// HasPendingEvents reports whether the queue holds at least one
	// live (non-cancelled) event.
	HasPendingEvents() bool
	// PeekNextEventTime returns the minimum pending event's time and
	// sequence number. ok is false when the queue is empty.
	PeekNextEventTime() (at float64, seq uint64, ok bool)
	// ProcessNextEvent dispatches the minimum pending event and
	// returns false when the queue was empty.
	ProcessNextEvent() bool
}

// Orchestrator merges C per-cell queues into one deterministic global
// event order. It owns no clock of its own: the shared clock is simply
// the (at, seq) key of the last event it selected, which callers read
// from Peek before dispatching.
type Orchestrator struct {
	cells []Queue
}

// NewOrchestrator wraps the given per-cell queues. The slice is
// retained, not copied; index in the slice IS the cell ID.
func NewOrchestrator(cells []Queue) *Orchestrator {
	if len(cells) == 0 {
		panic("cell: orchestrator needs at least one queue")
	}
	return &Orchestrator{cells: cells}
}

// Cells returns the number of queues under the orchestrator.
func (o *Orchestrator) Cells() int { return len(o.cells) }

// HasPendingEvents reports whether any cell still holds a live event.
func (o *Orchestrator) HasPendingEvents() bool {
	for _, q := range o.cells {
		if q.HasPendingEvents() {
			return true
		}
	}
	return false
}

// Peek returns the globally minimum pending event across all cells:
// smallest at, then smallest seq, then smallest cell ID. With the
// shared-seq contract the cell-ID leg is unreachable for live events
// (seqs are globally unique), but it keeps the comparator a strict
// total order even if a caller violates the contract — a corrupted
// merge then stays deterministic instead of depending on scan order.
func (o *Orchestrator) Peek() (at float64, seq uint64, cellID int, ok bool) {
	cellID = -1
	for i, q := range o.cells {
		a, s, has := q.PeekNextEventTime()
		if !has {
			continue
		}
		if cellID < 0 || a < at || (a == at && s < seq) {
			at, seq, cellID = a, s, i
		}
	}
	return at, seq, cellID, cellID >= 0
}

// ProcessNextEvent fires the globally minimum pending event and reports
// which cell it lived in. ok is false when every cell is empty.
func (o *Orchestrator) ProcessNextEvent() (cellID int, ok bool) {
	_, _, cellID, ok = o.Peek()
	if !ok {
		return -1, false
	}
	if !o.cells[cellID].ProcessNextEvent() {
		panic(fmt.Sprintf("cell: queue %d reported a pending event but refused to process it", cellID))
	}
	return cellID, true
}
