package sim

import (
	"testing"
)

// eventLoopAllocCeiling is the asserted allocation budget for the
// steady-state event loop (one Schedule + one Step with a stable
// resident population): the freelist recycles records and the calendar
// geometry is settled, so the loop allocates nothing. The ceiling is 2
// (not 0) to leave headroom for incidental runtime effects; the
// acceptance bar in BENCH_engine.json is the same number.
const eventLoopAllocCeiling = 2

func TestEventLoopAllocBudget(t *testing.T) {
	var e Engine
	nop := func() {}
	// Warm up: grow the freelist and geometry to the operating population,
	// then drain half so the dispatch-history width estimator is primed.
	for i := 0; i < 4096; i++ {
		e.Schedule(float64(i)*0.1, nop)
	}
	for i := 0; i < 2048; i++ {
		e.Step()
	}
	rng := uint64(0x243F6A8885A308D3)
	allocs := testing.AllocsPerRun(10000, func() {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		e.Schedule(e.Now()+float64(rng%512)*0.25, nop)
		e.Step()
	})
	if allocs > eventLoopAllocCeiling {
		t.Errorf("steady-state event loop allocates %.1f allocs/op, budget %d", allocs, eventLoopAllocCeiling)
	}
}

func TestCancelAllocBudget(t *testing.T) {
	var e Engine
	nop := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(float64(i), nop)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		ev := e.Schedule(e.Now()+100, nop)
		ev.Cancel()
	})
	if allocs > eventLoopAllocCeiling {
		t.Errorf("schedule+cancel allocates %.1f allocs/op, budget %d", allocs, eventLoopAllocCeiling)
	}
}

// TestEngineMillionEventSmoke is the long-run liveness gate: a 1M-event
// churn (every fire schedules a successor) over a 10k-resident
// population, with monotone-clock and queue-structure invariants checked
// along the way. It runs in well under a second on the calendar queue —
// that headroom is the point of the rewrite.
func TestEngineMillionEventSmoke(t *testing.T) {
	const (
		resident = 10_000
		total    = 1_000_000
	)
	var e Engine
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1024) * 0.125
	}
	fired := 0
	var reschedule func()
	reschedule = func() {
		fired++
		if fired+e.Pending() < total {
			e.ScheduleAfter(next(), reschedule)
		}
	}
	for i := 0; i < resident; i++ {
		e.Schedule(next(), reschedule)
	}
	last := 0.0
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock moved backward: %g after %g", e.Now(), last)
		}
		last = e.Now()
		if fired%100_000 == 0 {
			if err := e.VerifyQueue(); err != nil {
				t.Fatalf("VerifyQueue at %d events: %v", fired, err)
			}
		}
	}
	if fired != total {
		t.Fatalf("dispatched %d events, want %d", fired, total)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
	if err := e.VerifyQueue(); err != nil {
		t.Fatalf("VerifyQueue after drain: %v", err)
	}
}
