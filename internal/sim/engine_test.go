package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %g, want 30", e.Now())
	}
	if e.Dispatched() != 3 {
		t.Errorf("Dispatched = %d", e.Dispatched())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.ScheduleAfter(4, func() { times = append(times, e.Now()) })
	})
	e.Schedule(2, func() { times = append(times, e.Now()) })
	e.Run()
	want := []float64{1, 2, 5}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times = %v, want %v", times, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(5, func() { fired = true })
	if !ev.Live() {
		t.Error("scheduled event not Live")
	}
	if !ev.Cancel() {
		t.Error("Cancel of a live event returned false")
	}
	if ev.Live() {
		t.Error("cancelled event still Live")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancel after run is a no-op.
	if ev.Cancel() {
		t.Error("double Cancel returned true")
	}
}

func TestEngineZeroEventHandle(t *testing.T) {
	var ev Event
	if ev.Live() {
		t.Error("zero Event is Live")
	}
	if ev.Cancel() {
		t.Error("zero Event Cancel returned true")
	}
	if ev.Time() != 0 {
		t.Errorf("zero Event Time = %g", ev.Time())
	}
}

func TestEngineHandleStaleAfterFire(t *testing.T) {
	var e Engine
	ev := e.Schedule(1, func() {})
	e.Run()
	if ev.Live() {
		t.Error("fired event still Live")
	}
	// The record behind ev has been recycled; a later Schedule may reuse
	// it. The stale handle must not be able to cancel the new event.
	ev2 := e.Schedule(2, func() {})
	if ev.Cancel() {
		t.Error("stale handle cancelled a recycled record")
	}
	if !ev2.Live() {
		t.Error("stale Cancel killed an unrelated event")
	}
}

func TestEngineSelfCancelDuringFire(t *testing.T) {
	var e Engine
	var ev Event
	fired := 0
	ev = e.Schedule(1, func() {
		fired++
		if ev.Cancel() {
			t.Error("event cancelled itself from inside its own callback")
		}
		// Nested schedules may reuse the just-recycled record.
		e.ScheduleAfter(1, func() { fired++ })
	})
	e.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	var fired []float64
	for _, at := range []float64{1, 5, 10, 15} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(10)
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want 3 events", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %g, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(fired) != 4 || e.Now() != 15 {
		t.Error("remaining event lost")
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("Now = %g", e.Now())
	}
}

func TestEngineRunUntilSkipsCancelledHead(t *testing.T) {
	var e Engine
	ev := e.Schedule(5, func() { t.Error("cancelled event fired") })
	ev.Cancel()
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Errorf("Now = %g", e.Now())
	}
}

func TestEnginePanics(t *testing.T) {
	cases := map[string]func(e *Engine){
		"past":     func(e *Engine) { e.Schedule(5, func() {}); e.Run(); e.Schedule(1, func() {}) },
		"nan":      func(e *Engine) { e.Schedule(math.NaN(), func() {}) },
		"inf":      func(e *Engine) { e.Schedule(math.Inf(1), func() {}) },
		"nil":      func(e *Engine) { e.Schedule(1, nil) },
		"backward": func(e *Engine) { e.RunUntil(10); e.RunUntil(5) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			var e Engine
			f(&e)
		}()
	}
}

func TestEngineStepEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

// Property: events fire in non-decreasing time order regardless of insert
// order.
func TestQuickEngineOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		var fired []float64
		for _, x := range raw {
			at := float64(x)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func() {})
		}
		e.Run()
	}
}
