package sim

import (
	"testing"

	"repro/internal/failure"
	"repro/internal/policy"
)

// TestSourceFailureDuringTimedMigration targets the interaction the fleet
// model makes easy to get wrong: a PM fails while it is the *source* of an
// in-flight timed migration. The reservation must be unwound and the
// migrated VM (living on its new host) must return to Running so it can
// migrate again later.
func TestSourceFailureDuringTimedMigration(t *testing.T) {
	// High failure rate to hit the window frequently across seeds.
	for seed := int64(1); seed <= 8; seed++ {
		dc := smallFleet()
		res, err := Run(Config{
			DC:              dc,
			Placer:          policy.NewDynamic(),
			Requests:        fragmentingTrace(60),
			TimedMigrations: true,
			Failures: failure.Config{
				MTBF: 8000, RepairTime: 120,
				ReliabilityDecay: 0.9, MinReliability: 0.2, Seed: seed,
			},
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Summary.VMsCompleted != 60 {
			t.Errorf("seed %d: completed %d/60", seed, res.Summary.VMsCompleted)
		}
		for _, pm := range dc.PMs() {
			if !pm.Reserved().IsZero() {
				t.Errorf("seed %d: PM %d leaked reservation %v", seed, pm.ID, pm.Reserved())
			}
		}
		// No VM may be stranded in a non-terminal state.
		for _, vm := range dc.RunningVMs() {
			t.Errorf("seed %d: VM %d still placed (%s) after drain", seed, vm.ID, vm.State)
		}
	}
}

// TestTargetFailureDuringTimedMigration drives the complementary case: the
// machine a VM is migrating *into* fails mid-transfer; the VM is re-queued
// like a fresh request and must still finish.
func TestTargetFailureDuringTimedMigration(t *testing.T) {
	dc := smallFleet()
	res, err := Run(Config{
		DC:              dc,
		Placer:          policy.NewDynamic(),
		Requests:        fragmentingTrace(40),
		TimedMigrations: true,
		Failures: failure.Config{
			MTBF: 5000, RepairTime: 60,
			ReliabilityDecay: 0.85, MinReliability: 0.3, Seed: 4,
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.VMsCompleted != 40 {
		t.Errorf("completed %d/40", res.Summary.VMsCompleted)
	}
	for _, pm := range dc.PMs() {
		if !pm.Reserved().IsZero() {
			t.Errorf("PM %d leaked reservation %v", pm.ID, pm.Reserved())
		}
	}
}
