package sim

import (
	"bytes"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/spare"
)

// FuzzSnapshotResume is the randomized crash-injection differential: the
// fuzzer picks a run configuration (placer, timed migrations, spare
// controller, failure seed) and a kill point; the harness runs the
// uninterrupted reference, then "crashes" a second run at that event
// boundary — keeping nothing but the checkpoint bytes — resumes it in a
// fresh world, and demands the canonical trace and the Result match the
// reference exactly. Any state the snapshot loses, any map-order
// nondeterminism in an event handler, any RNG not carried across the
// boundary shows up as a byte diff.
func FuzzSnapshotResume(f *testing.F) {
	f.Add(int64(0), int64(1), uint64(3))
	f.Add(int64(1), int64(3), uint64(97))
	f.Add(int64(2), int64(5), uint64(211))
	f.Add(int64(6), int64(2), uint64(50))
	f.Add(int64(12), int64(7), uint64(500))
	f.Add(int64(13), int64(4), uint64(1))

	f.Fuzz(func(t *testing.T, variant, failSeed int64, stopPick uint64) {
		load := fragmentingTrace(30)
		newPlacer := func() policy.Placer {
			switch variant & 3 {
			case 0:
				return policy.NewDynamic()
			case 1:
				return policy.NewRandom(17)
			default:
				return policy.NewThreshold()
			}
		}
		mk := func(trace *bytes.Buffer) Config {
			cfg := Config{
				DC:              smallFleet(),
				Placer:          newPlacer(),
				Requests:        load,
				TimedMigrations: variant&4 != 0,
				WarmStart:       2,
				Failures: failure.Config{
					MTBF: 9000, RepairTime: 150,
					ReliabilityDecay: 0.9, MinReliability: 0.2,
					Seed: 1 + (failSeed&0xffff)%1000,
				},
			}
			if variant&8 != 0 {
				sc := spare.DefaultConfig()
				cfg.Spare = &sc
			}
			if trace != nil {
				cfg.Obs = obs.NewTracing(trace)
			}
			return cfg
		}

		var fullTrace bytes.Buffer
		probe, err := New(mk(&fullTrace))
		if err != nil {
			t.Fatal(err)
		}
		resA := runToEnd(t, probe)
		total := probe.Dispatched()
		if total < 2 {
			t.Skip("degenerate run")
		}
		stop := 1 + stopPick%(total-1)

		var prefix bytes.Buffer
		m, err := New(mk(&prefix))
		if err != nil {
			t.Fatal(err)
		}
		for m.Dispatched() < stop {
			if ok, err := m.Step(); err != nil || !ok {
				t.Fatalf("step: ok=%v err=%v", ok, err)
			}
		}
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatalf("save at %d: %v", stop, err)
		}

		var tail bytes.Buffer
		m2, err := Restore(mk(&tail), bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			t.Fatalf("restore at %d/%d: %v", stop, total, err)
		}
		resB := runToEnd(t, m2)

		fullCanon := canon(t, fullTrace.Bytes())
		combined := append(canon(t, prefix.Bytes()), canon(t, tail.Bytes())...)
		if !bytes.Equal(combined, fullCanon) {
			at, a, b := diffContext(fullCanon, combined)
			t.Fatalf("variant %d seed %d crash at %d/%d: trace diverges at byte %d:\nfull:    ...%s\nresumed: ...%s",
				variant, failSeed, stop, total, at, a, b)
		}
		if resA.Summary != resB.Summary {
			t.Fatalf("variant %d seed %d crash at %d: summaries differ:\nfull:    %+v\nresumed: %+v",
				variant, failSeed, stop, resA.Summary, resB.Summary)
		}
	})
}
