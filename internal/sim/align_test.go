package sim

import (
	"testing"
	"unsafe"
)

// TestAlignedBuckets pins the calendar-queue layout contract: bucket
// headers are 16 bytes, and alignedBuckets places the ring base on a
// cache-line boundary (whenever the runtime's allocation base permits the
// offset) so the extraction scan reads whole lines of four headers.
func TestAlignedBuckets(t *testing.T) {
	if got := unsafe.Sizeof(bucket{}); got != 16 {
		t.Fatalf("bucket header is %d bytes, want 16", got)
	}
	for _, n := range []int{minBuckets, 64, 1024} {
		for trial := 0; trial < 8; trial++ {
			b := alignedBuckets(n)
			if len(b) != n {
				t.Fatalf("alignedBuckets(%d) has length %d", n, len(b))
			}
			addr := uintptr(unsafe.Pointer(&b[0]))
			if addr%unsafe.Sizeof(bucket{}) == 0 && addr%64 != 0 {
				t.Fatalf("alignedBuckets(%d) base %#x: bucket-aligned but not line-aligned", n, addr)
			}
		}
	}
}

// TestEngineBucketsAlignedAfterResize drives the queue through growth and
// shrink resizes and checks the live ring stays aligned.
func TestEngineBucketsAlignedAfterResize(t *testing.T) {
	var e Engine
	noop := func() {}
	var hs []Event
	for i := 0; i < 10_000; i++ {
		hs = append(hs, e.Schedule(float64(i%97), noop))
	}
	if len(e.buckets) <= minBuckets {
		t.Fatalf("queue did not grow: %d buckets", len(e.buckets))
	}
	addr := uintptr(unsafe.Pointer(&e.buckets[0]))
	if addr%unsafe.Sizeof(bucket{}) == 0 && addr%64 != 0 {
		t.Fatalf("grown ring base %#x not line-aligned", addr)
	}
	for _, h := range hs[:9_900] {
		h.Cancel()
	}
	addr = uintptr(unsafe.Pointer(&e.buckets[0]))
	if addr%unsafe.Sizeof(bucket{}) == 0 && addr%64 != 0 {
		t.Fatalf("shrunk ring base %#x not line-aligned", addr)
	}
	if err := e.VerifyQueue(); err != nil {
		t.Fatal(err)
	}
}
