package sim

import "testing"

// These tests pin the cancellation contract the control loop's liveness
// test depends on (PR 2 fixed Pending() over-counting for the old heap;
// the calendar queue makes the count exact by construction because
// Cancel unlinks eagerly).

func TestPendingCountsLiveEventsOnly(t *testing.T) {
	var e Engine
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(float64(i+1), func() {})
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 7; i++ {
		evs[i].Cancel()
	}
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending after 7 cancels = %d, want 3", got)
	}
	// Double-cancel must not double-count.
	if evs[0].Cancel() {
		t.Fatal("double Cancel returned true")
	}
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending after double-cancel = %d, want 3", got)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

func TestCancelledEventsLeaveNoResidue(t *testing.T) {
	var e Engine
	// One far-future live event, then a pile of cancelled ones: the old
	// heap kept every cancelled timer resident until a lazy reap; the
	// calendar queue must unlink each immediately.
	e.Schedule(1e9, func() {})
	var evs []Event
	for i := 0; i < 500; i++ {
		evs = append(evs, e.Schedule(1e6+float64(i), func() {}))
	}
	for _, ev := range evs {
		if !ev.Cancel() {
			t.Fatal("Cancel of a live event returned false")
		}
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	// VerifyQueue walks every bucket: it fails if any cancelled record is
	// still linked, or if the live count disagrees with the walk.
	if err := e.VerifyQueue(); err != nil {
		t.Fatalf("VerifyQueue after mass cancel: %v", err)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if e.Now() != 1e9 {
		t.Fatalf("Now = %g, want 1e9", e.Now())
	}
}

func TestCancelPreservesDispatchOrder(t *testing.T) {
	var e Engine
	var order []int
	var cancelled []Event
	// Interleave live and to-be-cancelled events so unlinking exercises
	// head, middle, and tail positions across many buckets.
	for i := 0; i < 300; i++ {
		i := i
		if i%3 == 0 {
			e.Schedule(float64(1000-i), func() { order = append(order, 1000-i) })
		} else {
			cancelled = append(cancelled, e.Schedule(float64(2000+i), func() { t.Error("cancelled event fired") }))
		}
	}
	for _, ev := range cancelled {
		ev.Cancel()
	}
	if err := e.VerifyQueue(); err != nil {
		t.Fatalf("VerifyQueue: %v", err)
	}
	e.Run()
	if len(order) != 100 {
		t.Fatalf("fired %d live events, want 100", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("out-of-order dispatch after cancels: %d before %d", order[i-1], order[i])
		}
	}
}

func TestCancelKeepsRunUntilSemantics(t *testing.T) {
	var e Engine
	fired := 0
	for i := 0; i < 200; i++ {
		ev := e.Schedule(float64(i), func() { t.Error("cancelled event fired") })
		ev.Cancel()
	}
	e.Schedule(500, func() { fired++ })
	e.Schedule(1500, func() { fired++ })
	e.RunUntil(1000)
	if fired != 1 {
		t.Fatalf("fired %d events by t=1000, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestVerifyQueueAcrossChurn(t *testing.T) {
	var e Engine
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var live []Event
	for i := 0; i < 5000; i++ {
		switch next() % 4 {
		case 0, 1:
			at := e.Now() + float64(next()%10_000)/10
			live = append(live, e.Schedule(at, func() {}))
		case 2:
			if len(live) > 0 {
				k := int(next()) % len(live)
				if k < 0 {
					k = -k
				}
				live[k].Cancel()
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case 3:
			e.Step()
		}
		if i%250 == 0 {
			if err := e.VerifyQueue(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := e.VerifyQueue(); err != nil {
		t.Fatalf("final: %v", err)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
	if err := e.VerifyQueue(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}
